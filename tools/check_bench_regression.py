#!/usr/bin/env python3
"""Gate batch-probe throughput against the checked-in bench baseline.

Compares two bench_batch_lookup JSON files row by row — the point-probe
"results" block, the range-probe "range_probes" block (when a file was
recorded with --range), the range-partitioned "partitioned" block
(recorded with --part), and the batch-maintenance "maintenance" block
(recorded with --update) — keyed by (block, spec, batch, threads), and
fails (exit 1) when throughput regressed by more than --tolerance
(default 25%). All blocks feed the same geomean: the range rows gate the
EqualRangeBatch kernels, the partitioned rows gate the fence-routing
composite, and the maintenance rows gate shard-incremental refresh
(their "speedup" is incremental-vs-full-rebuild) under the same rule as
the point rows.

Maintenance rows additionally carry an absolute floor:
--min-update-speedup (default 0 = off) fails the gate when any CURRENT
partitioned maintenance row's incremental-vs-full speedup falls below
the floor — the shard-incremental path must actually beat rebuilding
from scratch, on this machine, not merely match a baseline ratio. A set
floor with no part:* maintenance rows to check also fails, so the
guarantee cannot be disabled by accidentally dropping --update.

Two metrics:

  speedup     (default) gate on each row's batched-vs-scalar speedup —
              the ratio is measured within one run on one machine, so it
              transfers across hardware. This is what CI uses: the
              checked-in baseline and the CI runner are different
              machines, and absolute ns/probe does not transfer.
  batched_ns  gate on absolute batched throughput (1 / ns-per-probe).
              Only meaningful when baseline and current ran on the same
              hardware (e.g. a perf box tracking its own trajectory).

The gate is the geometric mean over all common rows: a single noisy row
should not fail CI, a broad slowdown should. Per-row ratios are printed
so a localized regression is still visible in the log even when the
geomean passes.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json \
      [--metric speedup|batched_ns] [--tolerance 0.25]
"""

import argparse
import json
import math
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for block in ("results", "range_probes", "partitioned", "maintenance"):
        for row in doc.get(block, []):
            key = (block, row["spec"], row["batch"], row.get("threads", 1))
            rows[key] = row
    return doc, rows


def row_metric(row, metric):
    if metric == "speedup":
        return row.get("speedup")
    # Throughput, so that "ratio < 1" always means "got slower".
    ns = row.get("batched_ns_per_probe")
    return None if not ns else 1e3 / ns


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--metric", choices=["speedup", "batched_ns"],
                        default="speedup")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (0.25 = 25%%)")
    parser.add_argument("--min-update-speedup", type=float, default=0.0,
                        help="absolute floor on incremental-vs-full speedup "
                             "for part:* maintenance rows in CURRENT "
                             "(0 = off)")
    args = parser.parse_args()

    base_doc, base_rows = load_rows(args.baseline)
    cur_doc, cur_rows = load_rows(args.current)

    # Absolute floor for the maintenance path, independent of the
    # baseline: incremental refresh of a partitioned spec must beat the
    # full rebuild by at least the requested factor on THIS machine. A
    # requested floor with nothing to check is itself a failure —
    # otherwise dropping --update from the bench run would silently
    # disable the guarantee.
    floor_failed = False
    if args.min_update_speedup > 0:
        checked = 0
        for key, row in sorted(cur_rows.items()):
            if key[0] != "maintenance" or not key[1].startswith("part:"):
                continue
            speedup = row.get("speedup")
            if speedup is None:
                continue
            checked += 1
            print(f"maintenance floor: {key[1]:<16} batch={key[2]:>8} "
                  f"speedup={speedup:.3f} (floor "
                  f"{args.min_update_speedup:.2f})")
            if speedup < args.min_update_speedup:
                print(f"FAIL: {key[1]} batch={key[2]} incremental refresh "
                      f"only {speedup:.2f}x over full rebuild "
                      f"(floor {args.min_update_speedup:.2f}x)")
                floor_failed = True
        if checked == 0:
            print("FAIL: --min-update-speedup set but CURRENT has no part:* "
                  "maintenance rows (bench run without --update?)")
            floor_failed = True

    common = sorted(set(base_rows) & set(cur_rows))
    if not common:
        print("WARNING: no common (spec, batch, threads) rows between "
              f"{args.baseline} and {args.current}; nothing to gate")
        return 1 if floor_failed else 0

    log_sum = 0.0
    compared = 0
    worst = (None, math.inf)
    print(f"{'block':<13} {'spec':<12} {'batch':>6} {'thr':>4} {'base':>9} "
          f"{'cur':>9} {'ratio':>7}")
    for key in common:
        base_v = row_metric(base_rows[key], args.metric)
        cur_v = row_metric(cur_rows[key], args.metric)
        if not base_v or not cur_v:
            continue
        ratio = cur_v / base_v
        log_sum += math.log(ratio)
        compared += 1
        if ratio < worst[1]:
            worst = (key, ratio)
        flag = "  <-- slower" if ratio < 1 - args.tolerance else ""
        print(f"{key[0]:<13} {key[1]:<12} {key[2]:>6} {key[3]:>4} "
              f"{base_v:>9.3f} {cur_v:>9.3f} {ratio:>7.3f}{flag}")

    if compared == 0:
        print("WARNING: no comparable rows; nothing to gate")
        return 1 if floor_failed else 0

    geomean = math.exp(log_sum / compared)
    floor = 1 - args.tolerance
    print(f"\nmetric={args.metric} rows={compared} "
          f"geomean ratio={geomean:.3f} (floor {floor:.2f}); "
          f"worst {worst[0]} at {worst[1]:.3f}")
    failed = False
    if geomean < floor:
        print(f"FAIL: batch-probe {args.metric} regressed "
              f">{args.tolerance:.0%} vs {args.baseline}")
        failed = True
    if floor_failed:
        print("FAIL: maintenance speedup floor violated (see above)")
        failed = True
    if failed:
        return 1
    print("OK: no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
