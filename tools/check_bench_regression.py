#!/usr/bin/env python3
"""Gate batch-probe throughput against the checked-in bench baseline.

Compares two bench_batch_lookup JSON files row by row — the point-probe
"results" block, the range-probe "range_probes" block (when a file was
recorded with --range), the range-partitioned "partitioned" block
(recorded with --part), and the batch-maintenance "maintenance" block
(recorded with --update) — keyed by (block, spec, batch, threads), and
fails (exit 1) when throughput regressed by more than --tolerance
(default 25%). All blocks feed the same geomean: the range rows gate the
EqualRangeBatch kernels, the partitioned rows gate the fence-routing
composite, and the maintenance rows gate shard-incremental refresh
(their "speedup" is incremental-vs-full-rebuild) under the same rule as
the point rows.

Maintenance rows additionally carry an absolute floor:
--min-update-speedup (default 0 = off) fails the gate when any CURRENT
partitioned maintenance row's incremental-vs-full speedup falls below
the floor — the shard-incremental path must actually beat rebuilding
from scratch, on this machine, not merely match a baseline ratio. A set
floor with no part:* maintenance rows to check also fails, so the
guarantee cannot be disabled by accidentally dropping --update.

SIMD rows ("simd" block: SIMD-vs-scalar-unrolled batched descents at
identical probe plans) join the same geomean, and carry their own
absolute floor: --min-simd-speedup (default 0 = off) fails the gate
when any CURRENT css:* simd row's speedup falls below the floor — the
vector kernels must actually beat the scalar unrolled search on this
machine. The floor only binds when the recording process dispatched a
SIMD path (the JSON's "node_search_path" is not "scalar"): a forced-
scalar or non-x86 run measures scalar-vs-scalar, where ~1.0 is correct.
A set floor with no css:* simd rows in a SIMD-dispatching run fails,
mirroring --min-update-speedup.

Key-width space gate (independent of the baseline file): the bench's
"key_width_space" object records the measured 8-byte/4-byte full-CSS
directory ratio at a fixed 64-byte node next to the §5.2 analytic
model's (nK²/sc, so (8/4)² = 4 up to directory rounding).
--key-width-space-band (0 = off) fails the gate when CURRENT's measured
ratio strays from the model ratio by more than the given fraction —
the wide build must pay exactly the K²-predicted space, no more (a
padding or layout bug) and no less (a truncated directory). A set band
with no key_width_space object fails, mirroring the other floors.

Serving-layer gate (independent of the baseline file): --serving-json
points at a bench_serving JSON and --max-coalesce-ratio (0 = off) caps
groups_published / enqueued_batches for every pressure row — under
writer pressure the coalescing path must apply measurably fewer rebuilds
than batches were enqueued. The invariant is a within-run ratio, so it
transfers off the 1-core dev container (hardware_threads is recorded in
the JSON for the day a gate wants to condition on it). Every serving row
is additionally checked for lost updates (batches_applied must equal
enqueued_batches — the queue accepted nothing it did not apply — and
groups_published can never exceed batches_applied). A set cap with no
pressure rows to check fails, mirroring --min-update-speedup.

Advisor gate (independent of the baseline file): --advisor-json points at
a bench_advisor JSON and --min-advisor-ratio (0 = off) sets a floor on
best_static/picked throughput for every workload-mix row — the
self-tuning advisor's pick must deliver at least the given fraction of
the best static spec's throughput on every mix (1.0 = always ties the
menu, 0.8 = within 25% slower). The ratio is measured within one run on
one machine, so the gate transfers across runner hardware. A set floor
with no advisor rows fails, mirroring --min-update-speedup.

Paged-build gate (independent of the baseline file): --paged-json points
at a bench_paged JSON and --max-paged-build-slowdown (0 = off) caps
build_slowdown_vs_inram for every row of the buffer-budget sweep — an
out-of-core index build may cost more than the flat in-RAM stable_sort,
but only by a bounded factor, at ANY budget. The slowdown is a
within-run ratio (both builds ran on the same machine over the same
data), so the gate transfers across hardware. The sweep must contain at
least one row that actually took the external path (external = true with
runs > 1); a set cap with no paged rows, or none external, fails —
mirroring --min-update-speedup.

Two metrics:

  speedup     (default) gate on each row's batched-vs-scalar speedup —
              the ratio is measured within one run on one machine, so it
              transfers across hardware. This is what CI uses: the
              checked-in baseline and the CI runner are different
              machines, and absolute ns/probe does not transfer.
  batched_ns  gate on absolute batched throughput (1 / ns-per-probe).
              Only meaningful when baseline and current ran on the same
              hardware (e.g. a perf box tracking its own trajectory).

The gate is the geometric mean over all common rows: a single noisy row
should not fail CI, a broad slowdown should. Per-row ratios are printed
so a localized regression is still visible in the log even when the
geomean passes.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json \
      [--metric speedup|batched_ns] [--tolerance 0.25] \
      [--serving-json SERVING.json] [--max-coalesce-ratio 0.9]
"""

import argparse
import json
import math
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for block in ("results", "range_probes", "partitioned", "simd",
                  "maintenance", "key_width"):
        for row in doc.get(block, []):
            key = (block, row["spec"], row["batch"], row.get("threads", 1))
            rows[key] = row
    return doc, rows


def row_metric(row, metric):
    if metric == "speedup":
        return row.get("speedup")
    # Throughput, so that "ratio < 1" always means "got slower".
    ns = row.get("batched_ns_per_probe")
    return None if not ns else 1e3 / ns


def check_serving(path, max_coalesce_ratio):
    """Returns True when the serving gate FAILED."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("serving", [])
    failed = False
    pressure_checked = 0
    for row in rows:
        label = f"{row.get('scenario', '?')}/{row.get('spec', '?')}"
        enqueued = row.get("enqueued_batches", 0)
        applied = row.get("batches_applied", 0)
        published = row.get("groups_published", 0)
        # Conservation: everything accepted was applied, and a coalesced
        # application can never publish more versions than batches it ate.
        if applied != enqueued:
            print(f"FAIL: serving {label}: applied {applied} batches but "
                  f"enqueued {enqueued} (lost or phantom updates)")
            failed = True
        if published > applied:
            print(f"FAIL: serving {label}: published {published} versions "
                  f"from {applied} batches")
            failed = True
        if not row.get("pressure"):
            continue
        pressure_checked += 1
        ratio = (published / enqueued) if enqueued else 0.0
        print(f"serving coalesce: {label:<24} enqueued={enqueued:>6} "
              f"published={published:>6} ratio={ratio:.4f} "
              f"(cap {max_coalesce_ratio:.2f})")
        if enqueued == 0:
            print(f"FAIL: serving {label}: pressure scenario enqueued "
                  f"nothing — no pressure was generated")
            failed = True
        elif ratio > max_coalesce_ratio:
            print(f"FAIL: serving {label}: coalescing applied {published} "
                  f"rebuilds for {enqueued} enqueued batches "
                  f"(ratio {ratio:.3f} > cap {max_coalesce_ratio:.2f})")
            failed = True
    if pressure_checked == 0:
        print("FAIL: --max-coalesce-ratio set but the serving JSON has no "
              "pressure rows (bench_serving not run, or scenarios changed?)")
        failed = True
    return failed


def check_advisor(path, min_ratio):
    """Returns True when the advisor gate FAILED."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("advisor", [])
    failed = False
    for row in rows:
        mix = row.get("mix", "?")
        picked = row.get("picked_spec", "?")
        best = row.get("best_static_spec", "?")
        ratio = row.get("ratio")
        print(f"advisor: {mix:<18} picked={picked:<16} best={best:<16} "
              f"ratio={ratio:.3f} (floor {min_ratio:.2f})")
        if ratio is None or ratio < min_ratio:
            print(f"FAIL: advisor pick {picked} on {mix} delivers only "
                  f"{ratio:.2f}x the best static spec {best} "
                  f"(floor {min_ratio:.2f}x)")
            failed = True
    if not rows:
        print("FAIL: --min-advisor-ratio set but the advisor JSON has no "
              "advisor rows (bench_advisor not run, or schema changed?)")
        failed = True
    return failed


def check_paged(path, max_slowdown):
    """Returns True when the paged-build gate FAILED."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("paged", [])
    failed = False
    external_seen = 0
    for row in rows:
        pages = row.get("buffer_pages", 0)
        label = "unbounded" if pages == 0 else f"{pages} pages"
        slowdown = row.get("build_slowdown_vs_inram")
        external = row.get("external", False)
        runs = row.get("runs", 0)
        print(f"paged build: {label:<12} external={str(external):<5} "
              f"runs={runs:>4} slowdown={slowdown:.3f} "
              f"(cap {max_slowdown:.2f})")
        if slowdown is None or slowdown > max_slowdown:
            print(f"FAIL: paged build at {label}: {slowdown:.2f}x the "
                  f"in-RAM build (cap {max_slowdown:.2f}x)")
            failed = True
        if external:
            external_seen += 1
            if runs <= 1:
                print(f"FAIL: paged build at {label}: external build "
                      f"reported {runs} run(s) — the merge never happened")
                failed = True
    if not rows:
        print("FAIL: --max-paged-build-slowdown set but the paged JSON has "
              "no paged rows (bench_paged not run, or schema changed?)")
        failed = True
    elif external_seen == 0:
        print("FAIL: no sweep row took the external build path — budgets "
              "all exceed the column, so the out-of-core path went untested")
        failed = True
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--metric", choices=["speedup", "batched_ns"],
                        default="speedup")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (0.25 = 25%%)")
    parser.add_argument("--min-update-speedup", type=float, default=0.0,
                        help="absolute floor on incremental-vs-full speedup "
                             "for part:* maintenance rows in CURRENT "
                             "(0 = off)")
    parser.add_argument("--min-simd-speedup", type=float, default=0.0,
                        help="absolute floor on SIMD-vs-scalar-unrolled "
                             "speedup for css:* simd rows in CURRENT; only "
                             "binds when CURRENT dispatched a SIMD path "
                             "(0 = off)")
    parser.add_argument("--key-width-space-band", type=float, default=0.0,
                        help="allowed fractional deviation of CURRENT's "
                             "measured 8B/4B space ratio from the analytic "
                             "model ratio (key_width_space block; 0 = off)")
    parser.add_argument("--serving-json", default=None,
                        help="bench_serving JSON to gate on coalescing "
                             "efficiency (requires --max-coalesce-ratio)")
    parser.add_argument("--max-coalesce-ratio", type=float, default=0.0,
                        help="cap on groups_published/enqueued_batches for "
                             "pressure rows in --serving-json (0 = off)")
    parser.add_argument("--advisor-json", default=None,
                        help="bench_advisor JSON to gate on adaptive-vs-"
                             "static throughput (requires "
                             "--min-advisor-ratio)")
    parser.add_argument("--min-advisor-ratio", type=float, default=0.0,
                        help="floor on best_static/picked throughput for "
                             "every mix row in --advisor-json (0 = off)")
    parser.add_argument("--paged-json", default=None,
                        help="bench_paged JSON to gate on out-of-core build "
                             "cost (requires --max-paged-build-slowdown)")
    parser.add_argument("--max-paged-build-slowdown", type=float, default=0.0,
                        help="cap on build_slowdown_vs_inram for every row "
                             "in --paged-json's budget sweep (0 = off)")
    args = parser.parse_args()

    # Serving gate: a within-run efficiency invariant, checked against the
    # CURRENT machine's bench_serving output, not the baseline.
    serving_failed = False
    if args.max_coalesce_ratio > 0:
        if not args.serving_json:
            print("FAIL: --max-coalesce-ratio set without --serving-json")
            serving_failed = True
        else:
            serving_failed = check_serving(args.serving_json,
                                           args.max_coalesce_ratio)
    elif args.serving_json:
        print("WARNING: --serving-json given without --max-coalesce-ratio; "
              "serving rows not gated")

    # Advisor gate: a within-run ratio of CURRENT's machine.
    advisor_failed = False
    if args.min_advisor_ratio > 0:
        if not args.advisor_json:
            print("FAIL: --min-advisor-ratio set without --advisor-json")
            advisor_failed = True
        else:
            advisor_failed = check_advisor(args.advisor_json,
                                           args.min_advisor_ratio)
    elif args.advisor_json:
        print("WARNING: --advisor-json given without --min-advisor-ratio; "
              "advisor rows not gated")

    # Paged-build gate: also a within-run ratio of CURRENT's machine.
    paged_failed = False
    if args.max_paged_build_slowdown > 0:
        if not args.paged_json:
            print("FAIL: --max-paged-build-slowdown set without --paged-json")
            paged_failed = True
        else:
            paged_failed = check_paged(args.paged_json,
                                       args.max_paged_build_slowdown)
    elif args.paged_json:
        print("WARNING: --paged-json given without "
              "--max-paged-build-slowdown; paged rows not gated")

    base_doc, base_rows = load_rows(args.baseline)
    cur_doc, cur_rows = load_rows(args.current)

    # Absolute floor for the maintenance path, independent of the
    # baseline: incremental refresh of a partitioned spec must beat the
    # full rebuild by at least the requested factor on THIS machine. A
    # requested floor with nothing to check is itself a failure —
    # otherwise dropping --update from the bench run would silently
    # disable the guarantee.
    floor_failed = False
    if args.min_update_speedup > 0:
        checked = 0
        for key, row in sorted(cur_rows.items()):
            if key[0] != "maintenance" or not key[1].startswith("part:"):
                continue
            speedup = row.get("speedup")
            if speedup is None:
                continue
            checked += 1
            print(f"maintenance floor: {key[1]:<16} batch={key[2]:>8} "
                  f"speedup={speedup:.3f} (floor "
                  f"{args.min_update_speedup:.2f})")
            if speedup < args.min_update_speedup:
                print(f"FAIL: {key[1]} batch={key[2]} incremental refresh "
                      f"only {speedup:.2f}x over full rebuild "
                      f"(floor {args.min_update_speedup:.2f}x)")
                floor_failed = True
        if checked == 0:
            print("FAIL: --min-update-speedup set but CURRENT has no part:* "
                  "maintenance rows (bench run without --update?)")
            floor_failed = True

    # Absolute floor for the SIMD node-search path: on a machine where a
    # vector path dispatched, the css:* batched descent must beat the
    # scalar unrolled search by at least the requested factor. Skipped
    # entirely when the recording run was scalar (forced or non-x86) —
    # there both sides of the A/B are the same kernel.
    cur_path = cur_doc.get("node_search_path", "scalar")
    if args.min_simd_speedup > 0:
        if cur_path == "scalar":
            print("simd floor: CURRENT dispatched the scalar path "
                  "(forced or non-x86); SIMD floor not applicable")
        else:
            checked = 0
            for key, row in sorted(cur_rows.items()):
                if key[0] != "simd" or not key[1].startswith("css:"):
                    continue
                speedup = row.get("speedup")
                if speedup is None:
                    continue
                checked += 1
                print(f"simd floor [{cur_path}]: {key[1]:<12} "
                      f"batch={key[2]:>6} speedup={speedup:.3f} "
                      f"(floor {args.min_simd_speedup:.2f})")
                if speedup < args.min_simd_speedup:
                    print(f"FAIL: {key[1]} batch={key[2]} SIMD node search "
                          f"only {speedup:.2f}x over scalar unrolled "
                          f"(floor {args.min_simd_speedup:.2f}x)")
                    floor_failed = True
            if checked == 0:
                print("FAIL: --min-simd-speedup set but CURRENT has no "
                      "css:* simd rows (bench schema changed?)")
                floor_failed = True

    # Key-width space model check: a within-run invariant of CURRENT (the
    # analytic ratio is hardware-independent, so no baseline is involved).
    if args.key_width_space_band > 0:
        space = cur_doc.get("key_width_space")
        if not space:
            print("FAIL: --key-width-space-band set but CURRENT has no "
                  "key_width_space block (bench schema changed?)")
            floor_failed = True
        else:
            measured = space.get("measured_ratio", 0.0)
            model = space.get("model_ratio", 0.0)
            deviation = abs(measured / model - 1.0) if model else float("inf")
            print(f"key-width space: measured {measured:.3f} vs model "
                  f"{model:.3f} (deviation {deviation:.3f}, band "
                  f"{args.key_width_space_band:.2f})")
            if deviation > args.key_width_space_band:
                print(f"FAIL: 8B/4B directory space ratio {measured:.3f} "
                      f"deviates {deviation:.1%} from the analytic "
                      f"{model:.3f} (band {args.key_width_space_band:.0%})")
                floor_failed = True

    common = sorted(set(base_rows) & set(cur_rows))
    if not common:
        print("WARNING: no common (spec, batch, threads) rows between "
              f"{args.baseline} and {args.current}; nothing to gate")
        return 1 if (floor_failed or serving_failed or paged_failed or
                     advisor_failed) else 0

    log_sum = 0.0
    compared = 0
    worst = (None, math.inf)
    print(f"{'block':<13} {'spec':<12} {'batch':>6} {'thr':>4} {'base':>9} "
          f"{'cur':>9} {'ratio':>7}")
    for key in common:
        base_v = row_metric(base_rows[key], args.metric)
        cur_v = row_metric(cur_rows[key], args.metric)
        if not base_v or not cur_v:
            continue
        ratio = cur_v / base_v
        log_sum += math.log(ratio)
        compared += 1
        if ratio < worst[1]:
            worst = (key, ratio)
        flag = "  <-- slower" if ratio < 1 - args.tolerance else ""
        print(f"{key[0]:<13} {key[1]:<12} {key[2]:>6} {key[3]:>4} "
              f"{base_v:>9.3f} {cur_v:>9.3f} {ratio:>7.3f}{flag}")

    if compared == 0:
        print("WARNING: no comparable rows; nothing to gate")
        return 1 if (floor_failed or serving_failed or paged_failed or
                     advisor_failed) else 0

    geomean = math.exp(log_sum / compared)
    floor = 1 - args.tolerance
    print(f"\nmetric={args.metric} rows={compared} "
          f"geomean ratio={geomean:.3f} (floor {floor:.2f}); "
          f"worst {worst[0]} at {worst[1]:.3f}")
    failed = False
    if geomean < floor:
        print(f"FAIL: batch-probe {args.metric} regressed "
              f">{args.tolerance:.0%} vs {args.baseline}")
        failed = True
    if floor_failed:
        print("FAIL: absolute speedup floor violated "
              "(maintenance/simd — see above)")
        failed = True
    if serving_failed:
        print("FAIL: serving coalesce gate violated (see above)")
        failed = True
    if paged_failed:
        print("FAIL: paged build gate violated (see above)")
        failed = True
    if advisor_failed:
        print("FAIL: advisor pick gate violated (see above)")
        failed = True
    if failed:
        return 1
    print("OK: no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
