#ifndef CSSIDX_BENCH_HARNESS_H_
#define CSSIDX_BENCH_HARNESS_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/any_index.h"
#include "core/index.h"
#include "util/cli.h"
#include "util/timer.h"

// Shared scaffolding for the figure-reproduction benches.
//
// Measurement protocol follows §6.1: lookup keys are generated in advance,
// each timing is the wall-clock for the whole batch of successful random
// lookups, each configuration is repeated and the *minimum* is reported.
// Results feed a `volatile` sink so the optimizer cannot delete the loop.

namespace cssidx::bench {

/// Defeats dead-code elimination of the measured lookups.
extern volatile uint64_t g_sink;

/// Common command-line knobs. Every bench accepts:
///   --n=<rows> --lookups=<count> --repeats=<r> --quick --seed=<s> --full
struct Options {
  size_t n = 0;          // 0 = bench-specific default
  size_t lookups = 100'000;
  int repeats = 3;
  bool quick = false;    // trim sweeps for smoke runs
  bool full = false;     // paper-scale sweeps (minutes)
  uint64_t seed = 17;

  static Options Parse(int argc, char** argv);
};

/// Minimum wall-clock seconds over `repeats` runs of the full lookup batch
/// using Find (successful exact-match lookups, the paper's workload).
/// KeyT is non-deduced (defaults to Key), matching FindBlocked: 8-byte
/// callers write MinFindSeconds<Key64>(index64, ...).
template <typename KeyT = Key, typename IndexT>
double MinFindSeconds(const IndexT& index, const std::vector<KeyT>& lookups,
                      int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    uint64_t sum = 0;
    Timer timer;
    for (KeyT k : lookups) {
      sum += static_cast<uint64_t>(index.Find(k));
    }
    double sec = timer.Seconds();
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  return best;
}

/// Minimum wall-clock seconds over `repeats` runs of the full lookup set
/// issued through FindBatch in blocks of `batch` probes. Works for AnyIndex
/// and for any template with a span-based FindBatch.
template <typename KeyT = Key, typename IndexT>
double MinFindBatchSeconds(const IndexT& index,
                           const std::vector<KeyT>& lookups, size_t batch,
                           int repeats) {
  std::vector<int64_t> out(lookups.size());
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    FindBlocked<KeyT>(index, lookups, batch, out);
    double sec = timer.Seconds();
    uint64_t sum = 0;
    for (int64_t v : out) sum += static_cast<uint64_t>(v);
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  return best;
}

/// Minimum wall-clock seconds over `repeats` runs of the full lookup set
/// probed one scalar EqualRange at a time (a batch of one through the
/// virtual hop) — the pre-batch duplicate-expansion path.
template <typename KeyT = Key, typename IndexT>
double MinEqualRangeScalarSeconds(const IndexT& index,
                                  const std::vector<KeyT>& lookups,
                                  int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    uint64_t sum = 0;
    Timer timer;
    for (KeyT k : lookups) {
      PositionRange range = index.EqualRange(k);
      sum += range.begin + range.end;
    }
    double sec = timer.Seconds();
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  return best;
}

/// Minimum wall-clock seconds over `repeats` runs of the full lookup set
/// issued through EqualRangeBatch in blocks of `batch` probes.
template <typename KeyT = Key, typename IndexT>
double MinEqualRangeBatchSeconds(const IndexT& index,
                                 const std::vector<KeyT>& lookups,
                                 size_t batch, int repeats) {
  std::vector<PositionRange> out(lookups.size());
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    EqualRangeBlocked<KeyT>(index, lookups, batch,
                           std::span<PositionRange>(out));
    double sec = timer.Seconds();
    uint64_t sum = 0;
    for (const PositionRange& range : out) sum += range.begin + range.end;
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  return best;
}

/// One batched-probe measurement, carrying the thread count it ran with so
/// reports can show both views: aggregate throughput (what the machine
/// delivered) and per-thread throughput (what each executor delivered).
/// Multi-thread rows are only comparable to threads=1 rows through the
/// per-thread number — aggregate alone hides oversubscription losses.
struct BatchTiming {
  double seconds = 0;
  size_t probes = 0;
  int threads = 1;

  double NsPerProbe() const {
    return probes == 0 ? 0 : seconds / static_cast<double>(probes) * 1e9;
  }
  double AggregateMProbesPerSec() const {
    return seconds == 0 ? 0 : static_cast<double>(probes) / seconds / 1e6;
  }
  double PerThreadMProbesPerSec() const {
    int t = threads > 0 ? threads : 1;
    return AggregateMProbesPerSec() / t;
  }
};

/// MinFindBatchSeconds with an explicit execution policy: minimum
/// wall-clock over `repeats` runs of the lookup set through FindBatch in
/// `batch`-probe blocks, each block sharded per `opts`. The returned
/// timing records the *effective* executor count (opts.threads, with 0
/// resolved to the pool's width) for per-thread throughput.
template <typename KeyT = Key, typename IndexT>
BatchTiming MinFindBatchTiming(const IndexT& index,
                               const std::vector<KeyT>& lookups, size_t batch,
                               int repeats, const ProbeOptions& opts) {
  std::vector<int64_t> out(lookups.size());
  BatchTiming timing;
  timing.probes = lookups.size();
  ThreadPool& pool =
      opts.pool != nullptr ? *opts.pool : ThreadPool::Shared();
  timing.threads = opts.threads > 0 ? opts.threads : pool.workers() + 1;
  timing.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    FindBlocked<KeyT>(index, lookups, batch, std::span<int64_t>(out),
                      opts);
    double sec = timer.Seconds();
    uint64_t sum = 0;
    for (int64_t v : out) sum += static_cast<uint64_t>(v);
    g_sink = g_sink + sum;
    if (sec < timing.seconds) timing.seconds = sec;
  }
  return timing;
}

/// Fixed-width text table writer that prints both a human-readable table
/// and machine-readable CSV (prefixed "csv,") so EXPERIMENTS.md and plots
/// can be produced from the same run.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void AddRow(const std::vector<std::string>& cells);
  /// Prints the aligned table to stdout, then the CSV block.
  void Print(const std::string& title) const;

  static std::string Num(double v, int precision = 4);
  static std::string Bytes(double bytes);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard bench header (what figure, what parameters).
void PrintHeader(const std::string& figure, const std::string& description,
                 const Options& options);

}  // namespace cssidx::bench

#endif  // CSSIDX_BENCH_HARNESS_H_
