// §4.1 claim: "our techniques apply to sorted arrays having elements of
// size different from the size of a key. Offsets into the leaf array are
// independent of the record size." This bench indexes arrays of 8-, 16-
// and 32-byte records and shows (a) the directory size does not change and
// (b) lookup time grows only mildly (leaf lines hold fewer keys; the
// directory traversal is untouched).

#include <cstdint>
#include <string>
#include <vector>

#include "core/record_css_tree.h"
#include "harness.h"
#include "util/rng.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <int PayloadWords>
struct Record {
  Key key;
  uint32_t payload[PayloadWords];
};
template <int PayloadWords>
struct RecordKey {
  Key operator()(const Record<PayloadWords>& r) const { return r.key; }
};

template <int PayloadWords>
void Run(Table& table, const std::vector<Key>& keys,
         const std::vector<Key>& lookups, int repeats) {
  using Rec = Record<PayloadWords>;
  std::vector<Rec> rows(keys.size());
  cssidx::Pcg32 rng(5);
  for (size_t i = 0; i < keys.size(); ++i) {
    rows[i].key = keys[i];
    for (int w = 0; w < PayloadWords; ++w) rows[i].payload[w] = rng.Next();
  }
  cssidx::RecordCssTree<Rec, RecordKey<PayloadWords>, 16> tree(rows);
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    uint64_t sum = 0;
    cssidx::Timer timer;
    for (Key k : lookups) sum += static_cast<uint64_t>(tree.Find(k));
    double sec = timer.Seconds();
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  table.AddRow({std::to_string(sizeof(Rec)) + " B", Table::Num(best),
                Table::Bytes(static_cast<double>(tree.SpaceBytes()))});
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Record-width sweep (§4.1)",
              "CSS-tree over records wider than the key", options);
  size_t n = options.n ? options.n : 2'000'000;
  if (options.quick) n = 300'000;
  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = cssidx::workload::MatchingLookups(keys, options.lookups,
                                                   options.seed + 1);
  Table table({"record size", "time (s)", "directory"});
  Run<1>(table, keys, lookups, options.repeats);   //  8-byte records
  Run<3>(table, keys, lookups, options.repeats);   // 16-byte records
  Run<7>(table, keys, lookups, options.repeats);   // 32-byte records
  Run<15>(table, keys, lookups, options.repeats);  // 64-byte records
  table.Print("Record width vs lookup time, n = " + std::to_string(n) +
              " (directory size must be constant)");
  return 0;
}
