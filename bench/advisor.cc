// Adaptive-vs-static throughput: does the self-tuning advisor actually
// land on a competitive spec? Three workload mixes (uniform point, Zipf
// point+range, update-heavy localized), each observed through an incumbent
// index wearing a ProbeStatsCollector — the same loop the serving layer
// runs — then advised, then raced: the advisor's pick vs every spec on a
// static menu, measured with the harness protocol (warmup + best-of-k).
//
// The JSON's "advisor" block is gated by tools/check_bench_regression.py
// on the RATIO best_static/picked (1.0 = the pick ties the best static
// spec, >1.0 = the pick beats the menu). Ratios transfer across runner
// hardware; absolute ns/probe does not.
//
//   $ ./bench_advisor [--n=1000000] [--lookups=131072] [--repeats=3]
//                     [--json=BENCH_advisor.json] [--quick]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "core/builder.h"
#include "core/maintained_index.h"
#include "core/probe_stats.h"
#include "harness.h"
#include "util/timer.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace {

using namespace cssidx;

// The static menu the advisor races against: one spec per method family
// plus the partitioned composites a DBA might reach for.
const std::vector<std::string>& StaticMenu() {
  static const std::vector<std::string> menu{
      "bin",      "tbin",          "interp",        "ttree:16",
      "btree:32", "css:16",        "lcss:64",       "hash:16",
      "part:4/css:16", "part:16/css:16"};
  return menu;
}

struct MixResult {
  std::string mix;
  std::string picked_spec;
  std::string best_static_spec;
  double picked_ns = 0;
  double best_static_ns = 0;
  uint64_t probes = 0;

  /// >= 1.0 when the pick ties or beats the best static spec.
  double Ratio() const {
    return picked_ns > 0 ? best_static_ns / picked_ns : 0.0;
  }
};

// Best-of-`repeats` seconds replaying the mix (points through FindBlocked,
// ranges through EqualRangeBlocked), after one untimed warmup pass.
double ProbeSeconds(const AnyIndex& index, const std::vector<Key>& points,
                    const std::vector<Key>& ranges, int repeats) {
  constexpr size_t kBatch = 256;
  std::vector<int64_t> out(points.size());
  std::vector<PositionRange> rout(ranges.size());
  double best = 1e300;
  for (int r = 0; r <= repeats; ++r) {  // r == 0 warms up
    Timer timer;
    FindBlocked(index, points, kBatch, out);
    if (!ranges.empty()) {
      EqualRangeBlocked<Key>(index, ranges, kBatch,
                             std::span<PositionRange>(rout));
    }
    double sec = timer.Seconds();
    uint64_t sum = 0;
    for (int64_t v : out) sum += static_cast<uint64_t>(v);
    for (const PositionRange& pr : rout) sum += pr.begin;
    bench::g_sink = bench::g_sink + sum;
    if (r > 0 && sec < best) best = sec;
  }
  return best;
}

// Best-of-`repeats` seconds for the update-heavy serve cycle: apply each
// maintenance batch, probe between batches. The index is rebuilt per
// repeat (untimed) so every repeat replays identical state.
double UpdateCycleSeconds(const IndexSpec& spec, const std::vector<Key>& keys,
                          const std::vector<workload::UpdateBatch>& ups,
                          const std::vector<Key>& probes, int repeats) {
  std::vector<int64_t> out(probes.size());
  double best = 1e300;
  for (int r = 0; r <= repeats; ++r) {
    MaintainedIndex mi(spec, keys);
    if (!mi.ok()) return -1.0;
    Timer timer;
    for (const workload::UpdateBatch& up : ups) {
      mi.ApplySortedBatch(up.inserts, up.deletes);
      mi.FindBatch(probes, out);
    }
    double sec = timer.Seconds();
    uint64_t sum = 0;
    for (int64_t v : out) sum += static_cast<uint64_t>(v);
    bench::g_sink = bench::g_sink + sum;
    if (r > 0 && sec < best) best = sec;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  CliArgs args(argc, argv);
  const size_t n = options.n != 0 ? options.n
                                  : (options.quick ? 200'000 : 1'000'000);
  const size_t lookups = args.Has("lookups")
                             ? static_cast<size_t>(args.GetInt("lookups", 0))
                             : (options.quick ? size_t{1} << 15
                                              : size_t{1} << 17);
  const int repeats = options.repeats;
  std::string json_path = args.GetString("json", "BENCH_advisor.json");

  bench::PrintHeader(
      "advisor",
      "self-tuning advisor pick vs the static spec menu, n=" +
          std::to_string(n),
      options);

  auto keys = workload::DistinctSortedKeys(n, options.seed, 4);
  std::vector<MixResult> results;

  // ---- probe-only mixes: uniform point, Zipf point+range ----------------
  struct ProbeMix {
    const char* name;
    std::vector<Key> points;
    std::vector<Key> ranges;
  };
  std::vector<ProbeMix> probe_mixes;
  probe_mixes.push_back(
      {"uniform_point", workload::MatchingLookups(keys, lookups, 21), {}});
  probe_mixes.push_back(
      {"zipf_point_range",
       workload::SkewedLookups(keys, lookups * 3 / 4, 0.86, 22),
       workload::SkewedLookups(keys, lookups / 4, 0.86, 23)});

  for (ProbeMix& mix : probe_mixes) {
    AnyIndex incumbent = BuildIndex(IndexSpec(), keys);
    auto collector = std::make_shared<ProbeStatsCollector>();
    incumbent.AttachStats(collector);
    std::vector<int64_t> out(mix.points.size());
    FindBlocked(incumbent, mix.points, 256, out);
    if (!mix.ranges.empty()) {
      std::vector<PositionRange> rout(mix.ranges.size());
      EqualRangeBlocked<Key>(incumbent, mix.ranges, 256,
                             std::span<PositionRange>(rout));
    }

    advisor::AdvisorOptions opts;
    opts.microbench = true;
    opts.microbench_top = 3;
    auto rec = advisor::AdviseOnKeys<Key>(collector->Profile(), keys, opts);
    if (!rec.ok) {
      std::printf("advisor failed on %s: %s\n", mix.name, rec.error.c_str());
      return 1;
    }

    MixResult r;
    r.mix = mix.name;
    r.picked_spec = rec.spec.ToString();
    r.probes = mix.points.size() + mix.ranges.size();
    double best = 1e300;
    for (const std::string& text : StaticMenu()) {
      AnyIndex index = BuildIndex(*IndexSpec::Parse(text), keys);
      if (!index) continue;
      double sec = ProbeSeconds(index, mix.points, mix.ranges, repeats);
      if (sec < best) {
        best = sec;
        r.best_static_spec = text;
      }
    }
    AnyIndex picked = BuildIndex(rec.spec, keys);
    double pick_sec = ProbeSeconds(picked, mix.points, mix.ranges, repeats);
    r.picked_ns = pick_sec / static_cast<double>(r.probes) * 1e9;
    r.best_static_ns = best / static_cast<double>(r.probes) * 1e9;
    results.push_back(std::move(r));
  }

  // ---- update-heavy mix -------------------------------------------------
  {
    std::vector<workload::UpdateBatch> ups;
    const size_t window = std::max<size_t>(n / 200, 64);
    for (int b = 0; b < 8; ++b) {
      size_t lo = n / 2 + static_cast<size_t>(b) * window;
      std::vector<Key> cur(keys.begin() + lo, keys.begin() + lo + window);
      workload::UpdateBatch up;
      if (b % 2 == 0) {
        up.deletes = std::move(cur);
      } else {
        up.inserts.assign(keys.begin() + lo - window, keys.begin() + lo);
      }
      ups.push_back(std::move(up));
    }
    auto probes = workload::MatchingLookups(keys, lookups / 8, 31);

    MaintainedIndex incumbent(IndexSpec(), keys);
    auto collector = incumbent.EnableStats();
    std::vector<int64_t> out(probes.size());
    for (const workload::UpdateBatch& up : ups) {
      incumbent.ApplySortedBatch(up.inserts, up.deletes);
      incumbent.FindBatch(probes, out);
    }

    advisor::AdvisorOptions opts;
    auto rec = advisor::Advise(collector->Profile(), n, opts);
    if (!rec.ok) {
      std::printf("advisor failed on update_heavy: %s\n", rec.error.c_str());
      return 1;
    }

    MixResult r;
    r.mix = "update_heavy";
    r.picked_spec = rec.spec.ToString();
    r.probes = probes.size() * ups.size();
    double best = 1e300;
    int cycle_repeats = std::max(repeats / 2, 1);
    for (const std::string& text : StaticMenu()) {
      double sec = UpdateCycleSeconds(*IndexSpec::Parse(text), keys, ups,
                                      probes, cycle_repeats);
      if (sec >= 0 && sec < best) {
        best = sec;
        r.best_static_spec = text;
      }
    }
    double pick_sec =
        UpdateCycleSeconds(rec.spec, keys, ups, probes, cycle_repeats);
    r.picked_ns = pick_sec / static_cast<double>(r.probes) * 1e9;
    r.best_static_ns = best / static_cast<double>(r.probes) * 1e9;
    results.push_back(std::move(r));
  }

  bench::Table table({"mix", "picked", "best static", "picked ns/probe",
                      "best ns/probe", "ratio"});
  for (const MixResult& r : results) {
    table.AddRow({r.mix, r.picked_spec, r.best_static_spec,
                  bench::Table::Num(r.picked_ns, 1),
                  bench::Table::Num(r.best_static_ns, 1),
                  bench::Table::Num(r.Ratio(), 3)});
  }
  table.Print("advisor pick vs static menu, n=" + std::to_string(n));

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"advisor\",\n  \"n\": %zu,\n"
               "  \"lookups\": %zu,\n  \"repeats\": %d,\n"
               "  \"advisor\": [\n",
               n, lookups, repeats);
  for (size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    std::fprintf(
        json,
        "    {\"mix\": \"%s\", \"picked_spec\": \"%s\", "
        "\"best_static_spec\": \"%s\", \"picked_ns_per_probe\": %.2f, "
        "\"best_static_ns_per_probe\": %.2f, \"ratio\": %.4f, "
        "\"probes\": %llu}%s\n",
        r.mix.c_str(), r.picked_spec.c_str(), r.best_static_spec.c_str(),
        r.picked_ns, r.best_static_ns, r.Ratio(),
        static_cast<unsigned long long>(r.probes),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
