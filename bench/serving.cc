// Mixed read/write throughput through the serving layer: N reader
// sessions issuing batched FIND statements against live snapshots while a
// producer pushes INSERT/DELETE batches through the bounded UpdateQueue
// and the single writer drains + coalesces. Three scenarios per spec:
//
//   read_only  - no writer pressure; the snapshot read path's ceiling.
//   mixed      - a rate-limited producer; sustained concurrent refresh.
//   pressure   - a saturating producer (enqueue cost is O(batch), apply
//                cost is O(n), so arrivals outrun rebuilds on ANY
//                machine): the coalescing path must show applied
//                rebuilds << enqueued batches.
//
// Reported per scenario: reader throughput (Mprobes/s), per-statement
// p50/p99 latency, and the writer-side coalescing counters. The JSON's
// "serving" block is gated by tools/check_bench_regression.py on
// COALESCING EFFICIENCY (groups_published / enqueued_batches under
// pressure), not absolute throughput — the machine-transferable
// invariant (hardware_threads is recorded so a future multi-core gate
// can condition on it).
//
//   $ ./bench_serving [--n=2000000] [--readers=2] [--find-batch=256]
//                     [--update-keys=256] [--duration-ms=500]
//                     [--spec=css:16] [--json=BENCH_serving.json] [--quick]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cssidx;

struct ScenarioResult {
  std::string scenario;
  bool pressure = false;
  std::string spec;
  int readers = 0;
  uint64_t statements = 0;
  uint64_t probes = 0;
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
  serve::QueueStats queue;
  serve::ServerStats writer;

  double MProbesPerSec() const {
    return seconds > 0 ? static_cast<double>(probes) / seconds / 1e6 : 0;
  }
  double CoalesceRatio() const {
    return queue.enqueued_batches == 0
               ? 0.0
               : static_cast<double>(writer.groups_published) /
                     static_cast<double>(queue.enqueued_batches);
  }
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  size_t i = static_cast<size_t>(p * static_cast<double>(sorted_us.size()));
  return sorted_us[std::min(i, sorted_us.size() - 1)];
}

ScenarioResult RunScenario(const std::string& scenario,
                           const std::string& spec_text, size_t n,
                           int readers, size_t find_batch, size_t update_keys,
                           int duration_ms, uint64_t seed) {
  const bool writes = scenario != "read_only";
  const bool pressure = scenario == "pressure";

  serve::Server::Options options;
  options.queue_capacity = 64;
  options.admission = serve::Admission::kBlock;
  serve::Server server(options);
  Pcg32 seed_rng(seed);
  const uint32_t domain = static_cast<uint32_t>(2 * n);
  std::vector<uint32_t> initial(n);
  for (auto& k : initial) k = seed_rng.Below(domain);
  server.CreateTable("t", std::move(initial), *IndexSpec::Parse(spec_text));
  server.Start();

  // Pregenerated probe pool (~50% hits), shared read-only by readers.
  std::vector<uint32_t> probe_pool(1 << 20);
  for (auto& k : probe_pool) k = seed_rng.Below(domain);

  std::atomic<bool> stop{false};
  std::vector<uint64_t> reader_statements(readers, 0);
  std::vector<uint64_t> reader_probes(readers, 0);
  std::vector<std::vector<double>> reader_latencies(readers);

  std::vector<std::thread> threads;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      serve::Session session = server.OpenSession();
      Pcg32 rng(seed + 100 + static_cast<uint64_t>(t));
      std::string statement;
      while (!stop.load(std::memory_order_relaxed)) {
        statement = "FIND t";
        size_t base = rng.Below(
            static_cast<uint32_t>(probe_pool.size() - find_batch));
        for (size_t i = 0; i < find_batch; ++i) {
          statement += " " + std::to_string(probe_pool[base + i]);
        }
        Timer timer;
        serve::StatementResult result = session.Execute(statement);
        double us = timer.Seconds() * 1e6;
        if (!result.ok()) break;
        bench::g_sink = bench::g_sink +
                        static_cast<uint64_t>(result.positions.back() + 1);
        ++reader_statements[t];
        reader_probes[t] += find_batch;
        reader_latencies[t].push_back(us);
      }
    });
  }

  std::thread producer;
  if (writes) {
    producer = std::thread([&] {
      serve::Session session = server.OpenSession();
      Pcg32 rng(seed + 7);
      std::string statement;
      while (!stop.load(std::memory_order_relaxed)) {
        for (const char* verb : {"INSERT", "DELETE"}) {
          statement = std::string(verb) + " t";
          for (size_t i = 0; i < update_keys / 2; ++i) {
            statement += " " + std::to_string(rng.Below(domain));
          }
          if (!session.Execute(statement).ok()) return;
        }
        if (!pressure) {
          // Rate-limited: a trickle the writer can keep up with.
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }

  Timer wall;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  double seconds = wall.Seconds();
  for (auto& t : threads) t.join();
  if (producer.joinable()) producer.join();
  server.Stop();  // drains every accepted write

  ScenarioResult result;
  result.scenario = scenario;
  result.pressure = pressure;
  result.spec = spec_text;
  result.readers = readers;
  result.seconds = seconds;
  std::vector<double> all_latencies;
  for (int t = 0; t < readers; ++t) {
    result.statements += reader_statements[t];
    result.probes += reader_probes[t];
    all_latencies.insert(all_latencies.end(), reader_latencies[t].begin(),
                         reader_latencies[t].end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  result.p50_us = Percentile(all_latencies, 0.50);
  result.p99_us = Percentile(all_latencies, 0.99);
  result.queue = server.queue_stats();
  result.writer = server.writer_stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  CliArgs args(argc, argv);
  size_t n = options.n != 0 ? options.n
                            : (options.quick ? 500'000 : 2'000'000);
  int readers = static_cast<int>(args.GetInt("readers", 2));
  size_t find_batch = static_cast<size_t>(args.GetInt("find-batch", 256));
  size_t update_keys = static_cast<size_t>(args.GetInt("update-keys", 256));
  int duration_ms =
      static_cast<int>(args.GetInt("duration-ms", options.quick ? 250 : 500));
  std::string spec_text = args.GetString("spec", "css:16");
  std::string json_path = args.GetString("json", "BENCH_serving.json");

  bench::PrintHeader(
      "serving",
      "concurrent sessions vs writer pressure through src/serve, n=" +
          std::to_string(n) + ", spec=" + spec_text,
      options);

  std::vector<ScenarioResult> results;
  for (const char* scenario : {"read_only", "mixed", "pressure"}) {
    results.push_back(RunScenario(scenario, spec_text, n, readers, find_batch,
                                  update_keys, duration_ms, options.seed));
  }

  bench::Table table({"scenario", "spec", "readers", "Mprobes/s", "p50 us",
                      "p99 us", "enqueued", "published", "coalesce",
                      "hi-water"});
  for (const ScenarioResult& r : results) {
    table.AddRow({r.scenario, r.spec, std::to_string(r.readers),
                  bench::Table::Num(r.MProbesPerSec(), 3),
                  bench::Table::Num(r.p50_us, 1),
                  bench::Table::Num(r.p99_us, 1),
                  std::to_string(r.queue.enqueued_batches),
                  std::to_string(r.writer.groups_published),
                  bench::Table::Num(r.CoalesceRatio(), 3),
                  std::to_string(r.queue.depth_high_water)});
  }
  table.Print("serving throughput, n=" + std::to_string(n) +
              ", hardware threads=" +
              std::to_string(ThreadPool::HardwareThreads()));

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"serving\",\n  \"n\": %zu,\n"
               "  \"readers\": %d,\n  \"find_batch\": %zu,\n"
               "  \"update_keys\": %zu,\n  \"duration_ms\": %d,\n"
               "  \"hardware_threads\": %d,\n  \"serving\": [\n",
               n, readers, find_batch, update_keys, duration_ms,
               ThreadPool::HardwareThreads());
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        json,
        "    {\"scenario\": \"%s\", \"pressure\": %s, \"spec\": \"%s\", "
        "\"readers\": %d, \"statements\": %llu, \"probes\": %llu, "
        "\"mprobes_per_sec\": %.3f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"enqueued_batches\": %llu, \"batches_applied\": %llu, "
        "\"groups_published\": %llu, \"coalesce_ratio\": %.4f, "
        "\"queue_high_water\": %zu, \"rejected_batches\": %llu}%s\n",
        r.scenario.c_str(), r.pressure ? "true" : "false", r.spec.c_str(),
        r.readers, static_cast<unsigned long long>(r.statements),
        static_cast<unsigned long long>(r.probes), r.MProbesPerSec(),
        r.p50_us, r.p99_us,
        static_cast<unsigned long long>(r.queue.enqueued_batches),
        static_cast<unsigned long long>(r.writer.batches_applied),
        static_cast<unsigned long long>(r.writer.groups_published),
        r.CoalesceRatio(), r.queue.depth_high_water,
        static_cast<unsigned long long>(r.queue.rejected_batches),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
