// Figure 8: space vs number of indexed records, indirect (a) and direct
// (b) accounting, n from 1e7 to 9e7 — pure model curves (the same formulas
// Figure 7 instantiates at n = 1e7).
//
// The model tables are followed by a measured table: the same methods
// built through the spec-driven BuildIndex entry (IndexSpec strings, the
// dispatch every engine path pays) with AnyIndex::SpaceBytes() against the
// indirect model prediction. The paper's space claims are formulas; this
// checks the implementation actually honors them (ratio ~1 for B+ and both
// CSS variants; T-tree and hash deviate where the implementation pads
// nodes/64-byte buckets the model's occupancy assumptions do not).

#include <string>
#include <vector>

#include "analytic/params.h"
#include "analytic/space_model.h"
#include "core/builder.h"
#include "harness.h"
#include "util/bits.h"
#include "workload/key_gen.h"

namespace {

/// Indirect-accounting model bytes for one measured spec, n records.
double ModelBytes(cssidx::Method method, cssidx::analytic::Params pn,
                  double m) {
  namespace analytic = cssidx::analytic;
  switch (method) {
    case cssidx::Method::kTTree:
      return analytic::TTreeSpaceIndirect(pn, m);
    case cssidx::Method::kBPlusTree:
      return analytic::BPlusSpace(pn, m);
    case cssidx::Method::kFullCss:
      return analytic::FullCssSpace(pn, m);
    case cssidx::Method::kLevelCss:
      return analytic::LevelCssSpace(pn, m);
    case cssidx::Method::kHash:
      return analytic::HashSpaceIndirect(pn);
    default:
      return 0.0;  // bin/interp: search the array in place
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  namespace analytic = cssidx::analytic;
  using cssidx::IndexSpec;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figure 8", "space vs n, indirect and direct", options);

  analytic::Params p = analytic::Table1();
  double m = p.SlotsPerNode();

  for (bool direct : {false, true}) {
    Table table({"n", "binary/interp", "T-tree", "B+-tree", "full CSS",
                 "level CSS", "hash"});
    for (double n = 1e7; n <= 9e7 + 1; n += 2e7) {
      analytic::Params pn = p;
      pn.n = n;
      double ttree = direct ? analytic::TTreeSpaceDirect(pn, m)
                            : analytic::TTreeSpaceIndirect(pn, m);
      double hash = direct ? analytic::HashSpaceDirect(pn)
                           : analytic::HashSpaceIndirect(pn);
      table.AddRow({Table::Num(n, 3), "0", Table::Num(ttree, 6),
                    Table::Num(analytic::BPlusSpace(pn, m), 6),
                    Table::Num(analytic::FullCssSpace(pn, m), 6),
                    Table::Num(analytic::LevelCssSpace(pn, m), 6),
                    Table::Num(hash, 6)});
    }
    table.Print(direct ? "Figure 8(b): direct space (bytes)"
                       : "Figure 8(a): indirect space (bytes)");
  }

  // Measured: build each spec, read back SpaceBytes, compare to the
  // indirect model at the same n and node size.
  std::vector<size_t> sizes{1'000'000, 5'000'000, 10'000'000};
  if (options.quick) sizes = {300'000, 1'000'000};
  Table measured({"spec", "n", "measured bytes", "model bytes",
                  "measured/model"});
  for (size_t n : sizes) {
    auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
    int hash_bits = std::clamp(cssidx::CeilLog2(n / 4), 4, 24);
    for (const std::string& text :
         {std::string("ttree:16"), std::string("btree:16"),
          std::string("css:16"), std::string("lcss:16"),
          "hash:" + std::to_string(hash_bits)}) {
      IndexSpec spec = *IndexSpec::Parse(text);
      cssidx::AnyIndex index = BuildIndex(spec, keys);
      analytic::Params pn = p;
      pn.n = static_cast<double>(n);
      double model = ModelBytes(spec.method(), pn, m);
      double bytes = static_cast<double>(index.SpaceBytes());
      measured.AddRow({spec.ToString(), std::to_string(n),
                       Table::Num(bytes, 6), Table::Num(model, 6),
                       model > 0 ? Table::Num(bytes / model, 3) : "-"});
    }
  }
  measured.Print("measured SpaceBytes via IndexSpec menu vs indirect model");
  return 0;
}
