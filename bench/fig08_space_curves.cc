// Figure 8: space vs number of indexed records, indirect (a) and direct
// (b) accounting, n from 1e7 to 9e7 — pure model curves (the same formulas
// Figure 7 instantiates at n = 1e7).

#include <string>
#include <vector>

#include "analytic/params.h"
#include "analytic/space_model.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  namespace analytic = cssidx::analytic;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figure 8", "space vs n, indirect and direct", options);

  analytic::Params p = analytic::Table1();
  double m = p.SlotsPerNode();

  for (bool direct : {false, true}) {
    Table table({"n", "binary/interp", "T-tree", "B+-tree", "full CSS",
                 "level CSS", "hash"});
    for (double n = 1e7; n <= 9e7 + 1; n += 2e7) {
      analytic::Params pn = p;
      pn.n = n;
      double ttree = direct ? analytic::TTreeSpaceDirect(pn, m)
                            : analytic::TTreeSpaceIndirect(pn, m);
      double hash = direct ? analytic::HashSpaceDirect(pn)
                           : analytic::HashSpaceIndirect(pn);
      table.AddRow({Table::Num(n, 3), "0", Table::Num(ttree, 6),
                    Table::Num(analytic::BPlusSpace(pn, m), 6),
                    Table::Num(analytic::FullCssSpace(pn, m), 6),
                    Table::Num(analytic::LevelCssSpace(pn, m), 6),
                    Table::Num(hash, 6)});
    }
    table.Print(direct ? "Figure 8(b): direct space (bytes)"
                       : "Figure 8(a): indirect space (bytes)");
  }
  return 0;
}
