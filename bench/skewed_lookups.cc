// §5.1 claim: "If a bunch of searches are performed in sequence, the top
// level nodes will stay in the cache. Since CSS-trees have fewer levels
// than all the other methods, it will also gain the most benefit from a
// warm cache." Zipf-skewed lookup streams concentrate probes on popular
// keys and keep paths resident; this bench compares uniform vs skewed
// streams per method.

#include <string>
#include <vector>

#include "baselines/binary_search.h"
#include "baselines/bplus_tree.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <typename IndexT>
void Run(Table& table, const std::string& name, const IndexT& index,
         const std::vector<Key>& uniform, const std::vector<Key>& skewed,
         int repeats) {
  double u = MinFindSeconds(index, uniform, repeats);
  double s = MinFindSeconds(index, skewed, repeats);
  table.AddRow({name, Table::Num(u), Table::Num(s),
                Table::Num(100.0 * (u - s) / u, 3) + "%"});
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Warm-cache / skew benefit (§5.1)",
              "uniform vs Zipf(0.99) lookup streams", options);
  size_t n = options.n ? options.n : 2'000'000;
  if (options.quick) n = 300'000;
  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto uniform = cssidx::workload::MatchingLookups(keys, options.lookups,
                                                   options.seed + 1);
  auto skewed = cssidx::workload::SkewedLookups(keys, options.lookups, 0.99,
                                                options.seed + 2);

  Table table({"method", "uniform (s)", "zipf 0.99 (s)", "skew speedup"});
  Run(table, "array binary search", cssidx::BinarySearchIndex(keys), uniform,
      skewed, options.repeats);
  Run(table, "T-tree", cssidx::TTreeIndex<16>(keys), uniform, skewed,
      options.repeats);
  Run(table, "B+-tree", cssidx::BPlusTree<16>(keys), uniform, skewed,
      options.repeats);
  Run(table, "full CSS-tree", cssidx::FullCssTree<16>(keys), uniform, skewed,
      options.repeats);
  table.Print("Uniform vs skewed lookups, n = " + std::to_string(n));
  return 0;
}
