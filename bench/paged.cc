// Out-of-core build + probe bench: one column, one spec, a sweep over the
// buffer-pool budget. For each budget the paged table rebuilds its sort
// index — routing through the external merge sort once the column
// exceeds the pool — and then serves batched Find probes from the built
// index. The numbers make the paper's §5 claim measurable: build cost
// degrades gracefully as the budget shrinks (sequential run/merge I/O),
// while probe throughput stays flat because the directory and sorted
// lists are RAM-resident no matter how small the pool was.
//
// The JSON's "paged" block is gated by tools/check_bench_regression.py on
// build_slowdown_vs_inram — a within-run ratio (paged build over flat
// in-RAM build of the SAME data on the SAME machine), so the gate
// transfers across hardware.
//
//   $ ./bench_paged [--n=1000000] [--page-bytes=65536] [--spec=css:16]
//                   [--lookups=200000] [--repeats=3] [--quick]
//                   [--json=BENCH_paged.json]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/table.h"
#include "harness.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace cssidx;

struct SweepRow {
  size_t buffer_pages = 0;
  double budget_fraction = 0;  // of the column's pages; 0 = unbounded
  bool external = false;
  size_t runs = 0;
  double build_seconds = 0;
  double build_slowdown = 0;
  double probe_mkeys = 0;
  size_t faults = 0;
  size_t spill_reads = 0;
  size_t spill_writes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  CliArgs args(argc, argv);
  const size_t n =
      options.n != 0 ? options.n : (options.quick ? 200'000 : 1'000'000);
  const auto page_bytes =
      static_cast<size_t>(args.GetInt("page-bytes", 1 << 16));
  const std::string spec_text = args.GetString("spec", "css:16");
  const std::string json_path = args.GetString("json", "BENCH_paged.json");
  const IndexSpec spec = *IndexSpec::Parse(spec_text);

  Pcg32 rng(options.seed);
  std::vector<uint32_t> data(n);
  for (auto& v : data) v = rng.Below(static_cast<uint32_t>(n));
  std::vector<uint32_t> lookups(options.lookups);
  for (auto& k : lookups) k = data[rng.Below(static_cast<uint32_t>(n))];

  // Flat in-RAM baseline: the denominator of every gated ratio.
  engine::Table flat;
  flat.AddColumn("k", data);
  double inram_build = 1e300;
  for (int r = 0; r < options.repeats; ++r) {
    Timer timer;
    flat.BuildSortIndex("k", spec);
    inram_build = std::min(inram_build, timer.Seconds());
  }
  const double inram_probe =
      bench::MinFindBatchSeconds(flat.GetSortIndex("k"), lookups, 256,
                                 options.repeats);

  const size_t values_per_page = std::max<size_t>(page_bytes / 4, 1);
  const size_t column_pages = (n + values_per_page - 1) / values_per_page;
  // Budget sweep: unbounded, then the column shrunk to 1/2, 1/4, 1/16 of
  // its pages, then a near-minimal pool. Every bounded budget below the
  // column's page count forces the external build path.
  std::vector<size_t> budgets{0};
  for (size_t b : {column_pages / 2, column_pages / 4, column_pages / 16,
                   size_t{8}}) {
    b = std::max<size_t>(b, 2);  // a 1-page pool can't even double-buffer
    if (std::find(budgets.begin(), budgets.end(), b) == budgets.end()) {
      budgets.push_back(b);
    }
  }
  std::vector<SweepRow> rows;
  for (size_t budget : budgets) {
    engine::TableOptions topts;
    topts.page_bytes = page_bytes;
    topts.buffer_pages = budget;
    engine::Table paged(topts);
    paged.AddColumn("k", data);

    SweepRow row;
    row.buffer_pages = budget;
    row.budget_fraction =
        budget == 0 ? 0.0
                    : static_cast<double>(budget) /
                          static_cast<double>(column_pages);
    const store::BufferStats before = paged.PoolStats();
    row.build_seconds = 1e300;
    for (int r = 0; r < options.repeats; ++r) {
      Timer timer;
      paged.BuildSortIndex("k", spec);
      row.build_seconds = std::min(row.build_seconds, timer.Seconds());
    }
    const store::BufferStats after = paged.PoolStats();
    const engine::SortIndex& index = paged.GetSortIndex("k");
    row.external = index.external_build();
    row.runs = index.external_runs();
    row.build_slowdown = row.build_seconds / inram_build;
    row.faults = after.faults - before.faults;
    row.spill_reads = after.spill_reads - before.spill_reads;
    row.spill_writes = after.spill_writes - before.spill_writes;
    const double probe_sec =
        bench::MinFindBatchSeconds(index, lookups, 256, options.repeats);
    row.probe_mkeys =
        static_cast<double>(lookups.size()) / probe_sec / 1e6;
    rows.push_back(row);
  }

  bench::Table table({"buffer_pages", "fraction", "external", "runs",
                      "build s", "slowdown", "probe Mk/s", "faults",
                      "spill_rd", "spill_wr"});
  for (const SweepRow& r : rows) {
    table.AddRow({r.buffer_pages == 0 ? "unbounded"
                                      : std::to_string(r.buffer_pages),
                  bench::Table::Num(r.budget_fraction, 3),
                  r.external ? "yes" : "no", std::to_string(r.runs),
                  bench::Table::Num(r.build_seconds, 4),
                  bench::Table::Num(r.build_slowdown, 2),
                  bench::Table::Num(r.probe_mkeys, 2),
                  std::to_string(r.faults), std::to_string(r.spill_reads),
                  std::to_string(r.spill_writes)});
  }
  table.Print("paged build + probe, n=" + std::to_string(n) + ", spec=" +
              spec_text + ", page_bytes=" + std::to_string(page_bytes) +
              ", inram_build=" + bench::Table::Num(inram_build, 4) + "s" +
              ", inram_probe=" +
              bench::Table::Num(
                  static_cast<double>(lookups.size()) / inram_probe / 1e6,
                  2) +
              " Mk/s");

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"paged\",\n  \"n\": %zu,\n"
               "  \"page_bytes\": %zu,\n  \"column_pages\": %zu,\n"
               "  \"spec\": \"%s\",\n  \"lookups\": %zu,\n"
               "  \"inram_build_seconds\": %.6f,\n"
               "  \"inram_probe_mkeys_per_sec\": %.3f,\n  \"paged\": [\n",
               n, page_bytes, column_pages, spec_text.c_str(),
               lookups.size(), inram_build,
               static_cast<double>(lookups.size()) / inram_probe / 1e6);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(
        json,
        "    {\"buffer_pages\": %zu, \"budget_fraction\": %.4f, "
        "\"external\": %s, \"runs\": %zu, \"build_seconds\": %.6f, "
        "\"build_slowdown_vs_inram\": %.3f, \"probe_mkeys_per_sec\": %.3f, "
        "\"faults\": %zu, \"spill_reads\": %zu, \"spill_writes\": %zu}%s\n",
        r.buffer_pages, r.budget_fraction, r.external ? "true" : "false",
        r.runs, r.build_seconds, r.build_slowdown, r.probe_mkeys, r.faults,
        r.spill_reads, r.spill_writes, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
