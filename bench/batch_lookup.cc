// Scalar vs batched probe throughput across the suite, the operational
// payoff of the batch-first AnyIndex contract: group probing + software
// prefetch overlap the per-probe cache misses the paper counts (§5), so
// batched lookups beat one-at-a-time scalar probes on memory-bound trees.
//
// Sweeps batch sizes 1..1024 for every method and emits both the standard
// table/CSV and a JSON file (default BENCH_batch_lookup.json) so the perf
// trajectory can track batch throughput run over run.
//
//   $ ./bench_batch_lookup [--n=10000000] [--lookups=1000000]
//                          [--json=BENCH_batch_lookup.json] [--quick]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/builder.h"
#include "harness.h"
#include "util/bits.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace {

using namespace cssidx;

struct Row {
  std::string spec;
  size_t batch;
  double scalar_ns;
  double batch_ns;
};

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  CliArgs args(argc, argv);
  size_t n = options.n != 0 ? options.n
                            : (options.quick ? 1'000'000 : 10'000'000);
  std::string json_path =
      args.GetString("json", "BENCH_batch_lookup.json");

  bench::PrintHeader(
      "batch_lookup",
      "scalar Find loop vs FindBatch (group probing + prefetch), n=" +
          std::to_string(n),
      options);

  auto keys = workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = workload::MatchingLookups(keys, options.lookups,
                                           options.seed + 1);

  // Hash directory sized the paper's way: ~n / pairs-per-bucket buckets.
  int hash_bits = std::clamp(CeilLog2(n / 4), 4, 24);

  std::vector<std::string> spec_texts{"bin",     "ttree:16", "btree:16",
                                      "css:16",  "lcss:16",
                                      "hash:" + std::to_string(hash_bits)};
  std::vector<size_t> batches{1, 4, 16, 64, 256, 1024};
  if (options.quick) batches = {1, 64, 1024};

  bench::Table table({"spec", "batch", "scalar ns/probe", "batched ns/probe",
                      "speedup"});
  std::vector<Row> rows;
  for (const std::string& text : spec_texts) {
    IndexSpec spec = *IndexSpec::Parse(text);
    AnyIndex index = BuildIndex(spec, keys);
    // Scalar baseline: one virtual probe per key, no miss overlap.
    double scalar_sec =
        bench::MinFindSeconds(index, lookups, options.repeats);
    double scalar_ns =
        scalar_sec / static_cast<double>(lookups.size()) * 1e9;
    for (size_t batch : batches) {
      double batch_sec =
          bench::MinFindBatchSeconds(index, lookups, batch, options.repeats);
      double batch_ns =
          batch_sec / static_cast<double>(lookups.size()) * 1e9;
      rows.push_back({spec.ToString(), batch, scalar_ns, batch_ns});
      table.AddRow({spec.ToString(), std::to_string(batch),
                    bench::Table::Num(scalar_ns, 4),
                    bench::Table::Num(batch_ns, 4),
                    bench::Table::Num(scalar_ns / batch_ns, 3)});
    }
  }
  table.Print("batched vs scalar probes, n=" + std::to_string(n));

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"batch_lookup\",\n  \"n\": %zu,\n"
               "  \"lookups\": %zu,\n  \"repeats\": %d,\n  \"results\": [\n",
               n, lookups.size(), options.repeats);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"spec\": \"%s\", \"batch\": %zu, "
                 "\"scalar_ns_per_probe\": %.3f, "
                 "\"batched_ns_per_probe\": %.3f, \"speedup\": %.3f}%s\n",
                 r.spec.c_str(), r.batch, r.scalar_ns, r.batch_ns,
                 r.scalar_ns / r.batch_ns, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
