// Scalar vs batched vs *parallel* probe throughput across the suite, the
// operational payoff of the batch-first AnyIndex contract: group probing +
// software prefetch overlap the per-probe cache misses the paper counts
// (§5) within one core, and sharding a large probe span across a thread
// pool (ProbeOptions / the "@tN" spec suffix) multiplies that by the
// memory-level parallelism of the other cores.
//
// Sweeps batch sizes 1..1024 for every method (threads = 1, the PR-1
// table), then sweeps thread counts over the whole lookup set as a single
// batch, and emits the standard table/CSV plus a JSON file (default
// BENCH_batch_lookup.json) so the perf trajectory can track both batch
// throughput and thread scaling run over run.
//
// --range additionally sweeps the batched range probes: scalar EqualRange
// (the pre-batch duplicate-expansion path, one probe per virtual call) vs
// EqualRangeBatch at the same batch sizes, recorded in a "range_probes"
// JSON block that tools/check_bench_regression.py gates alongside the
// point-probe rows.
//
// --part additionally sweeps range-partitioned specs (part:K/css:16 for
// K in {2,4,8,16}): the same scalar-vs-batched comparison through the
// composite's fence routing and per-shard kernels, recorded in a
// "partitioned" JSON block under the same regression gate. Comparing a
// part:K row against the css:16 row of the main table shows the routing
// overhead directly; the per-row speedup shows the group-probing payoff
// surviving the composite.
//
// --update measures the maintenance path: applying a LOCALIZED update
// batch (confined to ~1/16 of the key range, so a part:16 spec touches
// 1-2 shards) as a full from-scratch rebuild (merge + BuildIndex, the
// paper's model) vs MaintainedIndex::ApplyBatch (shard-incremental for
// part:K, snapshot-published either way), in refreshed keys/s across
// batch fractions. Recorded in a "maintenance" JSON block whose speedup
// column is incremental-vs-full — gated by check_bench_regression.py,
// including an absolute --min-update-speedup floor for part:* rows.
//
//   $ ./bench_batch_lookup [--n=10000000] [--lookups=1000000]
//                          [--threads=1,2,4,8] [--json=...] [--quick]
//                          [--range] [--part] [--update]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analytic/space_model.h"
#include "core/builder.h"
#include "core/maintained_index.h"
#include "core/simd_node_search.h"
#include "harness.h"
#include "util/bits.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace {

using namespace cssidx;

struct Row {
  std::string spec;
  size_t batch;
  double scalar_ns;
  double batch_ns;
};

struct ScalingRow {
  std::string spec;
  int threads;
  size_t batch;
  bench::BatchTiming timing;
  double scaling;  // aggregate throughput relative to the threads=1 row
};

/// Emits one JSON block of Row entries. Every block shares this schema —
/// check_bench_regression.py keys on (block, spec, batch, threads), so
/// the fields must never drift apart between blocks.
void EmitRows(FILE* json, const std::vector<Row>& rows) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"spec\": \"%s\", \"batch\": %zu, \"threads\": 1, "
                 "\"scalar_ns_per_probe\": %.3f, "
                 "\"batched_ns_per_probe\": %.3f, \"speedup\": %.3f}%s\n",
                 r.spec.c_str(), r.batch, r.scalar_ns, r.batch_ns,
                 r.scalar_ns / r.batch_ns, i + 1 < rows.size() ? "," : "");
  }
}

std::vector<int> ParseThreadList(const std::string& text) {
  std::vector<int> threads;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    threads.push_back(std::atoi(text.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  threads.erase(std::remove_if(threads.begin(), threads.end(),
                               [](int t) { return t < 1; }),
                threads.end());
  if (threads.empty()) threads.push_back(1);
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  CliArgs args(argc, argv);
  size_t n = options.n != 0 ? options.n
                            : (options.quick ? 1'000'000 : 10'000'000);
  std::string json_path =
      args.GetString("json", "BENCH_batch_lookup.json");
  std::vector<int> thread_sweep = ParseThreadList(
      args.GetString("threads", options.quick ? "1,4" : "1,2,4,8"));
  bool range_mode = args.GetBool("range");
  bool part_mode = args.GetBool("part");
  bool update_mode = args.GetBool("update");

  bench::PrintHeader(
      "batch_lookup",
      "scalar Find loop vs FindBatch (group probing + prefetch) vs "
      "thread-sharded FindBatch, n=" + std::to_string(n),
      options);

  auto keys = workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = workload::MatchingLookups(keys, options.lookups,
                                           options.seed + 1);

  // Hash directory sized the paper's way: ~n / pairs-per-bucket buckets.
  int hash_bits = std::clamp(CeilLog2(n / 4), 4, 24);

  std::vector<std::string> spec_texts{"bin",     "ttree:16", "btree:16",
                                      "css:16",  "lcss:16",
                                      "hash:" + std::to_string(hash_bits)};
  std::vector<size_t> batches{1, 4, 16, 64, 256, 1024};
  if (options.quick) batches = {1, 64, 1024};

  // A dedicated pool sized to the sweep's widest row, so a request for 8
  // threads fields 8 real executors even on a narrower machine (the rows
  // then honestly show oversubscription instead of silently clamping).
  int max_threads = *std::max_element(thread_sweep.begin(),
                                      thread_sweep.end());
  ThreadPool pool(max_threads - 1);

  bench::Table table({"spec", "batch", "scalar ns/probe", "batched ns/probe",
                      "speedup"});
  bench::Table range_table({"spec", "batch", "scalar ns/probe",
                            "batched ns/probe", "speedup"});
  bench::Table scaling_table({"spec", "threads", "batch", "ns/probe",
                              "Mprobes/s", "Mprobes/s/thread", "scaling"});
  std::vector<Row> rows;
  std::vector<Row> range_rows;
  std::vector<ScalingRow> scaling_rows;
  for (const std::string& text : spec_texts) {
    IndexSpec spec = *IndexSpec::Parse(text);
    AnyIndex index = BuildIndex(spec, keys);
    // Scalar baseline: one virtual probe per key, no miss overlap.
    double scalar_sec =
        bench::MinFindSeconds(index, lookups, options.repeats);
    double scalar_ns =
        scalar_sec / static_cast<double>(lookups.size()) * 1e9;
    for (size_t batch : batches) {
      double batch_sec =
          bench::MinFindBatchSeconds(index, lookups, batch, options.repeats);
      double batch_ns =
          batch_sec / static_cast<double>(lookups.size()) * 1e9;
      rows.push_back({spec.ToString(), batch, scalar_ns, batch_ns});
      table.AddRow({spec.ToString(), std::to_string(batch),
                    bench::Table::Num(scalar_ns, 4),
                    bench::Table::Num(batch_ns, 4),
                    bench::Table::Num(scalar_ns / batch_ns, 3)});
    }

    if (range_mode) {
      // Range probes: scalar EqualRange loop (one duplicate run per
      // virtual call — the old duplicate-expansion path) vs EqualRangeBatch
      // at the same batch sizes. Both bounds of every run descend through
      // the group-probing kernel, so the batched-vs-scalar ratio measures
      // the same miss overlap as the point-probe table, on twice the
      // descents per probe.
      double range_scalar_sec =
          bench::MinEqualRangeScalarSeconds(index, lookups, options.repeats);
      double range_scalar_ns =
          range_scalar_sec / static_cast<double>(lookups.size()) * 1e9;
      for (size_t batch : batches) {
        double range_batch_sec = bench::MinEqualRangeBatchSeconds(
            index, lookups, batch, options.repeats);
        double range_batch_ns =
            range_batch_sec / static_cast<double>(lookups.size()) * 1e9;
        range_rows.push_back(
            {spec.ToString(), batch, range_scalar_ns, range_batch_ns});
        range_table.AddRow({spec.ToString(), std::to_string(batch),
                            bench::Table::Num(range_scalar_ns, 4),
                            bench::Table::Num(range_batch_ns, 4),
                            bench::Table::Num(range_scalar_ns / range_batch_ns,
                                              3)});
      }
    }

    // Thread scaling: the whole lookup set as one batch (every shard is
    // then >= min_shard as long as lookups/threads allows), one row per
    // requested thread count, scaling relative to a genuine t=1 baseline
    // (measured even when 1 is not in the sweep, so "scaling_vs_t1" means
    // what it says for a --threads=2,4,8 run).
    size_t big_batch = lookups.size();
    bench::BatchTiming t1_timing = bench::MinFindBatchTiming(
        index, lookups, big_batch, options.repeats,
        ProbeOptions{.threads = 1, .pool = &pool});
    double t1_aggregate = t1_timing.AggregateMProbesPerSec();
    for (int threads : thread_sweep) {
      ProbeOptions probe_opts{.threads = threads, .pool = &pool};
      bench::BatchTiming timing =
          threads == 1 ? t1_timing
                       : bench::MinFindBatchTiming(index, lookups, big_batch,
                                                   options.repeats,
                                                   probe_opts);
      double scaling =
          t1_aggregate > 0 ? timing.AggregateMProbesPerSec() / t1_aggregate
                           : 1.0;
      scaling_rows.push_back(
          {spec.ToString(), threads, big_batch, timing, scaling});
      scaling_table.AddRow(
          {spec.ToString(), std::to_string(threads),
           std::to_string(big_batch),
           bench::Table::Num(timing.NsPerProbe(), 4),
           bench::Table::Num(timing.AggregateMProbesPerSec(), 4),
           bench::Table::Num(timing.PerThreadMProbesPerSec(), 4),
           bench::Table::Num(scaling, 3)});
    }
  }
  // Partitioned sweep: the composite's fence routing + per-shard kernels
  // under the same scalar-vs-batched comparison as the main table.
  bench::Table part_table({"spec", "batch", "scalar ns/probe",
                           "batched ns/probe", "speedup"});
  std::vector<Row> part_rows;
  if (part_mode) {
    std::vector<std::string> part_texts{"part:2/css:16", "part:4/css:16",
                                        "part:8/css:16", "part:16/css:16"};
    if (options.quick) part_texts = {"part:4/css:16"};
    for (const std::string& text : part_texts) {
      IndexSpec spec = *IndexSpec::Parse(text);
      AnyIndex index = BuildIndex(spec, keys);
      double scalar_sec =
          bench::MinFindSeconds(index, lookups, options.repeats);
      double scalar_ns =
          scalar_sec / static_cast<double>(lookups.size()) * 1e9;
      for (size_t batch : batches) {
        double batch_sec = bench::MinFindBatchSeconds(index, lookups, batch,
                                                      options.repeats);
        double batch_ns =
            batch_sec / static_cast<double>(lookups.size()) * 1e9;
        part_rows.push_back({spec.ToString(), batch, scalar_ns, batch_ns});
        part_table.AddRow({spec.ToString(), std::to_string(batch),
                           bench::Table::Num(scalar_ns, 4),
                           bench::Table::Num(batch_ns, 4),
                           bench::Table::Num(scalar_ns / batch_ns, 3)});
      }
    }
  }

  // SIMD sweep: the same group-probing batched kernel, A/B'd between the
  // forced-scalar unrolled node search and the process's widest SIMD path
  // (simd_node_search.h) via SetNodeSearchPath. Row schema matches the
  // other blocks: "scalar" is the scalar-unrolled batched descent,
  // "batched" the SIMD batched descent, so "speedup" is SIMD-vs-scalar at
  // identical probe plans. On a scalar-only detection (CSSIDX_FORCE_SCALAR
  // or non-x86) both measurements take the same path and speedup pins ~1.
  bench::Table simd_table({"spec", "batch", "scalar-unrolled ns/probe",
                           "simd ns/probe", "speedup"});
  std::vector<Row> simd_rows;
  {
    const NodeSearchPath widest = DetectedNodeSearchPath();
    std::vector<std::string> simd_texts{"css:16", "css:32", "lcss:16",
                                        "btree:16",
                                        "hash:" + std::to_string(hash_bits)};
    if (options.quick) simd_texts = {"css:16"};
    const size_t simd_batch = 256;
    for (const std::string& text : simd_texts) {
      IndexSpec spec = *IndexSpec::Parse(text);
      AnyIndex index = BuildIndex(spec, keys);
      SetNodeSearchPath(NodeSearchPath::kScalar);
      double scalar_sec = bench::MinFindBatchSeconds(index, lookups,
                                                     simd_batch,
                                                     options.repeats);
      SetNodeSearchPath(widest);
      double simd_sec = bench::MinFindBatchSeconds(index, lookups, simd_batch,
                                                   options.repeats);
      double scalar_ns = scalar_sec / static_cast<double>(lookups.size()) * 1e9;
      double simd_ns = simd_sec / static_cast<double>(lookups.size()) * 1e9;
      simd_rows.push_back({spec.ToString(), simd_batch, scalar_ns, simd_ns});
      simd_table.AddRow({spec.ToString(), std::to_string(simd_batch),
                         bench::Table::Num(scalar_ns, 4),
                         bench::Table::Num(simd_ns, 4),
                         bench::Table::Num(scalar_ns / simd_ns, 3)});
    }
  }

  // Key-width sweep (§5's K parameter): css:16 (4-byte keys, m=16) vs
  // css64:8 (8-byte keys, m=8) at the same one-cache-line node budget,
  // probing the same logical key set widened past 2^32. Alongside the
  // probe timings the block records each directory's bytes, and the
  // measured 8-byte/4-byte space ratio next to the analytic model's
  // (nK^2/sc, so (8/4)^2 = 4 exactly at fixed sc) — gated against each
  // other by check_bench_regression.py's --key-width-space-band.
  bench::Table width_table({"spec", "K", "batch", "scalar ns/probe",
                            "batched ns/probe", "speedup", "directory"});
  std::vector<Row> width_rows;
  double width_space32 = 0, width_space64 = 0;
  {
    std::vector<uint64_t> keys64(keys.begin(), keys.end());
    for (auto& k : keys64) k |= (1ull << 40);  // force genuinely wide keys
    std::vector<uint64_t> lookups64(lookups.begin(), lookups.end());
    for (auto& k : lookups64) k |= (1ull << 40);
    const size_t width_batch = 256;

    IndexSpec spec32 = *IndexSpec::Parse("css:16");
    AnyIndex index32 = BuildIndex(spec32, keys);
    width_space32 = static_cast<double>(index32.SpaceBytes());
    double scalar32 =
        bench::MinFindSeconds(index32, lookups, options.repeats) /
        static_cast<double>(lookups.size()) * 1e9;
    double batched32 =
        bench::MinFindBatchSeconds(index32, lookups, width_batch,
                                   options.repeats) /
        static_cast<double>(lookups.size()) * 1e9;
    width_rows.push_back({spec32.ToString(), width_batch, scalar32,
                          batched32});
    width_table.AddRow({spec32.ToString(), "4", std::to_string(width_batch),
                        bench::Table::Num(scalar32, 4),
                        bench::Table::Num(batched32, 4),
                        bench::Table::Num(scalar32 / batched32, 3),
                        bench::Table::Bytes(width_space32)});

    IndexSpec spec64 = *IndexSpec::Parse("css64:8");
    AnyIndex64 index64 = BuildIndex64(spec64, keys64);
    width_space64 = static_cast<double>(index64.SpaceBytes());
    double scalar64 =
        bench::MinFindSeconds<Key64>(index64, lookups64, options.repeats) /
        static_cast<double>(lookups64.size()) * 1e9;
    double batched64 =
        bench::MinFindBatchSeconds<Key64>(index64, lookups64, width_batch,
                                          options.repeats) /
        static_cast<double>(lookups64.size()) * 1e9;
    width_rows.push_back({spec64.ToString(), width_batch, scalar64,
                          batched64});
    width_table.AddRow({spec64.ToString(), "8", std::to_string(width_batch),
                        bench::Table::Num(scalar64, 4),
                        bench::Table::Num(batched64, 4),
                        bench::Table::Num(scalar64 / batched64, 3),
                        bench::Table::Bytes(width_space64)});
  }
  // The analytic counterpart of the measured ratio, from the Figure 7
  // formula at this n: both widths fill one cache line, so the ratio is
  // K^2-driven and exactly 4 up to directory rounding.
  analytic::Params params32 = analytic::Table1();
  params32.n = static_cast<double>(n);
  analytic::Params params64 = params32;
  params64.K = 8;
  double width_model_ratio =
      analytic::FullCssSpace(params64, params64.SlotsPerNode()) /
      analytic::FullCssSpace(params32, params32.SlotsPerNode());
  double width_measured_ratio =
      width_space32 > 0 ? width_space64 / width_space32 : 0.0;

  // Maintenance sweep: full rebuild vs shard-incremental refresh for a
  // localized batch, in refreshed keys per second (the whole index is
  // live again after each publish, so n / seconds is the service rate of
  // the maintenance path).
  bench::Table update_table({"spec", "batch keys", "full Mkeys/s",
                             "incremental Mkeys/s", "speedup"});
  std::vector<Row> update_rows;
  if (update_mode) {
    std::vector<std::string> update_texts{"css:16", "part:16/css:16"};
    std::vector<double> fractions{0.0001, 0.001, 0.01};
    if (options.quick) fractions = {0.001};
    // Confine batches to the first 1/16 of the key range: the locality a
    // part:16 spec converts into 1-2 touched shards.
    uint32_t local_lo = keys.front();
    uint32_t local_hi = keys[keys.size() / 16];
    for (const std::string& text : update_texts) {
      IndexSpec spec = *IndexSpec::Parse(text);
      for (double fraction : fractions) {
        auto batch = workload::RandomBatchInRange(keys, fraction, local_lo,
                                                  local_hi,
                                                  options.seed + 77);
        size_t batch_keys = batch.inserts.size() + batch.deletes.size();
        // Full rebuild: merge the batch, rebuild from scratch — the
        // paper's maintenance model, and what every spec paid before
        // MaintainedIndex.
        double full_best = 1e300;
        for (int r = 0; r < options.repeats; ++r) {
          Timer timer;
          auto merged = workload::ApplyBatch(keys, batch);
          AnyIndex rebuilt = BuildIndex(spec, merged);
          double sec = timer.Seconds();
          bench::g_sink = bench::g_sink + rebuilt.SpaceBytes() + merged.size();
          if (sec < full_best) full_best = sec;
        }
        // Incremental: one ApplyBatch on a maintained index (fresh per
        // repeat — the batch must always hit the pristine version).
        double incr_best = 1e300;
        for (int r = 0; r < options.repeats; ++r) {
          MaintainedIndex maintained(spec, keys);
          Timer timer;
          maintained.ApplyBatch(batch);
          double sec = timer.Seconds();
          bench::g_sink =
              bench::g_sink + maintained.Snapshot()->index().SpaceBytes();
          if (sec < incr_best) incr_best = sec;
        }
        double full_ns = full_best / static_cast<double>(n) * 1e9;
        double incr_ns = incr_best / static_cast<double>(n) * 1e9;
        update_rows.push_back({spec.ToString(), batch_keys, full_ns, incr_ns});
        update_table.AddRow(
            {spec.ToString(), std::to_string(batch_keys),
             bench::Table::Num(static_cast<double>(n) / full_best / 1e6),
             bench::Table::Num(static_cast<double>(n) / incr_best / 1e6),
             bench::Table::Num(full_best / incr_best, 3)});
      }
    }
  }

  table.Print("batched vs scalar probes, n=" + std::to_string(n));
  if (range_mode) {
    range_table.Print("batched vs scalar EqualRange probes, n=" +
                      std::to_string(n));
  }
  if (part_mode) {
    part_table.Print("range-partitioned specs, batched vs scalar, n=" +
                     std::to_string(n));
  }
  simd_table.Print(
      "SIMD vs scalar-unrolled node search, batched probes (dispatch "
      "path: " +
      std::string(NodeSearchPathName(DetectedNodeSearchPath())) +
      "), n=" + std::to_string(n));
  width_table.Print(
      "key width at a fixed 64B node: measured space ratio " +
      bench::Table::Num(width_measured_ratio, 3) + " vs model " +
      bench::Table::Num(width_model_ratio, 3) + ", n=" + std::to_string(n));
  if (update_mode) {
    update_table.Print(
        "batch maintenance: full rebuild vs incremental refresh "
        "(localized batch), n=" + std::to_string(n));
  }
  scaling_table.Print(
      "thread-sharded FindBatch scaling, n=" + std::to_string(n) +
      ", hardware threads=" + std::to_string(ThreadPool::HardwareThreads()));

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"batch_lookup\",\n  \"n\": %zu,\n"
               "  \"lookups\": %zu,\n  \"repeats\": %d,\n"
               "  \"hardware_threads\": %d,\n"
               "  \"node_search_path\": \"%s\",\n  \"results\": [\n",
               n, lookups.size(), options.repeats,
               ThreadPool::HardwareThreads(),
               NodeSearchPathName(DetectedNodeSearchPath()));
  EmitRows(json, rows);
  if (range_mode) {
    std::fprintf(json, "  ],\n  \"range_probes\": [\n");
    EmitRows(json, range_rows);
  }
  if (part_mode) {
    std::fprintf(json, "  ],\n  \"partitioned\": [\n");
    EmitRows(json, part_rows);
  }
  // Same row schema — here "scalar" is the scalar-unrolled batched
  // descent and "batched" the SIMD one, so "speedup" is SIMD-vs-scalar.
  std::fprintf(json, "  ],\n  \"simd\": [\n");
  EmitRows(json, simd_rows);
  // Key-width rows share the probe-row schema (so they join the geomean
  // gate); the space ratios land in a trailing "key_width_space" object
  // for the --key-width-space-band model check.
  std::fprintf(json, "  ],\n  \"key_width\": [\n");
  EmitRows(json, width_rows);
  if (update_mode) {
    // Same row schema as the probe blocks — here "scalar" is the full
    // rebuild and "batched" the incremental refresh, both in ns per
    // (live) key, so "speedup" is incremental-vs-full.
    std::fprintf(json, "  ],\n  \"maintenance\": [\n");
    EmitRows(json, update_rows);
  }
  std::fprintf(json, "  ],\n  \"thread_scaling\": [\n");
  for (size_t i = 0; i < scaling_rows.size(); ++i) {
    const ScalingRow& r = scaling_rows[i];
    std::fprintf(
        json,
        "    {\"spec\": \"%s\", \"threads\": %d, \"batch\": %zu, "
        "\"ns_per_probe\": %.3f, \"mprobes_per_sec\": %.3f, "
        "\"mprobes_per_sec_per_thread\": %.3f, \"scaling_vs_t1\": %.3f}%s\n",
        r.spec.c_str(), r.threads, r.batch, r.timing.NsPerProbe(),
        r.timing.AggregateMProbesPerSec(),
        r.timing.PerThreadMProbesPerSec(), r.scaling,
        i + 1 < scaling_rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"key_width_space\": {\"measured_ratio\": %.4f, "
               "\"model_ratio\": %.4f, \"bytes_4\": %.0f, \"bytes_8\": "
               "%.0f}\n}\n",
               width_measured_ratio, width_model_ratio, width_space32,
               width_space64);
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
