// Ablation for the Figure 12 "m = 24 bump" analysis (§6.3): full CSS-trees
// with 24-int (96-byte) nodes are slower than both 16- and 32-int trees
// because (a) nodes are not a multiple of the cache line, so a node can
// straddle an extra line, and (b) child-offset arithmetic needs real
// multiply/divide instead of shifts. This bench separates the two effects:
// the same node size is measured cache-line-aligned and deliberately
// misaligned, across node sizes.

#include <string>
#include <vector>

#include "core/full_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <int M>
void Run(Table& table, const std::vector<Key>& keys,
         const std::vector<Key>& lookups, int repeats) {
  cssidx::FullCssTree<M> aligned(keys.data(), keys.size());
  cssidx::FullCssTree<M> misaligned(keys.data(), keys.size(),
                                    /*misalign_offset=*/20);
  double t_a = MinFindSeconds(aligned, lookups, repeats);
  double t_m = MinFindSeconds(misaligned, lookups, repeats);
  table.AddRow({std::to_string(M), std::to_string(M * 4) + "B",
                Table::Num(t_a), Table::Num(t_m),
                Table::Num(100.0 * (t_m - t_a) / t_a, 3) + "%"});
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Ablation: node alignment",
              "aligned vs misaligned directories; the Figure 12 m=24 bump",
              options);
  size_t n = options.n ? options.n : 2'000'000;
  if (options.quick) n = 300'000;
  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = cssidx::workload::MatchingLookups(keys, options.lookups,
                                                   options.seed + 1);

  Table table(
      {"entries/node", "node bytes", "aligned (s)", "misaligned (s)",
       "misalignment cost"});
  Run<8>(table, keys, lookups, options.repeats);
  Run<16>(table, keys, lookups, options.repeats);
  Run<24>(table, keys, lookups, options.repeats);  // div/mul + straddling
  Run<32>(table, keys, lookups, options.repeats);
  table.Print("Alignment ablation (full CSS-tree), n = " + std::to_string(n));
  return 0;
}
