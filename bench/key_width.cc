// §5 parameter study: the key width K. A 64-byte node holds sc/K keys, so
// doubling K halves the branching factor and adds roughly
// log_{9}(n)/log_{17}(n) more levels. This bench holds the node byte
// budget fixed (one cache line) and compares 4-byte against 8-byte keys.

#include <string>
#include <vector>

#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "harness.h"
#include "util/rng.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <typename TreeT, typename KeyT>
double Time(const std::vector<KeyT>& keys, const std::vector<KeyT>& lookups,
            int repeats, double* space) {
  TreeT tree(keys);
  *space = static_cast<double>(tree.SpaceBytes());
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    uint64_t sum = 0;
    cssidx::Timer timer;
    for (KeyT k : lookups) sum += tree.LowerBound(k);
    double sec = timer.Seconds();
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  return best;
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Key-width sweep (§5's K parameter)",
              "4-byte vs 8-byte keys at a fixed 64B node budget", options);
  size_t n = options.n ? options.n : 2'000'000;
  if (options.quick) n = 300'000;

  auto keys32 = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups32 = cssidx::workload::MatchingLookups(keys32, options.lookups,
                                                     options.seed + 1);
  std::vector<uint64_t> keys64(keys32.begin(), keys32.end());
  for (auto& k : keys64) k |= (1ull << 40);  // force genuinely wide keys
  std::vector<uint64_t> lookups64(lookups32.begin(), lookups32.end());
  for (auto& k : lookups64) k |= (1ull << 40);

  Table table({"tree", "K", "keys/node", "time (s)", "directory"});
  double space = 0;
  double t;
  t = Time<cssidx::FullCssTree<16>>(keys32, lookups32, options.repeats,
                                    &space);
  table.AddRow({"full CSS", "4", "16", Table::Num(t), Table::Bytes(space)});
  t = Time<cssidx::FullCssTree64<8>>(keys64, lookups64, options.repeats,
                                     &space);
  table.AddRow({"full CSS", "8", "8", Table::Num(t), Table::Bytes(space)});
  t = Time<cssidx::LevelCssTree<16>>(keys32, lookups32, options.repeats,
                                     &space);
  table.AddRow({"level CSS", "4", "16", Table::Num(t), Table::Bytes(space)});
  t = Time<cssidx::LevelCssTree64<8>>(keys64, lookups64, options.repeats,
                                      &space);
  table.AddRow({"level CSS", "8", "8", Table::Num(t), Table::Bytes(space)});
  table.Print("Key width at fixed node bytes, n = " + std::to_string(n));
  return 0;
}
