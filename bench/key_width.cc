// §5 parameter study: the key width K. A 64-byte node holds sc/K keys, so
// doubling K halves the branching factor and adds roughly
// log_{9}(n)/log_{17}(n) more levels. This bench holds the node byte
// budget fixed (one cache line) and compares 4-byte against 8-byte keys —
// through the IndexSpec grammar ("css:16" vs "css64:8" and friends), so
// the sweep exercises the same builder, dispatch, and batched-probe path
// as every CLI, test, and serving table, not a private template
// instantiation.

#include <string>
#include <vector>

#include "core/builder.h"
#include "harness.h"
#include "util/rng.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

/// Scalar LowerBound loop (the paper's one-lookup-at-a-time workload).
template <typename IndexT, typename KeyT>
double TimeScalar(const IndexT& index, const std::vector<KeyT>& lookups,
                  int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    uint64_t sum = 0;
    cssidx::Timer timer;
    for (KeyT k : lookups) sum += index.LowerBound(k);
    double sec = timer.Seconds();
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  return best;
}

template <typename IndexT, typename KeyT>
void AddRow(Table& table, const IndexSpec& spec, const IndexT& index,
            const std::vector<KeyT>& lookups, int repeats) {
  double t = TimeScalar(index, lookups, repeats);
  double batched =
      MinFindBatchSeconds<KeyT>(index, lookups, 256, repeats);
  table.AddRow({spec.ToString(), std::to_string(spec.key_width()),
                spec.sized() ? std::to_string(spec.node_entries()) : "-",
                Table::Num(t), Table::Num(batched),
                Table::Bytes(index.SpaceBytes())});
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Key-width sweep (§5's K parameter)",
              "4-byte vs 8-byte keys at a fixed 64B node budget, via the "
              "IndexSpec grammar", options);
  size_t n = options.n ? options.n : 2'000'000;
  if (options.quick) n = 300'000;

  auto keys32 = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups32 = cssidx::workload::MatchingLookups(keys32, options.lookups,
                                                     options.seed + 1);
  std::vector<uint64_t> keys64(keys32.begin(), keys32.end());
  for (auto& k : keys64) k |= (1ull << 40);  // force genuinely wide keys
  std::vector<uint64_t> lookups64(lookups32.begin(), lookups32.end());
  for (auto& k : lookups64) k |= (1ull << 40);

  // Each pair holds the node byte budget fixed: 16 4-byte keys or 8
  // 8-byte keys per cache line (bin carries no node, so its pair shows
  // the pure key-compare cost of the wider type).
  const std::vector<std::pair<std::string, std::string>> pairs{
      {"css:16", "css64:8"},
      {"lcss:16", "lcss64:8"},
      {"btree:16", "btree64:8"},
      {"bin", "bin64"}};

  Table table({"spec", "K", "keys/node", "time (s)", "batched (s)",
               "directory"});
  for (const auto& [narrow_text, wide_text] : pairs) {
    cssidx::IndexSpec narrow = *cssidx::IndexSpec::Parse(narrow_text);
    cssidx::AnyIndex index32 = cssidx::BuildIndex(narrow, keys32);
    AddRow(table, narrow, index32, lookups32, options.repeats);
    cssidx::IndexSpec wide = *cssidx::IndexSpec::Parse(wide_text);
    cssidx::AnyIndex64 index64 = cssidx::BuildIndex64(wide, keys64);
    AddRow(table, wide, index64, lookups64, options.repeats);
  }
  table.Print("Key width at fixed node bytes, n = " + std::to_string(n));
  return 0;
}
