// Figure 6 (and Table 1): the §5.1 analytic time model — branching factor,
// levels, comparisons and cache misses per lookup for each method — printed
// for the paper's typical parameters, then cross-checked against *measured*
// misses from the cache simulator replaying real lookups.

#include <string>
#include <vector>

#include "analytic/params.h"
#include "analytic/time_model.h"
#include "baselines/binary_search.h"
#include "baselines/bplus_tree.h"
#include "baselines/t_tree.h"
#include "cachesim/cache_sim.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <typename IndexT>
double SimulatedColdMisses(const IndexT& index,
                           const std::vector<Key>& lookups) {
  cssidx::cachesim::CacheHierarchy h(cssidx::cachesim::ModernHierarchy());
  cssidx::cachesim::SimTracer tracer{&h};
  for (Key k : lookups) {
    h.FlushContents();
    index.LowerBoundTraced(k, tracer);
  }
  return static_cast<double>(h.Level(1).misses()) /
         static_cast<double>(lookups.size());
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  namespace analytic = cssidx::analytic;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figure 6 + Table 1", "analytic time model vs simulated misses",
              options);

  analytic::Params p = analytic::Table1();
  Table params({"parameter", "typical value"});
  params.AddRow({"R (RID bytes)", Table::Num(p.R)});
  params.AddRow({"K (key bytes)", Table::Num(p.K)});
  params.AddRow({"P (pointer bytes)", Table::Num(p.P)});
  params.AddRow({"n (records)", Table::Num(p.n)});
  params.AddRow({"h (hash fudge)", Table::Num(p.h)});
  params.AddRow({"c (line bytes)", Table::Num(p.c)});
  params.AddRow({"s (node lines)", Table::Num(p.s)});
  params.Print("Table 1: parameters");

  for (double m : {16.0, 32.0}) {
    Table model({"method", "branching", "levels", "comparisons",
                 "cache misses (cold)"});
    for (const auto& row : analytic::TimeModel(p, m)) {
      model.AddRow({row.method, Table::Num(row.branching, 4),
                    Table::Num(row.levels, 4), Table::Num(row.comparisons, 4),
                    Table::Num(row.cache_misses, 4)});
    }
    model.Print("Figure 6: analytic model, m = " + Table::Num(m, 3) +
                " slots/node, n = 1e7");
  }

  // Cross-check: measured cold misses per lookup at a smaller n (the
  // software simulator costs ~1us per touched line).
  size_t n = options.quick ? 100'000 : 1'000'000;
  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = cssidx::workload::MatchingLookups(
      keys, options.quick ? 64 : 256, options.seed + 1);

  analytic::Params pm = p;
  pm.n = static_cast<double>(n);
  auto model_rows = analytic::TimeModel(pm, 16);
  Table check({"method", "model misses", "simulated misses"});
  check.AddRow({"binary search", Table::Num(model_rows[0].cache_misses, 4),
                Table::Num(SimulatedColdMisses(cssidx::BinarySearchIndex(keys),
                                               lookups),
                           4)});
  check.AddRow({"T-tree", Table::Num(model_rows[1].cache_misses, 4),
                Table::Num(SimulatedColdMisses(cssidx::TTreeIndex<16>(keys),
                                               lookups),
                           4)});
  check.AddRow({"B+-tree", Table::Num(model_rows[2].cache_misses, 4),
                Table::Num(SimulatedColdMisses(cssidx::BPlusTree<16>(keys),
                                               lookups),
                           4)});
  check.AddRow({"full CSS-tree", Table::Num(model_rows[3].cache_misses, 4),
                Table::Num(SimulatedColdMisses(cssidx::FullCssTree<16>(keys),
                                               lookups),
                           4)});
  check.AddRow({"level CSS-tree", Table::Num(model_rows[4].cache_misses, 4),
                Table::Num(SimulatedColdMisses(cssidx::LevelCssTree<16>(keys),
                                               lookups),
                           4)});
  check.Print("Model vs simulator (64B lines), n = " + std::to_string(n));
  return 0;
}
