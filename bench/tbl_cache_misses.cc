// Hardware substitution table: misses per lookup for every method on the
// paper's two machines, reproduced with the cache simulator instead of the
// 1999 hardware. Geometries (§6.1):
//   Ultra Sparc II: L1 <16K, 32B, direct>, L2 <1M, 64B, direct>
//   Pentium II:     L1 <16K, 32B, 4-way>, L2 <512K, 32B, 4-way>
// Node sizes follow the machines' line sizes: 8 ints (32B) and 16 ints
// (64B), the same pairs as Figures 10/11. Both cold (flush per lookup, the
// §5 model's assumption) and warm (§5.1's "top levels stay cached")
// numbers are reported.

#include <string>
#include <vector>

#include "baselines/binary_search.h"
#include "baselines/binary_tree.h"
#include "baselines/bplus_tree.h"
#include "baselines/interpolation_search.h"
#include "baselines/t_tree.h"
#include "cachesim/cache_sim.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

using cssidx::cachesim::CacheConfig;
using cssidx::cachesim::CacheHierarchy;
using cssidx::cachesim::SimTracer;

struct MissCounts {
  double cold_l1 = 0, cold_l2 = 0, warm_l1 = 0, warm_l2 = 0;
};

template <typename IndexT>
MissCounts Simulate(const IndexT& index, const std::vector<Key>& lookups,
                    const std::vector<CacheConfig>& configs) {
  MissCounts mc;
  {
    CacheHierarchy h(configs);
    SimTracer tracer{&h};
    for (Key k : lookups) {
      h.FlushContents();
      index.LowerBoundTraced(k, tracer);
    }
    mc.cold_l1 = static_cast<double>(h.Level(0).misses()) / lookups.size();
    mc.cold_l2 = static_cast<double>(h.Level(1).misses()) / lookups.size();
  }
  {
    CacheHierarchy h(configs);
    SimTracer tracer{&h};
    for (Key k : lookups) index.LowerBoundTraced(k, tracer);
    mc.warm_l1 = static_cast<double>(h.Level(0).misses()) / lookups.size();
    mc.warm_l2 = static_cast<double>(h.Level(1).misses()) / lookups.size();
  }
  return mc;
}

template <int M>
void RunMachine(const std::string& name,
                const std::vector<CacheConfig>& configs,
                const std::vector<Key>& keys,
                const std::vector<Key>& lookups) {
  Table table({"method", "cold L1 miss/lookup", "cold L2 miss/lookup",
               "warm L1 miss/lookup", "warm L2 miss/lookup"});
  auto add = [&](const std::string& method, const MissCounts& mc) {
    table.AddRow({method, Table::Num(mc.cold_l1, 4), Table::Num(mc.cold_l2, 4),
                  Table::Num(mc.warm_l1, 4), Table::Num(mc.warm_l2, 4)});
  };
  add("array binary search",
      Simulate(cssidx::BinarySearchIndex(keys), lookups, configs));
  add("tree binary search",
      Simulate(cssidx::BinaryTreeIndex(keys), lookups, configs));
  add("interpolation search",
      Simulate(cssidx::InterpolationSearchIndex(keys), lookups, configs));
  add("T-tree", Simulate(cssidx::TTreeIndex<M>(keys), lookups, configs));
  add("B+-tree", Simulate(cssidx::BPlusTree<M>(keys), lookups, configs));
  add("full CSS-tree",
      Simulate(cssidx::FullCssTree<M>(keys), lookups, configs));
  add("level CSS-tree",
      Simulate(cssidx::LevelCssTree<M>(keys), lookups, configs));
  table.Print(name + ", node = " + std::to_string(M) +
              " ints, n = " + std::to_string(keys.size()));
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  namespace cs = cssidx::cachesim;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Cache-miss table (simulated hardware)",
              "misses/lookup on simulated Ultra Sparc II and Pentium II",
              options);

  size_t n = options.n ? options.n : 1'000'000;
  if (options.quick) n = 100'000;
  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  size_t probes = options.quick ? 64 : 256;
  auto lookups =
      cssidx::workload::MatchingLookups(keys, probes, options.seed + 1);

  // Paper pairing: 8-int (32B) nodes on the 32B-line machines, 16-int
  // nodes on the 64B L2 of the Ultra; plus the modern 64B geometry.
  RunMachine<8>("Ultra Sparc II (simulated)", cs::UltraSparcHierarchy(), keys,
                lookups);
  RunMachine<16>("Ultra Sparc II (simulated)", cs::UltraSparcHierarchy(),
                 keys, lookups);
  RunMachine<8>("Pentium II (simulated)", cs::PentiumIIHierarchy(), keys,
                lookups);
  RunMachine<16>("Modern x86-64 (simulated)", cs::ModernHierarchy(), keys,
                 lookups);
  return 0;
}
