// Two variant ablations the paper discusses in prose:
//
// 1. §6.2 / [LC86b]: "We implemented the improved version of T-Tree,
//    which is a little bit better than the basic version." The improved
//    search compares only the smallest key per node (one line touched);
//    the basic search also compares the largest (a second line on every
//    right-descent).
//
// 2. §3.5: "Skewed data can seriously affect the performance of hash
//    indices unless we have a relatively sophisticated hash function,
//    which will increase the computation time." Low-order-bit hashing vs
//    multiplicative (Fibonacci) hashing, on uniform and on stride-aligned
//    (low-bit-degenerate) keys.

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/chained_hash.h"
#include "baselines/t_tree.h"
#include "harness.h"
#include "util/timer.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <int M>
void TTreeVariantRow(Table& table, const std::vector<Key>& keys,
                     const std::vector<Key>& lookups, int repeats) {
  cssidx::TTreeIndex<M> tree(keys);
  double improved = 1e300, basic = 1e300;
  for (int r = 0; r < repeats; ++r) {
    uint64_t sum = 0;
    cssidx::Timer t1;
    for (Key k : lookups) sum += tree.LowerBound(k);
    improved = std::min(improved, t1.Seconds());
    cssidx::Timer t2;
    for (Key k : lookups) sum += tree.LowerBoundBasic(k);
    basic = std::min(basic, t2.Seconds());
    g_sink = g_sink + sum;
  }
  table.AddRow({std::to_string(M), Table::Num(improved), Table::Num(basic),
                Table::Num(100.0 * (basic - improved) / improved, 3) + "%"});
}

void HashRow(Table& table, const std::string& label,
             const std::vector<Key>& keys, const std::vector<Key>& lookups,
             int dir_bits, cssidx::HashFunction fn, int repeats) {
  cssidx::ChainedHashIndex<64> hash(keys.data(), keys.size(), dir_bits, fn);
  double best = MinFindSeconds(hash, lookups, repeats);
  table.AddRow({label, Table::Num(best),
                std::to_string(hash.MaxChainBuckets()),
                Table::Bytes(static_cast<double>(hash.SpaceBytes()))});
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Variant ablations",
              "basic vs improved T-tree; hash function vs skew", options);
  size_t n = options.n ? options.n : 2'000'000;
  if (options.quick) n = 300'000;

  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = cssidx::workload::MatchingLookups(keys, options.lookups,
                                                   options.seed + 1);
  Table ttree({"entries/node", "improved (s)", "basic (s)", "basic cost"});
  TTreeVariantRow<8>(ttree, keys, lookups, options.repeats);
  TTreeVariantRow<16>(ttree, keys, lookups, options.repeats);
  TTreeVariantRow<32>(ttree, keys, lookups, options.repeats);
  ttree.Print("T-tree: improved (LC86b) vs basic search, n = " +
              std::to_string(n));

  // Hash skew: stride-64 keys have constant low 6 bits.
  std::vector<cssidx::Key> strided(n);
  for (size_t i = 0; i < n; ++i) {
    strided[i] = static_cast<cssidx::Key>(i) * 64;
  }
  auto strided_lookups = cssidx::workload::MatchingLookups(
      strided, options.lookups, options.seed + 2);
  int bits = 4;
  while ((size_t{1} << bits) < n && bits < 22) ++bits;

  Table hash({"config", "time (s)", "max chain", "space"});
  HashRow(hash, "uniform keys, low-bits", keys, lookups, bits,
          cssidx::HashFunction::kLowOrderBits, options.repeats);
  HashRow(hash, "uniform keys, multiplicative", keys, lookups, bits,
          cssidx::HashFunction::kMultiplicative, options.repeats);
  HashRow(hash, "strided keys, low-bits", strided, strided_lookups, bits,
          cssidx::HashFunction::kLowOrderBits, options.repeats);
  HashRow(hash, "strided keys, multiplicative", strided, strided_lookups,
          bits, cssidx::HashFunction::kMultiplicative, options.repeats);
  hash.Print("Chained hash: function vs skew, n = " + std::to_string(n));
  return 0;
}
