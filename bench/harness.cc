#include "harness.h"

#include <cstdio>
#include <sstream>

namespace cssidx::bench {

volatile uint64_t g_sink = 0;

Options Options::Parse(int argc, char** argv) {
  CliArgs args(argc, argv);
  Options o;
  o.n = static_cast<size_t>(args.GetInt("n", 0));
  o.lookups = static_cast<size_t>(args.GetInt("lookups", 100'000));
  o.repeats = static_cast<int>(args.GetInt("repeats", 3));
  o.quick = args.GetBool("quick", false);
  o.full = args.GetBool("full", false);
  o.seed = static_cast<uint64_t>(args.GetInt("seed", 17));
  return o;
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::Bytes(double bytes) {
  char buf[64];
  if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

void Table::Print(const std::string& title) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::printf("\n== %s ==\n", title.c_str());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  // CSV block for plotting.
  std::ostringstream csv;
  csv << "csv,";
  for (size_t c = 0; c < columns_.size(); ++c) {
    csv << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    csv << "csv,";
    for (size_t c = 0; c < row.size(); ++c) {
      csv << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
  std::printf("%s", csv.str().c_str());
  std::fflush(stdout);
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const Options& options) {
  std::printf("######################################################\n");
  std::printf("# %s\n# %s\n", figure.c_str(), description.c_str());
  std::printf("# lookups=%zu repeats=%d%s%s\n", options.lookups,
              options.repeats, options.quick ? " (quick)" : "",
              options.full ? " (full paper scale)" : "");
  std::printf("######################################################\n");
  std::fflush(stdout);
}

}  // namespace cssidx::bench
