// Figure 9: time to build a CSS-tree from a sorted array, as a function of
// the array size, for full and level CSS-trees (16 entries per node, the
// cache-line size used in the paper's build experiment).
//
// Expected shape (paper): both curves linear in n; level trees cheaper
// because the spare-slot trick avoids walking a rightmost path per entry;
// 25M keys build in well under a second on a modern machine. For context,
// the batch-update merge (§2.2's OLAP maintenance story) is timed too —
// build + merge together are exactly the full-rebuild cost the
// maintained-index path (bench_batch_lookup --update) avoids for
// localized batches on part:K specs.
//
// Builds go through the spec-driven BuildIndex entry — the same dispatch
// the engine and the maintenance path pay — instead of hand-instantiated
// tree templates, so the sweep is driven by IndexSpec strings.

#include <string>
#include <vector>

#include "core/builder.h"
#include "harness.h"
#include "util/timer.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"

namespace cssidx::bench {
namespace {

double MinBuildSeconds(const IndexSpec& spec, const std::vector<Key>& keys,
                       int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    AnyIndex index = BuildIndex(spec, keys);
    double sec = timer.Seconds();
    g_sink = g_sink + index.SpaceBytes();
    if (sec < best) best = sec;
  }
  return best;
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  using cssidx::IndexSpec;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figure 9", "CSS-tree build time vs sorted array size",
              options);

  std::vector<size_t> sizes{2'500'000, 5'000'000, 10'000'000, 15'000'000,
                            20'000'000, 25'000'000};
  if (options.quick) sizes = {1'000'000, 2'000'000, 4'000'000};

  const std::vector<std::string> spec_texts{"css:16", "lcss:16"};
  std::vector<std::string> columns{"n"};
  for (const std::string& text : spec_texts) columns.push_back(text + " build (s)");
  columns.push_back("batch merge 1% (s)");

  Table table(columns);
  for (size_t n : sizes) {
    auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
    std::vector<std::string> row{std::to_string(n)};
    for (const std::string& text : spec_texts) {
      IndexSpec spec = *IndexSpec::Parse(text);
      row.push_back(Table::Num(MinBuildSeconds(spec, keys, options.repeats)));
    }
    // The other half of the OLAP rebuild story: merging a 1% batch.
    auto batch = cssidx::workload::RandomBatch(keys, 0.01, options.seed + 9);
    cssidx::Timer timer;
    auto merged = cssidx::workload::ApplyBatch(keys, batch);
    double merge = timer.Seconds();
    g_sink = g_sink + merged.size();
    row.push_back(Table::Num(merge));
    table.AddRow(row);
  }
  table.Print("Figure 9: build time (min of repeats), 16 entries/node");
  return 0;
}
