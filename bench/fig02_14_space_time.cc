// Figures 2 and 14: the space/time trade-off. Every method contributes one
// point per configuration (node size for trees, directory size for hash);
// the "stepped line" of non-dominated points is printed at the end.
//
// Space is the paper's "direct" accounting (Figure 7): the structure
// indexes records that cannot be rearranged, so T-trees are charged for
// their embedded RIDs and hash for the full table, while binary search is
// free. Expected result: CSS-trees dominate T-trees and B+-trees outright;
// the frontier is binary search -> CSS-trees -> hash.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/binary_search.h"
#include "baselines/binary_tree.h"
#include "baselines/bplus_tree.h"
#include "baselines/chained_hash.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

struct Point {
  std::string method;
  double seconds;
  double bytes;  // direct space
};

template <typename IndexT>
Point Measure(const std::string& name, const IndexT& index,
              const std::vector<Key>& lookups, int repeats,
              double extra_direct_bytes = 0) {
  return {name, MinFindSeconds(index, lookups, repeats),
          static_cast<double>(index.SpaceBytes()) + extra_direct_bytes};
}

template <int M>
void TreePoints(std::vector<Point>& points, const std::vector<Key>& keys,
                const std::vector<Key>& lookups, int repeats) {
  std::string suffix = "/m=" + std::to_string(M);
  points.push_back(
      Measure("T-tree" + suffix, TTreeIndex<M>(keys), lookups, repeats));
  points.push_back(
      Measure("B+-tree" + suffix, BPlusTree<M>(keys), lookups, repeats));
  points.push_back(Measure("full CSS-tree" + suffix, FullCssTree<M>(keys),
                           lookups, repeats));
  if constexpr ((M & (M - 1)) == 0) {
    points.push_back(Measure("level CSS-tree" + suffix,
                             LevelCssTree<M>(keys), lookups, repeats));
  }
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figures 2 & 14", "space/time trade-off, direct space",
              options);
  size_t n = options.n ? options.n : 2'000'000;
  if (options.full) n = 5'000'000;  // the paper's Figure 14 array size
  if (options.quick) n = 300'000;

  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = cssidx::workload::MatchingLookups(keys, options.lookups,
                                                   options.seed + 1);
  const int r = options.repeats;

  std::vector<Point> points;
  points.push_back(Measure("array binary search", cssidx::BinarySearchIndex(keys),
                           lookups, r));
  points.push_back(
      Measure("tree binary search", cssidx::BinaryTreeIndex(keys), lookups, r));
  TreePoints<8>(points, keys, lookups, r);
  TreePoints<16>(points, keys, lookups, r);
  TreePoints<32>(points, keys, lookups, r);
  if (!options.quick) {
    TreePoints<64>(points, keys, lookups, r);
    TreePoints<128>(points, keys, lookups, r);
  }
  for (int bits : {18, 20, 22}) {
    if (options.quick && bits > 18) continue;
    cssidx::ChainedHashIndex<64> hash(keys, bits);
    // Direct space: hash cannot provide ordered access, so the sorted RID
    // list (n * R bytes) remains a separate requirement... charged as the
    // table itself in Figure 7; here we charge the structure bytes, which
    // already exceed every tree by an order of magnitude.
    points.push_back(Measure("hash/dir=2^" + std::to_string(bits), hash,
                             lookups, r));
  }

  Table table({"method", "time (s)", "space (bytes)", "space"});
  for (const auto& p : points) {
    table.AddRow({p.method, Table::Num(p.seconds), Table::Num(p.bytes, 10),
                  Table::Bytes(p.bytes)});
  }
  table.Print("Figure 2/14: all points, n = " + std::to_string(n));

  // The stepped line: points not dominated in both time and space.
  std::vector<Point> sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const Point& a, const Point& b) { return a.seconds < b.seconds; });
  Table frontier({"method", "time (s)", "space"});
  double best_space = 1e300;
  for (const auto& p : sorted) {
    if (p.bytes < best_space) {
      best_space = p.bytes;
      frontier.AddRow({p.method, Table::Num(p.seconds), Table::Bytes(p.bytes)});
    }
  }
  frontier.Print("Figure 14: non-dominated (stepped) frontier");
  return 0;
}
