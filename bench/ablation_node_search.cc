// Ablation for the §6.2 claim: "When our code was more 'generic'
// (including a binary search loop for each node), we found the performance
// to be 20% to 45% worse than the specialized code."
//
// Same tree, same directory, same lookups — only the intra-node search
// differs: compile-time unrolled if-else tree vs a runtime binary-search
// loop. A second table ablates the next rung on the same ladder: the
// scalar unrolled search vs the SIMD compare+count kernels
// (simd_node_search.h), A/B'd in-process via SetNodeSearchPath, for both
// scalar descents and the group-probing batched kernel.

#include <string>
#include <vector>

#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "core/simd_node_search.h"
#include "harness.h"
#include "util/timer.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <typename TreeT>
double MinGenericSeconds(const TreeT& tree, const std::vector<Key>& lookups,
                         int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    uint64_t sum = 0;
    cssidx::Timer timer;
    for (Key k : lookups) sum += tree.LowerBoundGeneric(k);
    double sec = timer.Seconds();
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  return best;
}

template <typename TreeT>
double MinUnrolledSeconds(const TreeT& tree, const std::vector<Key>& lookups,
                          int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    uint64_t sum = 0;
    cssidx::Timer timer;
    for (Key k : lookups) sum += tree.LowerBound(k);
    double sec = timer.Seconds();
    g_sink = g_sink + sum;
    if (sec < best) best = sec;
  }
  return best;
}

template <int M>
void Run(Table& table, const std::vector<Key>& keys,
         const std::vector<Key>& lookups, int repeats, bool level) {
  if (level) {
    cssidx::LevelCssTree<M> tree(keys);
    double hard = MinUnrolledSeconds(tree, lookups, repeats);
    double generic = MinGenericSeconds(tree, lookups, repeats);
    table.AddRow({"level CSS-tree/m=" + std::to_string(M), Table::Num(hard),
                  Table::Num(generic),
                  Table::Num(100.0 * (generic - hard) / hard, 3) + "%"});
  } else {
    cssidx::FullCssTree<M> tree(keys);
    double hard = MinUnrolledSeconds(tree, lookups, repeats);
    double generic = MinGenericSeconds(tree, lookups, repeats);
    table.AddRow({"full CSS-tree/m=" + std::to_string(M), Table::Num(hard),
                  Table::Num(generic),
                  Table::Num(100.0 * (generic - hard) / hard, 3) + "%"});
  }
}

template <typename TreeT>
double MinBatchedSeconds(const TreeT& tree, const std::vector<Key>& lookups,
                         int repeats) {
  std::vector<size_t> out(lookups.size());
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    cssidx::Timer timer;
    tree.LowerBoundBatch(lookups, out);
    double sec = timer.Seconds();
    g_sink = g_sink + out[out.size() / 2];
    if (sec < best) best = sec;
  }
  return best;
}

template <int M>
void RunSimd(Table& table, const std::vector<Key>& keys,
             const std::vector<Key>& lookups, int repeats, bool level) {
  const cssidx::NodeSearchPath simd = cssidx::DetectedNodeSearchPath();
  auto measure = [&](const auto& tree) {
    cssidx::SetNodeSearchPath(cssidx::NodeSearchPath::kScalar);
    double scalar_probe = MinUnrolledSeconds(tree, lookups, repeats);
    double scalar_batch = MinBatchedSeconds(tree, lookups, repeats);
    cssidx::SetNodeSearchPath(simd);
    double simd_probe = MinUnrolledSeconds(tree, lookups, repeats);
    double simd_batch = MinBatchedSeconds(tree, lookups, repeats);
    std::string name = std::string(level ? "level" : "full") +
                       " CSS-tree/m=" + std::to_string(M);
    table.AddRow({name, "scalar probes", Table::Num(scalar_probe),
                  Table::Num(simd_probe),
                  Table::Num(scalar_probe / simd_probe, 3) + "x"});
    table.AddRow({name, "batched", Table::Num(scalar_batch),
                  Table::Num(simd_batch),
                  Table::Num(scalar_batch / simd_batch, 3) + "x"});
  };
  if (level) {
    measure(cssidx::LevelCssTree<M>(keys));
  } else {
    measure(cssidx::FullCssTree<M>(keys));
  }
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Ablation: hard-coded vs generic node search",
              "the paper's 20-45% specialization claim (§6.2)", options);
  size_t n = options.n ? options.n : 2'000'000;
  if (options.quick) n = 300'000;
  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = cssidx::workload::MatchingLookups(keys, options.lookups,
                                                   options.seed + 1);

  Table table({"tree", "hard-coded (s)", "generic loop (s)", "slowdown"});
  Run<8>(table, keys, lookups, options.repeats, false);
  Run<16>(table, keys, lookups, options.repeats, false);
  Run<32>(table, keys, lookups, options.repeats, false);
  Run<16>(table, keys, lookups, options.repeats, true);
  Run<32>(table, keys, lookups, options.repeats, true);
  table.Print("Node-search ablation, n = " + std::to_string(n));

  Table simd({"tree", "probe style", "scalar unrolled (s)", "simd (s)",
              "speedup"});
  RunSimd<8>(simd, keys, lookups, options.repeats, false);
  RunSimd<16>(simd, keys, lookups, options.repeats, false);
  RunSimd<32>(simd, keys, lookups, options.repeats, false);
  RunSimd<16>(simd, keys, lookups, options.repeats, true);
  RunSimd<32>(simd, keys, lookups, options.repeats, true);
  simd.Print(
      "SIMD node-search ablation (dispatch path: " +
      std::string(
          cssidx::NodeSearchPathName(cssidx::DetectedNodeSearchPath())) +
      "), n = " + std::to_string(n));
  cssidx::SetNodeSearchPath(cssidx::DetectedNodeSearchPath());
  return 0;
}
