// Figures 12 and 13: lookup time as a function of node size (entries per
// node), with the array size fixed, for T-trees, B+-trees, full and level
// CSS-trees, plus the hash-directory-size sweep of Figure 12.
//
// Expected shape (paper): CSS-trees bottom out when a node equals one
// cache line (16 ints for 64B lines); B+-trees bottom out at roughly twice
// that (their nodes carry half keys, half pointers); the m=24 full-CSS bump
// (misalignment + div/mul child arithmetic) shows against m=16/32; T-trees
// are flat and slow at every node size.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/bplus_tree.h"
#include "baselines/chained_hash.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

struct Row {
  int m;
  double t_tree = -1, bplus = -1, full = -1, level = -1;
};

template <int M>
void FillRow(Row& row, const std::vector<Key>& keys,
             const std::vector<Key>& lookups, int repeats) {
  row.t_tree = MinFindSeconds(TTreeIndex<M>(keys), lookups, repeats);
  row.bplus = MinFindSeconds(BPlusTree<M>(keys), lookups, repeats);
  row.full = MinFindSeconds(FullCssTree<M>(keys), lookups, repeats);
  if constexpr ((M & (M - 1)) == 0) {
    row.level = MinFindSeconds(LevelCssTree<M>(keys), lookups, repeats);
  }
}

void RunForArraySize(size_t n, const Options& options) {
  auto keys = workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups =
      workload::MatchingLookups(keys, options.lookups, options.seed + 1);
  const int r = options.repeats;

  Table table({"entries/node", "T-tree", "B+-tree", "full CSS-tree",
               "level CSS-tree"});
  std::vector<Row> rows;
  {
    Row row{8};
    FillRow<8>(row, keys, lookups, r);
    rows.push_back(row);
  }
  {
    Row row{16};
    FillRow<16>(row, keys, lookups, r);
    rows.push_back(row);
  }
  {
    Row row{24};
    FillRow<24>(row, keys, lookups, r);
    rows.push_back(row);
  }
  {
    Row row{32};
    FillRow<32>(row, keys, lookups, r);
    rows.push_back(row);
  }
  {
    Row row{64};
    FillRow<64>(row, keys, lookups, r);
    rows.push_back(row);
  }
  if (!options.quick) {
    Row row{128};
    FillRow<128>(row, keys, lookups, r);
    rows.push_back(row);
  }
  for (const Row& row : rows) {
    table.AddRow({std::to_string(row.m), Table::Num(row.t_tree),
                  Table::Num(row.bplus), Table::Num(row.full),
                  row.level < 0 ? "-" : Table::Num(row.level)});
  }
  table.Print("Figures 12/13: time (s) vs node size, n = " +
              std::to_string(n));

  // Figure 12's hash series: each point is a directory size 2^18..2^23
  // (largest first, like the paper's leftmost point).
  Table hash_table({"dir_bits", "hash time (s)", "space"});
  std::vector<int> bits = options.quick ? std::vector<int>{18, 20}
                                        : std::vector<int>{23, 22, 21, 20,
                                                           19, 18};
  for (int b : bits) {
    ChainedHashIndex<64> hash(keys, b);
    double t = MinFindSeconds(hash, lookups, r);
    hash_table.AddRow({std::to_string(b), Table::Num(t),
                       Table::Bytes(static_cast<double>(hash.SpaceBytes()))});
  }
  hash_table.Print("Figure 12 inset: chained hash vs directory size, n = " +
                   std::to_string(n));
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figures 12 & 13", "lookup time vs node size (entries/node)",
              options);
  std::vector<size_t> sizes{2'000'000};
  if (options.full) sizes = {5'000'000, 10'000'000};  // the paper's sizes
  if (options.quick) sizes = {300'000};
  for (size_t n : sizes) RunForArraySize(n, options);
  return 0;
}
