// Figure 7: the space analysis table — indirect and direct space for every
// method under the Table 1 typical values — plus a check against the space
// actually allocated by the implementations.

#include <string>
#include <vector>

#include "analytic/params.h"
#include "analytic/space_model.h"
#include "baselines/bplus_tree.h"
#include "baselines/chained_hash.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  namespace analytic = cssidx::analytic;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figure 7", "space analysis: model and measured", options);

  analytic::Params p = analytic::Table1();
  Table model({"method", "space (indirect)", "space (direct)",
               "RID-ordered access"});
  for (const auto& row : analytic::SpaceModel(p, p.SlotsPerNode())) {
    model.AddRow({row.method, Table::Bytes(row.indirect_bytes),
                  Table::Bytes(row.direct_bytes),
                  row.rid_ordered_access ? "Y" : "N"});
  }
  model.Print("Figure 7: analytic, n = 1e7, 64B nodes");

  // Measured structure sizes at a buildable n.
  size_t n = options.quick ? 200'000 : 2'000'000;
  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  analytic::Params pm = p;
  pm.n = static_cast<double>(n);

  Table measured({"method", "model bytes", "measured bytes", "ratio"});
  auto add = [&](const std::string& name, double model_bytes,
                 double measured_bytes) {
    measured.AddRow({name, Table::Bytes(model_bytes),
                     Table::Bytes(measured_bytes),
                     Table::Num(measured_bytes / model_bytes, 3)});
  };
  add("full CSS-tree", analytic::FullCssSpace(pm, 16),
      static_cast<double>(cssidx::FullCssTree<16>(keys).SpaceBytes()));
  add("level CSS-tree", analytic::LevelCssSpace(pm, 16),
      static_cast<double>(cssidx::LevelCssTree<16>(keys).SpaceBytes()));
  add("B+-tree", analytic::BPlusSpace(pm, 16),
      static_cast<double>(cssidx::BPlusTree<16>(keys).SpaceBytes()));
  add("T-tree (direct)", analytic::TTreeSpaceDirect(pm, 16),
      static_cast<double>(cssidx::TTreeIndex<16>(keys).SpaceBytes()) +
          static_cast<double>(n) * 4);  // + the RID list kept for order
  {
    // Hash sized like the paper: directory ~ n/2 buckets.
    int bits = 1;
    while ((size_t{1} << bits) < n / 2) ++bits;
    cssidx::ChainedHashIndex<64> hash(keys, bits);
    add("hash (direct)", analytic::HashSpaceDirect(pm) * 2,
        static_cast<double>(hash.SpaceBytes()));
  }
  measured.Print("Model vs measured, n = " + std::to_string(n));
  return 0;
}
