// Figure 5: analytic comparison ratio and cache-access ratio between level
// and full CSS-trees as a function of node size m, plus a measured
// head-to-head (the paper: level trees were up to 8% faster on the Ultra,
// and the two swap places depending on node size vs line size).

#include <string>
#include <vector>

#include "analytic/ratio_model.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <int M>
void MeasuredRow(Table& table, const std::vector<Key>& keys,
                 const std::vector<Key>& lookups, int repeats) {
  double full = MinFindSeconds(cssidx::FullCssTree<M>(keys), lookups, repeats);
  double level =
      MinFindSeconds(cssidx::LevelCssTree<M>(keys), lookups, repeats);
  table.AddRow({std::to_string(M), Table::Num(full), Table::Num(level),
                Table::Num(level / full, 3)});
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  namespace analytic = cssidx::analytic;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figure 5", "level vs full CSS-trees: analytic ratios + measured",
              options);

  Table ratios({"m", "comparison ratio (level/full)",
                "cache access ratio (level/full)"});
  for (int m = 4; m <= 64; m += 2) {
    ratios.AddRow({std::to_string(m),
                   Table::Num(analytic::ComparisonRatio(m), 5),
                   Table::Num(analytic::CacheAccessRatio(m), 5)});
  }
  ratios.Print("Figure 5: analytic ratios vs m");

  size_t n = options.n ? options.n : 2'000'000;
  if (options.quick) n = 300'000;
  auto keys = cssidx::workload::DistinctSortedKeys(n, options.seed, 4);
  auto lookups = cssidx::workload::MatchingLookups(keys, options.lookups,
                                                   options.seed + 1);
  Table measured({"m", "full (s)", "level (s)", "level/full"});
  MeasuredRow<8>(measured, keys, lookups, options.repeats);
  MeasuredRow<16>(measured, keys, lookups, options.repeats);
  MeasuredRow<32>(measured, keys, lookups, options.repeats);
  MeasuredRow<64>(measured, keys, lookups, options.repeats);
  measured.Print("Measured head-to-head, n = " + std::to_string(n));
  return 0;
}
