// google-benchmark microbenchmarks: per-lookup latency of every method at
// a few array sizes. Complements the figure benches (which reproduce the
// paper's batch-of-100k protocol) with statistically managed per-op
// numbers.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "baselines/binary_search.h"
#include "baselines/binary_tree.h"
#include "baselines/bplus_tree.h"
#include "baselines/chained_hash.h"
#include "baselines/interpolation_search.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx {
namespace {

struct Workload {
  std::vector<Key> keys;
  std::vector<Key> lookups;
};

const Workload& GetWorkload(size_t n) {
  static auto* cache = new std::map<size_t, Workload>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Workload w;
    w.keys = workload::DistinctSortedKeys(n, 17, 4);
    w.lookups = workload::MatchingLookups(w.keys, 4096, 18);
    it = cache->emplace(n, std::move(w)).first;
  }
  return it->second;
}

template <typename IndexT>
void RunLookups(benchmark::State& state, const IndexT& index,
                const Workload& w) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Find(w.lookups[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_BinarySearch(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  BinarySearchIndex index(w.keys);
  RunLookups(state, index, w);
}

void BM_TreeBinarySearch(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  BinaryTreeIndex index(w.keys);
  RunLookups(state, index, w);
}

void BM_Interpolation(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  InterpolationSearchIndex index(w.keys);
  RunLookups(state, index, w);
}

void BM_TTree(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  TTreeIndex<16> index(w.keys);
  RunLookups(state, index, w);
}

void BM_BPlusTree(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  BPlusTree<16> index(w.keys);
  RunLookups(state, index, w);
}

void BM_FullCss(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  FullCssTree<16> index(w.keys);
  RunLookups(state, index, w);
}

void BM_LevelCss(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  LevelCssTree<16> index(w.keys);
  RunLookups(state, index, w);
}

void BM_Hash(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  int bits = 4;
  while ((size_t{1} << bits) < w.keys.size() && bits < 22) ++bits;
  ChainedHashIndex<64> index(w.keys, bits);
  RunLookups(state, index, w);
}

void BM_FullCssBuild(benchmark::State& state) {
  const auto& w = GetWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    FullCssTree<16> index(w.keys);
    benchmark::DoNotOptimize(index.SpaceBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

constexpr int64_t kSmall = 100'000;
constexpr int64_t kLarge = 4'000'000;

BENCHMARK(BM_BinarySearch)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_TreeBinarySearch)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_Interpolation)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_TTree)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_BPlusTree)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_FullCss)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_LevelCss)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_Hash)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_FullCssBuild)->Arg(kLarge);

}  // namespace
}  // namespace cssidx

BENCHMARK_MAIN();
