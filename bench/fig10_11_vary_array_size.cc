// Figures 10 and 11: lookup time for 100,000 random successful searches as
// a function of the sorted-array size, for all eight methods, at node sizes
// of 8 and 16 integers (32B and 64B nodes — the two cache-line sizes of the
// paper's machines). One host replaces the paper's two machines; the
// machine-specific miss counts are reproduced separately by
// tbl_cache_misses using the simulated Ultra Sparc II and Pentium II
// caches.
//
// All eight methods are addressed through the IndexSpec menu and built by
// the spec-driven BuildIndex entry — the same dispatch the engine, the
// batch benches, and the serving layer use — so this figure measures the
// production construction path, not a bench-only template instantiation.
// The scalar Find hop goes through AnyIndex's virtual dispatch for every
// method alike, which keeps the cross-method comparison fair.
//
// Expected shape (paper): all methods tie while the array fits in cache;
// as n grows, T-tree and binary search (array and pointer) degrade
// fastest, B+-trees sit in the middle, CSS-trees are the best ordered
// method (~2x faster than binary search), hash is ~3x faster than CSS but
// pays ~20x space.

#include <cstdio>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/index_spec.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

/// Paper: 4M-entry hash directory at n = 5M-10M; scale the directory to
/// ~n so chains stay short at every point of the sweep.
int HashDirBits(size_t n) {
  int dir_bits = 4;
  while ((size_t{1} << dir_bits) < n && dir_bits < 22) ++dir_bits;
  return dir_bits;
}

/// The figure's eight methods at node size M, in legend order. Sized
/// methods take M from the spec string; hash scales its directory with n.
std::vector<std::string> MethodSpecs(int node_entries, size_t n) {
  const std::string m = std::to_string(node_entries);
  return {"bin",       "tbin",     "interp",   "ttree:" + m,
          "btree:" + m, "css:" + m, "lcss:" + m,
          "hash:" + std::to_string(HashDirBits(n))};
}

void RunSeries(int node_entries, const Options& options,
               const std::vector<size_t>& sizes) {
  Table table({"n", "array binary search", "tree binary search",
               "interpolation", "T-tree", "B+-tree", "full CSS-tree",
               "level CSS-tree", "hash"});
  for (size_t n : sizes) {
    auto keys = workload::DistinctSortedKeys(n, options.seed, 4);
    auto lookups = workload::MatchingLookups(keys, options.lookups,
                                             options.seed + 1);
    std::vector<std::string> row{std::to_string(n)};
    for (const std::string& text : MethodSpecs(node_entries, n)) {
      AnyIndex index = BuildIndex(*IndexSpec::Parse(text), keys);
      row.push_back(
          Table::Num(MinFindSeconds(index, lookups, options.repeats)));
    }
    table.AddRow(row);
  }
  table.Print("Figures 10/11: time (s) for " +
              std::to_string(options.lookups) + " lookups, " +
              std::to_string(node_entries) + " integers per node");
}

// §6.3: "we also did some tests on non-uniform data and interpolation
// search performs even worse than binary search." On modern hardware
// division is cheap, so interpolation looks good on uniform data; the
// paper's negative verdict shows on skewed distributions.
void RunSkewedSeries(const Options& options,
                     const std::vector<size_t>& sizes) {
  Table table({"n", "array binary search", "interpolation",
               "full CSS-tree"});
  for (size_t n : sizes) {
    auto keys = workload::SkewedKeys(n, options.seed);
    auto lookups = workload::MatchingLookups(keys, options.lookups,
                                             options.seed + 1);
    std::vector<std::string> row{std::to_string(n)};
    for (const char* text : {"bin", "interp", "css:16"}) {
      AnyIndex index = BuildIndex(*IndexSpec::Parse(text), keys);
      row.push_back(
          Table::Num(MinFindSeconds(index, lookups, options.repeats)));
    }
    table.AddRow(row);
  }
  table.Print(
      "§6.3 aside: non-uniform (quadratically skewed) data breaks "
      "interpolation search");
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figures 10 & 11",
              "lookup time vs sorted array size, all methods", options);
  std::vector<size_t> sizes{100, 1'000, 10'000, 100'000, 1'000'000,
                            3'000'000};
  if (options.full) sizes.push_back(10'000'000);
  if (options.quick) sizes = {100, 10'000, 300'000};
  RunSeries(8, options, sizes);
  RunSeries(16, options, sizes);
  RunSkewedSeries(options, sizes);
  return 0;
}
