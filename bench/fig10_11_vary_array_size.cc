// Figures 10 and 11: lookup time for 100,000 random successful searches as
// a function of the sorted-array size, for all eight methods, at node sizes
// of 8 and 16 integers (32B and 64B nodes — the two cache-line sizes of the
// paper's machines). One host replaces the paper's two machines; the
// machine-specific miss counts are reproduced separately by
// tbl_cache_misses using the simulated Ultra Sparc II and Pentium II
// caches.
//
// Expected shape (paper): all methods tie while the array fits in cache;
// as n grows, T-tree and binary search (array and pointer) degrade
// fastest, B+-trees sit in the middle, CSS-trees are the best ordered
// method (~2x faster than binary search), hash is ~3x faster than CSS but
// pays ~20x space.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/binary_search.h"
#include "baselines/binary_tree.h"
#include "baselines/bplus_tree.h"
#include "baselines/chained_hash.h"
#include "baselines/interpolation_search.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "harness.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx::bench {
namespace {

template <int M>
void RunSeries(const Options& options, const std::vector<size_t>& sizes) {
  Table table({"n", "array binary search", "tree binary search",
               "interpolation", "T-tree", "B+-tree", "full CSS-tree",
               "level CSS-tree", "hash"});
  for (size_t n : sizes) {
    auto keys = workload::DistinctSortedKeys(n, options.seed, 4);
    auto lookups = workload::MatchingLookups(keys, options.lookups,
                                             options.seed + 1);
    const int r = options.repeats;
    double t_bs = MinFindSeconds(BinarySearchIndex(keys), lookups, r);
    double t_bst = MinFindSeconds(BinaryTreeIndex(keys), lookups, r);
    double t_is =
        MinFindSeconds(InterpolationSearchIndex(keys), lookups, r);
    double t_tt = MinFindSeconds(TTreeIndex<M>(keys), lookups, r);
    double t_bp = MinFindSeconds(BPlusTree<M>(keys), lookups, r);
    double t_fc = MinFindSeconds(FullCssTree<M>(keys), lookups, r);
    double t_lc = MinFindSeconds(LevelCssTree<M>(keys), lookups, r);
    // Paper: 4M-entry hash directory at n = 5M-10M; scale dir to ~n.
    int dir_bits = 4;
    while ((size_t{1} << dir_bits) < n && dir_bits < 22) ++dir_bits;
    double t_h =
        MinFindSeconds(ChainedHashIndex<64>(keys, dir_bits), lookups, r);
    table.AddRow({std::to_string(n), Table::Num(t_bs), Table::Num(t_bst),
                  Table::Num(t_is), Table::Num(t_tt), Table::Num(t_bp),
                  Table::Num(t_fc), Table::Num(t_lc), Table::Num(t_h)});
  }
  table.Print("Figures 10/11: time (s) for " +
              std::to_string(options.lookups) + " lookups, " +
              std::to_string(M) + " integers per node");
}

// §6.3: "we also did some tests on non-uniform data and interpolation
// search performs even worse than binary search." On modern hardware
// division is cheap, so interpolation looks good on uniform data; the
// paper's negative verdict shows on skewed distributions.
void RunSkewedSeries(const Options& options,
                     const std::vector<size_t>& sizes) {
  Table table({"n", "array binary search", "interpolation",
               "full CSS-tree"});
  for (size_t n : sizes) {
    auto keys = workload::SkewedKeys(n, options.seed);
    auto lookups = workload::MatchingLookups(keys, options.lookups,
                                             options.seed + 1);
    const int r = options.repeats;
    double t_bs = MinFindSeconds(BinarySearchIndex(keys), lookups, r);
    double t_is =
        MinFindSeconds(InterpolationSearchIndex(keys), lookups, r);
    double t_fc = MinFindSeconds(FullCssTree<16>(keys), lookups, r);
    table.AddRow({std::to_string(n), Table::Num(t_bs), Table::Num(t_is),
                  Table::Num(t_fc)});
  }
  table.Print(
      "§6.3 aside: non-uniform (quadratically skewed) data breaks "
      "interpolation search");
}

}  // namespace
}  // namespace cssidx::bench

int main(int argc, char** argv) {
  using namespace cssidx::bench;
  Options options = Options::Parse(argc, argv);
  PrintHeader("Figures 10 & 11",
              "lookup time vs sorted array size, all methods", options);
  std::vector<size_t> sizes{100, 1'000, 10'000, 100'000, 1'000'000,
                            3'000'000};
  if (options.full) sizes.push_back(10'000'000);
  if (options.quick) sizes = {100, 10'000, 300'000};
  RunSeries<8>(options, sizes);
  RunSeries<16>(options, sizes);
  RunSkewedSeries(options, sizes);
  return 0;
}
