#ifndef CSSIDX_CACHESIM_CACHE_SIM_H_
#define CSSIDX_CACHESIM_CACHE_SIM_H_

#include <cstdint>
#include <vector>

#include "cachesim/cache_config.h"

// Software cache simulator.
//
// The paper's central quantitative claim (Figure 6) is about the number of
// cache misses each index structure takes per lookup. The authors observe
// this indirectly through wall-clock time on two machines; we reproduce it
// directly by replaying the exact memory reference stream of each lookup
// through a set-associative LRU cache model with the paper's geometries.
// This is the "simulate what you don't have" substrate: it stands in for
// the Ultra Sparc II and Pentium II hardware.

namespace cssidx::cachesim {

/// One level of set-associative cache with true-LRU replacement.
class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& config);

  /// Touches `size` bytes starting at `addr`. Every distinct line spanned is
  /// one access. Returns the number of misses incurred.
  uint64_t Access(const void* addr, uint64_t size);

  /// Touch a single address (one line unless it straddles a boundary —
  /// callers pass the object size for that).
  uint64_t Touch(const void* addr) { return Access(addr, 1); }

  /// Drops all cached lines but keeps counters.
  void FlushContents();

  /// Zeroes the hit/miss counters but keeps contents (for warm-cache runs).
  void ResetCounters();

  uint64_t accesses() const { return accesses_; }
  uint64_t hits() const { return accesses_ - misses_; }
  uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t last_use = 0;
    bool valid = false;
  };

  bool AccessLine(uint64_t line_addr);

  CacheConfig config_;
  uint64_t num_sets_;
  uint32_t ways_;
  uint64_t tick_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
  std::vector<Way> slots_;  // num_sets_ * ways_, row-major by set
};

/// A stack of cache levels (L1 first). An access that misses level i
/// continues to level i+1; main memory is implicit after the last level.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const std::vector<CacheConfig>& configs);

  void Access(const void* addr, uint64_t size);
  void FlushContents();
  void ResetCounters();

  size_t NumLevels() const { return levels_.size(); }
  const CacheSim& Level(size_t i) const { return levels_[i]; }

  /// Misses at the last level = fetches that had to go to main memory.
  uint64_t MemoryFetches() const;

 private:
  std::vector<CacheSim> levels_;
};

/// Tracer plumbed through the instrumented lookup paths. `NullTracer` is an
/// empty shell the optimizer deletes, so production lookups carry zero
/// instrumentation cost; `SimTracer` replays touches into a hierarchy.
struct NullTracer {
  static constexpr bool kEnabled = false;
  void Touch(const void*, uint64_t) const {}
};

struct SimTracer {
  static constexpr bool kEnabled = true;
  CacheHierarchy* hierarchy = nullptr;
  void Touch(const void* addr, uint64_t size) const {
    hierarchy->Access(addr, size);
  }
};

}  // namespace cssidx::cachesim

#endif  // CSSIDX_CACHESIM_CACHE_SIM_H_
