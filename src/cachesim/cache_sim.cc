#include "cachesim/cache_sim.h"

#include <cassert>

#include "util/bits.h"

namespace cssidx::cachesim {

std::vector<CacheConfig> UltraSparcHierarchy() {
  return {UltraSparcL1(), UltraSparcL2()};
}
std::vector<CacheConfig> PentiumIIHierarchy() {
  return {PentiumIIL1(), PentiumIIL2()};
}
std::vector<CacheConfig> ModernHierarchy() { return {ModernL1(), ModernL2()}; }

CacheSim::CacheSim(const CacheConfig& config) : config_(config) {
  assert(IsPowerOfTwo(config.line_bytes));
  assert(config.capacity_bytes % config.line_bytes == 0);
  uint64_t lines = config.NumLines();
  ways_ = config.associativity == 0 ? static_cast<uint32_t>(lines)
                                    : config.associativity;
  assert(lines % ways_ == 0);
  num_sets_ = lines / ways_;
  slots_.resize(num_sets_ * ways_);
}

bool CacheSim::AccessLine(uint64_t line_addr) {
  ++accesses_;
  ++tick_;
  uint64_t set = line_addr % num_sets_;
  Way* base = &slots_[set * ways_];
  Way* victim = base;
  for (uint32_t w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line_addr) {
      way.last_use = tick_;
      return true;  // hit
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  ++misses_;
  victim->tag = line_addr;
  victim->last_use = tick_;
  victim->valid = true;
  return false;
}

uint64_t CacheSim::Access(const void* addr, uint64_t size) {
  if (size == 0) size = 1;
  auto start = reinterpret_cast<uint64_t>(addr);
  uint64_t first = start / config_.line_bytes;
  uint64_t last = (start + size - 1) / config_.line_bytes;
  uint64_t miss_count = 0;
  for (uint64_t line = first; line <= last; ++line) {
    if (!AccessLine(line)) ++miss_count;
  }
  return miss_count;
}

void CacheSim::FlushContents() {
  for (Way& w : slots_) w.valid = false;
}

void CacheSim::ResetCounters() {
  accesses_ = 0;
  misses_ = 0;
}

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig>& configs) {
  levels_.reserve(configs.size());
  for (const auto& c : configs) levels_.emplace_back(c);
}

void CacheHierarchy::Access(const void* addr, uint64_t size) {
  // An access proceeds to the next level only for the lines it missed.
  // Modelling per-line propagation exactly: touch each level with the same
  // span; a line that hits in L1 would not reach L2, so we stop the chain
  // per line. For simplicity and because spans here are <= a few lines, we
  // iterate line by line.
  if (size == 0) size = 1;
  auto start = reinterpret_cast<uint64_t>(addr);
  uint32_t line0 = levels_.front().config().line_bytes;
  uint64_t first = start / line0;
  uint64_t last = (start + size - 1) / line0;
  for (uint64_t line = first; line <= last; ++line) {
    const void* p = reinterpret_cast<const void*>(line * line0);
    for (auto& level : levels_) {
      uint64_t missed = level.Access(p, 1);
      if (missed == 0) break;  // satisfied at this level
    }
  }
}

void CacheHierarchy::FlushContents() {
  for (auto& l : levels_) l.FlushContents();
}

void CacheHierarchy::ResetCounters() {
  for (auto& l : levels_) l.ResetCounters();
}

uint64_t CacheHierarchy::MemoryFetches() const {
  return levels_.back().misses();
}

}  // namespace cssidx::cachesim
