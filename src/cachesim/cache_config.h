#ifndef CSSIDX_CACHESIM_CACHE_CONFIG_H_
#define CSSIDX_CACHESIM_CACHE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

// Cache geometry descriptions, parameterized exactly as the paper does:
// <capacity, block (line) size, associativity> (§3.1, §6.1).

namespace cssidx::cachesim {

struct CacheConfig {
  std::string name;
  uint64_t capacity_bytes = 0;
  uint32_t line_bytes = 0;
  uint32_t associativity = 0;  // 0 means fully associative

  uint64_t NumLines() const { return capacity_bytes / line_bytes; }
  uint64_t NumSets() const {
    uint32_t ways = associativity == 0
                        ? static_cast<uint32_t>(NumLines())
                        : associativity;
    return NumLines() / ways;
  }
};

/// The four cache levels measured in the paper (§6.1) plus a representative
/// modern geometry, so benches can show both the 1999 and present-day miss
/// profiles.
///
/// Ultra Sparc II:  L1 <16K, 32B, 1>,  L2 <1M, 64B, 1>
/// Pentium II:      L1 <16K, 32B, 4>,  L2 <512K, 32B, 4>
inline CacheConfig UltraSparcL1() { return {"ultra-l1", 16 * 1024, 32, 1}; }
inline CacheConfig UltraSparcL2() { return {"ultra-l2", 1024 * 1024, 64, 1}; }
inline CacheConfig PentiumIIL1() { return {"pentium-l1", 16 * 1024, 32, 4}; }
inline CacheConfig PentiumIIL2() { return {"pentium-l2", 512 * 1024, 32, 4}; }
inline CacheConfig ModernL1() { return {"modern-l1", 32 * 1024, 64, 8}; }
inline CacheConfig ModernL2() { return {"modern-l2", 1024 * 1024, 64, 16}; }

/// Two-level hierarchies matching each experimental machine in §6.1.
std::vector<CacheConfig> UltraSparcHierarchy();
std::vector<CacheConfig> PentiumIIHierarchy();
std::vector<CacheConfig> ModernHierarchy();

}  // namespace cssidx::cachesim

#endif  // CSSIDX_CACHESIM_CACHE_CONFIG_H_
