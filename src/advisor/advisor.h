#ifndef CSSIDX_ADVISOR_ADVISOR_H_
#define CSSIDX_ADVISOR_ADVISOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/index.h"
#include "core/index_spec.h"
#include "core/probe_stats.h"

// The self-tuning advisor: observed workload × the paper's §5 analytic
// models. §7's stepped space/time line "basically tells us how to find the
// optimal searching time for a given amount of space" — this layer walks
// that line automatically. A WorkloadProfile (from ProbeStatsCollector)
// says what the traffic looks like: point vs range mix, hit ratio, batch
// sizes, update rate and locality. The §5 models (analytic::TimeModel /
// SpaceModel) say what each spec on the menu would cost in cache misses,
// comparisons, and bytes. The advisor combines the two into one modeled
// ns/probe per candidate — probe cost weighted by the observed mix, plus
// maintenance cost amortized over observed probes — filters by the space
// budget, and ranks. Optionally the top candidates are micro-benchmarked
// on real keys with a workload replayed from the profile to break analytic
// ties (model weights are calibrated once, not per machine).
//
// The advisor only reads snapshots and counters; applying a
// recommendation is the caller's business (the serving layer hot-swaps
// through MaintainedIndex::RebuildWithSpec behind a flag).

namespace cssidx::advisor {

struct AdvisorOptions {
  /// Index bytes beyond the sorted key array; 0 = unlimited.
  uint64_t space_budget_bytes = 0;
  /// Threads available for probe sharding; 1 (the dev default) means @tN
  /// suffixes are never recommended.
  int hardware_threads = 1;
  /// 4 or 8. Candidates are generated at this width (hash is 4-only).
  int key_width = 4;
  /// Keep hash off the menu even if the observed mix would allow it —
  /// for callers that also serve ordered scans the collector can't see.
  bool need_ordered_access = false;
  /// Micro-benchmark the top `microbench_top` model candidates on real
  /// keys (AdviseOnKeys only) and re-rank those by measured ns/probe.
  bool microbench = false;
  int microbench_top = 2;
  size_t microbench_probes = 1 << 16;
  int microbench_repeats = 3;

  // Cost weights, ns. Calibrated to a generic ~3GHz core; the ranking
  // consumes ratios, so absolute scale barely matters — what matters is
  // miss_ns >> comparison_ns (the paper's whole premise).
  double line_bytes = 64.0;
  double miss_ns = 70.0;
  double comparison_ns = 1.5;
  double move_ns = 2.0;
  /// Per-key cost of the rebuild-on-batch maintenance path: sorted-list
  /// merge plus a sequential directory rebuild (the CSS case). Pointer
  /// structures (T-tree) and hash chains rebuild by random access and pay
  /// a method multiplier on top of this inside ScoreSpec.
  double rebuild_ns_per_key = 12.0;
  /// Parallel probe efficiency per extra thread (sharding overhead).
  double thread_efficiency = 0.7;
};

struct ScoredSpec {
  IndexSpec spec;
  /// Modeled ns per probe: probe_ns + amortized update_ns. The ranking
  /// key (or measured_ns when the microbench ran).
  double cost_ns = 0.0;
  double probe_ns = 0.0;
  double update_ns = 0.0;
  double space_bytes = 0.0;
  bool over_budget = false;
  /// Microbenched ns/probe; negative when not measured.
  double measured_ns = -1.0;
};

struct Recommendation {
  bool ok = false;
  std::string error;
  /// The winning spec (valid only when ok).
  IndexSpec spec;
  /// Every in-budget candidate, best first.
  std::vector<ScoredSpec> ranked;
  /// Candidates rejected by the space budget, for reporting.
  std::vector<ScoredSpec> over_budget;
  WorkloadProfile profile;
  /// One paragraph of why, for ADVISE output and CLIs.
  std::string rationale;
};

/// The candidate menu at `opts.key_width`: every method × node-size on the
/// spec menu, hash directory sweeps, part:K wraps, and @tN variants when
/// `opts.hardware_threads` > 1. Every returned spec satisfies OnMenu().
std::vector<IndexSpec> CandidateMenu(const AdvisorOptions& opts);

/// Models one candidate against the profile (no building, pure math).
/// `n` is the indexed key count.
ScoredSpec ScoreSpec(const IndexSpec& spec, const WorkloadProfile& profile,
                     size_t n, const AdvisorOptions& opts);

/// Model-only recommendation over CandidateMenu.
Recommendation Advise(const WorkloadProfile& profile, size_t n,
                      const AdvisorOptions& opts);

/// As Advise, with the real sorted keys available: when opts.microbench is
/// set, the top model candidates are built and timed on a probe stream
/// replayed from the profile (hit ratio, range mix), and re-ranked by
/// measurement. KeyT is Key or Key64 and must match opts.key_width.
template <typename KeyT>
Recommendation AdviseOnKeys(const WorkloadProfile& profile,
                            std::span<const KeyT> sorted_keys,
                            const AdvisorOptions& opts);

}  // namespace cssidx::advisor

#endif  // CSSIDX_ADVISOR_ADVISOR_H_
