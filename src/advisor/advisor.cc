#include "advisor/advisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "analytic/params.h"
#include "analytic/space_model.h"
#include "analytic/time_model.h"
#include "core/any_index.h"
#include "core/builder.h"
#include "util/rng.h"

namespace cssidx::advisor {

namespace {

/// Keeps the microbench probe loops observable without linking the bench
/// harness into the core library.
volatile uint64_t g_advisor_sink = 0;

struct DescentCost {
  double comparisons = 0;
  double misses = 0;
  double moves = 0;
  bool modeled = false;
};

/// Per-point-probe descent cost of `spec`'s METHOD over n keys — the §5
/// TimeModel rows where the paper models the method, explicit formulas in
/// the same spirit for the rest (tbin/interp/hash are measured in Figure 6
/// but not tabulated in §5.1).
DescentCost MethodDescent(const IndexSpec& spec, double n, double key_width,
                          const AdvisorOptions& opts) {
  DescentCost d;
  if (n < 2) {
    d.modeled = true;
    d.comparisons = 1;
    d.misses = 1;
    return d;
  }
  analytic::Params p;
  p.K = key_width;
  p.n = n;
  p.c = opts.line_bytes;
  const double log2n = std::log2(n);
  switch (spec.method()) {
    case Method::kBinarySearch:
    case Method::kTreeBinarySearch: {
      // Same asymptotics; tbin's layout buys a better constant on the top
      // levels but the §5.1 model charges both ~1 miss per comparison.
      d.comparisons = log2n;
      d.misses = log2n;
      d.moves = log2n;
      d.modeled = true;
      return d;
    }
    case Method::kInterpolation: {
      // ~log2(log2 n) iterations on smooth distributions, each a
      // dependent miss plus arithmetic; charge a safety factor for the
      // distributions the profile can't see (skew wrecks interpolation).
      double iters = std::log2(std::max(2.0, log2n)) + 1.0;
      d.comparisons = 2.0 * iters;
      d.misses = iters + 1.0;
      d.moves = iters;
      d.modeled = true;
      return d;
    }
    case Method::kHash: {
      // One dependent directory load, then the 64-byte bucket scan; h=1.2
      // says chains stay short. Off-model when ordered access is needed.
      d.comparisons = 4.0;
      d.misses = 1.0 + p.h;
      d.moves = 1.0;
      d.modeled = true;
      return d;
    }
    case Method::kTTree:
    case Method::kBPlusTree:
    case Method::kFullCss:
    case Method::kLevelCss: {
      const char* row_name =
          spec.method() == Method::kTTree      ? "T-tree"
          : spec.method() == Method::kBPlusTree ? "B+-tree"
          : spec.method() == Method::kFullCss   ? "full CSS-tree"
                                                : "level CSS-tree";
      auto rows = analytic::TimeModel(p, spec.node_entries());
      for (const auto& r : rows) {
        if (r.method == row_name) {
          d.comparisons = r.comparisons;
          d.misses = r.cache_misses;
          d.moves = r.moves;
          d.modeled = true;
          return d;
        }
      }
      return d;
    }
  }
  return d;
}

/// Index bytes beyond the sorted array, per the Figure 7 formulas.
double MethodSpace(const IndexSpec& spec, double n, double key_width,
                   const AdvisorOptions& opts) {
  analytic::Params p;
  p.K = key_width;
  p.n = n;
  p.c = opts.line_bytes;
  double m = spec.node_entries();
  switch (spec.method()) {
    case Method::kBinarySearch:
    case Method::kInterpolation:
      return 0.0;
    case Method::kTreeBinarySearch:
      return n * key_width;  // the array copied into tree order
    case Method::kTTree:
      return analytic::TTreeSpaceIndirect(p, m);
    case Method::kBPlusTree:
      return analytic::BPlusSpace(p, m);
    case Method::kFullCss:
      return analytic::FullCssSpace(p, m);
    case Method::kLevelCss:
      return analytic::LevelCssSpace(p, m);
    case Method::kHash: {
      // ChainedHashIndex: one cache-line Bucket (7 pairs) per directory
      // slot, plus overflow buckets once the average chain outgrows its
      // directory line.
      const double kPairsPerBucket = (64.0 - 8.0) / 8.0;
      double dir = std::ldexp(1.0, spec.hash_dir_bits());
      double overflow = std::max(0.0, n / kPairsPerBucket - dir);
      return 64.0 * (dir + overflow);
    }
  }
  return 0.0;
}

double Ns(const DescentCost& d, const AdvisorOptions& opts) {
  return d.misses * opts.miss_ns + d.comparisons * opts.comparison_ns +
         d.moves * opts.move_ns;
}

}  // namespace

ScoredSpec ScoreSpec(const IndexSpec& spec, const WorkloadProfile& profile,
                     size_t n, const AdvisorOptions& opts) {
  ScoredSpec s;
  s.spec = spec;
  const double nn = static_cast<double>(n);
  const double width = opts.key_width;
  const int K = spec.partitioned() ? spec.partitions() : 0;

  // --- Probe cost: descend the (inner) structure, weighted by the mix.
  double inner_n = K > 0 ? nn / K : nn;
  DescentCost point = MethodDescent(spec, inner_n, width, opts);
  double point_ns = Ns(point, opts);
  if (K > 0) {
    // Fence routing (binary search over K fences) plus the batch
    // scatter/gather: each probe is bucketed to its shard and its result
    // written back through an index map, and the per-shard sub-batches
    // are too small to overlap misses as well as one big group probe.
    // Together that costs about one extra line fetch per probe — more
    // than the ~log_m(K) descent levels the smaller shards save, which
    // is why part:K must earn its keep on update locality, not probes.
    point_ns += std::log2(std::max(2, K)) * opts.comparison_ns +
                1.0 * opts.miss_ns;
  }
  // A range probe is a LowerBound descent plus an adjacency scan (ordered)
  // or a Find + bucket re-walk (hash).
  double range_ns = point_ns * (spec.ordered() ? 1.3 : 1.6);
  double range_frac = profile.RangeFraction();
  double probe_ns = point_ns * (1.0 - range_frac) + range_ns * range_frac;

  // Misses descend the full structure too (every method here resolves a
  // miss with the same descent; hash walks its whole chain either way),
  // so the hit fraction does not change the per-probe model — it matters
  // to the microbench, which replays it.

  // @tN: shards each large batch. Only batches big enough to shard gain.
  int threads = spec.probe_threads();
  if (threads > 1 && profile.MeanBatch() >= kParallelProbeMinShard) {
    probe_ns /= 1.0 + opts.thread_efficiency * (threads - 1);
  }
  s.probe_ns = probe_ns;

  // --- Maintenance cost, amortized over observed probes. Full rebuild
  // touches n keys; part:K re-merges only the shards the batch span
  // touches (the whole point of the fence-table refresh path).
  if (profile.update_batches > 0) {
    double touched_keys = nn;
    if (K > 0) {
      double span = profile.MeanUpdateSpanFraction();
      double touched_shards = std::clamp(std::ceil(span * K) + 1.0, 1.0,
                                         static_cast<double>(K));
      touched_keys = touched_shards * (nn / K);
    }
    double per_key = opts.rebuild_ns_per_key;
    // Hash rebuilds by re-inserting every key into random bucket lines
    // (~an order of magnitude over the sequential merge+rebuild path);
    // T-tree allocates and links pointer nodes.
    if (spec.method() == Method::kHash) per_key *= 8.0;
    if (spec.method() == Method::kTTree) per_key *= 4.0;
    double batch_ns = touched_keys * per_key;
    double probes = std::max<uint64_t>(profile.TotalProbes(), 1);
    s.update_ns = batch_ns * profile.update_batches / probes;
  }

  // --- Space, against the budget.
  s.space_bytes = MethodSpace(spec, nn, width, opts);
  if (K > 0) s.space_bytes += K * (width + 16.0);  // fences + shard headers
  s.over_budget = opts.space_budget_bytes != 0 &&
                  s.space_bytes > static_cast<double>(opts.space_budget_bytes);

  s.cost_ns = s.probe_ns + s.update_ns;
  return s;
}

std::vector<IndexSpec> CandidateMenu(const AdvisorOptions& opts) {
  std::vector<IndexSpec> menu;
  auto add = [&](IndexSpec spec) {
    spec = spec.WithKeyWidth(opts.key_width);
    if (!spec.OnMenu()) return;
    menu.push_back(spec);
    // part:K wraps — the update-locality play.
    for (int k : {4, 16}) {
      IndexSpec part = spec.WithPartitions(k);
      if (part.OnMenu()) menu.push_back(part);
    }
  };
  add(IndexSpec(Method::kBinarySearch));
  add(IndexSpec(Method::kTreeBinarySearch));
  add(IndexSpec(Method::kInterpolation));
  for (Method m : {Method::kTTree, Method::kBPlusTree, Method::kFullCss,
                   Method::kLevelCss}) {
    for (int entries : NodeSizeMenu()) {
      add(IndexSpec(m, entries));
    }
  }
  if (!opts.need_ordered_access) {
    for (int bits : {16, 18, 20, 22}) {
      add(IndexSpec(Method::kHash, bits));
    }
  }
  // @tN variants: one per hardware width; pointless (and never
  // recommended) on a single-core box.
  if (opts.hardware_threads > 1) {
    size_t base = menu.size();
    for (size_t i = 0; i < base; ++i) {
      IndexSpec threaded = menu[i].WithProbeThreads(opts.hardware_threads);
      if (threaded.OnMenu()) menu.push_back(threaded);
    }
  }
  return menu;
}

Recommendation Advise(const WorkloadProfile& profile, size_t n,
                      const AdvisorOptions& opts) {
  Recommendation rec;
  rec.profile = profile;
  if (opts.key_width != 4 && opts.key_width != 8) {
    rec.error = "advisor: key_width must be 4 or 8";
    return rec;
  }
  std::vector<IndexSpec> menu = CandidateMenu(opts);
  if (opts.need_ordered_access || profile.lower_bound_probes > 0) {
    // The workload (or the caller) needs ordered positions; hash's
    // LowerBound degenerates to size().
    std::erase_if(menu, [](const IndexSpec& s) { return !s.ordered(); });
  }
  if (profile.UpdateRate() < 0.001) {
    // part:K pays a routing + batch-fragmentation tax on every probe and
    // earns it back only through shard-incremental maintenance. With no
    // observed update traffic the tax is a pure loss — and the modeled
    // probe margins between K values sit below measurement noise, so
    // keep composites off a probe-only menu entirely.
    std::erase_if(menu, [](const IndexSpec& s) { return s.partitioned(); });
  }
  for (const IndexSpec& spec : menu) {
    ScoredSpec scored = ScoreSpec(spec, profile, n, opts);
    (scored.over_budget ? rec.over_budget : rec.ranked).push_back(scored);
  }
  auto by_cost = [](const ScoredSpec& a, const ScoredSpec& b) {
    return a.cost_ns < b.cost_ns;
  };
  std::sort(rec.ranked.begin(), rec.ranked.end(), by_cost);
  std::sort(rec.over_budget.begin(), rec.over_budget.end(), by_cost);
  if (rec.ranked.empty()) {
    rec.error = "advisor: no spec on the menu fits the space budget";
    return rec;
  }
  // Modeled margins under ~10% are below what the weights can resolve;
  // within that band §7's stepped line says take the cheaper step — the
  // smallest structure wins the tie (it is also the cache-kindest).
  {
    size_t winner = 0;
    const double band = rec.ranked.front().cost_ns * 1.10;
    for (size_t i = 1; i < rec.ranked.size(); ++i) {
      if (rec.ranked[i].cost_ns > band) break;
      if (rec.ranked[i].space_bytes < rec.ranked[winner].space_bytes) {
        winner = i;
      }
    }
    if (winner != 0) {
      std::rotate(rec.ranked.begin(), rec.ranked.begin() + winner,
                  rec.ranked.begin() + winner + 1);
    }
  }
  rec.ok = true;
  rec.spec = rec.ranked.front().spec;

  char buf[512];
  const ScoredSpec& best = rec.ranked.front();
  std::snprintf(
      buf, sizeof(buf),
      "%s: modeled %.0f ns/probe (%.0f probe + %.0f update) using %.1f MB; "
      "observed %llu probes (%.0f%% range, %.0f%% hit, mean batch %.0f), "
      "%llu update batches (%.2f updates/probe, span %.2f)",
      rec.spec.ToString().c_str(), best.cost_ns, best.probe_ns, best.update_ns,
      best.space_bytes / 1e6,
      static_cast<unsigned long long>(profile.TotalProbes()),
      100.0 * profile.RangeFraction(), 100.0 * profile.HitFraction(),
      profile.MeanBatch(),
      static_cast<unsigned long long>(profile.update_batches),
      profile.UpdateRate(), profile.MeanUpdateSpanFraction());
  rec.rationale = buf;
  return rec;
}

namespace {

/// Replays the profile's mix as a probe stream: hit_fraction matching
/// draws, the rest keys absent from the array (rejection-sampled).
template <typename KeyT>
std::vector<KeyT> ReplayProbes(std::span<const KeyT> sorted_keys, size_t count,
                               double hit_fraction, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<KeyT> probes;
  probes.reserve(count);
  const size_t n = sorted_keys.size();
  for (size_t i = 0; i < count; ++i) {
    bool hit = rng.NextDouble() < hit_fraction;
    if (hit && n > 0) {
      probes.push_back(sorted_keys[rng.Below(n)]);
      continue;
    }
    KeyT k = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
      k = static_cast<KeyT>(rng.Next64());
      if (!std::binary_search(sorted_keys.begin(), sorted_keys.end(), k)) {
        break;
      }
    }
    probes.push_back(k);
  }
  return probes;
}

/// Best-of-repeats ns/probe for `spec` built over `sorted_keys`, replaying
/// the profile's point/range mix. Returns a negative value if the spec
/// fails to build.
template <typename KeyT>
double MicrobenchSpec(const IndexSpec& spec, std::span<const KeyT> sorted_keys,
                      const WorkloadProfile& profile,
                      const AdvisorOptions& opts) {
  BasicAnyIndex<KeyT> index =
      BuildIndexT<KeyT>(spec, sorted_keys.data(), sorted_keys.size());
  if (!index) return -1.0;
  size_t count = std::max<size_t>(opts.microbench_probes, 1);
  std::vector<KeyT> probes =
      ReplayProbes(sorted_keys, count, profile.HitFraction(), /*seed=*/42);
  size_t range_count =
      static_cast<size_t>(profile.RangeFraction() * count + 0.5);
  size_t point_count = count - range_count;
  std::vector<int64_t> found(point_count);
  std::vector<PositionRange> ranges(range_count);
  size_t batch = std::clamp<size_t>(
      static_cast<size_t>(profile.MeanBatch() + 0.5), 1, count);

  auto run_once = [&]() {
    auto t0 = std::chrono::steady_clock::now();
    if (point_count > 0) {
      FindBlocked<KeyT>(index, std::span<const KeyT>(probes).first(point_count),
                        batch, found);
    }
    if (range_count > 0) {
      EqualRangeBlocked<KeyT>(index,
                              std::span<const KeyT>(probes).last(range_count),
                              batch, ranges);
    }
    auto t1 = std::chrono::steady_clock::now();
    uint64_t sink = 0;
    for (size_t i = 0; i < std::min<size_t>(point_count, 64); ++i) {
      sink += static_cast<uint64_t>(found[i]);
    }
    for (size_t i = 0; i < std::min<size_t>(range_count, 64); ++i) {
      sink += ranges[i].begin;
    }
    g_advisor_sink = g_advisor_sink + sink;
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
  };

  run_once();  // warmup: faults pages, warms caches and the branch state
  double best = run_once();
  for (int r = 1; r < std::max(opts.microbench_repeats, 1); ++r) {
    best = std::min(best, run_once());
  }
  return best / count;
}

}  // namespace

template <typename KeyT>
Recommendation AdviseOnKeys(const WorkloadProfile& profile,
                            std::span<const KeyT> sorted_keys,
                            const AdvisorOptions& opts) {
  AdvisorOptions fixed = opts;
  fixed.key_width = static_cast<int>(sizeof(KeyT));
  Recommendation rec = Advise(profile, sorted_keys.size(), fixed);
  if (!rec.ok || !fixed.microbench || rec.ranked.size() < 2) return rec;

  size_t top = std::min<size_t>(std::max(fixed.microbench_top, 2),
                                rec.ranked.size());
  bool any = false;
  for (size_t i = 0; i < top; ++i) {
    double ns = MicrobenchSpec(rec.ranked[i].spec, sorted_keys, profile,
                               fixed);
    if (ns >= 0) {
      rec.ranked[i].measured_ns = ns;
      any = true;
    }
  }
  if (!any) return rec;
  std::stable_sort(rec.ranked.begin(), rec.ranked.begin() + top,
                   [](const ScoredSpec& a, const ScoredSpec& b) {
                     // Measured beats modeled; unmeasured keep model order.
                     if (a.measured_ns >= 0 && b.measured_ns >= 0) {
                       return a.measured_ns < b.measured_ns;
                     }
                     return false;
                   });
  rec.spec = rec.ranked.front().spec;
  rec.rationale += "; microbench re-ranked top candidates";
  return rec;
}

template Recommendation AdviseOnKeys<Key>(const WorkloadProfile&,
                                          std::span<const Key>,
                                          const AdvisorOptions&);
template Recommendation AdviseOnKeys<Key64>(const WorkloadProfile&,
                                            std::span<const Key64>,
                                            const AdvisorOptions&);

}  // namespace cssidx::advisor
