#ifndef CSSIDX_ENGINE_TABLE_H_
#define CSSIDX_ENGINE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/full_css_tree.h"
#include "core/index.h"

// Minimal columnar main-memory table, the §2 system context: columns store
// 4-byte values (raw integers or domain IDs), and ordered access to a
// column goes through a *sort index* — "a list of record identifiers
// sorted by some columns" (§2.2) — with a CSS-tree directory over the
// sorted key list.

namespace cssidx::engine {

using Rid = uint32_t;

/// Ordered secondary index on one column: the column's values sorted, the
/// matching RID permutation, and a CSS-tree over the sorted values. This
/// is exactly the paper's indexed representation: the sorted key list
/// supports range/ordered access, the directory accelerates lookups, and
/// position i of the key list pairs with rids[i].
class SortIndex {
 public:
  SortIndex(const std::vector<uint32_t>& column_values);

  /// RIDs of rows whose value equals `v`, in RID-list order.
  std::vector<Rid> Equal(uint32_t v) const;

  /// RIDs of rows with value in [lo, hi).
  std::vector<Rid> Range(uint32_t lo, uint32_t hi) const;

  /// Leftmost sorted position of `v`, or kNotFound.
  int64_t Find(uint32_t v) const { return tree_->Find(v); }
  size_t LowerBound(uint32_t v) const { return tree_->LowerBound(v); }

  const std::vector<uint32_t>& sorted_keys() const { return sorted_keys_; }
  const std::vector<Rid>& rids() const { return rids_; }
  size_t SpaceBytes() const;

 private:
  std::vector<uint32_t> sorted_keys_;
  std::vector<Rid> rids_;
  std::unique_ptr<FullCssTree<16>> tree_;
};

/// Column-store table: named uint32 columns of equal length.
class Table {
 public:
  Table() = default;

  /// Adds a column; all columns must have the same row count.
  void AddColumn(const std::string& name, std::vector<uint32_t> values);

  /// Appends a batch of rows (one value per existing column, keyed by
  /// name) and rebuilds every sort index — the OLAP maintenance cycle.
  /// Throws if the batch's columns do not match the table's.
  void AppendRows(const std::map<std::string, std::vector<uint32_t>>& rows);

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }
  bool HasColumn(const std::string& name) const;
  const std::vector<uint32_t>& Column(const std::string& name) const;

  /// Builds (or rebuilds, after batch updates) the sort index on a column.
  const SortIndex& BuildSortIndex(const std::string& column);
  /// The sort index previously built on `column` (must exist).
  const SortIndex& GetSortIndex(const std::string& column) const;
  bool HasSortIndex(const std::string& column) const;

 private:
  size_t num_rows_ = 0;
  std::map<std::string, std::vector<uint32_t>> columns_;
  std::map<std::string, std::unique_ptr<SortIndex>> indexes_;
};

}  // namespace cssidx::engine

#endif  // CSSIDX_ENGINE_TABLE_H_
