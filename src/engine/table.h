#ifndef CSSIDX_ENGINE_TABLE_H_
#define CSSIDX_ENGINE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/any_index.h"
#include "core/index.h"
#include "core/index_spec.h"
#include "core/maintained_index.h"
#include "domain/domain.h"
#include "store/buffer_manager.h"
#include "store/paged_column.h"

// Minimal columnar table, the §2 system context: columns store 4-byte
// values (raw integers or domain IDs), and ordered access to a column
// goes through a *sort index* — "a list of record identifiers sorted by
// some columns" (§2.2) — with a search structure over the sorted key
// list. Which structure is an IndexSpec: any method in the suite can
// serve a column, and probes go through the batch-first AnyIndex facade.
//
// Two storage modes. The default keeps every column in one flat in-RAM
// vector. A Table constructed with TableOptions is *paged*: columns live
// on fixed-size pages behind a bounded LRU BufferManager (src/store/)
// that spills to disk, so n >> RAM works end to end — the paper's §5
// argument that only the CSS directory needs to be RAM-resident, applied
// to the data under it. In paged mode, column access goes through
// ColumnView cursors/blocks, mutators stream pages instead of
// materializing whole vectors, and sort-index construction routes
// through the external merge sort (core/external_build.h) when the
// column exceeds the buffer budget. Query results are bit-identical
// across modes at any buffer size — the paged differential suite's
// contract.

namespace cssidx::engine {

using Rid = uint32_t;

/// Storage knobs for a paged Table. buffer_pages = 0 means an unbounded
/// frame pool (pages never spill; the store is a chunked in-RAM column).
struct TableOptions {
  size_t page_bytes = 1 << 16;
  size_t buffer_pages = 0;
  /// Spill directory ("" = system temp); a unique subdirectory is
  /// created per table and removed with it.
  std::string spill_dir;
};

/// Read facade over one column, uniform across storage modes: flat
/// columns serve spans in place, paged columns copy through short-lived
/// page pins (one pinned frame at a time, so any buffer budget works).
/// Views are cheap to construct and hold a one-block cache so ascending
/// point reads (At over sorted RIDs) fault once per page, not per value.
class ColumnView {
 public:
  size_t size() const { return flat_ != nullptr ? flat_->size() : paged_->size(); }

  /// Value of row `i`.
  uint32_t At(size_t i) const {
    if (flat_ != nullptr) return (*flat_)[i];
    if (i < cache_base_ || i >= cache_base_ + cache_.size()) Refill(i);
    return cache_[i - cache_base_];
  }

  /// Copies rows [start, start + out.size()) into `out`.
  void Read(size_t start, std::span<uint32_t> out) const;

  /// Rows [start, start + len) as a span: flat columns alias their
  /// storage (zero copy), paged columns stage through `scratch`.
  std::span<const uint32_t> Block(size_t start, size_t len,
                                  std::vector<uint32_t>& scratch) const;

  /// The whole column as one vector (a copy in paged mode).
  std::vector<uint32_t> Materialize() const;

  /// Streams the column in storage-order blocks:
  /// fn(std::span<const uint32_t> block, size_t base_row). Flat columns
  /// make one call covering everything; paged columns one per page.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    if (flat_ != nullptr) {
      if (!flat_->empty()) fn(std::span<const uint32_t>(*flat_), size_t{0});
      return;
    }
    store::ColumnCursor cursor(*paged_);
    for (std::span<const uint32_t> block = cursor.NextBlock(); !block.empty();
         block = cursor.NextBlock()) {
      fn(block, cursor.position() - block.size());
    }
  }

 private:
  friend class Table;
  explicit ColumnView(const std::vector<uint32_t>* flat) : flat_(flat) {}
  explicit ColumnView(const store::PagedColumn* paged) : paged_(paged) {}
  void Refill(size_t i) const;

  const std::vector<uint32_t>* flat_ = nullptr;
  const store::PagedColumn* paged_ = nullptr;
  /// Page-aligned block behind At(); mutable because caching is not an
  /// observable state change (Table access is externally synchronized).
  mutable std::vector<uint32_t> cache_;
  mutable size_t cache_base_ = 0;
};

/// Ordered secondary index on one column: the column's values sorted, the
/// matching RID permutation, and an AnyIndex over the sorted values. This
/// is exactly the paper's indexed representation: the sorted key list
/// supports range/ordered access, the directory accelerates lookups, and
/// position i of the key list pairs with rids[i]. The sorted key/RID
/// lists and the directory stay RAM-resident in BOTH table storage modes
/// (the §5 point is that the directory is small; the lists are the
/// index's working representation) — only their construction differs:
/// paged tables over budget build them by external merge sort.
///
/// Unordered methods (hash) still serve Equal/Find — the hash stores array
/// positions, so the leftmost match plus a rightward scan works as for any
/// ordered method — while Range/LowerBound fall back to binary search on
/// the sorted key list.
class SortIndex {
 public:
  explicit SortIndex(const std::vector<uint32_t>& column_values,
                     const IndexSpec& spec = IndexSpec());

  /// Wraps already-sorted key/RID lists — the external merge-sort build
  /// path (core/external_build.h), whose output is bit-identical to the
  /// stable_sort the other constructor performs. `spilled`/`runs` record
  /// how the lists were produced, for tests and the bench to assert the
  /// external path actually ran. Throws if the lists' sizes disagree or
  /// the spec is off the menu.
  static SortIndex FromSorted(std::vector<uint32_t> sorted_keys,
                              std::vector<Rid> rids,
                              const IndexSpec& spec = IndexSpec(),
                              bool spilled = false, size_t runs = 0);

  // Move-only: two mutating entry points (ApplyAppend) sharing one RID
  // list would silently diverge; the maintained index is single-writer by
  // contract anyway.
  SortIndex(SortIndex&&) = default;
  SortIndex& operator=(SortIndex&&) = default;
  SortIndex(const SortIndex&) = delete;
  SortIndex& operator=(const SortIndex&) = delete;

  /// Incremental maintenance: merges the appended rows — values[i] is the
  /// column value of row first_rid + i — into the sorted key/RID lists
  /// and refreshes the index through MaintainedIndex::ApplyBatch
  /// (rebuilding only the touched shards for "part:K/" specs) instead of
  /// re-sorting the whole column. Results are bit-identical to a
  /// from-scratch rebuild of the extended column. Mutation requires
  /// external synchronization, like any other method on this class; the
  /// lock-free snapshot story lives in core::MaintainedIndex.
  void ApplyAppend(std::span<const uint32_t> values, Rid first_rid);

  /// The delete half of the maintenance chain, fused with an optional
  /// append into ONE batch through MaintainedIndex::ApplySortedBatch.
  /// `deleted[r]` marks old row r as removed; `remap[r]` is a surviving
  /// row's new RID (old RID minus deleted rows before it); `appended` are
  /// the values of rows first_rid + i appended after compaction. Because
  /// the index's batch language removes EVERY occurrence of a deleted
  /// key, a partially-deleted duplicate run is expressed as one delete of
  /// the run's value plus reinserts of the surviving copies — the merged
  /// key/RID lists come out bit-identical to a from-scratch rebuild of
  /// the compacted (and extended) column, and "part:K/" specs rebuild
  /// only the shards whose key range the deleted/appended values touch.
  void ApplyUpdate(const std::vector<bool>& deleted,
                   std::span<const Rid> remap,
                   std::span<const uint32_t> appended, Rid first_rid);

  /// RIDs of rows whose value equals `v`, in RID-list order.
  std::vector<Rid> Equal(uint32_t v) const;

  /// Number of rows whose value equals `v`, without materializing RIDs.
  size_t CountEqual(uint32_t v) const {
    return head_->index().CountEqual(v);
  }
  /// Number of rows with value in [lo, hi), without materializing RIDs.
  size_t CountRange(uint32_t lo, uint32_t hi) const {
    return hi > lo ? LowerBound(hi) - LowerBound(lo) : 0;
  }

  /// RIDs of rows with value in [lo, hi).
  std::vector<Rid> Range(uint32_t lo, uint32_t hi) const;

  /// Range([lo, hi)) for many ranges at once: every range's two bound
  /// probes are staged into ONE batched LowerBound call (2 probes per
  /// range), so bound descents group-probe and prefetch across ranges —
  /// and shard across threads when the staged span is large (per the
  /// spec's "@tN" policy, or per `opts` on the explicit overload).
  /// Result i is exactly Range(bounds[i].first, bounds[i].second).
  std::vector<std::vector<Rid>> RangeBatch(
      std::span<const std::pair<uint32_t, uint32_t>> bounds) const {
    return RangeBatch(bounds,
                      ProbeOptions{.threads = spec().probe_threads()});
  }
  std::vector<std::vector<Rid>> RangeBatch(
      std::span<const std::pair<uint32_t, uint32_t>> bounds,
      const ProbeOptions& opts) const;

  /// Leftmost sorted position of `v`, or kNotFound.
  int64_t Find(uint32_t v) const { return head_->index().Find(v); }
  size_t LowerBound(uint32_t v) const;

  /// Batched probes against the sorted key list — the join inner loop.
  /// out[i] = leftmost sorted position of keys[i], or kNotFound. The
  /// two-argument form follows the spec's probe-thread policy ("@tN");
  /// the overload takes an explicit policy (the engine's probe loops pass
  /// threads = 0 so large spans shard across the hardware automatically).
  void FindBatch(std::span<const uint32_t> keys,
                 std::span<int64_t> out) const {
    head_->index().FindBatch(keys, out);
  }
  void FindBatch(std::span<const uint32_t> keys, std::span<int64_t> out,
                 const ProbeOptions& opts) const {
    head_->index().FindBatch(keys, out, opts);
  }

  /// Batched lower bounds on the sorted key list. Ordered methods go
  /// through the index's batch kernel; hash falls back to binary search on
  /// the sorted keys (still sharded per `opts`), so every spec serves
  /// positional probes.
  void LowerBoundBatch(std::span<const uint32_t> keys,
                       std::span<size_t> out) const {
    LowerBoundBatch(keys, out, ProbeOptions{.threads = spec().probe_threads()});
  }
  void LowerBoundBatch(std::span<const uint32_t> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const;

  /// Batched duplicate-run probes — the join's duplicate expansion and
  /// GroupBy's group resolution. out[i] spans keys[i]'s run in the sorted
  /// key list: rids()[out[i].begin .. out[i].end) are the matching rows in
  /// RID order. Absent keys yield empty spans. Works for every spec (the
  /// hash kernel scans each chain once for leftmost match + count).
  void EqualRangeBatch(std::span<const uint32_t> keys,
                       std::span<PositionRange> out) const {
    head_->index().EqualRangeBatch(keys, out);
  }
  void EqualRangeBatch(std::span<const uint32_t> keys,
                       std::span<PositionRange> out,
                       const ProbeOptions& opts) const {
    head_->index().EqualRangeBatch(keys, out, opts);
  }

  const std::vector<uint32_t>& sorted_keys() const { return head_->keys(); }
  const std::vector<Rid>& rids() const { return rids_; }
  const IndexSpec& spec() const { return maintained_->spec(); }
  /// The maintenance machinery behind this index (snapshots, writer
  /// stats) — e.g. to check that a part:K append refreshed incrementally.
  const MaintainedIndex& maintained() const { return *maintained_; }

  /// Bytes the index's CURRENT contents occupy: size-based key/RID list
  /// bytes plus the directory — the quantity the §5 analytic space model
  /// predicts (fig08's measured-vs-model table compares against it).
  /// Allocator slack is deliberately excluded; see ReservedBytes().
  size_t SpaceBytes() const;
  /// Bytes actually reserved, capacity-based: >= SpaceBytes() by exactly
  /// the allocator slack (e.g. externally-built lists whose final merge
  /// grew by push_back, or incremental-growth headroom).
  size_t ReservedBytes() const;

  /// True when this index's lists were produced by a spilled external
  /// merge sort (FromSorted with spilled = true), and how many sorted
  /// runs it merged — the paged bench and tests assert the out-of-core
  /// build path actually ran.
  bool external_build() const { return external_build_; }
  size_t external_runs() const { return external_runs_; }

 private:
  SortIndex() = default;

  std::vector<Rid> rids_;
  /// Owns the sorted key array and the search structure, versioned. The
  /// head_ cache is the writer's view of the current version: position i
  /// of head_->keys() pairs with rids_[i].
  std::unique_ptr<MaintainedIndex> maintained_;
  std::shared_ptr<const MaintainedIndex::Version> head_;
  bool external_build_ = false;
  size_t external_runs_ = 0;
};

/// Column-store table: named uint32 columns of equal length, flat in RAM
/// by default or paged out-of-core when constructed with TableOptions.
class Table {
 public:
  Table() = default;

  /// Paged mode: columns live on fixed-size pages behind one bounded LRU
  /// BufferManager shared by all of this table's columns.
  explicit Table(const TableOptions& options);

  /// Whether this table's columns are paged (out-of-core capable).
  bool paged() const { return buffer_ != nullptr; }
  /// Paged-mode knobs (defaults for a flat table).
  const TableOptions& options() const { return options_; }
  /// Buffer-pool counters (paged mode only; throws std::logic_error for
  /// flat tables, which have no pool).
  const store::BufferStats& PoolStats() const;

  /// Adds a column; all columns must have the same row count. In paged
  /// mode the values stream onto pages and the vector is released.
  void AddColumn(const std::string& name, std::vector<uint32_t> values);

  /// Adds a string column the §2.1 way: the distinct values go into an
  /// order-preserving StringDomain, and what the table stores is an
  /// ordinary uint32 column of domain IDs — so sort indexes, selections,
  /// joins, and GROUP BY run on the IDs unchanged, and because the
  /// dictionary is sorted, ID order IS value order (range predicates map
  /// through StringDomainOf().LowerBoundId). String columns are a load
  /// path: AppendRows/ApplyUpdate mutate ID columns only (the live
  /// string-update story, with its dictionary growth, is the serving
  /// layer's writer) — and inserted IDs are validated against the
  /// dictionary, so a column can never desync from its domain.
  void AddStringColumn(const std::string& name,
                       std::vector<std::string> values);

  /// Whether `name` is a string column (an ID column with a dictionary).
  bool HasStringColumn(const std::string& name) const;

  /// The dictionary behind a string column (throws if `name` is not one).
  /// Decode query output with StringDomainOf(c).Decode(View(c).At(rid)).
  const domain::StringDomain& StringDomainOf(const std::string& name) const;

  /// Appends a batch of rows (one value per existing column, keyed by
  /// name) and refreshes every sort index in place via ApplyAppend — the
  /// OLAP maintenance cycle, without re-sorting whole columns (and, for
  /// "part:K/" specs, rebuilding only the shards the batch touches).
  /// Throws if the batch's columns do not match the table's, or if a
  /// value inserted into a string column is not a valid dictionary ID.
  /// An empty batch on a zero-column table is a no-op.
  void AppendRows(const std::map<std::string, std::vector<uint32_t>>& rows);

  /// Deletes the given rows (by RID; duplicates and any order allowed).
  /// Surviving rows are compacted in order and renumbered — a survivor's
  /// new RID is its old RID minus the deleted rows before it — and every
  /// sort index refreshes through its MaintainedIndex with ONE batch (the
  /// same maintenance chain as AppendRows, shard-incremental for
  /// "part:K/" specs). The result is bit-identical to a from-scratch
  /// rebuild of the compacted table. Throws std::out_of_range for RIDs
  /// >= NumRows(); like the other mutators, requires external
  /// synchronization.
  void DeleteRows(std::span<const Rid> rids);

  /// DELETE + INSERT as one maintenance step: removes every row whose
  /// `key_column` value appears in `delete_keys`, then appends
  /// `insert_rows` (same shape rules as AppendRows; an empty map means no
  /// inserts). Each sort index applies the whole change as a single
  /// batch — deletes first, then inserts, so an inserted row whose key
  /// was just deleted survives, matching workload::ApplySortedBatch.
  /// Equivalent to DeleteRows(matching rows) then AppendRows(insert_rows)
  /// at half the maintenance cost; this is what the serving layer's
  /// writer applies per coalesced batch.
  void ApplyUpdate(const std::string& key_column,
                   std::vector<uint32_t> delete_keys,
                   const std::map<std::string, std::vector<uint32_t>>&
                       insert_rows = {});

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }
  bool HasColumn(const std::string& name) const;

  /// Flat-mode direct access to a column's backing vector. Paged columns
  /// have no flat vector to reference — use View()/ReadColumn() there
  /// (throws std::logic_error to catch mode-blind callers early).
  const std::vector<uint32_t>& Column(const std::string& name) const;

  /// Mode-uniform read access: spans in place for flat columns, cursor/
  /// block copies for paged ones. The view borrows the column — it stays
  /// valid until the next mutation of this table.
  ColumnView View(const std::string& name) const;

  /// The whole column as one vector, in either mode (a copy when paged).
  std::vector<uint32_t> ReadColumn(const std::string& name) const;

  /// Builds (or rebuilds, after batch updates) the sort index on a column
  /// using any method in the suite. Throws std::invalid_argument for specs
  /// off the menu. Paged tables whose column exceeds the buffer budget
  /// build through the external merge sort (the directory and sorted
  /// lists still come out RAM-resident, and bit-identical to the in-RAM
  /// build).
  const SortIndex& BuildSortIndex(const std::string& column,
                                  const IndexSpec& spec = IndexSpec());
  /// The sort index previously built on `column` (must exist).
  const SortIndex& GetSortIndex(const std::string& column) const;
  bool HasSortIndex(const std::string& column) const;

 private:
  /// One column's storage: exactly one of `flat` / `paged` is active,
  /// per the table's mode.
  struct ColumnStore {
    std::vector<uint32_t> flat;
    std::unique_ptr<store::PagedColumn> paged;
  };

  /// Shared delete/append path: compacts columns per the `deleted` bitmap
  /// (`removed` = popcount), appends `insert_rows`, and refreshes every
  /// sort index with one combined maintenance batch.
  void DeleteAndAppend(
      const std::vector<bool>& deleted, size_t removed,
      const std::map<std::string, std::vector<uint32_t>>& insert_rows);

  /// Rejects values that are not valid dictionary IDs for their string
  /// column — called by every insert path BEFORE any state changes.
  void ValidateDomainIds(
      const std::map<std::string, std::vector<uint32_t>>& rows) const;

  const ColumnStore& StoreOf(const std::string& name) const;

  size_t num_rows_ = 0;
  TableOptions options_;
  /// Paged mode only: the frame pool shared by every column (and the
  /// spill directory external index builds use).
  std::unique_ptr<store::BufferManager> buffer_;
  std::map<std::string, ColumnStore> columns_;
  std::map<std::string, std::unique_ptr<SortIndex>> indexes_;
  /// Dictionaries for string columns; the column itself lives in
  /// columns_ as IDs. unique_ptr: StringDomain is move-only-ish and the
  /// map must not invalidate references handed out by StringDomainOf.
  std::map<std::string, std::unique_ptr<domain::StringDomain>> domains_;
};

}  // namespace cssidx::engine

#endif  // CSSIDX_ENGINE_TABLE_H_
