#ifndef CSSIDX_ENGINE_TABLE_H_
#define CSSIDX_ENGINE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/any_index.h"
#include "core/index.h"
#include "core/index_spec.h"

// Minimal columnar main-memory table, the §2 system context: columns store
// 4-byte values (raw integers or domain IDs), and ordered access to a
// column goes through a *sort index* — "a list of record identifiers
// sorted by some columns" (§2.2) — with a search structure over the sorted
// key list. Which structure is an IndexSpec: any method in the suite can
// serve a column, and probes go through the batch-first AnyIndex facade.

namespace cssidx::engine {

using Rid = uint32_t;

/// Ordered secondary index on one column: the column's values sorted, the
/// matching RID permutation, and an AnyIndex over the sorted values. This
/// is exactly the paper's indexed representation: the sorted key list
/// supports range/ordered access, the directory accelerates lookups, and
/// position i of the key list pairs with rids[i].
///
/// Unordered methods (hash) still serve Equal/Find — the hash stores array
/// positions, so the leftmost match plus a rightward scan works as for any
/// ordered method — while Range/LowerBound fall back to binary search on
/// the sorted key list.
class SortIndex {
 public:
  explicit SortIndex(const std::vector<uint32_t>& column_values,
                     const IndexSpec& spec = IndexSpec());

  // Move-only: the wrapped index impl holds a raw pointer into
  // sorted_keys_'s heap buffer. A move keeps that buffer alive; a copy
  // would share the impl while duplicating the vectors, leaving the copy
  // probing the source's (possibly freed) buffer.
  SortIndex(SortIndex&&) = default;
  SortIndex& operator=(SortIndex&&) = default;
  SortIndex(const SortIndex&) = delete;
  SortIndex& operator=(const SortIndex&) = delete;

  /// RIDs of rows whose value equals `v`, in RID-list order.
  std::vector<Rid> Equal(uint32_t v) const;

  /// RIDs of rows with value in [lo, hi).
  std::vector<Rid> Range(uint32_t lo, uint32_t hi) const;

  /// Range([lo, hi)) for many ranges at once: every range's two bound
  /// probes are staged into ONE batched LowerBound call (2 probes per
  /// range), so bound descents group-probe and prefetch across ranges —
  /// and shard across threads when the staged span is large (per the
  /// spec's "@tN" policy, or per `opts` on the explicit overload).
  /// Result i is exactly Range(bounds[i].first, bounds[i].second).
  std::vector<std::vector<Rid>> RangeBatch(
      std::span<const std::pair<uint32_t, uint32_t>> bounds) const {
    return RangeBatch(bounds,
                      ProbeOptions{.threads = spec().probe_threads()});
  }
  std::vector<std::vector<Rid>> RangeBatch(
      std::span<const std::pair<uint32_t, uint32_t>> bounds,
      const ProbeOptions& opts) const;

  /// Leftmost sorted position of `v`, or kNotFound.
  int64_t Find(uint32_t v) const { return index_.Find(v); }
  size_t LowerBound(uint32_t v) const;

  /// Batched probes against the sorted key list — the join inner loop.
  /// out[i] = leftmost sorted position of keys[i], or kNotFound. The
  /// two-argument form follows the spec's probe-thread policy ("@tN");
  /// the overload takes an explicit policy (the engine's probe loops pass
  /// threads = 0 so large spans shard across the hardware automatically).
  void FindBatch(std::span<const uint32_t> keys,
                 std::span<int64_t> out) const {
    index_.FindBatch(keys, out);
  }
  void FindBatch(std::span<const uint32_t> keys, std::span<int64_t> out,
                 const ProbeOptions& opts) const {
    index_.FindBatch(keys, out, opts);
  }

  /// Batched lower bounds on the sorted key list. Ordered methods go
  /// through the index's batch kernel; hash falls back to binary search on
  /// the sorted keys (still sharded per `opts`), so every spec serves
  /// positional probes.
  void LowerBoundBatch(std::span<const uint32_t> keys,
                       std::span<size_t> out) const {
    LowerBoundBatch(keys, out, ProbeOptions{.threads = spec().probe_threads()});
  }
  void LowerBoundBatch(std::span<const uint32_t> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const;

  /// Batched duplicate-run probes — the join's duplicate expansion and
  /// GroupBy's group resolution. out[i] spans keys[i]'s run in the sorted
  /// key list: rids()[out[i].begin .. out[i].end) are the matching rows in
  /// RID order. Absent keys yield empty spans. Works for every spec (the
  /// hash kernel scans each chain once for leftmost match + count).
  void EqualRangeBatch(std::span<const uint32_t> keys,
                       std::span<PositionRange> out) const {
    index_.EqualRangeBatch(keys, out);
  }
  void EqualRangeBatch(std::span<const uint32_t> keys,
                       std::span<PositionRange> out,
                       const ProbeOptions& opts) const {
    index_.EqualRangeBatch(keys, out, opts);
  }

  const std::vector<uint32_t>& sorted_keys() const { return sorted_keys_; }
  const std::vector<Rid>& rids() const { return rids_; }
  const IndexSpec& spec() const { return index_.spec(); }
  size_t SpaceBytes() const;

 private:
  std::vector<uint32_t> sorted_keys_;
  std::vector<Rid> rids_;
  AnyIndex index_;
};

/// Column-store table: named uint32 columns of equal length.
class Table {
 public:
  Table() = default;

  /// Adds a column; all columns must have the same row count.
  void AddColumn(const std::string& name, std::vector<uint32_t> values);

  /// Appends a batch of rows (one value per existing column, keyed by
  /// name) and rebuilds every sort index with its original spec — the OLAP
  /// maintenance cycle. Throws if the batch's columns do not match the
  /// table's.
  void AppendRows(const std::map<std::string, std::vector<uint32_t>>& rows);

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }
  bool HasColumn(const std::string& name) const;
  const std::vector<uint32_t>& Column(const std::string& name) const;

  /// Builds (or rebuilds, after batch updates) the sort index on a column
  /// using any method in the suite. Throws std::invalid_argument for specs
  /// off the menu.
  const SortIndex& BuildSortIndex(const std::string& column,
                                  const IndexSpec& spec = IndexSpec());
  /// The sort index previously built on `column` (must exist).
  const SortIndex& GetSortIndex(const std::string& column) const;
  bool HasSortIndex(const std::string& column) const;

 private:
  size_t num_rows_ = 0;
  std::map<std::string, std::vector<uint32_t>> columns_;
  std::map<std::string, std::unique_ptr<SortIndex>> indexes_;
};

}  // namespace cssidx::engine

#endif  // CSSIDX_ENGINE_TABLE_H_
