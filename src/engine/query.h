#ifndef CSSIDX_ENGINE_QUERY_H_
#define CSSIDX_ENGINE_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/table.h"

// Decision-support operators over Table (§2.2): selection through a sort
// index, indexed nested-loop join ("the only join method used in [WK90]",
// pipelinable and storage-light), and simple aggregation. Everything runs
// against immutable tables; maintenance is rebuild-on-batch. Probes go
// through the sort index's batch API — point probes via FindBatch,
// duplicate runs via EqualRangeBatch, range bounds via LowerBoundBatch —
// so the inner structure can overlap the cache misses of neighboring
// probes, and large probe spans shard across threads automatically.

namespace cssidx::engine {

/// RIDs of rows in `table` where `column` == value. Uses the sort index if
/// present, else scans.
std::vector<Rid> SelectEqual(const Table& table, const std::string& column,
                             uint32_t value);

/// RIDs of rows where lo <= column < hi. Indexed if possible, else scan.
std::vector<Rid> SelectRange(const Table& table, const std::string& column,
                             uint32_t lo, uint32_t hi);

/// Number of rows where `column` == value, without materializing a RID
/// list — with a sort index this is one CountEqual probe (the serving
/// layer's COUNT verb); else a scan.
size_t CountEqual(const Table& table, const std::string& column,
                  uint32_t value);

/// Number of rows where lo <= column < hi, without materializing RIDs:
/// two lower-bound probes on the sort index, else a scan.
size_t CountRange(const Table& table, const std::string& column, uint32_t lo,
                  uint32_t hi);

// String-predicate forms for string columns (AddStringColumn): the
// predicate endpoints are encoded through the column's order-preserving
// dictionary (§2.1) — equality via Encode, range endpoints via
// LowerBoundId — and the query then runs on IDs through the overloads
// above, index or scan alike. Values the dictionary has never seen
// select nothing (equality) or clamp to the neighboring ID (range), and
// neither bound has to be a value in the column. Throws std::out_of_range
// if `column` is not a string column.

/// RIDs of rows where a string column equals `value`.
std::vector<Rid> SelectEqual(const Table& table, const std::string& column,
                             const std::string& value);

/// RIDs of rows where lo <= column < hi, by string comparison.
std::vector<Rid> SelectRange(const Table& table, const std::string& column,
                             const std::string& lo, const std::string& hi);

/// Number of rows where a string column equals `value`.
size_t CountEqual(const Table& table, const std::string& column,
                  const std::string& value);

/// Number of rows where lo <= column < hi, by string comparison.
size_t CountRange(const Table& table, const std::string& column,
                  const std::string& lo, const std::string& hi);

/// Many SelectRanges at once: result i is exactly
/// SelectRange(table, column, bounds[i].first, bounds[i].second), but with
/// a sort index every range's two bound probes go through ONE batched
/// LowerBound call, so bound descents amortize each other's cache misses
/// (and shard across threads above the parallel-probe threshold).
std::vector<std::vector<Rid>> SelectRangeBatch(
    const Table& table, const std::string& column,
    std::span<const std::pair<uint32_t, uint32_t>> bounds);

struct JoinedPair {
  Rid outer;
  Rid inner;
};

/// Indexed nested-loop equi-join: probes the inner table's sort index on
/// `inner_column` with batches of outer keys; emits every matching pair.
/// The inner table must have a sort index built on `inner_column`.
/// String columns join on VALUES, not raw IDs: two tables have two
/// dictionaries, so when both join columns are string columns the outer
/// IDs are translated once (outer ID -> value -> inner ID; values absent
/// from the inner dictionary match nothing) and the probe loop runs on
/// translated IDs. Joining a string column against an integer column is
/// a type error (std::invalid_argument).
std::vector<JoinedPair> IndexedJoin(const Table& outer,
                                    const std::string& outer_column,
                                    const Table& inner,
                                    const std::string& inner_column);

/// COUNT/SUM/MIN/MAX accumulator. Defaults are fold identities — min
/// starts at UINT32_MAX, not 0, so MIN over a non-empty row set is right
/// without callers having to remember to re-initialize.
struct Aggregates {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint32_t min = UINT32_MAX;
  uint32_t max = 0;

  void Accumulate(uint32_t v) {
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }
};

/// COUNT/SUM/MIN/MAX of `column` over the given rows. An empty row set
/// reports min = max = 0 (SQL would say NULL; 0 is this engine's
/// convention).
Aggregates Aggregate(const Table& table, const std::string& column,
                     const std::vector<Rid>& rids);

/// GROUP BY `group_column` (dense domain IDs expected) computing COUNT and
/// SUM(value_column) per group. Returns a vector indexed by group ID;
/// empty groups report min = max = 0. With a sort index on `group_column`
/// every group key resolves through one EqualRangeBatch call (its
/// duplicate-run span in the RID list); the spans then double as a
/// selectivity measurement — when the groups cover most of the table a
/// sequential scan beats the RID-list gather, so accumulation falls back
/// to the scan. Both paths accumulate each group's rows in RID order (the
/// sort is stable), so results are identical regardless of path.
std::vector<Aggregates> GroupBy(const Table& table,
                                const std::string& group_column,
                                const std::string& value_column,
                                uint32_t num_groups);

}  // namespace cssidx::engine

#endif  // CSSIDX_ENGINE_QUERY_H_
