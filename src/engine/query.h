#ifndef CSSIDX_ENGINE_QUERY_H_
#define CSSIDX_ENGINE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/table.h"

// Decision-support operators over Table (§2.2): selection through a sort
// index, indexed nested-loop join ("the only join method used in [WK90]",
// pipelinable and storage-light), and simple aggregation. Everything runs
// against immutable tables; maintenance is rebuild-on-batch.

namespace cssidx::engine {

/// RIDs of rows in `table` where `column` == value. Uses the sort index if
/// present, else scans.
std::vector<Rid> SelectEqual(const Table& table, const std::string& column,
                             uint32_t value);

/// RIDs of rows where lo <= column < hi. Indexed if possible, else scan.
std::vector<Rid> SelectRange(const Table& table, const std::string& column,
                             uint32_t lo, uint32_t hi);

struct JoinedPair {
  Rid outer;
  Rid inner;
};

/// Indexed nested-loop equi-join: for each outer row, probe the inner
/// table's sort index on `inner_column`; emits every matching pair.
/// The inner table must have a sort index built on `inner_column`.
std::vector<JoinedPair> IndexedJoin(const Table& outer,
                                    const std::string& outer_column,
                                    const Table& inner,
                                    const std::string& inner_column);

struct Aggregates {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint32_t min = 0;
  uint32_t max = 0;
};

/// COUNT/SUM/MIN/MAX of `column` over the given rows.
Aggregates Aggregate(const Table& table, const std::string& column,
                     const std::vector<Rid>& rids);

/// GROUP BY `group_column` (dense domain IDs expected) computing COUNT and
/// SUM(value_column) per group. Returns a vector indexed by group ID.
std::vector<Aggregates> GroupBy(const Table& table,
                                const std::string& group_column,
                                const std::string& value_column,
                                uint32_t num_groups);

}  // namespace cssidx::engine

#endif  // CSSIDX_ENGINE_QUERY_H_
