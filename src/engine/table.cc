#include "engine/table.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace cssidx::engine {

SortIndex::SortIndex(const std::vector<uint32_t>& column_values,
                     const IndexSpec& spec) {
  if (!spec.OnMenu()) {
    // Reject before the O(n log n) sort, not after.
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  const size_t n = column_values.size();
  rids_.resize(n);
  std::iota(rids_.begin(), rids_.end(), 0);
  // Stable sort keeps equal-valued rows in RID order, which is what makes
  // Equal()'s output deterministic and the leftmost-match semantics of the
  // index line up with the smallest RID.
  std::stable_sort(rids_.begin(), rids_.end(),
                   [&](Rid a, Rid b) { return column_values[a] < column_values[b]; });
  std::vector<uint32_t> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = column_values[rids_[i]];
  maintained_ = std::make_unique<MaintainedIndex>(spec, std::move(sorted));
  head_ = maintained_->Snapshot();
  if (!head_->index()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
}

void SortIndex::ApplyAppend(std::span<const uint32_t> values, Rid first_rid) {
  const size_t m = values.size();
  if (m == 0) return;
  // Sort the appended rows stably by value, so equal appended values keep
  // RID order — what a full stable_sort rebuild of the extended column
  // would produce.
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return values[a] < values[b];
  });
  // Merge the RID permutation to match the key merge ApplySortedBatch
  // performs: existing rows win ties (their RIDs are smaller by
  // construction). The sorted value list falls out of the same pass.
  const std::vector<uint32_t>& old_keys = head_->keys();
  std::vector<Rid> merged(old_keys.size() + m);
  std::vector<uint32_t> sorted_values(m);
  for (size_t j = 0; j < m; ++j) sorted_values[j] = values[order[j]];
  size_t i = 0, j = 0, at = 0;
  while (i < old_keys.size() && j < m) {
    merged[at++] = old_keys[i] <= sorted_values[j]
                       ? rids_[i++]
                       : first_rid + order[j++];
  }
  while (i < old_keys.size()) merged[at++] = rids_[i++];
  while (j < m) merged[at++] = first_rid + order[j++];

  maintained_->ApplySortedBatch(std::move(sorted_values), {});
  head_ = maintained_->Snapshot();
  rids_ = std::move(merged);
}

size_t SortIndex::LowerBound(uint32_t v) const {
  const AnyIndex& index = head_->index();
  if (index.SupportsOrderedAccess()) return index.LowerBound(v);
  // Hash can't serve positional queries; the sorted key list still can.
  const std::vector<uint32_t>& keys = head_->keys();
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), v) - keys.begin());
}

void SortIndex::LowerBoundBatch(std::span<const uint32_t> keys,
                                std::span<size_t> out,
                                const ProbeOptions& opts) const {
  const AnyIndex& index = head_->index();
  if (index.SupportsOrderedAccess()) {
    index.LowerBoundBatch(keys, out, opts);
    return;
  }
  // Hash fallback: the scalar path's binary search, still sharded.
  ParallelProbe(opts, keys.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = LowerBound(keys[i]);
  });
}

std::vector<Rid> SortIndex::Equal(uint32_t v) const {
  std::vector<Rid> out;
  int64_t found = head_->index().Find(v);
  if (found == kNotFound) return out;
  const std::vector<uint32_t>& keys = head_->keys();
  auto pos = static_cast<size_t>(found);
  while (pos < keys.size() && keys[pos] == v) {
    out.push_back(rids_[pos]);
    ++pos;
  }
  return out;
}

std::vector<Rid> SortIndex::Range(uint32_t lo, uint32_t hi) const {
  std::vector<Rid> out;
  if (hi <= lo) return out;
  size_t begin = LowerBound(lo);
  size_t end = LowerBound(hi);
  out.assign(rids_.begin() + static_cast<ptrdiff_t>(begin),
             rids_.begin() + static_cast<ptrdiff_t>(end));
  return out;
}

std::vector<std::vector<Rid>> SortIndex::RangeBatch(
    std::span<const std::pair<uint32_t, uint32_t>> bounds,
    const ProbeOptions& opts) const {
  // Stage both bound probes of every range into one flat key span: one
  // LowerBoundBatch serves 2 * ranges descents through the group-probing
  // kernel. Inverted/empty ranges still probe (keeping the staging layout
  // trivially position = 2 * i) and are clamped to empty afterwards.
  std::vector<uint32_t> probes(2 * bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    probes[2 * i] = bounds[i].first;
    probes[2 * i + 1] = bounds[i].second;
  }
  std::vector<size_t> pos(probes.size());
  LowerBoundBatch(probes, pos, opts);
  std::vector<std::vector<Rid>> out(bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (bounds[i].second <= bounds[i].first) continue;
    out[i].assign(rids_.begin() + static_cast<ptrdiff_t>(pos[2 * i]),
                  rids_.begin() + static_cast<ptrdiff_t>(pos[2 * i + 1]));
  }
  return out;
}

size_t SortIndex::SpaceBytes() const {
  return head_->keys().capacity() * sizeof(uint32_t) +
         rids_.capacity() * sizeof(Rid) + head_->index().SpaceBytes();
}

void Table::AddColumn(const std::string& name, std::vector<uint32_t> values) {
  if (!columns_.empty() && values.size() != num_rows_) {
    throw std::invalid_argument("column " + name + " has " +
                                std::to_string(values.size()) +
                                " rows, table has " +
                                std::to_string(num_rows_));
  }
  num_rows_ = values.size();
  columns_[name] = std::move(values);
}

void Table::AppendRows(
    const std::map<std::string, std::vector<uint32_t>>& rows) {
  if (rows.size() != columns_.size()) {
    throw std::invalid_argument("batch column count mismatch");
  }
  size_t batch_rows = rows.begin()->second.size();
  for (const auto& [name, values] : rows) {
    if (columns_.count(name) == 0) {
      throw std::invalid_argument("batch has unknown column " + name);
    }
    if (values.size() != batch_rows) {
      throw std::invalid_argument("ragged batch column " + name);
    }
  }
  const Rid first_rid = static_cast<Rid>(num_rows_);
  for (const auto& [name, values] : rows) {
    auto& col = columns_[name];
    col.insert(col.end(), values.begin(), values.end());
  }
  num_rows_ += batch_rows;
  // Maintenance-on-batch (§2.2), incrementally: each sort index merges
  // the appended rows into its sorted key/RID lists and refreshes its
  // structure — keeping the spec it was built with, and rebuilding only
  // the touched shards for partitioned specs — rather than re-sorting
  // the whole column from scratch.
  for (auto& [name, index] : indexes_) {
    index->ApplyAppend(rows.at(name), first_rid);
  }
}

bool Table::HasColumn(const std::string& name) const {
  return columns_.count(name) != 0;
}

const std::vector<uint32_t>& Table::Column(const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    throw std::out_of_range("no column named " + name);
  }
  return it->second;
}

const SortIndex& Table::BuildSortIndex(const std::string& column,
                                       const IndexSpec& spec) {
  auto built = std::make_unique<SortIndex>(Column(column), spec);
  auto& slot = indexes_[column];
  slot = std::move(built);
  return *slot;
}

const SortIndex& Table::GetSortIndex(const std::string& column) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    throw std::out_of_range("no sort index on column " + column);
  }
  return *it->second;
}

bool Table::HasSortIndex(const std::string& column) const {
  return indexes_.count(column) != 0;
}

}  // namespace cssidx::engine
