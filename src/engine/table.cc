#include "engine/table.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace cssidx::engine {

SortIndex::SortIndex(const std::vector<uint32_t>& column_values,
                     const IndexSpec& spec) {
  if (!spec.OnMenu()) {
    // Reject before the O(n log n) sort, not after.
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  const size_t n = column_values.size();
  rids_.resize(n);
  std::iota(rids_.begin(), rids_.end(), 0);
  // Stable sort keeps equal-valued rows in RID order, which is what makes
  // Equal()'s output deterministic and the leftmost-match semantics of the
  // index line up with the smallest RID.
  std::stable_sort(rids_.begin(), rids_.end(),
                   [&](Rid a, Rid b) { return column_values[a] < column_values[b]; });
  std::vector<uint32_t> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = column_values[rids_[i]];
  maintained_ = std::make_unique<MaintainedIndex>(spec, std::move(sorted));
  head_ = maintained_->Snapshot();
  if (!head_->index()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
}

void SortIndex::ApplyAppend(std::span<const uint32_t> values, Rid first_rid) {
  const size_t m = values.size();
  if (m == 0) return;
  // Sort the appended rows stably by value, so equal appended values keep
  // RID order — what a full stable_sort rebuild of the extended column
  // would produce.
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return values[a] < values[b];
  });
  // Merge the RID permutation to match the key merge ApplySortedBatch
  // performs: existing rows win ties (their RIDs are smaller by
  // construction). The sorted value list falls out of the same pass.
  const std::vector<uint32_t>& old_keys = head_->keys();
  std::vector<Rid> merged(old_keys.size() + m);
  std::vector<uint32_t> sorted_values(m);
  for (size_t j = 0; j < m; ++j) sorted_values[j] = values[order[j]];
  size_t i = 0, j = 0, at = 0;
  while (i < old_keys.size() && j < m) {
    merged[at++] = old_keys[i] <= sorted_values[j]
                       ? rids_[i++]
                       : first_rid + order[j++];
  }
  while (i < old_keys.size()) merged[at++] = rids_[i++];
  while (j < m) merged[at++] = first_rid + order[j++];

  maintained_->ApplySortedBatch(std::move(sorted_values), {});
  head_ = maintained_->Snapshot();
  rids_ = std::move(merged);
}

void SortIndex::ApplyUpdate(const std::vector<bool>& deleted,
                            std::span<const Rid> remap,
                            std::span<const uint32_t> appended,
                            Rid first_rid) {
  const std::vector<uint32_t>& old_keys = head_->keys();
  assert(deleted.size() == old_keys.size());
  assert(remap.size() == old_keys.size());

  // Stage the appended rows exactly as ApplyAppend does: stably
  // value-sorted, so equal appended values keep RID order.
  const size_t m = appended.size();
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return appended[a] < appended[b];
  });

  // Walk the old sorted list one duplicate run at a time. An untouched
  // run survives in place (RIDs remapped); a run with any deleted row
  // becomes one delete of the run's value — the batch language removes
  // EVERY occurrence — plus reinserts of the surviving copies. Runs are
  // distinct ascending values, so the delete list comes out sorted, and
  // a value never lands on both the survivor and the reinsert side.
  std::vector<uint32_t> survivor_keys, reinsert_keys, delete_keys;
  std::vector<Rid> survivor_rids, reinsert_rids;
  survivor_keys.reserve(old_keys.size());
  survivor_rids.reserve(old_keys.size());
  size_t i = 0;
  while (i < old_keys.size()) {
    const uint32_t v = old_keys[i];
    size_t end = i + 1;
    while (end < old_keys.size() && old_keys[end] == v) ++end;
    bool touched = false;
    for (size_t p = i; p < end && !touched; ++p) touched = deleted[rids_[p]];
    if (!touched) {
      for (size_t p = i; p < end; ++p) {
        survivor_keys.push_back(v);
        survivor_rids.push_back(remap[rids_[p]]);
      }
    } else {
      delete_keys.push_back(v);
      for (size_t p = i; p < end; ++p) {
        if (deleted[rids_[p]]) continue;
        reinsert_keys.push_back(v);
        reinsert_rids.push_back(remap[rids_[p]]);
      }
    }
    i = end;
  }

  // Merge reinserted survivors with the sorted appends into one insert
  // list. Both sides are value-sorted; on ties the reinserts go first —
  // their new RIDs are < first_rid — which is the order a stable sort of
  // the rebuilt column would give.
  std::vector<uint32_t> insert_keys;
  std::vector<Rid> insert_rids;
  insert_keys.reserve(reinsert_keys.size() + m);
  insert_rids.reserve(reinsert_keys.size() + m);
  size_t a = 0, b = 0;
  while (a < reinsert_keys.size() && b < m) {
    if (reinsert_keys[a] <= appended[order[b]]) {
      insert_keys.push_back(reinsert_keys[a]);
      insert_rids.push_back(reinsert_rids[a]);
      ++a;
    } else {
      insert_keys.push_back(appended[order[b]]);
      insert_rids.push_back(first_rid + order[b]);
      ++b;
    }
  }
  for (; a < reinsert_keys.size(); ++a) {
    insert_keys.push_back(reinsert_keys[a]);
    insert_rids.push_back(reinsert_rids[a]);
  }
  for (; b < m; ++b) {
    insert_keys.push_back(appended[order[b]]);
    insert_rids.push_back(first_rid + order[b]);
  }

  // Final RID merge mirrors the key merge ApplySortedBatch performs:
  // survivors win ties (an equal-valued survivor always carries a
  // smaller new RID than any equal-valued insert — reinserts can't
  // collide with survivors by run maximality, and appends start at
  // first_rid).
  std::vector<Rid> merged;
  merged.reserve(survivor_rids.size() + insert_rids.size());
  size_t s = 0, t = 0;
  while (s < survivor_keys.size() && t < insert_keys.size()) {
    merged.push_back(survivor_keys[s] <= insert_keys[t]
                         ? survivor_rids[s++]
                         : insert_rids[t++]);
  }
  while (s < survivor_keys.size()) merged.push_back(survivor_rids[s++]);
  while (t < insert_keys.size()) merged.push_back(insert_rids[t++]);

  maintained_->ApplySortedBatch(std::move(insert_keys),
                                std::move(delete_keys));
  head_ = maintained_->Snapshot();
  rids_ = std::move(merged);
}

size_t SortIndex::LowerBound(uint32_t v) const {
  const AnyIndex& index = head_->index();
  if (index.SupportsOrderedAccess()) return index.LowerBound(v);
  // Hash can't serve positional queries; the sorted key list still can.
  const std::vector<uint32_t>& keys = head_->keys();
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), v) - keys.begin());
}

void SortIndex::LowerBoundBatch(std::span<const uint32_t> keys,
                                std::span<size_t> out,
                                const ProbeOptions& opts) const {
  const AnyIndex& index = head_->index();
  if (index.SupportsOrderedAccess()) {
    index.LowerBoundBatch(keys, out, opts);
    return;
  }
  // Hash fallback: the scalar path's binary search, still sharded.
  ParallelProbe(opts, keys.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = LowerBound(keys[i]);
  });
}

std::vector<Rid> SortIndex::Equal(uint32_t v) const {
  std::vector<Rid> out;
  int64_t found = head_->index().Find(v);
  if (found == kNotFound) return out;
  const std::vector<uint32_t>& keys = head_->keys();
  auto pos = static_cast<size_t>(found);
  while (pos < keys.size() && keys[pos] == v) {
    out.push_back(rids_[pos]);
    ++pos;
  }
  return out;
}

std::vector<Rid> SortIndex::Range(uint32_t lo, uint32_t hi) const {
  std::vector<Rid> out;
  if (hi <= lo) return out;
  size_t begin = LowerBound(lo);
  size_t end = LowerBound(hi);
  out.assign(rids_.begin() + static_cast<ptrdiff_t>(begin),
             rids_.begin() + static_cast<ptrdiff_t>(end));
  return out;
}

std::vector<std::vector<Rid>> SortIndex::RangeBatch(
    std::span<const std::pair<uint32_t, uint32_t>> bounds,
    const ProbeOptions& opts) const {
  // Stage both bound probes of every range into one flat key span: one
  // LowerBoundBatch serves 2 * ranges descents through the group-probing
  // kernel. Inverted/empty ranges still probe (keeping the staging layout
  // trivially position = 2 * i) and are clamped to empty afterwards.
  std::vector<uint32_t> probes(2 * bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    probes[2 * i] = bounds[i].first;
    probes[2 * i + 1] = bounds[i].second;
  }
  std::vector<size_t> pos(probes.size());
  LowerBoundBatch(probes, pos, opts);
  std::vector<std::vector<Rid>> out(bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (bounds[i].second <= bounds[i].first) continue;
    out[i].assign(rids_.begin() + static_cast<ptrdiff_t>(pos[2 * i]),
                  rids_.begin() + static_cast<ptrdiff_t>(pos[2 * i + 1]));
  }
  return out;
}

size_t SortIndex::SpaceBytes() const {
  return head_->keys().capacity() * sizeof(uint32_t) +
         rids_.capacity() * sizeof(Rid) + head_->index().SpaceBytes();
}

void Table::AddColumn(const std::string& name, std::vector<uint32_t> values) {
  if (!columns_.empty() && values.size() != num_rows_) {
    throw std::invalid_argument("column " + name + " has " +
                                std::to_string(values.size()) +
                                " rows, table has " +
                                std::to_string(num_rows_));
  }
  num_rows_ = values.size();
  columns_[name] = std::move(values);
}

void Table::AddStringColumn(const std::string& name,
                            std::vector<std::string> values) {
  // One domain search per cell — §2.1's load path, and the workload the
  // search structures exist for. Every value is in the dictionary by
  // construction, so Encode cannot fail here.
  auto dom = std::make_unique<domain::StringDomain>(
      domain::StringDomain::FromValues(values));
  std::vector<uint32_t> ids;
  ids.reserve(values.size());
  for (const std::string& v : values) ids.push_back(*dom->Encode(v));
  AddColumn(name, std::move(ids));  // validates the row count first
  domains_[name] = std::move(dom);
}

bool Table::HasStringColumn(const std::string& name) const {
  return domains_.count(name) != 0;
}

const domain::StringDomain& Table::StringDomainOf(
    const std::string& name) const {
  auto it = domains_.find(name);
  if (it == domains_.end()) {
    throw std::out_of_range("no string column named " + name);
  }
  return *it->second;
}

void Table::AppendRows(
    const std::map<std::string, std::vector<uint32_t>>& rows) {
  if (rows.size() != columns_.size()) {
    throw std::invalid_argument("batch column count mismatch");
  }
  size_t batch_rows = rows.begin()->second.size();
  for (const auto& [name, values] : rows) {
    if (columns_.count(name) == 0) {
      throw std::invalid_argument("batch has unknown column " + name);
    }
    if (values.size() != batch_rows) {
      throw std::invalid_argument("ragged batch column " + name);
    }
  }
  const Rid first_rid = static_cast<Rid>(num_rows_);
  for (const auto& [name, values] : rows) {
    auto& col = columns_[name];
    col.insert(col.end(), values.begin(), values.end());
  }
  num_rows_ += batch_rows;
  // Maintenance-on-batch (§2.2), incrementally: each sort index merges
  // the appended rows into its sorted key/RID lists and refreshes its
  // structure — keeping the spec it was built with, and rebuilding only
  // the touched shards for partitioned specs — rather than re-sorting
  // the whole column from scratch.
  for (auto& [name, index] : indexes_) {
    index->ApplyAppend(rows.at(name), first_rid);
  }
}

void Table::DeleteRows(std::span<const Rid> rids) {
  std::vector<bool> deleted(num_rows_, false);
  size_t removed = 0;
  for (Rid r : rids) {
    if (r >= num_rows_) {
      throw std::out_of_range("DeleteRows: rid " + std::to_string(r) +
                              " >= row count " + std::to_string(num_rows_));
    }
    if (!deleted[r]) {
      deleted[r] = true;
      ++removed;
    }
  }
  if (removed == 0) return;
  DeleteAndAppend(deleted, removed, {});
}

void Table::ApplyUpdate(
    const std::string& key_column, std::vector<uint32_t> delete_keys,
    const std::map<std::string, std::vector<uint32_t>>& insert_rows) {
  const std::vector<uint32_t>& keys = Column(key_column);
  std::sort(delete_keys.begin(), delete_keys.end());
  std::vector<bool> deleted(num_rows_, false);
  size_t removed = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (std::binary_search(delete_keys.begin(), delete_keys.end(), keys[r])) {
      deleted[r] = true;
      ++removed;
    }
  }
  if (removed == 0 && insert_rows.empty()) return;
  DeleteAndAppend(deleted, removed, insert_rows);
}

void Table::DeleteAndAppend(
    const std::vector<bool>& deleted, size_t removed,
    const std::map<std::string, std::vector<uint32_t>>& insert_rows) {
  // Validate the insert batch's shape (AppendRows' rules) before touching
  // any state; an empty map means deletes only.
  size_t batch_rows = 0;
  if (!insert_rows.empty()) {
    if (insert_rows.size() != columns_.size()) {
      throw std::invalid_argument("batch column count mismatch");
    }
    batch_rows = insert_rows.begin()->second.size();
    for (const auto& [name, values] : insert_rows) {
      if (columns_.count(name) == 0) {
        throw std::invalid_argument("batch has unknown column " + name);
      }
      if (values.size() != batch_rows) {
        throw std::invalid_argument("ragged batch column " + name);
      }
    }
  }
  // Survivors compact in order: new RID = old RID minus deleted rows
  // before it. The remap is what lets each sort index translate its old
  // RID list without seeing the columns.
  std::vector<Rid> remap(num_rows_);
  Rid next = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    remap[r] = next;
    if (!deleted[r]) ++next;
  }
  const Rid first_rid = static_cast<Rid>(num_rows_ - removed);
  for (auto& [name, col] : columns_) {
    if (removed != 0) {
      size_t w = 0;
      for (size_t r = 0; r < col.size(); ++r) {
        if (!deleted[r]) col[w++] = col[r];
      }
      col.resize(w);
    }
    if (!insert_rows.empty()) {
      const auto& values = insert_rows.at(name);
      col.insert(col.end(), values.begin(), values.end());
    }
  }
  num_rows_ = num_rows_ - removed + batch_rows;
  // One maintenance batch per index — deletes and inserts together, so a
  // part:K spec pays one shard-incremental refresh for the whole change.
  static const std::vector<uint32_t> kNoAppend;
  for (auto& [name, index] : indexes_) {
    const std::vector<uint32_t>& appended =
        insert_rows.empty() ? kNoAppend : insert_rows.at(name);
    if (removed == 0) {
      index->ApplyAppend(appended, first_rid);
    } else {
      index->ApplyUpdate(deleted, remap, appended, first_rid);
    }
  }
}

bool Table::HasColumn(const std::string& name) const {
  return columns_.count(name) != 0;
}

const std::vector<uint32_t>& Table::Column(const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    throw std::out_of_range("no column named " + name);
  }
  return it->second;
}

const SortIndex& Table::BuildSortIndex(const std::string& column,
                                       const IndexSpec& spec) {
  auto built = std::make_unique<SortIndex>(Column(column), spec);
  auto& slot = indexes_[column];
  slot = std::move(built);
  return *slot;
}

const SortIndex& Table::GetSortIndex(const std::string& column) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    throw std::out_of_range("no sort index on column " + column);
  }
  return *it->second;
}

bool Table::HasSortIndex(const std::string& column) const {
  return indexes_.count(column) != 0;
}

}  // namespace cssidx::engine
