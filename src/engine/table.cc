#include "engine/table.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "core/external_build.h"

namespace cssidx::engine {

void ColumnView::Refill(size_t i) const {
  // Page-aligned blocks: ascending At() sequences (gathers over sorted
  // RIDs) fault once per page instead of once per value.
  const size_t vpp = paged_->values_per_page();
  const size_t base = i - i % vpp;
  const size_t len = std::min(vpp, paged_->size() - base);
  cache_.resize(len);
  paged_->Read(base, cache_);
  cache_base_ = base;
}

void ColumnView::Read(size_t start, std::span<uint32_t> out) const {
  if (flat_ != nullptr) {
    std::copy_n(flat_->data() + start, out.size(), out.data());
    return;
  }
  paged_->Read(start, out);
}

std::span<const uint32_t> ColumnView::Block(
    size_t start, size_t len, std::vector<uint32_t>& scratch) const {
  if (flat_ != nullptr) return {flat_->data() + start, len};
  scratch.resize(len);
  paged_->Read(start, scratch);
  return {scratch.data(), scratch.size()};
}

std::vector<uint32_t> ColumnView::Materialize() const {
  if (flat_ != nullptr) return *flat_;
  std::vector<uint32_t> out(paged_->size());
  paged_->Read(0, out);
  return out;
}

SortIndex::SortIndex(const std::vector<uint32_t>& column_values,
                     const IndexSpec& spec) {
  if (!spec.OnMenu()) {
    // Reject before the O(n log n) sort, not after.
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  const size_t n = column_values.size();
  rids_.resize(n);
  std::iota(rids_.begin(), rids_.end(), 0);
  // Stable sort keeps equal-valued rows in RID order, which is what makes
  // Equal()'s output deterministic and the leftmost-match semantics of the
  // index line up with the smallest RID.
  std::stable_sort(rids_.begin(), rids_.end(),
                   [&](Rid a, Rid b) { return column_values[a] < column_values[b]; });
  std::vector<uint32_t> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = column_values[rids_[i]];
  maintained_ = std::make_unique<MaintainedIndex>(spec, std::move(sorted));
  head_ = maintained_->Snapshot();
  if (!head_->index()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
}

SortIndex SortIndex::FromSorted(std::vector<uint32_t> sorted_keys,
                                std::vector<Rid> rids, const IndexSpec& spec,
                                bool spilled, size_t runs) {
  if (!spec.OnMenu()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  if (sorted_keys.size() != rids.size()) {
    throw std::invalid_argument(
        "FromSorted: " + std::to_string(sorted_keys.size()) + " keys vs " +
        std::to_string(rids.size()) + " rids");
  }
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  SortIndex out;
  out.rids_ = std::move(rids);
  out.maintained_ =
      std::make_unique<MaintainedIndex>(spec, std::move(sorted_keys));
  out.head_ = out.maintained_->Snapshot();
  if (!out.head_->index()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  out.external_build_ = spilled;
  out.external_runs_ = runs;
  return out;
}

void SortIndex::ApplyAppend(std::span<const uint32_t> values, Rid first_rid) {
  const size_t m = values.size();
  if (m == 0) return;
  // Sort the appended rows stably by value, so equal appended values keep
  // RID order — what a full stable_sort rebuild of the extended column
  // would produce.
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return values[a] < values[b];
  });
  // Merge the RID permutation to match the key merge ApplySortedBatch
  // performs: existing rows win ties (their RIDs are smaller by
  // construction). The sorted value list falls out of the same pass.
  const std::vector<uint32_t>& old_keys = head_->keys();
  std::vector<Rid> merged(old_keys.size() + m);
  std::vector<uint32_t> sorted_values(m);
  for (size_t j = 0; j < m; ++j) sorted_values[j] = values[order[j]];
  size_t i = 0, j = 0, at = 0;
  while (i < old_keys.size() && j < m) {
    merged[at++] = old_keys[i] <= sorted_values[j]
                       ? rids_[i++]
                       : first_rid + order[j++];
  }
  while (i < old_keys.size()) merged[at++] = rids_[i++];
  while (j < m) merged[at++] = first_rid + order[j++];

  maintained_->ApplySortedBatch(std::move(sorted_values), {});
  head_ = maintained_->Snapshot();
  rids_ = std::move(merged);
}

void SortIndex::ApplyUpdate(const std::vector<bool>& deleted,
                            std::span<const Rid> remap,
                            std::span<const uint32_t> appended,
                            Rid first_rid) {
  const std::vector<uint32_t>& old_keys = head_->keys();
  assert(deleted.size() == old_keys.size());
  assert(remap.size() == old_keys.size());

  // Stage the appended rows exactly as ApplyAppend does: stably
  // value-sorted, so equal appended values keep RID order.
  const size_t m = appended.size();
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return appended[a] < appended[b];
  });

  // Walk the old sorted list one duplicate run at a time. An untouched
  // run survives in place (RIDs remapped); a run with any deleted row
  // becomes one delete of the run's value — the batch language removes
  // EVERY occurrence — plus reinserts of the surviving copies. Runs are
  // distinct ascending values, so the delete list comes out sorted, and
  // a value never lands on both the survivor and the reinsert side.
  std::vector<uint32_t> survivor_keys, reinsert_keys, delete_keys;
  std::vector<Rid> survivor_rids, reinsert_rids;
  survivor_keys.reserve(old_keys.size());
  survivor_rids.reserve(old_keys.size());
  size_t i = 0;
  while (i < old_keys.size()) {
    const uint32_t v = old_keys[i];
    size_t end = i + 1;
    while (end < old_keys.size() && old_keys[end] == v) ++end;
    bool touched = false;
    for (size_t p = i; p < end && !touched; ++p) touched = deleted[rids_[p]];
    if (!touched) {
      for (size_t p = i; p < end; ++p) {
        survivor_keys.push_back(v);
        survivor_rids.push_back(remap[rids_[p]]);
      }
    } else {
      delete_keys.push_back(v);
      for (size_t p = i; p < end; ++p) {
        if (deleted[rids_[p]]) continue;
        reinsert_keys.push_back(v);
        reinsert_rids.push_back(remap[rids_[p]]);
      }
    }
    i = end;
  }

  // Merge reinserted survivors with the sorted appends into one insert
  // list. Both sides are value-sorted; on ties the reinserts go first —
  // their new RIDs are < first_rid — which is the order a stable sort of
  // the rebuilt column would give.
  std::vector<uint32_t> insert_keys;
  std::vector<Rid> insert_rids;
  insert_keys.reserve(reinsert_keys.size() + m);
  insert_rids.reserve(reinsert_keys.size() + m);
  size_t a = 0, b = 0;
  while (a < reinsert_keys.size() && b < m) {
    if (reinsert_keys[a] <= appended[order[b]]) {
      insert_keys.push_back(reinsert_keys[a]);
      insert_rids.push_back(reinsert_rids[a]);
      ++a;
    } else {
      insert_keys.push_back(appended[order[b]]);
      insert_rids.push_back(first_rid + order[b]);
      ++b;
    }
  }
  for (; a < reinsert_keys.size(); ++a) {
    insert_keys.push_back(reinsert_keys[a]);
    insert_rids.push_back(reinsert_rids[a]);
  }
  for (; b < m; ++b) {
    insert_keys.push_back(appended[order[b]]);
    insert_rids.push_back(first_rid + order[b]);
  }

  // Final RID merge mirrors the key merge ApplySortedBatch performs:
  // survivors win ties (an equal-valued survivor always carries a
  // smaller new RID than any equal-valued insert — reinserts can't
  // collide with survivors by run maximality, and appends start at
  // first_rid).
  std::vector<Rid> merged;
  merged.reserve(survivor_rids.size() + insert_rids.size());
  size_t s = 0, t = 0;
  while (s < survivor_keys.size() && t < insert_keys.size()) {
    merged.push_back(survivor_keys[s] <= insert_keys[t]
                         ? survivor_rids[s++]
                         : insert_rids[t++]);
  }
  while (s < survivor_keys.size()) merged.push_back(survivor_rids[s++]);
  while (t < insert_keys.size()) merged.push_back(insert_rids[t++]);

  maintained_->ApplySortedBatch(std::move(insert_keys),
                                std::move(delete_keys));
  head_ = maintained_->Snapshot();
  rids_ = std::move(merged);
}

size_t SortIndex::LowerBound(uint32_t v) const {
  const AnyIndex& index = head_->index();
  if (index.SupportsOrderedAccess()) return index.LowerBound(v);
  // Hash can't serve positional queries; the sorted key list still can.
  const std::vector<uint32_t>& keys = head_->keys();
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), v) - keys.begin());
}

void SortIndex::LowerBoundBatch(std::span<const uint32_t> keys,
                                std::span<size_t> out,
                                const ProbeOptions& opts) const {
  const AnyIndex& index = head_->index();
  if (index.SupportsOrderedAccess()) {
    index.LowerBoundBatch(keys, out, opts);
    return;
  }
  // Hash fallback: the scalar path's binary search, still sharded.
  ParallelProbe(opts, keys.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = LowerBound(keys[i]);
  });
}

std::vector<Rid> SortIndex::Equal(uint32_t v) const {
  std::vector<Rid> out;
  int64_t found = head_->index().Find(v);
  if (found == kNotFound) return out;
  const std::vector<uint32_t>& keys = head_->keys();
  auto pos = static_cast<size_t>(found);
  while (pos < keys.size() && keys[pos] == v) {
    out.push_back(rids_[pos]);
    ++pos;
  }
  return out;
}

std::vector<Rid> SortIndex::Range(uint32_t lo, uint32_t hi) const {
  std::vector<Rid> out;
  if (hi <= lo) return out;
  size_t begin = LowerBound(lo);
  size_t end = LowerBound(hi);
  out.assign(rids_.begin() + static_cast<ptrdiff_t>(begin),
             rids_.begin() + static_cast<ptrdiff_t>(end));
  return out;
}

std::vector<std::vector<Rid>> SortIndex::RangeBatch(
    std::span<const std::pair<uint32_t, uint32_t>> bounds,
    const ProbeOptions& opts) const {
  // Stage both bound probes of every range into one flat key span: one
  // LowerBoundBatch serves 2 * ranges descents through the group-probing
  // kernel. Inverted/empty ranges still probe (keeping the staging layout
  // trivially position = 2 * i) and are clamped to empty afterwards.
  std::vector<uint32_t> probes(2 * bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    probes[2 * i] = bounds[i].first;
    probes[2 * i + 1] = bounds[i].second;
  }
  std::vector<size_t> pos(probes.size());
  LowerBoundBatch(probes, pos, opts);
  std::vector<std::vector<Rid>> out(bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (bounds[i].second <= bounds[i].first) continue;
    out[i].assign(rids_.begin() + static_cast<ptrdiff_t>(pos[2 * i]),
                  rids_.begin() + static_cast<ptrdiff_t>(pos[2 * i + 1]));
  }
  return out;
}

size_t SortIndex::SpaceBytes() const {
  // Size-based, not capacity-based: what the contents occupy, which is
  // the quantity the §5 space model predicts. Capacity slack (e.g. from
  // push_back-grown external-merge output) belongs to ReservedBytes().
  return head_->keys().size() * sizeof(uint32_t) +
         rids_.size() * sizeof(Rid) + head_->index().SpaceBytes();
}

size_t SortIndex::ReservedBytes() const {
  return head_->keys().capacity() * sizeof(uint32_t) +
         rids_.capacity() * sizeof(Rid) + head_->index().SpaceBytes();
}

Table::Table(const TableOptions& options)
    : options_(options),
      buffer_(std::make_unique<store::BufferManager>(store::StoreOptions{
          options.page_bytes, options.buffer_pages, options.spill_dir})) {}

const store::BufferStats& Table::PoolStats() const {
  if (buffer_ == nullptr) {
    throw std::logic_error("PoolStats: table is not paged");
  }
  return buffer_->stats();
}

void Table::AddColumn(const std::string& name, std::vector<uint32_t> values) {
  if (!columns_.empty() && values.size() != num_rows_) {
    throw std::invalid_argument("column " + name + " has " +
                                std::to_string(values.size()) +
                                " rows, table has " +
                                std::to_string(num_rows_));
  }
  num_rows_ = values.size();
  ColumnStore cs;
  if (buffer_ != nullptr) {
    cs.paged = std::make_unique<store::PagedColumn>(buffer_.get());
    cs.paged->Append(values);
  } else {
    cs.flat = std::move(values);
  }
  columns_[name] = std::move(cs);
}

void Table::AddStringColumn(const std::string& name,
                            std::vector<std::string> values) {
  // One domain search per cell — §2.1's load path, and the workload the
  // search structures exist for. Every value is in the dictionary by
  // construction, so Encode cannot fail here.
  auto dom = std::make_unique<domain::StringDomain>(
      domain::StringDomain::FromValues(values));
  std::vector<uint32_t> ids;
  ids.reserve(values.size());
  for (const std::string& v : values) ids.push_back(*dom->Encode(v));
  AddColumn(name, std::move(ids));  // validates the row count first
  domains_[name] = std::move(dom);
}

bool Table::HasStringColumn(const std::string& name) const {
  return domains_.count(name) != 0;
}

const domain::StringDomain& Table::StringDomainOf(
    const std::string& name) const {
  auto it = domains_.find(name);
  if (it == domains_.end()) {
    throw std::out_of_range("no string column named " + name);
  }
  return *it->second;
}

void Table::ValidateDomainIds(
    const std::map<std::string, std::vector<uint32_t>>& rows) const {
  for (const auto& [name, values] : rows) {
    auto it = domains_.find(name);
    if (it == domains_.end()) continue;
    const size_t dictionary = it->second->size();
    for (uint32_t v : values) {
      if (v >= dictionary) {
        throw std::invalid_argument(
            "insert into string column " + name + ": id " +
            std::to_string(v) + " not in dictionary of size " +
            std::to_string(dictionary));
      }
    }
  }
}

void Table::AppendRows(
    const std::map<std::string, std::vector<uint32_t>>& rows) {
  if (rows.size() != columns_.size()) {
    throw std::invalid_argument("batch column count mismatch");
  }
  // An empty batch on a zero-column table is a no-op — there is no first
  // column to take a row count from.
  if (rows.empty()) return;
  size_t batch_rows = rows.begin()->second.size();
  for (const auto& [name, values] : rows) {
    if (columns_.count(name) == 0) {
      throw std::invalid_argument("batch has unknown column " + name);
    }
    if (values.size() != batch_rows) {
      throw std::invalid_argument("ragged batch column " + name);
    }
  }
  // A raw ID landing in a string column must be a valid dictionary entry,
  // or the column desyncs from its domain; reject before any mutation.
  ValidateDomainIds(rows);
  const Rid first_rid = static_cast<Rid>(num_rows_);
  for (const auto& [name, values] : rows) {
    ColumnStore& cs = columns_.find(name)->second;
    if (cs.paged != nullptr) {
      cs.paged->Append(values);
    } else {
      cs.flat.insert(cs.flat.end(), values.begin(), values.end());
    }
  }
  num_rows_ += batch_rows;
  // Maintenance-on-batch (§2.2), incrementally: each sort index merges
  // the appended rows into its sorted key/RID lists and refreshes its
  // structure — keeping the spec it was built with, and rebuilding only
  // the touched shards for partitioned specs — rather than re-sorting
  // the whole column from scratch.
  for (auto& [name, index] : indexes_) {
    index->ApplyAppend(rows.at(name), first_rid);
  }
}

void Table::DeleteRows(std::span<const Rid> rids) {
  std::vector<bool> deleted(num_rows_, false);
  size_t removed = 0;
  for (Rid r : rids) {
    if (r >= num_rows_) {
      throw std::out_of_range("DeleteRows: rid " + std::to_string(r) +
                              " >= row count " + std::to_string(num_rows_));
    }
    if (!deleted[r]) {
      deleted[r] = true;
      ++removed;
    }
  }
  if (removed == 0) return;
  DeleteAndAppend(deleted, removed, {});
}

void Table::ApplyUpdate(
    const std::string& key_column, std::vector<uint32_t> delete_keys,
    const std::map<std::string, std::vector<uint32_t>>& insert_rows) {
  ColumnView keys = View(key_column);
  std::sort(delete_keys.begin(), delete_keys.end());
  std::vector<bool> deleted(num_rows_, false);
  size_t removed = 0;
  keys.Scan([&](std::span<const uint32_t> block, size_t base) {
    for (size_t i = 0; i < block.size(); ++i) {
      if (std::binary_search(delete_keys.begin(), delete_keys.end(),
                             block[i])) {
        deleted[base + i] = true;
        ++removed;
      }
    }
  });
  if (removed == 0 && insert_rows.empty()) return;
  DeleteAndAppend(deleted, removed, insert_rows);
}

void Table::DeleteAndAppend(
    const std::vector<bool>& deleted, size_t removed,
    const std::map<std::string, std::vector<uint32_t>>& insert_rows) {
  // Validate the insert batch's shape (AppendRows' rules) and its string
  // IDs before touching any state; an empty map means deletes only.
  size_t batch_rows = 0;
  if (!insert_rows.empty()) {
    if (insert_rows.size() != columns_.size()) {
      throw std::invalid_argument("batch column count mismatch");
    }
    batch_rows = insert_rows.begin()->second.size();
    for (const auto& [name, values] : insert_rows) {
      if (columns_.count(name) == 0) {
        throw std::invalid_argument("batch has unknown column " + name);
      }
      if (values.size() != batch_rows) {
        throw std::invalid_argument("ragged batch column " + name);
      }
    }
    ValidateDomainIds(insert_rows);
  }
  // Survivors compact in order: new RID = old RID minus deleted rows
  // before it. The remap is what lets each sort index translate its old
  // RID list without seeing the columns.
  std::vector<Rid> remap(num_rows_);
  Rid next = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    remap[r] = next;
    if (!deleted[r]) ++next;
  }
  const Rid first_rid = static_cast<Rid>(num_rows_ - removed);
  for (auto& [name, cs] : columns_) {
    if (removed != 0) {
      if (cs.paged != nullptr) {
        // Streaming compaction at any buffer budget: the cursor copies
        // each block out before survivors are written back, and the
        // write position w never passes the read frontier (w grows by at
        // most the block length per block), so no unread value is ever
        // overwritten.
        store::ColumnCursor cursor(*cs.paged);
        std::vector<uint32_t> survivors;
        size_t w = 0;
        for (std::span<const uint32_t> block = cursor.NextBlock();
             !block.empty(); block = cursor.NextBlock()) {
          const size_t base = cursor.position() - block.size();
          survivors.clear();
          for (size_t i = 0; i < block.size(); ++i) {
            if (!deleted[base + i]) survivors.push_back(block[i]);
          }
          if (!survivors.empty()) {
            cs.paged->Write(w, survivors);
            w += survivors.size();
          }
        }
        cs.paged->Truncate(w);
      } else {
        size_t w = 0;
        for (size_t r = 0; r < cs.flat.size(); ++r) {
          if (!deleted[r]) cs.flat[w++] = cs.flat[r];
        }
        cs.flat.resize(w);
      }
    }
    if (!insert_rows.empty()) {
      const auto& values = insert_rows.at(name);
      if (cs.paged != nullptr) {
        cs.paged->Append(values);
      } else {
        cs.flat.insert(cs.flat.end(), values.begin(), values.end());
      }
    }
  }
  num_rows_ = num_rows_ - removed + batch_rows;
  // One maintenance batch per index — deletes and inserts together, so a
  // part:K spec pays one shard-incremental refresh for the whole change.
  static const std::vector<uint32_t> kNoAppend;
  for (auto& [name, index] : indexes_) {
    const std::vector<uint32_t>& appended =
        insert_rows.empty() ? kNoAppend : insert_rows.at(name);
    if (removed == 0) {
      index->ApplyAppend(appended, first_rid);
    } else {
      index->ApplyUpdate(deleted, remap, appended, first_rid);
    }
  }
}

bool Table::HasColumn(const std::string& name) const {
  return columns_.count(name) != 0;
}

const Table::ColumnStore& Table::StoreOf(const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    throw std::out_of_range("no column named " + name);
  }
  return it->second;
}

const std::vector<uint32_t>& Table::Column(const std::string& name) const {
  const ColumnStore& cs = StoreOf(name);
  if (cs.paged != nullptr) {
    throw std::logic_error("Column(" + name +
                           "): paged table has no flat vector; use View() "
                           "or ReadColumn()");
  }
  return cs.flat;
}

ColumnView Table::View(const std::string& name) const {
  const ColumnStore& cs = StoreOf(name);
  if (cs.paged != nullptr) return ColumnView(cs.paged.get());
  return ColumnView(&cs.flat);
}

std::vector<uint32_t> Table::ReadColumn(const std::string& name) const {
  return View(name).Materialize();
}

const SortIndex& Table::BuildSortIndex(const std::string& column,
                                       const IndexSpec& spec) {
  const ColumnStore& cs = StoreOf(column);
  std::unique_ptr<SortIndex> built;
  if (cs.paged == nullptr) {
    built = std::make_unique<SortIndex>(cs.flat, spec);
  } else {
    const size_t budget_values =
        options_.buffer_pages * buffer_->values_per_page();
    if (budget_values == 0 || cs.paged->size() <= budget_values) {
      // Unbounded pool, or the column fits the frame budget: materialize
      // once and take the in-RAM stable_sort path.
      built = std::make_unique<SortIndex>(View(column).Materialize(), spec);
    } else {
      // Column exceeds the budget: external merge sort under the pool's
      // byte budget. (key, RID) pairs are twice a value's width, so the
      // in-RAM run size in pairs is half the pool's value budget.
      ExternalBuildResult sorted = ExternalSortKeys(
          *cs.paged, budget_values / 2, buffer_->spill_path());
      built = std::make_unique<SortIndex>(SortIndex::FromSorted(
          std::move(sorted.sorted_keys), std::move(sorted.rids), spec,
          sorted.spilled, sorted.runs));
    }
  }
  auto& slot = indexes_[column];
  slot = std::move(built);
  return *slot;
}

const SortIndex& Table::GetSortIndex(const std::string& column) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    throw std::out_of_range("no sort index on column " + column);
  }
  return *it->second;
}

bool Table::HasSortIndex(const std::string& column) const {
  return indexes_.count(column) != 0;
}

}  // namespace cssidx::engine
