#include "engine/query.h"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>

namespace cssidx::engine {
namespace {

/// The ID used for a string predicate value absent from the column's
/// dictionary. Real IDs are dense from 0, so this never matches a row.
constexpr uint32_t kAbsentId = std::numeric_limits<uint32_t>::max();

}  // namespace

std::vector<Rid> SelectEqual(const Table& table, const std::string& column,
                             uint32_t value) {
  if (table.HasSortIndex(column)) {
    return table.GetSortIndex(column).Equal(value);
  }
  std::vector<Rid> out;
  table.View(column).Scan([&](std::span<const uint32_t> block, size_t base) {
    for (size_t i = 0; i < block.size(); ++i) {
      if (block[i] == value) out.push_back(static_cast<Rid>(base + i));
    }
  });
  return out;
}

std::vector<Rid> SelectRange(const Table& table, const std::string& column,
                             uint32_t lo, uint32_t hi) {
  // A single range has nothing to batch: go straight to the index (or the
  // scan) rather than paying RangeBatch's staging vectors per call.
  if (table.HasSortIndex(column)) {
    return table.GetSortIndex(column).Range(lo, hi);
  }
  std::vector<Rid> out;
  table.View(column).Scan([&](std::span<const uint32_t> block, size_t base) {
    for (size_t i = 0; i < block.size(); ++i) {
      if (block[i] >= lo && block[i] < hi) {
        out.push_back(static_cast<Rid>(base + i));
      }
    }
  });
  return out;
}

size_t CountEqual(const Table& table, const std::string& column,
                  uint32_t value) {
  if (table.HasSortIndex(column)) {
    return table.GetSortIndex(column).CountEqual(value);
  }
  size_t count = 0;
  table.View(column).Scan([&](std::span<const uint32_t> block, size_t) {
    count += static_cast<size_t>(std::count(block.begin(), block.end(), value));
  });
  return count;
}

size_t CountRange(const Table& table, const std::string& column, uint32_t lo,
                  uint32_t hi) {
  if (hi <= lo) return 0;
  if (table.HasSortIndex(column)) {
    return table.GetSortIndex(column).CountRange(lo, hi);
  }
  size_t count = 0;
  table.View(column).Scan([&](std::span<const uint32_t> block, size_t) {
    for (uint32_t v : block) {
      if (v >= lo && v < hi) ++count;
    }
  });
  return count;
}

std::vector<Rid> SelectEqual(const Table& table, const std::string& column,
                             const std::string& value) {
  const domain::StringDomain& dom = table.StringDomainOf(column);
  return SelectEqual(table, column, dom.Encode(value).value_or(kAbsentId));
}

std::vector<Rid> SelectRange(const Table& table, const std::string& column,
                             const std::string& lo, const std::string& hi) {
  // The ID image of a string range (§2.1: IDs are order-preserving):
  // [lo, hi) over values becomes [LowerBoundId(lo), LowerBoundId(hi))
  // over IDs — neither bound has to be in the dictionary.
  const domain::StringDomain& dom = table.StringDomainOf(column);
  return SelectRange(table, column, dom.LowerBoundId(lo),
                     dom.LowerBoundId(hi));
}

size_t CountEqual(const Table& table, const std::string& column,
                  const std::string& value) {
  const domain::StringDomain& dom = table.StringDomainOf(column);
  return CountEqual(table, column, dom.Encode(value).value_or(kAbsentId));
}

size_t CountRange(const Table& table, const std::string& column,
                  const std::string& lo, const std::string& hi) {
  const domain::StringDomain& dom = table.StringDomainOf(column);
  return CountRange(table, column, dom.LowerBoundId(lo),
                    dom.LowerBoundId(hi));
}

std::vector<std::vector<Rid>> SelectRangeBatch(
    const Table& table, const std::string& column,
    std::span<const std::pair<uint32_t, uint32_t>> bounds) {
  if (table.HasSortIndex(column)) {
    // All bound probes in one batched LowerBound; auto-shard large sets.
    return table.GetSortIndex(column).RangeBatch(
        bounds, ProbeOptions{.threads = 0});
  }
  // Scan fallback: one pass over the column serves every range (rows
  // outer, bounds inner), instead of re-streaming the column per range.
  std::vector<std::vector<Rid>> out(bounds.size());
  table.View(column).Scan([&](std::span<const uint32_t> block, size_t base) {
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t b = 0; b < bounds.size(); ++b) {
        if (block[i] >= bounds[b].first && block[i] < bounds[b].second) {
          out[b].push_back(static_cast<Rid>(base + i));
        }
      }
    }
  });
  return out;
}

std::vector<JoinedPair> IndexedJoin(const Table& outer,
                                    const std::string& outer_column,
                                    const Table& inner,
                                    const std::string& inner_column) {
  const SortIndex& index = inner.GetSortIndex(inner_column);
  const ColumnView outer_col = outer.View(outer_column);
  std::vector<JoinedPair> out;
  // String columns carry per-table dictionaries, so equal VALUES need not
  // have equal IDs; translate the outer dictionary into the inner one
  // once (O(|outer domain| * log |inner domain|)) and probe translated
  // IDs. Empty = no translation (plain integer join).
  const bool outer_str = outer.HasStringColumn(outer_column);
  const bool inner_str = inner.HasStringColumn(inner_column);
  if (outer_str != inner_str) {
    throw std::invalid_argument(
        "IndexedJoin: cannot join a string column against an integer "
        "column (" + outer_column + " vs " + inner_column + ")");
  }
  std::vector<uint32_t> translate;
  if (outer_str) {
    const domain::StringDomain& outer_dom = outer.StringDomainOf(outer_column);
    const domain::StringDomain& inner_dom = inner.StringDomainOf(inner_column);
    translate.resize(outer_dom.size());
    for (uint32_t i = 0; i < translate.size(); ++i) {
      translate[i] =
          inner_dom.Encode(outer_dom.Decode(i)).value_or(kAbsentId);
    }
  }
  // Batched probe loop: the outer column is fed to the inner index a block
  // at a time, each block probed in one EqualRangeBatch the facade shards
  // into per-thread contiguous chunks (threads = 0: one per hardware
  // thread), every chunk running the structure's group-probing + prefetch
  // kernel with results landing in place. The block is sized so a wide
  // machine still gets a full min-shard chunk per hardware thread, while
  // keeping the staging buffer bounded rather than O(outer rows); outers
  // smaller than one shard stay on the inline path, so the parallelism
  // threshold is automatic. Each probe comes back as its whole duplicate
  // run — a PositionRange over the inner RID list — so the §3.6 duplicate
  // expansion is a plain span walk with no per-key key comparisons; it
  // stays sequential because it appends to the output pair list in
  // outer-RID order.
  constexpr size_t kProbeBlock = 64 * kParallelProbeMinShard;
  std::vector<PositionRange> found(std::min(outer_col.size(), kProbeBlock));
  std::vector<uint32_t> translated(translate.empty() ? 0 : found.size());
  std::vector<uint32_t> stage;  // paged outer columns copy blocks through it
  const auto& rids = index.rids();
  for (size_t base = 0; base < outer_col.size(); base += kProbeBlock) {
    size_t len = std::min(outer_col.size() - base, kProbeBlock);
    std::span<const uint32_t> probe_keys = outer_col.Block(base, len, stage);
    if (!translate.empty()) {
      for (size_t i = 0; i < len; ++i) {
        translated[i] = translate[probe_keys[i]];
      }
      probe_keys = std::span<const uint32_t>(translated.data(), len);
    }
    index.EqualRangeBatch(probe_keys,
                          std::span<PositionRange>(found.data(), len),
                          ProbeOptions{.threads = 0});
    for (size_t i = 0; i < len; ++i) {
      for (size_t pos = found[i].begin; pos < found[i].end; ++pos) {
        out.push_back({static_cast<Rid>(base + i), rids[pos]});
      }
    }
  }
  return out;
}

Aggregates Aggregate(const Table& table, const std::string& column,
                     const std::vector<Rid>& rids) {
  Aggregates agg;
  const ColumnView col = table.View(column);
  for (Rid r : rids) agg.Accumulate(col.At(r));
  if (agg.count == 0) agg.min = 0;
  return agg;
}

std::vector<Aggregates> GroupBy(const Table& table,
                                const std::string& group_column,
                                const std::string& value_column,
                                uint32_t num_groups) {
  std::vector<Aggregates> groups(num_groups);
  const ColumnView values = table.View(value_column);
  bool accumulated = false;
  if (table.HasSortIndex(group_column)) {
    // Resolve every group key's duplicate run in one EqualRangeBatch (the
    // batch auto-shards above the parallel-probe threshold). The probes
    // are cheap — the expensive part is accumulating values[rids[pos]],
    // a gather whose positions stride across the values column — so the
    // run spans also serve as a selectivity measurement: when the groups
    // cover most of the table, a sequential scan touches far fewer value
    // lines than the gather and the scan path below takes over. Either
    // way the stable sort keeps a run's RIDs in row order, so
    // accumulation order — and hence every aggregate — is identical.
    const SortIndex& index = table.GetSortIndex(group_column);
    const auto& rids = index.rids();
    std::vector<uint32_t> group_keys(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) group_keys[g] = g;
    std::vector<PositionRange> runs(num_groups);
    index.EqualRangeBatch(group_keys, runs, ProbeOptions{.threads = 0});
    size_t covered = 0;
    for (const PositionRange& r : runs) covered += r.size();
    if (covered <= table.NumRows() / 4) {
      for (uint32_t g = 0; g < num_groups; ++g) {
        for (size_t pos = runs[g].begin; pos < runs[g].end; ++pos) {
          groups[g].Accumulate(values.At(rids[pos]));
        }
      }
      accumulated = true;
    }
  }
  if (!accumulated) {
    table.View(group_column)
        .Scan([&](std::span<const uint32_t> block, size_t base) {
          for (size_t i = 0; i < block.size(); ++i) {
            if (block[i] >= num_groups) continue;  // outside the dense domain
            groups[block[i]].Accumulate(values.At(base + i));
          }
        });
  }
  for (auto& g : groups) {
    if (g.count == 0) g.min = 0;
  }
  return groups;
}

}  // namespace cssidx::engine
