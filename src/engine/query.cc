#include "engine/query.h"

#include <algorithm>
#include <span>

namespace cssidx::engine {

std::vector<Rid> SelectEqual(const Table& table, const std::string& column,
                             uint32_t value) {
  if (table.HasSortIndex(column)) {
    return table.GetSortIndex(column).Equal(value);
  }
  std::vector<Rid> out;
  const auto& col = table.Column(column);
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] == value) out.push_back(static_cast<Rid>(i));
  }
  return out;
}

std::vector<Rid> SelectRange(const Table& table, const std::string& column,
                             uint32_t lo, uint32_t hi) {
  if (table.HasSortIndex(column)) {
    return table.GetSortIndex(column).Range(lo, hi);
  }
  std::vector<Rid> out;
  const auto& col = table.Column(column);
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] >= lo && col[i] < hi) out.push_back(static_cast<Rid>(i));
  }
  return out;
}

std::vector<JoinedPair> IndexedJoin(const Table& outer,
                                    const std::string& outer_column,
                                    const Table& inner,
                                    const std::string& inner_column) {
  const SortIndex& index = inner.GetSortIndex(inner_column);
  const auto& outer_col = outer.Column(outer_column);
  std::vector<JoinedPair> out;
  // Batched probe loop: the outer column is fed to the inner index a block
  // at a time, each block probed in one FindBatch the facade shards into
  // per-thread contiguous chunks (threads = 0: one per hardware thread),
  // every chunk running the structure's group-probing + prefetch kernel
  // with results landing in place. The block is sized so a wide machine
  // still gets a full min-shard chunk per hardware thread, while keeping
  // the staging buffer bounded (2 MB) rather than O(outer rows); outers
  // smaller than one shard stay on the inline path, so the parallelism
  // threshold is automatic. FindBatch returns the leftmost match;
  // duplicates in the inner relation are handled by the rightward scan
  // (§3.6), which stays sequential because it appends to the output pair
  // list in outer-RID order.
  constexpr size_t kProbeBlock = 64 * kParallelProbeMinShard;
  std::vector<int64_t> found(std::min(outer_col.size(), kProbeBlock));
  const auto& sorted = index.sorted_keys();
  const auto& rids = index.rids();
  for (size_t base = 0; base < outer_col.size(); base += kProbeBlock) {
    size_t len = std::min(outer_col.size() - base, kProbeBlock);
    index.FindBatch(std::span<const uint32_t>(&outer_col[base], len),
                    std::span<int64_t>(found.data(), len),
                    ProbeOptions{.threads = 0});
    for (size_t i = 0; i < len; ++i) {
      if (found[i] == kNotFound) continue;
      uint32_t k = outer_col[base + i];
      auto pos = static_cast<size_t>(found[i]);
      while (pos < sorted.size() && sorted[pos] == k) {
        out.push_back({static_cast<Rid>(base + i), rids[pos]});
        ++pos;
      }
    }
  }
  return out;
}

Aggregates Aggregate(const Table& table, const std::string& column,
                     const std::vector<Rid>& rids) {
  Aggregates agg;
  const auto& col = table.Column(column);
  for (Rid r : rids) agg.Accumulate(col[r]);
  if (agg.count == 0) agg.min = 0;
  return agg;
}

std::vector<Aggregates> GroupBy(const Table& table,
                                const std::string& group_column,
                                const std::string& value_column,
                                uint32_t num_groups) {
  std::vector<Aggregates> groups(num_groups);
  const auto& keys = table.Column(group_column);
  const auto& values = table.Column(value_column);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] >= num_groups) continue;  // outside the dense domain
    groups[keys[i]].Accumulate(values[i]);
  }
  for (auto& g : groups) {
    if (g.count == 0) g.min = 0;
  }
  return groups;
}

}  // namespace cssidx::engine
