#include "engine/query.h"

#include <algorithm>
#include <limits>

namespace cssidx::engine {

std::vector<Rid> SelectEqual(const Table& table, const std::string& column,
                             uint32_t value) {
  if (table.HasSortIndex(column)) {
    return table.GetSortIndex(column).Equal(value);
  }
  std::vector<Rid> out;
  const auto& col = table.Column(column);
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] == value) out.push_back(static_cast<Rid>(i));
  }
  return out;
}

std::vector<Rid> SelectRange(const Table& table, const std::string& column,
                             uint32_t lo, uint32_t hi) {
  if (table.HasSortIndex(column)) {
    return table.GetSortIndex(column).Range(lo, hi);
  }
  std::vector<Rid> out;
  const auto& col = table.Column(column);
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] >= lo && col[i] < hi) out.push_back(static_cast<Rid>(i));
  }
  return out;
}

std::vector<JoinedPair> IndexedJoin(const Table& outer,
                                    const std::string& outer_column,
                                    const Table& inner,
                                    const std::string& inner_column) {
  const SortIndex& index = inner.GetSortIndex(inner_column);
  const auto& outer_col = outer.Column(outer_column);
  std::vector<JoinedPair> out;
  // Pipelined probe loop: one index search per outer row, duplicates in
  // the inner relation handled by the rightward scan (§3.6).
  const auto& sorted = index.sorted_keys();
  const auto& rids = index.rids();
  for (size_t i = 0; i < outer_col.size(); ++i) {
    uint32_t k = outer_col[i];
    size_t pos = index.LowerBound(k);
    while (pos < sorted.size() && sorted[pos] == k) {
      out.push_back({static_cast<Rid>(i), rids[pos]});
      ++pos;
    }
  }
  return out;
}

Aggregates Aggregate(const Table& table, const std::string& column,
                     const std::vector<Rid>& rids) {
  Aggregates agg;
  const auto& col = table.Column(column);
  agg.min = std::numeric_limits<uint32_t>::max();
  agg.max = 0;
  for (Rid r : rids) {
    uint32_t v = col[r];
    ++agg.count;
    agg.sum += v;
    agg.min = std::min(agg.min, v);
    agg.max = std::max(agg.max, v);
  }
  if (agg.count == 0) agg.min = 0;
  return agg;
}

std::vector<Aggregates> GroupBy(const Table& table,
                                const std::string& group_column,
                                const std::string& value_column,
                                uint32_t num_groups) {
  std::vector<Aggregates> groups(num_groups);
  for (auto& g : groups) {
    g.min = std::numeric_limits<uint32_t>::max();
  }
  const auto& keys = table.Column(group_column);
  const auto& values = table.Column(value_column);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] >= num_groups) continue;  // outside the dense domain
    Aggregates& g = groups[keys[i]];
    uint32_t v = values[i];
    ++g.count;
    g.sum += v;
    g.min = std::min(g.min, v);
    g.max = std::max(g.max, v);
  }
  for (auto& g : groups) {
    if (g.count == 0) g.min = 0;
  }
  return groups;
}

}  // namespace cssidx::engine
