#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace cssidx {

namespace {

// True while this thread is executing a shard body or a dispatch; a nested
// ParallelFor on any pool then runs inline instead of taking the dispatch
// lock (self-deadlock) or re-entering the shard queue.
thread_local bool t_inside_pool = false;

}  // namespace

struct ThreadPool::Job {
  const std::function<void(size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t num_shards = 0;
  size_t chunk = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first throw from any shard, under done_mu
};

ThreadPool::ThreadPool(int workers) {
  threads_.reserve(static_cast<size_t>(std::max(workers, 0)));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(HardwareThreads() - 1);
  return pool;
}

void ThreadPool::RunShards(Job& job) {
  // Shards are claimed in order off one counter; each is a contiguous
  // range, so an executor that claims shards s and s+1 touches one
  // contiguous span — the same access pattern as the sequential loop.
  for (size_t s = job.next.fetch_add(1, std::memory_order_relaxed);
       s < job.num_shards;
       s = job.next.fetch_add(1, std::memory_order_relaxed)) {
    size_t begin = s * job.chunk;
    size_t end = std::min(job.n, begin + job.chunk);
    try {
      (*job.body)(begin, end);
    } catch (...) {
      // A shard must never unwind past the claim loop: on a worker it
      // would terminate the process, on the dispatcher it would free the
      // body and output buffers while other shards still touch them. Park
      // the first exception; the dispatcher rethrows after the barrier.
      std::lock_guard<std::mutex> lock(job.done_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_shards) {
      // Notify under the lock so the dispatcher's predicate check cannot
      // miss the final increment.
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_pool = true;
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    // Copy the shared_ptr so a worker that wakes late — after the
    // dispatcher already returned and published a new job — still holds a
    // live Job. A fully-claimed job's counter just hands out shard ids
    // >= num_shards, so the stale body pointer is never dereferenced.
    std::shared_ptr<Job> job = job_;
    lock.unlock();
    if (job) RunShards(*job);
    lock.lock();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t min_per_shard, int parallelism,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  min_per_shard = std::max<size_t>(min_per_shard, 1);
  size_t p = parallelism <= 0 ? static_cast<size_t>(workers()) + 1
                              : static_cast<size_t>(parallelism);
  // Floor, not ceil: every shard must carry at least min_per_shard items
  // (n in (grain, 2*grain) collapses to one inline shard, never two
  // sub-grain ones).
  size_t max_by_grain = std::max<size_t>(n / min_per_shard, 1);
  size_t num_shards = std::min(p, max_by_grain);
  // Rounding the chunk up can cover [0, n) in fewer shards than requested
  // (n=10, 8 shards -> chunk 2 -> 5 shards); recompute so no shard starts
  // past n.
  size_t chunk = (n + num_shards - 1) / num_shards;
  num_shards = (n + chunk - 1) / chunk;
  if (num_shards <= 1 || threads_.empty() || t_inside_pool) {
    body(0, n);
    return;
  }

  std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  t_inside_pool = true;
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  job->num_shards = num_shards;
  job->chunk = chunk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  cv_.notify_all();
  RunShards(*job);  // the caller is an executor too; throws are parked
  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(
        lock, [&] { return job->done.load(std::memory_order_acquire) ==
                           job->num_shards; });
  }
  t_inside_pool = false;
  // Every shard has retired, so rethrowing cannot leave a worker touching
  // the caller's body or buffers.
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace cssidx
