#include "util/aligned_buffer.h"

#include <cstdlib>
#include <new>
#include <utility>

namespace cssidx {

AlignedBuffer::AlignedBuffer(size_t bytes, size_t alignment,
                             size_t misalign_offset) {
  if (bytes == 0) return;
  // Over-allocate so both the aligned case and the deliberately misaligned
  // case fit. `std::aligned_alloc` requires the size to be a multiple of the
  // alignment, so we just use malloc + manual rounding.
  size_t total = bytes + alignment + misalign_offset;
  raw_ = static_cast<std::byte*>(std::malloc(total));
  if (raw_ == nullptr) throw std::bad_alloc();
  auto addr = reinterpret_cast<uintptr_t>(raw_);
  uintptr_t aligned = (addr + alignment - 1) / alignment * alignment;
  payload_ = reinterpret_cast<std::byte*>(aligned + misalign_offset);
  bytes_ = bytes;
}

AlignedBuffer::~AlignedBuffer() { std::free(raw_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : raw_(std::exchange(other.raw_, nullptr)),
      payload_(std::exchange(other.payload_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(raw_);
    raw_ = std::exchange(other.raw_, nullptr);
    payload_ = std::exchange(other.payload_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

}  // namespace cssidx
