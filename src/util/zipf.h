#ifndef CSSIDX_UTIL_ZIPF_H_
#define CSSIDX_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

// Zipf-distributed sampling over ranks [0, n). Used to build the skewed
// workloads of §3.5 (hash under skew) and §6.3 (interpolation search on
// non-uniform data).

namespace cssidx {

/// Samples ranks with P(rank = k) proportional to 1/(k+1)^theta.
/// Uses the rejection-inversion method of Hörmann & Derflinger, which needs
/// no O(n) precomputation and is exact for theta != 1 as well.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
  Pcg32 rng_;
};

}  // namespace cssidx

#endif  // CSSIDX_UTIL_ZIPF_H_
