#include "util/cli.h"

#include <cstdlib>

namespace cssidx {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliArgs::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

int64_t CliArgs::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool CliArgs::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace cssidx
