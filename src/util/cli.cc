#include "util/cli.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cssidx {

namespace {

// Every bench binary and the advisor CLI parse through these accessors, so a
// malformed flag must stop the run with the flag's name instead of silently
// truncating ("--n=10e6" -> 10) or yielding 0 ("--budget=abc").
[[noreturn]] void DieBadFlag(const std::string& name, const std::string& value,
                             const char* expected) {
  std::fprintf(stderr, "error: invalid value for --%s: '%s' (expected %s)\n",
               name.c_str(), value.c_str(), expected);
  std::exit(2);
}

}  // namespace

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliArgs::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

int64_t CliArgs::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    DieBadFlag(name, v, "a base-10 integer");
  }
  return parsed;
}

double CliArgs::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE ||
      !std::isfinite(parsed)) {
    DieBadFlag(name, v, "a finite number");
  }
  return parsed;
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool CliArgs::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace cssidx
