#ifndef CSSIDX_UTIL_MACROS_H_
#define CSSIDX_UTIL_MACROS_H_

// Project-wide function attributes and constants.
//
// The hot search paths in this library are small enough that inlining
// decisions materially change the generated code (the paper's "hard-coded"
// intra-node searches only pay off if the compiler actually flattens them),
// so we pin the attributes down here instead of hoping.

#if defined(__GNUC__) || defined(__clang__)
#define CSSIDX_ALWAYS_INLINE inline __attribute__((always_inline))
#define CSSIDX_NOINLINE __attribute__((noinline))
#define CSSIDX_LIKELY(x) __builtin_expect(!!(x), 1)
#define CSSIDX_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define CSSIDX_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define CSSIDX_ALWAYS_INLINE inline
#define CSSIDX_NOINLINE
#define CSSIDX_LIKELY(x) (x)
#define CSSIDX_UNLIKELY(x) (x)
#define CSSIDX_PREFETCH(addr)
#endif

namespace cssidx {

// Cache line size assumed for node sizing defaults. All node sizes are
// runtime/compile-time configurable; this is only the default. 64 bytes
// matches every mainstream x86-64 and most AArch64 parts.
inline constexpr int kCacheLineBytes = 64;

}  // namespace cssidx

#endif  // CSSIDX_UTIL_MACROS_H_
