#include "util/zipf.h"

#include <cmath>

namespace cssidx {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // Rejection-inversion constants; see Hörmann & Derflinger (1996),
  // "Rejection-inversion to generate variates from monotone discrete
  // distributions". Ranks here are 1-based internally.
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfGenerator::H(double x) const {
  if (theta_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  if (theta_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next() {
  while (true) {
    double u = h_n_ + rng_.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    auto k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -theta_)) {
      return k - 1;  // back to 0-based rank
    }
  }
}

}  // namespace cssidx
