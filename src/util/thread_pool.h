#ifndef CSSIDX_UTIL_THREAD_POOL_H_
#define CSSIDX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

// Static range-sharded thread pool for the probe path.
//
// The probe workloads this repo cares about are embarrassingly parallel
// over a contiguous probe span: shard i owns probes [i*chunk, (i+1)*chunk)
// and writes results in place, so there is nothing to steal and nothing to
// merge. The pool therefore skips work-stealing deques entirely: a
// dispatch is one contiguous range split into at most `parallelism`
// near-equal shards, claimed in order off a single atomic counter by the
// workers *and the calling thread*. The caller participating means a
// ThreadPool(0) — or a dispatch whose shard math collapses to one shard —
// degrades to a plain inline loop with no synchronization at all, which
// keeps single-threaded probes exactly as fast as before the pool existed.

namespace cssidx {

class ThreadPool {
 public:
  /// Spawns exactly `workers` worker threads (0 is valid: every dispatch
  /// then runs inline on the calling thread). The shared pool uses
  /// HardwareThreads() - 1 so that workers + caller = one executor per
  /// hardware thread.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Splits [0, n) into at most `parallelism` contiguous shards of at
  /// least `min_per_shard` items each (one inline shard when
  /// n < 2 * min_per_shard — a range that cannot field two full-grain
  /// shards is not worth a dispatch) and runs body(begin, end) for every
  /// shard, blocking until all shards complete. parallelism <= 0 means
  /// workers() + 1 — one executor per thread the pool can actually field,
  /// caller included; values above that still produce that many shards
  /// (the executors just claim more than one), so results are identical
  /// whatever the machine width.
  ///
  /// Concurrent dispatches from different threads are serialized, one job
  /// at a time. Nested calls from inside a shard body run inline rather
  /// than deadlocking on the dispatch lock. If a shard body throws, the
  /// remaining claimed shards still retire, and the first exception is
  /// rethrown on the calling thread after the barrier — a throw never
  /// leaves a worker touching the caller's buffers.
  void ParallelFor(size_t n, size_t min_per_shard, int parallelism,
                   const std::function<void(size_t, size_t)>& body);

  /// Process-wide pool sized to the machine: HardwareThreads() - 1
  /// workers, so a full-width dispatch uses every hardware thread once.
  static ThreadPool& Shared();

  /// std::thread::hardware_concurrency(), floored at 1.
  static int HardwareThreads();

 private:
  struct Job;

  void WorkerLoop();
  static void RunShards(Job& job);

  std::mutex dispatch_mu_;  // one job in flight at a time

  std::mutex mu_;  // guards job_/generation_/stop_
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace cssidx

#endif  // CSSIDX_UTIL_THREAD_POOL_H_
