#ifndef CSSIDX_UTIL_RNG_H_
#define CSSIDX_UTIL_RNG_H_

#include <cstdint>

// Deterministic random number generation. Benches and tests must be
// reproducible run-to-run, so everything takes an explicit seed and we do
// not use std::random_device anywhere.

namespace cssidx {

/// PCG32 (O'Neill). Small state, good statistical quality, and cheap enough
/// that key generation never dominates a measurement.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1) | 1;
    Next();
    state_ += seed;
    Next();
  }

  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
    uint32_t rot = static_cast<uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  uint64_t Next64() { return (static_cast<uint64_t>(Next()) << 32) | Next(); }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint32_t Below(uint32_t bound) {
    uint64_t m = static_cast<uint64_t>(Next()) * bound;
    auto lo = static_cast<uint32_t>(m);
    if (lo < bound) {
      uint32_t t = -bound % bound;
      while (lo < t) {
        m = static_cast<uint64_t>(Next()) * bound;
        lo = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Uniform in [lo, hi] inclusive.
  uint32_t InRange(uint32_t lo, uint32_t hi) { return lo + Below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double NextDouble() { return Next() * (1.0 / 4294967296.0); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace cssidx

#endif  // CSSIDX_UTIL_RNG_H_
