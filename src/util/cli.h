#ifndef CSSIDX_UTIL_CLI_H_
#define CSSIDX_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>

// Minimal --flag=value / --flag value command-line parsing shared by the
// bench binaries and examples. No third-party flag library is available
// offline, and the benches only need a handful of integer/string knobs.

namespace cssidx {

class CliArgs {
 public:
  /// Parses argv. Flags look like `--name=value`, `--name value`, or bare
  /// `--name` (boolean true). Unrecognized positional arguments are ignored.
  CliArgs(int argc, char** argv);

  bool Has(const std::string& name) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def = false) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cssidx

#endif  // CSSIDX_UTIL_CLI_H_
