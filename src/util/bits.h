#ifndef CSSIDX_UTIL_BITS_H_
#define CSSIDX_UTIL_BITS_H_

#include <cstdint>

// Small integer helpers used throughout the index implementations. All are
// constexpr so compile-time node geometry (css_layout.h) can use them.

namespace cssidx {

/// True if `x` is a power of two. `IsPowerOfTwo(0)` is false.
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr int FloorLog2(uint64_t x) {
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr int CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : FloorLog2(x - 1) + 1;
}

/// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// base^exp in 64-bit arithmetic. Caller guarantees no overflow.
constexpr uint64_t IntPow(uint64_t base, int exp) {
  uint64_t r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

/// Smallest k with base^k >= x, i.e. ceil(log_base(x)), for x >= 1, base >= 2.
constexpr int CeilLogBase(uint64_t base, uint64_t x) {
  int k = 0;
  uint64_t p = 1;
  while (p < x) {
    p *= base;
    ++k;
  }
  return k;
}

/// Round `x` up to the next multiple of `align` (align > 0).
constexpr uint64_t RoundUp(uint64_t x, uint64_t align) {
  return CeilDiv(x, align) * align;
}

}  // namespace cssidx

#endif  // CSSIDX_UTIL_BITS_H_
