#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace cssidx {

RunStats Summarize(std::vector<double> samples) {
  RunStats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  size_t mid = samples.size() / 2;
  s.median = (samples.size() % 2 == 1)
                 ? samples[mid]
                 : 0.5 * (samples[mid - 1] + samples[mid]);
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double ss = 0;
  for (double v : samples) ss += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(ss / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace cssidx
