#ifndef CSSIDX_UTIL_TIMER_H_
#define CSSIDX_UTIL_TIMER_H_

#include <chrono>

namespace cssidx {

/// Monotonic wall-clock stopwatch. The paper reports wall-clock time of
/// 100,000 lookups (§6.1); benches use this, not CPU time, to match.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Nanos() const { return Seconds() * 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cssidx

#endif  // CSSIDX_UTIL_TIMER_H_
