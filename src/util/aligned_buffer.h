#ifndef CSSIDX_UTIL_ALIGNED_BUFFER_H_
#define CSSIDX_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>

// Cache-line aligned raw storage.
//
// The paper aligns the sorted array and all tree node arenas to cache-line
// boundaries (§6.2); the m=24 "bump" in Figure 12 is partly a misalignment
// artefact, which bench/ablation_alignment reproduces by deliberately
// offsetting one of these buffers.

namespace cssidx {

/// Owning, move-only buffer whose payload starts at a caller-chosen
/// alignment (default: one cache line). An optional `misalign_offset` shifts
/// the payload off that boundary by the given number of bytes — used only by
/// the alignment ablation bench.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  AlignedBuffer(size_t bytes, size_t alignment, size_t misalign_offset = 0);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::byte* data() const { return payload_; }
  size_t size() const { return bytes_; }
  bool empty() const { return bytes_ == 0; }

  template <typename T>
  T* as() const {
    return reinterpret_cast<T*>(payload_);
  }

 private:
  std::byte* raw_ = nullptr;
  std::byte* payload_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace cssidx

#endif  // CSSIDX_UTIL_ALIGNED_BUFFER_H_
