#ifndef CSSIDX_UTIL_STATS_H_
#define CSSIDX_UTIL_STATS_H_

#include <cstddef>
#include <vector>

// Aggregation of repeated measurements. The paper repeats each timing five
// times and reports the minimum (§6.1); RunStats implements exactly that
// plus the usual summaries for EXPERIMENTS.md commentary.

namespace cssidx {

struct RunStats {
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;
  size_t count = 0;
};

/// Summarize a set of repeated measurements. Empty input yields all zeros.
RunStats Summarize(std::vector<double> samples);

}  // namespace cssidx

#endif  // CSSIDX_UTIL_STATS_H_
