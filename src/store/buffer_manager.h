#ifndef CSSIDX_STORE_BUFFER_MANAGER_H_
#define CSSIDX_STORE_BUFFER_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/page.h"

// Bounded LRU frame pool over spill-backed pages.
//
// Every page access goes through Pin(): the returned PageRef holds the
// frame resident (and addressable) until it is destroyed. A pin that
// misses the pool materializes a frame — zero-filled for a page never
// evicted, read back from the column's spill file otherwise — evicting
// the least-recently-used UNPINNED frame first when the pool is at
// budget (dirty victims are written to spill before they go). Pinning
// more distinct pages than the budget while holding every pin throws:
// the budget is a hard memory ceiling, not a hint. Unbounded pools
// (buffer_pages = 0) never evict and never touch disk.
//
// Single-threaded by contract, like the engine Table that owns it:
// mutators and readers alike require external synchronization.

namespace cssidx::store {

class BufferManager;

/// RAII pin: the page's values stay addressable through data() until the
/// ref is destroyed (or released). Mark writes with MarkDirty() or the
/// eviction path will drop them.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  std::span<uint32_t> data() const;
  void MarkDirty();
  explicit operator bool() const { return bm_ != nullptr; }
  void Release();

 private:
  friend class BufferManager;
  PageRef(BufferManager* bm, void* frame) : bm_(bm), frame_(frame) {}

  BufferManager* bm_ = nullptr;
  void* frame_ = nullptr;  // Frame*, opaque to keep the type private
};

class BufferManager {
 public:
  explicit BufferManager(StoreOptions options);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Registers a column and returns its id (PageId::column). The spill
  /// file is created lazily, on the column's first eviction.
  uint32_t RegisterColumn();

  /// Pins page `id`. `create` says the caller is materializing a brand-new
  /// page (append path): the frame comes back zero-filled without
  /// consulting the spill file. Throws std::runtime_error when the budget
  /// is exhausted and every frame is pinned.
  PageRef Pin(PageId id, bool create = false);

  /// Drops resident frames of `column` with page index >= first_kept
  /// WITHOUT spilling them — the column shrank and their contents are
  /// dead. Stale spill-file bytes beyond the logical size are harmless:
  /// reads are bounded by the column's size, and re-grown pages are
  /// re-created via Pin(create) before they are ever read.
  void DropTail(uint32_t column, uint32_t first_kept);

  const BufferStats& stats() const { return stats_; }
  size_t values_per_page() const { return values_per_page_; }
  const StoreOptions& options() const { return options_; }
  /// The unique spill subdirectory (also hosts external-sort run files).
  const std::string& spill_path() const { return spill_path_; }

 private:
  friend class PageRef;

  struct Frame {
    PageId id;
    std::vector<uint32_t> values;
    bool dirty = false;
    int pins = 0;
  };
  using FrameList = std::list<Frame>;

  void Unpin(Frame* frame);
  /// Evicts the LRU unpinned frame (spilling if dirty). Throws when every
  /// frame is pinned.
  void EvictOne();
  std::FILE* SpillFile(uint32_t column);

  StoreOptions options_;
  size_t values_per_page_ = 0;
  std::string spill_path_;
  uint32_t next_column_ = 0;
  /// LRU order: front = most recent. Pinned frames stay in the list (a
  /// pin refresh moves them to front) but are skipped by eviction.
  FrameList frames_;
  std::unordered_map<PageId, FrameList::iterator, PageIdHash> frame_table_;
  /// Lazily opened spill file per column (w+b: created on first evict).
  std::unordered_map<uint32_t, std::FILE*> spill_files_;
  BufferStats stats_;
};

}  // namespace cssidx::store

#endif  // CSSIDX_STORE_BUFFER_MANAGER_H_
