#include "store/buffer_manager.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace cssidx::store {

namespace fs = std::filesystem;

namespace {

/// Distinguishes spill subdirectories of concurrently-live managers in
/// one process (the differential tests build paged tables side by side).
std::atomic<uint64_t> g_spill_serial{0};

}  // namespace

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    bm_ = other.bm_;
    frame_ = other.frame_;
    other.bm_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

std::span<uint32_t> PageRef::data() const {
  auto* frame = static_cast<BufferManager::Frame*>(frame_);
  return {frame->values.data(), frame->values.size()};
}

void PageRef::MarkDirty() {
  static_cast<BufferManager::Frame*>(frame_)->dirty = true;
}

void PageRef::Release() {
  if (bm_ != nullptr) {
    bm_->Unpin(static_cast<BufferManager::Frame*>(frame_));
    bm_ = nullptr;
    frame_ = nullptr;
  }
}

BufferManager::BufferManager(StoreOptions options)
    : options_(std::move(options)) {
  values_per_page_ = options_.page_bytes / sizeof(uint32_t);
  if (values_per_page_ == 0) values_per_page_ = 1;
  fs::path root = options_.spill_dir.empty() ? fs::temp_directory_path()
                                             : fs::path(options_.spill_dir);
  fs::path sub = root / ("cssidx_spill_" + std::to_string(::getpid()) + "_" +
                         std::to_string(g_spill_serial.fetch_add(1)));
  fs::create_directories(sub);
  spill_path_ = sub.string();
}

BufferManager::~BufferManager() {
  for (auto& [column, file] : spill_files_) {
    if (file != nullptr) std::fclose(file);
  }
  std::error_code ec;  // best effort; never throw from a destructor
  fs::remove_all(spill_path_, ec);
}

uint32_t BufferManager::RegisterColumn() { return next_column_++; }

std::FILE* BufferManager::SpillFile(uint32_t column) {
  auto it = spill_files_.find(column);
  if (it != spill_files_.end()) return it->second;
  std::string path =
      spill_path_ + "/col_" + std::to_string(column) + ".pages";
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    throw std::runtime_error("cannot create spill file " + path);
  }
  spill_files_[column] = file;
  return file;
}

void BufferManager::EvictOne() {
  // Scan from the LRU end; pinned frames are immovable.
  for (auto it = std::prev(frames_.end());; --it) {
    if (it->pins == 0) {
      if (it->dirty) {
        std::FILE* file = SpillFile(it->id.column);
        auto offset = static_cast<long>(it->id.page) *
                      static_cast<long>(values_per_page_ * sizeof(uint32_t));
        if (std::fseek(file, offset, SEEK_SET) != 0 ||
            std::fwrite(it->values.data(), sizeof(uint32_t),
                        it->values.size(), file) != it->values.size()) {
          throw std::runtime_error("spill write failed for column " +
                                   std::to_string(it->id.column));
        }
        ++stats_.spill_writes;
      }
      frame_table_.erase(it->id);
      frames_.erase(it);
      ++stats_.evictions;
      --stats_.frames;
      return;
    }
    if (it == frames_.begin()) break;
  }
  throw std::runtime_error(
      "buffer budget exhausted: all " + std::to_string(frames_.size()) +
      " frames pinned (buffer_pages = " +
      std::to_string(options_.buffer_pages) + ")");
}

PageRef BufferManager::Pin(PageId id, bool create) {
  ++stats_.pins;
  auto it = frame_table_.find(id);
  if (it != frame_table_.end()) {
    ++stats_.hits;
    // Refresh recency: splice to MRU position.
    frames_.splice(frames_.begin(), frames_, it->second);
    it->second = frames_.begin();
    // pinned counts FRAMES pinned now, not pins: bump on 0 -> 1 only.
    if (++it->second->pins == 1) ++stats_.pinned;
    return PageRef(this, &*frames_.begin());
  }
  ++stats_.faults;
  if (options_.buffer_pages != 0 && stats_.frames >= options_.buffer_pages) {
    EvictOne();
  }
  frames_.push_front(Frame{id, std::vector<uint32_t>(values_per_page_, 0u),
                           /*dirty=*/false, /*pins=*/1});
  frame_table_[id] = frames_.begin();
  ++stats_.frames;
  stats_.peak_frames = std::max(stats_.peak_frames, stats_.frames);
  ++stats_.pinned;
  if (!create) {
    // The page existed before: its bytes are in the spill file (every
    // non-resident existing page was evicted there). A short read — the
    // file was never extended this far because the page was created but
    // never evicted dirty — leaves the zero fill, which is exactly the
    // content a never-written page has.
    auto sf = spill_files_.find(id.column);
    if (sf != spill_files_.end()) {
      std::FILE* file = sf->second;
      auto offset = static_cast<long>(id.page) *
                    static_cast<long>(values_per_page_ * sizeof(uint32_t));
      if (std::fseek(file, offset, SEEK_SET) == 0) {
        size_t got = std::fread(frames_.begin()->values.data(),
                                sizeof(uint32_t), values_per_page_, file);
        (void)got;  // short read = zero tail, see above
        ++stats_.spill_reads;
      }
    }
  }
  return PageRef(this, &*frames_.begin());
}

void BufferManager::Unpin(Frame* frame) {
  if (--frame->pins == 0) --stats_.pinned;
}

void BufferManager::DropTail(uint32_t column, uint32_t first_kept) {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->id.column == column && it->id.page >= first_kept &&
        it->pins == 0) {
      frame_table_.erase(it->id);
      it = frames_.erase(it);
      --stats_.frames;
    } else {
      ++it;
    }
  }
}

}  // namespace cssidx::store
