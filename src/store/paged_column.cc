#include "store/paged_column.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cssidx::store {

void PagedColumn::Append(std::span<const uint32_t> values) {
  size_t start = size_;
  size_ += values.size();
  Write(start, values);
}

void PagedColumn::Write(size_t start, std::span<const uint32_t> values) {
  assert(start + values.size() <= size_);
  const size_t vpp = bm_->values_per_page();
  size_t done = 0;
  while (done < values.size()) {
    size_t pos = start + done;
    auto page = static_cast<uint32_t>(pos / vpp);
    size_t offset = pos % vpp;
    size_t len = std::min(vpp - offset, values.size() - done);
    // A page at or beyond pages_created_ has never existed: materialize
    // it fresh instead of probing the spill file.
    bool create = page >= pages_created_;
    PageRef ref = bm_->Pin({column_, page}, create);
    if (create) pages_created_ = page + 1;
    std::memcpy(ref.data().data() + offset, values.data() + done,
                len * sizeof(uint32_t));
    ref.MarkDirty();
    done += len;
  }
}

void PagedColumn::Read(size_t start, std::span<uint32_t> out) const {
  assert(start + out.size() <= size_);
  const size_t vpp = bm_->values_per_page();
  size_t done = 0;
  while (done < out.size()) {
    size_t pos = start + done;
    auto page = static_cast<uint32_t>(pos / vpp);
    size_t offset = pos % vpp;
    size_t len = std::min(vpp - offset, out.size() - done);
    PageRef ref = bm_->Pin({column_, page});
    std::memcpy(out.data() + done, ref.data().data() + offset,
                len * sizeof(uint32_t));
    done += len;
  }
}

uint32_t PagedColumn::Get(size_t i) const {
  uint32_t v;
  Read(i, std::span<uint32_t>(&v, 1));
  return v;
}

void PagedColumn::Truncate(size_t n) {
  assert(n <= size_);
  size_ = n;
  const size_t vpp = bm_->values_per_page();
  auto first_dead = static_cast<uint32_t>((n + vpp - 1) / vpp);
  bm_->DropTail(column_, first_dead);
  // Dead pages must be re-created (zero-filled) if the column regrows,
  // not re-read from stale spill bytes.
  pages_created_ = std::min(pages_created_, first_dead);
}

std::span<const uint32_t> ColumnCursor::NextBlock() {
  if (pos_ >= column_->size()) return {};
  // Block length: to the end of the current page — keeps every block's
  // Read a single pin — or to the end of the column.
  const size_t vpp = column_->values_per_page();
  size_t remaining = column_->size() - pos_;
  size_t len = std::min(remaining, vpp - pos_ % vpp);
  buffer_.resize(len);
  column_->Read(pos_, buffer_);
  pos_ += len;
  return {buffer_.data(), buffer_.size()};
}

}  // namespace cssidx::store
