#ifndef CSSIDX_STORE_PAGED_COLUMN_H_
#define CSSIDX_STORE_PAGED_COLUMN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "store/buffer_manager.h"

// A uint32 column stored on fixed-size pages behind a BufferManager.
//
// All access copies through short-lived pins — one page pinned at a time —
// so every operation (append, point read, range read/write, streaming
// compaction) works at ANY frame budget, including buffer_pages = 1 where
// every page touch faults. That is the correctness spine the paged
// differential suite leans on: results must be bit-identical to the
// in-RAM column no matter how small the pool is.

namespace cssidx::store {

class PagedColumn {
 public:
  /// Registers with `bm` (not owned; must outlive the column).
  explicit PagedColumn(BufferManager* bm)
      : bm_(bm), column_(bm->RegisterColumn()) {}
  PagedColumn(const PagedColumn&) = delete;
  PagedColumn& operator=(const PagedColumn&) = delete;

  size_t size() const { return size_; }
  size_t values_per_page() const { return bm_->values_per_page(); }
  size_t num_pages() const {
    size_t vpp = bm_->values_per_page();
    return (size_ + vpp - 1) / vpp;
  }

  /// Appends values at the end, growing the column.
  void Append(std::span<const uint32_t> values);

  /// Overwrites [start, start + values.size()), which must be in bounds.
  void Write(size_t start, std::span<const uint32_t> values);

  /// Copies [start, start + out.size()) into `out`; must be in bounds.
  /// Logically const: only buffer-pool state (recency, spill) moves.
  void Read(size_t start, std::span<uint32_t> out) const;

  /// Single value at `i` (one pin; use Read/cursors for bulk access).
  uint32_t Get(size_t i) const;

  /// Shrinks to `n` values (n <= size()); dead whole pages are dropped
  /// from the pool without spilling.
  void Truncate(size_t n);

 private:
  BufferManager* bm_;
  uint32_t column_;
  size_t size_ = 0;
  /// Pages ever materialized; pages >= this are created fresh (no spill
  /// read) when the column grows into them.
  uint32_t pages_created_ = 0;
};

/// Forward sequential reader: hands out page-sized value blocks, copied
/// out of a pin that is released before NextBlock returns — so a scan
/// holds zero pinned frames between calls and runs at any budget.
class ColumnCursor {
 public:
  explicit ColumnCursor(const PagedColumn& column, size_t start = 0)
      : column_(&column), pos_(start) {}

  /// The next block (at most one page of values), or an empty span at
  /// end. The span is valid until the next call.
  std::span<const uint32_t> NextBlock();
  /// Logical position of the NEXT value NextBlock would return.
  size_t position() const { return pos_; }
  bool done() const { return pos_ >= column_->size(); }

 private:
  const PagedColumn* column_;
  size_t pos_;
  std::vector<uint32_t> buffer_;
};

}  // namespace cssidx::store

#endif  // CSSIDX_STORE_PAGED_COLUMN_H_
