#ifndef CSSIDX_STORE_PAGE_H_
#define CSSIDX_STORE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

// Fixed-size-page storage primitives for out-of-core columns.
//
// The paper's §5 space argument is that only the CSS *directory* needs to
// be RAM-resident — the data it indexes does not. This layer supplies the
// missing half of that claim: column values live on fixed-size pages
// managed by a bounded BufferManager frame pool (paged_column.h,
// buffer_manager.h), spilling to disk under a configurable temp path, so
// a Table can hold n >> RAM while the directory above it stays a small
// in-memory array. The design borrows the page/cursor/catalogue shape of
// teaching RDBMSs (SimpleRA): pages are identified by (column, index),
// pinned while accessed, and evicted LRU when the frame budget is hit.

namespace cssidx::store {

/// Knobs for one BufferManager (one Table's worth of paged columns).
struct StoreOptions {
  /// Bytes per page; rounded down to a multiple of 4 (one uint32 value),
  /// minimum one value.
  size_t page_bytes = 1 << 16;
  /// Frame-pool budget in pages. 0 = unbounded: nothing ever spills and
  /// the store degenerates to a chunked in-RAM column.
  size_t buffer_pages = 0;
  /// Directory for spill files (one per column) and external-sort runs.
  /// Empty = the system temp directory. A unique subdirectory is created
  /// per BufferManager and removed with it.
  std::string spill_dir;
};

/// Identifies one page: `column` is the BufferManager-assigned column id,
/// `page` the zero-based page index within that column.
struct PageId {
  uint32_t column = 0;
  uint32_t page = 0;

  friend bool operator==(const PageId& a, const PageId& b) {
    return a.column == b.column && a.page == b.page;
  }
  /// Packed form, the frame-table hash key.
  uint64_t Packed() const {
    return (static_cast<uint64_t>(column) << 32) | page;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()(id.Packed());
  }
};

/// Buffer-pool counters. Cumulative except where noted; read them between
/// operations (the store is externally synchronized, like Table).
struct BufferStats {
  size_t pins = 0;         // Pin calls
  size_t hits = 0;         // pins served by a resident frame
  size_t faults = 0;       // pins that had to materialize a frame
  size_t spill_reads = 0;  // faults served by reading the spill file
  size_t spill_writes = 0; // dirty frames written out on eviction
  size_t evictions = 0;    // frames dropped to stay within budget
  size_t frames = 0;       // resident frames NOW
  size_t peak_frames = 0;  // high-water resident frames
  size_t pinned = 0;       // frames pinned NOW
};

}  // namespace cssidx::store

#endif  // CSSIDX_STORE_PAGE_H_
