#include "workload/lookup_gen.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"
#include "util/zipf.h"

namespace cssidx::workload {

std::vector<uint32_t> MatchingLookups(const std::vector<uint32_t>& sorted_keys,
                                      size_t count, uint64_t seed) {
  assert(!sorted_keys.empty());
  Pcg32 rng(seed);
  std::vector<uint32_t> lookups(count);
  auto n = static_cast<uint32_t>(sorted_keys.size());
  for (size_t i = 0; i < count; ++i) lookups[i] = sorted_keys[rng.Below(n)];
  return lookups;
}

std::vector<uint32_t> MissingLookups(const std::vector<uint32_t>& sorted_keys,
                                     size_t count, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint32_t> lookups;
  lookups.reserve(count);
  uint32_t max_key = sorted_keys.empty() ? 0 : sorted_keys.back();
  while (lookups.size() < count) {
    uint32_t candidate = rng.Below(max_key + 2);
    if (!std::binary_search(sorted_keys.begin(), sorted_keys.end(), candidate)) {
      lookups.push_back(candidate);
    }
  }
  return lookups;
}

std::vector<uint32_t> SkewedLookups(const std::vector<uint32_t>& sorted_keys,
                                    size_t count, double theta, uint64_t seed) {
  assert(!sorted_keys.empty());
  ZipfGenerator zipf(sorted_keys.size(), theta, seed);
  std::vector<uint32_t> lookups(count);
  for (size_t i = 0; i < count; ++i) {
    lookups[i] = sorted_keys[zipf.Next()];
  }
  return lookups;
}

std::vector<uint32_t> MixedLookups(const std::vector<uint32_t>& sorted_keys,
                                   size_t count, double hit_fraction,
                                   uint64_t seed) {
  auto hits = static_cast<size_t>(static_cast<double>(count) * hit_fraction);
  std::vector<uint32_t> lookups = MatchingLookups(sorted_keys, hits, seed);
  std::vector<uint32_t> misses =
      MissingLookups(sorted_keys, count - hits, seed ^ 0xabcdef);
  lookups.insert(lookups.end(), misses.begin(), misses.end());
  Pcg32 rng(seed ^ 0x1234);
  for (size_t i = lookups.size(); i > 1; --i) {
    std::swap(lookups[i - 1], lookups[rng.Below(static_cast<uint32_t>(i))]);
  }
  return lookups;
}

}  // namespace cssidx::workload
