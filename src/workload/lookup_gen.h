#ifndef CSSIDX_WORKLOAD_LOOKUP_GEN_H_
#define CSSIDX_WORKLOAD_LOOKUP_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Lookup key streams. §6.1: "The keys to look up are generated in advance
// to prevent the key generating time from affecting our measurements. We
// performed 100,000 searches on randomly chosen matching keys."

namespace cssidx::workload {

/// `count` keys drawn uniformly from `sorted_keys` (all lookups succeed).
std::vector<uint32_t> MatchingLookups(const std::vector<uint32_t>& sorted_keys,
                                      size_t count, uint64_t seed);

/// `count` keys guaranteed absent from `sorted_keys` (all lookups fail).
std::vector<uint32_t> MissingLookups(const std::vector<uint32_t>& sorted_keys,
                                     size_t count, uint64_t seed);

/// Matching lookups with Zipf-skewed popularity over array positions.
std::vector<uint32_t> SkewedLookups(const std::vector<uint32_t>& sorted_keys,
                                    size_t count, double theta, uint64_t seed);

/// A hit_fraction mix of matching and missing lookups, shuffled.
std::vector<uint32_t> MixedLookups(const std::vector<uint32_t>& sorted_keys,
                                   size_t count, double hit_fraction,
                                   uint64_t seed);

}  // namespace cssidx::workload

#endif  // CSSIDX_WORKLOAD_LOOKUP_GEN_H_
