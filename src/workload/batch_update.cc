#include "workload/batch_update.h"

#include <algorithm>

#include "util/rng.h"

namespace cssidx::workload {

UpdateBatch RandomBatch(const std::vector<uint32_t>& sorted_keys,
                        double fraction, uint64_t seed) {
  Pcg32 rng(seed);
  UpdateBatch batch;
  auto n = sorted_keys.size();
  auto touched = static_cast<size_t>(static_cast<double>(n) * fraction);
  size_t dels = touched / 2;
  size_t ins = touched - dels;
  for (size_t i = 0; i < dels && n > 0; ++i) {
    batch.deletes.push_back(
        sorted_keys[rng.Below(static_cast<uint32_t>(n))]);
  }
  uint32_t max_key = sorted_keys.empty() ? 1000 : sorted_keys.back();
  for (size_t i = 0; i < ins; ++i) {
    batch.inserts.push_back(rng.Below(max_key + 1000));
  }
  return batch;
}

UpdateBatch RandomBatchInRange(const std::vector<uint32_t>& sorted_keys,
                               double fraction, uint32_t lo, uint32_t hi,
                               uint64_t seed) {
  Pcg32 rng(seed);
  UpdateBatch batch;
  auto touched = static_cast<size_t>(
      static_cast<double>(sorted_keys.size()) * fraction);
  size_t dels = touched / 2;
  size_t ins = touched - dels;
  auto begin = std::lower_bound(sorted_keys.begin(), sorted_keys.end(), lo);
  auto end = std::lower_bound(sorted_keys.begin(), sorted_keys.end(), hi);
  auto in_range = static_cast<size_t>(end - begin);
  for (size_t i = 0; i < dels && in_range > 0; ++i) {
    batch.deletes.push_back(
        *(begin + rng.Below(static_cast<uint32_t>(in_range))));
  }
  uint32_t width = hi > lo ? hi - lo : 1;
  for (size_t i = 0; i < ins; ++i) {
    batch.inserts.push_back(lo + rng.Below(width));
  }
  return batch;
}

}  // namespace cssidx::workload
