#include "workload/key_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace cssidx::workload {

std::vector<uint32_t> DistinctSortedKeys(size_t n, uint64_t seed,
                                         uint32_t mean_gap) {
  assert(mean_gap >= 1);
  Pcg32 rng(seed);
  std::vector<uint32_t> keys(n);
  uint32_t cur = 0;
  uint32_t span = mean_gap * 2;  // gaps uniform in [1, 2*mean_gap)
  for (size_t i = 0; i < n; ++i) {
    uint32_t gap = mean_gap == 1 ? 1 : 1 + rng.Below(span - 1);
    cur += gap;
    keys[i] = cur;
  }
  return keys;
}

std::vector<uint32_t> LinearKeys(size_t n, uint32_t start, uint32_t stride) {
  std::vector<uint32_t> keys(n);
  uint32_t cur = start;
  for (size_t i = 0; i < n; ++i) {
    keys[i] = cur;
    cur += stride;
  }
  return keys;
}

std::vector<uint32_t> SkewedKeys(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint32_t> keys(n);
  // Quadratic stretch: position p in [0,1) maps to p^2 * range, so the
  // first half of the array is ~4x denser than linear interpolation
  // predicts. Jitter keeps keys distinct without changing the shape.
  const double range = 3.0e9;
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    double p = (static_cast<double>(i) + 1.0) / static_cast<double>(n);
    auto base = static_cast<uint32_t>(p * p * range);
    uint32_t jitter = rng.Below(3);
    uint32_t k = std::max(base + jitter, prev + 1);
    keys[i] = k;
    prev = k;
  }
  return keys;
}

std::vector<uint32_t> KeysWithDuplicates(size_t n, size_t distinct,
                                         uint64_t seed) {
  assert(distinct >= 1);
  Pcg32 rng(seed);
  std::vector<uint32_t> values = DistinctSortedKeys(distinct, seed ^ 0x9e37, 8);
  std::vector<uint32_t> keys;
  keys.reserve(n);
  // Random multiplicities; the tail is padded with the last value so the
  // total is exactly n.
  for (size_t v = 0; v < distinct && keys.size() < n; ++v) {
    size_t remaining_values = distinct - v;
    size_t remaining_slots = n - keys.size();
    size_t max_rep = std::max<size_t>(1, 2 * remaining_slots / remaining_values);
    size_t reps = 1 + rng.Below(static_cast<uint32_t>(max_rep));
    reps = std::min(reps, remaining_slots);
    keys.insert(keys.end(), reps, values[v]);
  }
  while (keys.size() < n) keys.push_back(values.back());
  return keys;
}

std::vector<uint32_t> ClusteredKeys(size_t n, size_t clusters, uint64_t seed) {
  assert(clusters >= 1);
  Pcg32 rng(seed);
  std::vector<uint32_t> keys(n);
  size_t per = n / clusters;
  uint32_t cur = 0;
  size_t idx = 0;
  for (size_t c = 0; c < clusters; ++c) {
    cur += 1u << 24;  // wide void between clusters
    size_t count = (c + 1 == clusters) ? n - idx : per;
    for (size_t i = 0; i < count; ++i) {
      cur += 1 + rng.Below(2);  // dense run
      keys[idx++] = cur;
    }
  }
  return keys;
}

}  // namespace cssidx::workload
