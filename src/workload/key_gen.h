#ifndef CSSIDX_WORKLOAD_KEY_GEN_H_
#define CSSIDX_WORKLOAD_KEY_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Sorted key array generators for the experiments in §6.
//
// The paper indexes "a sorted array of distinct integers chosen randomly"
// (§6.1) and additionally stresses interpolation search with linear and
// non-uniform distributions (§6.3). Every generator is deterministic in its
// seed.

namespace cssidx::workload {

/// Distinct, sorted, pseudo-random keys. Successive keys differ by a random
/// gap in [1, 2*mean_gap), so keys are "random" but generation is O(n) even
/// for the paper's 25M-key build experiment. mean_gap = 1 degenerates to a
/// dense 0..n-1 range.
std::vector<uint32_t> DistinctSortedKeys(size_t n, uint64_t seed,
                                         uint32_t mean_gap = 4);

/// Exactly linear keys: key[i] = start + stride * i. Interpolation search's
/// best case.
std::vector<uint32_t> LinearKeys(size_t n, uint32_t start = 0,
                                 uint32_t stride = 4);

/// Non-uniform ("behaves badly for interpolation") keys: quadratically
/// stretched so density varies by orders of magnitude across the range,
/// with random jitter. Distinct and sorted.
std::vector<uint32_t> SkewedKeys(size_t n, uint64_t seed);

/// Sorted keys with duplicates: `distinct` unique values, each repeated a
/// random number of times summing to n. Exercises the §3.6 duplicate
/// handling (leftmost-match semantics).
std::vector<uint32_t> KeysWithDuplicates(size_t n, size_t distinct,
                                         uint64_t seed);

/// Clustered keys: `clusters` dense runs separated by wide voids. Stresses
/// hash skew and interpolation search.
std::vector<uint32_t> ClusteredKeys(size_t n, size_t clusters, uint64_t seed);

}  // namespace cssidx::workload

#endif  // CSSIDX_WORKLOAD_KEY_GEN_H_
