#ifndef CSSIDX_WORKLOAD_BATCH_UPDATE_H_
#define CSSIDX_WORKLOAD_BATCH_UPDATE_H_

#include <cstdint>
#include <span>
#include <vector>

// OLAP batch maintenance (§2.2/§4.1.1): indexes are not updated in place;
// instead a batch of inserts and deletes is merged into the sorted key
// array and the directory is rebuilt from scratch. This module implements
// the merge; rebuild cost is what Figure 9 measures.

#include <algorithm>

namespace cssidx::workload {

/// One batch of inserts and deletes, templated on the key width — the
/// maintained-index lifecycle is identical for 4- and 8-byte keys.
template <typename KeyT>
struct BasicUpdateBatch {
  std::vector<KeyT> inserts;  // need not be sorted
  std::vector<KeyT> deletes;  // keys; every occurrence is removed
};

using UpdateBatch = BasicUpdateBatch<uint32_t>;
using UpdateBatch64 = BasicUpdateBatch<uint64_t>;

/// ApplyBatch for callers that already hold SORTED insert/delete lists
/// (a precondition, not checked): same semantics as ApplyBatch, no copies
/// and no re-sort. The shard-incremental refresh path routes one globally
/// sorted batch into per-shard sub-ranges and merges each through this.
template <typename KeyT>
std::vector<KeyT> ApplySortedBatch(std::span<const KeyT> sorted_keys,
                                   std::span<const KeyT> inserts,
                                   std::span<const KeyT> deletes) {
  std::vector<KeyT> survivors;
  survivors.reserve(sorted_keys.size() + inserts.size());
  for (KeyT k : sorted_keys) {
    if (!std::binary_search(deletes.begin(), deletes.end(), k)) {
      survivors.push_back(k);
    }
  }
  std::vector<KeyT> result(survivors.size() + inserts.size());
  std::merge(survivors.begin(), survivors.end(), inserts.begin(),
             inserts.end(), result.begin());
  return result;
}

/// Non-template overload so existing callers keep deducing through
/// vector-to-span conversions.
inline std::vector<uint32_t> ApplySortedBatch(
    std::span<const uint32_t> sorted_keys, std::span<const uint32_t> inserts,
    std::span<const uint32_t> deletes) {
  return ApplySortedBatch<uint32_t>(sorted_keys, inserts, deletes);
}

/// Applies `batch` to `sorted_keys` and returns the new sorted array.
/// Deletes are applied first, then inserts (so inserting a deleted key
/// keeps it). Duplicate inserts are kept — the structures support
/// duplicates per §3.6. Runs in O((n + |batch|) log |batch|).
template <typename KeyT>
std::vector<KeyT> ApplyBatch(const std::vector<KeyT>& sorted_keys,
                             const BasicUpdateBatch<KeyT>& batch) {
  std::vector<KeyT> deletes = batch.deletes;
  std::sort(deletes.begin(), deletes.end());
  std::vector<KeyT> inserts = batch.inserts;
  std::sort(inserts.begin(), inserts.end());
  return ApplySortedBatch<KeyT>(sorted_keys, inserts, deletes);
}

/// Non-template overload so existing callers keep deducing (braced
/// argument lists included).
inline std::vector<uint32_t> ApplyBatch(const std::vector<uint32_t>& sorted_keys,
                                        const UpdateBatch& batch) {
  return ApplyBatch<uint32_t>(sorted_keys, batch);
}

/// Generates a random batch touching roughly `fraction` of the keys:
/// half deletes of existing keys, half fresh inserts.
UpdateBatch RandomBatch(const std::vector<uint32_t>& sorted_keys,
                        double fraction, uint64_t seed);

/// RandomBatch confined to the key range [lo, hi): deletes drawn from the
/// existing keys inside the range (none if the range holds no keys),
/// inserts drawn uniformly inside it. `fraction` still sizes the batch
/// relative to the WHOLE array, so localized and scattered batches of the
/// same fraction are comparable. This is the maintenance bench's
/// workload: a batch whose key locality lets a "part:K/" index rebuild
/// only one or two shards.
UpdateBatch RandomBatchInRange(const std::vector<uint32_t>& sorted_keys,
                               double fraction, uint32_t lo, uint32_t hi,
                               uint64_t seed);

}  // namespace cssidx::workload

#endif  // CSSIDX_WORKLOAD_BATCH_UPDATE_H_
