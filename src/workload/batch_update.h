#ifndef CSSIDX_WORKLOAD_BATCH_UPDATE_H_
#define CSSIDX_WORKLOAD_BATCH_UPDATE_H_

#include <cstdint>
#include <vector>

// OLAP batch maintenance (§2.2/§4.1.1): indexes are not updated in place;
// instead a batch of inserts and deletes is merged into the sorted key
// array and the directory is rebuilt from scratch. This module implements
// the merge; rebuild cost is what Figure 9 measures.

namespace cssidx::workload {

struct UpdateBatch {
  std::vector<uint32_t> inserts;  // need not be sorted
  std::vector<uint32_t> deletes;  // keys; every occurrence is removed
};

/// Applies `batch` to `sorted_keys` and returns the new sorted array.
/// Deletes are applied first, then inserts (so inserting a deleted key
/// keeps it). Duplicate inserts are kept — the structures support
/// duplicates per §3.6. Runs in O((n + |batch|) log |batch|).
std::vector<uint32_t> ApplyBatch(const std::vector<uint32_t>& sorted_keys,
                                 const UpdateBatch& batch);

/// Generates a random batch touching roughly `fraction` of the keys:
/// half deletes of existing keys, half fresh inserts.
UpdateBatch RandomBatch(const std::vector<uint32_t>& sorted_keys,
                        double fraction, uint64_t seed);

}  // namespace cssidx::workload

#endif  // CSSIDX_WORKLOAD_BATCH_UPDATE_H_
