#ifndef CSSIDX_ANALYTIC_SPACE_MODEL_H_
#define CSSIDX_ANALYTIC_SPACE_MODEL_H_

#include <string>
#include <vector>

#include "analytic/params.h"

// §5.2 / Figures 7 and 8: space each method needs beyond what sequential
// access already requires.
//
//   "indirect": the structure indexes a rearrangeable RID list, so methods
//     may absorb the RIDs into their own nodes; the RID storage itself is
//     not charged (all methods share it).
//   "direct": the indexed records cannot be rearranged, so methods that
//     must keep RIDs inside their structure (T-trees) or that need a
//     separate ordered RID list anyway (hash) are charged for it.

namespace cssidx::analytic {

struct SpaceRow {
  std::string method;
  double indirect_bytes = 0;
  double direct_bytes = 0;
  bool rid_ordered_access = true;
};

/// One row per method (paper's Figure 7 order). `m` = slots per node.
std::vector<SpaceRow> SpaceModel(const Params& p, double m);

/// Individual formulas, exposed for the Figure 8 sweeps and tests.
double FullCssSpace(const Params& p, double m);
double LevelCssSpace(const Params& p, double m);
double BPlusSpace(const Params& p, double m);
double HashSpaceIndirect(const Params& p);
double HashSpaceDirect(const Params& p);
double TTreeSpaceIndirect(const Params& p, double m);
double TTreeSpaceDirect(const Params& p, double m);

}  // namespace cssidx::analytic

#endif  // CSSIDX_ANALYTIC_SPACE_MODEL_H_
