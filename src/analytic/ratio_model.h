#ifndef CSSIDX_ANALYTIC_RATIO_MODEL_H_
#define CSSIDX_ANALYTIC_RATIO_MODEL_H_

// §4.2 / Figure 5: analytic comparison of level vs full CSS-trees as a
// function of the node size m.

namespace cssidx::analytic {

/// Ratio of total comparisons, level tree over full tree:
/// (m+1) * log_m(m+1) / (m+3). Always < 1 for m >= 2 — the level tree's
/// perfect intra-node binary tree wins comparisons.
double ComparisonRatio(double m);

/// Ratio of cache accesses (= node visits = levels), level over full:
/// log_m(N) / log_{m+1}(N) = log(m+1)/log(m). Always > 1 — the level
/// tree's smaller fanout costs levels.
double CacheAccessRatio(double m);

}  // namespace cssidx::analytic

#endif  // CSSIDX_ANALYTIC_RATIO_MODEL_H_
