#include "analytic/ratio_model.h"

#include <cmath>

namespace cssidx::analytic {

double ComparisonRatio(double m) {
  double log_m_m1 = std::log(m + 1.0) / std::log(m);
  return (m + 1.0) * log_m_m1 / (m + 3.0);
}

double CacheAccessRatio(double m) {
  return std::log(m + 1.0) / std::log(m);
}

}  // namespace cssidx::analytic
