#include "analytic/time_model.h"

#include <cmath>

namespace cssidx::analytic {

namespace {

double Log2(double x) { return std::log2(x); }
double LogBase(double base, double x) {
  return std::log(x) / std::log(base);
}

}  // namespace

double MissesPerNode(double node_bytes, double line_bytes) {
  // §5.1 models a node of s cache lines as log2(s) + 1/s misses. The formula
  // only makes sense for whole lines: a node always occupies ceil(s) lines
  // (nodes are line-aligned), and anything at or under one line costs exactly
  // one miss — log2(s) would go negative for s < 1 and misrank small nodes
  // now that the advisor consumes these numbers directly.
  if (!(node_bytes > 0.0) || !(line_bytes > 0.0)) return 1.0;
  double s = std::ceil(node_bytes / line_bytes);
  if (s <= 1.0) return 1.0;
  return Log2(s) + 1.0 / s;
}

std::vector<TimeBreakdown> TimeModel(const Params& p, double m) {
  std::vector<TimeBreakdown> rows;
  const double n = p.n;
  const double node_bytes = m * p.K;
  const double per_node_misses = MissesPerNode(node_bytes, p.c);

  {
    TimeBreakdown b;
    b.method = "binary search";
    b.branching = 2;
    b.levels = Log2(n);
    b.comparisons = Log2(n);
    b.moves = Log2(n);
    b.cache_misses = Log2(n);  // poor locality: ~1 miss per comparison
    rows.push_back(b);
  }
  {
    TimeBreakdown b;
    b.method = "T-tree";
    b.branching = 2;
    b.levels = Log2(n / m) - 1;
    b.comparisons = Log2(n);
    b.moves = b.levels;
    // Only the boundary key of each node is examined on the way down, so
    // wide nodes do not reduce misses: still ~log2(n) total (§3.3) — the
    // descent visits log2(n/m) nodes but the final in-node search adds
    // log2(m) more comparisons on one or two lines; the paper models the
    // total as log2(n).
    b.cache_misses = Log2(n);
    rows.push_back(b);
  }
  {
    TimeBreakdown b;
    b.method = "B+-tree";
    b.branching = m / 2;
    b.levels = LogBase(m / 2, n / m);
    b.comparisons = Log2(n);
    b.moves = b.levels;
    b.cache_misses = LogBase(m / 2, n) * per_node_misses;
    rows.push_back(b);
  }
  {
    TimeBreakdown b;
    b.method = "full CSS-tree";
    b.branching = m + 1;
    b.levels = LogBase(m + 1, n / m);
    b.comparisons = (1.0 + 2.0 / (m + 1)) * LogBase(m + 1, m) * Log2(n);
    b.moves = b.levels;
    b.cache_misses = LogBase(m + 1, n) * per_node_misses;
    rows.push_back(b);
  }
  {
    TimeBreakdown b;
    b.method = "level CSS-tree";
    b.branching = m;
    b.levels = LogBase(m, n / m);
    b.comparisons = Log2(n);
    b.moves = b.levels;
    b.cache_misses = LogBase(m, n) * per_node_misses;
    rows.push_back(b);
  }
  return rows;
}

}  // namespace cssidx::analytic
