#ifndef CSSIDX_ANALYTIC_TIME_MODEL_H_
#define CSSIDX_ANALYTIC_TIME_MODEL_H_

#include <string>
#include <vector>

#include "analytic/params.h"

// §5.1 / Figure 6: per-lookup cost decomposition for each method, as a
// function of the number of slots per node m. Three components: key
// comparisons, cost of moving across levels (in units of the per-method
// move operation), and cache misses. The miss column switches formula when
// a node outgrows a cache line: a node of s lines costs log2(s) + 1/s
// misses per visit.

namespace cssidx::analytic {

struct TimeBreakdown {
  std::string method;
  double branching = 0;       // branching factor
  double levels = 0;          // number of levels traversed
  double comparisons = 0;     // total key comparisons
  double moves = 0;           // number of across-level moves
  double cache_misses = 0;    // expected misses per cold lookup
};

/// One row per method, in the paper's order. `m` is slots per node (so the
/// B+-tree's branching factor is m/2 and the full CSS-tree's is m+1).
std::vector<TimeBreakdown> TimeModel(const Params& p, double m);

/// Expected misses per node visit when a node spans `node_bytes` and a
/// line holds `line_bytes`: 1 if it fits, else log2(s) + 1/s (§5.1).
double MissesPerNode(double node_bytes, double line_bytes);

}  // namespace cssidx::analytic

#endif  // CSSIDX_ANALYTIC_TIME_MODEL_H_
