#include "analytic/space_model.h"

namespace cssidx::analytic {

// Figure 7 formulas, written with sc = m*K substituted where convenient.

double FullCssSpace(const Params& p, double m) {
  double sc = m * p.K;
  return p.n * p.K * p.K / sc;  // nK^2 / sc
}

double LevelCssSpace(const Params& p, double m) {
  double sc = m * p.K;
  return p.n * p.K * p.K / (sc - p.K);  // nK^2 / (sc - K)
}

double BPlusSpace(const Params& p, double m) {
  double sc = m * p.K;
  return p.n * p.K * (p.P + p.K) / (sc - p.P - p.K);  // nK(P+K)/(sc-P-K)
}

double HashSpaceIndirect(const Params& p) { return (p.h - 1.0) * p.n * p.R; }

double HashSpaceDirect(const Params& p) { return p.h * p.n * p.R; }

double TTreeSpaceIndirect(const Params& p, double m) {
  double sc = m * p.K;
  return 2.0 * p.n * p.P * (p.K + p.R) / (sc - 2.0 * p.P);
}

double TTreeSpaceDirect(const Params& p, double m) {
  return TTreeSpaceIndirect(p, m) + p.n * p.R;
}

std::vector<SpaceRow> SpaceModel(const Params& p, double m) {
  std::vector<SpaceRow> rows;
  rows.push_back({"binary search", 0, 0, true});
  rows.push_back({"interpolation search", 0, 0, true});
  rows.push_back(
      {"full CSS-tree", FullCssSpace(p, m), FullCssSpace(p, m), true});
  rows.push_back(
      {"level CSS-tree", LevelCssSpace(p, m), LevelCssSpace(p, m), true});
  rows.push_back({"B+-tree", BPlusSpace(p, m), BPlusSpace(p, m), true});
  rows.push_back(
      {"hash table", HashSpaceIndirect(p), HashSpaceDirect(p), false});
  rows.push_back({"T-tree", TTreeSpaceIndirect(p, m), TTreeSpaceDirect(p, m),
                  true});
  return rows;
}

}  // namespace cssidx::analytic
