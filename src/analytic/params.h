#ifndef CSSIDX_ANALYTIC_PARAMS_H_
#define CSSIDX_ANALYTIC_PARAMS_H_

#include <cstdint>

// Table 1: parameters of the §5 analytic models and their typical values.

namespace cssidx::analytic {

struct Params {
  double R = 4;        // bytes per record identifier
  double K = 4;        // bytes per key
  double P = 4;        // bytes per child pointer
  double n = 1e7;      // records indexed
  double h = 1.2;      // hashing fudge factor (table is 20% over raw data)
  double c = 64;       // cache line bytes
  double s = 1;        // node size in cache lines

  /// Node size in bytes.
  double NodeBytes() const { return s * c; }
  /// Key slots per node, m = sc/K.
  double SlotsPerNode() const { return NodeBytes() / K; }
};

inline Params Table1() { return Params{}; }

}  // namespace cssidx::analytic

#endif  // CSSIDX_ANALYTIC_PARAMS_H_
