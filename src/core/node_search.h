#ifndef CSSIDX_CORE_NODE_SEARCH_H_
#define CSSIDX_CORE_NODE_SEARCH_H_

#include <cstdint>

#include "core/index.h"
#include "util/macros.h"

// Intra-node search, the paper's "hard-coded if-else tests" (§6.2).
//
// Every tree method spends its comparisons inside nodes. The paper found
// that replacing a generic binary-search loop with a fully unrolled,
// specialized search made lookups 20-45% faster. We get the same effect
// portably with compile-time recursion: UnrolledLowerBound<Count> flattens
// into exactly the if-else tree the authors wrote by hand, for any node
// size and for strided layouts (B+-tree nodes interleave pointers between
// keys, stride 2).
//
// Semantics everywhere: *lower bound* — smallest index i in [0, Count) with
// keys[i * Stride] >= k, or Count if none. On ties this picks the leftmost
// slot, which is what guarantees leftmost-match routing for duplicates
// (§4.1.2).

namespace cssidx {

namespace internal_node_search {

// Below this range length, a sequential scan beats halving (§6.2: "once the
// searching range is small enough, we simply perform the test sequentially
// ... better performance when there are less than 5 keys").
inline constexpr int kSequentialThreshold = 5;

template <int Lo, int Len, int Stride, typename KeyT>
CSSIDX_ALWAYS_INLINE int UnrolledStep(const KeyT* keys, KeyT k) {
  if constexpr (Len <= 0) {
    return Lo;
  } else if constexpr (Len < kSequentialThreshold) {
    for (int i = Lo; i < Lo + Len; ++i) {
      if (keys[i * Stride] >= k) return i;
    }
    return Lo + Len;
  } else {
    constexpr int kHalf = Len / 2;
    if (keys[(Lo + kHalf) * Stride] >= k) {
      return UnrolledStep<Lo, kHalf, Stride>(keys, k);
    }
    return UnrolledStep<Lo + kHalf + 1, Len - kHalf - 1, Stride>(keys, k);
  }
}

}  // namespace internal_node_search

/// Unrolled lower bound over a fixed-size node. `Stride` is in elements:
/// 1 for densely packed keys, 2 for B+-tree interleaved key/pointer slots.
/// Works for any unsigned integer key type (K is a model parameter in §5).
template <int Count, int Stride = 1, typename KeyT = Key>
CSSIDX_ALWAYS_INLINE int UnrolledLowerBound(const KeyT* keys, KeyT k) {
  static_assert(Count >= 0);
  return internal_node_search::UnrolledStep<0, Count, Stride>(keys, k);
}

/// Generic (runtime-length) in-node lower bound: the "generic code" the
/// paper measured 20-45% slower. Kept as the ablation baseline and for
/// partial trailing leaves whose length is only known at run time.
template <typename KeyT = Key>
CSSIDX_ALWAYS_INLINE int GenericLowerBound(const KeyT* keys, int count, KeyT k,
                                           int stride = 1) {
  int lo = 0;
  int len = count;
  while (len > 0) {
    int half = len / 2;
    if (keys[(lo + half) * stride] >= k) {
      len = half;
    } else {
      lo += half + 1;
      len -= half + 1;
    }
  }
  return lo;
}

}  // namespace cssidx

#endif  // CSSIDX_CORE_NODE_SEARCH_H_
