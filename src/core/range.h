#ifndef CSSIDX_CORE_RANGE_H_
#define CSSIDX_CORE_RANGE_H_

#include <cstddef>
#include <limits>
#include <ostream>
#include <type_traits>

#include "core/index.h"

// Range-query helpers over any ordered index (§2.2: "searching an index is
// still useful for answering single value selection queries and range
// queries"; ordered access through the sorted RID list is the reason every
// method but hash keeps it). PositionRange itself lives in core/index.h —
// it is the output vocabulary of the batched range probes.
//
// All helpers work purely through LowerBound plus the underlying array, so
// they apply uniformly to binary search, trees and CSS-trees.

namespace cssidx {

inline std::ostream& operator<<(std::ostream& os, const PositionRange& r) {
  return os << "[" << r.begin << ", " << r.end << ")";
}

/// Positions of all keys equal to `k` (the §3.6 duplicate scan as a range).
/// KeyT follows the backing array; the scalar key converts to it.
template <typename IndexT, typename KeyT>
PositionRange EqualRange(const IndexT& index, const KeyT* keys, size_t n,
                         std::type_identity_t<KeyT> k) {
  size_t lo = index.LowerBound(k);
  size_t hi = lo;
  while (hi < n && keys[hi] == k) ++hi;
  return {lo, hi};
}

/// Positions of all keys in [lo_key, hi_key). KeyT is non-deduced
/// (defaults to Key): 8-byte callers write HalfOpenRange<Key64>(...).
template <typename KeyT = Key, typename IndexT>
PositionRange HalfOpenRange(const IndexT& index,
                            std::type_identity_t<KeyT> lo_key,
                            std::type_identity_t<KeyT> hi_key) {
  if (hi_key <= lo_key) return {0, 0};
  return {index.LowerBound(lo_key), index.LowerBound(hi_key)};
}

/// Positions of all keys in [lo_key, hi_key], handling hi_key = max key
/// (where the half-open trick would overflow) for any key width.
template <typename IndexT, typename KeyT>
PositionRange ClosedRange(const IndexT& index, const KeyT* keys, size_t n,
                          std::type_identity_t<KeyT> lo_key,
                          std::type_identity_t<KeyT> hi_key) {
  (void)keys;
  if (hi_key < lo_key) return {0, 0};
  size_t begin = index.LowerBound(lo_key);
  size_t end;
  if (hi_key == std::numeric_limits<KeyT>::max()) {
    end = n;
  } else {
    end = index.LowerBound(hi_key + 1);
  }
  if (end < begin) end = begin;
  return {begin, end};
}

/// Visits every (position, key) with key in [lo_key, hi_key). `fn` returns
/// void or bool; returning false stops early. Returns rows visited.
template <typename IndexT, typename KeyT, typename Fn>
size_t ScanRange(const IndexT& index, const KeyT* keys, size_t n,
                 std::type_identity_t<KeyT> lo_key,
                 std::type_identity_t<KeyT> hi_key, Fn&& fn) {
  PositionRange r = HalfOpenRange<KeyT>(index, lo_key, hi_key);
  (void)n;
  size_t visited = 0;
  for (size_t pos = r.begin; pos < r.end; ++pos) {
    ++visited;
    if constexpr (std::is_same_v<decltype(fn(pos, keys[pos])), bool>) {
      if (!fn(pos, keys[pos])) break;
    } else {
      fn(pos, keys[pos]);
    }
  }
  return visited;
}

}  // namespace cssidx

#endif  // CSSIDX_CORE_RANGE_H_
