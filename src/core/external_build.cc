#include "core/external_build.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <queue>
#include <stdexcept>
#include <utility>

namespace cssidx {

namespace {

/// One (key, RID) record; comparing the pair (key first, RID tiebreak)
/// reproduces stable sort order because RIDs are unique.
struct KeyRid {
  uint32_t key;
  uint32_t rid;
  friend bool operator<(const KeyRid& a, const KeyRid& b) {
    return a.key != b.key ? a.key < b.key : a.rid < b.rid;
  }
};

std::atomic<uint64_t> g_run_serial{0};

/// Closes and deletes the run file on every exit path.
struct RunFileGuard {
  std::FILE* file;
  std::string path;
  ~RunFileGuard() {
    if (file != nullptr) std::fclose(file);
    std::remove(path.c_str());
  }
};

/// Buffered forward reader over one run's slice of the run file.
class RunReader {
 public:
  RunReader(std::FILE* file, size_t begin_record, size_t num_records)
      : file_(file), next_record_(begin_record),
        end_record_(begin_record + num_records) {}

  bool Next(KeyRid* out) {
    if (pos_ == buffer_.size()) {
      size_t want = std::min(kBufferRecords, end_record_ - next_record_);
      if (want == 0) return false;
      buffer_.resize(want);
      auto offset = static_cast<long>(next_record_ * sizeof(KeyRid));
      if (std::fseek(file_, offset, SEEK_SET) != 0 ||
          std::fread(buffer_.data(), sizeof(KeyRid), want, file_) != want) {
        throw std::runtime_error("external sort: run read failed");
      }
      next_record_ += want;
      pos_ = 0;
    }
    *out = buffer_[pos_++];
    return true;
  }

 private:
  static constexpr size_t kBufferRecords = 4096;
  std::FILE* file_;
  size_t next_record_;
  size_t end_record_;
  std::vector<KeyRid> buffer_;
  size_t pos_ = 0;
};

}  // namespace

ExternalBuildResult ExternalSortKeys(const store::PagedColumn& column,
                                     size_t run_values,
                                     const std::string& spill_dir) {
  ExternalBuildResult result;
  const size_t n = column.size();
  run_values = std::max(run_values, column.values_per_page());

  // In-RAM fast path: one run covers the column.
  if (n <= run_values) {
    std::vector<KeyRid> pairs;
    pairs.reserve(n);
    store::ColumnCursor cursor(column);
    for (std::span<const uint32_t> block = cursor.NextBlock(); !block.empty();
         block = cursor.NextBlock()) {
      size_t base = cursor.position() - block.size();
      for (size_t i = 0; i < block.size(); ++i) {
        pairs.push_back({block[i], static_cast<uint32_t>(base + i)});
      }
    }
    std::sort(pairs.begin(), pairs.end());
    result.sorted_keys.reserve(n);
    result.rids.reserve(n);
    for (const KeyRid& p : pairs) {
      result.sorted_keys.push_back(p.key);
      result.rids.push_back(p.rid);
    }
    result.runs = n > 0 ? 1 : 0;
    return result;
  }

  // Run generation: RID-ordered slices of run_values pairs, sorted in RAM
  // and appended to one run file; run r occupies records
  // [r * run_values, ...) so no boundary table is needed.
  std::string path = spill_dir + "/extsort_" + std::to_string(::getpid()) +
                     "_" + std::to_string(g_run_serial.fetch_add(1)) +
                     ".runs";
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    throw std::runtime_error("external sort: cannot create run file " + path);
  }
  RunFileGuard guard{file, path};
  std::vector<KeyRid> pairs;
  pairs.reserve(run_values);
  size_t next_rid = 0;
  store::ColumnCursor cursor(column);
  auto flush_run = [&]() {
    std::sort(pairs.begin(), pairs.end());
    if (std::fwrite(pairs.data(), sizeof(KeyRid), pairs.size(), file) !=
        pairs.size()) {
      throw std::runtime_error("external sort: run write failed");
    }
    ++result.runs;
    pairs.clear();
  };
  for (std::span<const uint32_t> block = cursor.NextBlock(); !block.empty();
       block = cursor.NextBlock()) {
    for (uint32_t v : block) {
      pairs.push_back({v, static_cast<uint32_t>(next_rid++)});
      if (pairs.size() == run_values) flush_run();
    }
  }
  if (!pairs.empty()) flush_run();
  result.spilled = true;

  // Single-pass k-way merge: a min-heap of per-run buffered readers.
  // Reader buffers are O(runs * kBufferRecords), tiny next to the output;
  // the sorted key/RID lists themselves are the index's RAM-resident
  // representation and are the product, not working memory.
  std::vector<RunReader> readers;
  readers.reserve(result.runs);
  for (size_t r = 0; r < result.runs; ++r) {
    size_t begin = r * run_values;
    readers.emplace_back(file, begin, std::min(run_values, n - begin));
  }
  struct HeapEntry {
    KeyRid record;
    size_t run;
  };
  // Min-heap on (key, RID): invert priority_queue's max-heap order.
  auto later = [](const HeapEntry& a, const HeapEntry& b) {
    return b.record < a.record;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(later)>
      heap(later);
  KeyRid record;
  for (size_t r = 0; r < readers.size(); ++r) {
    if (readers[r].Next(&record)) heap.push({record, r});
  }
  result.sorted_keys.reserve(n);
  result.rids.reserve(n);
  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    result.sorted_keys.push_back(top.record.key);
    result.rids.push_back(top.record.rid);
    if (readers[top.run].Next(&record)) heap.push({record, top.run});
  }
  return result;
}

}  // namespace cssidx
