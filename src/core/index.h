#ifndef CSSIDX_CORE_INDEX_H_
#define CSSIDX_CORE_INDEX_H_

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

// Common vocabulary for every index in the suite.
//
// All structures index an immutable sorted array of 4-byte keys (§2.1: keys
// are domain IDs; §5: K = R = 4 bytes). The position of a key in the array
// *is* its RID: the paper's "list of record-identifiers sorted by the
// attribute" means position i of the index maps to RID list entry i.
// Indexes therefore return array positions. §5 also treats key width as a
// free parameter (a 64-byte node holds sc/K keys); Key64 is the 8-byte
// instantiation, reachable through the "css64"-style spec tokens.

namespace cssidx {

using Key = uint32_t;
using Key64 = uint64_t;

/// Returned by Find when the key is absent.
inline constexpr int64_t kNotFound = -1;

/// A half-open [begin, end) span of positions in the sorted key array —
/// the result type of every range probe. Duplicates are contiguous in a
/// sorted array, so a key's whole duplicate run is one such span:
/// {leftmost match, leftmost match + count}. An absent key yields an empty
/// span (begin == end) anchored at the key's insertion point for ordered
/// methods, or at size() for hash (which has no notion of position).
struct PositionRange {
  size_t begin = 0;  // first position in the range
  size_t end = 0;    // one past the last
  size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
  friend bool operator==(const PositionRange&, const PositionRange&) =
      default;
};

/// Every ordered index view satisfies this. The array outlives the index
/// (non-owning views, like std::string_view over the table's RID list).
template <typename T>
concept OrderedIndex = requires(const T& t, Key k) {
  { t.LowerBound(k) } -> std::same_as<size_t>;
  { t.Find(k) } -> std::same_as<int64_t>;
  { t.SpaceBytes() } -> std::same_as<size_t>;
  { t.size() } -> std::same_as<size_t>;
};

/// §3.6 duplicate handling, shared by all ordered methods: find the
/// leftmost match, then scan right. Runs against the underlying array.
template <typename IndexT, typename KeyT>
size_t CountEqual(const IndexT& index, const KeyT* keys, size_t n, KeyT k) {
  size_t pos = index.LowerBound(k);
  size_t count = 0;
  while (pos + count < n && keys[pos + count] == k) ++count;
  return count;
}

/// Shared FindBatch for tree structures whose Find is LowerBound + a
/// compare against the backing array `a[0..n)`: run the structure's
/// batched LowerBound kernel a chunk at a time (positions staged on the
/// stack), then translate hits/misses.
template <typename IndexT, typename KeyT>
void FindBatchViaLowerBound(const IndexT& index, const KeyT* a, size_t n,
                            std::span<const KeyT> keys,
                            std::span<int64_t> out) {
  constexpr size_t kChunk = 256;
  size_t pos[kChunk];
  for (size_t i = 0; i < keys.size(); i += kChunk) {
    size_t len = std::min(keys.size() - i, kChunk);
    index.LowerBoundBatch(keys.subspan(i, len), std::span<size_t>(pos, len));
    for (size_t j = 0; j < len; ++j) {
      out[i + j] = pos[j] < n && a[pos[j]] == keys[i + j]
                       ? static_cast<int64_t>(pos[j])
                       : kNotFound;
    }
  }
}

/// Shared EqualRangeBatch for ordered structures: both ends of every
/// probe's duplicate run come from the structure's own batched LowerBound
/// kernel, so range probes inherit its group probing and prefetch. For
/// integer keys lower_bound(k + 1) == upper_bound(k); the one key whose
/// successor would wrap, numeric_limits::max(), has upper bound n by
/// definition (no key exceeds it), so its end is pinned there instead.
template <typename IndexT, typename KeyT>
void EqualRangeBatchViaLowerBound(const IndexT& index, size_t n,
                                  std::span<const KeyT> keys,
                                  std::span<PositionRange> out) {
  constexpr KeyT kMax = std::numeric_limits<KeyT>::max();
  constexpr size_t kChunk = 256;
  KeyT succ[kChunk];
  size_t lo[kChunk];
  size_t hi[kChunk];
  for (size_t i = 0; i < keys.size(); i += kChunk) {
    size_t len = std::min(keys.size() - i, kChunk);
    index.LowerBoundBatch(keys.subspan(i, len), std::span<size_t>(lo, len));
    for (size_t j = 0; j < len; ++j) {
      succ[j] = keys[i + j] == kMax ? kMax : keys[i + j] + 1;
    }
    index.LowerBoundBatch(std::span<const KeyT>(succ, len),
                          std::span<size_t>(hi, len));
    for (size_t j = 0; j < len; ++j) {
      out[i + j] = PositionRange{lo[j], keys[i + j] == kMax ? n : hi[j]};
    }
  }
}

/// Shared CountEqualBatch over a structure's EqualRangeBatch kernel
/// (ranges staged on the stack, a chunk at a time).
template <typename IndexT, typename KeyT>
void CountEqualBatchViaEqualRange(const IndexT& index,
                                  std::span<const KeyT> keys,
                                  std::span<size_t> out) {
  constexpr size_t kChunk = 256;
  PositionRange ranges[kChunk];
  for (size_t i = 0; i < keys.size(); i += kChunk) {
    size_t len = std::min(keys.size() - i, kChunk);
    index.EqualRangeBatch(keys.subspan(i, len),
                          std::span<PositionRange>(ranges, len));
    for (size_t j = 0; j < len; ++j) out[i + j] = ranges[j].size();
  }
}

}  // namespace cssidx

#endif  // CSSIDX_CORE_INDEX_H_
