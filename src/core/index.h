#ifndef CSSIDX_CORE_INDEX_H_
#define CSSIDX_CORE_INDEX_H_

#include <concepts>
#include <cstddef>
#include <cstdint>

// Common vocabulary for every index in the suite.
//
// All structures index an immutable sorted array of 4-byte keys (§2.1: keys
// are domain IDs; §5: K = R = 4 bytes). The position of a key in the array
// *is* its RID: the paper's "list of record-identifiers sorted by the
// attribute" means position i of the index maps to RID list entry i.
// Indexes therefore return array positions.

namespace cssidx {

using Key = uint32_t;

/// Returned by Find when the key is absent.
inline constexpr int64_t kNotFound = -1;

/// Every ordered index view satisfies this. The array outlives the index
/// (non-owning views, like std::string_view over the table's RID list).
template <typename T>
concept OrderedIndex = requires(const T& t, Key k) {
  { t.LowerBound(k) } -> std::same_as<size_t>;
  { t.Find(k) } -> std::same_as<int64_t>;
  { t.SpaceBytes() } -> std::same_as<size_t>;
  { t.size() } -> std::same_as<size_t>;
};

/// §3.6 duplicate handling, shared by all ordered methods: find the
/// leftmost match, then scan right. Runs against the underlying array.
template <typename IndexT>
size_t CountEqual(const IndexT& index, const Key* keys, size_t n, Key k) {
  size_t pos = index.LowerBound(k);
  size_t count = 0;
  while (pos + count < n && keys[pos + count] == k) ++count;
  return count;
}

}  // namespace cssidx

#endif  // CSSIDX_CORE_INDEX_H_
