#ifndef CSSIDX_CORE_LEVEL_CSS_TREE_H_
#define CSSIDX_CORE_LEVEL_CSS_TREE_H_

#include "core/css_tree.h"
#include "util/bits.h"

// Level CSS-tree (§4.2): m a power of two, m - 1 keys per node, branching
// factor m. Trades one wasted slot per node (slightly more space, one more
// potential level) for a perfect intra-node binary search — log2(m)
// comparisons on every path instead of the skewed (1 + 2/(m+1))*log2(m) of
// the full tree — and shift-only child arithmetic.

namespace cssidx {

/// `NodeSlots` = m, the number of 4-byte slots per node (power of two).
/// The node carries m - 1 keys.
template <int NodeSlots>
using LevelCssTree = CssTree<NodeSlots, NodeSlots>;

/// Level CSS-tree over 8-byte keys.
template <int NodeSlots>
using LevelCssTree64 = BasicCssTree<uint64_t, NodeSlots, NodeSlots>;

// Level trees only make sense for power-of-two m (§4.2); enforce at the
// alias's natural uses via this helper.
template <int NodeSlots>
inline constexpr bool kValidLevelNodeSlots = IsPowerOfTwo(NodeSlots);

}  // namespace cssidx

#endif  // CSSIDX_CORE_LEVEL_CSS_TREE_H_
