#ifndef CSSIDX_CORE_FULL_CSS_TREE_H_
#define CSSIDX_CORE_FULL_CSS_TREE_H_

#include "core/css_tree.h"

// Full CSS-tree (§4.1): every slot of an m-key node carries a key and the
// branching factor is m + 1. With 4-byte keys, m = 16 makes a node exactly
// one 64-byte cache line — the sweet spot in Figures 12/13.

namespace cssidx {

/// `NodeKeys` = m, the number of keys per node.
template <int NodeKeys>
using FullCssTree = CssTree<NodeKeys, NodeKeys + 1>;

/// Full CSS-tree over 8-byte keys: same cache-line discipline, half the
/// keys per line (K doubles, so m = sc/K halves — §5's parameterization).
template <int NodeKeys>
using FullCssTree64 = BasicCssTree<uint64_t, NodeKeys, NodeKeys + 1>;

}  // namespace cssidx

#endif  // CSSIDX_CORE_FULL_CSS_TREE_H_
