#include "core/partitioned_index.h"

#include <algorithm>
#include <cassert>

#include "core/builder.h"
#include "util/thread_pool.h"

namespace cssidx {

namespace {

/// Inner kernels always run inline within their shard task: the thread
/// budget is spent dispatching shards, never nested re-sharding.
constexpr ProbeOptions kInline{.threads = 1};

/// Equi-depth cuts at s * n / K, each snapped LEFT to the start of the
/// duplicate run containing it: a run that straddled a fence would make
/// EqualRange/CountEqual see only the shard-local part of it. Snapping
/// can collapse neighboring cuts (heavy duplicates, or K > distinct
/// keys), leaving empty shards — harmless, their fences coincide and
/// routing never selects them.
///
/// Fences use the truncated representation (see fences() in the header):
/// fence s is emitted only while shard s + 1 starts inside the array.
/// Trailing empty shards — always a suffix, bases are nondecreasing —
/// get no entry at all, so no sentinel "above every key" is ever needed
/// and the scheme is key-width independent. (The previous uint64 fence
/// table pinned them at 2^32: unreachable for uint32 probes, but any
/// 64-bit key >= 2^32 would have routed PAST the last real shard into an
/// empty one and probed nothing.)
template <typename KeyT>
void ComputeCuts(const KeyT* keys, size_t n, size_t k,
                 std::vector<size_t>& bases, std::vector<KeyT>& fences) {
  bases.assign(k + 1, 0);
  bases[k] = n;
  for (size_t s = 1; s < k; ++s) {
    size_t tentative = n * s / k;
    size_t cut =
        tentative >= n
            ? n
            : static_cast<size_t>(
                  std::lower_bound(keys, keys + n, keys[tentative]) - keys);
    bases[s] = std::max(cut, bases[s - 1]);
  }
  fences.clear();
  fences.reserve(k - 1);
  for (size_t s = 1; s < k && bases[s] < n; ++s) {
    fences.push_back(keys[bases[s]]);
  }
}

}  // namespace

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::Init(const IndexSpec& spec,
                                       const KeyT* keys, size_t n,
                                       bool own_keys) {
  n_ = n;
  spec_ = spec;
  const size_t k = static_cast<size_t>(std::max(spec.partitions(), 1));
  const IndexSpec inner = spec.Inner();
  ordered_ = inner.ordered();
  ComputeCuts(keys, n, k, bases_, fences_);
  shards_.reserve(k);
  if (own_keys) owned_.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    const KeyT* base = keys + bases_[s];
    const size_t len = bases_[s + 1] - bases_[s];
    if (own_keys) {
      auto buffer =
          std::make_shared<const std::vector<KeyT>>(base, base + len);
      shards_.push_back(BuildIndexT<KeyT>(inner, buffer->data(),
                                          buffer->size()));
      owned_.push_back(std::move(buffer));
    } else {
      shards_.push_back(BuildIndexT<KeyT>(inner, base, len));
    }
  }
}

template <typename KeyT>
BasicPartitionedIndex<KeyT>::BasicPartitionedIndex(const IndexSpec& spec,
                                                   const KeyT* keys,
                                                   size_t n) {
  Init(spec, keys, n, /*own_keys=*/false);
}

template <typename KeyT>
std::shared_ptr<const BasicPartitionedIndex<KeyT>>
BasicPartitionedIndex<KeyT>::BuildOwned(const IndexSpec& spec,
                                        const KeyT* keys, size_t n) {
  auto built =
      std::shared_ptr<BasicPartitionedIndex>(new BasicPartitionedIndex());
  built->Init(spec, keys, n, /*own_keys=*/true);
  return built;
}

template <typename KeyT>
typename BasicPartitionedIndex<KeyT>::Refreshed
BasicPartitionedIndex<KeyT>::RefreshWithBatch(
    const workload::BasicUpdateBatch<KeyT>& batch) const {
  std::vector<KeyT> inserts = batch.inserts;
  std::sort(inserts.begin(), inserts.end());
  std::vector<KeyT> deletes = batch.deletes;
  std::sort(deletes.begin(), deletes.end());
  return RefreshWithSortedBatch(inserts, deletes);
}

template <typename KeyT>
typename BasicPartitionedIndex<KeyT>::Refreshed
BasicPartitionedIndex<KeyT>::RefreshWithSortedBatch(
    std::span<const KeyT> inserts, std::span<const KeyT> deletes) const {
  assert(owns_shard_keys() &&
         "RefreshWithSortedBatch requires a BuildOwned-produced index");
  const size_t k = shards_.size();

  // Split both sorted lists at the fences — the list-side mirror of
  // ShardOf's upper_bound, so slice s holds exactly the keys a probe for
  // them would route to shard s (empty shards get empty slices; shards
  // past the last real fence get everything-above, which is slice
  // fences_.size() — the same shard ShardOf routes those keys to). Keys
  // in shard s stay within [fences[s-1], fences[s]) after the merge,
  // which is the invariant that keeps probe routing exact across
  // refreshes.
  auto split = [&](std::span<const KeyT> list) {
    std::vector<size_t> cut(k + 1, list.size());
    cut[0] = 0;
    for (size_t s = 1; s < k; ++s) {
      cut[s] = s - 1 < fences_.size()
                   ? static_cast<size_t>(
                         std::lower_bound(list.begin(), list.end(),
                                          fences_[s - 1]) -
                         list.begin())
                   : list.size();
    }
    return cut;
  };
  const std::vector<size_t> ins_cut = split(inserts);
  const std::vector<size_t> del_cut = split(deletes);

  Refreshed out;
  std::vector<std::shared_ptr<const std::vector<KeyT>>> buffers(k);
  std::vector<bool> touched(k, false);
  for (size_t s = 0; s < k; ++s) {
    touched[s] = ins_cut[s + 1] > ins_cut[s] || del_cut[s + 1] > del_cut[s];
    if (!touched[s]) {
      buffers[s] = owned_[s];
      continue;
    }
    buffers[s] = std::make_shared<const std::vector<KeyT>>(
        workload::ApplySortedBatch<KeyT>(
            *owned_[s],
            inserts.subspan(ins_cut[s], ins_cut[s + 1] - ins_cut[s]),
            deletes.subspan(del_cut[s], del_cut[s + 1] - del_cut[s])));
    ++out.shards_rebuilt;
  }

  // New layout, plus the contiguous merged array snapshots publish.
  std::vector<size_t> bases(k + 1, 0);
  size_t max_len = 0;
  for (size_t s = 0; s < k; ++s) {
    bases[s + 1] = bases[s] + buffers[s]->size();
    max_len = std::max(max_len, buffers[s]->size());
  }
  const size_t total = bases[k];
  auto merged = std::make_shared<std::vector<KeyT>>();
  merged->reserve(total);
  for (const auto& buffer : buffers) {
    merged->insert(merged->end(), buffer->begin(), buffer->end());
  }
  out.merged_keys = merged;

  // Equi-depth skew gate: a drifting workload (e.g. append-heavy inserts
  // all landing in one shard) eventually concentrates the array behind a
  // few fences; rebuild with fresh cuts before routing degenerates.
  if (total > 0 && max_len * k > kRebalanceSkew * total) {
    out.index = BuildOwned(spec_, merged->data(), merged->size());
    out.shards_rebuilt = k;
    out.rebalanced = true;
    return out;
  }

  auto fresh =
      std::shared_ptr<BasicPartitionedIndex>(new BasicPartitionedIndex());
  fresh->n_ = total;
  fresh->ordered_ = ordered_;
  fresh->spec_ = spec_;
  fresh->fences_ = fences_;  // unchanged: what makes shard reuse sound
  fresh->bases_ = std::move(bases);
  const IndexSpec inner = spec_.Inner();
  fresh->shards_.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    fresh->shards_.push_back(
        touched[s] ? BuildIndexT<KeyT>(inner, buffers[s]->data(),
                                       buffers[s]->size())
                   : shards_[s]);
  }
  fresh->owned_ = std::move(buffers);
  out.index = std::move(fresh);
  return out;
}

template <typename KeyT>
bool BasicPartitionedIndex<KeyT>::ok() const {
  for (const BasicAnyIndex<KeyT>& shard : shards_) {
    if (!shard) return false;
  }
  return true;
}

template <typename KeyT>
size_t BasicPartitionedIndex<KeyT>::ShardOf(KeyT key) const {
  // First shard whose fence exceeds the probe; equal fences (empty
  // shards) are skipped as a group, landing on the shard that actually
  // starts with that key. A key at or above the last REAL fence lands on
  // shard fences_.size() — the last nonempty shard — because trailing
  // empty shards have no fence entry to route past (see fences()).
  return static_cast<size_t>(
      std::upper_bound(fences_.begin(), fences_.end(), key) -
      fences_.begin());
}

template <typename KeyT>
template <typename Out, typename ProbeFn, typename MapFn>
void BasicPartitionedIndex<KeyT>::Route(std::span<const KeyT> keys,
                                        std::span<Out> out,
                                        const ProbeOptions& opts,
                                        ProbeFn&& probe, MapFn&& map) const {
  const size_t n_probes = keys.size();
  if (n_probes == 0) return;
  const size_t k = shards_.size();
  if (k == 1) {
    probe(0, keys, out);
    for (size_t i = 0; i < n_probes; ++i) out[i] = map(size_t{0}, out[i]);
    return;
  }
  if (n_probes == 1) {
    // Scalar probes are batches of one through this hop; route the one
    // key directly instead of paying the counting sort's allocations.
    size_t s = ShardOf(keys[0]);
    probe(s, keys, out);
    out[0] = map(s, out[0]);
    return;
  }

  // Counting sort by shard: one routing pass, then bucket the probes into
  // per-shard contiguous sub-spans, remembering each probe's input slot.
  std::vector<uint32_t> shard_of(n_probes);
  std::vector<size_t> seg(k + 1, 0);
  for (size_t i = 0; i < n_probes; ++i) {
    uint32_t s = static_cast<uint32_t>(ShardOf(keys[i]));
    shard_of[i] = s;
    ++seg[s + 1];
  }
  for (size_t s = 0; s < k; ++s) seg[s + 1] += seg[s];
  std::vector<KeyT> routed(n_probes);
  std::vector<size_t> origin(n_probes);
  {
    std::vector<size_t> cursor(seg.begin(), seg.end() - 1);
    for (size_t i = 0; i < n_probes; ++i) {
      size_t at = cursor[shard_of[i]]++;
      routed[at] = keys[i];
      origin[at] = i;
    }
  }

  // Run the inner group-probe kernel shard-local, then scatter back to
  // input order with global positions. Every input slot appears in
  // exactly one shard's bucket, so shard tasks scatter to disjoint `out`
  // entries — parallel dispatch needs no merge and no synchronization
  // beyond the pool barrier.
  std::vector<Out> local(n_probes);
  auto run_shards = [&](size_t s_begin, size_t s_end) {
    for (size_t s = s_begin; s < s_end; ++s) {
      size_t len = seg[s + 1] - seg[s];
      if (len == 0) continue;
      probe(s, std::span<const KeyT>(routed.data() + seg[s], len),
            std::span<Out>(local.data() + seg[s], len));
      for (size_t j = 0; j < len; ++j) {
        out[origin[seg[s] + j]] = map(s, local[seg[s] + j]);
      }
    }
  };
  // Whole shards are the dispatch unit. Small probe spans stay inline
  // under the same threshold as ParallelProbe — a sub-threshold span
  // cannot amortize a pool wakeup no matter how it is carved up.
  if (opts.threads == 1 || n_probes <= opts.min_shard) {
    run_shards(0, k);
  } else {
    ThreadPool& pool =
        opts.pool != nullptr ? *opts.pool : ThreadPool::Shared();
    pool.ParallelFor(k, 1, opts.threads, run_shards);
  }
}

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::LowerBoundBatch(
    std::span<const KeyT> keys, std::span<size_t> out,
    const ProbeOptions& opts) const {
  if (!ordered_) {
    // Bare hash answers every LowerBound with size(); shard-local sizes
    // plus bases would fake positions the contract says do not exist.
    for (size_t i = 0; i < keys.size(); ++i) out[i] = n_;
    return;
  }
  Route(
      keys, out, opts,
      [&](size_t s, std::span<const KeyT> in, std::span<size_t> local) {
        shards_[s].LowerBoundBatch(in, local, kInline);
      },
      // Routing guarantees the global lower bound lies inside shard s
      // (everything before it is strictly below the probe's shard range),
      // so base + local position is exact — insertion points included.
      [&](size_t s, size_t pos) { return pos + bases_[s]; });
}

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::FindBatch(std::span<const KeyT> keys,
                                            std::span<int64_t> out,
                                            const ProbeOptions& opts) const {
  Route(
      keys, out, opts,
      [&](size_t s, std::span<const KeyT> in, std::span<int64_t> local) {
        shards_[s].FindBatch(in, local, kInline);
      },
      [&](size_t s, int64_t pos) {
        return pos == kNotFound ? kNotFound
                                : pos + static_cast<int64_t>(bases_[s]);
      });
}

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::EqualRangeBatch(
    std::span<const KeyT> keys, std::span<PositionRange> out,
    const ProbeOptions& opts) const {
  Route(
      keys, out, opts,
      [&](size_t s, std::span<const KeyT> in,
          std::span<PositionRange> local) {
        shards_[s].EqualRangeBatch(in, local, kInline);
      },
      // Runs never straddle fences, so the shard-local span is the whole
      // run. Hash anchors absent keys at size(), which must stay the
      // GLOBAL size, not base + shard size.
      [&](size_t s, PositionRange r) {
        if (!ordered_ && r.empty()) return PositionRange{n_, n_};
        return PositionRange{r.begin + bases_[s], r.end + bases_[s]};
      });
}

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::CountEqualBatch(
    std::span<const KeyT> keys, std::span<size_t> out,
    const ProbeOptions& opts) const {
  Route(
      keys, out, opts,
      [&](size_t s, std::span<const KeyT> in, std::span<size_t> local) {
        shards_[s].CountEqualBatch(in, local, kInline);
      },
      [](size_t, size_t count) { return count; });
}

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::LowerBoundBatch(
    std::span<const KeyT> keys, std::span<size_t> out) const {
  LowerBoundBatch(keys, out, kInline);
}

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::FindBatch(std::span<const KeyT> keys,
                                            std::span<int64_t> out) const {
  FindBatch(keys, out, kInline);
}

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::EqualRangeBatch(
    std::span<const KeyT> keys, std::span<PositionRange> out) const {
  EqualRangeBatch(keys, out, kInline);
}

template <typename KeyT>
void BasicPartitionedIndex<KeyT>::CountEqualBatch(
    std::span<const KeyT> keys, std::span<size_t> out) const {
  CountEqualBatch(keys, out, kInline);
}

template <typename KeyT>
size_t BasicPartitionedIndex<KeyT>::SpaceBytes() const {
  size_t total = fences_.capacity() * sizeof(KeyT) +
                 bases_.capacity() * sizeof(size_t) +
                 shards_.capacity() * sizeof(BasicAnyIndex<KeyT>);
  for (const BasicAnyIndex<KeyT>& shard : shards_) {
    total += shard.SpaceBytes();
  }
  // Owned (maintained-path) indexes hold a per-shard copy of the keys on
  // top of whatever contiguous array the snapshot publishes.
  for (const auto& buffer : owned_) {
    total += buffer->capacity() * sizeof(KeyT);
  }
  return total;
}

template class BasicPartitionedIndex<Key>;
template class BasicPartitionedIndex<Key64>;

template <typename KeyT>
BasicAnyIndex<KeyT> BuildPartitionedIndexT(const IndexSpec& spec,
                                           const KeyT* keys, size_t n) {
  if (!spec.partitioned() || !spec.OnMenu()) return {};
  if (spec.key_width() != static_cast<int>(sizeof(KeyT))) return {};
  auto impl = std::make_shared<BasicPartitionedIndex<KeyT>>(spec, keys, n);
  if (!impl->ok()) return {};
  return BasicAnyIndex<KeyT>(spec, std::move(impl));
}

template AnyIndex BuildPartitionedIndexT<Key>(const IndexSpec&, const Key*,
                                              size_t);
template AnyIndex64 BuildPartitionedIndexT<Key64>(const IndexSpec&,
                                                  const Key64*, size_t);

AnyIndex BuildPartitionedIndex(const IndexSpec& spec, const Key* keys,
                               size_t n) {
  return BuildPartitionedIndexT<Key>(spec, keys, n);
}

}  // namespace cssidx
