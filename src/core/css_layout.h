#ifndef CSSIDX_CORE_CSS_LAYOUT_H_
#define CSSIDX_CORE_CSS_LAYOUT_H_

#include <cstddef>
#include <cstdint>

#include "util/bits.h"

// Node-numbering arithmetic shared by full and level CSS-trees (§4.1,
// Lemma 4.1) and by the analytic space model.
//
// Nodes are numbered from 0 (the root) level by level, left to right.
// A node has `fanout` children; child j of node b is node b*fanout + 1 + j.
// Nodes occupy `stride` key slots in the directory array. Leaves are the
// sorted array itself, conceptually chopped into chunks of `stride` keys.
//
// Because leaves are kept in key order in a *separate* contiguous array
// (the sorted array is given to us and must stay sorted — §4.1), leaf node
// numbers map to array offsets through the "region switch" of Figure 3:
// leaves at the deepest level (node numbers >= mark) hold the *front* of
// the array; the leftover leaves one level up (node numbers in
// [internal_nodes, mark)) hold the *back*.
//
// The paper assumes n is a multiple of stride; we support general n by
// clamping the trailing partial leaf, which the property tests sweep
// exhaustively.

namespace cssidx {

struct CssLayout {
  size_t n = 0;       // number of keys in the sorted array
  int stride = 0;     // key slots per node
  int fanout = 0;     // children per internal node
  uint64_t num_leaves = 0;      // B = ceil(n / stride)
  int levels = 0;               // k = ceil(log_fanout(B)); directory depth
  uint64_t mark = 0;            // F = (fanout^k - 1) / (fanout - 1)
  uint64_t shallow_leaves = 0;  // S = floor((fanout^k - B) / (fanout - 1))
  uint64_t internal_nodes = 0;  // I = F - S
  uint64_t deep_leaves = 0;     // D = B - S
  uint64_t deep_end = 0;        // array length of the deep (front) region

  static CssLayout Compute(size_t n, int stride, int fanout) {
    CssLayout l;
    l.n = n;
    l.stride = stride;
    l.fanout = fanout;
    if (n == 0) return l;
    l.num_leaves = CeilDiv(n, static_cast<uint64_t>(stride));
    l.levels = CeilLogBase(static_cast<uint64_t>(fanout), l.num_leaves);
    uint64_t full = IntPow(static_cast<uint64_t>(fanout), l.levels);
    l.mark = (full - 1) / static_cast<uint64_t>(fanout - 1);
    l.shallow_leaves =
        (full - l.num_leaves) / static_cast<uint64_t>(fanout - 1);
    l.internal_nodes = l.mark - l.shallow_leaves;
    l.deep_leaves = l.num_leaves - l.shallow_leaves;
    uint64_t deep_keys = l.deep_leaves * static_cast<uint64_t>(stride);
    l.deep_end = deep_keys < n ? deep_keys : n;
    return l;
  }

  /// First array position covered by leaf node `leaf` (>= internal_nodes).
  /// May be >= n for dangling leaves (reachable only when the search key
  /// exceeds every key; callers clamp).
  int64_t LeafArrayPos(uint64_t leaf) const {
    auto diff = (static_cast<int64_t>(leaf) - static_cast<int64_t>(mark)) *
                stride;
    return diff >= 0 ? diff : static_cast<int64_t>(n) + diff;
  }

  /// Directory size in key slots.
  uint64_t DirectorySlots() const {
    return internal_nodes * static_cast<uint64_t>(stride);
  }
};

}  // namespace cssidx

#endif  // CSSIDX_CORE_CSS_LAYOUT_H_
