#ifndef CSSIDX_CORE_SIMD_NODE_SEARCH_H_
#define CSSIDX_CORE_SIMD_NODE_SEARCH_H_

#include <cstdint>
#include <type_traits>

#include "core/node_search.h"
#include "util/macros.h"

// SIMD intra-node search with runtime dispatch.
//
// The paper's §6.2 result — hard-coding the intra-node search buys 20-45%
// — is a statement about instruction-level waste once the node is cache
// resident. Vector hardware removes the next layer of that waste: instead
// of log2(m) dependent compare-and-branch steps (each a potential
// mispredict), one compare of the probe against ALL of a node's keys plus
// a horizontal count answers the search branch-free.
//
// The trick that keeps the §4.1.2 leftmost-on-ties contract for free: a
// node's keys are sorted (that is what makes binary search valid in the
// first place), so the lower-bound index — the smallest i with
// keys[i*Stride] >= k — EQUALS the number of keys strictly less than k.
// A vector compare "key < k" over every key slot, accumulated and
// horizontally summed, therefore lands on exactly the slot the scalar
// UnrolledLowerBound picks, duplicates and all. No masks to order, no
// tie-break logic: bit-identical by construction.
//
// Paths, selected once at startup and switchable for tests/benches:
//
//   kScalar  UnrolledLowerBound (node_search.h), always available.
//   kSse2    128-bit compare+accumulate, 4 keys/step. SSE2 is x86-64
//            baseline, so this is compiled into every x86-64 build.
//   kAvx2    256-bit, 8 keys/step. Only compiled when the build enables
//            AVX2 (-mavx2 / -march=native, see CSSIDX_MARCH_NATIVE in
//            CMake); otherwise a runtime request for it falls back to
//            SSE2 in the dispatch below.
//
// Detection (simd_node_search.cc) intersects CPUID capability (AVX2 needs
// the OSXSAVE/XCR0 dance — the OS must save YMM state), what this build
// compiled in, and the CSSIDX_FORCE_SCALAR environment escape hatch. The
// active path is process-global and deliberately NOT atomic: it is set at
// static init, and may be re-set by single-threaded test/bench code via
// SetNodeSearchPath while no probes are in flight (thread-pool dispatch
// edges order any later parallel readers).
//
// Strided nodes (B+-tree interleaved key/pointer slots, Stride == 2) are
// handled with even-lane shuffles rather than gathers; the kernels read
// only slots that exist in the node (proof at the Stride == 2 loads
// below). 8-byte keys get an AVX2 4-lane variant (cmpgt_epi64 with the
// 2^63 sign bias) for dense Stride == 1 nodes; strided or SSE2-only
// 8-byte shapes fall back to the scalar unrolled path via
// kHasSimdNodeSearch — bit-identical either way, so the ForcedScalar CI
// lane covers both. Dispatch is compile-time where the answer is static,
// runtime only where it is not.

#if defined(__SSE2__)
#include <emmintrin.h>
#define CSSIDX_HAVE_SSE2 1
#else
#define CSSIDX_HAVE_SSE2 0
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#define CSSIDX_HAVE_AVX2 1
#else
#define CSSIDX_HAVE_AVX2 0
#endif

namespace cssidx {

/// Widest vector path the current process will use for intra-node search.
/// Order matters: numeric comparison == capability comparison.
enum class NodeSearchPath : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// "scalar" / "sse2" / "avx2" — for bench JSON and log lines.
const char* NodeSearchPathName(NodeSearchPath path);

/// Widest path this build + CPU + environment supports: CPUID capability,
/// capped by what was compiled in, forced to kScalar when the
/// CSSIDX_FORCE_SCALAR environment variable is set (to anything but "0").
/// Computed once; cheap to call.
NodeSearchPath DetectedNodeSearchPath();

/// The path probes dispatch on right now (== Detected unless overridden).
NodeSearchPath ActiveNodeSearchPath();

/// Overrides the active path, clamped to DetectedNodeSearchPath(); returns
/// the path actually installed. For differential tests and ablation
/// benches (scalar vs SIMD in one process). Call only while no probes are
/// in flight — the variable is unsynchronized by design (see above).
NodeSearchPath SetNodeSearchPath(NodeSearchPath path);

namespace internal_node_search {

/// The active path. Zero-init (= kScalar) until the dynamic initializer
/// in simd_node_search.cc runs, so probes issued during static init are
/// safe — they just take the scalar path.
extern NodeSearchPath g_active_path;

/// True when a SIMD kernel exists for this node shape: 4-byte keys (the
/// paper's K = 4) in dense or B+-tree interleaved layout with enough keys
/// that one vector step beats the sequential scan the scalar path would
/// use anyway; or 8-byte keys in dense layout when AVX2 is compiled in
/// (4 lanes per step — SSE2's 2 lanes lose to the scalar unroll, and
/// strided 8-byte nodes don't occur on the 64-bit menu's hot path).
template <int Count, int Stride, typename KeyT>
inline constexpr bool kHasSimdNodeSearch =
    (CSSIDX_HAVE_SSE2 != 0 && std::is_same_v<KeyT, uint32_t> &&
     (Stride == 1 || Stride == 2) && Count >= 8) ||
    (CSSIDX_HAVE_AVX2 != 0 && std::is_same_v<KeyT, uint64_t> &&
     Stride == 1 && Count >= 4);

#if CSSIDX_HAVE_SSE2

CSSIDX_ALWAYS_INLINE __m128i BiasSigned128(__m128i v) {
  // SSE2 has no unsigned compare; XOR with 2^31 maps unsigned order onto
  // signed order so _mm_cmpgt_epi32 compares uint32 correctly.
  return _mm_xor_si128(v, _mm_set1_epi32(static_cast<int>(0x80000000u)));
}

/// Keys at even element offsets of two consecutive 128-bit loads,
/// compacted into one vector: [p[0], p[2], p[4], p[6]].
CSSIDX_ALWAYS_INLINE __m128i EvenLanes128(const uint32_t* p) {
  __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 4));
  return _mm_unpacklo_epi64(_mm_shuffle_epi32(a, _MM_SHUFFLE(3, 1, 2, 0)),
                            _mm_shuffle_epi32(b, _MM_SHUFFLE(3, 1, 2, 0)));
}

/// Lower bound over Count sorted keys via "count keys < k": each cmpgt
/// lane contributes -1, accumulated per lane and horizontally summed at
/// the end — no movemask, no popcount, no branches. The trailing
/// Count % 4 keys fold in as branchless scalar compares.
template <int Count, int Stride>
CSSIDX_ALWAYS_INLINE int SseLowerBound(const uint32_t* keys, uint32_t k) {
  static_assert(Stride == 1 || Stride == 2);
  const __m128i vk = BiasSigned128(_mm_set1_epi32(static_cast<int>(k)));
  __m128i acc = _mm_setzero_si128();
  int i = 0;
  for (; i + 4 <= Count; i += 4) {
    // Stride 2 reads slots [2i, 2i+7]: the last is key (i+3)'s trailing
    // pointer slot, which exists for every B+-tree node (a node stores
    // Count keys AND Count+1 pointers, so slot 2*Count is always there).
    __m128i v = Stride == 1 ? _mm_loadu_si128(
                                  reinterpret_cast<const __m128i*>(keys + i))
                            : EvenLanes128(keys + 2 * i);
    acc = _mm_add_epi32(acc, _mm_cmpgt_epi32(vk, BiasSigned128(v)));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  int less = -_mm_cvtsi128_si32(acc);
  for (; i < Count; ++i) less += keys[i * Stride] < k ? 1 : 0;
  return less;
}

/// Runtime-count twin for partial trailing leaves/chunks (dense layout
/// only — every partial leaf in the suite is a bare key array).
CSSIDX_ALWAYS_INLINE int SseLowerBoundN(const uint32_t* keys, int count,
                                        uint32_t k) {
  const __m128i vk = BiasSigned128(_mm_set1_epi32(static_cast<int>(k)));
  __m128i acc = _mm_setzero_si128();
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    acc = _mm_add_epi32(acc, _mm_cmpgt_epi32(vk, BiasSigned128(v)));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  int less = -_mm_cvtsi128_si32(acc);
  for (; i < count; ++i) less += keys[i] < k ? 1 : 0;
  return less;
}

#endif  // CSSIDX_HAVE_SSE2

#if CSSIDX_HAVE_AVX2

CSSIDX_ALWAYS_INLINE __m256i BiasSigned256(__m256i v) {
  return _mm256_xor_si256(v,
                          _mm256_set1_epi32(static_cast<int>(0x80000000u)));
}

/// 8-key step of the same count-keys-less-than-k scheme. Stride 2
/// compacts the even lanes of two 256-bit loads (16 slots -> 8 keys)
/// with one cross-lane permute each plus a 128-bit-half merge.
template <int Count, int Stride>
CSSIDX_ALWAYS_INLINE int AvxLowerBound(const uint32_t* keys, uint32_t k) {
  static_assert(Stride == 1 || Stride == 2);
  const __m256i vk = BiasSigned256(_mm256_set1_epi32(static_cast<int>(k)));
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  if constexpr (Stride == 1) {
    for (; i + 8 <= Count; i += 8) {
      __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
      acc = _mm256_add_epi32(acc, _mm256_cmpgt_epi32(vk, BiasSigned256(v)));
    }
  } else {
    const __m256i evens = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    for (; i + 8 <= Count; i += 8) {
      // Reads slots [2i, 2i+15]; slot 2*Count exists (see SseLowerBound).
      __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + 2 * i));
      __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + 2 * i + 8));
      __m256i lo = _mm256_permutevar8x32_epi32(a, evens);  // keys i..i+3
      __m256i hi = _mm256_permutevar8x32_epi32(b, evens);  // keys i+4..i+7
      __m256i v = _mm256_permute2x128_si256(lo, hi, 0x20);
      acc = _mm256_add_epi32(acc, _mm256_cmpgt_epi32(vk, BiasSigned256(v)));
    }
  }
  __m128i acc4 = _mm_add_epi32(_mm256_castsi256_si128(acc),
                               _mm256_extracti128_si256(acc, 1));
  acc4 = _mm_add_epi32(acc4, _mm_shuffle_epi32(acc4, _MM_SHUFFLE(1, 0, 3, 2)));
  acc4 = _mm_add_epi32(acc4, _mm_shuffle_epi32(acc4, _MM_SHUFFLE(2, 3, 0, 1)));
  int less = -_mm_cvtsi128_si32(acc4);
  for (; i < Count; ++i) less += keys[i * Stride] < k ? 1 : 0;
  return less;
}

CSSIDX_ALWAYS_INLINE int AvxLowerBoundN(const uint32_t* keys, int count,
                                        uint32_t k) {
  const __m256i vk = BiasSigned256(_mm256_set1_epi32(static_cast<int>(k)));
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    acc = _mm256_add_epi32(acc, _mm256_cmpgt_epi32(vk, BiasSigned256(v)));
  }
  __m128i acc4 = _mm_add_epi32(_mm256_castsi256_si128(acc),
                               _mm256_extracti128_si256(acc, 1));
  acc4 = _mm_add_epi32(acc4, _mm_shuffle_epi32(acc4, _MM_SHUFFLE(1, 0, 3, 2)));
  acc4 = _mm_add_epi32(acc4, _mm_shuffle_epi32(acc4, _MM_SHUFFLE(2, 3, 0, 1)));
  int less = -_mm_cvtsi128_si32(acc4);
  for (; i < count; ++i) less += keys[i] < k ? 1 : 0;
  return less;
}

CSSIDX_ALWAYS_INLINE __m256i BiasSigned256x64(__m256i v) {
  // Same trick one width up: XOR with 2^63 maps unsigned 64-bit order
  // onto signed order for _mm256_cmpgt_epi64.
  return _mm256_xor_si256(
      v, _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull)));
}

CSSIDX_ALWAYS_INLINE int HorizontalCount64(__m256i acc) {
  // Each 64-bit lane holds -(keys counted); sum lanes, negate.
  __m128i acc2 = _mm_add_epi64(_mm256_castsi256_si128(acc),
                               _mm256_extracti128_si256(acc, 1));
  acc2 = _mm_add_epi64(acc2, _mm_unpackhi_epi64(acc2, acc2));
  return static_cast<int>(-_mm_cvtsi128_si64(acc2));
}

/// 4-key step of the count-keys-less-than-k scheme for 8-byte keys.
/// Dense layout only (Stride == 1 enforced by kHasSimdNodeSearch).
template <int Count>
CSSIDX_ALWAYS_INLINE int Avx64LowerBound(const uint64_t* keys, uint64_t k) {
  const __m256i vk =
      BiasSigned256x64(_mm256_set1_epi64x(static_cast<long long>(k)));
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= Count; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    acc = _mm256_add_epi64(acc, _mm256_cmpgt_epi64(vk, BiasSigned256x64(v)));
  }
  int less = HorizontalCount64(acc);
  for (; i < Count; ++i) less += keys[i] < k ? 1 : 0;
  return less;
}

CSSIDX_ALWAYS_INLINE int Avx64LowerBoundN(const uint64_t* keys, int count,
                                          uint64_t k) {
  const __m256i vk =
      BiasSigned256x64(_mm256_set1_epi64x(static_cast<long long>(k)));
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    acc = _mm256_add_epi64(acc, _mm256_cmpgt_epi64(vk, BiasSigned256x64(v)));
  }
  int less = HorizontalCount64(acc);
  for (; i < count; ++i) less += keys[i] < k ? 1 : 0;
  return less;
}

#endif  // CSSIDX_HAVE_AVX2

}  // namespace internal_node_search

/// The dispatched intra-node lower bound: same contract as
/// UnrolledLowerBound (smallest i in [0, Count) with keys[i*Stride] >= k,
/// leftmost slot on ties — §4.1.2's duplicate routing depends on it), with
/// the search itself running on the widest path the process selected.
/// Node shapes without a SIMD kernel compile straight to the scalar
/// unrolled search with zero dispatch cost.
template <int Count, int Stride = 1, typename KeyT = Key>
CSSIDX_ALWAYS_INLINE int DispatchedLowerBound(const KeyT* keys, KeyT k) {
  using internal_node_search::kHasSimdNodeSearch;
  if constexpr (kHasSimdNodeSearch<Count, Stride, KeyT>) {
    const NodeSearchPath path = internal_node_search::g_active_path;
    if constexpr (std::is_same_v<KeyT, uint64_t>) {
#if CSSIDX_HAVE_AVX2
      // 8-byte keys have an AVX2 kernel only; kSse2 (and kScalar) fall
      // through to the scalar unroll below — bit-identical answers.
      if (CSSIDX_LIKELY(path == NodeSearchPath::kAvx2)) {
        return internal_node_search::Avx64LowerBound<Count>(keys, k);
      }
#endif
    } else {
#if CSSIDX_HAVE_AVX2
      if (CSSIDX_LIKELY(path == NodeSearchPath::kAvx2)) {
        return internal_node_search::AvxLowerBound<Count, Stride>(keys, k);
      }
#endif
#if CSSIDX_HAVE_SSE2
      if (path != NodeSearchPath::kScalar) {
        // A kAvx2 request in a build without AVX2 compiled in lands here:
        // SSE2 is the widest path this binary owns.
        return internal_node_search::SseLowerBound<Count, Stride>(keys, k);
      }
#endif
    }
  }
  return UnrolledLowerBound<Count, Stride, KeyT>(keys, k);
}

/// Runtime-length dispatched lower bound, for partial trailing leaves and
/// B+-tree tail chunks whose length is only known at run time. Dense
/// layouts only; non-uint32 keys and strided calls take the generic loop.
template <typename KeyT = Key>
CSSIDX_ALWAYS_INLINE int DispatchedLowerBoundN(const KeyT* keys, int count,
                                               KeyT k, int stride = 1) {
#if CSSIDX_HAVE_SSE2
  if constexpr (std::is_same_v<KeyT, uint32_t>) {
    if (stride == 1 && count >= 8) {
      const NodeSearchPath path = internal_node_search::g_active_path;
#if CSSIDX_HAVE_AVX2
      if (CSSIDX_LIKELY(path == NodeSearchPath::kAvx2)) {
        return internal_node_search::AvxLowerBoundN(keys, count, k);
      }
#endif
      if (path != NodeSearchPath::kScalar) {
        return internal_node_search::SseLowerBoundN(keys, count, k);
      }
    }
  }
#endif
#if CSSIDX_HAVE_AVX2
  if constexpr (std::is_same_v<KeyT, uint64_t>) {
    if (stride == 1 && count >= 4 &&
        internal_node_search::g_active_path == NodeSearchPath::kAvx2) {
      return internal_node_search::Avx64LowerBoundN(keys, count, k);
    }
  }
#endif
  return GenericLowerBound(keys, count, k, stride);
}

}  // namespace cssidx

#endif  // CSSIDX_CORE_SIMD_NODE_SEARCH_H_
