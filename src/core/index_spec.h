#ifndef CSSIDX_CORE_INDEX_SPEC_H_
#define CSSIDX_CORE_INDEX_SPEC_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

// IndexSpec: the value type that names an index configuration at run time.
//
// Everything outside src/core selects an index by spec — the engine's
// BuildSortIndex, the benches, the examples, and the CLIs — so the spec
// round-trips through a compact string form suitable for flags and config
// files:
//
//   spec    := ["part:" K "/"] method ["64"] [":" param] ["@t" threads]
//   method  := "bin" | "tbin" | "interp" | "ttree" | "btree" | "css"
//            | "lcss" | "hash"
//   param   := node entries (sized methods) or log2 directory size (hash)
//   K       := key-range shards of the sorted array; each shard holds an
//              independent inner index of the named method
//   threads := probe executors for batched probes; 0 = auto (one per
//              hardware thread), 1 = inline (default)
//
// e.g. "css:16" (full CSS-tree, 16 keys/node), "lcss:64", "btree:32",
// "hash:22", "css:16@t8" (same tree, batch probes sharded across 8
// threads), "part:8/css:16@t4" (sorted array split into 8 contiguous
// key-range shards, one CSS-tree per shard, batch probes routed by key
// and whole shards dispatched across 4 threads). The param defaults to
// 16 keys/node (one 64-byte cache line) and a 2^22 hash directory when
// omitted. A "64" suffix on the method token ("css64:16", "btree64:32",
// "part:4/css64:16@t2") selects 8-byte keys — the paper's §5 key-width
// parameter K: a 64-byte node holds sc/K keys, so wide keys halve the
// branching factor and shift the space/time crossover. The width is a
// structure knob like part:K; hash has no 64-bit build ("hash64" is
// off the menu). Node sizes come from a fixed menu — the sizes swept in
// Figures 12/13 — because they are template parameters underneath (§6.2
// specializes per node size). The thread suffix is an execution policy,
// not a structure knob: it changes how AnyIndex shards batched probe
// spans — point (FindBatch/LowerBoundBatch) and range (EqualRangeBatch/
// CountEqualBatch) alike — never the tree built. The part prefix IS a
// structure knob: it changes what gets built (K smaller inner indexes
// plus a fence table), while every probe still reports positions in the
// whole sorted array.

namespace cssidx {

/// The eight methods of the paper's figures. Core-internal: code outside
/// src/core addresses methods through IndexSpec.
enum class Method {
  kBinarySearch,
  kTreeBinarySearch,
  kInterpolation,
  kTTree,
  kBPlusTree,
  kFullCss,
  kLevelCss,
  kHash,
};

/// Human-readable method name, matching the figures' legends.
const char* MethodName(Method method);

class IndexSpec {
 public:
  /// Defaults to the paper's sweet spot: full CSS-tree, one cache line of
  /// keys per node.
  constexpr IndexSpec() = default;
  constexpr explicit IndexSpec(Method method) : method_(method) {}
  constexpr IndexSpec(Method method, int param) : method_(method) {
    if (method == Method::kHash) {
      hash_dir_bits_ = param;
    } else {
      node_entries_ = param;
    }
  }

  /// Parses the string grammar above. Rejects unknown methods, params on
  /// unsized methods ("bin:4"), off-menu node sizes ("css:12", "lcss:24"),
  /// and out-of-range hash directories. Accepts a few long-form aliases
  /// ("binary", "interpolation", "full-css", ...).
  static std::optional<IndexSpec> Parse(std::string_view text);

  /// Canonical string form; Parse(ToString()) reproduces the spec exactly.
  std::string ToString() const;

  /// One-line usage hint for CLIs whose --spec failed to parse.
  static const char* GrammarHelp();

  /// Figure-legend name, e.g. "full CSS-tree/m=16" or "hash/dir=2^22".
  std::string DisplayName() const;

  Method method() const { return method_; }
  /// Keys (full CSS / T-tree) or 4-byte slots (level CSS / B+-tree) per
  /// node. Meaningful only for sized methods.
  int node_entries() const { return node_entries_; }
  /// log2 of the hash directory size. Meaningful only for hash.
  int hash_dir_bits() const { return hash_dir_bits_; }
  /// Executors for batched probes through AnyIndex: 1 = inline (default),
  /// 0 = one per hardware thread, N = shard large spans N ways.
  int probe_threads() const { return probe_threads_; }
  /// Key width in bytes: 4 (default, uint32_t keys) or 8 ("css64" etc.,
  /// uint64_t keys). A structure knob — it selects which BuildIndex
  /// family the spec is buildable through.
  int key_width() const { return key_width_; }
  /// Key-range shards ("part:K/" prefix). 0 = unpartitioned (default);
  /// K >= 1 builds K contiguous equi-depth shards, each holding an inner
  /// index described by the rest of the spec.
  int partitions() const { return partitions_; }
  bool partitioned() const { return partitions_ > 0; }
  /// The per-shard inner spec: same method and knobs, no part prefix, and
  /// inline probes (parallelism lives at the shard-dispatch level, so the
  /// inner kernels never re-shard their sub-spans).
  IndexSpec Inner() const {
    return WithPartitions(0).WithProbeThreads(1);
  }

  /// False only for hash (Figure 7's "RID-Ordered Access" column).
  bool ordered() const { return method_ != Method::kHash; }
  /// True for methods with a node-size knob.
  bool sized() const;
  /// True when the configuration is buildable: node size on the menu
  /// {4, 8, 16, 24, 32, 64, 128} (level CSS: powers of two only; B+-tree:
  /// every menu size), hash_dir_bits in [0, 28], probe threads in
  /// [0, 256], partitions in [0, 256], key width 4 or 8 (hash: 4 only).
  bool OnMenu() const;

  /// Copy with a different node size / directory size (for sweeps),
  /// probe-thread policy (for scaling sweeps), shard count, or key width.
  IndexSpec WithNodeEntries(int entries) const;
  IndexSpec WithHashDirBits(int bits) const;
  IndexSpec WithProbeThreads(int threads) const;
  IndexSpec WithPartitions(int partitions) const;
  IndexSpec WithKeyWidth(int bytes) const;

  friend bool operator==(const IndexSpec& a, const IndexSpec& b) {
    if (a.method_ != b.method_) return false;
    if (a.probe_threads_ != b.probe_threads_) return false;
    if (a.partitions_ != b.partitions_) return false;
    if (a.key_width_ != b.key_width_) return false;
    if (a.method_ == Method::kHash) {
      return a.hash_dir_bits_ == b.hash_dir_bits_;
    }
    return !a.sized() || a.node_entries_ == b.node_entries_;
  }
  friend bool operator!=(const IndexSpec& a, const IndexSpec& b) {
    return !(a == b);
  }

 private:
  Method method_ = Method::kFullCss;
  int node_entries_ = 16;
  int hash_dir_bits_ = 22;
  int probe_threads_ = 1;
  int partitions_ = 0;
  int key_width_ = 4;
};

/// One spec per method in the figures' legend order, default knobs.
std::vector<IndexSpec> AllSpecs();
/// Same, with explicit knobs applied to every spec.
std::vector<IndexSpec> AllSpecs(int node_entries, int hash_dir_bits);

/// The node-size menu shared by the sized methods (Figures 12/13 sweep).
const std::vector<int>& NodeSizeMenu();

}  // namespace cssidx

#endif  // CSSIDX_CORE_INDEX_SPEC_H_
