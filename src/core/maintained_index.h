#ifndef CSSIDX_CORE_MAINTAINED_INDEX_H_
#define CSSIDX_CORE_MAINTAINED_INDEX_H_

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/any_index.h"
#include "core/index.h"
#include "core/index_spec.h"
#include "core/partitioned_index.h"
#include "workload/batch_update.h"

// Live batch maintenance behind the facade.
//
// The paper's maintenance model (§2.2, §4.1.1) is: queries run against an
// immutable read-optimized index; update batches arrive occasionally; the
// index is rebuilt rather than updated in place. MaintainedIndex wraps
// that lifecycle around *any* IndexSpec on the menu — monolithic or
// "part:K/...", 4-byte or 8-byte keys — so a live system never blocks
// readers on maintenance:
//
//   - Readers take a snapshot with one pointer copy under a micro
//     critical section (the moral equivalent of an atomic shared_ptr
//     load: libstdc++'s std::atomic<shared_ptr> spin-locks a pointer
//     slot the same way, but releases the reader's lock with a relaxed
//     RMW — formally racy, and flagged by TSan — so this class carries
//     its own mutex with orderings TSan can verify). The snapshot is an
//     immutable (keys, index) pair that stays valid, and answers the
//     full batch-probe surface, for as long as the caller holds it,
//     regardless of writer activity. Old versions die with their last
//     reader.
//   - A SINGLE writer merges each batch via workload::ApplyBatch, builds
//     the fresh version entirely off to the side, and publishes it with
//     one pointer swap. Concurrent writers must be serialized
//     externally. Readers never wait on a rebuild — only on another
//     pointer copy.
//
// For partitioned specs the full-rebuild cost is avoidable: the batch
// routes through the fence table exactly like probes do, so only the
// shards whose key range the batch touches are re-merged and rebuilt
// (PartitionedIndex::RefreshWithBatch); every untouched shard's keys and
// inner index carry over to the new version by shared ownership. Fences
// stay fixed across refreshes until equi-depth skew exceeds
// kRebalanceSkew, which triggers one full rebuild with fresh cuts.
//
// Memory: every version publishes a contiguous merged key array (what
// keys() returns and what the engine's RID lists align to); partitioned
// versions additionally hold the per-shard buffers their inner indexes
// point into, so a maintained part:K index carries ~2x the key bytes of
// a bare one — the price of capping old-version retention at the shard
// granularity instead of whole arrays.

namespace cssidx {

/// Writer-side maintenance counters (read them from the writer thread;
/// they are not synchronized with readers). One type for every key
/// width, so width-agnostic callers (the serving layer's introspection)
/// can hold a reference without caring which instantiation produced it.
struct MaintenanceStats {
  size_t batches = 0;               // ApplyBatch calls, empty included
  size_t full_rebuilds = 0;         // whole-structure rebuilds
  size_t incremental_refreshes = 0; // part:K refreshes that reused shards
  size_t shards_rebuilt = 0;        // inner rebuilds across all batches
  size_t rebalances = 0;            // skew-triggered fence recomputations
  size_t keys_inserted = 0;         // batch insert keys across all batches
  size_t keys_deleted = 0;          // batch delete keys across all batches
  size_t spec_swaps = 0;            // RebuildWithSpec publishes
};

template <typename KeyT>
class BasicMaintainedIndex {
 public:
  /// An immutable published version: the merged sorted key array plus the
  /// index built over it. For partitioned specs, partitioned() exposes
  /// the composite for structural inspection (shard identity, fences).
  class Version {
   public:
    Version(std::shared_ptr<const std::vector<KeyT>> keys,
            std::shared_ptr<const BasicPartitionedIndex<KeyT>> part,
            BasicAnyIndex<KeyT> index, uint64_t sequence = 0)
        : keys_(std::move(keys)), part_(std::move(part)),
          index_(std::move(index)), sequence_(sequence) {}
    Version(const Version&) = delete;
    Version& operator=(const Version&) = delete;

    const BasicAnyIndex<KeyT>& index() const { return index_; }
    const std::vector<KeyT>& keys() const { return *keys_; }
    /// Non-null only for partitioned specs.
    const BasicPartitionedIndex<KeyT>* partitioned() const {
      return part_.get();
    }
    /// Publish sequence number: 1 for the initial build, +1 per published
    /// refresh/rebuild. Two snapshots with equal sequence are the same
    /// version, so a reader can report which state its results are
    /// consistent-as-of — the serving layer's versioning contract.
    uint64_t sequence() const { return sequence_; }
    /// Shared ownership of the merged key array — lets a spec swap rebuild
    /// onto the same keys without copying them.
    const std::shared_ptr<const std::vector<KeyT>>& keys_ptr() const {
      return keys_;
    }

   private:
    std::shared_ptr<const std::vector<KeyT>> keys_;
    std::shared_ptr<const BasicPartitionedIndex<KeyT>> part_;
    BasicAnyIndex<KeyT> index_;
    uint64_t sequence_ = 0;
  };

  /// Nested alias for the shared counters type, kept so existing
  /// `MaintainedIndex::MaintenanceStats` spellings stay valid.
  using MaintenanceStats = cssidx::MaintenanceStats;

  /// Builds the initial version over `sorted_keys`. An off-menu spec
  /// (including one whose key width disagrees with KeyT) yields
  /// ok() == false (probing then asserts, as for a falsy AnyIndex). The
  /// index owns its key array from here on.
  BasicMaintainedIndex(const IndexSpec& spec, std::vector<KeyT> sorted_keys);

  BasicMaintainedIndex(const BasicMaintainedIndex&) = delete;
  BasicMaintainedIndex& operator=(const BasicMaintainedIndex&) = delete;

  bool ok() const { return static_cast<bool>(Snapshot()->index()); }

  /// Readers: one pointer copy; the snapshot stays valid (and immutable)
  /// for as long as the caller holds it, regardless of writer activity.
  std::shared_ptr<const Version> Snapshot() const {
    std::lock_guard<std::mutex> lock(current_mu_);
    return current_;
  }

  /// Writer: merge the batch and publish the refreshed version —
  /// shard-incrementally for partitioned specs, full rebuild otherwise.
  /// An empty batch publishes nothing. Callers must serialize writers
  /// externally (single-writer model).
  void ApplyBatch(const workload::BasicUpdateBatch<KeyT>& batch);

  /// ApplyBatch for writers that already hold SORTED insert/delete lists
  /// (a precondition, asserted in debug): same semantics, skips the
  /// defensive copy + sort — the engine's append path stages its inserts
  /// in sorted order anyway.
  void ApplySortedBatch(std::vector<KeyT> sorted_inserts,
                        std::vector<KeyT> sorted_deletes);

  /// Writer: replace the dataset outright (bulk reload — the paper's
  /// §2.2 batch lifecycle with a batch of "everything"). Publishes one
  /// fresh version (sequence +1) even when the keys are unchanged.
  void Rebuild(std::vector<KeyT> sorted_keys);

  /// Writer: hot-swap the index onto a different spec — the advisor's
  /// apply path. Rebuilds the CURRENT keys (shared, no copy) under
  /// `new_spec` (key width forced to KeyT's) and publishes one fresh
  /// version; readers keep probing the old version until the single
  /// pointer swap, exactly like a data batch. Returns false (publishing
  /// nothing) if the spec is off-menu or fails to build.
  bool RebuildWithSpec(const IndexSpec& new_spec);

  /// Turns on workload observation: every version published from here on
  /// (and the current one, republished in place with an unchanged
  /// sequence) carries the collector on its facade, so probes against
  /// serve-layer snapshots are recorded too. Single-writer context, like
  /// the other maintenance entry points. Idempotent.
  std::shared_ptr<ProbeStatsCollector> EnableStats();
  /// The collector, or nullptr when stats were never enabled.
  const std::shared_ptr<ProbeStatsCollector>& stats_collector() const {
    return stats_collector_;
  }

  // The full batch-probe surface, each call against one fresh snapshot
  // (one atomic load per batch — amortized to nothing by the batch-first
  // contract). Callers needing several ops against ONE coherent version
  // hold a Snapshot() instead. The two-argument forms follow the spec's
  // "@tN" probe-thread policy, as on AnyIndex.
  void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out) const {
    Snapshot()->index().FindBatch(keys, out);
  }
  void LowerBoundBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    Snapshot()->index().LowerBoundBatch(keys, out);
  }
  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out) const {
    Snapshot()->index().EqualRangeBatch(keys, out);
  }
  void CountEqualBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    Snapshot()->index().CountEqualBatch(keys, out);
  }
  void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out,
                 const ProbeOptions& opts) const {
    Snapshot()->index().FindBatch(keys, out, opts);
  }
  void LowerBoundBatch(std::span<const KeyT> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const {
    Snapshot()->index().LowerBoundBatch(keys, out, opts);
  }
  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out,
                       const ProbeOptions& opts) const {
    Snapshot()->index().EqualRangeBatch(keys, out, opts);
  }
  void CountEqualBatch(std::span<const KeyT> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const {
    Snapshot()->index().CountEqualBatch(keys, out, opts);
  }

  /// Scalar probes: batches of one against the current version.
  int64_t Find(KeyT k) const { return Snapshot()->index().Find(k); }
  size_t LowerBound(KeyT k) const {
    return Snapshot()->index().LowerBound(k);
  }
  PositionRange EqualRange(KeyT k) const {
    return Snapshot()->index().EqualRange(k);
  }
  size_t CountEqual(KeyT k) const {
    return Snapshot()->index().CountEqual(k);
  }

  size_t size() const { return Snapshot()->keys().size(); }
  bool SupportsOrderedAccess() const {
    return Snapshot()->index().SupportsOrderedAccess();
  }
  const IndexSpec& spec() const { return spec_; }
  const MaintenanceStats& stats() const { return stats_; }
  /// Sequence of the current version (one atomic snapshot load).
  uint64_t sequence() const { return Snapshot()->sequence(); }

 private:
  /// Non-static: stamps stats_collector_ onto the fresh version's facade.
  std::shared_ptr<const Version> MakeVersion(
      const IndexSpec& spec, std::shared_ptr<const std::vector<KeyT>> keys,
      uint64_t sequence) const;

  void Publish(std::shared_ptr<const Version> fresh) {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(fresh);
  }

  IndexSpec spec_;
  MaintenanceStats stats_;
  std::shared_ptr<ProbeStatsCollector> stats_collector_;
  /// Next publish's sequence number, minus one. Writer-side state, like
  /// stats_: only the single writer (and the constructor) touch it.
  uint64_t sequence_ = 0;
  /// Guards only the current_ pointer itself (held for one copy/swap,
  /// never across a rebuild); Version contents are immutable.
  mutable std::mutex current_mu_;
  std::shared_ptr<const Version> current_;
};

using MaintainedIndex = BasicMaintainedIndex<Key>;
using MaintainedIndex64 = BasicMaintainedIndex<Key64>;

}  // namespace cssidx

#endif  // CSSIDX_CORE_MAINTAINED_INDEX_H_
