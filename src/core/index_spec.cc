#include "core/index_spec.h"

#include <array>
#include <charconv>

#include "util/bits.h"

namespace cssidx {

namespace {

struct MethodToken {
  std::string_view token;
  Method method;
};

// Accepted aliases; ToString() emits the canonical short token.
constexpr std::array<MethodToken, 19> kTokens{{
    {"bin", Method::kBinarySearch},
    {"binary", Method::kBinarySearch},
    {"binary-search", Method::kBinarySearch},
    {"tbin", Method::kTreeBinarySearch},
    {"tree-binary", Method::kTreeBinarySearch},
    {"binary-tree", Method::kTreeBinarySearch},
    {"interp", Method::kInterpolation},
    {"interpolation", Method::kInterpolation},
    {"ttree", Method::kTTree},
    {"t-tree", Method::kTTree},
    {"btree", Method::kBPlusTree},
    {"b+tree", Method::kBPlusTree},
    {"bplus", Method::kBPlusTree},
    {"css", Method::kFullCss},
    {"full-css", Method::kFullCss},
    {"fullcss", Method::kFullCss},
    {"lcss", Method::kLevelCss},
    {"level-css", Method::kLevelCss},
    {"levelcss", Method::kLevelCss},
}};

std::string_view CanonicalToken(Method method) {
  switch (method) {
    case Method::kBinarySearch:
      return "bin";
    case Method::kTreeBinarySearch:
      return "tbin";
    case Method::kInterpolation:
      return "interp";
    case Method::kTTree:
      return "ttree";
    case Method::kBPlusTree:
      return "btree";
    case Method::kFullCss:
      return "css";
    case Method::kLevelCss:
      return "lcss";
    case Method::kHash:
      return "hash";
  }
  return "?";
}

std::optional<Method> MethodFromToken(std::string_view token) {
  if (token == "hash") return Method::kHash;
  for (const MethodToken& t : kTokens) {
    if (t.token == token) return t.method;
  }
  return std::nullopt;
}

}  // namespace

const char* MethodName(Method method) {
  switch (method) {
    case Method::kBinarySearch:
      return "array binary search";
    case Method::kTreeBinarySearch:
      return "tree binary search";
    case Method::kInterpolation:
      return "interpolation search";
    case Method::kTTree:
      return "T-tree";
    case Method::kBPlusTree:
      return "B+-tree";
    case Method::kFullCss:
      return "full CSS-tree";
    case Method::kLevelCss:
      return "level CSS-tree";
    case Method::kHash:
      return "hash";
  }
  return "?";
}

bool IndexSpec::sized() const {
  switch (method_) {
    case Method::kTTree:
    case Method::kBPlusTree:
    case Method::kFullCss:
    case Method::kLevelCss:
      return true;
    default:
      return false;
  }
}

bool IndexSpec::OnMenu() const {
  if (probe_threads_ < 0 || probe_threads_ > 256) return false;
  if (partitions_ < 0 || partitions_ > 256) return false;
  if (key_width_ != 4 && key_width_ != 8) return false;
  if (method_ == Method::kHash) {
    // No 64-bit hash build: the chained-hash bucket layout is hard-wired
    // to 4-byte keys (16 per cache line).
    if (key_width_ != 4) return false;
    return hash_dir_bits_ >= 0 && hash_dir_bits_ <= 28;
  }
  if (!sized()) return true;
  bool on_menu = false;
  for (int m : NodeSizeMenu()) on_menu = on_menu || m == node_entries_;
  if (!on_menu) return false;
  if (method_ == Method::kLevelCss) return IsPowerOfTwo(node_entries_);
  return true;
}

std::optional<IndexSpec> IndexSpec::Parse(std::string_view text) {
  // Strip one "part:K/" prefix before the method:param grammar. Exactly
  // one: a nested prefix leaves "part" as the method token of the inner
  // text, which no alias matches, so "part:2/part:4/css" is rejected
  // without a special case.
  int partitions = 0;
  constexpr std::string_view kPartPrefix = "part:";
  if (text.substr(0, kPartPrefix.size()) == kPartPrefix) {
    std::string_view rest = text.substr(kPartPrefix.size());
    auto slash = rest.find('/');
    if (slash == std::string_view::npos || slash == 0) return std::nullopt;
    std::string_view digits = rest.substr(0, slash);
    auto [end, ec] = std::from_chars(digits.data(),
                                     digits.data() + digits.size(),
                                     partitions);
    if (ec != std::errc() || end != digits.data() + digits.size()) {
      return std::nullopt;
    }
    if (partitions < 1) return std::nullopt;  // "part:0/..." is an error
    text = rest.substr(slash + 1);
    if (text.empty()) return std::nullopt;  // "part:8/" names no inner
  }
  // Split off the "@tN" execution-policy suffix before the method:param
  // grammar ("css:16@t8" -> "css:16" + threads 8).
  int threads = 1;
  if (auto at = text.find('@'); at != std::string_view::npos) {
    std::string_view suffix = text.substr(at + 1);
    text = text.substr(0, at);
    if (suffix.size() < 2 || suffix[0] != 't') return std::nullopt;
    std::string_view digits = suffix.substr(1);
    auto [end, ec] = std::from_chars(digits.data(),
                                     digits.data() + digits.size(), threads);
    if (ec != std::errc() || end != digits.data() + digits.size()) {
      return std::nullopt;
    }
  }
  std::string_view token = text;
  std::optional<int> param;
  if (auto colon = text.find(':'); colon != std::string_view::npos) {
    token = text.substr(0, colon);
    std::string_view digits = text.substr(colon + 1);
    int value = 0;
    auto [end, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc() || end != digits.data() + digits.size()) {
      return std::nullopt;
    }
    param = value;
  }
  // A trailing "64" on the method token selects 8-byte keys ("css64",
  // "binary-tree64", ...). "hash64" parses to a hash spec with width 8,
  // which OnMenu then rejects — no special case needed.
  int key_width = 4;
  if (token.size() > 2 && token.substr(token.size() - 2) == "64") {
    key_width = 8;
    token = token.substr(0, token.size() - 2);
  }
  auto method = MethodFromToken(token);
  if (!method) return std::nullopt;

  IndexSpec spec(*method);
  if (param) {
    // A param on an unsized, non-hash method is an error, not ignored.
    if (*method != Method::kHash && !spec.sized()) return std::nullopt;
    spec = IndexSpec(*method, *param);
  }
  spec = spec.WithProbeThreads(threads)
             .WithPartitions(partitions)
             .WithKeyWidth(key_width);
  if (!spec.OnMenu()) return std::nullopt;
  return spec;
}

const char* IndexSpec::GrammarHelp() {
  return "spec grammar: css:16, lcss:64, btree:32, ttree:16, bin, tbin, "
         "interp, hash:22 (node sizes from {4,8,16,24,32,64,128}; level "
         "CSS: powers of two); optional part:K/ prefix splits the sorted "
         "array into K key-range shards, one inner index each "
         "(part:8/css:16); optional @tN probes batches with N threads "
         "(css:16@t8; t0 = one per hardware thread); a 64 suffix on the "
         "method selects 8-byte keys (css64:16; no hash64)";
}

std::string IndexSpec::ToString() const {
  std::string out;
  if (partitions_ > 0) {
    out += "part:";
    out += std::to_string(partitions_);
    out += '/';
  }
  out += CanonicalToken(method_);
  if (key_width_ == 8) out += "64";
  if (method_ == Method::kHash) {
    out += ':';
    out += std::to_string(hash_dir_bits_);
  } else if (sized()) {
    out += ':';
    out += std::to_string(node_entries_);
  }
  if (probe_threads_ != 1) {
    out += "@t";
    out += std::to_string(probe_threads_);
  }
  return out;
}

std::string IndexSpec::DisplayName() const {
  std::string name = MethodName(method_);
  if (key_width_ == 8) name += "/64-bit";
  if (method_ == Method::kHash) {
    name += "/dir=2^" + std::to_string(hash_dir_bits_);
  } else if (sized()) {
    name += "/m=" + std::to_string(node_entries_);
  }
  if (partitions_ > 0) {
    name += "/parts=" + std::to_string(partitions_);
  }
  if (probe_threads_ != 1) {
    name += "/threads=";
    name += probe_threads_ == 0 ? "auto" : std::to_string(probe_threads_);
  }
  return name;
}

IndexSpec IndexSpec::WithNodeEntries(int entries) const {
  IndexSpec spec = *this;
  spec.node_entries_ = entries;
  return spec;
}

IndexSpec IndexSpec::WithHashDirBits(int bits) const {
  IndexSpec spec = *this;
  spec.hash_dir_bits_ = bits;
  return spec;
}

IndexSpec IndexSpec::WithProbeThreads(int threads) const {
  IndexSpec spec = *this;
  spec.probe_threads_ = threads;
  return spec;
}

IndexSpec IndexSpec::WithPartitions(int partitions) const {
  IndexSpec spec = *this;
  spec.partitions_ = partitions;
  return spec;
}

IndexSpec IndexSpec::WithKeyWidth(int bytes) const {
  IndexSpec spec = *this;
  spec.key_width_ = bytes;
  return spec;
}

std::vector<IndexSpec> AllSpecs() {
  std::vector<IndexSpec> specs;
  for (Method m : {Method::kBinarySearch, Method::kTreeBinarySearch,
                   Method::kInterpolation, Method::kTTree, Method::kBPlusTree,
                   Method::kFullCss, Method::kLevelCss, Method::kHash}) {
    specs.push_back(IndexSpec(m));
  }
  return specs;
}

std::vector<IndexSpec> AllSpecs(int node_entries, int hash_dir_bits) {
  std::vector<IndexSpec> specs;
  for (IndexSpec spec : AllSpecs()) {
    specs.push_back(
        spec.WithNodeEntries(node_entries).WithHashDirBits(hash_dir_bits));
  }
  return specs;
}

const std::vector<int>& NodeSizeMenu() {
  static const std::vector<int> menu{4, 8, 16, 24, 32, 64, 128};
  return menu;
}

}  // namespace cssidx
