#ifndef CSSIDX_CORE_PROBE_STATS_H_
#define CSSIDX_CORE_PROBE_STATS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

// ProbeStatsCollector: the advisor's eyes. An opt-in, per-index bundle of
// atomic counters fed by the AnyIndex probe funnel (every probe — scalar or
// batched, any thread policy — passes through the explicit-policy batch
// methods) and by MaintainedIndex's maintenance path. Recording costs one
// relaxed fetch_add per *batch* plus an O(batch) scan of results the caller
// just wrote (still cache-hot), so an attached collector does not perturb
// the workload it measures. Readers on many threads may record
// concurrently; Profile() takes a relaxed snapshot — counters are
// monotonic, and the advisor only consumes ratios, so torn cross-counter
// reads at worst smear one batch.

namespace cssidx {

/// A plain-value snapshot of everything the collector has seen, with the
/// derived ratios the advisor scores on. Copyable, no atomics.
struct WorkloadProfile {
  /// Log2 batch-size histogram: bucket b counts batches with
  /// 2^b <= size < 2^(b+1) (bucket 0 = scalar probes of one).
  static constexpr size_t kBatchBuckets = 24;
  std::array<uint64_t, kBatchBuckets> batch_hist{};

  uint64_t point_probes = 0;        // FindBatch keys
  uint64_t lower_bound_probes = 0;  // LowerBoundBatch keys
  uint64_t range_probes = 0;        // EqualRangeBatch + CountEqualBatch keys
  uint64_t probe_batches = 0;       // batch calls across all probe kinds
  /// Probes that missed, out of the kinds where a miss is observable
  /// (Find -> kNotFound, EqualRange -> empty span, CountEqual -> 0;
  /// LowerBound has no miss notion).
  uint64_t misses = 0;

  uint64_t update_batches = 0;
  uint64_t keys_inserted = 0;
  uint64_t keys_deleted = 0;
  /// Sum over update batches of (batch key span / full key range), in
  /// millionths — feeds the part:K touched-shards estimate.
  uint64_t update_span_millionths = 0;

  uint64_t TotalProbes() const {
    return point_probes + lower_bound_probes + range_probes;
  }
  /// Share of probes that want a duplicate run, not a single position.
  double RangeFraction() const {
    uint64_t t = TotalProbes();
    return t == 0 ? 0.0 : static_cast<double>(range_probes) / t;
  }
  /// Share of miss-observable probes that hit. 1.0 when nothing observed.
  double HitFraction() const {
    uint64_t observable = point_probes + range_probes;
    if (observable == 0) return 1.0;
    return 1.0 - static_cast<double>(std::min(misses, observable)) /
                     static_cast<double>(observable);
  }
  double MeanBatch() const {
    return probe_batches == 0
               ? 0.0
               : static_cast<double>(TotalProbes()) / probe_batches;
  }
  /// Mean fraction of the table's key range one update batch spans —
  /// ~0 for localized (append-ish) updates, ~1 for uniform scatter.
  double MeanUpdateSpanFraction() const {
    if (update_batches == 0) return 0.0;
    return static_cast<double>(update_span_millionths) / 1e6 / update_batches;
  }
  /// Updated keys per probe: >~0.01 starts to matter for rebuild cost.
  double UpdateRate() const {
    uint64_t t = TotalProbes();
    uint64_t u = keys_inserted + keys_deleted;
    if (t == 0) return u == 0 ? 0.0 : 1.0;
    return static_cast<double>(u) / t;
  }
};

/// The live counters. Attach one (shared_ptr) to an AnyIndex facade — every
/// copy of the facade, including the snapshots MaintainedIndex publishes,
/// shares the same collector, so stats accumulate across version swaps.
class ProbeStatsCollector {
 public:
  static constexpr size_t kBatchBuckets = WorkloadProfile::kBatchBuckets;

  void RecordFind(size_t batch, size_t missed) {
    RecordBatch(batch);
    point_probes_.fetch_add(batch, std::memory_order_relaxed);
    if (missed != 0) misses_.fetch_add(missed, std::memory_order_relaxed);
  }
  void RecordLowerBound(size_t batch) {
    RecordBatch(batch);
    lower_bound_probes_.fetch_add(batch, std::memory_order_relaxed);
  }
  void RecordRange(size_t batch, size_t missed) {
    RecordBatch(batch);
    range_probes_.fetch_add(batch, std::memory_order_relaxed);
    if (missed != 0) misses_.fetch_add(missed, std::memory_order_relaxed);
  }
  /// One maintenance batch. `span_fraction` = (batch max key - batch min
  /// key) / (full key range), clamped to [0, 1] by the caller's arithmetic
  /// being in key space; 0 when either range is empty.
  void RecordUpdate(size_t inserted, size_t deleted, double span_fraction) {
    update_batches_.fetch_add(1, std::memory_order_relaxed);
    if (inserted != 0) {
      keys_inserted_.fetch_add(inserted, std::memory_order_relaxed);
    }
    if (deleted != 0) {
      keys_deleted_.fetch_add(deleted, std::memory_order_relaxed);
    }
    double clamped = std::clamp(span_fraction, 0.0, 1.0);
    update_span_millionths_.fetch_add(static_cast<uint64_t>(clamped * 1e6),
                                      std::memory_order_relaxed);
  }

  WorkloadProfile Profile() const {
    WorkloadProfile p;
    for (size_t b = 0; b < kBatchBuckets; ++b) {
      p.batch_hist[b] = batch_hist_[b].load(std::memory_order_relaxed);
    }
    p.point_probes = point_probes_.load(std::memory_order_relaxed);
    p.lower_bound_probes = lower_bound_probes_.load(std::memory_order_relaxed);
    p.range_probes = range_probes_.load(std::memory_order_relaxed);
    p.probe_batches = probe_batches_.load(std::memory_order_relaxed);
    p.misses = misses_.load(std::memory_order_relaxed);
    p.update_batches = update_batches_.load(std::memory_order_relaxed);
    p.keys_inserted = keys_inserted_.load(std::memory_order_relaxed);
    p.keys_deleted = keys_deleted_.load(std::memory_order_relaxed);
    p.update_span_millionths =
        update_span_millionths_.load(std::memory_order_relaxed);
    return p;
  }

  void Reset() {
    for (auto& b : batch_hist_) b.store(0, std::memory_order_relaxed);
    point_probes_.store(0, std::memory_order_relaxed);
    lower_bound_probes_.store(0, std::memory_order_relaxed);
    range_probes_.store(0, std::memory_order_relaxed);
    probe_batches_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    update_batches_.store(0, std::memory_order_relaxed);
    keys_inserted_.store(0, std::memory_order_relaxed);
    keys_deleted_.store(0, std::memory_order_relaxed);
    update_span_millionths_.store(0, std::memory_order_relaxed);
  }

 private:
  void RecordBatch(size_t batch) {
    if (batch == 0) return;  // empty spans are legal no-ops, not workload
    size_t bucket = std::min<size_t>(std::bit_width(batch) - 1,
                                     kBatchBuckets - 1);
    batch_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
    probe_batches_.fetch_add(1, std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, kBatchBuckets> batch_hist_{};
  std::atomic<uint64_t> point_probes_{0};
  std::atomic<uint64_t> lower_bound_probes_{0};
  std::atomic<uint64_t> range_probes_{0};
  std::atomic<uint64_t> probe_batches_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> update_batches_{0};
  std::atomic<uint64_t> keys_inserted_{0};
  std::atomic<uint64_t> keys_deleted_{0};
  std::atomic<uint64_t> update_span_millionths_{0};
};

}  // namespace cssidx

#endif  // CSSIDX_CORE_PROBE_STATS_H_
