#ifndef CSSIDX_CORE_VERSIONED_INDEX_H_
#define CSSIDX_CORE_VERSIONED_INDEX_H_

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "core/index.h"
#include "workload/batch_update.h"

// Read-optimized concurrency for the OLAP rebuild story.
//
// The paper's maintenance model (§2.3, §4.1.1) is: queries run against an
// immutable index; batch updates arrive occasionally; the index is rebuilt
// from scratch. In a live system readers must not block while the writer
// rebuilds, so we version the (keys, directory) pair behind an atomic
// shared_ptr: readers grab a snapshot (one atomic load), the writer merges
// the batch, builds a fresh version off to the side, and publishes it with
// one atomic store. Old versions die when their last reader drops them.
//
// Single writer, any number of readers. IndexT is any index in the suite
// constructible from (const Key*, size_t).

namespace cssidx {

template <typename IndexT>
class VersionedIndex {
 public:
  /// An immutable (keys, index) pair. The index's non-owning view points
  /// at `keys`, which lives and dies with the same Version object.
  class Version {
   public:
    explicit Version(std::vector<Key> keys)
        : keys_(std::move(keys)), index_(keys_.data(), keys_.size()) {}
    Version(const Version&) = delete;
    Version& operator=(const Version&) = delete;

    const IndexT& index() const { return index_; }
    const std::vector<Key>& keys() const { return keys_; }

   private:
    std::vector<Key> keys_;
    IndexT index_;
  };

  explicit VersionedIndex(std::vector<Key> sorted_keys)
      : current_(std::make_shared<const Version>(std::move(sorted_keys))) {}

  /// Readers: one atomic load; the snapshot stays valid (and immutable)
  /// for as long as the caller holds it, regardless of writer activity.
  std::shared_ptr<const Version> Snapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Convenience point lookup against the current version.
  int64_t Find(Key k) const { return Snapshot()->index().Find(k); }
  size_t LowerBound(Key k) const { return Snapshot()->index().LowerBound(k); }

  /// Writer: merge the batch and publish a rebuilt version. Callers must
  /// serialize writers externally (single-writer model).
  void ApplyBatch(const workload::UpdateBatch& batch) {
    auto old = Snapshot();
    auto merged = workload::ApplyBatch(old->keys(), batch);
    auto fresh = std::make_shared<const Version>(std::move(merged));
    current_.store(std::move(fresh), std::memory_order_release);
  }

  /// Replace the dataset outright (bulk reload).
  void Rebuild(std::vector<Key> sorted_keys) {
    current_.store(std::make_shared<const Version>(std::move(sorted_keys)),
                   std::memory_order_release);
  }

  size_t size() const { return Snapshot()->keys().size(); }

 private:
  std::atomic<std::shared_ptr<const Version>> current_;
};

}  // namespace cssidx

#endif  // CSSIDX_CORE_VERSIONED_INDEX_H_
