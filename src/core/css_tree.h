#ifndef CSSIDX_CORE_CSS_TREE_H_
#define CSSIDX_CORE_CSS_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/css_layout.h"
#include "core/index.h"
#include "core/node_search.h"
#include "core/simd_node_search.h"
#include "util/aligned_buffer.h"
#include "util/macros.h"

// Cache-Sensitive Search Trees (§4), the paper's contribution.
//
// One engine implements both variants; they differ only in how many of a
// node's `Stride` key slots carry routing keys:
//
//   Full CSS-tree  (§4.1): Fanout = Stride + 1. All Stride slots are keys.
//   Level CSS-tree (§4.2): Fanout = Stride, Stride a power of two. Only
//     Stride - 1 slots are keys, so the intra-node search is a *perfect*
//     binary tree (log2(Stride) comparisons on every path). The spare slot
//     stores the largest key of the node's last branch, which turns the
//     build-time "descend the rightmost path to find a subtree's max" walk
//     into a single array read — exactly the trick in §4.2 that makes level
//     trees cheaper to build (Figure 9).
//
// In both cases internal nodes carry Fanout - 1 keys: key j is the largest
// key in the subtree of child j. Child j of node b is node b*Fanout + 1 + j
// — no pointers are stored anywhere (§4.1's offset arithmetic). Routing
// takes the *first* branch whose key is >= the probe, which lands on the
// leftmost match under duplicates (§4.1.2).
//
// `KeyT` is any unsigned integer type; the §5 model treats the key width K
// as a parameter, and wider keys simply mean fewer keys per cache line
// (pick Stride = line_bytes / sizeof(KeyT)).

namespace cssidx {

template <typename KeyT, int Stride, int Fanout>
class BasicCssTree {
  static_assert(Stride >= 2, "a node must hold at least two keys");
  static_assert(Fanout == Stride + 1 || Fanout == Stride,
                "full (Stride+1) or level (Stride) trees only");

 public:
  using key_type = KeyT;
  static constexpr int kStride = Stride;
  static constexpr int kFanout = Fanout;
  static constexpr int kInternalKeys = Fanout - 1;
  static constexpr bool kHasSpareSlot = kInternalKeys < Stride;
  /// Probes descended in lockstep by the batch kernels: enough concurrent
  /// streams to hide one node-fetch latency behind the group's compares.
  static constexpr size_t kGroupProbes = 8;

  /// Builds the directory over `keys[0..n)`, which must be sorted and must
  /// outlive this object (the tree stores no copy of the data — that is the
  /// point of the structure).
  ///
  /// `misalign_offset` shifts the directory off its cache-line alignment by
  /// that many bytes. It exists only for the alignment ablation bench
  /// (reproducing the Figure 12 bump analysis); leave it 0.
  BasicCssTree(const KeyT* keys, size_t n, size_t misalign_offset = 0)
      : a_(keys), n_(n), misalign_offset_(misalign_offset) {
    Build();
  }
  explicit BasicCssTree(const std::vector<KeyT>& keys)
      : BasicCssTree(keys.data(), keys.size()) {}

  BasicCssTree(BasicCssTree&&) noexcept = default;
  BasicCssTree& operator=(BasicCssTree&&) noexcept = default;

  /// First position p with a_[p] >= k, or size() if none (oracle-equivalent
  /// to std::lower_bound on the array).
  size_t LowerBound(KeyT k) const {
    if (CSSIDX_UNLIKELY(n_ == 0)) return 0;
    uint64_t d = 0;
    const uint64_t internal = layout_.internal_nodes;
    const KeyT* dir = dir_keys_;
    while (d < internal) {
      const KeyT* node = dir + d * Stride;
      int j = DispatchedLowerBound<kInternalKeys, 1, KeyT>(node, k);
      d = d * Fanout + 1 + static_cast<uint64_t>(j);
    }
    return SearchLeaf(d, k);
  }

  /// Position of the leftmost occurrence of `k`, or kNotFound.
  int64_t Find(KeyT k) const {
    size_t pos = LowerBound(k);
    if (pos < n_ && a_[pos] == k) return static_cast<int64_t>(pos);
    return kNotFound;
  }

  /// §3.6: number of occurrences of `k` (leftmost match + rightward scan).
  size_t CountEqual(KeyT k) const {
    size_t pos = LowerBound(k);
    size_t count = 0;
    while (pos + count < n_ && a_[pos + count] == k) ++count;
    return count;
  }

  /// Batched LowerBound: group probing with software prefetch. Probes are
  /// processed kGroupProbes at a time, descending level-synchronously; as
  /// soon as a probe's next node is known its cache line is prefetched, so
  /// the miss it would stall on overlaps the intra-node searches of the
  /// other probes in the group. Results are identical to scalar LowerBound.
  void LowerBoundBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    assert(out.size() >= keys.size());
    const size_t count = keys.size();
    if (CSSIDX_UNLIKELY(n_ == 0)) {
      for (size_t i = 0; i < count; ++i) out[i] = 0;
      return;
    }
    const uint64_t internal = layout_.internal_nodes;
    const KeyT* dir = dir_keys_;
    size_t i = 0;
    for (; i + kGroupProbes <= count; i += kGroupProbes) {
      uint64_t d[kGroupProbes] = {};
      if (internal > 0) {
        bool descending = true;
        while (descending) {
          descending = false;
          for (size_t g = 0; g < kGroupProbes; ++g) {
            if (d[g] >= internal) continue;
            const KeyT* node = dir + d[g] * Stride;
            int j = DispatchedLowerBound<kInternalKeys, 1, KeyT>(
                node, keys[i + g]);
            d[g] = d[g] * Fanout + 1 + static_cast<uint64_t>(j);
            if (d[g] < internal) {
              CSSIDX_PREFETCH(dir + d[g] * Stride);
              descending = true;
            } else {
              CSSIDX_PREFETCH(a_ + LeafRange(d[g]).first);
            }
          }
        }
      }
      for (size_t g = 0; g < kGroupProbes; ++g) {
        out[i + g] = SearchLeaf(d[g], keys[i + g]);
      }
    }
    for (; i < count; ++i) out[i] = LowerBound(keys[i]);
  }

  /// Batched Find over the same group-probing kernel.
  void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out) const {
    assert(out.size() >= keys.size());
    FindBatchViaLowerBound(*this, a_, n_, keys, out);
  }

  /// Batched EqualRange (§3.6 duplicate runs): both bounds of every run
  /// descend through the group-probing LowerBound kernel, so a batch of
  /// range probes costs two prefetch-overlapped descents per probe instead
  /// of a descent plus an O(duplicates) rightward scan.
  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out) const {
    assert(out.size() >= keys.size());
    EqualRangeBatchViaLowerBound(*this, n_, keys, out);
  }

  /// Batched CountEqual over the same range kernel.
  void CountEqualBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    assert(out.size() >= keys.size());
    CountEqualBatchViaEqualRange(*this, keys, out);
  }

  /// LowerBound with generic (runtime-loop) intra-node searches instead of
  /// the unrolled ones — the "generic code" §6.2 found 20-45% slower. Kept
  /// for the node-search ablation bench; results are identical.
  size_t LowerBoundGeneric(KeyT k) const {
    if (CSSIDX_UNLIKELY(n_ == 0)) return 0;
    uint64_t d = 0;
    const uint64_t internal = layout_.internal_nodes;
    const KeyT* dir = dir_keys_;
    while (d < internal) {
      const KeyT* node = dir + d * Stride;
      int j = GenericLowerBound(node, kInternalKeys, k);
      d = d * Fanout + 1 + static_cast<uint64_t>(j);
    }
    auto [lo, hi] = LeafRange(d);
    int j = GenericLowerBound(a_ + lo, static_cast<int>(hi - lo), k);
    return lo + static_cast<size_t>(j);
  }

  /// Replays the exact memory reference stream of LowerBound(k) into a
  /// tracer (used by the cache simulator benches). Touches each *compared*
  /// key, which reproduces the partial-node access pattern the §5 model
  /// assumes for nodes larger than a cache line.
  template <typename Tracer>
  size_t LowerBoundTraced(KeyT k, const Tracer& tracer) const {
    if (n_ == 0) return 0;
    uint64_t d = 0;
    const uint64_t internal = layout_.internal_nodes;
    while (d < internal) {
      const KeyT* node = dir_keys_ + d * Stride;
      int j = TracedLowerBound(node, kInternalKeys, k, tracer);
      d = d * Fanout + 1 + static_cast<uint64_t>(j);
    }
    auto [lo, hi] = LeafRange(d);
    int j = TracedLowerBound(a_ + lo, static_cast<int>(hi - lo), k, tracer);
    return lo + static_cast<size_t>(j);
  }

  /// Directory bytes (the structure's only space cost beyond the array).
  size_t SpaceBytes() const {
    return layout_.DirectorySlots() * sizeof(KeyT);
  }

  size_t size() const { return n_; }
  const CssLayout& layout() const { return layout_; }
  const KeyT* directory() const { return dir_keys_; }

 private:
  void Build() {
    layout_ = CssLayout::Compute(n_, Stride, Fanout);
    const uint64_t internal = layout_.internal_nodes;
    if (internal == 0) return;
    dir_buf_ = AlignedBuffer(internal * Stride * sizeof(KeyT),
                             kCacheLineBytes, misalign_offset_);
    dir_keys_ = dir_buf_.as<KeyT>();
    // Fill right-to-left so that, for level trees, every child's spare slot
    // is complete before its parent reads it (children have larger node
    // numbers than their parent).
    for (int64_t i = static_cast<int64_t>(internal) * Stride - 1; i >= 0;
         --i) {
      auto d = static_cast<uint64_t>(i) / Stride;
      int slot = static_cast<int>(static_cast<uint64_t>(i) % Stride);
      // Entry `slot` routes child `slot`; the spare slot (level trees only)
      // caches the max of the *last* branch.
      int branch = (kHasSpareSlot && slot == Stride - 1) ? Fanout - 1 : slot;
      uint64_t child = d * Fanout + 1 + static_cast<uint64_t>(branch);
      dir_keys_[i] = SubtreeMax(child);
    }
  }

  /// Largest key in the subtree rooted at `node`, clamped for dangling
  /// subtrees (Algorithm 4.1's duplicate-fill of ancestors of the last
  /// deepest-level leaf).
  KeyT SubtreeMax(uint64_t node) const {
    const uint64_t internal = layout_.internal_nodes;
    if constexpr (kHasSpareSlot) {
      if (node < internal) return dir_keys_[node * Stride + Stride - 1];
    } else {
      while (node < internal) {
        node = node * Fanout + Fanout;  // rightmost branch (§4.1.1)
      }
    }
    return LeafMax(node);
  }

  KeyT LeafMax(uint64_t leaf) const {
    int64_t pos = layout_.LeafArrayPos(leaf);
    if (leaf >= layout_.mark) {
      // Deep leaf: front region of the array.
      auto deep_end = static_cast<int64_t>(layout_.deep_end);
      if (pos >= deep_end) return a_[deep_end - 1];  // dangling subtree
      int64_t end = pos + Stride < deep_end ? pos + Stride : deep_end;
      return a_[end - 1];
    }
    // Shallow leaf: back region; always non-empty.
    auto limit = static_cast<int64_t>(n_);
    int64_t end = pos + Stride < limit ? pos + Stride : limit;
    return a_[end - 1];
  }

  /// [lo, hi) array range of a (possibly partial or dangling) leaf.
  std::pair<size_t, size_t> LeafRange(uint64_t leaf) const {
    int64_t pos = layout_.LeafArrayPos(leaf);
    auto limit = static_cast<int64_t>(n_);
    int64_t lo = pos < limit ? pos : limit;
    int64_t hi = pos + Stride < limit ? pos + Stride : limit;
    return {static_cast<size_t>(lo), static_cast<size_t>(hi)};
  }

  CSSIDX_ALWAYS_INLINE size_t SearchLeaf(uint64_t leaf, KeyT k) const {
    auto [lo, hi] = LeafRange(leaf);
    int j;
    if (CSSIDX_LIKELY(hi - lo == Stride)) {
      j = DispatchedLowerBound<Stride, 1, KeyT>(a_ + lo, k);
    } else {
      // Partial trailing leaf: runtime length, same dispatched contract.
      j = DispatchedLowerBoundN(a_ + lo, static_cast<int>(hi - lo), k);
    }
    return lo + static_cast<size_t>(j);
  }

  template <typename Tracer>
  static int TracedLowerBound(const KeyT* keys, int count, KeyT k,
                              const Tracer& tracer) {
    int lo = 0;
    int len = count;
    while (len > 0) {
      int half = len / 2;
      tracer.Touch(keys + lo + half, sizeof(KeyT));
      if (keys[lo + half] >= k) {
        len = half;
      } else {
        lo += half + 1;
        len -= half + 1;
      }
    }
    return lo;
  }

  const KeyT* a_ = nullptr;
  size_t n_ = 0;
  size_t misalign_offset_ = 0;
  CssLayout layout_;
  AlignedBuffer dir_buf_;
  KeyT* dir_keys_ = nullptr;
};

/// The paper's configuration: 4-byte keys (domain IDs, §2.1).
template <int Stride, int Fanout>
using CssTree = BasicCssTree<Key, Stride, Fanout>;

}  // namespace cssidx

#endif  // CSSIDX_CORE_CSS_TREE_H_
