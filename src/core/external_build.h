#ifndef CSSIDX_CORE_EXTERNAL_BUILD_H_
#define CSSIDX_CORE_EXTERNAL_BUILD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/paged_column.h"

// External merge-sort index build: the paper's §5 argument is that only
// the CSS directory must be RAM-resident — so building a sort index over
// a column that exceeds the buffer budget cannot stage the whole column
// (plus its RID permutation) in one flat array and stable_sort it. This
// path streams the column through a cursor, sorts bounded runs of
// (key, RID) pairs in RAM, spills each run to a temp file, and k-way
// merges the runs into the sorted key/RID lists that feed the existing
// BuildIndex/MaintainedIndex chain. The output lists — and the directory
// built over them — are the index's RAM-resident representation, exactly
// as for an in-RAM build.
//
// Bit-identity contract: runs are generated in RID order and the merge
// compares (key, RID) — RIDs are globally unique, so the total order
// equals what std::stable_sort of the whole column produces, tie for tie.

namespace cssidx {

struct ExternalBuildResult {
  std::vector<uint32_t> sorted_keys;  // column values, ascending
  std::vector<uint32_t> rids;         // rids[i] pairs with sorted_keys[i]
  size_t runs = 0;                    // sorted runs generated
  bool spilled = false;               // false = single run, never hit disk
};

/// Sorts `column` into (key, RID) order using at most `run_values`
/// in-RAM pairs at a time. A column of <= run_values values sorts in one
/// in-RAM run and never touches disk; larger columns spill ceil(n /
/// run_values) runs under `spill_dir` (which must exist) and merge them
/// in one pass. run_values is clamped to at least one page of values so
/// degenerate budgets still make progress.
ExternalBuildResult ExternalSortKeys(const store::PagedColumn& column,
                                     size_t run_values,
                                     const std::string& spill_dir);

}  // namespace cssidx

#endif  // CSSIDX_CORE_EXTERNAL_BUILD_H_
