#ifndef CSSIDX_CORE_ANY_INDEX_H_
#define CSSIDX_CORE_ANY_INDEX_H_

#include <algorithm>
#include <cassert>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>

#include "core/index.h"
#include "core/index_spec.h"
#include "core/probe_stats.h"
#include "util/thread_pool.h"

// AnyIndex: value-semantics type erasure over the index templates, for all
// code that selects a method at run time (the engine, the examples, space
// sweeps, the index advisor).
//
// The contract is batch-first. The paper's whole argument is that lookup
// cost is dominated by cache misses; a virtual call per probe both taxes
// the hot path and makes miss-amortizing techniques impossible to express.
// So the virtual boundary is the batch probes — FindBatch/LowerBoundBatch
// for point lookups, EqualRangeBatch/CountEqualBatch for duplicate runs
// (§3.6) — one call per batch of probes, which (a) amortizes dispatch to
// nothing and (b) lets each structure overlap the misses of neighboring
// probes with group probing and software prefetch (see the batch kernels
// in css_tree.h, bplus_tree.h, chained_hash.h). Scalar Find/LowerBound/
// EqualRange/CountEqual are convenience wrappers over a batch of one.
// Timing benches that sweep node sizes still use the templates directly,
// as before.
//
// Beneath every batch kernel, the intra-node search itself is
// SIMD-dispatched (simd_node_search.h: SSE2/AVX2 compare+count with the
// scalar unrolled search of §6.2 as fallback). That layer is invisible
// here by design: the count-of-keys-less-than-k formulation makes every
// dispatch path return the identical leftmost position, so nothing in
// this contract — nor in any result a caller can observe — depends on
// which path executed.

namespace cssidx {

/// Probe spans below this size never shard across threads: a dispatch
/// costs a few microseconds of wakeup/claim synchronization, which needs
/// thousands of ~100ns probes per shard to amortize — and a shard much
/// smaller than this can't amortize its own group-probing misses either.
inline constexpr size_t kParallelProbeMinShard = 4096;

/// Execution policy for one batched probe call. The structure probed is
/// immutable and shared; parallelism is purely a property of the call, so
/// it rides on the call, not the index. threads == 1 (the default) is the
/// exact pre-pool inline path; 0 means one executor per hardware thread.
/// Each shard is a contiguous probe sub-span whose results land in place —
/// no post-merge — so output is bit-identical for every thread count.
struct ProbeOptions {
  int threads = 1;
  size_t min_shard = kParallelProbeMinShard;
  /// Pool to shard on; nullptr = ThreadPool::Shared(). Benches and tests
  /// pass their own pool to get real threads even when the machine is
  /// narrower than the requested width.
  ThreadPool* pool = nullptr;
};

/// Shards body(begin, end) over [0, n) according to `opts`. The inline
/// fast path (threads == 1 or a span below min_shard) never touches the
/// pool — scalar probes stay free of std::function and lock traffic.
template <typename Fn>
void ParallelProbe(const ProbeOptions& opts, size_t n, Fn&& body) {
  if (opts.threads == 1 || n <= opts.min_shard) {
    body(size_t{0}, n);
    return;
  }
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::Shared();
  pool.ParallelFor(n, opts.min_shard, opts.threads, body);
}

/// An index type that provides its own group-probing LowerBound kernel.
template <typename T, typename KeyT = Key>
concept HasLowerBoundBatch =
    requires(const T& t, std::span<const KeyT> in, std::span<size_t> out) {
      t.LowerBoundBatch(in, out);
    };

/// An index type that provides its own group-probing Find kernel.
template <typename T, typename KeyT = Key>
concept HasFindBatch =
    requires(const T& t, std::span<const KeyT> in, std::span<int64_t> out) {
      t.FindBatch(in, out);
    };

/// An index type that provides its own batched EqualRange kernel.
template <typename T, typename KeyT = Key>
concept HasEqualRangeBatch =
    requires(const T& t, std::span<const KeyT> in,
             std::span<PositionRange> out) {
      t.EqualRangeBatch(in, out);
    };

/// An index type that provides its own batched CountEqual kernel.
template <typename T, typename KeyT = Key>
concept HasCountEqualBatch =
    requires(const T& t, std::span<const KeyT> in, std::span<size_t> out) {
      t.CountEqualBatch(in, out);
    };

/// Runtime facade over any index in the suite. Copyable and cheap to pass
/// by value (the underlying structure is shared, immutable, and built once
/// — the OLAP rebuild-on-batch lifecycle replaces whole objects).
/// Templated on the key type — the spec's key-width dimension selects
/// BasicAnyIndex<Key> (4-byte, the default everywhere) or
/// BasicAnyIndex<Key64> ("css64" and friends). The two facades are
/// distinct types on purpose: key width changes what gets built, so it is
/// pinned at build time like the method itself.
template <typename KeyT>
class BasicAnyIndex {
 public:
  /// The virtual boundary. Implementations are batch-oriented; everything
  /// scalar is derived.
  class Impl {
   public:
    virtual ~Impl() = default;
    /// out[i] = first position >= keys[i] (size() for unordered methods).
    /// "First" is load-bearing: duplicate routing (§4.1.2) directs an
    /// equal key to the LEFTMOST matching position, so a duplicate run can
    /// be enumerated from its lower bound.
    virtual void LowerBoundBatch(std::span<const KeyT> keys,
                                 std::span<size_t> out) const = 0;
    /// out[i] = leftmost position of keys[i] or kNotFound. Results are
    /// independent of batch boundaries and thread policy: probing one key
    /// in a batch of 4096 equals probing it alone.
    virtual void FindBatch(std::span<const KeyT> keys,
                           std::span<int64_t> out) const = 0;
    /// out[i] = the half-open positional span of keys[i]'s duplicate run
    /// (§3.6): {leftmost match, leftmost match + count}. Absent keys yield
    /// an empty span anchored at the insertion point (ordered methods) or
    /// at size() (hash).
    virtual void EqualRangeBatch(std::span<const KeyT> keys,
                                 std::span<PositionRange> out) const = 0;
    /// out[i] = number of occurrences of keys[i] (§3.6).
    virtual void CountEqualBatch(std::span<const KeyT> keys,
                                 std::span<size_t> out) const = 0;

    /// Policy-aware entry points. The default shards the probe span into
    /// contiguous chunks and runs the plain batch op per chunk — right
    /// for every monolithic structure. Composite impls (the partitioned
    /// index) override these instead: they already split work along a
    /// structural axis (key-range shards), so they spend the thread
    /// budget dispatching whole shards rather than re-sharding spans.
    virtual void LowerBoundBatch(std::span<const KeyT> keys,
                                 std::span<size_t> out,
                                 const ProbeOptions& opts) const {
      ParallelProbe(opts, keys.size(), [&](size_t begin, size_t end) {
        LowerBoundBatch(keys.subspan(begin, end - begin),
                        out.subspan(begin, end - begin));
      });
    }
    virtual void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out,
                           const ProbeOptions& opts) const {
      ParallelProbe(opts, keys.size(), [&](size_t begin, size_t end) {
        FindBatch(keys.subspan(begin, end - begin),
                  out.subspan(begin, end - begin));
      });
    }
    virtual void EqualRangeBatch(std::span<const KeyT> keys,
                                 std::span<PositionRange> out,
                                 const ProbeOptions& opts) const {
      ParallelProbe(opts, keys.size(), [&](size_t begin, size_t end) {
        EqualRangeBatch(keys.subspan(begin, end - begin),
                        out.subspan(begin, end - begin));
      });
    }
    virtual void CountEqualBatch(std::span<const KeyT> keys,
                                 std::span<size_t> out,
                                 const ProbeOptions& opts) const {
      ParallelProbe(opts, keys.size(), [&](size_t begin, size_t end) {
        CountEqualBatch(keys.subspan(begin, end - begin),
                        out.subspan(begin, end - begin));
      });
    }

    /// Extra bytes beyond the sorted array.
    virtual size_t SpaceBytes() const = 0;
    virtual size_t size() const = 0;
    /// False for hash (Figure 7's "RID-Ordered Access" column).
    virtual bool SupportsOrderedAccess() const = 0;
  };

  /// Empty handle; falsy. BuildIndex returns this for off-menu specs.
  BasicAnyIndex() = default;
  BasicAnyIndex(IndexSpec spec, std::shared_ptr<const Impl> impl)
      : spec_(spec), name_(spec.DisplayName()), impl_(std::move(impl)) {}

  explicit operator bool() const { return impl_ != nullptr; }

  // Probing an empty handle is a caller bug (check the handle after
  // BuildIndex); assert so it fails loudly rather than as a null deref.
  //
  // The two-argument forms use the spec's probe-thread policy (the "@tN"
  // suffix, default 1 = inline), so a spec like "css:16@t8" parallelizes
  // every large batch probed through the facade with no caller changes.
  void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out) const {
    FindBatch(keys, out, ProbeOptions{.threads = spec_.probe_threads()});
  }
  void LowerBoundBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    LowerBoundBatch(keys, out, ProbeOptions{.threads = spec_.probe_threads()});
  }
  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out) const {
    EqualRangeBatch(keys, out, ProbeOptions{.threads = spec_.probe_threads()});
  }
  void CountEqualBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    CountEqualBatch(keys, out, ProbeOptions{.threads = spec_.probe_threads()});
  }

  /// Explicit-policy probes. Monolithic structures shard `keys` into
  /// contiguous chunks across the pool, each chunk running the
  /// structure's own group-probing + prefetch kernel; composite
  /// structures (partitioned indexes) instead dispatch whole key-range
  /// shards. Either way, results land in place in `out`.
  void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out,
                 const ProbeOptions& opts) const {
    assert(impl_ != nullptr);
    impl_->FindBatch(keys, out, opts);
    if (stats_) {
      size_t missed = 0;
      for (size_t i = 0; i < keys.size(); ++i) missed += out[i] == kNotFound;
      stats_->RecordFind(keys.size(), missed);
    }
  }
  void LowerBoundBatch(std::span<const KeyT> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const {
    assert(impl_ != nullptr);
    impl_->LowerBoundBatch(keys, out, opts);
    if (stats_) stats_->RecordLowerBound(keys.size());
  }
  void EqualRangeBatch(std::span<const KeyT> keys, std::span<PositionRange> out,
                       const ProbeOptions& opts) const {
    assert(impl_ != nullptr);
    impl_->EqualRangeBatch(keys, out, opts);
    if (stats_) {
      size_t missed = 0;
      for (size_t i = 0; i < keys.size(); ++i) {
        missed += out[i].begin == out[i].end;
      }
      stats_->RecordRange(keys.size(), missed);
    }
  }
  void CountEqualBatch(std::span<const KeyT> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const {
    assert(impl_ != nullptr);
    impl_->CountEqualBatch(keys, out, opts);
    if (stats_) {
      size_t missed = 0;
      for (size_t i = 0; i < keys.size(); ++i) missed += out[i] == 0;
      stats_->RecordRange(keys.size(), missed);
    }
  }

  /// Scalar probes: batches of one.
  int64_t Find(KeyT k) const {
    int64_t out;
    FindBatch({&k, 1}, {&out, 1});
    return out;
  }
  size_t LowerBound(KeyT k) const {
    size_t out;
    LowerBoundBatch({&k, 1}, {&out, 1});
    return out;
  }
  PositionRange EqualRange(KeyT k) const {
    PositionRange out;
    EqualRangeBatch({&k, 1}, {&out, 1});
    return out;
  }
  size_t CountEqual(KeyT k) const {
    size_t out;
    CountEqualBatch({&k, 1}, {&out, 1});
    return out;
  }
  size_t SpaceBytes() const {
    assert(impl_ != nullptr);
    return impl_->SpaceBytes();
  }
  size_t size() const {
    assert(impl_ != nullptr);
    return impl_->size();
  }
  bool SupportsOrderedAccess() const {
    assert(impl_ != nullptr);
    return impl_->SupportsOrderedAccess();
  }
  const std::string& Name() const { return name_; }
  const IndexSpec& spec() const { return spec_; }
  /// Identity of the shared structure, for structural inspection (e.g.
  /// asserting that a maintenance refresh reused rather than rebuilt a
  /// shard). Never probe through this — the batch methods above are the
  /// contract.
  const Impl* impl() const { return impl_.get(); }

  /// Opt-in workload observation. Every copy of this facade (including the
  /// immutable snapshots MaintainedIndex publishes) shares the collector,
  /// so stats keep accumulating across version swaps and spec changes.
  /// Detach by attaching nullptr. Not synchronized with concurrent probes
  /// through *this same facade value* — attach before sharing, as
  /// MaintainedIndex does at version-build time.
  void AttachStats(std::shared_ptr<ProbeStatsCollector> stats) {
    stats_ = std::move(stats);
  }
  const std::shared_ptr<ProbeStatsCollector>& stats() const { return stats_; }

 private:
  IndexSpec spec_{};
  std::string name_;
  std::shared_ptr<const Impl> impl_;
  std::shared_ptr<ProbeStatsCollector> stats_;
};

/// The 4-byte-key facade every existing caller names, and its 8-byte twin.
using AnyIndex = BasicAnyIndex<Key>;
using AnyIndex64 = BasicAnyIndex<Key64>;

/// Adapter for OrderedIndex templates. Uses the structure's own batch
/// kernels when it has them; otherwise falls back to a plain probe loop
/// (group probing without prefetch — dispatch still amortized). The range
/// fallback derives each span from LowerBound + CountEqual, so every
/// ordered method — T-tree and the array baselines included — satisfies
/// the full range-batch contract whether or not it ships a kernel.
template <typename IndexT, typename KeyT = Key>
class OrderedBatchImpl final : public BasicAnyIndex<KeyT>::Impl {
 public:
  explicit OrderedBatchImpl(IndexT index) : index_(std::move(index)) {}

  void LowerBoundBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const override {
    if constexpr (HasLowerBoundBatch<IndexT, KeyT>) {
      index_.LowerBoundBatch(keys, out);
    } else {
      for (size_t i = 0; i < keys.size(); ++i) {
        out[i] = index_.LowerBound(keys[i]);
      }
    }
  }

  void FindBatch(std::span<const KeyT> keys,
                 std::span<int64_t> out) const override {
    if constexpr (HasFindBatch<IndexT, KeyT>) {
      index_.FindBatch(keys, out);
    } else {
      for (size_t i = 0; i < keys.size(); ++i) {
        out[i] = index_.Find(keys[i]);
      }
    }
  }

  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out) const override {
    if constexpr (HasEqualRangeBatch<IndexT, KeyT>) {
      index_.EqualRangeBatch(keys, out);
    } else if constexpr (HasLowerBoundBatch<IndexT, KeyT>) {
      // No range kernel, but a LowerBound kernel: both bounds still probe
      // with group probing + prefetch (shared adapter of the contract).
      EqualRangeBatchViaLowerBound(index_, index_.size(), keys, out);
    } else {
      for (size_t i = 0; i < keys.size(); ++i) {
        size_t lo = index_.LowerBound(keys[i]);
        out[i] = PositionRange{lo, lo + index_.CountEqual(keys[i])};
      }
    }
  }

  void CountEqualBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const override {
    if constexpr (HasCountEqualBatch<IndexT, KeyT>) {
      index_.CountEqualBatch(keys, out);
    } else if constexpr (HasLowerBoundBatch<IndexT, KeyT>) {
      CountEqualBatchViaEqualRange(*this, keys, out);
    } else {
      for (size_t i = 0; i < keys.size(); ++i) {
        out[i] = index_.CountEqual(keys[i]);
      }
    }
  }

  size_t SpaceBytes() const override { return index_.SpaceBytes(); }
  size_t size() const override { return index_.size(); }
  bool SupportsOrderedAccess() const override { return true; }

 private:
  IndexT index_;
};

/// Adapter for hash indexes (no ordered access): LowerBound degenerates to
/// size(), Find still returns the leftmost array position — and so do the
/// range probes: the hash stores array positions, duplicates are adjacent
/// in the sorted array, so {leftmost, leftmost + count} is a real span.
/// Absent keys anchor their empty span at size() (no insertion point
/// without ordered access).
template <typename HashT, typename KeyT = Key>
class UnorderedBatchImpl final : public BasicAnyIndex<KeyT>::Impl {
 public:
  explicit UnorderedBatchImpl(HashT index) : index_(std::move(index)) {}

  void LowerBoundBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const override {
    for (size_t i = 0; i < keys.size(); ++i) out[i] = index_.size();
  }

  void FindBatch(std::span<const KeyT> keys,
                 std::span<int64_t> out) const override {
    if constexpr (HasFindBatch<HashT, KeyT>) {
      index_.FindBatch(keys, out);
    } else {
      for (size_t i = 0; i < keys.size(); ++i) out[i] = index_.Find(keys[i]);
    }
  }

  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out) const override {
    if constexpr (HasEqualRangeBatch<HashT, KeyT>) {
      index_.EqualRangeBatch(keys, out);
    } else {
      for (size_t i = 0; i < keys.size(); ++i) {
        int64_t found = index_.Find(keys[i]);
        if (found == kNotFound) {
          out[i] = PositionRange{index_.size(), index_.size()};
        } else {
          auto lo = static_cast<size_t>(found);
          out[i] = PositionRange{lo, lo + index_.CountEqual(keys[i])};
        }
      }
    }
  }

  void CountEqualBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const override {
    if constexpr (HasCountEqualBatch<HashT, KeyT>) {
      index_.CountEqualBatch(keys, out);
    } else {
      for (size_t i = 0; i < keys.size(); ++i) {
        out[i] = index_.CountEqual(keys[i]);
      }
    }
  }

  size_t SpaceBytes() const override { return index_.SpaceBytes(); }
  size_t size() const override { return index_.size(); }
  bool SupportsOrderedAccess() const override { return false; }

 private:
  HashT index_;
};

/// Probes `keys` through FindBatch in blocks of at most `batch` probes,
/// writing every result into `out` — the shared front-end loop for callers
/// that stream a large probe set at a fixed batch size (joins, benches,
/// the advisor). Works for AnyIndex and for any template with a span-based
/// FindBatch. KeyT is non-deduced (defaults to Key): 8-byte callers write
/// FindBlocked<Key64>(index64, ...).
template <typename KeyT = Key, typename IndexT>
void FindBlocked(const IndexT& index,
                 std::type_identity_t<std::span<const KeyT>> keys,
                 size_t batch, std::span<int64_t> out) {
  batch = std::max<size_t>(batch, 1);  // batch == 0 must not loop forever
  for (size_t i = 0; i < keys.size(); i += batch) {
    size_t len = std::min(keys.size() - i, batch);
    index.FindBatch(keys.subspan(i, len), out.subspan(i, len));
  }
}

/// As above with an explicit execution policy per block — the front-end
/// for callers sweeping thread counts at a fixed block size.
template <typename KeyT = Key, typename IndexT>
void FindBlocked(const IndexT& index,
                 std::type_identity_t<std::span<const KeyT>> keys,
                 size_t batch, std::span<int64_t> out,
                 const ProbeOptions& opts) {
  batch = std::max<size_t>(batch, 1);
  for (size_t i = 0; i < keys.size(); i += batch) {
    size_t len = std::min(keys.size() - i, batch);
    index.FindBatch(keys.subspan(i, len), out.subspan(i, len), opts);
  }
}

/// Blocked front-end for range probes: EqualRangeBatch in blocks of at
/// most `batch` probes (the range twin of FindBlocked).
template <typename KeyT = Key, typename IndexT>
void EqualRangeBlocked(const IndexT& index,
                       std::type_identity_t<std::span<const KeyT>> keys,
                       size_t batch, std::span<PositionRange> out) {
  batch = std::max<size_t>(batch, 1);
  for (size_t i = 0; i < keys.size(); i += batch) {
    size_t len = std::min(keys.size() - i, batch);
    index.EqualRangeBatch(keys.subspan(i, len), out.subspan(i, len));
  }
}

/// Wraps a concrete ordered index template instance into the facade.
/// Pass KeyT explicitly for the 8-byte facade:
/// MakeOrderedAnyIndexFor<Key64>(spec, FullCssTree64<16>(...)).
template <typename KeyT, typename IndexT>
BasicAnyIndex<KeyT> MakeOrderedAnyIndexFor(IndexSpec spec, IndexT index) {
  return BasicAnyIndex<KeyT>(
      spec,
      std::make_shared<OrderedBatchImpl<IndexT, KeyT>>(std::move(index)));
}

template <typename IndexT>
AnyIndex MakeOrderedAnyIndex(IndexSpec spec, IndexT index) {
  return MakeOrderedAnyIndexFor<Key>(spec, std::move(index));
}

/// Wraps a concrete hash index instance into the facade.
template <typename HashT>
AnyIndex MakeUnorderedAnyIndex(IndexSpec spec, HashT index) {
  return AnyIndex(
      spec, std::make_shared<UnorderedBatchImpl<HashT>>(std::move(index)));
}

}  // namespace cssidx

#endif  // CSSIDX_CORE_ANY_INDEX_H_
