#ifndef CSSIDX_CORE_ANY_INDEX_H_
#define CSSIDX_CORE_ANY_INDEX_H_

#include <memory>
#include <string>
#include <utility>

#include "core/index.h"

// Type erasure over the index templates, for code that selects a method at
// run time (examples, space sweeps, the index advisor). Timing benches use
// the templates directly — a virtual call per probe would tax every method
// equally but would still pollute the small-n end of Figures 10/11.

namespace cssidx {

/// Runtime interface over any index in the suite.
class IndexHandle {
 public:
  virtual ~IndexHandle() = default;

  /// First position >= key. Unordered methods (hash) return size().
  virtual size_t LowerBound(Key k) const = 0;
  /// Leftmost match or kNotFound.
  virtual int64_t Find(Key k) const = 0;
  /// Number of occurrences (§3.6).
  virtual size_t CountEqual(Key k) const = 0;
  /// Extra bytes beyond the sorted array.
  virtual size_t SpaceBytes() const = 0;
  virtual size_t size() const = 0;
  virtual const std::string& Name() const = 0;
  /// False for hash (Figure 7's "RID-Ordered Access" column).
  virtual bool SupportsOrderedAccess() const = 0;
};

/// Wraps an OrderedIndex template instance.
template <typename IndexT>
class OrderedIndexHandle final : public IndexHandle {
 public:
  OrderedIndexHandle(IndexT index, std::string name)
      : index_(std::move(index)), name_(std::move(name)) {}

  size_t LowerBound(Key k) const override { return index_.LowerBound(k); }
  int64_t Find(Key k) const override { return index_.Find(k); }
  size_t CountEqual(Key k) const override { return index_.CountEqual(k); }
  size_t SpaceBytes() const override { return index_.SpaceBytes(); }
  size_t size() const override { return index_.size(); }
  const std::string& Name() const override { return name_; }
  bool SupportsOrderedAccess() const override { return true; }

  const IndexT& get() const { return index_; }

 private:
  IndexT index_;
  std::string name_;
};

/// Wraps a hash index (no ordered access).
template <typename HashT>
class HashIndexHandle final : public IndexHandle {
 public:
  HashIndexHandle(HashT index, std::string name)
      : index_(std::move(index)), name_(std::move(name)) {}

  size_t LowerBound(Key) const override { return index_.size(); }
  int64_t Find(Key k) const override { return index_.Find(k); }
  size_t CountEqual(Key k) const override { return index_.CountEqual(k); }
  size_t SpaceBytes() const override { return index_.SpaceBytes(); }
  size_t size() const override { return index_.size(); }
  const std::string& Name() const override { return name_; }
  bool SupportsOrderedAccess() const override { return false; }

 private:
  HashT index_;
  std::string name_;
};

}  // namespace cssidx

#endif  // CSSIDX_CORE_ANY_INDEX_H_
