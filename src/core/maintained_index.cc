#include "core/maintained_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/builder.h"

namespace cssidx {

std::shared_ptr<const MaintainedIndex::Version> MaintainedIndex::MakeVersion(
    const IndexSpec& spec, std::shared_ptr<const std::vector<Key>> keys,
    uint64_t sequence) {
  if (spec.partitioned() && spec.OnMenu()) {
    // Owned build: each shard's keys in their own buffer, so a later
    // RefreshWithBatch can reuse untouched shards by shared ownership.
    auto part = PartitionedIndex::BuildOwned(spec, keys->data(), keys->size());
    AnyIndex index = part->ok() ? AnyIndex(spec, part) : AnyIndex();
    return std::make_shared<const Version>(std::move(keys), std::move(part),
                                           std::move(index), sequence);
  }
  AnyIndex index = BuildIndex(spec, keys->data(), keys->size());
  return std::make_shared<const Version>(std::move(keys), nullptr,
                                         std::move(index), sequence);
}

MaintainedIndex::MaintainedIndex(const IndexSpec& spec,
                                 std::vector<Key> sorted_keys)
    : spec_(spec) {
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  Publish(MakeVersion(spec_,
                      std::make_shared<const std::vector<Key>>(
                          std::move(sorted_keys)),
                      ++sequence_));
}

void MaintainedIndex::ApplyBatch(const workload::UpdateBatch& batch) {
  std::vector<Key> inserts = batch.inserts;
  std::sort(inserts.begin(), inserts.end());
  std::vector<Key> deletes = batch.deletes;
  std::sort(deletes.begin(), deletes.end());
  ApplySortedBatch(std::move(inserts), std::move(deletes));
}

void MaintainedIndex::ApplySortedBatch(std::vector<Key> sorted_inserts,
                                       std::vector<Key> sorted_deletes) {
  assert(ok());
  assert(std::is_sorted(sorted_inserts.begin(), sorted_inserts.end()));
  assert(std::is_sorted(sorted_deletes.begin(), sorted_deletes.end()));
  ++stats_.batches;
  if (sorted_inserts.empty() && sorted_deletes.empty()) return;
  stats_.keys_inserted += sorted_inserts.size();
  stats_.keys_deleted += sorted_deletes.size();
  auto old = Snapshot();
  std::shared_ptr<const Version> fresh;
  if (const PartitionedIndex* part = old->partitioned()) {
    PartitionedIndex::Refreshed refreshed =
        part->RefreshWithSortedBatch(sorted_inserts, sorted_deletes);
    if (refreshed.rebalanced) {
      ++stats_.full_rebuilds;
      ++stats_.rebalances;
    } else {
      ++stats_.incremental_refreshes;
    }
    stats_.shards_rebuilt += refreshed.shards_rebuilt;
    fresh = std::make_shared<const Version>(
        std::move(refreshed.merged_keys), refreshed.index,
        AnyIndex(spec_, refreshed.index), ++sequence_);
  } else {
    ++stats_.full_rebuilds;
    fresh = MakeVersion(
        spec_,
        std::make_shared<const std::vector<Key>>(workload::ApplySortedBatch(
            old->keys(), sorted_inserts, sorted_deletes)),
        ++sequence_);
  }
  Publish(std::move(fresh));
}

void MaintainedIndex::Rebuild(std::vector<Key> sorted_keys) {
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  ++stats_.full_rebuilds;
  Publish(MakeVersion(spec_,
                      std::make_shared<const std::vector<Key>>(
                          std::move(sorted_keys)),
                      ++sequence_));
}

}  // namespace cssidx
