#include "core/maintained_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/builder.h"

namespace cssidx {

template <typename KeyT>
std::shared_ptr<const typename BasicMaintainedIndex<KeyT>::Version>
BasicMaintainedIndex<KeyT>::MakeVersion(
    const IndexSpec& spec, std::shared_ptr<const std::vector<KeyT>> keys,
    uint64_t sequence) {
  if (spec.partitioned() && spec.OnMenu() &&
      spec.key_width() == static_cast<int>(sizeof(KeyT))) {
    // Owned build: each shard's keys in their own buffer, so a later
    // RefreshWithBatch can reuse untouched shards by shared ownership.
    auto part = BasicPartitionedIndex<KeyT>::BuildOwned(spec, keys->data(),
                                                        keys->size());
    BasicAnyIndex<KeyT> index =
        part->ok() ? BasicAnyIndex<KeyT>(spec, part) : BasicAnyIndex<KeyT>();
    return std::make_shared<const Version>(std::move(keys), std::move(part),
                                           std::move(index), sequence);
  }
  BasicAnyIndex<KeyT> index = BuildIndexT<KeyT>(spec, keys->data(),
                                                keys->size());
  return std::make_shared<const Version>(std::move(keys), nullptr,
                                         std::move(index), sequence);
}

template <typename KeyT>
BasicMaintainedIndex<KeyT>::BasicMaintainedIndex(const IndexSpec& spec,
                                                 std::vector<KeyT> sorted_keys)
    : spec_(spec) {
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  Publish(MakeVersion(spec_,
                      std::make_shared<const std::vector<KeyT>>(
                          std::move(sorted_keys)),
                      ++sequence_));
}

template <typename KeyT>
void BasicMaintainedIndex<KeyT>::ApplyBatch(
    const workload::BasicUpdateBatch<KeyT>& batch) {
  std::vector<KeyT> inserts = batch.inserts;
  std::sort(inserts.begin(), inserts.end());
  std::vector<KeyT> deletes = batch.deletes;
  std::sort(deletes.begin(), deletes.end());
  ApplySortedBatch(std::move(inserts), std::move(deletes));
}

template <typename KeyT>
void BasicMaintainedIndex<KeyT>::ApplySortedBatch(
    std::vector<KeyT> sorted_inserts, std::vector<KeyT> sorted_deletes) {
  assert(ok());
  assert(std::is_sorted(sorted_inserts.begin(), sorted_inserts.end()));
  assert(std::is_sorted(sorted_deletes.begin(), sorted_deletes.end()));
  ++stats_.batches;
  if (sorted_inserts.empty() && sorted_deletes.empty()) return;
  stats_.keys_inserted += sorted_inserts.size();
  stats_.keys_deleted += sorted_deletes.size();
  auto old = Snapshot();
  std::shared_ptr<const Version> fresh;
  if (const BasicPartitionedIndex<KeyT>* part = old->partitioned()) {
    typename BasicPartitionedIndex<KeyT>::Refreshed refreshed =
        part->RefreshWithSortedBatch(sorted_inserts, sorted_deletes);
    if (refreshed.rebalanced) {
      ++stats_.full_rebuilds;
      ++stats_.rebalances;
    } else {
      ++stats_.incremental_refreshes;
    }
    stats_.shards_rebuilt += refreshed.shards_rebuilt;
    fresh = std::make_shared<const Version>(
        std::move(refreshed.merged_keys), refreshed.index,
        BasicAnyIndex<KeyT>(spec_, refreshed.index), ++sequence_);
  } else {
    ++stats_.full_rebuilds;
    fresh = MakeVersion(
        spec_,
        std::make_shared<const std::vector<KeyT>>(
            workload::ApplySortedBatch<KeyT>(old->keys(), sorted_inserts,
                                             sorted_deletes)),
        ++sequence_);
  }
  Publish(std::move(fresh));
}

template <typename KeyT>
void BasicMaintainedIndex<KeyT>::Rebuild(std::vector<KeyT> sorted_keys) {
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  ++stats_.full_rebuilds;
  Publish(MakeVersion(spec_,
                      std::make_shared<const std::vector<KeyT>>(
                          std::move(sorted_keys)),
                      ++sequence_));
}

template class BasicMaintainedIndex<Key>;
template class BasicMaintainedIndex<Key64>;

}  // namespace cssidx
