#include "core/maintained_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/builder.h"

namespace cssidx {

template <typename KeyT>
std::shared_ptr<const typename BasicMaintainedIndex<KeyT>::Version>
BasicMaintainedIndex<KeyT>::MakeVersion(
    const IndexSpec& spec, std::shared_ptr<const std::vector<KeyT>> keys,
    uint64_t sequence) const {
  if (spec.partitioned() && spec.OnMenu() &&
      spec.key_width() == static_cast<int>(sizeof(KeyT))) {
    // Owned build: each shard's keys in their own buffer, so a later
    // RefreshWithBatch can reuse untouched shards by shared ownership.
    auto part = BasicPartitionedIndex<KeyT>::BuildOwned(spec, keys->data(),
                                                        keys->size());
    BasicAnyIndex<KeyT> index =
        part->ok() ? BasicAnyIndex<KeyT>(spec, part) : BasicAnyIndex<KeyT>();
    if (index) index.AttachStats(stats_collector_);
    return std::make_shared<const Version>(std::move(keys), std::move(part),
                                           std::move(index), sequence);
  }
  BasicAnyIndex<KeyT> index = BuildIndexT<KeyT>(spec, keys->data(),
                                                keys->size());
  if (index) index.AttachStats(stats_collector_);
  return std::make_shared<const Version>(std::move(keys), nullptr,
                                         std::move(index), sequence);
}

template <typename KeyT>
BasicMaintainedIndex<KeyT>::BasicMaintainedIndex(const IndexSpec& spec,
                                                 std::vector<KeyT> sorted_keys)
    : spec_(spec) {
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  Publish(MakeVersion(spec_,
                      std::make_shared<const std::vector<KeyT>>(
                          std::move(sorted_keys)),
                      ++sequence_));
}

template <typename KeyT>
void BasicMaintainedIndex<KeyT>::ApplyBatch(
    const workload::BasicUpdateBatch<KeyT>& batch) {
  std::vector<KeyT> inserts = batch.inserts;
  std::sort(inserts.begin(), inserts.end());
  std::vector<KeyT> deletes = batch.deletes;
  std::sort(deletes.begin(), deletes.end());
  ApplySortedBatch(std::move(inserts), std::move(deletes));
}

template <typename KeyT>
void BasicMaintainedIndex<KeyT>::ApplySortedBatch(
    std::vector<KeyT> sorted_inserts, std::vector<KeyT> sorted_deletes) {
  assert(ok());
  assert(std::is_sorted(sorted_inserts.begin(), sorted_inserts.end()));
  assert(std::is_sorted(sorted_deletes.begin(), sorted_deletes.end()));
  ++stats_.batches;
  if (sorted_inserts.empty() && sorted_deletes.empty()) return;
  stats_.keys_inserted += sorted_inserts.size();
  stats_.keys_deleted += sorted_deletes.size();
  auto old = Snapshot();
  if (stats_collector_) {
    // Batch key span over full key range — both lists are sorted, so the
    // extremes are at the ends. Feeds the advisor's part:K touched-shards
    // estimate (a narrow span touches few shards).
    double span_fraction = 0.0;
    const std::vector<KeyT>& keys = old->keys();
    if (!keys.empty() && keys.back() > keys.front()) {
      KeyT lo = !sorted_inserts.empty() ? sorted_inserts.front()
                                        : sorted_deletes.front();
      KeyT hi = !sorted_inserts.empty() ? sorted_inserts.back()
                                        : sorted_deletes.back();
      if (!sorted_deletes.empty()) {
        lo = std::min(lo, sorted_deletes.front());
        hi = std::max(hi, sorted_deletes.back());
      }
      span_fraction = static_cast<double>(hi - lo) /
                      static_cast<double>(keys.back() - keys.front());
    }
    stats_collector_->RecordUpdate(sorted_inserts.size(),
                                   sorted_deletes.size(), span_fraction);
  }
  std::shared_ptr<const Version> fresh;
  if (const BasicPartitionedIndex<KeyT>* part = old->partitioned()) {
    typename BasicPartitionedIndex<KeyT>::Refreshed refreshed =
        part->RefreshWithSortedBatch(sorted_inserts, sorted_deletes);
    if (refreshed.rebalanced) {
      ++stats_.full_rebuilds;
      ++stats_.rebalances;
    } else {
      ++stats_.incremental_refreshes;
    }
    stats_.shards_rebuilt += refreshed.shards_rebuilt;
    BasicAnyIndex<KeyT> facade(spec_, refreshed.index);
    facade.AttachStats(stats_collector_);
    fresh = std::make_shared<const Version>(std::move(refreshed.merged_keys),
                                            refreshed.index, std::move(facade),
                                            ++sequence_);
  } else {
    ++stats_.full_rebuilds;
    fresh = MakeVersion(
        spec_,
        std::make_shared<const std::vector<KeyT>>(
            workload::ApplySortedBatch<KeyT>(old->keys(), sorted_inserts,
                                             sorted_deletes)),
        ++sequence_);
  }
  Publish(std::move(fresh));
}

template <typename KeyT>
void BasicMaintainedIndex<KeyT>::Rebuild(std::vector<KeyT> sorted_keys) {
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  ++stats_.full_rebuilds;
  Publish(MakeVersion(spec_,
                      std::make_shared<const std::vector<KeyT>>(
                          std::move(sorted_keys)),
                      ++sequence_));
}

template <typename KeyT>
bool BasicMaintainedIndex<KeyT>::RebuildWithSpec(const IndexSpec& new_spec) {
  IndexSpec forced = new_spec.WithKeyWidth(static_cast<int>(sizeof(KeyT)));
  if (!forced.OnMenu()) return false;
  auto old = Snapshot();
  auto fresh = MakeVersion(forced, old->keys_ptr(), sequence_ + 1);
  if (!fresh->index()) return false;  // builder refused the spec
  spec_ = forced;
  ++sequence_;
  ++stats_.full_rebuilds;
  ++stats_.spec_swaps;
  Publish(std::move(fresh));
  return true;
}

template <typename KeyT>
std::shared_ptr<ProbeStatsCollector> BasicMaintainedIndex<KeyT>::EnableStats() {
  if (stats_collector_) return stats_collector_;
  stats_collector_ = std::make_shared<ProbeStatsCollector>();
  // Republish the current version with the collector attached (same keys,
  // same structure, same sequence — this is the same logical version, now
  // observed). Snapshots taken before this call keep probing unrecorded.
  auto old = Snapshot();
  BasicAnyIndex<KeyT> facade = old->index();
  if (facade) facade.AttachStats(stats_collector_);
  std::shared_ptr<const BasicPartitionedIndex<KeyT>> part;
  if (old->partitioned() != nullptr) {
    // Alias on the old Version: it owns the composite, so the new
    // version's part_ keeps the whole old version alive — fine, they
    // share every expensive part anyway.
    part = std::shared_ptr<const BasicPartitionedIndex<KeyT>>(
        old, old->partitioned());
  }
  Publish(std::make_shared<const Version>(old->keys_ptr(), std::move(part),
                                          std::move(facade),
                                          old->sequence()));
  return stats_collector_;
}

template class BasicMaintainedIndex<Key>;
template class BasicMaintainedIndex<Key64>;

}  // namespace cssidx
