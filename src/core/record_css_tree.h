#ifndef CSSIDX_CORE_RECORD_CSS_TREE_H_
#define CSSIDX_CORE_RECORD_CSS_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/css_layout.h"
#include "core/index.h"
#include "core/node_search.h"
#include "core/simd_node_search.h"
#include "util/aligned_buffer.h"
#include "util/macros.h"

// CSS-tree over an array of *records* rather than bare keys.
//
// §4.1: "the array a could alternatively contain records of a table or
// packed domain clustered by column k. ... our techniques apply to sorted
// arrays having elements of size different from the size of a key. Offsets
// into the leaf array are independent of the record size within the array;
// the compiler will generate the appropriate byte offsets."
//
// The directory is identical to the plain CSS-tree's (4-byte keys, no
// pointers); only the leaf level dereferences records through a key
// extractor. Wide records dilute leaf-level cache locality — one line holds
// fewer keys — which bench/record_width measures; the directory's miss
// behaviour is unchanged, which is the point of the quote above.
//
// `KeyOf` must be a stateless callable: Key KeyOf()(const Record&).

namespace cssidx {

template <typename Record, typename KeyOf, int NodeKeys>
class RecordCssTree {
  static_assert(NodeKeys >= 2);

 public:
  static constexpr int kStride = NodeKeys;
  static constexpr int kFanout = NodeKeys + 1;  // full-CSS shape
  /// Probes descended in lockstep by the batch kernels (same group width
  /// as the key-array CSS-tree).
  static constexpr size_t kGroupProbes = 8;

  RecordCssTree(const Record* records, size_t n) : a_(records), n_(n) {
    Build();
  }
  explicit RecordCssTree(const std::vector<Record>& records)
      : RecordCssTree(records.data(), records.size()) {}

  /// First position p with KeyOf(a[p]) >= k.
  size_t LowerBound(Key k) const {
    if (CSSIDX_UNLIKELY(n_ == 0)) return 0;
    uint64_t d = 0;
    const uint64_t internal = layout_.internal_nodes;
    while (d < internal) {
      const Key* node = dir_keys_ + d * kStride;
      int j = DispatchedLowerBound<kStride>(node, k);
      d = d * kFanout + 1 + static_cast<uint64_t>(j);
    }
    return SearchLeaf(d, k);
  }

  /// Batched LowerBound: the same level-synchronous group-probing +
  /// prefetch kernel as the plain CSS-tree — the directory is identical
  /// (bare keys, no pointers); only the leaf search dereferences records,
  /// and each probe's leaf line is prefetched as soon as its leaf is
  /// known. Results are identical to scalar LowerBound.
  void LowerBoundBatch(std::span<const Key> keys,
                       std::span<size_t> out) const {
    assert(out.size() >= keys.size());
    const size_t count = keys.size();
    if (CSSIDX_UNLIKELY(n_ == 0)) {
      for (size_t i = 0; i < count; ++i) out[i] = 0;
      return;
    }
    const uint64_t internal = layout_.internal_nodes;
    const Key* dir = dir_keys_;
    size_t i = 0;
    for (; i + kGroupProbes <= count; i += kGroupProbes) {
      uint64_t d[kGroupProbes] = {};
      if (internal > 0) {
        bool descending = true;
        while (descending) {
          descending = false;
          for (size_t g = 0; g < kGroupProbes; ++g) {
            if (d[g] >= internal) continue;
            const Key* node = dir + d[g] * kStride;
            int j = DispatchedLowerBound<kStride>(node, keys[i + g]);
            d[g] = d[g] * kFanout + 1 + static_cast<uint64_t>(j);
            if (d[g] < internal) {
              CSSIDX_PREFETCH(dir + d[g] * kStride);
              descending = true;
            } else {
              CSSIDX_PREFETCH(a_ + LeafRange(d[g]).first);
            }
          }
        }
      }
      for (size_t g = 0; g < kGroupProbes; ++g) {
        out[i + g] = SearchLeaf(d[g], keys[i + g]);
      }
    }
    for (; i < count; ++i) out[i] = LowerBound(keys[i]);
  }

  /// Position of the leftmost record whose key equals `k`, or kNotFound.
  int64_t Find(Key k) const {
    size_t pos = LowerBound(k);
    if (pos < n_ && KeyOf{}(a_[pos]) == k) return static_cast<int64_t>(pos);
    return kNotFound;
  }

  /// Batched Find over the group-probing kernel (hand-rolled rather than
  /// FindBatchViaLowerBound: the hit test reads keys through KeyOf, not a
  /// flat key array).
  void FindBatch(std::span<const Key> keys, std::span<int64_t> out) const {
    assert(out.size() >= keys.size());
    constexpr size_t kChunk = 256;
    size_t pos[kChunk];
    for (size_t i = 0; i < keys.size(); i += kChunk) {
      size_t len = std::min(keys.size() - i, kChunk);
      LowerBoundBatch(keys.subspan(i, len), std::span<size_t>(pos, len));
      for (size_t j = 0; j < len; ++j) {
        out[i + j] = pos[j] < n_ && KeyOf{}(a_[pos[j]]) == keys[i + j]
                         ? static_cast<int64_t>(pos[j])
                         : kNotFound;
      }
    }
  }

  /// Batched EqualRange/CountEqual: both run bounds through the batched
  /// descent, exactly as for the key-array trees (the shared kernel only
  /// needs LowerBoundBatch, so record indirection is invisible to it).
  void EqualRangeBatch(std::span<const Key> keys,
                       std::span<PositionRange> out) const {
    assert(out.size() >= keys.size());
    EqualRangeBatchViaLowerBound(*this, n_, keys, out);
  }
  void CountEqualBatch(std::span<const Key> keys,
                       std::span<size_t> out) const {
    assert(out.size() >= keys.size());
    CountEqualBatchViaEqualRange(*this, keys, out);
  }

  size_t CountEqual(Key k) const {
    size_t pos = LowerBound(k);
    size_t count = 0;
    while (pos + count < n_ && KeyOf{}(a_[pos + count]) == k) ++count;
    return count;
  }

  size_t SpaceBytes() const {
    return layout_.DirectorySlots() * sizeof(Key);
  }
  size_t size() const { return n_; }
  const CssLayout& layout() const { return layout_; }

 private:
  void Build() {
    layout_ = CssLayout::Compute(n_, kStride, kFanout);
    const uint64_t internal = layout_.internal_nodes;
    if (internal == 0) return;
    dir_buf_ =
        AlignedBuffer(internal * kStride * sizeof(Key), kCacheLineBytes);
    dir_keys_ = dir_buf_.as<Key>();
    for (int64_t i = static_cast<int64_t>(internal) * kStride - 1; i >= 0;
         --i) {
      auto d = static_cast<uint64_t>(i) / kStride;
      int branch = static_cast<int>(static_cast<uint64_t>(i) % kStride);
      uint64_t child = d * kFanout + 1 + static_cast<uint64_t>(branch);
      dir_keys_[i] = SubtreeMax(child);
    }
  }

  Key SubtreeMax(uint64_t node) const {
    const uint64_t internal = layout_.internal_nodes;
    while (node < internal) node = node * kFanout + kFanout;
    int64_t pos = layout_.LeafArrayPos(node);
    if (node >= layout_.mark) {
      auto deep_end = static_cast<int64_t>(layout_.deep_end);
      if (pos >= deep_end) return KeyOf{}(a_[deep_end - 1]);
      int64_t end = pos + kStride < deep_end ? pos + kStride : deep_end;
      return KeyOf{}(a_[end - 1]);
    }
    auto limit = static_cast<int64_t>(n_);
    int64_t end = pos + kStride < limit ? pos + kStride : limit;
    return KeyOf{}(a_[end - 1]);
  }

  std::pair<size_t, size_t> LeafRange(uint64_t leaf) const {
    int64_t pos = layout_.LeafArrayPos(leaf);
    auto limit = static_cast<int64_t>(n_);
    int64_t lo = pos < limit ? pos : limit;
    int64_t hi = pos + kStride < limit ? pos + kStride : limit;
    return {static_cast<size_t>(lo), static_cast<size_t>(hi)};
  }

  CSSIDX_ALWAYS_INLINE size_t SearchLeaf(uint64_t leaf, Key k) const {
    auto [lo, hi] = LeafRange(leaf);
    // Leaf search walks records; the byte offsets scale with
    // sizeof(Record) exactly as the paper notes.
    size_t len = hi - lo;
    size_t base = lo;
    while (len > 0) {
      size_t half = len / 2;
      if (KeyOf{}(a_[base + half]) >= k) {
        len = half;
      } else {
        base += half + 1;
        len -= half + 1;
      }
    }
    return base;
  }

  const Record* a_ = nullptr;
  size_t n_ = 0;
  CssLayout layout_;
  AlignedBuffer dir_buf_;
  Key* dir_keys_ = nullptr;
};

}  // namespace cssidx

#endif  // CSSIDX_CORE_RECORD_CSS_TREE_H_
