#include "core/simd_node_search.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define CSSIDX_X86_64 1
#else
#define CSSIDX_X86_64 0
#endif

// Path detection: CPUID capability ∩ compiled-in kernels ∩ environment.
//
// The AVX2 check follows the required protocol, not just the feature bit:
// leaf 1 must report OSXSAVE (the OS uses XSAVE at context switch), XCR0
// must show the OS actually saves XMM+YMM state, and leaf 7 must report
// AVX2 itself. Skipping the XCR0 step is how binaries SIGILL inside VMs
// whose hypervisor masks YMM state — the classic dispatch bug.
//
// The result is then capped by what THIS build compiled: without -mavx2 /
// -march=native the AVX2 kernels do not exist in the binary, so detection
// tops out at SSE2 (and the per-call dispatch would fall back anyway —
// belt and suspenders). CSSIDX_FORCE_SCALAR (any value but "0") caps to
// scalar: the debugging/CI escape hatch, read once at startup.

namespace cssidx {

namespace {

NodeSearchPath DetectOnce() {
  const char* force = std::getenv("CSSIDX_FORCE_SCALAR");
  if (force != nullptr && std::strcmp(force, "0") != 0) {
    return NodeSearchPath::kScalar;
  }
#if CSSIDX_X86_64 && CSSIDX_HAVE_SSE2
  NodeSearchPath best = NodeSearchPath::kSse2;  // x86-64 baseline
#if CSSIDX_HAVE_AVX2
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) && (ecx & bit_OSXSAVE) != 0) {
    // XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled. Inline asm
    // rather than _xgetbv: the intrinsic needs -mxsave, which -mavx2
    // alone does not imply.
    unsigned xcr0_lo = 0, xcr0_hi = 0;
    __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0u));
    unsigned xcr0 = xcr0_lo;
    (void)xcr0_hi;
    if ((xcr0 & 0x6u) == 0x6u &&
        __get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) &&
        (ebx & bit_AVX2) != 0) {
      best = NodeSearchPath::kAvx2;
    }
  }
#endif
  return best;
#else
  return NodeSearchPath::kScalar;
#endif
}

}  // namespace

namespace internal_node_search {

// Dynamic init; zero-init (kScalar) before that, so probes from other
// static initializers are safe.
NodeSearchPath g_active_path = DetectOnce();

}  // namespace internal_node_search

const char* NodeSearchPathName(NodeSearchPath path) {
  switch (path) {
    case NodeSearchPath::kAvx2:
      return "avx2";
    case NodeSearchPath::kSse2:
      return "sse2";
    case NodeSearchPath::kScalar:
      return "scalar";
  }
  return "scalar";
}

NodeSearchPath DetectedNodeSearchPath() {
  static const NodeSearchPath detected = DetectOnce();
  return detected;
}

NodeSearchPath ActiveNodeSearchPath() {
  return internal_node_search::g_active_path;
}

NodeSearchPath SetNodeSearchPath(NodeSearchPath path) {
  NodeSearchPath capped = path;
  if (static_cast<int>(capped) > static_cast<int>(DetectedNodeSearchPath())) {
    capped = DetectedNodeSearchPath();
  }
  internal_node_search::g_active_path = capped;
  return capped;
}

}  // namespace cssidx
