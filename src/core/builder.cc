#include "core/builder.h"

#include <string>

#include "baselines/binary_search.h"
#include "baselines/binary_tree.h"
#include "baselines/bplus_tree.h"
#include "baselines/chained_hash.h"
#include "baselines/interpolation_search.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "util/macros.h"

namespace cssidx {

namespace {

template <typename IndexT>
std::unique_ptr<IndexHandle> Wrap(IndexT index, std::string name) {
  return std::make_unique<OrderedIndexHandle<IndexT>>(std::move(index),
                                                      std::move(name));
}

std::string SizedName(const char* base, int entries) {
  return std::string(base) + "/m=" + std::to_string(entries);
}

/// Calls `fn.template operator()<M>()` for the menu entry matching
/// `entries`, or returns nullptr.
template <typename Fn>
std::unique_ptr<IndexHandle> DispatchNodeSize(int entries, Fn&& fn) {
  switch (entries) {
    case 4:
      return fn.template operator()<4>();
    case 8:
      return fn.template operator()<8>();
    case 16:
      return fn.template operator()<16>();
    case 24:
      return fn.template operator()<24>();
    case 32:
      return fn.template operator()<32>();
    case 64:
      return fn.template operator()<64>();
    case 128:
      return fn.template operator()<128>();
    default:
      return nullptr;
  }
}

}  // namespace

const char* MethodName(Method method) {
  switch (method) {
    case Method::kBinarySearch:
      return "array binary search";
    case Method::kTreeBinarySearch:
      return "tree binary search";
    case Method::kInterpolation:
      return "interpolation search";
    case Method::kTTree:
      return "T-tree";
    case Method::kBPlusTree:
      return "B+-tree";
    case Method::kFullCss:
      return "full CSS-tree";
    case Method::kLevelCss:
      return "level CSS-tree";
    case Method::kHash:
      return "hash";
  }
  return "?";
}

std::vector<Method> AllMethods() {
  return {Method::kBinarySearch, Method::kTreeBinarySearch,
          Method::kInterpolation, Method::kTTree,
          Method::kBPlusTree,     Method::kFullCss,
          Method::kLevelCss,      Method::kHash};
}

std::unique_ptr<IndexHandle> BuildIndex(Method method, const Key* keys,
                                        size_t n,
                                        const BuildOptions& options) {
  const int m = options.node_entries;
  switch (method) {
    case Method::kBinarySearch:
      return Wrap(BinarySearchIndex(keys, n), MethodName(method));
    case Method::kTreeBinarySearch:
      return Wrap(BinaryTreeIndex(keys, n), MethodName(method));
    case Method::kInterpolation:
      return Wrap(InterpolationSearchIndex(keys, n), MethodName(method));
    case Method::kTTree:
      return DispatchNodeSize(m, [&]<int M>() {
        return Wrap(TTreeIndex<M>(keys, n), SizedName("T-tree", M));
      });
    case Method::kBPlusTree:
      return DispatchNodeSize(m, [&]<int M>() -> std::unique_ptr<IndexHandle> {
        if constexpr (M >= 4) {
          return Wrap(BPlusTree<M>(keys, n), SizedName("B+-tree", M));
        } else {
          return nullptr;
        }
      });
    case Method::kFullCss:
      return DispatchNodeSize(m, [&]<int M>() {
        return Wrap(FullCssTree<M>(keys, n), SizedName("full CSS-tree", M));
      });
    case Method::kLevelCss:
      return DispatchNodeSize(m, [&]<int M>() -> std::unique_ptr<IndexHandle> {
        if constexpr (IsPowerOfTwo(M) && M >= 4) {
          return Wrap(LevelCssTree<M>(keys, n),
                      SizedName("level CSS-tree", M));
        } else {
          return nullptr;
        }
      });
    case Method::kHash: {
      ChainedHashIndex<kCacheLineBytes> hash(keys, n, options.hash_dir_bits);
      return std::make_unique<HashIndexHandle<ChainedHashIndex<kCacheLineBytes>>>(
          std::move(hash),
          "hash/dir=2^" + std::to_string(options.hash_dir_bits));
    }
  }
  return nullptr;
}

std::unique_ptr<IndexHandle> BuildIndex(Method method,
                                        const std::vector<Key>& keys,
                                        const BuildOptions& options) {
  return BuildIndex(method, keys.data(), keys.size(), options);
}

}  // namespace cssidx
