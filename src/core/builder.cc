#include "core/builder.h"

#include <type_traits>

#include "baselines/binary_search.h"
#include "baselines/binary_tree.h"
#include "baselines/bplus_tree.h"
#include "baselines/chained_hash.h"
#include "baselines/interpolation_search.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "core/partitioned_index.h"
#include "util/macros.h"

namespace cssidx {

namespace {

/// Calls `fn.template operator()<M>()` for the menu entry matching
/// `entries`, or returns an empty handle.
template <typename KeyT, typename Fn>
BasicAnyIndex<KeyT> DispatchNodeSize(int entries, Fn&& fn) {
  switch (entries) {
    case 4:
      return fn.template operator()<4>();
    case 8:
      return fn.template operator()<8>();
    case 16:
      return fn.template operator()<16>();
    case 24:
      return fn.template operator()<24>();
    case 32:
      return fn.template operator()<32>();
    case 64:
      return fn.template operator()<64>();
    case 128:
      return fn.template operator()<128>();
    default:
      return {};
  }
}

}  // namespace

template <typename KeyT>
BasicAnyIndex<KeyT> BuildIndexT(const IndexSpec& spec, const KeyT* keys,
                                size_t n) {
  if (!spec.OnMenu()) return {};
  // Key width is a structure knob: a spec of the other width is off this
  // entry point's menu (the caller picked the wrong facade).
  if (spec.key_width() != static_cast<int>(sizeof(KeyT))) return {};
  // Partitioned specs recurse: the composite builds one inner index per
  // key-range shard through this same entry point.
  if (spec.partitioned()) return BuildPartitionedIndexT<KeyT>(spec, keys, n);
  const int m = spec.node_entries();
  switch (spec.method()) {
    case Method::kBinarySearch:
      return MakeOrderedAnyIndexFor<KeyT>(
          spec, BasicBinarySearchIndex<KeyT>(keys, n));
    case Method::kTreeBinarySearch:
      return MakeOrderedAnyIndexFor<KeyT>(spec,
                                          BasicBinaryTreeIndex<KeyT>(keys, n));
    case Method::kInterpolation:
      return MakeOrderedAnyIndexFor<KeyT>(
          spec, BasicInterpolationSearchIndex<KeyT>(keys, n));
    case Method::kTTree:
      return DispatchNodeSize<KeyT>(m, [&]<int M>() {
        return MakeOrderedAnyIndexFor<KeyT>(spec, TTreeIndex<M, KeyT>(keys, n));
      });
    case Method::kBPlusTree:
      return DispatchNodeSize<KeyT>(m, [&]<int M>() {
        return MakeOrderedAnyIndexFor<KeyT>(spec, BPlusTree<M, KeyT>(keys, n));
      });
    case Method::kFullCss:
      return DispatchNodeSize<KeyT>(m, [&]<int M>() {
        return MakeOrderedAnyIndexFor<KeyT>(
            spec, BasicCssTree<KeyT, M, M + 1>(keys, n));
      });
    case Method::kLevelCss:
      return DispatchNodeSize<KeyT>(m, [&]<int M>() -> BasicAnyIndex<KeyT> {
        if constexpr (IsPowerOfTwo(M)) {
          return MakeOrderedAnyIndexFor<KeyT>(
              spec, BasicCssTree<KeyT, M, M>(keys, n));
        } else {
          return {};
        }
      });
    case Method::kHash:
      // The chained-hash bucket layout is 4-byte only; OnMenu rejects
      // hash at width 8, so the 64-bit instantiation never reaches here.
      if constexpr (std::is_same_v<KeyT, Key>) {
        return MakeUnorderedAnyIndex(
            spec, ChainedHashIndex<kCacheLineBytes>(keys, n,
                                                    spec.hash_dir_bits()));
      } else {
        return {};
      }
  }
  return {};
}

template AnyIndex BuildIndexT<Key>(const IndexSpec&, const Key*, size_t);
template AnyIndex64 BuildIndexT<Key64>(const IndexSpec&, const Key64*,
                                       size_t);

AnyIndex BuildIndex(const IndexSpec& spec, const Key* keys, size_t n) {
  return BuildIndexT<Key>(spec, keys, n);
}

AnyIndex BuildIndex(const IndexSpec& spec, const std::vector<Key>& keys) {
  return BuildIndexT<Key>(spec, keys.data(), keys.size());
}

AnyIndex64 BuildIndex64(const IndexSpec& spec, const Key64* keys, size_t n) {
  return BuildIndexT<Key64>(spec, keys, n);
}

AnyIndex64 BuildIndex64(const IndexSpec& spec,
                        const std::vector<Key64>& keys) {
  return BuildIndexT<Key64>(spec, keys.data(), keys.size());
}

}  // namespace cssidx
