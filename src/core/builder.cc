#include "core/builder.h"

#include "baselines/binary_search.h"
#include "baselines/binary_tree.h"
#include "baselines/bplus_tree.h"
#include "baselines/chained_hash.h"
#include "baselines/interpolation_search.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "core/partitioned_index.h"
#include "util/macros.h"

namespace cssidx {

namespace {

/// Calls `fn.template operator()<M>()` for the menu entry matching
/// `entries`, or returns an empty AnyIndex.
template <typename Fn>
AnyIndex DispatchNodeSize(int entries, Fn&& fn) {
  switch (entries) {
    case 4:
      return fn.template operator()<4>();
    case 8:
      return fn.template operator()<8>();
    case 16:
      return fn.template operator()<16>();
    case 24:
      return fn.template operator()<24>();
    case 32:
      return fn.template operator()<32>();
    case 64:
      return fn.template operator()<64>();
    case 128:
      return fn.template operator()<128>();
    default:
      return {};
  }
}

}  // namespace

AnyIndex BuildIndex(const IndexSpec& spec, const Key* keys, size_t n) {
  if (!spec.OnMenu()) return {};
  // Partitioned specs recurse: the composite builds one inner index per
  // key-range shard through this same entry point.
  if (spec.partitioned()) return BuildPartitionedIndex(spec, keys, n);
  const int m = spec.node_entries();
  switch (spec.method()) {
    case Method::kBinarySearch:
      return MakeOrderedAnyIndex(spec, BinarySearchIndex(keys, n));
    case Method::kTreeBinarySearch:
      return MakeOrderedAnyIndex(spec, BinaryTreeIndex(keys, n));
    case Method::kInterpolation:
      return MakeOrderedAnyIndex(spec, InterpolationSearchIndex(keys, n));
    case Method::kTTree:
      return DispatchNodeSize(m, [&]<int M>() {
        return MakeOrderedAnyIndex(spec, TTreeIndex<M>(keys, n));
      });
    case Method::kBPlusTree:
      return DispatchNodeSize(m, [&]<int M>() {
        return MakeOrderedAnyIndex(spec, BPlusTree<M>(keys, n));
      });
    case Method::kFullCss:
      return DispatchNodeSize(m, [&]<int M>() {
        return MakeOrderedAnyIndex(spec, FullCssTree<M>(keys, n));
      });
    case Method::kLevelCss:
      return DispatchNodeSize(m, [&]<int M>() -> AnyIndex {
        if constexpr (IsPowerOfTwo(M)) {
          return MakeOrderedAnyIndex(spec, LevelCssTree<M>(keys, n));
        } else {
          return {};
        }
      });
    case Method::kHash:
      return MakeUnorderedAnyIndex(
          spec, ChainedHashIndex<kCacheLineBytes>(keys, n,
                                                  spec.hash_dir_bits()));
  }
  return {};
}

AnyIndex BuildIndex(const IndexSpec& spec, const std::vector<Key>& keys) {
  return BuildIndex(spec, keys.data(), keys.size());
}

}  // namespace cssidx
