#ifndef CSSIDX_CORE_PARTITIONED_INDEX_H_
#define CSSIDX_CORE_PARTITIONED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/any_index.h"
#include "core/index.h"
#include "core/index_spec.h"
#include "workload/batch_update.h"

// Range-partitioned composite index: the sorted key array is split into K
// contiguous key-range shards (equi-depth fences drawn from the sorted
// data, snapped to duplicate-run starts so no run ever straddles a
// boundary), and each shard holds an independent inner index of any spec
// on the menu. A shard is just a smaller instance of the paper's layout —
// rebuild-cheap and read-fast — which is what makes this the structural
// prerequisite for NUMA placement: shard s's keys, directory, and probes
// can all live on one node, with only the fence table shared.
//
// Every batch op routes by binary-searching the fence table, buckets the
// probes per shard (a counting sort that also remembers each probe's
// input slot), runs the inner group-probing kernels shard-local, and
// scatters results back to input order translated to GLOBAL positions
// (shard base offsets). The facade contract is preserved exactly: a
// "part:K/css:16" index answers every probe with the same positions as a
// bare "css:16" over the whole array — enforced differentially by
// tests/partitioned_index_test.cc.
//
// Parallelism: ProbeOptions{threads} / the "@tN" spec suffix dispatches
// whole shards to the ThreadPool (one task range over shard indexes)
// instead of re-sharding probe spans — the shard is already a contiguous,
// cache-friendly unit of work, and shard tasks scatter to disjoint output
// slots, so there is no merge step and output is bit-identical at every
// thread count.
//
// Maintenance: the fence structure is also what makes the paper's
// rebuild-on-batch model cheap. An update batch routes through the same
// fence table as probes, so only the shards whose key range the batch
// touches need re-merging and rebuilding; BuildOwned gives each shard its
// own key buffer so RefreshWithBatch can share every untouched shard —
// buffer and inner index — with the refreshed successor (see
// core/maintained_index.h for the snapshot lifecycle around this).

namespace cssidx {

/// Refresh keeps the fence table as-is until the largest shard exceeds
/// this multiple of the equi-depth target (n / K); then the whole
/// structure is rebuilt with fresh equi-depth fences. Keeping fences
/// stable is what lets a refresh reuse untouched shards; the gate bounds
/// how far a drifting workload can skew probe routing before paying one
/// full rebuild to restore balance.
inline constexpr size_t kRebalanceSkew = 4;

template <typename KeyT>
class BasicPartitionedIndex final : public BasicAnyIndex<KeyT>::Impl {
 public:
  /// Builds K equi-depth shards over keys[0..n) (sorted, must outlive the
  /// index), each holding an inner index built from spec.Inner(). Prefer
  /// BuildPartitionedIndex, which validates the spec and reports
  /// unbuildable configurations as a falsy AnyIndex.
  BasicPartitionedIndex(const IndexSpec& spec, const KeyT* keys, size_t n);

  /// Maintained-path factory: same structure as the non-owning
  /// constructor, but every shard's keys are copied into a buffer the
  /// index owns (a shared_ptr), so RefreshWithBatch can hand untouched
  /// shards — buffer and inner index both — to its successor by shared
  /// ownership. `keys` may be freed after the call.
  static std::shared_ptr<const BasicPartitionedIndex> BuildOwned(
      const IndexSpec& spec, const KeyT* keys, size_t n);

  /// One shard-incremental maintenance step (the paper's batch model on
  /// the fence structure), valid only for BuildOwned/RefreshWithBatch
  /// products. The batch routes through the fence table exactly like
  /// probes do; only the shards whose key range the batch touches are
  /// re-merged (workload::ApplyBatch, shard-local) and rebuilt, and every
  /// untouched shard is shared with the returned successor. Fences are
  /// kept as-is unless the refresh leaves the largest shard more than
  /// kRebalanceSkew times the equi-depth target, in which case the whole
  /// structure is rebuilt with fresh equi-depth fences.
  struct Refreshed {
    std::shared_ptr<const BasicPartitionedIndex> index;
    /// The full merged key array, contiguous, for callers that publish a
    /// (keys, index) snapshot pair.
    std::shared_ptr<const std::vector<KeyT>> merged_keys;
    size_t shards_rebuilt = 0;
    bool rebalanced = false;
  };
  Refreshed RefreshWithBatch(
      const workload::BasicUpdateBatch<KeyT>& batch) const;
  /// RefreshWithBatch for callers that already hold SORTED lists (a
  /// precondition, not checked): no copies, no re-sort.
  Refreshed RefreshWithSortedBatch(std::span<const KeyT> inserts,
                                   std::span<const KeyT> deletes) const;

  /// False if any inner shard failed to build (off-menu inner spec).
  bool ok() const;

  void LowerBoundBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const override;
  void FindBatch(std::span<const KeyT> keys,
                 std::span<int64_t> out) const override;
  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out) const override;
  void CountEqualBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const override;

  void LowerBoundBatch(std::span<const KeyT> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const override;
  void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out,
                 const ProbeOptions& opts) const override;
  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out,
                       const ProbeOptions& opts) const override;
  void CountEqualBatch(std::span<const KeyT> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const override;

  size_t SpaceBytes() const override;
  size_t size() const override { return n_; }
  bool SupportsOrderedAccess() const override { return ordered_; }

  /// Introspection for tests and placement tooling.
  size_t num_shards() const { return shards_.size(); }
  /// Shard s covers global positions [ShardBase(s), ShardBase(s + 1)).
  size_t ShardBase(size_t s) const { return bases_[s]; }
  /// The shard whose key range contains `key`.
  size_t ShardOf(KeyT key) const;
  /// Shard s's inner index (compare AnyIndex::impl() identities across a
  /// refresh to see which shards were reused vs rebuilt).
  const BasicAnyIndex<KeyT>& shard(size_t s) const { return shards_[s]; }
  /// The fence values, in key width. Truncated representation: fence s
  /// (the lowest key of shard s + 1) is stored only while shard s + 1
  /// starts before the end of the array, so trailing empty shards —
  /// always a suffix, since shard bases are nondecreasing — simply have
  /// no fence entry and can never win the upper_bound routing, at ANY key
  /// width. (The old single-width scheme fenced them at 2^32, a sentinel
  /// no uint32 probe could reach but every 64-bit key above 2^32 could.)
  std::span<const KeyT> fences() const { return fences_; }
  /// True for BuildOwned/RefreshWithBatch products (the refreshable kind).
  bool owns_shard_keys() const { return !owned_.empty(); }

 private:
  /// Uninitialized shell for the factory/refresh paths.
  BasicPartitionedIndex() = default;
  /// The one setup sequence behind both build modes: equi-depth cuts plus
  /// per-shard inner builds, over the caller's array (own_keys = false)
  /// or per-shard owned copies of it (own_keys = true).
  void Init(const IndexSpec& spec, const KeyT* keys, size_t n, bool own_keys);
  /// The shared router: bucket `keys` per shard, run `probe(s, in, out)`
  /// shard-local, scatter `map(s, result)` back to input order. Dispatches
  /// whole shards to the pool per `opts`.
  template <typename Out, typename ProbeFn, typename MapFn>
  void Route(std::span<const KeyT> keys, std::span<Out> out,
             const ProbeOptions& opts, ProbeFn&& probe, MapFn&& map) const;

  size_t n_ = 0;
  bool ordered_ = true;
  IndexSpec spec_{};
  /// At most K - 1 entries; see fences().
  std::vector<KeyT> fences_;
  std::vector<size_t> bases_;  // K + 1 entries, bases_[K] == n
  std::vector<BasicAnyIndex<KeyT>> shards_;  // K entries, maybe empty
  /// Per-shard key buffers, non-empty only on the owned (maintained)
  /// path: shard s's inner index points into *owned_[s], so a refresh can
  /// pass both to the successor and the buffer dies with its last user.
  std::vector<std::shared_ptr<const std::vector<KeyT>>> owned_;
};

using PartitionedIndex = BasicPartitionedIndex<Key>;
using PartitionedIndex64 = BasicPartitionedIndex<Key64>;

/// Wraps a partitioned spec ("part:K/<inner>") into the facade. Returns a
/// falsy handle when the spec is off the menu or not partitioned.
template <typename KeyT>
BasicAnyIndex<KeyT> BuildPartitionedIndexT(const IndexSpec& spec,
                                           const KeyT* keys, size_t n);

AnyIndex BuildPartitionedIndex(const IndexSpec& spec, const Key* keys,
                               size_t n);

}  // namespace cssidx

#endif  // CSSIDX_CORE_PARTITIONED_INDEX_H_
