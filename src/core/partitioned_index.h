#ifndef CSSIDX_CORE_PARTITIONED_INDEX_H_
#define CSSIDX_CORE_PARTITIONED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/any_index.h"
#include "core/index.h"
#include "core/index_spec.h"

// Range-partitioned composite index: the sorted key array is split into K
// contiguous key-range shards (equi-depth fences drawn from the sorted
// data, snapped to duplicate-run starts so no run ever straddles a
// boundary), and each shard holds an independent inner index of any spec
// on the menu. A shard is just a smaller instance of the paper's layout —
// rebuild-cheap and read-fast — which is what makes this the structural
// prerequisite for NUMA placement: shard s's keys, directory, and probes
// can all live on one node, with only the fence table shared.
//
// Every batch op routes by binary-searching the fence table, buckets the
// probes per shard (a counting sort that also remembers each probe's
// input slot), runs the inner group-probing kernels shard-local, and
// scatters results back to input order translated to GLOBAL positions
// (shard base offsets). The facade contract is preserved exactly: a
// "part:K/css:16" index answers every probe with the same positions as a
// bare "css:16" over the whole array — enforced differentially by
// tests/partitioned_index_test.cc.
//
// Parallelism: ProbeOptions{threads} / the "@tN" spec suffix dispatches
// whole shards to the ThreadPool (one task range over shard indexes)
// instead of re-sharding probe spans — the shard is already a contiguous,
// cache-friendly unit of work, and shard tasks scatter to disjoint output
// slots, so there is no merge step and output is bit-identical at every
// thread count.

namespace cssidx {

class PartitionedIndex final : public AnyIndex::Impl {
 public:
  /// Builds K equi-depth shards over keys[0..n) (sorted, must outlive the
  /// index), each holding an inner index built from spec.Inner(). Prefer
  /// BuildPartitionedIndex, which validates the spec and reports
  /// unbuildable configurations as a falsy AnyIndex.
  PartitionedIndex(const IndexSpec& spec, const Key* keys, size_t n);

  /// False if any inner shard failed to build (off-menu inner spec).
  bool ok() const;

  void LowerBoundBatch(std::span<const Key> keys,
                       std::span<size_t> out) const override;
  void FindBatch(std::span<const Key> keys,
                 std::span<int64_t> out) const override;
  void EqualRangeBatch(std::span<const Key> keys,
                       std::span<PositionRange> out) const override;
  void CountEqualBatch(std::span<const Key> keys,
                       std::span<size_t> out) const override;

  void LowerBoundBatch(std::span<const Key> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const override;
  void FindBatch(std::span<const Key> keys, std::span<int64_t> out,
                 const ProbeOptions& opts) const override;
  void EqualRangeBatch(std::span<const Key> keys,
                       std::span<PositionRange> out,
                       const ProbeOptions& opts) const override;
  void CountEqualBatch(std::span<const Key> keys, std::span<size_t> out,
                       const ProbeOptions& opts) const override;

  size_t SpaceBytes() const override;
  size_t size() const override { return n_; }
  bool SupportsOrderedAccess() const override { return ordered_; }

  /// Introspection for tests and placement tooling.
  size_t num_shards() const { return shards_.size(); }
  /// Shard s covers global positions [ShardBase(s), ShardBase(s + 1)).
  size_t ShardBase(size_t s) const { return bases_[s]; }
  /// The shard whose key range contains `key`.
  size_t ShardOf(Key key) const;

 private:
  /// The shared router: bucket `keys` per shard, run `probe(s, in, out)`
  /// shard-local, scatter `map(s, result)` back to input order. Dispatches
  /// whole shards to the pool per `opts`.
  template <typename Out, typename ProbeFn, typename MapFn>
  void Route(std::span<const Key> keys, std::span<Out> out,
             const ProbeOptions& opts, ProbeFn&& probe, MapFn&& map) const;

  size_t n_ = 0;
  bool ordered_ = true;
  /// fences_[s] is the lowest key of shard s + 1, widened to uint64 so
  /// trailing empty shards can fence at 2^32 — above every probe, which a
  /// UINT32_MAX sentinel could not be. Probe k routes to the first shard
  /// whose fence exceeds k.
  std::vector<uint64_t> fences_;  // K - 1 entries
  std::vector<size_t> bases_;     // K + 1 entries, bases_[K] == n
  std::vector<AnyIndex> shards_;  // K entries, possibly empty indexes
};

/// Wraps a partitioned spec ("part:K/<inner>") into the facade. Returns a
/// falsy AnyIndex when the spec is off the menu or not partitioned.
AnyIndex BuildPartitionedIndex(const IndexSpec& spec, const Key* keys,
                               size_t n);

}  // namespace cssidx

#endif  // CSSIDX_CORE_PARTITIONED_INDEX_H_
