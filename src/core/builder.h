#ifndef CSSIDX_CORE_BUILDER_H_
#define CSSIDX_CORE_BUILDER_H_

#include <vector>

#include "core/any_index.h"
#include "core/index.h"
#include "core/index_spec.h"

// Runtime construction of any index in the suite, keyed by IndexSpec. Node
// sizes are template parameters (the paper specializes per node size,
// §6.2), so the builder dispatches over a fixed menu of instantiations —
// the sizes swept in Figures 12/13 — and returns an empty AnyIndex for
// specs off the menu. The spec's key-width dimension picks the facade: a
// "css:16" builds through BuildIndex (4-byte keys), a "css64:16" through
// BuildIndex64 — a spec whose width disagrees with the entry point is
// off-menu for that entry point and yields a falsy handle.

namespace cssidx {

/// Builds the requested index over keys[0..n) (sorted, must outlive the
/// returned handle) for either key width. Returns a falsy handle if
/// !spec.OnMenu() or if spec.key_width() != sizeof(KeyT).
template <typename KeyT>
BasicAnyIndex<KeyT> BuildIndexT(const IndexSpec& spec, const KeyT* keys,
                                size_t n);

/// The 4-byte-key entry points every existing caller uses.
AnyIndex BuildIndex(const IndexSpec& spec, const Key* keys, size_t n);
AnyIndex BuildIndex(const IndexSpec& spec, const std::vector<Key>& keys);

/// The 8-byte-key twins ("css64:16" and friends).
AnyIndex64 BuildIndex64(const IndexSpec& spec, const Key64* keys, size_t n);
AnyIndex64 BuildIndex64(const IndexSpec& spec,
                        const std::vector<Key64>& keys);

}  // namespace cssidx

#endif  // CSSIDX_CORE_BUILDER_H_
