#ifndef CSSIDX_CORE_BUILDER_H_
#define CSSIDX_CORE_BUILDER_H_

#include <vector>

#include "core/any_index.h"
#include "core/index.h"
#include "core/index_spec.h"

// Runtime construction of any index in the suite, keyed by IndexSpec. Node
// sizes are template parameters (the paper specializes per node size,
// §6.2), so the builder dispatches over a fixed menu of instantiations —
// the sizes swept in Figures 12/13 — and returns an empty AnyIndex for
// specs off the menu.

namespace cssidx {

/// Builds the requested index over keys[0..n) (sorted, must outlive the
/// returned handle). Returns a falsy AnyIndex if !spec.OnMenu().
AnyIndex BuildIndex(const IndexSpec& spec, const Key* keys, size_t n);

AnyIndex BuildIndex(const IndexSpec& spec, const std::vector<Key>& keys);

}  // namespace cssidx

#endif  // CSSIDX_CORE_BUILDER_H_
