#ifndef CSSIDX_CORE_BUILDER_H_
#define CSSIDX_CORE_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/any_index.h"
#include "core/index.h"

// Runtime construction of any index in the suite. Node sizes are template
// parameters (the paper specializes per node size, §6.2), so the builder
// dispatches over a fixed menu of instantiations — the sizes swept in
// Figures 12/13 — and rejects sizes outside the menu.

namespace cssidx {

enum class Method {
  kBinarySearch,
  kTreeBinarySearch,
  kInterpolation,
  kTTree,
  kBPlusTree,
  kFullCss,
  kLevelCss,
  kHash,
};

struct BuildOptions {
  /// Keys (full CSS / T-tree) or 4-byte slots (level CSS / B+-tree) per
  /// node. Menu: 4, 8, 16, 24, 32, 64, 128 (level CSS: powers of two only;
  /// B+-tree: >= 8).
  int node_entries = 16;
  /// log2 of the hash directory size.
  int hash_dir_bits = 22;
};

/// Human-readable method name, matching the figures' legends.
const char* MethodName(Method method);

/// All methods in the figures' legend order.
std::vector<Method> AllMethods();

/// Builds the requested index over keys[0..n) (sorted, must outlive the
/// handle). Returns nullptr if the options are not on the menu for that
/// method.
std::unique_ptr<IndexHandle> BuildIndex(Method method, const Key* keys,
                                        size_t n, const BuildOptions& options);

std::unique_ptr<IndexHandle> BuildIndex(Method method,
                                        const std::vector<Key>& keys,
                                        const BuildOptions& options);

}  // namespace cssidx

#endif  // CSSIDX_CORE_BUILDER_H_
