#include "serve/update_queue.h"

#include <algorithm>
#include <utility>

namespace cssidx::serve {

UpdateQueue::UpdateQueue(size_t capacity, Admission admission)
    : capacity_(capacity == 0 ? 1 : capacity), admission_(admission) {}

UpdateQueue::PushResult UpdateQueue::Push(QueuedUpdate update) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushResult::kClosed;
  if (queue_.size() >= capacity_) {
    if (admission_ == Admission::kReject) {
      ++stats_.rejected_batches;
      return PushResult::kRejected;
    }
    ++stats_.blocked_pushes;
    not_full_.wait(lock,
                   [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return PushResult::kClosed;
  }
  ++stats_.enqueued_batches;
  stats_.enqueued_keys +=
      update.batch.inserts.size() + update.batch.deletes.size();
  queue_.push_back(std::move(update));
  stats_.depth_high_water = std::max(stats_.depth_high_water, queue_.size());
  not_empty_.notify_one();
  return PushResult::kOk;
}

bool UpdateQueue::DrainAll(std::vector<QueuedUpdate>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and nothing left
  while (!queue_.empty()) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  // Every waiting producer can make progress now, not just one.
  not_full_.notify_all();
  return true;
}

void UpdateQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

QueueStats UpdateQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t UpdateQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

workload::UpdateBatch Coalesce(
    std::span<const workload::UpdateBatch> batches) {
  workload::UpdateBatch acc;
  for (const workload::UpdateBatch& next : batches) {
    if (!next.deletes.empty()) {
      // A later delete kills every earlier occurrence of the key —
      // including inserts still waiting in the accumulator.
      std::vector<uint32_t> doomed = next.deletes;
      std::sort(doomed.begin(), doomed.end());
      std::erase_if(acc.inserts, [&](uint32_t k) {
        return std::binary_search(doomed.begin(), doomed.end(), k);
      });
      // Deletes accumulate as a sorted set: deleting twice equals
      // deleting once (every occurrence goes either way).
      std::vector<uint32_t> merged;
      merged.reserve(acc.deletes.size() + doomed.size());
      std::set_union(acc.deletes.begin(), acc.deletes.end(), doomed.begin(),
                     doomed.end(), std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      acc.deletes = std::move(merged);
    }
    // Inserts append in arrival order; an insert after its key's delete
    // survives (deletes apply first), matching sequential application.
    acc.inserts.insert(acc.inserts.end(), next.inserts.begin(),
                       next.inserts.end());
  }
  return acc;
}

}  // namespace cssidx::serve
