#include "serve/update_queue.h"

#include <algorithm>
#include <utility>

namespace cssidx::serve {

UpdateQueue::UpdateQueue(size_t capacity, Admission admission)
    : capacity_(capacity == 0 ? 1 : capacity), admission_(admission) {}

UpdateQueue::PushResult UpdateQueue::Push(QueuedUpdate update) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushResult::kClosed;
  if (queue_.size() >= capacity_) {
    if (admission_ == Admission::kReject) {
      ++stats_.rejected_batches;
      return PushResult::kRejected;
    }
    ++stats_.blocked_pushes;
    not_full_.wait(lock,
                   [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return PushResult::kClosed;
  }
  ++stats_.enqueued_batches;
  stats_.enqueued_keys +=
      update.batch.inserts.size() + update.batch.deletes.size() +
      update.batch64.inserts.size() + update.batch64.deletes.size() +
      update.strings.inserts.size() + update.strings.deletes.size();
  queue_.push_back(std::move(update));
  stats_.depth_high_water = std::max(stats_.depth_high_water, queue_.size());
  not_empty_.notify_one();
  return PushResult::kOk;
}

bool UpdateQueue::DrainAll(std::vector<QueuedUpdate>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and nothing left
  while (!queue_.empty()) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  // Every waiting producer can make progress now, not just one.
  not_full_.notify_all();
  return true;
}

void UpdateQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

QueueStats UpdateQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t UpdateQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace cssidx::serve
