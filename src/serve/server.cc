#include "serve/server.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "advisor/advisor.h"

namespace cssidx::serve {
namespace {

/// LowerBound against one held snapshot: ordered methods descend their
/// structure; hash falls back to binary search on the snapshot's sorted
/// key array (the same fallback the engine's SortIndex uses), so RANGE
/// works for every spec on the menu — at either key width.
template <typename VersionT, typename KeyT>
size_t SnapshotLowerBound(const VersionT& snap, KeyT k) {
  if (snap.index().SupportsOrderedAccess()) return snap.index().LowerBound(k);
  const auto& keys = snap.keys();
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
}

/// The ID a string-table probe uses for a value absent from the domain
/// dictionary. Real IDs are dense from 0, so UINT32_MAX is unreachable
/// short of a dictionary with 2^32 distinct values; probing it yields
/// "absent"/count-0, which is exactly the semantics of a missing value.
constexpr uint32_t kAbsentId = std::numeric_limits<uint32_t>::max();

constexpr uint64_t kMax32 = std::numeric_limits<uint32_t>::max();

}  // namespace

Server::Server() : Server(Options()) {}

Server::Server(const Options& options)
    : options_(options),
      queue_(options.queue_capacity, options.admission) {}

Server::~Server() { Stop(); }

uint32_t Server::CreateTable(const std::string& name,
                             std::vector<uint32_t> keys,
                             const IndexSpec& spec) {
  if (started_) {
    throw std::logic_error("CreateTable after Start: the table set is "
                           "immutable once the server is running");
  }
  if (table_ids_.count(name) != 0) {
    throw std::invalid_argument("duplicate table name " + name);
  }
  std::sort(keys.begin(), keys.end());
  auto index = std::make_unique<MaintainedIndex>(spec, std::move(keys));
  if (!index->ok()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  if (options_.collect_stats) index->EnableStats();
  const uint32_t id = static_cast<uint32_t>(tables_.size());
  tables_.push_back(TableEntry{name, TableKind::kU32, std::move(index)});
  table_ids_[name] = id;
  return id;
}

uint32_t Server::CreateTable64(const std::string& name,
                               std::vector<uint64_t> keys,
                               const IndexSpec& spec) {
  if (started_) {
    throw std::logic_error("CreateTable64 after Start: the table set is "
                           "immutable once the server is running");
  }
  if (table_ids_.count(name) != 0) {
    throw std::invalid_argument("duplicate table name " + name);
  }
  std::sort(keys.begin(), keys.end());
  auto index = std::make_unique<MaintainedIndex64>(spec.WithKeyWidth(8),
                                                   std::move(keys));
  if (!index->ok()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  if (options_.collect_stats) index->EnableStats();
  const uint32_t id = static_cast<uint32_t>(tables_.size());
  TableEntry entry;
  entry.name = name;
  entry.kind = TableKind::kU64;
  entry.index64 = std::move(index);
  tables_.push_back(std::move(entry));
  table_ids_[name] = id;
  return id;
}

uint32_t Server::CreateStringTable(const std::string& name,
                                   std::vector<std::string> values,
                                   const IndexSpec& spec) {
  if (started_) {
    throw std::logic_error("CreateStringTable after Start: the table set "
                           "is immutable once the server is running");
  }
  if (table_ids_.count(name) != 0) {
    throw std::invalid_argument("duplicate table name " + name);
  }
  // The dictionary stores each distinct value once; the key column keeps
  // every occurrence, encoded (one domain lookup per cell — §2.1's load
  // path, and the workload CSS-trees were built for).
  auto dom = std::make_shared<const domain::StringDomain>(
      domain::StringDomain::FromValues(values));
  std::vector<uint32_t> ids;
  ids.reserve(values.size());
  for (const std::string& v : values) ids.push_back(*dom->Encode(v));
  std::sort(ids.begin(), ids.end());
  auto index =
      std::make_unique<MaintainedIndex>(spec.WithKeyWidth(4), std::move(ids));
  if (!index->ok()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  if (options_.collect_stats) index->EnableStats();
  const uint32_t id = static_cast<uint32_t>(tables_.size());
  TableEntry entry;
  entry.name = name;
  entry.kind = TableKind::kString;
  entry.index = std::move(index);
  entry.strings = std::make_unique<StringHead>();
  entry.strings->current = std::make_shared<const StringVersion>(
      StringVersion{dom, entry.index->Snapshot()});
  tables_.push_back(std::move(entry));
  table_ids_[name] = id;
  return id;
}

void Server::Start() {
  if (started_) throw std::logic_error("Server already started");
  started_ = true;
  writer_ = std::thread(&Server::WriterLoop, this);
}

void Server::Stop() {
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  stopped_ = true;
}

Session Server::OpenSession() { return Session(this); }

ServerStats Server::writer_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::shared_ptr<const MaintainedIndex::Version> Server::TableSnapshot(
    const std::string& name) const {
  const TableEntry* entry = FindTable(name);
  if (entry == nullptr) throw std::out_of_range("unknown table " + name);
  if (entry->kind == TableKind::kU64) {
    throw std::out_of_range("table " + name +
                            " holds 8-byte keys; use TableSnapshot64");
  }
  if (entry->kind == TableKind::kString) {
    return entry->strings->Snapshot()->ids;
  }
  return entry->index->Snapshot();
}

std::shared_ptr<const MaintainedIndex64::Version> Server::TableSnapshot64(
    const std::string& name) const {
  const TableEntry* entry = FindTable(name);
  if (entry == nullptr) throw std::out_of_range("unknown table " + name);
  if (entry->kind != TableKind::kU64) {
    throw std::out_of_range("table " + name + " does not hold 8-byte keys");
  }
  return entry->index64->Snapshot();
}

std::shared_ptr<const domain::StringDomain> Server::TableDomain(
    const std::string& name) const {
  const TableEntry* entry = FindTable(name);
  if (entry == nullptr) throw std::out_of_range("unknown table " + name);
  if (entry->kind != TableKind::kString) {
    throw std::out_of_range("table " + name + " is not a string table");
  }
  return entry->strings->Snapshot()->domain;
}

const MaintenanceStats& Server::TableMaintenanceStats(
    const std::string& name) const {
  const TableEntry* entry = FindTable(name);
  if (entry == nullptr) throw std::out_of_range("unknown table " + name);
  return entry->kind == TableKind::kU64 ? entry->index64->stats()
                                        : entry->index->stats();
}

WorkloadProfile Server::TableWorkloadProfile(const std::string& name) const {
  const TableEntry* entry = FindTable(name);
  if (entry == nullptr) throw std::out_of_range("unknown table " + name);
  const std::shared_ptr<ProbeStatsCollector>& collector =
      entry->kind == TableKind::kU64 ? entry->index64->stats_collector()
                                     : entry->index->stats_collector();
  if (!collector) {
    throw std::logic_error("stats not enabled for table " + name +
                           " (Server::Options::collect_stats)");
  }
  return collector->Profile();
}

const IndexSpec& Server::TableSpec(const std::string& name) const {
  const TableEntry* entry = FindTable(name);
  if (entry == nullptr) throw std::out_of_range("unknown table " + name);
  return entry->kind == TableKind::kU64 ? entry->index64->spec()
                                        : entry->index->spec();
}

const Server::TableEntry* Server::FindTable(const std::string& name) const {
  auto it = table_ids_.find(name);
  return it == table_ids_.end() ? nullptr : &tables_[it->second];
}

void Server::WriterLoop() {
  std::vector<QueuedUpdate> drained;
  while (queue_.DrainAll(&drained)) {
    ServerStats delta;
    ++delta.drain_cycles;
    delta.batches_applied += drained.size();
    // Group the backlog per table, preserving arrival order within and
    // across groups (first-appearance order), then coalesce each group
    // into ONE sorted batch: one version published per table per cycle,
    // however deep the backlog got.
    std::vector<uint32_t> order;
    std::map<uint32_t, std::vector<QueuedUpdate>> groups;
    for (QueuedUpdate& update : drained) {
      auto [it, fresh] = groups.try_emplace(update.table);
      if (fresh) order.push_back(update.table);
      it->second.push_back(std::move(update));
    }
    for (uint32_t table : order) {
      std::vector<QueuedUpdate>& updates = groups[table];
      TableEntry& entry = tables_[table];
      // Spec-swap requests ride the queue (so they serialize with writes)
      // but never fold into a Coalesce group: pull them out, apply the
      // cycle's data first, then the last requested swap — the swap sees
      // every write that preceded it.
      std::optional<IndexSpec> respec;
      std::erase_if(updates, [&](const QueuedUpdate& u) {
        if (u.respec) respec = u.respec_spec;
        return u.respec;
      });
      if (updates.empty()) {
        ApplyRespec(entry, table, respec, &delta);
        continue;
      }
      switch (entry.kind) {
        case TableKind::kU32: {
          std::vector<workload::UpdateBatch> batches;
          batches.reserve(updates.size());
          for (QueuedUpdate& u : updates) batches.push_back(std::move(u.batch));
          workload::UpdateBatch merged = Coalesce(batches);
          std::sort(merged.inserts.begin(), merged.inserts.end());
          delta.keys_inserted += merged.inserts.size();
          delta.keys_deleted += merged.deletes.size();
          const uint64_t before = entry.index->sequence();
          entry.index->ApplySortedBatch(std::move(merged.inserts),
                                        std::move(merged.deletes));
          const uint64_t after = entry.index->sequence();
          if (after != before) ++delta.groups_published;
          if (options_.journal) {
            AppliedGroup group;
            group.table = table;
            group.sequence = after;
            group.batches = std::move(batches);
            journal_.push_back(std::move(group));
          }
          break;
        }
        case TableKind::kU64: {
          std::vector<workload::UpdateBatch64> batches;
          batches.reserve(updates.size());
          for (QueuedUpdate& u : updates) {
            batches.push_back(std::move(u.batch64));
          }
          workload::UpdateBatch64 merged = Coalesce(batches);
          std::sort(merged.inserts.begin(), merged.inserts.end());
          delta.keys_inserted += merged.inserts.size();
          delta.keys_deleted += merged.deletes.size();
          const uint64_t before = entry.index64->sequence();
          entry.index64->ApplySortedBatch(std::move(merged.inserts),
                                          std::move(merged.deletes));
          const uint64_t after = entry.index64->sequence();
          if (after != before) ++delta.groups_published;
          if (options_.journal) {
            AppliedGroup group;
            group.table = table;
            group.sequence = after;
            group.batches64 = std::move(batches);
            journal_.push_back(std::move(group));
          }
          break;
        }
        case TableKind::kString: {
          std::vector<StringUpdateBatch> batches;
          batches.reserve(updates.size());
          for (QueuedUpdate& u : updates) {
            batches.push_back(std::move(u.strings));
          }
          StringUpdateBatch merged = Coalesce(batches);
          delta.keys_inserted += merged.inserts.size();
          delta.keys_deleted += merged.deletes.size();
          const uint64_t before = entry.index->sequence();
          std::shared_ptr<const StringVersion> head =
              entry.strings->Snapshot();
          std::shared_ptr<const domain::StringDomain> dom = head->domain;
          // Inserts of values the dictionary has never seen force a
          // dictionary rebuild (§2.1's batch-update model). Deletes never
          // grow the domain: a value absent from the dictionary has no
          // rows, so its delete is a no-op and is dropped at encode.
          std::vector<std::string> fresh_values;
          for (const std::string& v : merged.inserts) {
            if (!dom->Encode(v)) fresh_values.push_back(v);
          }
          if (!fresh_values.empty()) {
            // Grow a copy of the dictionary. The remap is strictly
            // increasing (the dictionary is order-preserving), so the
            // remapped snapshot keys are still sorted and feed straight
            // into the sorted-batch merge; the ID index is rebuilt over
            // the result — renumbering invalidates every shard anyway,
            // so there is nothing incremental to salvage.
            auto grown = std::make_shared<domain::StringDomain>(*dom);
            const std::vector<uint32_t> remap =
                grown->AddBatch(fresh_values);
            std::shared_ptr<const MaintainedIndex::Version> snap =
                entry.index->Snapshot();
            std::vector<uint32_t> remapped;
            remapped.reserve(snap->keys().size());
            for (uint32_t id : snap->keys()) remapped.push_back(remap[id]);
            std::vector<uint32_t> insert_ids, delete_ids;
            insert_ids.reserve(merged.inserts.size());
            for (const std::string& v : merged.inserts) {
              insert_ids.push_back(*grown->Encode(v));
            }
            for (const std::string& v : merged.deletes) {
              if (std::optional<uint32_t> id = grown->Encode(v)) {
                delete_ids.push_back(*id);
              }
            }
            std::sort(insert_ids.begin(), insert_ids.end());
            std::sort(delete_ids.begin(), delete_ids.end());
            entry.index->Rebuild(
                workload::ApplySortedBatch(remapped, insert_ids, delete_ids));
            dom = std::move(grown);
          } else {
            // Every value already has an ID: encode and apply like any
            // integer batch (shard-incremental for part:K specs).
            std::vector<uint32_t> insert_ids, delete_ids;
            insert_ids.reserve(merged.inserts.size());
            for (const std::string& v : merged.inserts) {
              insert_ids.push_back(*dom->Encode(v));
            }
            for (const std::string& v : merged.deletes) {
              if (std::optional<uint32_t> id = dom->Encode(v)) {
                delete_ids.push_back(*id);
              }
            }
            std::sort(insert_ids.begin(), insert_ids.end());
            std::sort(delete_ids.begin(), delete_ids.end());
            entry.index->ApplySortedBatch(std::move(insert_ids),
                                          std::move(delete_ids));
          }
          const uint64_t after = entry.index->sequence();
          if (after != before) ++delta.groups_published;
          // Publish the (dictionary, ID-index) pair atomically — readers
          // must never translate against one generation and probe the
          // other.
          entry.strings->Publish(std::make_shared<const StringVersion>(
              StringVersion{std::move(dom), entry.index->Snapshot()}));
          if (options_.journal) {
            AppliedGroup group;
            group.table = table;
            group.sequence = after;
            group.string_batches = std::move(batches);
            journal_.push_back(std::move(group));
          }
          break;
        }
      }
      ApplyRespec(entry, table, respec, &delta);
    }
    drained.clear();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.drain_cycles += delta.drain_cycles;
    stats_.batches_applied += delta.batches_applied;
    stats_.groups_published += delta.groups_published;
    stats_.keys_inserted += delta.keys_inserted;
    stats_.keys_deleted += delta.keys_deleted;
  }
}

void Server::ApplyRespec(TableEntry& entry, uint32_t table,
                         const std::optional<IndexSpec>& respec,
                         ServerStats* delta) {
  if (!respec) return;
  bool swapped = false;
  uint64_t after = 0;
  switch (entry.kind) {
    case TableKind::kU32:
      swapped = entry.index->RebuildWithSpec(*respec);
      after = entry.index->sequence();
      break;
    case TableKind::kU64:
      swapped = entry.index64->RebuildWithSpec(*respec);
      after = entry.index64->sequence();
      break;
    case TableKind::kString: {
      // Respec the ID index; the dictionary is untouched (IDs don't
      // renumber), but the (dictionary, index) pair must republish
      // together so readers see the swap as one version step.
      swapped = entry.index->RebuildWithSpec(*respec);
      after = entry.index->sequence();
      if (swapped) {
        std::shared_ptr<const StringVersion> head = entry.strings->Snapshot();
        entry.strings->Publish(std::make_shared<const StringVersion>(
            StringVersion{head->domain, entry.index->Snapshot()}));
      }
      break;
    }
  }
  if (!swapped) return;
  ++delta->groups_published;
  if (options_.journal) {
    AppliedGroup group;
    group.table = table;
    group.sequence = after;
    group.respec = true;
    group.respec_spec = *respec;
    journal_.push_back(std::move(group));
  }
}

StatementResult Session::Execute(std::string_view text) {
  ++stats_.statements;
  std::string error;
  std::optional<Statement> stmt = ParseStatement(text, &error);
  if (!stmt) {
    ++stats_.parse_errors;
    StatementResult result;
    result.status = StatementStatus::kParseError;
    result.error = std::move(error);
    return result;
  }
  return ExecuteParsed(*stmt);
}

StatementResult Session::ExecuteParsed(const Statement& stmt) {
  using TableKind = Server::TableKind;
  StatementResult result;
  const Server::TableEntry* table = server_->FindTable(stmt.table);
  if (table == nullptr) {
    result.status = StatementStatus::kUnknownTable;
    result.error = "unknown table " + stmt.table;
    return result;
  }

  // Key typing is checked here, at execute time, against the table the
  // statement actually names — the grammar itself is width-agnostic.
  // Each failure mode gets a distinct message: non-numeric key on an
  // integer table vs. a numeric key past the table's width.
  auto check_numeric = [&](size_t i, bool wide) {
    if (!stmt.keys_numeric[i]) {
      result.status = StatementStatus::kBadKey;
      result.error = "bad key '" + stmt.key_tokens[i] + "': table '" +
                     stmt.table + "' holds integer keys";
      return false;
    }
    if (!wide && stmt.keys[i] > kMax32) {
      result.status = StatementStatus::kBadKey;
      result.error = "key '" + stmt.key_tokens[i] +
                     "' out of range for 32-bit table '" + stmt.table +
                     "' (max 4294967295)";
      return false;
    }
    return true;
  };
  auto narrow32 = [&]() -> std::optional<std::vector<uint32_t>> {
    std::vector<uint32_t> keys(stmt.keys.size());
    for (size_t i = 0; i < stmt.keys.size(); ++i) {
      if (!check_numeric(i, /*wide=*/false)) return std::nullopt;
      keys[i] = static_cast<uint32_t>(stmt.keys[i]);
    }
    return keys;
  };
  auto check_wide = [&]() {
    for (size_t i = 0; i < stmt.keys.size(); ++i) {
      if (!check_numeric(i, /*wide=*/true)) return false;
    }
    return true;
  };
  // String tables probe on raw tokens translated through the dictionary;
  // values it has never seen probe as kAbsentId (absent / count 0).
  auto encode_ids = [&](const domain::StringDomain& dom) {
    std::vector<uint32_t> ids(stmt.key_tokens.size());
    for (size_t i = 0; i < stmt.key_tokens.size(); ++i) {
      ids[i] = dom.Encode(stmt.key_tokens[i]).value_or(kAbsentId);
    }
    return ids;
  };
  auto bump_probes = [&](uint64_t n) {
    stats_.probes += n;
    server_->probes_served_.fetch_add(n, std::memory_order_relaxed);
  };

  switch (stmt.verb) {
    case Verb::kFind: {
      result.positions.resize(stmt.keys.size());
      switch (table->kind) {
        case TableKind::kU32: {
          std::optional<std::vector<uint32_t>> keys = narrow32();
          if (!keys) return result;
          auto snap = table->index->Snapshot();
          snap->index().FindBatch(*keys, result.positions);
          result.version = snap->sequence();
          break;
        }
        case TableKind::kU64: {
          if (!check_wide()) return result;
          auto snap = table->index64->Snapshot();
          snap->index().FindBatch(stmt.keys, result.positions);
          result.version = snap->sequence();
          break;
        }
        case TableKind::kString: {
          auto sv = table->strings->Snapshot();
          const std::vector<uint32_t> ids = encode_ids(*sv->domain);
          sv->ids->index().FindBatch(ids, result.positions);
          result.version = sv->ids->sequence();
          break;
        }
      }
      bump_probes(stmt.keys.size());
      return result;
    }
    case Verb::kCount: {
      result.counts.resize(stmt.keys.size());
      switch (table->kind) {
        case TableKind::kU32: {
          std::optional<std::vector<uint32_t>> keys = narrow32();
          if (!keys) return result;
          auto snap = table->index->Snapshot();
          snap->index().CountEqualBatch(*keys, result.counts);
          result.version = snap->sequence();
          break;
        }
        case TableKind::kU64: {
          if (!check_wide()) return result;
          auto snap = table->index64->Snapshot();
          snap->index().CountEqualBatch(stmt.keys, result.counts);
          result.version = snap->sequence();
          break;
        }
        case TableKind::kString: {
          auto sv = table->strings->Snapshot();
          const std::vector<uint32_t> ids = encode_ids(*sv->domain);
          sv->ids->index().CountEqualBatch(ids, result.counts);
          result.version = sv->ids->sequence();
          break;
        }
      }
      for (size_t c : result.counts) result.count += c;
      bump_probes(stmt.keys.size());
      return result;
    }
    case Verb::kRange: {
      if (table->kind != TableKind::kString && !stmt.bounds_numeric) {
        result.status = StatementStatus::kBadKey;
        result.error = "bad bounds '" + stmt.lo_token + "' '" +
                       stmt.hi_token + "': table '" + stmt.table +
                       "' holds integer keys";
        return result;
      }
      switch (table->kind) {
        case TableKind::kU32: {
          auto snap = table->index->Snapshot();
          // [lo, hi) stays width-independent: a bound past the table's
          // max key clamps to end-of-array instead of erroring, so
          // "RANGE t 0 4294967296" covers a whole 32-bit table.
          const size_t n = snap->keys().size();
          if (stmt.hi > stmt.lo) {
            result.range_begin =
                stmt.lo > kMax32
                    ? n
                    : SnapshotLowerBound(*snap,
                                         static_cast<uint32_t>(stmt.lo));
            result.range_end =
                stmt.hi > kMax32
                    ? n
                    : SnapshotLowerBound(*snap,
                                         static_cast<uint32_t>(stmt.hi));
            result.count = result.range_end - result.range_begin;
          }
          result.version = snap->sequence();
          break;
        }
        case TableKind::kU64: {
          auto snap = table->index64->Snapshot();
          if (stmt.hi > stmt.lo) {
            result.range_begin = SnapshotLowerBound(*snap, stmt.lo);
            result.range_end = SnapshotLowerBound(*snap, stmt.hi);
            result.count = result.range_end - result.range_begin;
          }
          result.version = snap->sequence();
          break;
        }
        case TableKind::kString: {
          // The ID image of a string range predicate (§2.1: IDs are
          // order-preserving): [lo, hi) over values becomes
          // [LowerBoundId(lo), LowerBoundId(hi)) over IDs.
          auto sv = table->strings->Snapshot();
          const uint32_t lo_id = sv->domain->LowerBoundId(stmt.lo_token);
          const uint32_t hi_id = sv->domain->LowerBoundId(stmt.hi_token);
          if (hi_id > lo_id) {
            result.range_begin = SnapshotLowerBound(*sv->ids, lo_id);
            result.range_end = SnapshotLowerBound(*sv->ids, hi_id);
            result.count = result.range_end - result.range_begin;
          }
          result.version = sv->ids->sequence();
          break;
        }
      }
      bump_probes(2);
      return result;
    }
    case Verb::kJoin: {
      const Server::TableEntry* inner = server_->FindTable(stmt.table2);
      if (inner == nullptr) {
        result.status = StatementStatus::kUnknownTable;
        result.error = "unknown table " + stmt.table2;
        return result;
      }
      if (table->kind != inner->kind) {
        result.status = StatementStatus::kBadKey;
        result.error = "JOIN requires both tables to hold the same key "
                       "type: '" +
                       stmt.table + "' and '" + stmt.table2 + "' differ";
        return result;
      }
      // Both sides pinned to one snapshot each; the outer's sorted keys
      // stream through the inner's CountEqualBatch a block at a time, so
      // the pair cardinality is consistent-as-of (version, version2).
      constexpr size_t kBlock = 4096;
      switch (table->kind) {
        case TableKind::kU32: {
          auto outer_snap = table->index->Snapshot();
          auto inner_snap = inner->index->Snapshot();
          const std::vector<uint32_t>& outer_keys = outer_snap->keys();
          std::vector<size_t> counts(std::min(outer_keys.size(), kBlock));
          for (size_t base = 0; base < outer_keys.size(); base += kBlock) {
            const size_t len = std::min(outer_keys.size() - base, kBlock);
            inner_snap->index().CountEqualBatch(
                std::span<const uint32_t>(&outer_keys[base], len),
                std::span<size_t>(counts.data(), len));
            for (size_t i = 0; i < len; ++i) result.count += counts[i];
          }
          result.version = outer_snap->sequence();
          result.version2 = inner_snap->sequence();
          bump_probes(outer_keys.size());
          break;
        }
        case TableKind::kU64: {
          auto outer_snap = table->index64->Snapshot();
          auto inner_snap = inner->index64->Snapshot();
          const std::vector<uint64_t>& outer_keys = outer_snap->keys();
          std::vector<size_t> counts(std::min(outer_keys.size(), kBlock));
          for (size_t base = 0; base < outer_keys.size(); base += kBlock) {
            const size_t len = std::min(outer_keys.size() - base, kBlock);
            inner_snap->index().CountEqualBatch(
                std::span<const uint64_t>(&outer_keys[base], len),
                std::span<size_t>(counts.data(), len));
            for (size_t i = 0; i < len; ++i) result.count += counts[i];
          }
          result.version = outer_snap->sequence();
          result.version2 = inner_snap->sequence();
          bump_probes(outer_keys.size());
          break;
        }
        case TableKind::kString: {
          // Two string tables have two dictionaries, so IDs don't line
          // up. Translate once — outer ID -> value -> inner ID (absent
          // values get kAbsentId, count 0) — then join on inner IDs.
          auto outer_sv = table->strings->Snapshot();
          auto inner_sv = inner->strings->Snapshot();
          const domain::StringDomain& outer_dom = *outer_sv->domain;
          const domain::StringDomain& inner_dom = *inner_sv->domain;
          std::vector<uint32_t> translate(outer_dom.size());
          for (uint32_t i = 0; i < translate.size(); ++i) {
            translate[i] =
                inner_dom.Encode(outer_dom.Decode(i)).value_or(kAbsentId);
          }
          const std::vector<uint32_t>& outer_keys = outer_sv->ids->keys();
          std::vector<uint32_t> block(std::min(outer_keys.size(), kBlock));
          std::vector<size_t> counts(block.size());
          for (size_t base = 0; base < outer_keys.size(); base += kBlock) {
            const size_t len = std::min(outer_keys.size() - base, kBlock);
            for (size_t i = 0; i < len; ++i) {
              block[i] = translate[outer_keys[base + i]];
            }
            inner_sv->ids->index().CountEqualBatch(
                std::span<const uint32_t>(block.data(), len),
                std::span<size_t>(counts.data(), len));
            for (size_t i = 0; i < len; ++i) result.count += counts[i];
          }
          result.version = outer_sv->ids->sequence();
          result.version2 = inner_sv->ids->sequence();
          bump_probes(outer_keys.size());
          break;
        }
      }
      return result;
    }
    case Verb::kAdvise: {
      // The profile lives on the table's collector (string tables advise
      // on their ID index — same probes, same mix). Model-only here: the
      // writer, not the session, pays any rebuild.
      const std::shared_ptr<ProbeStatsCollector>& collector =
          table->kind == TableKind::kU64 ? table->index64->stats_collector()
                                         : table->index->stats_collector();
      if (!collector) {
        result.status = StatementStatus::kUnsupported;
        result.error =
            "ADVISE needs stats collection (Server::Options::collect_stats)";
        return result;
      }
      advisor::AdvisorOptions opts;
      opts.space_budget_bytes = server_->options_.advise_space_budget_bytes;
      opts.key_width = table->kind == TableKind::kU64 ? 8 : 4;
      size_t n = 0;
      if (table->kind == TableKind::kU64) {
        auto snap = table->index64->Snapshot();
        n = snap->keys().size();
        result.version = snap->sequence();
      } else {
        auto snap = table->index->Snapshot();
        n = snap->keys().size();
        result.version = snap->sequence();
      }
      advisor::Recommendation rec =
          advisor::Advise(collector->Profile(), n, opts);
      if (!rec.ok) {
        result.status = StatementStatus::kUnsupported;
        result.error = rec.error;
        return result;
      }
      result.advice = rec.rationale;
      result.recommended_spec = rec.spec.ToString();
      if (!stmt.apply) return result;
      if (!server_->options_.allow_spec_swap) {
        result.status = StatementStatus::kUnsupported;
        result.error = "ADVISE APPLY needs Server::Options::allow_spec_swap";
        return result;
      }
      QueuedUpdate update;
      update.table = static_cast<uint32_t>(table - server_->tables_.data());
      update.respec = true;
      update.respec_spec = rec.spec;
      switch (server_->queue_.Push(std::move(update))) {
        case UpdateQueue::PushResult::kOk:
          ++stats_.writes_enqueued;
          result.applied = true;
          return result;
        case UpdateQueue::PushResult::kRejected:
          ++stats_.writes_rejected;
          result.status = StatementStatus::kRejected;
          result.error = "queue full";
          return result;
        case UpdateQueue::PushResult::kClosed:
          ++stats_.writes_rejected;
          result.status = StatementStatus::kClosed;
          result.error = "server stopped";
          return result;
      }
      return result;  // unreachable
    }
    case Verb::kInsert:
    case Verb::kDelete: {
      QueuedUpdate update;
      update.table = static_cast<uint32_t>(table - server_->tables_.data());
      const bool insert = stmt.verb == Verb::kInsert;
      switch (table->kind) {
        case TableKind::kU32: {
          std::optional<std::vector<uint32_t>> keys = narrow32();
          if (!keys) return result;
          (insert ? update.batch.inserts : update.batch.deletes) =
              std::move(*keys);
          break;
        }
        case TableKind::kU64: {
          if (!check_wide()) return result;
          (insert ? update.batch64.inserts : update.batch64.deletes) =
              stmt.keys;
          break;
        }
        case TableKind::kString: {
          (insert ? update.strings.inserts : update.strings.deletes) =
              stmt.key_tokens;
          break;
        }
      }
      switch (server_->queue_.Push(std::move(update))) {
        case UpdateQueue::PushResult::kOk:
          ++stats_.writes_enqueued;
          return result;
        case UpdateQueue::PushResult::kRejected:
          ++stats_.writes_rejected;
          result.status = StatementStatus::kRejected;
          result.error = "queue full";
          return result;
        case UpdateQueue::PushResult::kClosed:
          ++stats_.writes_rejected;
          result.status = StatementStatus::kClosed;
          result.error = "server stopped";
          return result;
      }
      return result;  // unreachable
    }
  }
  return result;  // unreachable
}

}  // namespace cssidx::serve
