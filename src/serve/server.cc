#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cssidx::serve {
namespace {

/// LowerBound against one held snapshot: ordered methods descend their
/// structure; hash falls back to binary search on the snapshot's sorted
/// key array (the same fallback the engine's SortIndex uses), so RANGE
/// works for every spec on the menu.
size_t SnapshotLowerBound(const MaintainedIndex::Version& snap, uint32_t k) {
  if (snap.index().SupportsOrderedAccess()) return snap.index().LowerBound(k);
  const std::vector<uint32_t>& keys = snap.keys();
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
}

}  // namespace

Server::Server() : Server(Options()) {}

Server::Server(const Options& options)
    : options_(options),
      queue_(options.queue_capacity, options.admission) {}

Server::~Server() { Stop(); }

uint32_t Server::CreateTable(const std::string& name,
                             std::vector<uint32_t> keys,
                             const IndexSpec& spec) {
  if (started_) {
    throw std::logic_error("CreateTable after Start: the table set is "
                           "immutable once the server is running");
  }
  if (table_ids_.count(name) != 0) {
    throw std::invalid_argument("duplicate table name " + name);
  }
  std::sort(keys.begin(), keys.end());
  auto index = std::make_unique<MaintainedIndex>(spec, std::move(keys));
  if (!index->ok()) {
    throw std::invalid_argument("index spec off the menu: " +
                                spec.ToString());
  }
  const uint32_t id = static_cast<uint32_t>(tables_.size());
  tables_.push_back(TableEntry{name, std::move(index)});
  table_ids_[name] = id;
  return id;
}

void Server::Start() {
  if (started_) throw std::logic_error("Server already started");
  started_ = true;
  writer_ = std::thread(&Server::WriterLoop, this);
}

void Server::Stop() {
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  stopped_ = true;
}

Session Server::OpenSession() { return Session(this); }

ServerStats Server::writer_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::shared_ptr<const MaintainedIndex::Version> Server::TableSnapshot(
    const std::string& name) const {
  const TableEntry* entry = FindTable(name);
  if (entry == nullptr) throw std::out_of_range("unknown table " + name);
  return entry->index->Snapshot();
}

const MaintainedIndex::MaintenanceStats& Server::TableMaintenanceStats(
    const std::string& name) const {
  const TableEntry* entry = FindTable(name);
  if (entry == nullptr) throw std::out_of_range("unknown table " + name);
  return entry->index->stats();
}

const Server::TableEntry* Server::FindTable(const std::string& name) const {
  auto it = table_ids_.find(name);
  return it == table_ids_.end() ? nullptr : &tables_[it->second];
}

void Server::WriterLoop() {
  std::vector<QueuedUpdate> drained;
  while (queue_.DrainAll(&drained)) {
    ServerStats delta;
    ++delta.drain_cycles;
    delta.batches_applied += drained.size();
    // Group the backlog per table, preserving arrival order within and
    // across groups (first-appearance order), then coalesce each group
    // into ONE sorted batch: one version published per table per cycle,
    // however deep the backlog got.
    std::vector<uint32_t> order;
    std::map<uint32_t, std::vector<workload::UpdateBatch>> groups;
    for (QueuedUpdate& update : drained) {
      auto [it, fresh] = groups.try_emplace(update.table);
      if (fresh) order.push_back(update.table);
      it->second.push_back(std::move(update.batch));
    }
    for (uint32_t table : order) {
      std::vector<workload::UpdateBatch>& batches = groups[table];
      workload::UpdateBatch merged = Coalesce(batches);
      std::sort(merged.inserts.begin(), merged.inserts.end());
      delta.keys_inserted += merged.inserts.size();
      delta.keys_deleted += merged.deletes.size();
      MaintainedIndex& index = *tables_[table].index;
      const uint64_t before = index.sequence();
      index.ApplySortedBatch(std::move(merged.inserts),
                             std::move(merged.deletes));
      const uint64_t after = index.sequence();
      if (after != before) ++delta.groups_published;
      if (options_.journal) {
        journal_.push_back(AppliedGroup{table, after, std::move(batches)});
      }
    }
    drained.clear();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.drain_cycles += delta.drain_cycles;
    stats_.batches_applied += delta.batches_applied;
    stats_.groups_published += delta.groups_published;
    stats_.keys_inserted += delta.keys_inserted;
    stats_.keys_deleted += delta.keys_deleted;
  }
}

StatementResult Session::Execute(std::string_view text) {
  ++stats_.statements;
  std::string error;
  std::optional<Statement> stmt = ParseStatement(text, &error);
  if (!stmt) {
    ++stats_.parse_errors;
    StatementResult result;
    result.status = StatementStatus::kParseError;
    result.error = std::move(error);
    return result;
  }
  return ExecuteParsed(*stmt);
}

StatementResult Session::ExecuteParsed(const Statement& stmt) {
  StatementResult result;
  const Server::TableEntry* table = server_->FindTable(stmt.table);
  if (table == nullptr) {
    result.status = StatementStatus::kUnknownTable;
    result.error = "unknown table " + stmt.table;
    return result;
  }
  switch (stmt.verb) {
    case Verb::kFind: {
      auto snap = table->index->Snapshot();
      result.positions.resize(stmt.keys.size());
      snap->index().FindBatch(stmt.keys, result.positions);
      result.version = snap->sequence();
      stats_.probes += stmt.keys.size();
      server_->probes_served_.fetch_add(stmt.keys.size(),
                                        std::memory_order_relaxed);
      return result;
    }
    case Verb::kCount: {
      auto snap = table->index->Snapshot();
      result.counts.resize(stmt.keys.size());
      snap->index().CountEqualBatch(stmt.keys, result.counts);
      for (size_t c : result.counts) result.count += c;
      result.version = snap->sequence();
      stats_.probes += stmt.keys.size();
      server_->probes_served_.fetch_add(stmt.keys.size(),
                                        std::memory_order_relaxed);
      return result;
    }
    case Verb::kRange: {
      auto snap = table->index->Snapshot();
      if (stmt.hi > stmt.lo) {
        result.range_begin = SnapshotLowerBound(*snap, stmt.lo);
        result.range_end = SnapshotLowerBound(*snap, stmt.hi);
        result.count = result.range_end - result.range_begin;
      }
      result.version = snap->sequence();
      stats_.probes += 2;
      server_->probes_served_.fetch_add(2, std::memory_order_relaxed);
      return result;
    }
    case Verb::kJoin: {
      const Server::TableEntry* inner = server_->FindTable(stmt.table2);
      if (inner == nullptr) {
        result.status = StatementStatus::kUnknownTable;
        result.error = "unknown table " + stmt.table2;
        return result;
      }
      // Both sides pinned to one snapshot each; the outer's sorted keys
      // stream through the inner's CountEqualBatch a block at a time, so
      // the pair cardinality is consistent-as-of (version, version2).
      auto outer_snap = table->index->Snapshot();
      auto inner_snap = inner->index->Snapshot();
      const std::vector<uint32_t>& outer_keys = outer_snap->keys();
      constexpr size_t kBlock = 4096;
      std::vector<size_t> counts(std::min(outer_keys.size(), kBlock));
      for (size_t base = 0; base < outer_keys.size(); base += kBlock) {
        const size_t len = std::min(outer_keys.size() - base, kBlock);
        inner_snap->index().CountEqualBatch(
            std::span<const uint32_t>(&outer_keys[base], len),
            std::span<size_t>(counts.data(), len));
        for (size_t i = 0; i < len; ++i) result.count += counts[i];
      }
      result.version = outer_snap->sequence();
      result.version2 = inner_snap->sequence();
      stats_.probes += outer_keys.size();
      server_->probes_served_.fetch_add(outer_keys.size(),
                                        std::memory_order_relaxed);
      return result;
    }
    case Verb::kInsert:
    case Verb::kDelete: {
      QueuedUpdate update;
      update.table = static_cast<uint32_t>(table - server_->tables_.data());
      if (stmt.verb == Verb::kInsert) {
        update.batch.inserts = stmt.keys;
      } else {
        update.batch.deletes = stmt.keys;
      }
      switch (server_->queue_.Push(std::move(update))) {
        case UpdateQueue::PushResult::kOk:
          ++stats_.writes_enqueued;
          return result;
        case UpdateQueue::PushResult::kRejected:
          ++stats_.writes_rejected;
          result.status = StatementStatus::kRejected;
          result.error = "queue full";
          return result;
        case UpdateQueue::PushResult::kClosed:
          ++stats_.writes_rejected;
          result.status = StatementStatus::kClosed;
          result.error = "server stopped";
          return result;
      }
      return result;  // unreachable
    }
  }
  return result;  // unreachable
}

}  // namespace cssidx::serve
