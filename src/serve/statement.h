#ifndef CSSIDX_SERVE_STATEMENT_H_
#define CSSIDX_SERVE_STATEMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

// The serving layer's statement surface: one executor per verb, in the
// spirit of SimpleRA's per-verb executor architecture, shrunk to the six
// verbs a read-mostly index server needs. Statements are a flat token
// grammar — verb, table name(s), key operands — because the point of
// this layer is the concurrency contract (each statement resolves against
// ONE snapshot), not query planning.
//
//   FIND   <table> <key>...         positions of each key (kNotFound = -1)
//   COUNT  <table> <key>...         per-key multiplicities + total
//   RANGE  <table> <lo> <hi>        count + position span of [lo, hi)
//   JOIN   <outer> <inner>          equi-join pair cardinality
//   INSERT <table> <key>...         enqueue an insert batch
//   DELETE <table> <key>...         enqueue a delete batch (every copy)
//   ADVISE <table> [APPLY]          advisor recommendation for the table;
//                                   APPLY enqueues the hot-swap (flagged)
//
// Key operands are width-agnostic at parse time: the grammar does not
// know whether a table holds 4-byte keys, 8-byte keys, or strings (the
// §2.1 domain-dictionary path), so every operand is kept as its raw
// token AND, when the token is a decimal number, as a parsed uint64.
// The only parse-time key error is a digit string exceeding 2^64-1 —
// reported with a distinct out-of-range message, never a generic "bad
// key". Width checks against a table narrower than the parsed value
// (e.g. 2^32 sent to a 32-bit table) happen at execute time, again with
// a distinct out-of-range message.

namespace cssidx::serve {

enum class Verb { kFind, kCount, kRange, kJoin, kInsert, kDelete, kAdvise };

struct Statement {
  Verb verb = Verb::kFind;
  std::string table;   // first table operand
  std::string table2;  // JOIN only: the inner table
  // FIND/COUNT/INSERT/DELETE operands, raw. String tables probe on the
  // token itself; numeric tables use the parallel parsed form below.
  std::vector<std::string> key_tokens;
  // keys[i] is key_tokens[i] parsed as decimal uint64 where
  // keys_numeric[i]; 0 (and not meaningful) otherwise.
  std::vector<uint64_t> keys;
  std::vector<bool> keys_numeric;
  std::string lo_token, hi_token;  // RANGE only, raw
  uint64_t lo = 0, hi = 0;         // parsed forms, valid iff bounds_numeric
  bool bounds_numeric = false;
  bool apply = false;  // ADVISE only: enqueue the recommended hot-swap
};

/// Parses one statement. Returns nullopt on malformed input and, when
/// `error` is non-null, a one-line description of what went wrong.
std::optional<Statement> ParseStatement(std::string_view text,
                                        std::string* error = nullptr);

/// The grammar, one verb per line — what a client sees on a parse error.
const char* StatementGrammarHelp();

}  // namespace cssidx::serve

#endif  // CSSIDX_SERVE_STATEMENT_H_
