#ifndef CSSIDX_SERVE_STATEMENT_H_
#define CSSIDX_SERVE_STATEMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

// The serving layer's statement surface: one executor per verb, in the
// spirit of SimpleRA's per-verb executor architecture, shrunk to the six
// verbs a read-mostly index server needs. Statements are a flat token
// grammar — verb, table name(s), uint32 operands — because the point of
// this layer is the concurrency contract (each statement resolves against
// ONE snapshot), not query planning.
//
//   FIND   <table> <key>...         positions of each key (kNotFound = -1)
//   COUNT  <table> <key>...         per-key multiplicities + total
//   RANGE  <table> <lo> <hi>        count + position span of [lo, hi)
//   JOIN   <outer> <inner>          equi-join pair cardinality
//   INSERT <table> <key>...         enqueue an insert batch
//   DELETE <table> <key>...         enqueue a delete batch (every copy)

namespace cssidx::serve {

enum class Verb { kFind, kCount, kRange, kJoin, kInsert, kDelete };

struct Statement {
  Verb verb = Verb::kFind;
  std::string table;   // first table operand
  std::string table2;  // JOIN only: the inner table
  std::vector<uint32_t> keys;  // FIND/COUNT/INSERT/DELETE operands
  uint32_t lo = 0, hi = 0;     // RANGE only
};

/// Parses one statement. Returns nullopt on malformed input and, when
/// `error` is non-null, a one-line description of what went wrong.
std::optional<Statement> ParseStatement(std::string_view text,
                                        std::string* error = nullptr);

/// The grammar, one verb per line — what a client sees on a parse error.
const char* StatementGrammarHelp();

}  // namespace cssidx::serve

#endif  // CSSIDX_SERVE_STATEMENT_H_
