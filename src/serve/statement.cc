#include "serve/statement.h"

#include <cstdlib>
#include <limits>

namespace cssidx::serve {
namespace {

std::vector<std::string_view> Tokenize(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t begin = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > begin) tokens.push_back(text.substr(begin, i - begin));
  }
  return tokens;
}

enum class NumberParse {
  kOk,          // all digits, fits in uint64
  kNotNumeric,  // has a non-digit — a raw token (string-table key)
  kOutOfRange,  // all digits but exceeds 2^64-1
};

NumberParse ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty()) return NumberParse::kNotNumeric;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return NumberParse::kNotNumeric;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return NumberParse::kOutOfRange;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return NumberParse::kOk;
}

std::optional<Statement> Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return std::nullopt;
}

std::string OutOfRangeMessage(std::string_view token) {
  return "key '" + std::string(token) +
         "' out of range: exceeds 18446744073709551615 (2^64-1)";
}

}  // namespace

std::optional<Statement> ParseStatement(std::string_view text,
                                        std::string* error) {
  std::vector<std::string_view> tokens = Tokenize(text);
  if (tokens.empty()) return Fail(error, "empty statement");
  Statement stmt;
  const std::string_view verb = tokens[0];
  if (verb == "FIND") {
    stmt.verb = Verb::kFind;
  } else if (verb == "COUNT") {
    stmt.verb = Verb::kCount;
  } else if (verb == "RANGE") {
    stmt.verb = Verb::kRange;
  } else if (verb == "JOIN") {
    stmt.verb = Verb::kJoin;
  } else if (verb == "INSERT") {
    stmt.verb = Verb::kInsert;
  } else if (verb == "DELETE") {
    stmt.verb = Verb::kDelete;
  } else if (verb == "ADVISE") {
    stmt.verb = Verb::kAdvise;
  } else {
    return Fail(error, "unknown verb '" + std::string(verb) + "'");
  }
  if (tokens.size() < 2) return Fail(error, "missing table name");
  stmt.table = std::string(tokens[1]);

  switch (stmt.verb) {
    case Verb::kAdvise:
      if (tokens.size() == 3 && tokens[2] == "APPLY") {
        stmt.apply = true;
      } else if (tokens.size() != 2) {
        return Fail(error, "ADVISE takes a table name and an optional APPLY");
      }
      return stmt;
    case Verb::kJoin:
      if (tokens.size() != 3) {
        return Fail(error, "JOIN takes exactly two table names");
      }
      stmt.table2 = std::string(tokens[2]);
      return stmt;
    case Verb::kRange: {
      if (tokens.size() != 4) return Fail(error, "RANGE takes <lo> <hi>");
      stmt.lo_token = std::string(tokens[2]);
      stmt.hi_token = std::string(tokens[3]);
      const NumberParse lo = ParseU64(tokens[2], &stmt.lo);
      const NumberParse hi = ParseU64(tokens[3], &stmt.hi);
      if (lo == NumberParse::kOutOfRange) {
        return Fail(error, OutOfRangeMessage(tokens[2]));
      }
      if (hi == NumberParse::kOutOfRange) {
        return Fail(error, OutOfRangeMessage(tokens[3]));
      }
      stmt.bounds_numeric =
          lo == NumberParse::kOk && hi == NumberParse::kOk;
      return stmt;
    }
    default: {
      // FIND/COUNT/INSERT/DELETE: one or more keys. A key token is kept
      // raw (string tables) and parsed as uint64 when it is a decimal
      // number; only a digit string too wide for ANY table is a parse
      // error, with a message distinct from a malformed statement.
      if (tokens.size() < 3) {
        return Fail(error, "expected at least one key");
      }
      stmt.key_tokens.reserve(tokens.size() - 2);
      stmt.keys.reserve(tokens.size() - 2);
      stmt.keys_numeric.reserve(tokens.size() - 2);
      for (size_t i = 2; i < tokens.size(); ++i) {
        uint64_t key = 0;
        const NumberParse parse = ParseU64(tokens[i], &key);
        if (parse == NumberParse::kOutOfRange) {
          return Fail(error, OutOfRangeMessage(tokens[i]));
        }
        stmt.key_tokens.emplace_back(tokens[i]);
        stmt.keys.push_back(key);
        stmt.keys_numeric.push_back(parse == NumberParse::kOk);
      }
      return stmt;
    }
  }
}

const char* StatementGrammarHelp() {
  return "FIND   <table> <key>...   positions of each key (-1 = absent)\n"
         "COUNT  <table> <key>...   per-key multiplicities + total\n"
         "RANGE  <table> <lo> <hi>  count + position span of [lo, hi)\n"
         "JOIN   <outer> <inner>    equi-join pair cardinality\n"
         "INSERT <table> <key>...   enqueue an insert batch\n"
         "DELETE <table> <key>...   enqueue a delete batch (every copy)\n"
         "ADVISE <table> [APPLY]    advisor recommendation; APPLY enqueues\n"
         "the hot-swap (needs collect_stats + allow_spec_swap)\n"
         "keys: decimal uint64 for integer tables (32-bit tables reject\n"
         "values above 4294967295 at execute), raw tokens for string\n"
         "tables\n";
}

}  // namespace cssidx::serve
