#include "serve/statement.h"

#include <cstdlib>
#include <limits>

namespace cssidx::serve {
namespace {

std::vector<std::string_view> Tokenize(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t begin = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > begin) tokens.push_back(text.substr(begin, i - begin));
  }
  return tokens;
}

bool ParseU32(std::string_view token, uint32_t* out) {
  if (token.empty() || token.size() > 10) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<uint32_t>::max()) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

std::optional<Statement> Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return std::nullopt;
}

}  // namespace

std::optional<Statement> ParseStatement(std::string_view text,
                                        std::string* error) {
  std::vector<std::string_view> tokens = Tokenize(text);
  if (tokens.empty()) return Fail(error, "empty statement");
  Statement stmt;
  const std::string_view verb = tokens[0];
  if (verb == "FIND") {
    stmt.verb = Verb::kFind;
  } else if (verb == "COUNT") {
    stmt.verb = Verb::kCount;
  } else if (verb == "RANGE") {
    stmt.verb = Verb::kRange;
  } else if (verb == "JOIN") {
    stmt.verb = Verb::kJoin;
  } else if (verb == "INSERT") {
    stmt.verb = Verb::kInsert;
  } else if (verb == "DELETE") {
    stmt.verb = Verb::kDelete;
  } else {
    return Fail(error, "unknown verb '" + std::string(verb) + "'");
  }
  if (tokens.size() < 2) return Fail(error, "missing table name");
  stmt.table = std::string(tokens[1]);

  switch (stmt.verb) {
    case Verb::kJoin:
      if (tokens.size() != 3) {
        return Fail(error, "JOIN takes exactly two table names");
      }
      stmt.table2 = std::string(tokens[2]);
      return stmt;
    case Verb::kRange: {
      if (tokens.size() != 4) return Fail(error, "RANGE takes <lo> <hi>");
      if (!ParseU32(tokens[2], &stmt.lo) || !ParseU32(tokens[3], &stmt.hi)) {
        return Fail(error, "RANGE bounds must be uint32");
      }
      return stmt;
    }
    default: {
      // FIND/COUNT/INSERT/DELETE: one or more uint32 keys.
      if (tokens.size() < 3) {
        return Fail(error, "expected at least one key");
      }
      stmt.keys.reserve(tokens.size() - 2);
      for (size_t i = 2; i < tokens.size(); ++i) {
        uint32_t key = 0;
        if (!ParseU32(tokens[i], &key)) {
          return Fail(error,
                      "bad key '" + std::string(tokens[i]) + "'");
        }
        stmt.keys.push_back(key);
      }
      return stmt;
    }
  }
}

const char* StatementGrammarHelp() {
  return "FIND   <table> <key>...   positions of each key (-1 = absent)\n"
         "COUNT  <table> <key>...   per-key multiplicities + total\n"
         "RANGE  <table> <lo> <hi>  count + position span of [lo, hi)\n"
         "JOIN   <outer> <inner>    equi-join pair cardinality\n"
         "INSERT <table> <key>...   enqueue an insert batch\n"
         "DELETE <table> <key>...   enqueue a delete batch (every copy)\n";
}

}  // namespace cssidx::serve
