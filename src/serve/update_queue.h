#ifndef CSSIDX_SERVE_UPDATE_QUEUE_H_
#define CSSIDX_SERVE_UPDATE_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iterator>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/index_spec.h"
#include "workload/batch_update.h"

// The write half of the serving layer: a bounded MPSC queue of update
// batches feeding the single maintenance writer. Sessions (many producers)
// push; the writer thread (one consumer) drains EVERYTHING waiting and
// coalesces adjacent batches for the same table into one sorted batch, so
// when updates arrive faster than rebuilds complete, rebuild cost
// amortizes across the backlog instead of compounding per batch — the
// paper's batch-maintenance model made adaptive: the batch grows exactly
// when the system is too busy to keep up.
//
// Admission is configurable: kBlock parks the producer until the writer
// frees a slot (bounded memory, unbounded latency), kReject returns a
// backpressure status immediately (bounded latency, caller retries).

namespace cssidx::serve {

/// What a full queue does to the next Push.
enum class Admission {
  kBlock,   // wait for the writer to free a slot
  kReject,  // return PushResult::kRejected immediately
};

/// Producer-side counters, mutated under the queue lock; stats() copies.
struct QueueStats {
  uint64_t enqueued_batches = 0;  // accepted pushes
  uint64_t enqueued_keys = 0;     // insert + delete keys across them
  uint64_t rejected_batches = 0;  // kReject admissions that bounced
  uint64_t blocked_pushes = 0;    // kBlock admissions that had to wait
  size_t depth_high_water = 0;    // deepest the queue has been
};

/// String-keyed update batch (§2.1 domain-dictionary tables): same
/// lifecycle as the integer batches, values instead of keys.
using StringUpdateBatch = workload::BasicUpdateBatch<std::string>;

/// One queued write: an update batch destined for one table (the server's
/// table id — the queue itself doesn't interpret it, it is the coalescing
/// group key). Exactly one of the three batch members is populated,
/// matching the destination table's key type; the queue moves whichever
/// is there.
struct QueuedUpdate {
  uint32_t table = 0;
  workload::UpdateBatch batch;      // 4-byte integer tables
  workload::UpdateBatch64 batch64;  // 8-byte integer tables
  StringUpdateBatch strings;        // string (domain-ID) tables
  /// A spec hot-swap request (ADVISE ... APPLY) instead of data. Rides
  /// the same queue so it serializes with writes in arrival order, but
  /// is never folded into a Coalesce group — the writer splits these out
  /// and rebuilds through MaintainedIndex::RebuildWithSpec after the
  /// cycle's data batches.
  bool respec = false;
  IndexSpec respec_spec;
};

class UpdateQueue {
 public:
  enum class PushResult {
    kOk,        // enqueued
    kRejected,  // full under Admission::kReject — retry later
    kClosed,    // queue closed — the server is shutting down
  };

  explicit UpdateQueue(size_t capacity, Admission admission);

  UpdateQueue(const UpdateQueue&) = delete;
  UpdateQueue& operator=(const UpdateQueue&) = delete;

  /// Producers: enqueue one update. Under kBlock a full queue parks the
  /// caller until the consumer drains (or the queue closes); under
  /// kReject it returns kRejected immediately.
  PushResult Push(QueuedUpdate update);

  /// The consumer: moves EVERYTHING currently queued into *out (appended;
  /// out is not cleared), blocking until at least one item is available.
  /// Returns false when the queue is closed and empty — the writer's
  /// signal to exit after the final drain.
  bool DrainAll(std::vector<QueuedUpdate>* out);

  /// Close the queue: no further pushes are admitted (producers get
  /// kClosed, blocked producers wake), but already-queued items remain
  /// drainable so shutdown never drops an accepted write.
  void Close();

  QueueStats stats() const;
  size_t depth() const;
  size_t capacity() const { return capacity_; }
  Admission admission() const { return admission_; }

 private:
  const size_t capacity_;
  const Admission admission_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<QueuedUpdate> queue_;
  QueueStats stats_;
  bool closed_ = false;
};

/// Folds adjacent batches (oldest first) into ONE batch whose application
/// is equivalent to applying them in order, under the engine's batch
/// semantics (deletes remove every occurrence of a key, then inserts
/// land; an insert whose key a LATER batch deletes must die, an insert
/// arriving after its key's delete must survive). The result's deletes
/// are sorted and unique; its inserts stay in arrival order (the writer
/// sorts a copy at apply time — arrival order is what keeps table-level
/// RID assignment identical to sequential application). Generic over the
/// key type — the fold only needs ordering, so 4-byte, 8-byte, and
/// string batches all coalesce through the same code.
template <typename KeyT>
workload::BasicUpdateBatch<KeyT> Coalesce(
    std::span<const workload::BasicUpdateBatch<KeyT>> batches) {
  workload::BasicUpdateBatch<KeyT> acc;
  for (const workload::BasicUpdateBatch<KeyT>& next : batches) {
    if (!next.deletes.empty()) {
      // A later delete kills every earlier occurrence of the key —
      // including inserts still waiting in the accumulator.
      std::vector<KeyT> doomed = next.deletes;
      std::sort(doomed.begin(), doomed.end());
      std::erase_if(acc.inserts, [&](const KeyT& k) {
        return std::binary_search(doomed.begin(), doomed.end(), k);
      });
      // Deletes accumulate as a sorted set: deleting twice equals
      // deleting once (every occurrence goes either way).
      std::vector<KeyT> merged;
      merged.reserve(acc.deletes.size() + doomed.size());
      std::set_union(acc.deletes.begin(), acc.deletes.end(), doomed.begin(),
                     doomed.end(), std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      acc.deletes = std::move(merged);
    }
    // Inserts append in arrival order; an insert after its key's delete
    // survives (deletes apply first), matching sequential application.
    acc.inserts.insert(acc.inserts.end(), next.inserts.begin(),
                       next.inserts.end());
  }
  return acc;
}

/// Deduction helper: template argument deduction does not see through
/// vector-to-span conversions, so the vector form callers actually write
/// gets its own overload.
template <typename KeyT>
workload::BasicUpdateBatch<KeyT> Coalesce(
    const std::vector<workload::BasicUpdateBatch<KeyT>>& batches) {
  return Coalesce(std::span<const workload::BasicUpdateBatch<KeyT>>(
      batches.data(), batches.size()));
}

}  // namespace cssidx::serve

#endif  // CSSIDX_SERVE_UPDATE_QUEUE_H_
