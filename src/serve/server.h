#ifndef CSSIDX_SERVE_SERVER_H_
#define CSSIDX_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/index_spec.h"
#include "core/maintained_index.h"
#include "domain/domain.h"
#include "serve/statement.h"
#include "serve/update_queue.h"

// The serving layer's front end: a long-lived Server owning key-column
// tables (each a MaintainedIndex — the paper's sort-index representation,
// where position i IS the record identifier), one writer thread draining
// the bounded UpdateQueue, and N Sessions executing statements.
//
// The concurrency contract, end to end:
//   - Every read statement resolves against ONE snapshot per table it
//     touches (one wait-free pointer copy), so its results are
//     consistent-as-of that version — reported back as the result's
//     sequence number. Readers never block on maintenance.
//   - Writes (INSERT/DELETE) enqueue and return; the single writer
//     drains the whole backlog per cycle, coalesces adjacent batches for
//     the same table into one sorted batch, and publishes one refreshed
//     version per table per cycle — shard-incremental for "part:K/"
//     specs. Under pressure the backlog grows and the coalesced batch
//     with it, so published versions per enqueued batch drops: rebuild
//     cost amortizes exactly when the system falls behind.
//   - Each published version equals the serial application of an exact
//     prefix of the accepted batches (the optional journal records which
//     prefix, for differential tests).

namespace cssidx::serve {

class Session;

/// Writer-thread counters. Snapshot via Server::writer_stats() (copied
/// under a lock the writer takes once per drain cycle).
struct ServerStats {
  uint64_t drain_cycles = 0;      // DrainAll wakeups that found work
  uint64_t batches_applied = 0;   // accepted batches consumed from queue
  uint64_t groups_published = 0;  // versions published (rebuild count)
  uint64_t keys_inserted = 0;     // insert keys applied
  uint64_t keys_deleted = 0;      // delete keys applied (post-coalesce)
};

/// Journal entry (Options::journal): one coalesced application. After the
/// group's publish, table `table` is at version `sequence`, and its state
/// equals the initial keys plus every batch journaled for it so far,
/// applied in order. Read only after Stop() — the join synchronizes.
/// Exactly one of the three batch lists is populated, matching the
/// table's key type.
struct AppliedGroup {
  uint32_t table = 0;
  uint64_t sequence = 0;
  std::vector<workload::UpdateBatch> batches;      // 4-byte tables
  std::vector<workload::UpdateBatch64> batches64;  // 8-byte tables
  std::vector<StringUpdateBatch> string_batches;   // string tables
  /// A spec hot-swap publish (ADVISE ... APPLY): no batch lists; the
  /// table's keys are unchanged and its index was rebuilt onto
  /// respec_spec. Differential replays skip these (state is invariant),
  /// but they witness that exactly one publish happened per swap.
  bool respec = false;
  IndexSpec respec_spec;
};

/// Result of one statement. `version` is the snapshot sequence the reads
/// resolved against (JOIN reports the inner table as `version2`).
enum class StatementStatus {
  kOk,
  kParseError,    // error holds the message; see StatementGrammarHelp()
  kUnknownTable,  // error names the missing table
  kRejected,      // write bounced off a full queue (Admission::kReject)
  kClosed,        // write arrived after Stop()
  kBadKey,        // key doesn't fit the table: out of the table's width
                  // (distinct out-of-range message) or non-numeric on an
                  // integer table; error says which key and why
  kUnsupported,   // ADVISE without collect_stats, or APPLY without
                  // allow_spec_swap; error names the missing option
};

struct StatementResult {
  StatementStatus status = StatementStatus::kOk;
  std::string error;
  uint64_t version = 0;
  uint64_t version2 = 0;             // JOIN: inner table's snapshot
  std::vector<int64_t> positions;    // FIND: per-key, -1 = absent
  std::vector<size_t> counts;        // COUNT: per-key multiplicities
  size_t range_begin = 0, range_end = 0;  // RANGE: position span
  uint64_t count = 0;  // COUNT total / RANGE size / JOIN cardinality
  std::string advice;           // ADVISE: the advisor's rationale line
  std::string recommended_spec; // ADVISE: winning spec, string form
  bool applied = false;         // ADVISE APPLY: hot-swap enqueued

  bool ok() const { return status == StatementStatus::kOk; }
};

class Server {
 public:
  struct Options {
    size_t queue_capacity = 64;
    Admission admission = Admission::kBlock;
    /// Record every coalesced application for differential replay.
    bool journal = false;
    /// Attach a ProbeStatsCollector to every table, feeding ADVISE.
    bool collect_stats = false;
    /// Let ADVISE ... APPLY hot-swap a table's spec through the writer
    /// thread (one publish, readers never block). Off by default: a
    /// swap changes performance shape under live traffic.
    bool allow_spec_swap = false;
    /// Space budget handed to the advisor (index bytes beyond the
    /// sorted keys); 0 = unlimited.
    uint64_t advise_space_budget_bytes = 0;
  };

  Server();  // default Options
  explicit Server(const Options& options);
  ~Server();  // Stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a key-column table (keys need not be sorted) and returns
  /// its id. The table set is immutable once Start() is called — that is
  /// what lets sessions resolve names lock-free. Throws std::logic_error
  /// after Start, std::invalid_argument for off-menu specs or duplicate
  /// names.
  uint32_t CreateTable(const std::string& name, std::vector<uint32_t> keys,
                       const IndexSpec& spec = IndexSpec());

  /// 8-byte-key table (§5's key-width parameter through the full serving
  /// stack). The spec's key width is forced to 8, so "css:16" and
  /// "css64:16" both mean the same wide-key tree here.
  uint32_t CreateTable64(const std::string& name, std::vector<uint64_t> keys,
                         const IndexSpec& spec = IndexSpec());

  /// String-keyed table (§2.1): the values feed an order-preserving
  /// StringDomain, the key column stores 4-byte domain IDs, and the index
  /// is built over the IDs — so statements probe on raw string tokens,
  /// range predicates map through LowerBoundId, and the index machinery
  /// never sees a string. `values` is the key column (duplicates allowed;
  /// the domain stores each distinct value once).
  uint32_t CreateStringTable(const std::string& name,
                             std::vector<std::string> values,
                             const IndexSpec& spec = IndexSpec());

  /// Launches the writer thread. Statements may be executed before Start
  /// — reads serve version 1, writes queue up — but nothing is applied
  /// until the writer runs.
  void Start();

  /// Closes the queue, lets the writer drain every accepted write, and
  /// joins it. Blocked producers wake with kClosed. Idempotent.
  void Stop();

  Session OpenSession();

  // Introspection (tests, bench, example).
  bool started() const { return started_; }
  QueueStats queue_stats() const { return queue_.stats(); }
  ServerStats writer_stats() const;
  uint64_t probes_served() const {
    return probes_served_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const { return queue_.depth(); }
  /// The journal (Options::journal). Call only after Stop().
  const std::vector<AppliedGroup>& applied_groups() const { return journal_; }
  /// Current snapshot of a table's index (by name; throws if unknown or
  /// 8-byte — string tables report their ID index here).
  std::shared_ptr<const MaintainedIndex::Version> TableSnapshot(
      const std::string& name) const;
  /// Current snapshot of an 8-byte table's index.
  std::shared_ptr<const MaintainedIndex64::Version> TableSnapshot64(
      const std::string& name) const;
  /// The domain dictionary behind a string table (throws otherwise).
  /// Shared ownership because the writer can replace the dictionary when
  /// an insert brings a new value — the returned snapshot stays valid.
  std::shared_ptr<const domain::StringDomain> TableDomain(
      const std::string& name) const;
  const MaintenanceStats& TableMaintenanceStats(
      const std::string& name) const;
  /// Observed workload of a table (Options::collect_stats). Throws if
  /// stats were never enabled.
  WorkloadProfile TableWorkloadProfile(const std::string& name) const;
  /// The spec a table currently serves under. A hot-swap rewrites it on
  /// the writer thread, so read this before Start() or after Stop()
  /// (tests), or from the writer itself.
  const IndexSpec& TableSpec(const std::string& name) const;

 private:
  friend class Session;

  enum class TableKind { kU32, kU64, kString };

  /// A string table's reader-facing state: the domain dictionary and the
  /// ID-index version built against it, published TOGETHER. An insert of
  /// a new value grows the domain, which renumbers IDs (order-preserving
  /// dictionaries stay sorted), so a reader pairing an old dictionary
  /// with a new index — or vice versa — would translate predicates into
  /// the wrong ID space. One pointer load yields a coherent pair.
  struct StringVersion {
    std::shared_ptr<const domain::StringDomain> domain;
    std::shared_ptr<const MaintainedIndex::Version> ids;
  };

  /// One mutex-guarded pointer slot, same discipline (and same TSan
  /// rationale) as MaintainedIndex's version pointer.
  struct StringHead {
    mutable std::mutex mu;
    std::shared_ptr<const StringVersion> current;

    std::shared_ptr<const StringVersion> Snapshot() const {
      std::lock_guard<std::mutex> lock(mu);
      return current;
    }
    void Publish(std::shared_ptr<const StringVersion> fresh) {
      std::lock_guard<std::mutex> lock(mu);
      current = std::move(fresh);
    }
  };

  struct TableEntry {
    std::string name;
    TableKind kind = TableKind::kU32;
    std::unique_ptr<MaintainedIndex> index;      // kU32; kString: over IDs
    std::unique_ptr<MaintainedIndex64> index64;  // kU64
    std::unique_ptr<StringHead> strings;         // kString
  };

  /// nullptr when the name is unknown. Safe lock-free: tables_ is
  /// immutable after Start().
  const TableEntry* FindTable(const std::string& name) const;

  void WriterLoop();
  /// Writer thread: applies a pending spec swap to one table (no-op when
  /// `respec` is empty or off-menu), publishing one fresh version and one
  /// journal marker.
  void ApplyRespec(TableEntry& entry, uint32_t table,
                   const std::optional<IndexSpec>& respec, ServerStats* delta);

  const Options options_;
  UpdateQueue queue_;
  std::vector<TableEntry> tables_;
  std::map<std::string, uint32_t> table_ids_;
  std::thread writer_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::vector<AppliedGroup> journal_;  // writer-appended; read after Stop
  std::atomic<uint64_t> probes_served_{0};
};

/// Per-client statement executor. Cheap to create, holds no locks; one
/// Session is for ONE thread (its stats are unsynchronized), but any
/// number of Sessions run concurrently against the same Server.
class Session {
 public:
  struct SessionStats {
    uint64_t statements = 0;
    uint64_t probes = 0;           // keys/bounds resolved by reads
    uint64_t writes_enqueued = 0;
    uint64_t writes_rejected = 0;  // includes kClosed
    uint64_t parse_errors = 0;
  };

  /// Parses and executes one statement against the server.
  StatementResult Execute(std::string_view text);

  const SessionStats& stats() const { return stats_; }

 private:
  friend class Server;
  explicit Session(Server* server) : server_(server) {}

  StatementResult ExecuteParsed(const Statement& stmt);

  Server* server_;
  SessionStats stats_;
};

}  // namespace cssidx::serve

#endif  // CSSIDX_SERVE_SERVER_H_
