#ifndef CSSIDX_DOMAIN_DOMAIN_H_
#define CSSIDX_DOMAIN_DOMAIN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/full_css_tree.h"
#include "core/index.h"

// Ordered domain dictionaries (§2.1).
//
// The paper's main-memory DBMS stores each column's distinct values in an
// external *sorted* structure (the domain) and keeps only integer domain
// IDs in place. Because the domain is sorted, IDs are order-preserving:
// both equality and inequality predicates run on IDs without touching the
// values. Loading data requires one domain search per cell — CSS-trees'
// workload — and batch updates rebuild the dictionary, consistent with the
// OLAP assumption.

namespace cssidx::domain {

/// Sorted dictionary over 32-bit values, with a CSS-tree directory for
/// encode lookups.
class IntDomain {
 public:
  /// Builds from raw (unsorted, possibly duplicated) values.
  static IntDomain FromValues(std::vector<uint32_t> values);

  IntDomain(IntDomain&&) noexcept = default;
  IntDomain& operator=(IntDomain&&) noexcept = default;

  /// ID of `value`, or nullopt if it is not in the domain.
  std::optional<uint32_t> Encode(uint32_t value) const;

  /// Value for an ID obtained from Encode. ID must be < size().
  uint32_t Decode(uint32_t id) const { return values_[id]; }

  /// Encodes a column; values absent from the domain throw off OLAP
  /// assumptions, so they are reported through `missing` (positions).
  std::vector<uint32_t> EncodeColumn(const std::vector<uint32_t>& column,
                                     std::vector<size_t>* missing) const;

  /// First ID whose value is >= `value` — the ID-space image of a range
  /// predicate endpoint (IDs are order-preserving).
  uint32_t LowerBoundId(uint32_t value) const;

  /// Merges new values into the domain and rebuilds the dictionary
  /// (batch update, §2.1: "we expect the data is updated infrequently").
  /// Existing IDs are invalidated; returns the remap old-id -> new-id.
  std::vector<uint32_t> AddBatch(const std::vector<uint32_t>& new_values);

  size_t size() const { return values_.size(); }
  const std::vector<uint32_t>& values() const { return values_; }
  size_t SpaceBytes() const;

 private:
  IntDomain() = default;
  void RebuildIndex();

  std::vector<uint32_t> values_;  // sorted, distinct
  // unique_ptr so the index can be rebuilt over the (moved) vector safely.
  std::unique_ptr<FullCssTree<16>> index_;
};

/// Sorted dictionary over strings (variable-length values — the §2.1 point
/// that domains simplify variable-length handling: rows store fixed 4-byte
/// IDs regardless of value length). Encode is binary search over the
/// sorted values; IDs are order-preserving for string comparisons too.
class StringDomain {
 public:
  static StringDomain FromValues(std::vector<std::string> values);

  std::optional<uint32_t> Encode(const std::string& value) const;
  const std::string& Decode(uint32_t id) const { return values_[id]; }
  uint32_t LowerBoundId(const std::string& value) const;
  std::vector<uint32_t> AddBatch(const std::vector<std::string>& new_values);

  size_t size() const { return values_.size(); }
  size_t SpaceBytes() const;

 private:
  StringDomain() = default;

  std::vector<std::string> values_;  // sorted, distinct
};

}  // namespace cssidx::domain

#endif  // CSSIDX_DOMAIN_DOMAIN_H_
