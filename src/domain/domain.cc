#include "domain/domain.h"

#include <algorithm>

namespace cssidx::domain {

IntDomain IntDomain::FromValues(std::vector<uint32_t> values) {
  IntDomain d;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  d.values_ = std::move(values);
  d.RebuildIndex();
  return d;
}

void IntDomain::RebuildIndex() {
  index_ = std::make_unique<FullCssTree<16>>(values_.data(), values_.size());
}

std::optional<uint32_t> IntDomain::Encode(uint32_t value) const {
  int64_t pos = index_->Find(value);
  if (pos == kNotFound) return std::nullopt;
  return static_cast<uint32_t>(pos);
}

std::vector<uint32_t> IntDomain::EncodeColumn(
    const std::vector<uint32_t>& column, std::vector<size_t>* missing) const {
  std::vector<uint32_t> ids(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    int64_t pos = index_->Find(column[i]);
    if (pos == kNotFound) {
      if (missing != nullptr) missing->push_back(i);
      ids[i] = static_cast<uint32_t>(-1);
    } else {
      ids[i] = static_cast<uint32_t>(pos);
    }
  }
  return ids;
}

uint32_t IntDomain::LowerBoundId(uint32_t value) const {
  return static_cast<uint32_t>(index_->LowerBound(value));
}

std::vector<uint32_t> IntDomain::AddBatch(
    const std::vector<uint32_t>& new_values) {
  std::vector<uint32_t> old_values = values_;
  std::vector<uint32_t> merged = values_;
  merged.insert(merged.end(), new_values.begin(), new_values.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  values_ = std::move(merged);
  RebuildIndex();
  // Remap: each old ID's value found at its new sorted position.
  std::vector<uint32_t> remap(old_values.size());
  for (size_t i = 0; i < old_values.size(); ++i) {
    remap[i] = static_cast<uint32_t>(
        std::lower_bound(values_.begin(), values_.end(), old_values[i]) -
        values_.begin());
  }
  return remap;
}

size_t IntDomain::SpaceBytes() const {
  return values_.capacity() * sizeof(uint32_t) +
         (index_ ? index_->SpaceBytes() : 0);
}

StringDomain StringDomain::FromValues(std::vector<std::string> values) {
  StringDomain d;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  d.values_ = std::move(values);
  return d;
}

std::optional<uint32_t> StringDomain::Encode(const std::string& value) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) return std::nullopt;
  return static_cast<uint32_t>(it - values_.begin());
}

uint32_t StringDomain::LowerBoundId(const std::string& value) const {
  return static_cast<uint32_t>(
      std::lower_bound(values_.begin(), values_.end(), value) -
      values_.begin());
}

std::vector<uint32_t> StringDomain::AddBatch(
    const std::vector<std::string>& new_values) {
  std::vector<std::string> old_values = values_;
  values_.insert(values_.end(), new_values.begin(), new_values.end());
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
  std::vector<uint32_t> remap(old_values.size());
  for (size_t i = 0; i < old_values.size(); ++i) {
    remap[i] = static_cast<uint32_t>(
        std::lower_bound(values_.begin(), values_.end(), old_values[i]) -
        values_.begin());
  }
  return remap;
}

size_t StringDomain::SpaceBytes() const {
  size_t bytes = values_.capacity() * sizeof(std::string);
  for (const auto& s : values_) bytes += s.capacity();
  return bytes;
}

}  // namespace cssidx::domain
