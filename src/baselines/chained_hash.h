#ifndef CSSIDX_BASELINES_CHAINED_HASH_H_
#define CSSIDX_BASELINES_CHAINED_HASH_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/index.h"
#include "core/simd_node_search.h"
#include "util/bits.h"
#include "util/macros.h"

// Chained bucket hashing (§3.5), implemented the way §6.2 describes,
// following [GBC98]: the bucket size equals the cache line size, each
// bucket holds an occupancy counter, an overflow link, and as many
// (key, RID) pairs as fit; the hash function is the key's low-order bits
// (cheap, but vulnerable to skew — a point the paper makes).
//
// Hashing is the time winner (about 3x faster than CSS-trees at the
// paper's 5M scale) but needs ~20x the space and provides no ordered
// access, so it cannot replace the sorted RID list — its space is pure
// addition (Figure 7's "direct" column).
//
// `LineBytes` should match the target cache line (32 on the paper's
// machines, 64 on modern x86-64).

namespace cssidx {

/// §3.5: "Skewed data can seriously affect the performance of hash indices
/// unless we have a relatively sophisticated hash function, which will
/// increase the computation time."
enum class HashFunction {
  /// The paper's choice: low-order bits of the key. One AND; collapses
  /// when keys share low bits (e.g. stride-aligned keys).
  kLowOrderBits,
  /// Fibonacci (multiplicative) hashing: one multiply + shift. Scrambles
  /// all input bits into the directory index — skew-resistant at a small
  /// per-probe compute cost.
  kMultiplicative,
};

template <int LineBytes = kCacheLineBytes>
class ChainedHashIndex {
  static_assert(LineBytes >= 16 && IsPowerOfTwo(LineBytes));

 public:
  static constexpr int kPairsPerBucket = (LineBytes - 8) / 8;
  static constexpr uint32_t kNoNext = 0xffffffffu;

  struct Pair {
    Key key;
    uint32_t rid;
  };
  struct alignas(LineBytes) Bucket {
    uint32_t count;
    uint32_t next;  // arena index of the overflow bucket, or kNoNext
    Pair pairs[kPairsPerBucket];
  };
  static_assert(sizeof(Bucket) == LineBytes);

  /// Builds a table with 2^dir_bits directory buckets over keys[0..n).
  /// RIDs are array positions; duplicates keep insertion (= array) order,
  /// so the first match found is the leftmost occurrence.
  ChainedHashIndex(const Key* keys, size_t n, int dir_bits,
                   HashFunction fn = HashFunction::kLowOrderBits)
      : n_(n), dir_bits_(dir_bits), mask_((1u << dir_bits) - 1), fn_(fn) {
    size_t dir_size = size_t{1} << dir_bits;
    arena_.resize(dir_size);
    for (Bucket& b : arena_) {
      b.count = 0;
      b.next = kNoNext;
    }
    for (size_t i = 0; i < n; ++i) Insert(keys[i], static_cast<uint32_t>(i));
  }
  ChainedHashIndex(const std::vector<Key>& keys, int dir_bits)
      : ChainedHashIndex(keys.data(), keys.size(), dir_bits) {}

  int64_t Find(Key k) const { return FindInChain(Slot(k), k); }

  /// Batched Find: compute every probe's directory slot up front and
  /// prefetch the bucket lines, then scan the chains. By the time the scan
  /// reaches probe i its bucket fetch has been in flight for the whole
  /// group — the directory access pattern is random, so this is pure miss
  /// overlap.
  void FindBatch(std::span<const Key> keys, std::span<int64_t> out) const {
    assert(out.size() >= keys.size());
    constexpr size_t kGroup = 16;
    uint32_t slot[kGroup];
    for (size_t i = 0; i < keys.size(); i += kGroup) {
      size_t len = keys.size() - i < kGroup ? keys.size() - i : kGroup;
      for (size_t g = 0; g < len; ++g) {
        slot[g] = Slot(keys[i + g]);
        CSSIDX_PREFETCH(&arena_[slot[g]]);
      }
      for (size_t g = 0; g < len; ++g) {
        out[i + g] = FindInChain(slot[g], keys[i + g]);
      }
    }
  }

  /// §3.6: hashing scans the whole chain for all matches (one pass,
  /// shared with the range kernel — SIMD-dispatched on 64-byte buckets).
  size_t CountEqual(Key k) const { return EqualRangeInChain(Slot(k), k).size(); }

  /// Batched EqualRange: the same slot-precompute + bucket-prefetch group
  /// pattern as FindBatch, but each chain is scanned ONCE, yielding the
  /// leftmost match and the duplicate count together — half the chain
  /// traffic of Find followed by CountEqual. Duplicates are inserted in
  /// array order, so the first match along the chain is the leftmost array
  /// position and the run is {leftmost, leftmost + count}. Absent keys
  /// anchor their empty span at size() (hash has no insertion point).
  void EqualRangeBatch(std::span<const Key> keys,
                       std::span<PositionRange> out) const {
    assert(out.size() >= keys.size());
    constexpr size_t kGroup = 16;
    uint32_t slot[kGroup];
    for (size_t i = 0; i < keys.size(); i += kGroup) {
      size_t len = keys.size() - i < kGroup ? keys.size() - i : kGroup;
      for (size_t g = 0; g < len; ++g) {
        slot[g] = Slot(keys[i + g]);
        CSSIDX_PREFETCH(&arena_[slot[g]]);
      }
      for (size_t g = 0; g < len; ++g) {
        out[i + g] = EqualRangeInChain(slot[g], keys[i + g]);
      }
    }
  }

  /// Batched CountEqual, derived from the same single-scan chain kernel.
  void CountEqualBatch(std::span<const Key> keys,
                       std::span<size_t> out) const {
    assert(out.size() >= keys.size());
    CountEqualBatchViaEqualRange(*this, keys, out);
  }

  template <typename Tracer>
  int64_t FindTraced(Key k, const Tracer& tracer) const {
    const Bucket* bucket = &arena_[Slot(k)];
    while (true) {
      tracer.Touch(bucket, sizeof(Bucket));
      for (uint32_t i = 0; i < bucket->count; ++i) {
        if (bucket->pairs[i].key == k) return bucket->pairs[i].rid;
      }
      if (bucket->next == kNoNext) return kNotFound;
      bucket = &arena_[bucket->next];
    }
  }

  size_t SpaceBytes() const { return arena_.capacity() * sizeof(Bucket); }
  size_t size() const { return n_; }

  /// Longest chain length in buckets — the skew diagnostic of §3.5.
  size_t MaxChainBuckets() const {
    size_t dir_size = static_cast<size_t>(mask_) + 1;
    size_t longest = 0;
    for (size_t b = 0; b < dir_size; ++b) {
      size_t len = 1;
      const Bucket* bucket = &arena_[b];
      while (bucket->next != kNoNext) {
        ++len;
        bucket = &arena_[bucket->next];
      }
      if (len > longest) longest = len;
    }
    return longest;
  }

 private:
  /// A 64-byte bucket is exactly the vector-friendly unit: 16 aligned
  /// uint32 lanes [count, next, k0, r0, ..., k6, r6]. The SIMD chain scan
  /// compares the probe against ALL lanes at once and masks the result
  /// down to the key lanes below 2 + 2*count; the lowest set lane is the
  /// earliest-inserted (= leftmost array position) match, preserving the
  /// scalar scan's order exactly.
  static constexpr bool kSimdBucket =
      LineBytes == 64 && CSSIDX_HAVE_SSE2 != 0;

#if CSSIDX_HAVE_SSE2
  /// Bitmask over the bucket's 16 lanes: bit (2 + 2*i) set iff
  /// pairs[i].key == k and i < count. Pair index = (lane - 2) / 2.
  CSSIDX_ALWAYS_INLINE static uint32_t MatchLaneBits(const Bucket& b,
                                                     Key k) {
    const auto* lanes = reinterpret_cast<const uint32_t*>(&b);
    uint32_t bits;
#if CSSIDX_HAVE_AVX2
    if (internal_node_search::g_active_path == NodeSearchPath::kAvx2) {
      const __m256i vk = _mm256_set1_epi32(static_cast<int>(k));
      __m256i lo = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
      __m256i hi =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes + 8));
      bits = static_cast<uint32_t>(
                 _mm256_movemask_ps(_mm256_castsi256_ps(
                     _mm256_cmpeq_epi32(lo, vk)))) |
             (static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(
                  _mm256_cmpeq_epi32(hi, vk))))
              << 8);
    } else
#endif
    {
      const __m128i vk = _mm_set1_epi32(static_cast<int>(k));
      bits = 0;
      for (int v = 0; v < 4; ++v) {
        __m128i x =
            _mm_load_si128(reinterpret_cast<const __m128i*>(lanes + 4 * v));
        bits |= static_cast<uint32_t>(_mm_movemask_ps(
                    _mm_castsi128_ps(_mm_cmpeq_epi32(x, vk))))
                << (4 * v);
      }
    }
    // Key slots are the even lanes from 2 on; occupied ones sit below
    // lane 2 + 2*count (count <= 7, so the shift is at most 16).
    return bits & 0x5554u & ((1u << (2 + 2 * b.count)) - 1u);
  }
#endif  // CSSIDX_HAVE_SSE2

  /// One pass over the chain: leftmost matching array position plus the
  /// match count. Matches appear along the chain in insertion (= array)
  /// order, so the first one seen is the leftmost.
  PositionRange EqualRangeInChain(uint32_t slot, Key k) const {
    size_t leftmost = n_;
    size_t count = 0;
    const Bucket* bucket = &arena_[slot];
#if CSSIDX_HAVE_SSE2
    if constexpr (kSimdBucket) {
      if (internal_node_search::g_active_path != NodeSearchPath::kScalar) {
        while (true) {
          uint32_t m = MatchLaneBits(*bucket, k);
          if (m != 0) {
            if (count == 0) {
              unsigned lane = static_cast<unsigned>(__builtin_ctz(m));
              leftmost = bucket->pairs[(lane - 2) / 2].rid;
            }
            count += static_cast<size_t>(__builtin_popcount(m));
          }
          if (bucket->next == kNoNext) {
            return PositionRange{leftmost, leftmost + count};
          }
          bucket = &arena_[bucket->next];
        }
      }
    }
#endif
    while (true) {
      uint32_t in_bucket = bucket->count;
      for (uint32_t i = 0; i < in_bucket; ++i) {
        if (bucket->pairs[i].key == k) {
          if (count == 0) leftmost = bucket->pairs[i].rid;
          ++count;
        }
      }
      if (bucket->next == kNoNext) break;
      bucket = &arena_[bucket->next];
    }
    return PositionRange{leftmost, leftmost + count};
  }

  int64_t FindInChain(uint32_t slot, Key k) const {
    const Bucket* bucket = &arena_[slot];
#if CSSIDX_HAVE_SSE2
    if constexpr (kSimdBucket) {
      if (internal_node_search::g_active_path != NodeSearchPath::kScalar) {
        while (true) {
          uint32_t m = MatchLaneBits(*bucket, k);
          if (m != 0) {
            unsigned lane = static_cast<unsigned>(__builtin_ctz(m));
            return bucket->pairs[(lane - 2) / 2].rid;
          }
          if (bucket->next == kNoNext) return kNotFound;
          bucket = &arena_[bucket->next];
        }
      }
    }
#endif
    while (true) {
      uint32_t count = bucket->count;
      for (uint32_t i = 0; i < count; ++i) {
        if (bucket->pairs[i].key == k) return bucket->pairs[i].rid;
      }
      if (bucket->next == kNoNext) return kNotFound;
      bucket = &arena_[bucket->next];
    }
  }

  CSSIDX_ALWAYS_INLINE uint32_t Slot(Key k) const {
    if (fn_ == HashFunction::kLowOrderBits || dir_bits_ == 0) {
      return k & mask_;
    }
    // Knuth's multiplicative constant (2^32 / golden ratio); the top
    // dir_bits_ bits of the product index the directory.
    return static_cast<uint32_t>((k * 2654435761u) >> (32 - dir_bits_)) &
           mask_;
  }

  void Insert(Key k, uint32_t rid) {
    uint32_t b = Slot(k);
    while (arena_[b].next != kNoNext) b = arena_[b].next;
    if (arena_[b].count == kPairsPerBucket) {
      auto fresh = static_cast<uint32_t>(arena_.size());
      arena_.push_back(Bucket{0, kNoNext, {}});
      arena_[b].next = fresh;
      b = fresh;
    }
    Bucket& bucket = arena_[b];
    bucket.pairs[bucket.count++] = Pair{k, rid};
  }

  size_t n_;
  int dir_bits_;
  uint32_t mask_;
  HashFunction fn_;
  std::vector<Bucket> arena_;
};

}  // namespace cssidx

#endif  // CSSIDX_BASELINES_CHAINED_HASH_H_
