#ifndef CSSIDX_BASELINES_BPLUS_TREE_H_
#define CSSIDX_BASELINES_BPLUS_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/index.h"
#include "core/node_search.h"
#include "core/simd_node_search.h"
#include "util/aligned_buffer.h"
#include "util/macros.h"

// Bulk-loaded B+-tree (§3.4), the strongest baseline: like a CSS-tree it
// packs several keys per cache line, but it pays a child pointer per key,
// so a node of the same byte size holds half as many keys and the tree is
// one to two levels deeper.
//
// Implementation choices follow §6.2 exactly:
//   * each key and its child pointer are physically adjacent — a node is an
//     array of key-width slots [p0 k0 p1 k1 ... ] (4-byte for the paper's
//     K = 4, 8-byte for the css64 menu), so one line load serves the
//     comparison and the branch;
//   * with an even number of slots there is one more pointer than key
//     positions allow, so one slot is left empty;
//   * all slots are used (100% fill) and the tree is rebuilt on batch
//     updates — no update slack, per the OLAP assumption;
//   * the leaf level is the sorted array itself, chopped into chunks of
//     `Slots` keys, matching the paper's space model (Figure 7) where only
//     internal nodes cost extra memory.
//
// Routing keys are subtree maxima and ties go to the leftmost branch, so
// duplicate handling matches §3.6.

namespace cssidx {

template <int Slots, typename KeyT = Key>
class BPlusTree {
  static_assert(Slots >= 4, "a node needs at least two children");

 public:
  /// Children per internal node: slots hold `kFanout` pointers and
  /// `kFanout - 1` keys (one slot unused when Slots is even).
  static constexpr int kFanout = (Slots + 1) / 2;
  static constexpr int kRoutingKeys = kFanout - 1;
  static constexpr size_t kGroupProbes = 8;

  BPlusTree(const KeyT* keys, size_t n) : a_(keys), n_(n) { Build(); }
  explicit BPlusTree(const std::vector<KeyT>& keys)
      : BPlusTree(keys.data(), keys.size()) {}

  size_t LowerBound(KeyT k) const {
    if (CSSIDX_UNLIKELY(n_ == 0)) return 0;
    uint32_t node = root_;
    for (int level = height_; level > 0; --level) {
      const KeyT* slots = arena_ptr_ + static_cast<size_t>(node) * Slots;
      // Keys sit at odd slot indices (stride 2 starting at slot 1); the
      // SIMD path compacts the even lanes of interleaved loads instead
      // of gathering (8-byte strided nodes take the scalar unroll).
      int j = DispatchedLowerBound<kRoutingKeys, 2, KeyT>(slots + 1, k);
      node = static_cast<uint32_t>(slots[2 * j]);
    }
    return SearchChunk(node, k);
  }

  int64_t Find(KeyT k) const {
    size_t pos = LowerBound(k);
    if (pos < n_ && a_[pos] == k) return static_cast<int64_t>(pos);
    return kNotFound;
  }

  size_t CountEqual(KeyT k) const {
    return ::cssidx::CountEqual(*this, a_, n_, k);
  }

  /// Batched LowerBound: group probing with software prefetch. Every probe
  /// descends the same number of levels (bulk-loaded tree), so the group
  /// walks down in lockstep; each level's node fetches are prefetched one
  /// level ahead across the whole group.
  void LowerBoundBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    assert(out.size() >= keys.size());
    const size_t count = keys.size();
    if (CSSIDX_UNLIKELY(n_ == 0)) {
      for (size_t i = 0; i < count; ++i) out[i] = 0;
      return;
    }
    size_t i = 0;
    for (; i + kGroupProbes <= count; i += kGroupProbes) {
      uint32_t node[kGroupProbes];
      for (size_t g = 0; g < kGroupProbes; ++g) node[g] = root_;
      for (int level = height_; level > 0; --level) {
        for (size_t g = 0; g < kGroupProbes; ++g) {
          const KeyT* slots =
              arena_ptr_ + static_cast<size_t>(node[g]) * Slots;
          int j = DispatchedLowerBound<kRoutingKeys, 2, KeyT>(slots + 1,
                                                              keys[i + g]);
          node[g] = static_cast<uint32_t>(slots[2 * j]);
          if (level > 1) {
            CSSIDX_PREFETCH(arena_ptr_ + static_cast<size_t>(node[g]) * Slots);
          } else {
            CSSIDX_PREFETCH(a_ + static_cast<size_t>(node[g]) * Slots);
          }
        }
      }
      for (size_t g = 0; g < kGroupProbes; ++g) {
        out[i + g] = SearchChunk(node[g], keys[i + g]);
      }
    }
    for (; i < count; ++i) out[i] = LowerBound(keys[i]);
  }

  /// Batched Find over the same group-probing kernel.
  void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out) const {
    assert(out.size() >= keys.size());
    FindBatchViaLowerBound(*this, a_, n_, keys, out);
  }

  /// Batched EqualRange: both run bounds through the group-probing
  /// LowerBound kernel (see EqualRangeBatchViaLowerBound).
  void EqualRangeBatch(std::span<const KeyT> keys,
                       std::span<PositionRange> out) const {
    assert(out.size() >= keys.size());
    EqualRangeBatchViaLowerBound(*this, n_, keys, out);
  }

  /// Batched CountEqual over the same range kernel.
  void CountEqualBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    assert(out.size() >= keys.size());
    CountEqualBatchViaEqualRange(*this, keys, out);
  }

  template <typename Tracer>
  size_t LowerBoundTraced(KeyT k, const Tracer& tracer) const {
    if (n_ == 0) return 0;
    uint32_t node = root_;
    for (int level = height_; level > 0; --level) {
      const KeyT* slots = arena_ptr_ + static_cast<size_t>(node) * Slots;
      int lo = 0;
      int len = kRoutingKeys;
      while (len > 0) {
        int half = len / 2;
        tracer.Touch(slots + 1 + 2 * (lo + half), sizeof(KeyT));
        if (slots[1 + 2 * (lo + half)] >= k) {
          len = half;
        } else {
          lo += half + 1;
          len -= half + 1;
        }
      }
      tracer.Touch(slots + 2 * lo, sizeof(KeyT));
      node = static_cast<uint32_t>(slots[2 * lo]);
    }
    size_t start = static_cast<size_t>(node) * Slots;
    size_t end = start + Slots < n_ ? start + Slots : n_;
    int lo = 0;
    int len = static_cast<int>(end - start);
    while (len > 0) {
      int half = len / 2;
      tracer.Touch(a_ + start + lo + half, sizeof(KeyT));
      if (a_[start + lo + half] >= k) {
        len = half;
      } else {
        lo += half + 1;
        len -= half + 1;
      }
    }
    return start + static_cast<size_t>(lo);
  }

  /// Internal-node arena bytes (leaves are the array; cf. Figure 7).
  size_t SpaceBytes() const { return arena_bytes_; }
  size_t size() const { return n_; }
  int height() const { return height_; }

 private:
  void Build() {
    if (n_ == 0) return;
    size_t num_chunks = (n_ + Slots - 1) / Slots;
    // Max key per node of the level currently being grouped.
    std::vector<KeyT> maxes(num_chunks);
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t end = (c + 1) * static_cast<size_t>(Slots);
      if (end > n_) end = n_;
      maxes[c] = a_[end - 1];
    }
    if (num_chunks == 1) return;  // the single chunk is the whole index

    // Count internal nodes level by level to size the arena once.
    size_t total_nodes = 0;
    for (size_t width = num_chunks; width > 1;
         width = (width + kFanout - 1) / kFanout) {
      total_nodes += (width + kFanout - 1) / kFanout;
    }
    arena_buf_ = AlignedBuffer(total_nodes * Slots * sizeof(KeyT),
                               kCacheLineBytes);
    arena_ptr_ = arena_buf_.template as<KeyT>();
    arena_bytes_ = total_nodes * Slots * sizeof(KeyT);

    // Children of level-1 nodes are chunk ids; higher levels point at node
    // ids within the arena. Build bottom-up.
    std::vector<uint32_t> child_ids(num_chunks);
    for (size_t c = 0; c < num_chunks; ++c) {
      child_ids[c] = static_cast<uint32_t>(c);
    }
    uint32_t next_node = 0;
    while (child_ids.size() > 1) {
      size_t parents = (child_ids.size() + kFanout - 1) / kFanout;
      std::vector<uint32_t> parent_ids(parents);
      std::vector<KeyT> parent_maxes(parents);
      for (size_t p = 0; p < parents; ++p) {
        uint32_t id = next_node++;
        parent_ids[p] = id;
        KeyT* slots = arena_ptr_ + static_cast<size_t>(id) * Slots;
        size_t first = p * kFanout;
        size_t count = child_ids.size() - first;
        if (count > static_cast<size_t>(kFanout)) count = kFanout;
        KeyT group_max = maxes[first + count - 1];
        for (int j = 0; j < kFanout; ++j) {
          size_t c = j < static_cast<int>(count) ? first + j
                                                 : first + count - 1;
          slots[2 * j] = child_ids[c];
          if (j < kRoutingKeys) {
            // Clamp keys of missing branches to the group max so ties
            // route into the last real child (Algorithm 4.1's trick).
            slots[2 * j + 1] =
                j < static_cast<int>(count) ? maxes[first + j] : group_max;
          }
        }
        if constexpr (Slots % 2 == 0) {
          slots[Slots - 1] = 0;  // the deliberately empty slot (§6.2)
        }
        parent_maxes[p] = group_max;
      }
      child_ids = std::move(parent_ids);
      maxes = std::move(parent_maxes);
      ++height_;
    }
    root_ = child_ids[0];
  }

  CSSIDX_ALWAYS_INLINE size_t SearchChunk(uint32_t chunk, KeyT k) const {
    size_t start = static_cast<size_t>(chunk) * Slots;
    size_t end = start + Slots < n_ ? start + Slots : n_;
    int j;
    if (CSSIDX_LIKELY(end - start == Slots)) {
      j = DispatchedLowerBound<Slots, 1, KeyT>(a_ + start, k);
    } else {
      // Partial trailing chunk: runtime length, same dispatched contract.
      j = DispatchedLowerBoundN(a_ + start, static_cast<int>(end - start), k);
    }
    return start + static_cast<size_t>(j);
  }

  const KeyT* a_;
  size_t n_;
  AlignedBuffer arena_buf_;
  KeyT* arena_ptr_ = nullptr;
  size_t arena_bytes_ = 0;
  uint32_t root_ = 0;
  int height_ = 0;  // number of internal levels above the leaf chunks
};

}  // namespace cssidx

#endif  // CSSIDX_BASELINES_BPLUS_TREE_H_
