#ifndef CSSIDX_BASELINES_BINARY_SEARCH_H_
#define CSSIDX_BASELINES_BINARY_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/index.h"
#include "util/macros.h"

// Array binary search (§3.2): the zero-space baseline. Tuned the way the
// paper tuned it (§6.2): shift-based halving and a sequential scan once the
// range is below five keys. Its problem is reference locality — the probe
// sequence jumps across the array, so nearly every comparison on a large
// array is a cache miss (up to log2 n misses per lookup).

namespace cssidx {

template <typename KeyT = Key>
class BasicBinarySearchIndex {
 public:
  BasicBinarySearchIndex(const KeyT* keys, size_t n) : a_(keys), n_(n) {}
  explicit BasicBinarySearchIndex(const std::vector<KeyT>& keys)
      : BasicBinarySearchIndex(keys.data(), keys.size()) {}

  size_t LowerBound(KeyT k) const {
    size_t lo = 0;
    size_t len = n_;
    while (len >= 5) {
      size_t half = len >> 1;
      if (a_[lo + half] >= k) {
        len = half;
      } else {
        lo += half + 1;
        len -= half + 1;
      }
    }
    // §6.2: sequential tail for short ranges.
    size_t end = lo + len;
    while (lo < end && a_[lo] < k) ++lo;
    return lo;
  }

  int64_t Find(KeyT k) const {
    size_t pos = LowerBound(k);
    if (pos < n_ && a_[pos] == k) return static_cast<int64_t>(pos);
    return kNotFound;
  }

  size_t CountEqual(KeyT k) const {
    return ::cssidx::CountEqual(*this, a_, n_, k);
  }

  template <typename Tracer>
  size_t LowerBoundTraced(KeyT k, const Tracer& tracer) const {
    size_t lo = 0;
    size_t len = n_;
    while (len > 0) {
      size_t half = len >> 1;
      tracer.Touch(a_ + lo + half, sizeof(KeyT));
      if (a_[lo + half] >= k) {
        len = half;
      } else {
        lo += half + 1;
        len -= half + 1;
      }
    }
    return lo;
  }

  /// No space beyond the sorted array itself.
  size_t SpaceBytes() const { return 0; }
  size_t size() const { return n_; }

 private:
  const KeyT* a_;
  size_t n_;
};

using BinarySearchIndex = BasicBinarySearchIndex<Key>;

}  // namespace cssidx

#endif  // CSSIDX_BASELINES_BINARY_SEARCH_H_
