#ifndef CSSIDX_BASELINES_INTERPOLATION_SEARCH_H_
#define CSSIDX_BASELINES_INTERPOLATION_SEARCH_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/index.h"

// Interpolation search (§1, §6.3): estimates the probe position from the
// key's value assuming a linear key distribution. O(log log n) expected on
// uniform data, but degrades badly — worse than binary search — on skewed
// data, which is why the paper "would not recommend using [it] in
// practice". A pure interpolation loop is O(n) worst case (each step can
// shave a single element off the bracket); after kMaxInterpolationSteps
// probes we fall back to binary halving so adversarial inputs stay
// O(log n) while mildly skewed inputs still exhibit the paper's slowdown.

namespace cssidx {

template <typename KeyT = Key>
class BasicInterpolationSearchIndex {
 public:
  BasicInterpolationSearchIndex(const KeyT* keys, size_t n)
      : a_(keys), n_(n) {}
  explicit BasicInterpolationSearchIndex(const std::vector<KeyT>& keys)
      : BasicInterpolationSearchIndex(keys.data(), keys.size()) {}

  size_t LowerBound(KeyT k) const {
    NullProbe probe;
    return LowerBoundImpl(k, probe);
  }

  int64_t Find(KeyT k) const {
    size_t pos = LowerBound(k);
    if (pos < n_ && a_[pos] == k) return static_cast<int64_t>(pos);
    return kNotFound;
  }

  size_t CountEqual(KeyT k) const {
    return ::cssidx::CountEqual(*this, a_, n_, k);
  }

  template <typename Tracer>
  size_t LowerBoundTraced(KeyT k, const Tracer& tracer) const {
    TracerProbe<Tracer> probe{&tracer};
    return LowerBoundImpl(k, probe);
  }

  size_t SpaceBytes() const { return 0; }
  size_t size() const { return n_; }

 private:
  static constexpr int kMaxInterpolationSteps = 64;

  struct NullProbe {
    void operator()(const KeyT*) const {}
  };
  template <typename Tracer>
  struct TracerProbe {
    const Tracer* tracer;
    void operator()(const KeyT* p) const { tracer->Touch(p, sizeof(KeyT)); }
  };

  template <typename Probe>
  size_t LowerBoundImpl(KeyT k, const Probe& probe) const {
    if (n_ == 0) return 0;
    // Invariant: the answer lies in [lo, hi]; a_[lo] and a_[hi] are live.
    size_t lo = 0;
    size_t hi = n_ - 1;
    probe(a_ + lo);
    if (a_[lo] >= k) return 0;
    probe(a_ + hi);
    if (a_[hi] < k) return n_;  // k beyond the last key
    // Here a_[lo] < k <= a_[hi].
    int interp_steps = 0;
    while (hi - lo > 1) {
      // The position estimate multiplies a key delta by a position delta;
      // for 8-byte keys that product needs 128 bits to stay exact.
      using Wide =
          std::conditional_t<sizeof(KeyT) == 8, unsigned __int128, uint64_t>;
      Wide span = a_[hi] - a_[lo];
      size_t mid;
      if (span == 0 || ++interp_steps > kMaxInterpolationSteps) {
        mid = lo + (hi - lo) / 2;  // flat run or slow progress: bisect
      } else {
        Wide offset = static_cast<Wide>(k - a_[lo]) * (hi - lo) / span;
        mid = lo + static_cast<size_t>(offset);
        // Keep the invariant endpoints strictly inside the bracket.
        if (mid <= lo) mid = lo + 1;
        if (mid >= hi) mid = hi - 1;
      }
      probe(a_ + mid);
      if (a_[mid] >= k) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;  // first position with a_[pos] >= k
  }

  const KeyT* a_;
  size_t n_;
};

using InterpolationSearchIndex = BasicInterpolationSearchIndex<Key>;

}  // namespace cssidx

#endif  // CSSIDX_BASELINES_INTERPOLATION_SEARCH_H_
