#ifndef CSSIDX_BASELINES_T_TREE_H_
#define CSSIDX_BASELINES_T_TREE_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/index.h"
#include "core/node_search.h"
#include "core/simd_node_search.h"
#include "util/macros.h"

// T-tree (Lehman & Carey 1986), the classic main-memory index the paper
// re-evaluates (§3.3). A balanced binary tree whose node holds many
// (key, RID) pairs covering an adjacent key range. We implement the
// *improved* variant of [LC86b] the way §6.2 describes:
//
//   * the two child references are laid out adjacent to the smallest key,
//     so the common path (compare against the min, follow a child) touches
//     one cache line;
//   * no parent pointers (not needed for search);
//   * a RID is stored per key — the paper's point is precisely that this
//     wastes half of each node, because most probes only ever read the
//     boundary keys. Only one or two keys per node participate in routing,
//     so a T-tree costs the same ~log2(n/m) + log2(m) = log2(n) cache-
//     missing comparisons as binary search despite its "wide node" look.
//
// `Entries` = (key, RID) pairs per node; nodes are built perfectly balanced
// from consecutive array chunks (batch build, per the OLAP assumption).

namespace cssidx {

template <int Entries, typename KeyT = Key>
class TTreeIndex {
  static_assert(Entries >= 2, "a T-tree node needs at least two entries");

 public:
#ifdef CSSIDX_WIDE_POINTERS
  using NodeRef = uint64_t;
#else
  using NodeRef = uint32_t;
#endif
  static constexpr NodeRef kNull = static_cast<NodeRef>(-1);
  /// Probes descended in lockstep by LowerBoundBatch (see the CSS-tree
  /// kernel for the rationale behind the group width).
  static constexpr size_t kGroupProbes = 8;

  struct Node {
    NodeRef left;
    NodeRef right;
    uint32_t count;
    KeyT keys[Entries];     // keys[0] shares a line with the child refs
    uint32_t rids[Entries];
  };

  TTreeIndex(const KeyT* keys, size_t n) : a_(keys), n_(n) {
    size_t chunks = (n + Entries - 1) / Entries;
    nodes_.reserve(chunks);
    root_ = BuildRange(0, chunks);
  }
  explicit TTreeIndex(const std::vector<KeyT>& keys)
      : TTreeIndex(keys.data(), keys.size()) {}

  size_t LowerBound(KeyT k) const {
    // LC86b's improved search: compare only the *smallest* key per node on
    // the way down (one cache line: child refs + min share it), remember
    // the last node where we turned right (the only candidate that can
    // bound k) and the last node where we turned left (k's in-order
    // successor bound). One in-node search at the end.
    NodeRef cur = root_;
    const Node* bounding = nullptr;   // deepest node with min < k
    const Node* successor = nullptr;  // deepest node with min >= k
    while (cur != kNull) {
      const Node& node = nodes_[cur];
      if (k <= node.keys[0]) {
        successor = &node;
        cur = node.left;
      } else {
        bounding = &node;
        cur = node.right;
      }
    }
    return ResolveLowerBound(bounding, successor, k);
  }

  /// Batched LowerBound: the pointer-chasing descent that makes T-trees
  /// slow is also what kept this method on the scalar fallback path — a
  /// probe's next node is unknowable until the current header line
  /// arrives. Group probing sidesteps that: kGroupProbes descents advance
  /// in lockstep, and each probe's next child header/min-key line is
  /// prefetched the moment its ref is read, so the miss overlaps the other
  /// probes' compares exactly as in the CSS-tree kernel. Results are
  /// identical to scalar LowerBound.
  void LowerBoundBatch(std::span<const KeyT> keys,
                       std::span<size_t> out) const {
    assert(out.size() >= keys.size());
    const size_t count = keys.size();
    size_t i = 0;
    for (; i + kGroupProbes <= count; i += kGroupProbes) {
      NodeRef cur[kGroupProbes];
      const Node* bounding[kGroupProbes] = {};
      const Node* successor[kGroupProbes] = {};
      for (size_t g = 0; g < kGroupProbes; ++g) cur[g] = root_;
      bool descending = root_ != kNull;
      while (descending) {
        descending = false;
        for (size_t g = 0; g < kGroupProbes; ++g) {
          if (cur[g] == kNull) continue;
          const Node& node = nodes_[cur[g]];
          if (keys[i + g] <= node.keys[0]) {
            successor[g] = &node;
            cur[g] = node.left;
          } else {
            bounding[g] = &node;
            cur[g] = node.right;
          }
          if (cur[g] != kNull) {
            // The child-ref/min-key header line — the only line the
            // improved descent touches per node.
            CSSIDX_PREFETCH(&nodes_[cur[g]]);
            descending = true;
          }
        }
      }
      for (size_t g = 0; g < kGroupProbes; ++g) {
        out[i + g] = ResolveLowerBound(bounding[g], successor[g], keys[i + g]);
      }
    }
    for (; i < count; ++i) out[i] = LowerBound(keys[i]);
  }

  /// Batched Find over the same group-probing kernel.
  void FindBatch(std::span<const KeyT> keys, std::span<int64_t> out) const {
    assert(out.size() >= keys.size());
    FindBatchViaLowerBound(*this, a_, n_, keys, out);
  }

  /// The *basic* (pre-LC86b) T-tree search, kept for the variant ablation:
  /// each node compares against both boundary keys, so right-descents
  /// touch the max key's cache line as well as the header line. The paper
  /// used the improved version because this one is "a little bit" worse.
  size_t LowerBoundBasic(KeyT k) const {
    NodeRef cur = root_;
    const Node* successor = nullptr;
    while (cur != kNull) {
      const Node& node = nodes_[cur];
      if (k <= node.keys[0]) {
        successor = &node;
        cur = node.left;
      } else if (k > node.keys[node.count - 1]) {
        cur = node.right;
      } else {
        // Bounding node found immediately: min < k <= max.
        return node.rids[SearchInNode(node, k)];
      }
    }
    return successor != nullptr ? successor->rids[0] : n_;
  }

  int64_t Find(KeyT k) const {
    size_t pos = LowerBound(k);
    if (pos < n_ && a_[pos] == k) return static_cast<int64_t>(pos);
    return kNotFound;
  }

  size_t CountEqual(KeyT k) const {
    return ::cssidx::CountEqual(*this, a_, n_, k);
  }

  template <typename Tracer>
  size_t LowerBoundTraced(KeyT k, const Tracer& tracer) const {
    NodeRef cur = root_;
    const Node* bounding = nullptr;
    const Node* successor = nullptr;
    while (cur != kNull) {
      const Node& node = nodes_[cur];
      // Header + min key live on one line (the LC86b layout win); the
      // improved search touches nothing else on the way down.
      tracer.Touch(&node, offsetof(Node, keys) + sizeof(KeyT));
      if (k <= node.keys[0]) {
        successor = &node;
        cur = node.left;
      } else {
        bounding = &node;
        cur = node.right;
      }
    }
    if (bounding != nullptr) {
      int lo = 0;
      int len = static_cast<int>(bounding->count);
      while (len > 0) {
        int half = len / 2;
        tracer.Touch(&bounding->keys[lo + half], sizeof(KeyT));
        if (bounding->keys[lo + half] >= k) {
          len = half;
        } else {
          lo += half + 1;
          len -= half + 1;
        }
      }
      if (lo < static_cast<int>(bounding->count)) {
        tracer.Touch(&bounding->rids[lo], sizeof(uint32_t));
        return bounding->rids[lo];
      }
    }
    if (successor != nullptr) {
      tracer.Touch(&successor->rids[0], sizeof(uint32_t));
      return successor->rids[0];
    }
    return n_;
  }

  size_t SpaceBytes() const { return nodes_.capacity() * sizeof(Node); }
  size_t size() const { return n_; }
  size_t NumNodes() const { return nodes_.size(); }

 private:
  /// The shared finish of the improved search: one in-node search in the
  /// bounding node, else the successor's min, else n (scalar and batched
  /// descents both end here).
  CSSIDX_ALWAYS_INLINE size_t ResolveLowerBound(const Node* bounding,
                                                const Node* successor,
                                                KeyT k) const {
    if (bounding != nullptr) {
      int j = SearchInNode(*bounding, k);
      if (j < static_cast<int>(bounding->count)) {
        // min < k <= keys[j]: the left subtree is all < k, so this is the
        // global lower bound.
        return bounding->rids[j];
      }
      // k exceeds the bounding node's max: fall through to the successor.
    }
    return successor != nullptr ? successor->rids[0] : n_;
  }

  static int SearchInNode(const Node& node, KeyT k) {
    if (CSSIDX_LIKELY(node.count == Entries)) {
      return DispatchedLowerBound<Entries, 1, KeyT>(node.keys, k);
    }
    return DispatchedLowerBoundN(node.keys, static_cast<int>(node.count), k);
  }

  /// Balanced midpoint recursion over array chunks of `Entries` keys.
  NodeRef BuildRange(size_t lo_chunk, size_t hi_chunk) {
    if (lo_chunk >= hi_chunk) return kNull;
    size_t mid = lo_chunk + (hi_chunk - lo_chunk) / 2;
    size_t start = mid * Entries;
    size_t end = start + Entries < n_ ? start + Entries : n_;
    auto ref = static_cast<NodeRef>(nodes_.size());
    nodes_.emplace_back();
    {
      Node& node = nodes_.back();
      node.count = static_cast<uint32_t>(end - start);
      for (size_t i = start; i < end; ++i) {
        node.keys[i - start] = a_[i];
        node.rids[i - start] = static_cast<uint32_t>(i);
      }
    }
    NodeRef left = BuildRange(lo_chunk, mid);
    NodeRef right = BuildRange(mid + 1, hi_chunk);
    nodes_[ref].left = left;
    nodes_[ref].right = right;
    return ref;
  }

  const KeyT* a_;
  size_t n_;
  std::vector<Node> nodes_;
  NodeRef root_ = kNull;
};

}  // namespace cssidx

#endif  // CSSIDX_BASELINES_T_TREE_H_
