#ifndef CSSIDX_BASELINES_BINARY_TREE_H_
#define CSSIDX_BASELINES_BINARY_TREE_H_

#include <cstdint>
#include <vector>

#include "core/index.h"
#include "util/macros.h"

// Pointer-based balanced binary search tree — "tree binary search" in
// Figures 10/11. One key, one RID and two child references per node, so a
// 64-byte cache line holds only four nodes, and consecutive probes land on
// unrelated lines: the same ~log2(n) misses per lookup as array binary
// search, plus pointer-dereference cost. The paper includes it to show that
// array-based binary search is sometimes *better* than the pointer version.
//
// Nodes live in one arena and child links are 32-bit arena offsets, which
// keeps P = 4 bytes as in the paper's 1999 space model (Figure 7). Define
// CSSIDX_WIDE_POINTERS to see today's 8-byte-pointer penalty.

namespace cssidx {

template <typename KeyT = Key>
class BasicBinaryTreeIndex {
 public:
#ifdef CSSIDX_WIDE_POINTERS
  using NodeRef = uint64_t;
#else
  using NodeRef = uint32_t;
#endif
  static constexpr NodeRef kNull = static_cast<NodeRef>(-1);

  struct Node {
    KeyT key;
    uint32_t rid;  // array position (leftmost among duplicates, see Build)
    NodeRef left;
    NodeRef right;
  };

  BasicBinaryTreeIndex(const KeyT* keys, size_t n) : a_(keys), n_(n) {
    nodes_.reserve(n);
    BuildLevelOrder();
  }
  explicit BasicBinaryTreeIndex(const std::vector<KeyT>& keys)
      : BasicBinaryTreeIndex(keys.data(), keys.size()) {}

  size_t LowerBound(KeyT k) const {
    NodeRef cur = root_;
    size_t best = n_;
    while (cur != kNull) {
      const Node& node = nodes_[cur];
      if (node.key >= k) {
        best = node.rid;
        cur = node.left;
      } else {
        cur = node.right;
      }
    }
    // Every array element is a node and in-order traversal reproduces the
    // array, so the in-order-first node with key >= k (which this standard
    // descent finds, ties included) *is* the lower bound.
    return best;
  }

  int64_t Find(KeyT k) const {
    size_t pos = LowerBound(k);
    if (pos < n_ && a_[pos] == k) return static_cast<int64_t>(pos);
    return kNotFound;
  }

  size_t CountEqual(KeyT k) const {
    return ::cssidx::CountEqual(*this, a_, n_, k);
  }

  template <typename Tracer>
  size_t LowerBoundTraced(KeyT k, const Tracer& tracer) const {
    NodeRef cur = root_;
    size_t best = n_;
    while (cur != kNull) {
      const Node& node = nodes_[cur];
      tracer.Touch(&node, sizeof(Node));
      if (node.key >= k) {
        best = node.rid;
        cur = node.left;
      } else {
        cur = node.right;
      }
    }
    return best;
  }

  size_t SpaceBytes() const { return nodes_.capacity() * sizeof(Node); }
  size_t size() const { return n_; }

 private:
  /// Balanced tree over array midpoints, with nodes placed in the arena in
  /// *level order* (root, then level 1, ...). Pre-order placement would lay
  /// left spines contiguously and give descents artificial spatial
  /// locality; level order reproduces the behaviour the paper measures — a
  /// fresh cache line on essentially every level.
  void BuildLevelOrder() {
    if (n_ == 0) return;
    struct Pending {
      size_t lo, hi;     // array range [lo, hi)
      NodeRef parent;    // node to patch, kNull for the root
      bool is_left;
    };
    std::vector<Pending> queue;
    queue.push_back({0, n_, kNull, false});
    for (size_t head = 0; head < queue.size(); ++head) {
      Pending p = queue[head];
      size_t mid = p.lo + (p.hi - p.lo) / 2;
      auto ref = static_cast<NodeRef>(nodes_.size());
      nodes_.push_back(
          Node{a_[mid], static_cast<uint32_t>(mid), kNull, kNull});
      if (p.parent != kNull) {
        (p.is_left ? nodes_[p.parent].left : nodes_[p.parent].right) = ref;
      } else {
        root_ = ref;
      }
      if (p.lo < mid) queue.push_back({p.lo, mid, ref, true});
      if (mid + 1 < p.hi) queue.push_back({mid + 1, p.hi, ref, false});
    }
  }

  const KeyT* a_;
  size_t n_;
  std::vector<Node> nodes_;
  NodeRef root_ = kNull;
};

using BinaryTreeIndex = BasicBinaryTreeIndex<Key>;

}  // namespace cssidx

#endif  // CSSIDX_BASELINES_BINARY_TREE_H_
