// The bench harness is part of the reproduction deliverable (it defines
// the measurement protocol), so its pieces get the same test treatment:
// option parsing, the min-of-repeats timer contract, and table rendering.

#include "../bench/harness.h"

#include <string>
#include <vector>

#include "baselines/binary_search.h"
#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx::bench {
namespace {

Options ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  return Options::Parse(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()));
}

TEST(Harness, OptionDefaultsMatchPaperProtocol) {
  Options o = ParseArgs({});
  EXPECT_EQ(o.lookups, 100'000u);  // §6.1: 100,000 searches
  EXPECT_EQ(o.repeats, 3);
  EXPECT_FALSE(o.quick);
  EXPECT_FALSE(o.full);
}

TEST(Harness, OptionOverrides) {
  Options o = ParseArgs({"--n=500", "--lookups=10", "--repeats=5", "--quick",
                         "--seed=9"});
  EXPECT_EQ(o.n, 500u);
  EXPECT_EQ(o.lookups, 10u);
  EXPECT_EQ(o.repeats, 5);
  EXPECT_TRUE(o.quick);
  EXPECT_EQ(o.seed, 9u);
}

TEST(Harness, MinFindSecondsReturnsPositiveTime) {
  auto keys = workload::DistinctSortedKeys(10'000, 1, 4);
  BinarySearchIndex index(keys);
  std::vector<Key> lookups(keys.begin(), keys.begin() + 1000);
  uint64_t sink_before = g_sink;
  double sec = MinFindSeconds(index, lookups, 2);
  EXPECT_GT(sec, 0.0);
  EXPECT_LT(sec, 5.0);
  // The sink must have absorbed results (anti-DCE contract).
  EXPECT_NE(g_sink, sink_before);
}

TEST(Harness, TableFormatsNumbersAndBytes) {
  EXPECT_EQ(Table::Num(0.123456, 3), "0.123");
  EXPECT_EQ(Table::Num(2.0), "2");
  EXPECT_EQ(Table::Bytes(512), "512 B");
  EXPECT_EQ(Table::Bytes(2048), "2.0 KB");
  EXPECT_EQ(Table::Bytes(2.5e6), "2.50 MB");
}

TEST(Harness, TablePrintsHumanAndCsvBlocks) {
  Table t({"a", "b"});
  t.AddRow({"1", "x"});
  t.AddRow({"2", "y"});
  testing::internal::CaptureStdout();
  t.Print("demo");
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("csv,a,b"), std::string::npos);
  EXPECT_NE(out.find("csv,1,x"), std::string::npos);
  EXPECT_NE(out.find("csv,2,y"), std::string::npos);
}

}  // namespace
}  // namespace cssidx::bench
