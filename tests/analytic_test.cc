// The §5 analytic models must reproduce the paper's own numbers (Figure 7's
// "Typical Value" column, Figure 5's ratio shapes) and stay consistent with
// the structures actually built.

#include <cmath>

#include "analytic/params.h"
#include "analytic/ratio_model.h"
#include "analytic/space_model.h"
#include "analytic/time_model.h"
#include "gtest/gtest.h"

namespace cssidx::analytic {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

TEST(SpaceModel, Figure7TypicalValues) {
  Params p = Table1();  // n = 1e7, K = R = P = 4, c = 64, s = 1, h = 1.2
  double m = p.SlotsPerNode();
  EXPECT_DOUBLE_EQ(m, 16);
  // The paper reports MB values rounded to one decimal (10^6-based).
  EXPECT_NEAR(FullCssSpace(p, m) / 1e6, 2.5, 0.05);
  EXPECT_NEAR(LevelCssSpace(p, m) / 1e6, 2.7, 0.05);
  EXPECT_NEAR(BPlusSpace(p, m) / 1e6, 5.7, 0.05);
  EXPECT_NEAR(HashSpaceIndirect(p) / 1e6, 8.0, 0.05);
  EXPECT_NEAR(HashSpaceDirect(p) / 1e6, 48.0, 0.05);
  EXPECT_NEAR(TTreeSpaceIndirect(p, m) / 1e6, 11.4, 0.05);
  EXPECT_NEAR(TTreeSpaceDirect(p, m) / 1e6, 51.4, 0.05);
}

TEST(SpaceModel, RowsCarryOrderedAccessFlags) {
  Params p = Table1();
  auto rows = SpaceModel(p, 16);
  int unordered = 0;
  for (const auto& r : rows) {
    if (!r.rid_ordered_access) {
      ++unordered;
      EXPECT_EQ(r.method, "hash table");
    }
    EXPECT_GE(r.direct_bytes, r.indirect_bytes) << r.method;
  }
  EXPECT_EQ(unordered, 1);
}

TEST(SpaceModel, CssDominatesBPlusAtEveryNodeSize) {
  Params p = Table1();
  for (double m : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    EXPECT_LT(FullCssSpace(p, m), BPlusSpace(p, m)) << m;
    EXPECT_LT(LevelCssSpace(p, m), BPlusSpace(p, m)) << m;
  }
}

TEST(RatioModel, LevelTreeWinsComparisonsLosesCacheAccesses) {
  // Figure 5: comparison ratio < 1, cache access ratio > 1, both -> 1.
  for (double m : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    EXPECT_LT(ComparisonRatio(m), 1.0) << m;
    EXPECT_GT(CacheAccessRatio(m), 1.0) << m;
  }
  EXPECT_NEAR(ComparisonRatio(64), 1.0, 0.05);
  EXPECT_NEAR(CacheAccessRatio(64), 1.0, 0.01);
  // Monotone approach to 1 from each side.
  EXPECT_LT(ComparisonRatio(8), ComparisonRatio(32));
  EXPECT_GT(CacheAccessRatio(8), CacheAccessRatio(32));
}

TEST(TimeModel, MissesPerNodeFormula) {
  EXPECT_DOUBLE_EQ(MissesPerNode(32, 64), 1.0);   // fits in a line
  EXPECT_DOUBLE_EQ(MissesPerNode(64, 64), 1.0);
  EXPECT_DOUBLE_EQ(MissesPerNode(128, 64), 1.5);  // log2(2) + 1/2
  EXPECT_DOUBLE_EQ(MissesPerNode(256, 64), 2.25);
}

TEST(TimeModel, MissesPerNodeClampsAndRoundsToWholeLines) {
  // Sub-line nodes must cost exactly one miss — the raw log2(s) formula
  // would go negative (log2(0.25) + 4 = 2, log2(0.0625) + 16 = 12 are
  // nonsense the advisor would consume as "huge"); tiny advisor query
  // points like a 16-byte node on a 64-byte line hit this.
  EXPECT_DOUBLE_EQ(MissesPerNode(16, 64), 1.0);
  EXPECT_DOUBLE_EQ(MissesPerNode(4, 64), 1.0);
  EXPECT_DOUBLE_EQ(MissesPerNode(1, 64), 1.0);
  // Non-power-of-two ratios occupy whole lines: a 96-byte node spans two
  // 64-byte lines, same as a 128-byte node.
  EXPECT_DOUBLE_EQ(MissesPerNode(96, 64), MissesPerNode(128, 64));
  EXPECT_DOUBLE_EQ(MissesPerNode(96, 64), 1.5);
  // 3 lines: log2(3) + 1/3.
  EXPECT_DOUBLE_EQ(MissesPerNode(192, 64), std::log2(3.0) + 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MissesPerNode(129, 64), std::log2(3.0) + 1.0 / 3.0);
  // Degenerate inputs fall back to one miss instead of NaN/inf.
  EXPECT_DOUBLE_EQ(MissesPerNode(0, 64), 1.0);
  EXPECT_DOUBLE_EQ(MissesPerNode(-8, 64), 1.0);
  EXPECT_DOUBLE_EQ(MissesPerNode(64, 0), 1.0);
}

TEST(TimeModel, MissesPerNodeMonotoneAtAdvisorQueryPoints) {
  // The advisor sweeps the node-size menu at both key widths; misses must
  // be monotone non-decreasing in node size or specs get misranked.
  for (double width : {4.0, 8.0}) {
    double prev = 0.0;
    for (double m : {4.0, 8.0, 16.0, 24.0, 32.0, 64.0, 128.0}) {
      double misses = MissesPerNode(m * width, 64.0);
      EXPECT_GE(misses, prev) << "m=" << m << " width=" << width;
      EXPECT_GE(misses, 1.0);
      prev = misses;
    }
  }
}

TEST(TimeModel, CssHasFewestMissesAtLineSizedNodes) {
  Params p = Table1();
  auto rows = TimeModel(p, 16);
  double bsearch = 0, ttree = 0, bplus = 0, full = 0, level = 0;
  for (const auto& r : rows) {
    if (r.method == "binary search") bsearch = r.cache_misses;
    if (r.method == "T-tree") ttree = r.cache_misses;
    if (r.method == "B+-tree") bplus = r.cache_misses;
    if (r.method == "full CSS-tree") full = r.cache_misses;
    if (r.method == "level CSS-tree") level = r.cache_misses;
  }
  // Figure 6's story: CSS < B+ < T-tree = binary search.
  EXPECT_LT(full, bplus);
  EXPECT_LT(level, bplus);
  EXPECT_LT(bplus, ttree);
  EXPECT_DOUBLE_EQ(ttree, bsearch);
  // Full CSS has one extra branch per node: fewer levels than level CSS.
  EXPECT_LT(full, level);
  // Concretely: log2(1e7) ~ 23.25 misses for binary search vs
  // log17(1e7) ~ 5.7 for the full CSS-tree — the paper's ">2x" headline.
  EXPECT_NEAR(bsearch, 23.25, 0.1);
  EXPECT_NEAR(full, std::log(1e7) / std::log(17.0), 0.1);
}

TEST(TimeModel, ComparisonsRoughlyEqualAcrossMethods) {
  // §5.1: "the comparison cost is more or less the same for all methods".
  Params p = Table1();
  auto rows = TimeModel(p, 16);
  double log2n = std::log2(p.n);
  for (const auto& r : rows) {
    EXPECT_NEAR(r.comparisons, log2n, log2n * 0.25) << r.method;
  }
}

TEST(TimeModel, LargeNodesDegradeTowardBinarySearch) {
  // As m grows, CSS misses grow toward log2 n (§5.1's closing
  // observation): monotone in m and bounded by the binary-search count.
  Params p = Table1();
  double log2n = std::log2(p.n);
  double prev = 0;
  for (double m : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    double misses = TimeModel(p, m)[3].cache_misses;  // full CSS-tree row
    EXPECT_GT(misses, prev) << m;
    EXPECT_LT(misses, log2n) << m;
    prev = misses;
  }
  EXPECT_GT(prev, 0.6 * log2n);  // m = 4096 is already close
}

TEST(SpaceModel, Figure8ShapesAreLinearInN) {
  Params p = Table1();
  Params p2 = p;
  p2.n = 2 * p.n;
  EXPECT_NEAR(FullCssSpace(p2, 16), 2 * FullCssSpace(p, 16), 1.0);
  EXPECT_NEAR(HashSpaceDirect(p2), 2 * HashSpaceDirect(p), 1.0);
  EXPECT_NEAR(TTreeSpaceDirect(p2, 16), 2 * TTreeSpaceDirect(p, 16), 1.0);
}

TEST(Params, Table1Defaults) {
  Params p = Table1();
  EXPECT_EQ(p.R, 4);
  EXPECT_EQ(p.K, 4);
  EXPECT_EQ(p.P, 4);
  EXPECT_EQ(p.n, 1e7);
  EXPECT_EQ(p.h, 1.2);
  EXPECT_EQ(p.c, 64);
  EXPECT_EQ(p.s, 1);
  (void)kMB;
}

}  // namespace
}  // namespace cssidx::analytic
