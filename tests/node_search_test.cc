// The unrolled intra-node search must agree with std::lower_bound for every
// node size used anywhere in the suite, both dense and strided layouts —
// and the SIMD-dispatched kernels must agree bit-for-bit on every path the
// machine supports (scalar / SSE2 / AVX2), since §4.1.2's duplicate
// routing rides on the leftmost-on-ties answer.

#include "core/node_search.h"

#include <algorithm>
#include <vector>

#include "core/builder.h"
#include "core/range.h"
#include "core/simd_node_search.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

/// Runs fn under every dispatch path this build + CPU supports (a request
/// above the detected ceiling is clamped, so unsupported paths skip rather
/// than silently re-testing the same kernel), restoring the detected path
/// afterwards.
template <typename Fn>
void ForEachPath(Fn&& fn) {
  for (NodeSearchPath path : {NodeSearchPath::kScalar, NodeSearchPath::kSse2,
                              NodeSearchPath::kAvx2}) {
    if (SetNodeSearchPath(path) != path) continue;
    fn(path);
  }
  SetNodeSearchPath(DetectedNodeSearchPath());
}

template <int Count>
void CheckDense() {
  Pcg32 rng(Count);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Key> keys(Count);
    uint32_t cur = rng.Below(10);
    for (int i = 0; i < Count; ++i) {
      cur += rng.Below(3);  // allows duplicates
      keys[i] = cur;
    }
    for (Key probe = 0; probe <= cur + 2; ++probe) {
      int expected = static_cast<int>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ASSERT_EQ((UnrolledLowerBound<Count, 1>(keys.data(), probe)), expected)
          << "Count=" << Count << " probe=" << probe;
      ASSERT_EQ(GenericLowerBound(keys.data(), Count, probe), expected);
      ForEachPath([&](NodeSearchPath path) {
        ASSERT_EQ((DispatchedLowerBound<Count, 1>(keys.data(), probe)),
                  expected)
            << "Count=" << Count << " probe=" << probe << " path="
            << NodeSearchPathName(path);
        ASSERT_EQ(DispatchedLowerBoundN(keys.data(), Count, probe), expected)
            << "Count=" << Count << " probe=" << probe << " path="
            << NodeSearchPathName(path);
      });
    }
  }
}

TEST(NodeSearch, Dense1) { CheckDense<1>(); }
TEST(NodeSearch, Dense2) { CheckDense<2>(); }
TEST(NodeSearch, Dense3) { CheckDense<3>(); }
TEST(NodeSearch, Dense4) { CheckDense<4>(); }
TEST(NodeSearch, Dense5) { CheckDense<5>(); }
TEST(NodeSearch, Dense7) { CheckDense<7>(); }
TEST(NodeSearch, Dense8) { CheckDense<8>(); }
TEST(NodeSearch, Dense15) { CheckDense<15>(); }
TEST(NodeSearch, Dense16) { CheckDense<16>(); }
TEST(NodeSearch, Dense23) { CheckDense<23>(); }
TEST(NodeSearch, Dense24) { CheckDense<24>(); }
TEST(NodeSearch, Dense31) { CheckDense<31>(); }
TEST(NodeSearch, Dense32) { CheckDense<32>(); }
TEST(NodeSearch, Dense63) { CheckDense<63>(); }
TEST(NodeSearch, Dense64) { CheckDense<64>(); }
TEST(NodeSearch, Dense127) { CheckDense<127>(); }
TEST(NodeSearch, Dense128) { CheckDense<128>(); }

template <int Count>
void CheckStrided() {
  // B+-tree layout: keys at odd slots of a 2-strided array.
  Pcg32 rng(Count * 977);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Key> slots(2 * Count, 0xdeadbeef);
    std::vector<Key> keys(Count);
    uint32_t cur = rng.Below(5);
    for (int i = 0; i < Count; ++i) {
      cur += 1 + rng.Below(4);
      keys[i] = cur;
      slots[2 * i] = cur;  // stride-2 positions 0, 2, 4, ...
    }
    for (Key probe = 0; probe <= cur + 2; ++probe) {
      int expected = static_cast<int>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ASSERT_EQ((UnrolledLowerBound<Count, 2>(slots.data(), probe)), expected);
      ASSERT_EQ(GenericLowerBound(slots.data(), Count, probe, 2), expected);
      ForEachPath([&](NodeSearchPath path) {
        ASSERT_EQ((DispatchedLowerBound<Count, 2>(slots.data(), probe)),
                  expected)
            << "Count=" << Count << " probe=" << probe << " path="
            << NodeSearchPathName(path);
      });
    }
  }
}

TEST(NodeSearch, Strided3) { CheckStrided<3>(); }
TEST(NodeSearch, Strided7) { CheckStrided<7>(); }
TEST(NodeSearch, Strided11) { CheckStrided<11>(); }
TEST(NodeSearch, Strided15) { CheckStrided<15>(); }
TEST(NodeSearch, Strided63) { CheckStrided<63>(); }

TEST(NodeSearch, ZeroCount) {
  Key keys[1] = {5};
  EXPECT_EQ((UnrolledLowerBound<0, 1>(keys, Key{3})), 0);
  EXPECT_EQ(GenericLowerBound(keys, 0, Key{3}), 0);
}

TEST(NodeSearch, AllEqualReturnsZero) {
  std::vector<Key> keys(16, 7);
  EXPECT_EQ((UnrolledLowerBound<16, 1>(keys.data(), Key{7})), 0);
  EXPECT_EQ((UnrolledLowerBound<16, 1>(keys.data(), Key{8})), 16);
  EXPECT_EQ((UnrolledLowerBound<16, 1>(keys.data(), Key{6})), 0);
}

TEST(NodeSearch, MaxKeyProbe) {
  std::vector<Key> keys{1, 2, 0xffffffffu};
  EXPECT_EQ((UnrolledLowerBound<3, 1>(keys.data(), 0xffffffffu)), 2);
}

// ----------------------------------------------------------------------
// SIMD dispatch: every path must reproduce the scalar answer exactly.

TEST(NodeSearchDispatch, ReportsAConsistentPath) {
  NodeSearchPath detected = DetectedNodeSearchPath();
  EXPECT_EQ(ActiveNodeSearchPath(), detected);
  // A request above the ceiling clamps; one at/below it sticks.
  EXPECT_EQ(SetNodeSearchPath(NodeSearchPath::kAvx2) <= detected, true);
  EXPECT_EQ(SetNodeSearchPath(NodeSearchPath::kScalar),
            NodeSearchPath::kScalar);
  EXPECT_EQ(SetNodeSearchPath(detected), detected);
}

TEST(NodeSearchDispatch, AllEqualKeysLeftmostTie) {
  // §4.1.2: on an all-duplicate node every path must land on slot 0 for
  // the key itself (leftmost tie) and Count one past it.
  std::vector<Key> k16(16, 7), k32(32, 7);
  ForEachPath([&](NodeSearchPath path) {
    EXPECT_EQ((DispatchedLowerBound<16, 1>(k16.data(), Key{7})), 0)
        << NodeSearchPathName(path);
    EXPECT_EQ((DispatchedLowerBound<16, 1>(k16.data(), Key{8})), 16)
        << NodeSearchPathName(path);
    EXPECT_EQ((DispatchedLowerBound<16, 1>(k16.data(), Key{6})), 0)
        << NodeSearchPathName(path);
    EXPECT_EQ((DispatchedLowerBound<32, 1>(k32.data(), Key{7})), 0)
        << NodeSearchPathName(path);
    EXPECT_EQ(DispatchedLowerBoundN(k16.data(), 16, Key{7}), 0)
        << NodeSearchPathName(path);
  });
}

TEST(NodeSearchDispatch, UnsignedExtremes) {
  // The SSE2/AVX2 kernels compare via a signed bias; the top of the key
  // space is exactly where a botched bias would flip the order.
  std::vector<Key> keys(16);
  for (int i = 0; i < 16; ++i) {
    keys[i] = (i < 8) ? static_cast<Key>(i) : 0xfffffff8u + (i - 8);
  }
  for (Key probe : {Key{0}, Key{7}, Key{8}, Key{0x7fffffffu}, Key{0x80000000u},
                    Key{0xfffffff8u}, Key{0xffffffffu}}) {
    int expected = static_cast<int>(
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
    ForEachPath([&](NodeSearchPath path) {
      ASSERT_EQ((DispatchedLowerBound<16, 1>(keys.data(), probe)), expected)
          << "probe=" << probe << " path=" << NodeSearchPathName(path);
      ASSERT_EQ(DispatchedLowerBoundN(keys.data(), 16, probe), expected)
          << "probe=" << probe << " path=" << NodeSearchPathName(path);
    });
  }
}

TEST(NodeSearchDispatch, PartialTrailingCounts) {
  // Every partial-leaf length a trailing CSS/B+ leaf can have, 0..40,
  // through the runtime-count dispatcher on every path.
  Pcg32 rng(0x1eaf);
  for (int count = 0; count <= 40; ++count) {
    std::vector<Key> keys(static_cast<size_t>(count));
    uint32_t cur = rng.Below(8);
    for (int i = 0; i < count; ++i) {
      cur += rng.Below(3);
      keys[i] = cur;
    }
    for (Key probe = 0; probe <= cur + 2; ++probe) {
      int expected = static_cast<int>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ForEachPath([&](NodeSearchPath path) {
        ASSERT_EQ(DispatchedLowerBoundN(keys.data(), count, probe), expected)
            << "count=" << count << " probe=" << probe << " path="
            << NodeSearchPathName(path);
      });
    }
  }
}

// Whole-index differential: each spec on the menu, probed under every
// dispatch path, must return bit-identical batches. This is the
// end-to-end version of the kernel checks above — it walks the real
// group-probing descent (CSS directory, B+-tree stride-2 slots, hash
// chain scan) rather than a bare array.
TEST(NodeSearchDispatch, CrossPathBitIdenticalAcrossSpecMenu) {
  Pcg32 rng(0x51D51D);
  for (int trial = 0; trial < 6; ++trial) {
    size_t n = 1 + rng.Below(6000);
    std::vector<Key> keys =
        workload::KeysWithDuplicates(n, 1 + rng.Below(32), rng.Next());
    n = keys.size();

    std::vector<AnyIndex> indexes;
    for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 10)) {
      AnyIndex index = BuildIndex(spec, keys);
      if (index) indexes.push_back(std::move(index));
    }

    uint32_t ceiling = keys.empty() ? 100 : keys.back() + 3;
    std::vector<Key> probes(512);
    for (Key& k : probes) k = rng.Below(ceiling);
    probes[0] = 0xffffffffu;  // bias edge rides along in every trial

    std::vector<int64_t> find_scalar(probes.size()), find_path(probes.size());
    std::vector<size_t> lower_scalar(probes.size()), lower_path(probes.size());
    std::vector<PositionRange> range_scalar(probes.size()),
        range_path(probes.size());
    std::vector<size_t> count_scalar(probes.size()), count_path(probes.size());
    for (const AnyIndex& index : indexes) {
      SetNodeSearchPath(NodeSearchPath::kScalar);
      index.FindBatch(probes, find_scalar);
      index.EqualRangeBatch(probes, range_scalar);
      index.CountEqualBatch(probes, count_scalar);
      if (index.SupportsOrderedAccess()) {
        index.LowerBoundBatch(probes, lower_scalar);
      }
      ForEachPath([&](NodeSearchPath path) {
        if (path == NodeSearchPath::kScalar) return;
        index.FindBatch(probes, find_path);
        index.EqualRangeBatch(probes, range_path);
        index.CountEqualBatch(probes, count_path);
        ASSERT_EQ(find_path, find_scalar)
            << index.Name() << " trial=" << trial << " n=" << n << " path="
            << NodeSearchPathName(path);
        ASSERT_EQ(range_path, range_scalar)
            << index.Name() << " trial=" << trial << " path="
            << NodeSearchPathName(path);
        ASSERT_EQ(count_path, count_scalar)
            << index.Name() << " trial=" << trial << " path="
            << NodeSearchPathName(path);
        if (index.SupportsOrderedAccess()) {
          index.LowerBoundBatch(probes, lower_path);
          ASSERT_EQ(lower_path, lower_scalar)
              << index.Name() << " trial=" << trial << " path="
              << NodeSearchPathName(path);
        }
      });
    }
    SetNodeSearchPath(DetectedNodeSearchPath());
  }
}

}  // namespace
}  // namespace cssidx
