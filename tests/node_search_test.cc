// The unrolled intra-node search must agree with std::lower_bound for every
// node size used anywhere in the suite, both dense and strided layouts.

#include "core/node_search.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace cssidx {
namespace {

template <int Count>
void CheckDense() {
  Pcg32 rng(Count);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Key> keys(Count);
    uint32_t cur = rng.Below(10);
    for (int i = 0; i < Count; ++i) {
      cur += rng.Below(3);  // allows duplicates
      keys[i] = cur;
    }
    for (Key probe = 0; probe <= cur + 2; ++probe) {
      int expected = static_cast<int>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ASSERT_EQ((UnrolledLowerBound<Count, 1>(keys.data(), probe)), expected)
          << "Count=" << Count << " probe=" << probe;
      ASSERT_EQ(GenericLowerBound(keys.data(), Count, probe), expected);
    }
  }
}

TEST(NodeSearch, Dense1) { CheckDense<1>(); }
TEST(NodeSearch, Dense2) { CheckDense<2>(); }
TEST(NodeSearch, Dense3) { CheckDense<3>(); }
TEST(NodeSearch, Dense4) { CheckDense<4>(); }
TEST(NodeSearch, Dense5) { CheckDense<5>(); }
TEST(NodeSearch, Dense7) { CheckDense<7>(); }
TEST(NodeSearch, Dense8) { CheckDense<8>(); }
TEST(NodeSearch, Dense15) { CheckDense<15>(); }
TEST(NodeSearch, Dense16) { CheckDense<16>(); }
TEST(NodeSearch, Dense23) { CheckDense<23>(); }
TEST(NodeSearch, Dense24) { CheckDense<24>(); }
TEST(NodeSearch, Dense31) { CheckDense<31>(); }
TEST(NodeSearch, Dense32) { CheckDense<32>(); }
TEST(NodeSearch, Dense63) { CheckDense<63>(); }
TEST(NodeSearch, Dense64) { CheckDense<64>(); }
TEST(NodeSearch, Dense127) { CheckDense<127>(); }
TEST(NodeSearch, Dense128) { CheckDense<128>(); }

template <int Count>
void CheckStrided() {
  // B+-tree layout: keys at odd slots of a 2-strided array.
  Pcg32 rng(Count * 977);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Key> slots(2 * Count, 0xdeadbeef);
    std::vector<Key> keys(Count);
    uint32_t cur = rng.Below(5);
    for (int i = 0; i < Count; ++i) {
      cur += 1 + rng.Below(4);
      keys[i] = cur;
      slots[2 * i] = cur;  // stride-2 positions 0, 2, 4, ...
    }
    for (Key probe = 0; probe <= cur + 2; ++probe) {
      int expected = static_cast<int>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ASSERT_EQ((UnrolledLowerBound<Count, 2>(slots.data(), probe)), expected);
      ASSERT_EQ(GenericLowerBound(slots.data(), Count, probe, 2), expected);
    }
  }
}

TEST(NodeSearch, Strided3) { CheckStrided<3>(); }
TEST(NodeSearch, Strided7) { CheckStrided<7>(); }
TEST(NodeSearch, Strided11) { CheckStrided<11>(); }
TEST(NodeSearch, Strided15) { CheckStrided<15>(); }
TEST(NodeSearch, Strided63) { CheckStrided<63>(); }

TEST(NodeSearch, ZeroCount) {
  Key keys[1] = {5};
  EXPECT_EQ((UnrolledLowerBound<0, 1>(keys, Key{3})), 0);
  EXPECT_EQ(GenericLowerBound(keys, 0, Key{3}), 0);
}

TEST(NodeSearch, AllEqualReturnsZero) {
  std::vector<Key> keys(16, 7);
  EXPECT_EQ((UnrolledLowerBound<16, 1>(keys.data(), Key{7})), 0);
  EXPECT_EQ((UnrolledLowerBound<16, 1>(keys.data(), Key{8})), 16);
  EXPECT_EQ((UnrolledLowerBound<16, 1>(keys.data(), Key{6})), 0);
}

TEST(NodeSearch, MaxKeyProbe) {
  std::vector<Key> keys{1, 2, 0xffffffffu};
  EXPECT_EQ((UnrolledLowerBound<3, 1>(keys.data(), 0xffffffffu)), 2);
}

}  // namespace
}  // namespace cssidx
