// Live batch maintenance behind the facade: snapshot-versioned rebuilds
// for every spec on the menu, shard-incremental part:K refresh, and the
// single-writer/many-readers concurrency contract.
//
// The differential core: drive random UpdateBatch cycles through
// MaintainedIndex across the full spec menu and diff every op — scalar,
// batched, and thread-sharded — against the sorted-array oracle (an STL
// multiset flattened) after each cycle. The concurrency tests run under
// the TSan CI lane: readers snapshot while the writer merges, rebuilds,
// and publishes, and every probe batch must observe exactly one coherent
// version — no torn keys, no torn directory.

#include "core/maintained_index.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "core/partitioned_index.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

/// Diffs every op against the sorted model: Find/LowerBound/EqualRange/
/// CountEqual, scalar + batch + pool-sharded (threads=2 with a tiny
/// min_shard so even small probe sets actually dispatch).
void ExpectAllOpsMatchOracle(const MaintainedIndex& index,
                             const std::vector<Key>& model,
                             const std::vector<Key>& probes,
                             const std::string& ctx) {
  ASSERT_EQ(index.Snapshot()->keys(), model) << ctx;
  ASSERT_EQ(index.size(), model.size()) << ctx;

  const size_t m = probes.size();
  std::vector<int64_t> found(m), found_mt(m);
  std::vector<size_t> lower(m), lower_mt(m);
  std::vector<PositionRange> ranges(m), ranges_mt(m);
  std::vector<size_t> counts(m), counts_mt(m);
  index.FindBatch(probes, found);
  index.LowerBoundBatch(probes, lower);
  index.EqualRangeBatch(probes, ranges);
  index.CountEqualBatch(probes, counts);
  const ProbeOptions sharded{.threads = 2, .min_shard = 16};
  index.FindBatch(probes, found_mt, sharded);
  index.LowerBoundBatch(probes, lower_mt, sharded);
  index.EqualRangeBatch(probes, ranges_mt, sharded);
  index.CountEqualBatch(probes, counts_mt, sharded);

  for (size_t p = 0; p < m; ++p) {
    const Key k = probes[p];
    auto lo = std::lower_bound(model.begin(), model.end(), k);
    auto hi = std::upper_bound(model.begin(), model.end(), k);
    auto want_lower = static_cast<size_t>(lo - model.begin());
    auto want_count = static_cast<size_t>(hi - lo);
    int64_t want_find =
        want_count > 0 ? static_cast<int64_t>(want_lower) : kNotFound;
    size_t want_begin = index.SupportsOrderedAccess() || want_count > 0
                            ? want_lower
                            : model.size();
    PositionRange want_range{want_begin, want_begin + want_count};

    ASSERT_EQ(found[p], want_find) << ctx << " k=" << k;
    ASSERT_EQ(found_mt[p], want_find) << ctx << " k=" << k << " @t2";
    ASSERT_EQ(index.Find(k), want_find) << ctx << " k=" << k << " scalar";
    ASSERT_EQ(counts[p], want_count) << ctx << " k=" << k;
    ASSERT_EQ(counts_mt[p], want_count) << ctx << " k=" << k << " @t2";
    ASSERT_EQ(index.CountEqual(k), want_count) << ctx << " k=" << k
                                               << " scalar";
    ASSERT_EQ(ranges[p], want_range) << ctx << " k=" << k;
    ASSERT_EQ(ranges_mt[p], want_range) << ctx << " k=" << k << " @t2";
    ASSERT_EQ(index.EqualRange(k), want_range) << ctx << " k=" << k
                                               << " scalar";
    if (index.SupportsOrderedAccess()) {
      ASSERT_EQ(lower[p], want_lower) << ctx << " k=" << k;
      ASSERT_EQ(lower_mt[p], want_lower) << ctx << " k=" << k << " @t2";
      ASSERT_EQ(index.LowerBound(k), want_lower) << ctx << " k=" << k
                                                 << " scalar";
    }
  }
}

/// Probe set hugging everything interesting: model keys, their
/// neighbors, 0, and UINT32_MAX.
std::vector<Key> MakeProbes(Pcg32& rng, const std::vector<Key>& model,
                            size_t count) {
  std::vector<Key> probes{0, UINT32_MAX};
  uint32_t ceiling = model.empty() ? 100 : model.back() + 3;
  while (probes.size() < count) {
    if (!model.empty() && rng.Below(2) == 0) {
      Key k = model[rng.Below(static_cast<uint32_t>(model.size()))];
      probes.push_back(k);
      probes.push_back(k + 1);
    } else {
      probes.push_back(rng.Below(ceiling));
    }
  }
  return probes;
}

/// One batch per edge-case class, cycling: empty batch, delete
/// everything, insert-only growth, duplicate inserts (fresh and of an
/// existing key), UINT32_MAX lifecycle, and plain mixed churn.
workload::UpdateBatch EdgeCaseBatch(Pcg32& rng, const std::vector<Key>& model,
                                    int round) {
  workload::UpdateBatch batch;
  switch (round % 6) {
    case 0:  // empty batch
      break;
    case 1: {  // delete everything
      batch.deletes = model;
      break;
    }
    case 2: {  // insert-only growth (from empty after round 1)
      uint32_t ins = 20 + rng.Below(200);
      for (uint32_t i = 0; i < ins; ++i) {
        batch.inserts.push_back(rng.Below(1u << 14));
      }
      break;
    }
    case 3: {  // duplicate inserts: the same fresh key many times, plus
               // repeats of an existing key
      Key fresh = rng.Below(1u << 14);
      for (int i = 0; i < 5; ++i) batch.inserts.push_back(fresh);
      if (!model.empty()) {
        Key existing = model[rng.Below(static_cast<uint32_t>(model.size()))];
        for (int i = 0; i < 3; ++i) batch.inserts.push_back(existing);
      }
      break;
    }
    case 4: {  // UINT32_MAX lifecycle: insert it (twice), delete it next
               // time around via the mixed case's deletes-from-model
      batch.inserts.push_back(UINT32_MAX);
      batch.inserts.push_back(UINT32_MAX);
      batch.inserts.push_back(0);
      break;
    }
    default: {  // mixed churn
      uint32_t dels = rng.Below(30);
      for (uint32_t i = 0; i < dels && !model.empty(); ++i) {
        batch.deletes.push_back(
            model[rng.Below(static_cast<uint32_t>(model.size()))]);
      }
      uint32_t ins = rng.Below(30);
      for (uint32_t i = 0; i < ins; ++i) {
        batch.inserts.push_back(rng.Below(1u << 14));
      }
      break;
    }
  }
  return batch;
}

TEST(MaintainedIndex, UpdateCyclesMatchOracleAcrossSpecMenu) {
  Pcg32 rng(0x11aa22bb);
  for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 8)) {
    std::vector<Key> model =
        workload::KeysWithDuplicates(400 + rng.Below(1200),
                                     1 + rng.Below(200), rng.Next());
    MaintainedIndex index(spec, model);
    ASSERT_TRUE(index.ok()) << spec.ToString();
    for (int round = 0; round < 12; ++round) {
      workload::UpdateBatch batch = EdgeCaseBatch(rng, model, round);
      model = workload::ApplyBatch(model, batch);
      index.ApplyBatch(batch);
      ExpectAllOpsMatchOracle(
          index, model, MakeProbes(rng, model, 120),
          spec.ToString() + " round=" + std::to_string(round));
    }
  }
}

TEST(MaintainedIndex, InsertOnlyGrowthFromEmptyIndex) {
  Pcg32 rng(0x9e0);
  for (const char* spec_text :
       {"css:16", "part:16/css:16", "part:4/hash:8", "btree:16"}) {
    IndexSpec spec = *IndexSpec::Parse(spec_text);
    std::vector<Key> model;
    MaintainedIndex index(spec, {});
    ASSERT_TRUE(index.ok()) << spec_text;
    ASSERT_EQ(index.size(), 0u);
    ASSERT_EQ(index.Find(7), kNotFound) << spec_text;
    for (int round = 0; round < 8; ++round) {
      workload::UpdateBatch batch;
      uint32_t ins = 50 + rng.Below(300);
      for (uint32_t i = 0; i < ins; ++i) {
        batch.inserts.push_back(rng.Below(1u << 16));
      }
      model = workload::ApplyBatch(model, batch);
      index.ApplyBatch(batch);
      ExpectAllOpsMatchOracle(
          index, model, MakeProbes(rng, model, 80),
          std::string(spec_text) + " growth round=" + std::to_string(round));
    }
  }
}

TEST(MaintainedIndex, DeleteEverythingThenRegrow) {
  Pcg32 rng(0xde11);
  for (const char* spec_text : {"css:16", "part:8/css:16", "hash:8"}) {
    IndexSpec spec = *IndexSpec::Parse(spec_text);
    std::vector<Key> model = workload::DistinctSortedKeys(2'000, 5, 3);
    MaintainedIndex index(spec, model);
    workload::UpdateBatch wipe;
    wipe.deletes = model;
    model.clear();
    index.ApplyBatch(wipe);
    ExpectAllOpsMatchOracle(index, model, MakeProbes(rng, model, 40),
                            std::string(spec_text) + " wiped");
    // Regrow on the emptied structure (for part:K, through whatever
    // fences survived the wipe).
    workload::UpdateBatch regrow;
    for (int i = 0; i < 500; ++i) regrow.inserts.push_back(rng.Below(10'000));
    model = workload::ApplyBatch(model, regrow);
    index.ApplyBatch(regrow);
    ExpectAllOpsMatchOracle(index, model, MakeProbes(rng, model, 80),
                            std::string(spec_text) + " regrown");
  }
}

TEST(MaintainedIndex, EmptyBatchPublishesNothing) {
  MaintainedIndex index(*IndexSpec::Parse("part:4/css:16"),
                        workload::DistinctSortedKeys(1'000, 3, 4));
  auto before = index.Snapshot();
  index.ApplyBatch({});
  // Same version object: an empty batch must not pay a rebuild (or even
  // a copy) for a no-op.
  EXPECT_EQ(index.Snapshot().get(), before.get());
  EXPECT_EQ(index.stats().batches, 1u);
  EXPECT_EQ(index.stats().shards_rebuilt, 0u);
}

TEST(MaintainedIndex, SnapshotSurvivesWriterChurn) {
  auto keys = workload::DistinctSortedKeys(1'000, 3, 4);
  MaintainedIndex index(*IndexSpec::Parse("part:4/css:16"), keys);
  auto snapshot = index.Snapshot();
  Key original_first = keys[0];
  for (int round = 0; round < 5; ++round) {
    workload::UpdateBatch batch;
    batch.deletes = {original_first};
    batch.inserts = {keys.back() + 100 + static_cast<Key>(round)};
    index.ApplyBatch(batch);
  }
  // The old snapshot still sees the pre-update world; the live index
  // does not.
  EXPECT_EQ(snapshot->index().Find(original_first), 0);
  EXPECT_EQ(index.Find(original_first), kNotFound);
  EXPECT_EQ(snapshot->keys().size(), keys.size());
}

TEST(MaintainedIndex, RebuildReplacesDataset) {
  MaintainedIndex index(IndexSpec(), workload::DistinctSortedKeys(100, 1, 4));
  auto fresh = workload::DistinctSortedKeys(200, 2, 4);
  index.Rebuild(fresh);
  EXPECT_EQ(index.size(), 200u);
  EXPECT_EQ(index.Find(fresh[50]), 50);
}

// ---------------------------------------------------------------------
// Shard-reuse property: an incremental part:K refresh rebuilds only the
// shards whose fence range intersects the batch, and the published
// version is bit-identical — keys and every probe — to a from-scratch
// build over the same merged array.

TEST(MaintainedIndex, ShardIncrementalRefreshRebuildsOnlyTouchedShards) {
  Pcg32 rng(0x5a4d);
  auto keys = workload::DistinctSortedKeys(16'384, 7, 4);
  IndexSpec spec = *IndexSpec::Parse("part:16/css:16");
  MaintainedIndex index(spec, keys);
  auto before = index.Snapshot();
  const PartitionedIndex* old_part = before->partitioned();
  ASSERT_NE(old_part, nullptr);
  ASSERT_EQ(old_part->num_shards(), 16u);

  // Batch confined to the key range of shards 3 and 4.
  Key lo = keys[old_part->ShardBase(3)];
  Key hi = keys[old_part->ShardBase(5)];
  workload::UpdateBatch batch;
  for (int i = 0; i < 200; ++i) {
    batch.inserts.push_back(lo + rng.Below(hi - lo));
    batch.deletes.push_back(
        keys[old_part->ShardBase(3) +
             rng.Below(static_cast<uint32_t>(old_part->ShardBase(5) -
                                             old_part->ShardBase(3)))]);
  }
  std::set<size_t> touched;
  for (Key k : batch.inserts) touched.insert(old_part->ShardOf(k));
  for (Key k : batch.deletes) touched.insert(old_part->ShardOf(k));
  ASSERT_LE(touched.size(), 2u);

  index.ApplyBatch(batch);
  EXPECT_EQ(index.stats().incremental_refreshes, 1u);
  EXPECT_EQ(index.stats().full_rebuilds, 0u);
  EXPECT_EQ(index.stats().shards_rebuilt, touched.size());

  auto after = index.Snapshot();
  const PartitionedIndex* new_part = after->partitioned();
  ASSERT_NE(new_part, nullptr);
  for (size_t s = 0; s < 16; ++s) {
    if (touched.count(s) != 0) {
      EXPECT_NE(new_part->shard(s).impl(), old_part->shard(s).impl())
          << "shard " << s << " should have been rebuilt";
    } else {
      EXPECT_EQ(new_part->shard(s).impl(), old_part->shard(s).impl())
          << "shard " << s << " should have been reused";
    }
  }
  // Fences unchanged (no rebalance), so routing is stable across reuse.
  ASSERT_TRUE(std::equal(new_part->fences().begin(),
                         new_part->fences().end(),
                         old_part->fences().begin()));

  // Bit-identical to a from-scratch rebuild of the same merged array:
  // same keys, and the same answer for every op over a dense probe set.
  std::vector<Key> merged = workload::ApplyBatch(keys, batch);
  ASSERT_EQ(after->keys(), merged);
  ExpectAllOpsMatchOracle(index, merged, MakeProbes(rng, merged, 400),
                          "incremental vs from-scratch");
  AnyIndex fresh = BuildIndex(spec, merged);
  std::vector<Key> probes = MakeProbes(rng, merged, 400);
  std::vector<int64_t> got(probes.size()), want(probes.size());
  index.FindBatch(probes, got);
  fresh.FindBatch(probes, want);
  ASSERT_EQ(got, want);
  std::vector<PositionRange> got_r(probes.size()), want_r(probes.size());
  index.EqualRangeBatch(probes, got_r);
  fresh.EqualRangeBatch(probes, want_r);
  ASSERT_EQ(got_r, want_r);
}

TEST(MaintainedIndex, SkewTriggersRebalanceWithFreshFences) {
  auto keys = workload::DistinctSortedKeys(4'000, 11, 4);
  IndexSpec spec = *IndexSpec::Parse("part:8/css:16");
  MaintainedIndex index(spec, keys);
  auto before = index.Snapshot();
  Key first_fence_key = keys[before->partitioned()->ShardBase(1)];

  // Hammer 4000 inserts into shard 0's key range: its ~500 keys balloon
  // past kRebalanceSkew times the equi-depth target.
  Pcg32 rng(0xba1a);
  workload::UpdateBatch flood;
  for (int i = 0; i < 4'000; ++i) {
    flood.inserts.push_back(rng.Below(first_fence_key));
  }
  std::vector<Key> model = workload::ApplyBatch(keys, flood);
  index.ApplyBatch(flood);

  EXPECT_GE(index.stats().rebalances, 1u);
  EXPECT_GE(index.stats().full_rebuilds, 1u);
  auto after = index.Snapshot();
  const PartitionedIndex* part = after->partitioned();
  size_t max_len = 0;
  for (size_t s = 0; s < part->num_shards(); ++s) {
    max_len = std::max(max_len, part->ShardBase(s + 1) - part->ShardBase(s));
  }
  // Fresh equi-depth cuts: every shard near n / K again (distinct keys,
  // so run snapping cannot inflate a shard much).
  EXPECT_LE(max_len * part->num_shards(), 2 * model.size());
  ExpectAllOpsMatchOracle(index, model, MakeProbes(rng, model, 200),
                          "post-rebalance");
}

// ---------------------------------------------------------------------
// Readers during rebuild (the TSan lane's target): N reader threads probe
// snapshots while the single writer applies batches and publishes. The
// writer alternates two marker sets so that every published version
// contains exactly one complete set — a reader's probe batch against one
// snapshot must see all of one set and none of the other. A torn (keys,
// directory) pair or a half-applied batch shows up as a mixed answer.

TEST(MaintainedIndexConcurrency, ReadersSeeOneCoherentVersionPerProbeBatch) {
  for (const char* spec_text : {"css:16", "part:8/css:16"}) {
    IndexSpec spec = *IndexSpec::Parse(spec_text);
    constexpr size_t kBase = 20'000;
    constexpr uint32_t kMarkers = 16;
    // Base keys are multiples of 8; markers are odd, spread across the
    // whole key space so part:K batches straddle many shards (reused and
    // rebuilt shards coexist in every published version).
    std::vector<Key> initial(kBase);
    for (size_t i = 0; i < kBase; ++i) initial[i] = static_cast<Key>(8 * i);
    auto marker = [&](int parity, uint32_t j) {
      return static_cast<Key>(8 * (j * (kBase / kMarkers)) + 1 +
                              2 * static_cast<uint32_t>(parity));
    };
    std::vector<Key> probes;  // set 0 then set 1
    for (int parity = 0; parity < 2; ++parity) {
      for (uint32_t j = 0; j < kMarkers; ++j) {
        probes.push_back(marker(parity, j));
      }
    }
    std::vector<Key> sorted = initial;
    for (uint32_t j = 0; j < kMarkers; ++j) sorted.push_back(marker(0, j));
    std::sort(sorted.begin(), sorted.end());
    MaintainedIndex index(spec, std::move(sorted));

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> incoherent{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&, t] {
        Pcg32 rng(0xace0 + static_cast<uint64_t>(t));
        std::vector<int64_t> found(probes.size());
        while (!stop.load(std::memory_order_relaxed)) {
          auto snap = index.Snapshot();
          if (rng.Below(16) == 0) {
            // Occasionally shard the probe batch across the pool, so the
            // dispatch path also runs against a version mid-publish.
            snap->index().FindBatch(probes, found,
                                    ProbeOptions{.threads = 2,
                                                 .min_shard = 8});
          } else {
            snap->index().FindBatch(probes, found);
          }
          uint32_t seen0 = 0, seen1 = 0;
          for (uint32_t j = 0; j < kMarkers; ++j) {
            if (found[j] != kNotFound) ++seen0;
            if (found[kMarkers + j] != kNotFound) ++seen1;
          }
          bool coherent = (seen0 == kMarkers && seen1 == 0) ||
                          (seen1 == kMarkers && seen0 == 0);
          if (!coherent || snap->keys().size() != kBase + kMarkers) {
            incoherent.fetch_add(1);
          }
          // A stable base key must exist in every version.
          Key base_probe = static_cast<Key>(
              8 * rng.Below(static_cast<uint32_t>(kBase)));
          if (snap->index().Find(base_probe) == kNotFound) {
            incoherent.fetch_add(1);
          }
        }
      });
    }

    // Writer: swap the live marker set back and forth. Each ApplyBatch
    // deletes the old set and inserts the new one; a version with a
    // partial set can only exist if publication is torn.
    const int rounds = 120;
    for (int r = 1; r <= rounds; ++r) {
      workload::UpdateBatch batch;
      for (uint32_t j = 0; j < kMarkers; ++j) {
        batch.inserts.push_back(marker(r % 2, j));
        batch.deletes.push_back(marker((r - 1) % 2, j));
      }
      index.ApplyBatch(batch);
    }
    stop.store(true);
    for (auto& t : readers) t.join();
    EXPECT_EQ(incoherent.load(), 0u) << spec_text;
    EXPECT_EQ(index.stats().batches, static_cast<size_t>(rounds))
        << spec_text;
  }
}

}  // namespace
}  // namespace cssidx
