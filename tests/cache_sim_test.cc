// The cache simulator is the substrate standing in for the paper's two
// machines, so its replacement behaviour is verified against hand-computed
// traces before any miss numbers are trusted.

#include "cachesim/cache_sim.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/aligned_buffer.h"

namespace cssidx::cachesim {
namespace {

// A tiny direct-mapped cache: 4 lines of 64 bytes.
CacheConfig Tiny() { return {"tiny", 256, 64, 1}; }
// 2-way version: 2 sets of 2 ways.
CacheConfig Tiny2Way() { return {"tiny2", 256, 64, 2}; }

const void* Addr(uint64_t a) { return reinterpret_cast<const void*>(a); }

TEST(CacheSim, ColdMissThenHit) {
  CacheSim sim(Tiny());
  EXPECT_EQ(sim.Access(Addr(0), 4), 1u);  // cold miss
  EXPECT_EQ(sim.Access(Addr(0), 4), 0u);  // hit
  EXPECT_EQ(sim.Access(Addr(60), 4), 0u);  // same line (0..63), mostly
  EXPECT_EQ(sim.misses(), 1u);
}

TEST(CacheSim, SpanningAccessTouchesTwoLines) {
  CacheSim sim(Tiny());
  // Bytes 60..67 span lines 0 and 1.
  EXPECT_EQ(sim.Access(Addr(60), 8), 2u);
  EXPECT_EQ(sim.accesses(), 2u);
  EXPECT_EQ(sim.Access(Addr(64), 4), 0u);  // line 1 now resident
}

TEST(CacheSim, DirectMappedConflict) {
  CacheSim sim(Tiny());
  // Lines 0 and 4 map to the same set in a 4-set direct-mapped cache.
  sim.Access(Addr(0), 1);
  sim.Access(Addr(4 * 64), 1);   // evicts line 0
  EXPECT_EQ(sim.Access(Addr(0), 1), 1u);  // miss again
  EXPECT_EQ(sim.misses(), 3u);
}

TEST(CacheSim, TwoWayToleratesOneConflict) {
  CacheSim sim(Tiny2Way());
  // Lines 0 and 2 map to set 0 (2 sets); both fit in the 2 ways.
  sim.Access(Addr(0), 1);
  sim.Access(Addr(2 * 64), 1);
  EXPECT_EQ(sim.Access(Addr(0), 1), 0u);
  EXPECT_EQ(sim.Access(Addr(2 * 64), 1), 0u);
  EXPECT_EQ(sim.misses(), 2u);  // only the two cold misses
}

TEST(CacheSim, LruEvictsLeastRecentlyUsed) {
  CacheSim sim(Tiny2Way());
  sim.Access(Addr(0), 1);        // set 0, way A
  sim.Access(Addr(2 * 64), 1);   // set 0, way B
  sim.Access(Addr(0), 1);        // touch A: B is now LRU
  sim.Access(Addr(4 * 64), 1);   // set 0: evicts B (line 2*64)
  EXPECT_EQ(sim.Access(Addr(0), 1), 0u);        // A still resident
  EXPECT_EQ(sim.Access(Addr(2 * 64), 1), 1u);   // B was evicted
}

TEST(CacheSim, FlushDropsContentsKeepsCounters) {
  CacheSim sim(Tiny());
  sim.Access(Addr(0), 1);
  sim.FlushContents();
  EXPECT_EQ(sim.Access(Addr(0), 1), 1u);  // miss again after flush
  EXPECT_EQ(sim.accesses(), 2u);
  EXPECT_EQ(sim.misses(), 2u);
}

TEST(CacheSim, ResetCountersKeepsContents) {
  CacheSim sim(Tiny());
  sim.Access(Addr(0), 1);
  sim.ResetCounters();
  EXPECT_EQ(sim.accesses(), 0u);
  EXPECT_EQ(sim.Access(Addr(0), 1), 0u);  // still resident
}

TEST(CacheSim, FullyAssociativeHoldsCapacityLines) {
  CacheConfig fa{"fa", 256, 64, 0};  // 4 lines, fully associative
  CacheSim sim(fa);
  for (uint64_t i = 0; i < 4; ++i) sim.Access(Addr(i * 64), 1);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sim.Access(Addr(i * 64), 1), 0u) << i;
  }
  sim.Access(Addr(4 * 64), 1);              // evicts LRU = line 0
  EXPECT_EQ(sim.Access(Addr(0), 1), 1u);
}

TEST(CacheHierarchy, L2CatchesL1Misses) {
  // L1: 2 lines direct-mapped; L2: 8 lines direct-mapped, same line size.
  CacheHierarchy h({{"l1", 128, 64, 1}, {"l2", 512, 64, 1}});
  h.Access(Addr(0), 1);            // miss both levels
  h.Access(Addr(2 * 64), 1);       // conflicts with line 0 in L1, not L2
  h.Access(Addr(0), 1);            // L1 miss, L2 hit
  EXPECT_EQ(h.Level(0).misses(), 3u);
  EXPECT_EQ(h.Level(1).misses(), 2u);
  EXPECT_EQ(h.MemoryFetches(), 2u);
}

TEST(CacheHierarchy, HitInL1NeverReachesL2) {
  CacheHierarchy h({{"l1", 128, 64, 1}, {"l2", 512, 64, 1}});
  h.Access(Addr(0), 1);
  h.Access(Addr(0), 1);
  h.Access(Addr(0), 1);
  EXPECT_EQ(h.Level(0).accesses(), 3u);
  EXPECT_EQ(h.Level(1).accesses(), 1u);  // only the initial miss
}

TEST(CacheHierarchy, MixedLineSizes) {
  // The Ultra Sparc II has 32B L1 lines and 64B L2 lines: two adjacent L1
  // lines share one L2 line, so the second L1 miss within a 64B block must
  // hit in L2.
  CacheHierarchy h({{"l1", 16 * 1024, 32, 1}, {"l2", 1024 * 1024, 64, 1}});
  h.Access(Addr(0), 1);    // L1 miss, L2 miss
  h.Access(Addr(32), 1);   // different L1 line, same L2 line: L2 hit
  EXPECT_EQ(h.Level(0).misses(), 2u);
  EXPECT_EQ(h.Level(1).misses(), 1u);
  EXPECT_EQ(h.Level(1).accesses(), 2u);
  // A 40-byte object at offset 28 (bytes 28..67) spans three 32B L1 lines
  // (0, 1, 2) but only two 64B L2 lines (0 and 1).
  h.FlushContents();
  h.ResetCounters();
  h.Access(Addr(28), 40);
  EXPECT_EQ(h.Level(0).misses(), 3u);
  EXPECT_EQ(h.Level(1).accesses(), 3u);
  EXPECT_EQ(h.Level(1).misses(), 2u);
}

TEST(CacheSim, PaperGeometriesConstruct) {
  for (const auto& cfg : {UltraSparcL1(), UltraSparcL2(), PentiumIIL1(),
                          PentiumIIL2(), ModernL1(), ModernL2()}) {
    CacheSim sim(cfg);
    EXPECT_EQ(sim.misses(), 0u) << cfg.name;
    EXPECT_GT(cfg.NumSets(), 0u) << cfg.name;
  }
}

TEST(CacheSim, SequentialScanMissesOncePerLine) {
  // Spatial locality: scanning 64 ints (256B) with a 64B line = 4 misses.
  // The buffer must be line-aligned or the scan straddles an extra line —
  // a plain std::vector's start address made this heap-layout-dependent.
  CacheSim sim({"scan", 16 * 1024, 64, 4});
  AlignedBuffer buf(64 * sizeof(uint32_t), 64);
  const uint32_t* data = buf.as<uint32_t>();
  uint64_t misses = 0;
  for (size_t i = 0; i < 64; ++i) misses += sim.Access(&data[i], 4);
  EXPECT_EQ(misses, (64 * sizeof(uint32_t)) / 64);
}

}  // namespace
}  // namespace cssidx::cachesim
