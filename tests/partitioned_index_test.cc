// Partition-boundary differential suite: every "part:K/<inner>" spec must
// be result-identical to the bare inner spec across the full batch-op
// surface — FindBatch / LowerBoundBatch / EqualRangeBatch /
// CountEqualBatch — whatever the fence table, probe bucketing, and
// shard-local kernels do underneath. The inputs are chosen to be
// adversarial for a range-partitioned composite specifically: probes
// exactly on fence boundaries, every probe landing in one shard, K larger
// than the number of distinct keys (empty shards), heavy duplicates whose
// runs must never straddle a fence, UINT32_MAX (whose fence comparison
// would wrap a 32-bit sentinel), empty batches, and thread counts
// straddling the shard-dispatch threshold.

#include <algorithm>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/partitioned_index.h"
#include "core/range.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx {
namespace {

/// Asserts that `part` answers exactly like `bare` on every batch op.
/// `opts` applies to the partitioned side only — the bare side always
/// probes inline, so any thread count must reproduce the inline answers.
void ExpectSameAnswers(const AnyIndex& part, const AnyIndex& bare,
                       const std::vector<Key>& probes,
                       const ProbeOptions& opts = ProbeOptions{},
                       const std::string& label = "") {
  const size_t n = probes.size();
  std::vector<int64_t> part_find(n, -2), bare_find(n, -3);
  std::vector<size_t> part_lower(n, ~size_t{0}), bare_lower(n, ~size_t{1});
  std::vector<PositionRange> part_range(n, PositionRange{~size_t{0}, 0});
  std::vector<PositionRange> bare_range(n);
  std::vector<size_t> part_count(n, ~size_t{0}), bare_count(n);
  part.FindBatch(probes, part_find, opts);
  part.LowerBoundBatch(probes, part_lower, opts);
  part.EqualRangeBatch(probes, part_range, opts);
  part.CountEqualBatch(probes, part_count, opts);
  bare.FindBatch(probes, bare_find);
  bare.LowerBoundBatch(probes, bare_lower);
  bare.EqualRangeBatch(probes, bare_range);
  bare.CountEqualBatch(probes, bare_count);
  ASSERT_EQ(part_find, bare_find) << part.Name() << " " << label;
  ASSERT_EQ(part_lower, bare_lower) << part.Name() << " " << label;
  ASSERT_EQ(part_range, bare_range) << part.Name() << " " << label;
  ASSERT_EQ(part_count, bare_count) << part.Name() << " " << label;
}

/// Probes that hug every equi-depth fence of a K-way split: the key at
/// each tentative cut position plus its value-neighbors (one of which is
/// usually absent, exercising insertion-point anchoring at the boundary).
std::vector<Key> FenceBoundaryProbes(const std::vector<Key>& keys, int k) {
  std::vector<Key> probes;
  for (int s = 1; s < k; ++s) {
    size_t cut = keys.size() * static_cast<size_t>(s) /
                 static_cast<size_t>(k);
    if (cut >= keys.size()) continue;
    Key at = keys[cut];
    probes.push_back(at);
    if (at > 0) probes.push_back(at - 1);
    if (at < 0xffffffffu) probes.push_back(at + 1);
    if (cut > 0) probes.push_back(keys[cut - 1]);
  }
  return probes;
}

/// Every partitioned spec in the shared menu, paired with its inner.
struct SpecPair {
  IndexSpec part;
  IndexSpec inner;
};

std::vector<SpecPair> PartitionedMenu(int node_entries, int hash_dir_bits) {
  std::vector<SpecPair> pairs;
  for (const IndexSpec& spec :
       test_menu::DefaultSpecs(node_entries, hash_dir_bits)) {
    if (!spec.partitioned()) continue;
    pairs.push_back({spec, spec.Inner()});
  }
  // Shard counts beyond the shared menu's {1, 4, 16}: odd, and the menu
  // ceiling.
  pairs.push_back({*IndexSpec::Parse("part:7/css:16"),
                   *IndexSpec::Parse("css:16")});
  pairs.push_back({*IndexSpec::Parse("part:256/btree:32"),
                   *IndexSpec::Parse("btree:32")});
  return pairs;
}

TEST(PartitionedIndex, MatchesBareInnerAcrossTheFullOpSurface) {
  // Heavy duplicates: fences must snap to run starts, so most cuts move.
  auto keys = workload::KeysWithDuplicates(6000, 40, /*seed=*/3);
  auto probes = workload::MatchingLookups(keys, 400, /*seed=*/5);
  auto missing = workload::MissingLookups(keys, 150, /*seed=*/7);
  probes.insert(probes.end(), missing.begin(), missing.end());
  probes.push_back(0);
  probes.push_back(0xffffffffu);
  for (const SpecPair& p : PartitionedMenu(16, 8)) {
    AnyIndex part = BuildIndex(p.part, keys);
    AnyIndex bare = BuildIndex(p.inner, keys);
    ASSERT_TRUE(part) << p.part.ToString();
    ASSERT_TRUE(bare) << p.inner.ToString();
    EXPECT_EQ(part.size(), bare.size());
    EXPECT_EQ(part.SupportsOrderedAccess(), bare.SupportsOrderedAccess());
    auto with_fences = probes;
    auto boundary = FenceBoundaryProbes(keys, p.part.partitions());
    with_fences.insert(with_fences.end(), boundary.begin(), boundary.end());
    ExpectSameAnswers(part, bare, with_fences, ProbeOptions{}, "heavy-dup");
  }
}

TEST(PartitionedIndex, KeysExactlyOnFenceBoundaries) {
  // Distinct keys, so every equi-depth cut IS a fence key: the first key
  // of shard s+1. Probing it, its absent predecessor, and its absent
  // successor hits the routing comparison on all three sides of every
  // fence.
  auto keys = workload::DistinctSortedKeys(5000, /*seed=*/11, /*mean_gap=*/16);
  for (int k : {2, 3, 8, 16, 64}) {
    IndexSpec part_spec = IndexSpec().WithPartitions(k);  // part:K/css:16
    AnyIndex part = BuildIndex(part_spec, keys);
    AnyIndex bare = BuildIndex(part_spec.Inner(), keys);
    ASSERT_TRUE(part) << part_spec.ToString();
    auto probes = FenceBoundaryProbes(keys, k);
    ASSERT_FALSE(probes.empty());
    ExpectSameAnswers(part, bare, probes, ProbeOptions{},
                      "fences k=" + std::to_string(k));
  }
}

TEST(PartitionedIndex, AllProbesLandInOneShard) {
  // The bucketing degenerates: one shard gets the whole batch, every
  // other shard gets zero probes — both extreme ends of the array.
  auto keys = workload::KeysWithDuplicates(8000, 200, /*seed=*/13);
  AnyIndex part = BuildIndex(*IndexSpec::Parse("part:8/css:16"), keys);
  AnyIndex bare = BuildIndex(*IndexSpec::Parse("css:16"), keys);
  ASSERT_TRUE(part);
  for (Key target : {keys.front(), keys.back()}) {
    std::vector<Key> probes(3000, target);
    ExpectSameAnswers(part, bare, probes, ProbeOptions{}, "one-shard");
  }
}

TEST(PartitionedIndex, MoreShardsThanDistinctKeys) {
  // Three distinct values across 16 requested shards: run-start snapping
  // collapses most cuts, leaving empty shards whose fences coincide.
  std::vector<Key> keys;
  for (Key v : {Key{10}, Key{20}, Key{30}}) {
    keys.insert(keys.end(), 100, v);
  }
  std::vector<Key> probes{0, 9, 10, 11, 19, 20, 21, 29, 30, 31, 1000,
                          0xffffffffu};
  for (const SpecPair& p : PartitionedMenu(8, 4)) {
    AnyIndex part = BuildIndex(p.part, keys);
    AnyIndex bare = BuildIndex(p.inner, keys);
    ASSERT_TRUE(part) << p.part.ToString();
    ExpectSameAnswers(part, bare, probes, ProbeOptions{}, "few-distinct");
  }
  // The degenerate limit: every key equal, K = 16 — one live shard.
  std::vector<Key> all_equal(500, 42);
  AnyIndex part = BuildIndex(*IndexSpec::Parse("part:16/btree:32"), all_equal);
  AnyIndex bare = BuildIndex(*IndexSpec::Parse("btree:32"), all_equal);
  ASSERT_TRUE(part);
  ExpectSameAnswers(part, bare, {41, 42, 43, 0, 0xffffffffu}, ProbeOptions{},
                    "all-equal");
}

TEST(PartitionedIndex, ExtremeKeysIncludingMax) {
  // UINT32_MAX keys: the fence table is uint64 precisely so a probe of
  // MAX still routes to the shard holding its run instead of falling off
  // the end (a 32-bit "no fence" sentinel could not sit above MAX).
  std::vector<Key> keys{0,          0,          1,          5,
                        0x7fffffffu, 0x80000000u, 0xfffffffeu,
                        0xffffffffu, 0xffffffffu, 0xffffffffu};
  std::vector<Key> probes{0, 1, 2, 5, 0x7fffffffu, 0x80000000u,
                          0xfffffffeu, 0xffffffffu};
  for (const SpecPair& p : PartitionedMenu(4, 3)) {
    AnyIndex part = BuildIndex(p.part, keys);
    AnyIndex bare = BuildIndex(p.inner, keys);
    ASSERT_TRUE(part) << p.part.ToString();
    ExpectSameAnswers(part, bare, probes, ProbeOptions{}, "extreme");
  }
}

TEST(PartitionedIndex, EmptyBatchAndEmptyIndex) {
  auto keys = workload::KeysWithDuplicates(300, 30, /*seed=*/17);
  std::vector<Key> none;
  std::vector<int64_t> no_find;
  std::vector<size_t> no_sizes;
  std::vector<PositionRange> no_ranges;
  for (const SpecPair& p : PartitionedMenu(8, 4)) {
    AnyIndex part = BuildIndex(p.part, keys);
    ASSERT_TRUE(part) << p.part.ToString();
    // Empty batch: a no-op, not a crash (the router must not touch the
    // fence table).
    part.FindBatch(none, no_find);
    part.LowerBoundBatch(none, no_sizes);
    part.EqualRangeBatch(none, no_ranges);
    part.CountEqualBatch(none, no_sizes);

    // Empty index: K shards over zero keys; all answers match the bare
    // inner over zero keys.
    AnyIndex empty_part = BuildIndex(p.part, std::vector<Key>{});
    AnyIndex empty_bare = BuildIndex(p.inner, std::vector<Key>{});
    ASSERT_TRUE(empty_part) << p.part.ToString();
    ExpectSameAnswers(empty_part, empty_bare, {0, 7, 0xffffffffu},
                      ProbeOptions{}, "empty-index");
  }
}

TEST(PartitionedIndex, ThreadCountsStraddleTheShardDispatchThreshold) {
  // Below min_shard the router runs shards inline; above it, whole shards
  // dispatch to the pool. Both sides of the threshold, at thread counts
  // {0, 1, 2, 8}, must reproduce the bare inner's answers bit-for-bit.
  ThreadPool pool(3);  // real workers even on a 1-core CI machine
  auto keys = workload::KeysWithDuplicates(30000, 500, /*seed=*/19);
  const std::vector<size_t> probe_counts{
      100, kParallelProbeMinShard - 1, kParallelProbeMinShard,
      kParallelProbeMinShard + 1, 3 * kParallelProbeMinShard};
  for (const char* text : {"part:4/css:16", "part:16/ttree:16",
                           "part:3/hash:10", "part:8/bin"}) {
    IndexSpec spec = *IndexSpec::Parse(text);
    AnyIndex part = BuildIndex(spec, keys);
    AnyIndex bare = BuildIndex(spec.Inner(), keys);
    ASSERT_TRUE(part) << text;
    for (size_t count : probe_counts) {
      auto probes = workload::MatchingLookups(keys, count, /*seed=*/count);
      auto missing = workload::MissingLookups(keys, count / 4,
                                              /*seed=*/count + 1);
      probes.insert(probes.end(), missing.begin(), missing.end());
      for (int threads : {0, 1, 2, 8}) {
        ProbeOptions opts{.threads = threads, .pool = &pool};
        ExpectSameAnswers(part, bare, probes, opts,
                          "probes=" + std::to_string(count) +
                              " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(PartitionedIndex, SpecSuffixDrivesShardDispatchThroughTheFacade) {
  // "@tN" on a partitioned spec parallelizes the two-argument facade
  // calls with no caller changes — and changes nothing about the answers.
  auto keys = workload::KeysWithDuplicates(20000, 300, /*seed=*/23);
  auto probes = workload::MatchingLookups(keys, 10000, /*seed=*/29);
  AnyIndex parallel_part =
      BuildIndex(*IndexSpec::Parse("part:8/css:16@t3"), keys);
  AnyIndex bare = BuildIndex(*IndexSpec::Parse("css:16"), keys);
  ASSERT_TRUE(parallel_part);
  EXPECT_EQ(parallel_part.spec().probe_threads(), 3);
  EXPECT_EQ(parallel_part.spec().partitions(), 8);
  std::vector<int64_t> got(probes.size()), want(probes.size());
  parallel_part.FindBatch(probes, got);  // spec-driven shard dispatch
  bare.FindBatch(probes, want);
  EXPECT_EQ(got, want);
}

TEST(PartitionedIndex, RepeatedParallelRunsAreDeterministic) {
  // The TSan lane leans on this: repeated identical shard dispatches give
  // any racy scatter a window to corrupt a neighboring probe's slot.
  ThreadPool pool(3);
  auto keys = workload::KeysWithDuplicates(40000, 800, /*seed=*/31);
  AnyIndex part = BuildIndex(*IndexSpec::Parse("part:8/css:16"), keys);
  ASSERT_TRUE(part);
  auto probes = workload::MatchingLookups(keys, 30000, /*seed=*/37);
  ProbeOptions opts{.threads = 4, .min_shard = 1024, .pool = &pool};
  std::vector<PositionRange> first(probes.size());
  part.EqualRangeBatch(probes, first, opts);
  for (int run = 0; run < 10; ++run) {
    std::vector<PositionRange> again(probes.size());
    part.EqualRangeBatch(probes, again, opts);
    ASSERT_EQ(again, first) << "run " << run;
  }
}

TEST(PartitionedIndex, StructuralInvariants) {
  auto keys = workload::KeysWithDuplicates(10000, 100, /*seed=*/41);
  IndexSpec spec = *IndexSpec::Parse("part:8/css:16");
  PartitionedIndex part(spec, keys.data(), keys.size());
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part.num_shards(), 8u);
  EXPECT_EQ(part.size(), keys.size());
  EXPECT_TRUE(part.SupportsOrderedAccess());
  EXPECT_GT(part.SpaceBytes(), 0u);
  // Shard bases are monotone, cover [0, n), and sit on duplicate-run
  // starts: the key before a base differs from the key at it.
  EXPECT_EQ(part.ShardBase(0), 0u);
  EXPECT_EQ(part.ShardBase(part.num_shards()), keys.size());
  for (size_t s = 1; s <= part.num_shards(); ++s) {
    ASSERT_GE(part.ShardBase(s), part.ShardBase(s - 1));
    size_t base = part.ShardBase(s);
    if (base > 0 && base < keys.size()) {
      ASSERT_NE(keys[base - 1], keys[base]) << "run straddles fence at " << s;
    }
  }
  // Routing sends each shard's first key to that shard (skipping empties,
  // which receive no keys by construction).
  for (size_t s = 0; s < part.num_shards(); ++s) {
    if (part.ShardBase(s) == part.ShardBase(s + 1)) continue;
    EXPECT_EQ(part.ShardOf(keys[part.ShardBase(s)]), s) << "shard " << s;
  }
}

TEST(PartitionedIndex, BuilderRejectsOffMenuPartitionedSpecs) {
  auto keys = workload::DistinctSortedKeys(100, /*seed=*/43, /*mean_gap=*/4);
  // Shard counts off the menu.
  EXPECT_FALSE(BuildIndex(IndexSpec().WithPartitions(257), keys));
  EXPECT_FALSE(BuildIndex(IndexSpec().WithPartitions(-1), keys));
  // Off-menu inner under a valid shard count.
  EXPECT_FALSE(
      BuildIndex(IndexSpec().WithNodeEntries(12).WithPartitions(4), keys));
  // A valid partitioned spec still builds.
  EXPECT_TRUE(BuildIndex(IndexSpec().WithPartitions(4), keys));
}

}  // namespace
}  // namespace cssidx
