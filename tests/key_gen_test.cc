#include "workload/key_gen.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace cssidx::workload {
namespace {

TEST(KeyGen, DistinctSortedKeysAreDistinctAndSorted) {
  auto keys = DistinctSortedKeys(10000, 1, 4);
  ASSERT_EQ(keys.size(), 10000u);
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]) << i;
  }
}

TEST(KeyGen, Deterministic) {
  EXPECT_EQ(DistinctSortedKeys(1000, 5, 4), DistinctSortedKeys(1000, 5, 4));
  EXPECT_NE(DistinctSortedKeys(1000, 5, 4), DistinctSortedKeys(1000, 6, 4));
}

TEST(KeyGen, MeanGapOneIsDense) {
  auto keys = DistinctSortedKeys(100, 3, 1);
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], keys[i - 1] + 1);
  }
}

TEST(KeyGen, GapsRoughlyMatchMean) {
  auto keys = DistinctSortedKeys(100000, 9, 8);
  double avg_gap =
      static_cast<double>(keys.back() - keys.front()) / (keys.size() - 1);
  EXPECT_NEAR(avg_gap, 8.0, 0.5);
}

TEST(KeyGen, EmptyAndSingle) {
  EXPECT_TRUE(DistinctSortedKeys(0, 1).empty());
  EXPECT_EQ(DistinctSortedKeys(1, 1).size(), 1u);
}

TEST(KeyGen, LinearKeysAreExactlyLinear) {
  auto keys = LinearKeys(1000, 7, 3);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(keys[i], 7u + 3u * i);
  }
}

TEST(KeyGen, SkewedKeysSortedDistinctAndNonLinear) {
  auto keys = SkewedKeys(10000, 3);
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]);
  }
  // Quadratic stretch: the top decile must span far more key space than
  // the bottom decile — that is what breaks interpolation search.
  uint64_t low_span = keys[1000] - keys[0];
  uint64_t high_span = keys[9999] - keys[8999];
  EXPECT_GT(high_span, 5 * low_span);
}

TEST(KeyGen, DuplicatesSortedWithRequestedCardinality) {
  auto keys = KeysWithDuplicates(5000, 100, 17);
  ASSERT_EQ(keys.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  size_t distinct = 1;
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] != keys[i - 1]) ++distinct;
  }
  EXPECT_LE(distinct, 100u);
  EXPECT_GT(distinct, 10u);  // the generator must actually spread values
}

TEST(KeyGen, ClusteredKeysSortedDistinct) {
  auto keys = ClusteredKeys(10000, 8, 21);
  ASSERT_EQ(keys.size(), 10000u);
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]);
  }
  // There must be at least `clusters - 1` wide voids.
  int voids = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] - keys[i - 1] > (1u << 20)) ++voids;
  }
  EXPECT_EQ(voids, 7);
}

}  // namespace
}  // namespace cssidx::workload
