#include "baselines/binary_tree.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

void OracleCheck(const std::vector<Key>& keys) {
  BinaryTreeIndex index(keys);
  std::vector<Key> probes;
  for (Key k : keys) {
    probes.push_back(k);
    if (k > 0) probes.push_back(k - 1);
    probes.push_back(k + 1);
  }
  probes.push_back(0);
  if (!keys.empty()) probes.push_back(keys.back() + 5);
  for (Key k : probes) {
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
    ASSERT_EQ(index.LowerBound(k), expected) << "k=" << k;
  }
}

TEST(BinaryTree, OracleSweepSmall) {
  for (size_t n = 0; n <= 300; ++n) {
    OracleCheck(workload::DistinctSortedKeys(n, 55 + n, 3));
  }
}

TEST(BinaryTree, OracleMedium) {
  OracleCheck(workload::DistinctSortedKeys(50'000, 5, 4));
}

TEST(BinaryTree, DuplicatesLeftmost) {
  auto keys = workload::KeysWithDuplicates(1500, 40, 13);
  BinaryTreeIndex index(keys);
  for (Key k : keys) {
    auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
    EXPECT_EQ(index.Find(k), lo - keys.begin());
    EXPECT_EQ(index.CountEqual(k), static_cast<size_t>(hi - lo));
  }
}

TEST(BinaryTree, SpaceIsOneNodePerElement) {
  auto keys = workload::DistinctSortedKeys(1000, 1, 4);
  BinaryTreeIndex index(keys);
  // key + rid + 2 child refs per element.
  EXPECT_GE(index.SpaceBytes(), 1000 * sizeof(BinaryTreeIndex::Node));
}

TEST(BinaryTree, BalancedDepth) {
  // A 2^k - 1 element tree must have every probe terminate within k hops:
  // indirectly verified by building a large tree and checking lookups work
  // (an unbalanced recursion would blow the stack during Build).
  auto keys = workload::DistinctSortedKeys((1u << 17) - 1, 2, 3);
  BinaryTreeIndex index(keys);
  EXPECT_EQ(index.Find(keys[0]), 0);
  EXPECT_EQ(index.Find(keys.back()),
            static_cast<int64_t>(keys.size()) - 1);
}

TEST(BinaryTree, EmptyArray) {
  std::vector<Key> empty;
  BinaryTreeIndex index(empty);
  EXPECT_EQ(index.LowerBound(1), 0u);
  EXPECT_EQ(index.Find(1), kNotFound);
}

}  // namespace
}  // namespace cssidx
