#include "util/bits.h"

#include <cstdint>

#include "gtest/gtest.h"

namespace cssidx {
namespace {

TEST(Bits, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(4));
  EXPECT_FALSE(IsPowerOfTwo(6));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 40));
  EXPECT_FALSE(IsPowerOfTwo((1ull << 40) + 1));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(1ull << 62), 62);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
  EXPECT_EQ(CeilDiv(100, 3), 34u);
}

TEST(Bits, IntPow) {
  EXPECT_EQ(IntPow(2, 0), 1u);
  EXPECT_EQ(IntPow(2, 10), 1024u);
  EXPECT_EQ(IntPow(5, 3), 125u);
  EXPECT_EQ(IntPow(17, 4), 83521u);
}

TEST(Bits, CeilLogBase) {
  // Smallest k with base^k >= x.
  EXPECT_EQ(CeilLogBase(5, 1), 0);
  EXPECT_EQ(CeilLogBase(5, 5), 1);
  EXPECT_EQ(CeilLogBase(5, 6), 2);
  EXPECT_EQ(CeilLogBase(5, 25), 2);
  EXPECT_EQ(CeilLogBase(5, 26), 3);
  EXPECT_EQ(CeilLogBase(5, 65), 3);  // Figure 3's example: 65 leaves, k = 3
  EXPECT_EQ(CeilLogBase(2, 1024), 10);
  EXPECT_EQ(CeilLogBase(2, 1025), 11);
}

TEST(Bits, RoundUp) {
  EXPECT_EQ(RoundUp(0, 64), 0u);
  EXPECT_EQ(RoundUp(1, 64), 64u);
  EXPECT_EQ(RoundUp(64, 64), 64u);
  EXPECT_EQ(RoundUp(65, 64), 128u);
}

TEST(Bits, ConstexprUsable) {
  static_assert(IsPowerOfTwo(64));
  static_assert(CeilLogBase(5, 65) == 3);
  static_assert(IntPow(5, 3) == 125);
  SUCCEED();
}

}  // namespace
}  // namespace cssidx
