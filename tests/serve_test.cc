#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/statement.h"
#include "serve/update_queue.h"
#include "util/rng.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"

// The serving layer's concurrency suite. The load-bearing tests run real
// reader threads against a live writer and verify every recorded probe
// bit-exactly against a serial oracle replayed from the journal — the
// snapshot-consistency contract, checked at every version a reader
// actually saw. Runs in the TSan CI lane, so sizes stay modest.

namespace cssidx::serve {
namespace {

std::string KeysStatement(const char* verb, const char* table,
                          const std::vector<uint32_t>& keys) {
  std::string text = std::string(verb) + " " + table;
  for (uint32_t k : keys) text += " " + std::to_string(k);
  return text;
}

// ------------------------------------------------------------- statements

TEST(Statement, ParsesEveryVerb) {
  auto find = ParseStatement("FIND t 1 2 3");
  ASSERT_TRUE(find.has_value());
  EXPECT_EQ(find->verb, Verb::kFind);
  EXPECT_EQ(find->table, "t");
  EXPECT_EQ(find->keys, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(find->key_tokens, (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(find->keys_numeric, (std::vector<bool>{true, true, true}));

  auto count = ParseStatement("COUNT orders 42");
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(count->verb, Verb::kCount);

  auto range = ParseStatement("RANGE t 10 20");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->verb, Verb::kRange);
  EXPECT_EQ(range->lo, 10u);
  EXPECT_EQ(range->hi, 20u);
  EXPECT_TRUE(range->bounds_numeric);
  EXPECT_TRUE(range->keys.empty());

  auto join = ParseStatement("JOIN outer inner");
  ASSERT_TRUE(join.has_value());
  EXPECT_EQ(join->verb, Verb::kJoin);
  EXPECT_EQ(join->table, "outer");
  EXPECT_EQ(join->table2, "inner");

  auto insert = ParseStatement("  INSERT \t t  7 ");
  ASSERT_TRUE(insert.has_value());
  EXPECT_EQ(insert->verb, Verb::kInsert);
  EXPECT_EQ(insert->keys, (std::vector<uint64_t>{7}));

  auto del = ParseStatement("DELETE t 4294967295");
  ASSERT_TRUE(del.has_value());
  EXPECT_EQ(del->keys, (std::vector<uint64_t>{4294967295u}));
}

TEST(Statement, GrammarIsKeyWidthAgnostic) {
  // The regression this locks down: the old grammar parsed keys as
  // uint32, so "FIND t 4294967296" died at PARSE time and 64-bit tables
  // were unreachable through statements. Now any decimal up to 2^64-1
  // parses; whether it fits is the TABLE's call, at execute time.
  auto wide = ParseStatement("FIND t 4294967296");
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(wide->keys, (std::vector<uint64_t>{4294967296ull}));
  ASSERT_TRUE(wide->keys_numeric[0]);

  auto max64 = ParseStatement("FIND t 18446744073709551615");
  ASSERT_TRUE(max64.has_value());
  EXPECT_EQ(max64->keys[0], 18446744073709551615ull);

  // Non-numeric tokens are string-table keys, kept raw.
  auto raw = ParseStatement("FIND t alpha -1");
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->key_tokens, (std::vector<std::string>{"alpha", "-1"}));
  EXPECT_EQ(raw->keys_numeric, (std::vector<bool>{false, false}));

  // RANGE keeps raw bound tokens for string tables.
  auto srange = ParseStatement("RANGE t aardvark zebra");
  ASSERT_TRUE(srange.has_value());
  EXPECT_FALSE(srange->bounds_numeric);
  EXPECT_EQ(srange->lo_token, "aardvark");
  EXPECT_EQ(srange->hi_token, "zebra");

  // Only one key shape fails at parse time: a digit string too wide for
  // ANY table — with a message distinct from a malformed statement.
  std::string error;
  EXPECT_FALSE(
      ParseStatement("FIND t 18446744073709551616", &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
  EXPECT_NE(error.find("2^64-1"), std::string::npos);
  EXPECT_FALSE(
      ParseStatement("RANGE t 0 99999999999999999999", &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(Statement, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseStatement("", &error).has_value());
  EXPECT_FALSE(ParseStatement("   ", &error).has_value());
  EXPECT_FALSE(ParseStatement("SELECT t 1", &error).has_value());
  EXPECT_NE(error.find("SELECT"), std::string::npos);
  EXPECT_FALSE(ParseStatement("FIND", &error).has_value());
  EXPECT_FALSE(ParseStatement("FIND t", &error).has_value());
  EXPECT_FALSE(ParseStatement("RANGE t 1", &error).has_value());
  EXPECT_FALSE(ParseStatement("RANGE t 1 2 3", &error).has_value());
  EXPECT_FALSE(ParseStatement("JOIN t", &error).has_value());
  EXPECT_FALSE(ParseStatement("JOIN a b c", &error).has_value());
  EXPECT_NE(std::string(StatementGrammarHelp()).find("RANGE"),
            std::string::npos);
}

// -------------------------------------------------------------- coalescing

TEST(Coalesce, EquivalentToSequentialApplicationOnRandomBatches) {
  Pcg32 rng(0xc0a1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> initial(200);
    for (auto& k : initial) k = rng.Below(60);
    std::sort(initial.begin(), initial.end());

    std::vector<workload::UpdateBatch> batches(1 + rng.Below(6));
    for (auto& b : batches) {
      b.inserts.resize(rng.Below(8));
      for (auto& k : b.inserts) k = rng.Below(60);
      b.deletes.resize(rng.Below(8));
      for (auto& k : b.deletes) k = rng.Below(60);
    }

    std::vector<uint32_t> sequential = initial;
    for (const auto& b : batches) {
      sequential = workload::ApplyBatch(sequential, b);
    }
    workload::UpdateBatch merged = Coalesce(batches);
    EXPECT_TRUE(std::is_sorted(merged.deletes.begin(), merged.deletes.end()));
    EXPECT_EQ(std::adjacent_find(merged.deletes.begin(), merged.deletes.end()),
              merged.deletes.end());
    std::vector<uint32_t> coalesced = workload::ApplyBatch(initial, merged);
    ASSERT_EQ(coalesced, sequential) << "trial " << trial;
  }
}

TEST(Coalesce, InsertAfterDeleteSurvivesAndBeforeDies) {
  workload::UpdateBatch first{{5, 7}, {}};
  workload::UpdateBatch second{{}, {5}};
  workload::UpdateBatch third{{5}, {}};
  workload::UpdateBatch merged = Coalesce(std::vector{first, second, third});
  // The first 5 dies to the later delete; the last 5 survives it.
  EXPECT_EQ(merged.inserts, (std::vector<uint32_t>{7, 5}));
  EXPECT_EQ(merged.deletes, (std::vector<uint32_t>{5}));
}

// ------------------------------------------------------- queue admission

TEST(UpdateQueue, RejectAdmissionBouncesWhenFull) {
  Server::Options options;
  options.queue_capacity = 2;
  options.admission = Admission::kReject;
  Server server(options);
  server.CreateTable("t", {1, 2, 3});
  Session session = server.OpenSession();

  EXPECT_TRUE(session.Execute("INSERT t 10").ok());
  EXPECT_TRUE(session.Execute("INSERT t 11").ok());
  StatementResult bounced = session.Execute("INSERT t 12");
  EXPECT_EQ(bounced.status, StatementStatus::kRejected);
  EXPECT_EQ(session.stats().writes_enqueued, 2u);
  EXPECT_EQ(session.stats().writes_rejected, 1u);
  EXPECT_EQ(server.queue_stats().rejected_batches, 1u);

  // The accepted writes (and only those) apply on Start; reads keep
  // working after Stop, writes get kClosed.
  server.Start();
  server.Stop();
  EXPECT_EQ(server.TableSnapshot("t")->keys(),
            (std::vector<uint32_t>{1, 2, 3, 10, 11}));
  EXPECT_TRUE(session.Execute("FIND t 10").ok());
  EXPECT_EQ(session.Execute("INSERT t 13").status, StatementStatus::kClosed);
}

TEST(UpdateQueue, BlockAdmissionParksProducerUntilDrained) {
  Server::Options options;
  options.queue_capacity = 1;
  options.admission = Admission::kBlock;
  Server server(options);
  server.CreateTable("t", {});

  std::thread producer([&] {
    Session session = server.OpenSession();
    EXPECT_TRUE(session.Execute("INSERT t 1").ok());
    EXPECT_TRUE(session.Execute("INSERT t 2").ok());  // parks: queue full
    EXPECT_TRUE(session.Execute("INSERT t 3").ok());
  });
  // Wait until the producer is provably parked on the full queue, then
  // start the writer, whose drain frees the slot.
  while (server.queue_stats().blocked_pushes == 0) {
    std::this_thread::yield();
  }
  server.Start();
  producer.join();
  server.Stop();
  EXPECT_EQ(server.TableSnapshot("t")->keys(),
            (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_GE(server.queue_stats().blocked_pushes, 1u);
  EXPECT_EQ(server.queue_stats().enqueued_batches, 3u);
}

TEST(Server, BacklogCoalescesIntoOneRebuild) {
  // Eight batches queued before the writer exists = a deep backlog the
  // moment it starts: ONE drain cycle, ONE coalesced application, ONE
  // published version — and the final state equals applying the eight
  // batches one by one.
  Server::Options options;
  options.queue_capacity = 64;
  options.journal = true;
  Server server(options);
  Pcg32 rng(0xbac1);
  std::vector<uint32_t> initial(500);
  for (auto& k : initial) k = rng.Below(120);
  server.CreateTable("t", initial);

  std::vector<workload::UpdateBatch> batches(8);
  Session session = server.OpenSession();
  for (auto& b : batches) {
    b.inserts.resize(5);
    for (auto& k : b.inserts) k = rng.Below(120);
    b.deletes.resize(5);
    for (auto& k : b.deletes) k = rng.Below(120);
    ASSERT_TRUE(session.Execute(KeysStatement("INSERT", "t", b.inserts)).ok());
    ASSERT_TRUE(session.Execute(KeysStatement("DELETE", "t", b.deletes)).ok());
  }
  server.Start();
  server.Stop();

  std::vector<uint32_t> oracle = initial;
  std::sort(oracle.begin(), oracle.end());
  for (const auto& b : batches) {
    oracle = workload::ApplyBatch(oracle, {b.inserts, {}});
    oracle = workload::ApplyBatch(oracle, {{}, b.deletes});
  }
  EXPECT_EQ(server.TableSnapshot("t")->keys(), oracle);

  ServerStats stats = server.writer_stats();
  EXPECT_EQ(stats.drain_cycles, 1u);
  EXPECT_EQ(stats.batches_applied, 16u);
  EXPECT_EQ(stats.groups_published, 1u);
  EXPECT_EQ(server.TableMaintenanceStats("t").batches, 1u);
  EXPECT_EQ(server.queue_stats().depth_high_water, 16u);
  ASSERT_EQ(server.applied_groups().size(), 1u);
  EXPECT_EQ(server.applied_groups()[0].batches.size(), 16u);
  EXPECT_EQ(server.applied_groups()[0].sequence, 2u);
  EXPECT_EQ(server.TableSnapshot("t")->sequence(), 2u);
}

// ------------------------------------------------- statement-layer e2e

TEST(Server, DeleteEverythingAndInsertFromEmptyThroughStatements) {
  Server server;
  server.CreateTable("t", {9, 3, 9, 3, 5});
  server.Start();
  Session session = server.OpenSession();
  // DELETE removes every copy of each key.
  ASSERT_TRUE(session.Execute("DELETE t 3 5 9").ok());
  // Insert-from-empty, including a key that was just deleted.
  ASSERT_TRUE(session.Execute("INSERT t 9 1 9").ok());
  server.Stop();
  EXPECT_EQ(server.TableSnapshot("t")->keys(),
            (std::vector<uint32_t>{1, 9, 9}));

  StatementResult find = session.Execute("FIND t 9 2");
  ASSERT_TRUE(find.ok());
  EXPECT_EQ(find.positions, (std::vector<int64_t>{1, -1}));
  StatementResult count = session.Execute("COUNT t 9 1 5");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.counts, (std::vector<size_t>{2, 1, 0}));
  EXPECT_EQ(count.count, 3u);
  StatementResult range = session.Execute("RANGE t 1 10");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.count, 3u);
  EXPECT_EQ(range.range_begin, 0u);
  EXPECT_EQ(range.range_end, 3u);
  // Every read resolved against the same published version.
  EXPECT_EQ(find.version, range.version);

  StatementResult bad = session.Execute("FIND nope 1");
  EXPECT_EQ(bad.status, StatementStatus::kUnknownTable);
  StatementResult garbage = session.Execute("FROB t 1");
  EXPECT_EQ(garbage.status, StatementStatus::kParseError);
  EXPECT_EQ(session.stats().parse_errors, 1u);
  EXPECT_GE(session.stats().probes, 7u);
}

TEST(Server, TableRegistryRules) {
  Server server;
  server.CreateTable("t", {1});
  EXPECT_THROW(server.CreateTable("t", {2}), std::invalid_argument);
  EXPECT_THROW(server.CreateTable64("t", {2}), std::invalid_argument);
  EXPECT_THROW(server.CreateStringTable("t", {"x"}), std::invalid_argument);
  EXPECT_THROW(server.CreateTable("bad", {1}, IndexSpec().WithNodeEntries(12)),
               std::invalid_argument);
  EXPECT_THROW(server.TableSnapshot("nope"), std::out_of_range);
  server.Start();
  EXPECT_THROW(server.CreateTable("late", {1}), std::logic_error);
  EXPECT_THROW(server.Start(), std::logic_error);
  server.Stop();
  server.Stop();  // idempotent
}

// ------------------------------------------------ key width at execute

TEST(Server, ThirtyTwoBitTableChecksKeysAtTheWidthBoundary) {
  // The regression pair from the grammar widening: 4294967295 (2^32-1)
  // is a legitimate 32-bit key and must work everywhere; 4294967296
  // (2^32) parses fine but cannot live in a 32-bit table, so execute
  // rejects it with a message distinct from "not a number".
  Server server;
  server.CreateTable("t", {1, 4294967295u});
  Session session = server.OpenSession();

  StatementResult max_ok = session.Execute("FIND t 4294967295");
  ASSERT_TRUE(max_ok.ok());
  EXPECT_EQ(max_ok.positions, (std::vector<int64_t>{1}));

  StatementResult too_wide = session.Execute("FIND t 4294967296");
  EXPECT_EQ(too_wide.status, StatementStatus::kBadKey);
  EXPECT_NE(too_wide.error.find("out of range for 32-bit table"),
            std::string::npos);
  EXPECT_NE(too_wide.error.find("4294967295"), std::string::npos);
  EXPECT_EQ(session.Execute("COUNT t 4294967296").status,
            StatementStatus::kBadKey);
  StatementResult insert_wide = session.Execute("INSERT t 4294967296");
  EXPECT_EQ(insert_wide.status, StatementStatus::kBadKey);
  EXPECT_EQ(session.stats().writes_enqueued, 0u);

  StatementResult not_numeric = session.Execute("FIND t xyz");
  EXPECT_EQ(not_numeric.status, StatementStatus::kBadKey);
  EXPECT_NE(not_numeric.error.find("integer keys"), std::string::npos);

  // RANGE bounds stay width-independent instead of erroring: [lo, hi)
  // with hi past the table's max clamps to end-of-array, so the max key
  // is reachable through an exclusive upper bound.
  StatementResult whole = session.Execute("RANGE t 0 4294967296");
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole.count, 2u);
  StatementResult just_max = session.Execute("RANGE t 4294967295 4294967296");
  ASSERT_TRUE(just_max.ok());
  EXPECT_EQ(just_max.range_begin, 1u);
  EXPECT_EQ(just_max.range_end, 2u);
  EXPECT_EQ(session.Execute("RANGE t a b").status, StatementStatus::kBadKey);
}

TEST(Server, SixtyFourBitTableEndToEnd) {
  constexpr uint64_t kMax = 18446744073709551615ull;
  Server server;
  server.CreateTable64("w",
                       {5, 4294967295ull, 4294967296ull, 4294967301ull, kMax},
                       *IndexSpec::Parse("css64:16"));
  EXPECT_THROW(server.TableSnapshot("w"), std::out_of_range);
  Session session = server.OpenSession();

  // Probes above 2^32 — unreachable before key width became a spec
  // dimension — and at the very top of the 64-bit space.
  StatementResult find = session.Execute("FIND w 4294967296 6 " +
                                         std::to_string(kMax));
  ASSERT_TRUE(find.ok());
  EXPECT_EQ(find.positions, (std::vector<int64_t>{2, -1, 4}));
  StatementResult count = session.Execute("COUNT w 4294967295 4294967296");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.count, 2u);
  StatementResult range = session.Execute("RANGE w 4294967295 4294967302");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.range_begin, 1u);
  EXPECT_EQ(range.range_end, 4u);
  EXPECT_EQ(session.Execute("FIND w xyz").status, StatementStatus::kBadKey);

  server.Start();
  ASSERT_TRUE(session.Execute("INSERT w 4294967297").ok());
  ASSERT_TRUE(session.Execute("DELETE w 5").ok());
  server.Stop();
  EXPECT_EQ(server.TableSnapshot64("w")->keys(),
            (std::vector<uint64_t>{4294967295ull, 4294967296ull,
                                   4294967297ull, 4294967301ull, kMax}));
  StatementResult after = session.Execute("FIND w 4294967297");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.positions, (std::vector<int64_t>{2}));
}

// ------------------------------------------------------- string tables

TEST(Server, StringTableEndToEnd) {
  Server server;
  server.CreateStringTable("fruit", {"cherry", "apple", "banana", "apple"});
  server.CreateStringTable("basket", {"banana", "durian", "banana"});
  server.CreateTable("nums", {1, 2});
  EXPECT_THROW(server.TableSnapshot64("fruit"), std::out_of_range);
  EXPECT_THROW(server.TableDomain("nums"), std::out_of_range);
  EXPECT_EQ(server.TableDomain("fruit")->size(), 3u);
  Session session = server.OpenSession();

  // Point probes on raw tokens: the session encodes through the domain,
  // probes the ID index, and an unknown value is simply absent.
  StatementResult find = session.Execute("FIND fruit apple banana durian");
  ASSERT_TRUE(find.ok());
  EXPECT_EQ(find.positions, (std::vector<int64_t>{0, 2, -1}));
  StatementResult count = session.Execute("COUNT fruit apple durian");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.counts, (std::vector<size_t>{2, 0}));

  // Range predicates map through LowerBoundId (§2.1: IDs are
  // order-preserving), so bounds need not be values in the domain.
  StatementResult range = session.Execute("RANGE fruit apple banana");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.range_begin, 0u);
  EXPECT_EQ(range.range_end, 2u);
  StatementResult prefix = session.Execute("RANGE fruit b d");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.count, 2u);  // banana, cherry

  server.Start();
  // "blueberry" is new to the dictionary: the writer grows a copy of the
  // domain, remaps the snapshot's IDs, and publishes dictionary + index
  // as one version.
  ASSERT_TRUE(session.Execute("INSERT fruit blueberry apple").ok());
  ASSERT_TRUE(session.Execute("DELETE fruit cherry").ok());
  server.Stop();

  EXPECT_EQ(server.TableDomain("fruit")->size(), 4u);
  StatementResult after = session.Execute("FIND fruit blueberry cherry");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.positions, (std::vector<int64_t>{4, -1}));
  StatementResult apples = session.Execute("COUNT fruit apple");
  ASSERT_TRUE(apples.ok());
  EXPECT_EQ(apples.count, 3u);

  // JOIN translates outer IDs into the inner dictionary; values absent
  // from the inner side contribute nothing. fruit holds {apple x3,
  // banana, blueberry}; basket holds {banana x2, durian}.
  StatementResult join = session.Execute("JOIN fruit basket");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join.count, 2u);  // banana matches twice
  StatementResult join_back = session.Execute("JOIN basket fruit");
  ASSERT_TRUE(join_back.ok());
  EXPECT_EQ(join_back.count, 2u);
  StatementResult mixed = session.Execute("JOIN fruit nums");
  EXPECT_EQ(mixed.status, StatementStatus::kBadKey);
  EXPECT_NE(mixed.error.find("same key type"), std::string::npos);
}

TEST(Server, StringTableWriterMatchesSerialOracleUnderBacklog) {
  // Several queued string batches — mixing brand-new values, re-inserts,
  // and deletes of both — coalesce into one application. The final
  // column must equal the serial replay on a multiset of strings.
  Server::Options options;
  options.queue_capacity = 64;
  Server server(options);
  server.CreateStringTable("t", {"pear", "fig", "pear", "lime"});
  Session session = server.OpenSession();
  ASSERT_TRUE(session.Execute("INSERT t date fig").ok());
  ASSERT_TRUE(session.Execute("DELETE t pear date").ok());  // kills queued date
  ASSERT_TRUE(session.Execute("INSERT t date kiwi kiwi").ok());
  server.Start();
  server.Stop();

  // Serial oracle: {pear x2, fig, lime} +date +fig; -pear(all) -date;
  // +date +kiwi x2  =>  {date, fig x2, kiwi x2, lime}.
  const auto dom = server.TableDomain("t");
  // The dictionary never shrinks: pear stays though its rows are gone.
  ASSERT_EQ(dom->size(), 5u);  // date fig kiwi lime pear
  std::vector<std::string> decoded;
  for (uint32_t id : server.TableSnapshot("t")->keys()) {
    decoded.push_back(dom->Decode(id));
  }
  EXPECT_EQ(decoded, (std::vector<std::string>{"date", "fig", "fig", "kiwi",
                                               "kiwi", "lime"}));
}

// ------------------------------------- concurrent differential (TSan'd)

struct RecordedRead {
  char kind = 'F';  // F[ind] / C[ount] / R[ange]
  uint64_t version = 0;
  std::vector<uint32_t> keys;          // FIND/COUNT
  uint32_t lo = 0, hi = 0;             // RANGE
  std::vector<int64_t> positions;      // FIND
  std::vector<size_t> counts;          // COUNT
  size_t range_begin = 0, range_end = 0;
  uint64_t count = 0;
};

/// Replays the journal into a map: version -> full sorted key state of
/// `table` as of that version. Version 1 is the initial build.
std::map<uint64_t, std::vector<uint32_t>> OracleStates(
    const Server& server, uint32_t table, std::vector<uint32_t> initial) {
  std::sort(initial.begin(), initial.end());
  std::map<uint64_t, std::vector<uint32_t>> states;
  states[1] = initial;
  std::vector<uint32_t> current = std::move(initial);
  for (const AppliedGroup& group : server.applied_groups()) {
    if (group.table != table) continue;
    for (const workload::UpdateBatch& batch : group.batches) {
      current = workload::ApplyBatch(current, batch);
    }
    states[group.sequence] = current;
  }
  return states;
}

void VerifyAgainstOracle(
    const std::vector<RecordedRead>& reads,
    const std::map<uint64_t, std::vector<uint32_t>>& states,
    const std::string& label) {
  for (size_t i = 0; i < reads.size(); ++i) {
    const RecordedRead& r = reads[i];
    auto it = states.find(r.version);
    ASSERT_NE(it, states.end())
        << label << " read " << i << ": unknown version " << r.version;
    const std::vector<uint32_t>& keys = it->second;
    if (r.kind == 'F') {
      for (size_t k = 0; k < r.keys.size(); ++k) {
        auto lb = std::lower_bound(keys.begin(), keys.end(), r.keys[k]);
        int64_t expected =
            (lb != keys.end() && *lb == r.keys[k]) ? lb - keys.begin() : -1;
        ASSERT_EQ(r.positions[k], expected)
            << label << " read " << i << " key " << r.keys[k]
            << " at version " << r.version;
      }
    } else if (r.kind == 'C') {
      for (size_t k = 0; k < r.keys.size(); ++k) {
        size_t expected =
            std::upper_bound(keys.begin(), keys.end(), r.keys[k]) -
            std::lower_bound(keys.begin(), keys.end(), r.keys[k]);
        ASSERT_EQ(r.counts[k], expected)
            << label << " read " << i << " key " << r.keys[k]
            << " at version " << r.version;
      }
    } else {
      size_t begin = std::lower_bound(keys.begin(), keys.end(), r.lo) -
                     keys.begin();
      size_t end = std::lower_bound(keys.begin(), keys.end(), r.hi) -
                   keys.begin();
      if (r.hi <= r.lo) begin = end = 0;
      ASSERT_EQ(r.range_begin, begin) << label << " read " << i;
      ASSERT_EQ(r.range_end, end) << label << " read " << i;
      ASSERT_EQ(r.count, end - begin) << label << " read " << i;
    }
  }
}

TEST(Server, ConcurrentReadersSeeOracleStateAtEveryVersion) {
  // The acceptance gate: N reader threads hammer FIND/COUNT/RANGE while
  // producers push INSERT/DELETE through a tight queue (so the writer
  // coalesces under real pressure), journal on. Afterwards every recorded
  // probe must be bit-identical to the serial oracle at the version the
  // read reported — for an ordered spec, a partitioned spec, and hash.
  for (const char* spec_text : {"css:16", "part:8/css:16", "hash:10"}) {
    SCOPED_TRACE(spec_text);
    Server::Options options;
    options.queue_capacity = 4;  // tight: forces blocking + deep coalesces
    options.admission = Admission::kBlock;
    options.journal = true;
    Server server(options);
    Pcg32 seed_rng(0xd1f);
    std::vector<uint32_t> initial(2'000);
    for (auto& k : initial) k = seed_rng.Below(500);
    const uint32_t table_id =
        server.CreateTable("t", initial, *IndexSpec::Parse(spec_text));
    server.Start();

    std::atomic<bool> writers_done{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&, p] {
        Session session = server.OpenSession();
        Pcg32 rng(0x9000 + p);
        for (int s = 0; s < 40; ++s) {
          std::vector<uint32_t> keys(6);
          for (auto& k : keys) k = rng.Below(500);
          const char* verb = (s % 2 == p % 2) ? "INSERT" : "DELETE";
          ASSERT_TRUE(session.Execute(KeysStatement(verb, "t", keys)).ok());
        }
      });
    }

    std::vector<std::vector<RecordedRead>> recorded(3);
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&, t] {
        Session session = server.OpenSession();
        Pcg32 rng(0x4ead + t);
        // Keep reading until the producers finish, then a few more
        // statements against the final drained state.
        for (int s = 0; s < 150 || (!writers_done.load() && s < 100'000);
             ++s) {
          RecordedRead r;
          r.version = 0;
          switch (s % 3) {
            case 0: {
              r.kind = 'F';
              r.keys.resize(8);
              for (auto& k : r.keys) k = rng.Below(520);
              StatementResult res =
                  session.Execute(KeysStatement("FIND", "t", r.keys));
              ASSERT_TRUE(res.ok());
              r.version = res.version;
              r.positions = std::move(res.positions);
              break;
            }
            case 1: {
              r.kind = 'C';
              r.keys.resize(8);
              for (auto& k : r.keys) k = rng.Below(520);
              StatementResult res =
                  session.Execute(KeysStatement("COUNT", "t", r.keys));
              ASSERT_TRUE(res.ok());
              r.version = res.version;
              r.counts = std::move(res.counts);
              break;
            }
            default: {
              r.kind = 'R';
              r.lo = rng.Below(520);
              r.hi = rng.Below(520);
              StatementResult res = session.Execute(
                  "RANGE t " + std::to_string(r.lo) + " " +
                  std::to_string(r.hi));
              ASSERT_TRUE(res.ok());
              r.version = res.version;
              r.range_begin = res.range_begin;
              r.range_end = res.range_end;
              r.count = res.count;
              break;
            }
          }
          recorded[t].push_back(std::move(r));
        }
      });
    }

    for (auto& p : producers) p.join();
    writers_done.store(true);
    for (auto& r : readers) r.join();
    server.Stop();

    // Sanity on the pressure itself: everything accepted was applied.
    QueueStats queue = server.queue_stats();
    ServerStats writer = server.writer_stats();
    EXPECT_EQ(queue.enqueued_batches, 80u);
    EXPECT_EQ(writer.batches_applied, 80u);
    EXPECT_LE(writer.groups_published, writer.batches_applied);

    auto states = OracleStates(server, table_id, initial);
    for (int t = 0; t < 3; ++t) {
      VerifyAgainstOracle(recorded[t], states,
                          std::string(spec_text) + " reader " +
                              std::to_string(t));
    }
    // Final published state equals the full serial application.
    EXPECT_EQ(server.TableSnapshot("t")->keys(), states.rbegin()->second);
  }
}

TEST(Server, JoinIsConsistentAcrossTwoSnapshots) {
  Server::Options options;
  options.queue_capacity = 4;
  options.journal = true;
  Server server(options);
  Pcg32 seed_rng(0x10ad);
  std::vector<uint32_t> outer_keys(400), inner_keys(600);
  for (auto& k : outer_keys) k = seed_rng.Below(80);
  for (auto& k : inner_keys) k = seed_rng.Below(80);
  const uint32_t outer_id = server.CreateTable("outer", outer_keys);
  const uint32_t inner_id = server.CreateTable("inner", inner_keys);
  server.Start();

  std::thread producer([&] {
    Session session = server.OpenSession();
    Pcg32 rng(0x77aa);
    for (int s = 0; s < 30; ++s) {
      std::vector<uint32_t> keys(4);
      for (auto& k : keys) k = rng.Below(80);
      const char* table = (s % 2 == 0) ? "outer" : "inner";
      const char* verb = (s % 3 == 0) ? "DELETE" : "INSERT";
      ASSERT_TRUE(session.Execute(KeysStatement(verb, table, keys)).ok());
    }
  });

  struct RecordedJoin {
    uint64_t version = 0, version2 = 0;
    uint64_t count = 0;
  };
  std::vector<RecordedJoin> joins;
  Session session = server.OpenSession();
  for (int s = 0; s < 60; ++s) {
    StatementResult res = session.Execute("JOIN outer inner");
    ASSERT_TRUE(res.ok());
    joins.push_back({res.version, res.version2, res.count});
  }
  producer.join();
  server.Stop();

  auto outer_states = OracleStates(server, outer_id, outer_keys);
  auto inner_states = OracleStates(server, inner_id, inner_keys);
  for (size_t i = 0; i < joins.size(); ++i) {
    const auto& outer_state = outer_states.at(joins[i].version);
    const auto& inner_state = inner_states.at(joins[i].version2);
    uint64_t expected = 0;
    for (uint32_t k : outer_state) {
      expected += std::upper_bound(inner_state.begin(), inner_state.end(), k) -
                  std::lower_bound(inner_state.begin(), inner_state.end(), k);
    }
    ASSERT_EQ(joins[i].count, expected) << "join " << i;
  }
}

// ------------------------------------------------------------- the advisor

TEST(Statement, AdviseParsesWithOptionalApply) {
  auto advise = ParseStatement("ADVISE t");
  ASSERT_TRUE(advise.has_value());
  EXPECT_EQ(advise->verb, Verb::kAdvise);
  EXPECT_EQ(advise->table, "t");
  EXPECT_FALSE(advise->apply);

  auto apply = ParseStatement("ADVISE t APPLY");
  ASSERT_TRUE(apply.has_value());
  EXPECT_TRUE(apply->apply);

  std::string error;
  EXPECT_FALSE(ParseStatement("ADVISE t NOW", &error).has_value());
  EXPECT_NE(error.find("APPLY"), std::string::npos);
  EXPECT_FALSE(ParseStatement("ADVISE t APPLY NOW").has_value());
}

TEST(Server, AdviseNeedsStatsAndApplyNeedsTheSwapFlag) {
  // Without collect_stats there is no profile to advise from.
  {
    Server server;
    server.CreateTable("t", workload::DistinctSortedKeys(1'000, 3, 4));
    Session session = server.OpenSession();
    StatementResult res = session.Execute("ADVISE t");
    EXPECT_EQ(res.status, StatementStatus::kUnsupported);
    EXPECT_NE(res.error.find("collect_stats"), std::string::npos);
  }
  // With stats but no swap flag, ADVISE reports and APPLY is refused.
  Server::Options options;
  options.collect_stats = true;
  Server server(options);
  server.CreateTable("t", workload::DistinctSortedKeys(1'000, 3, 4));
  server.CreateTable64("wide", {5, 9, 1, 7});
  server.CreateStringTable("s", {"ada", "cobol", "forth"});
  Session session = server.OpenSession();

  EXPECT_EQ(session.Execute("ADVISE nosuch").status,
            StatementStatus::kUnknownTable);
  for (const char* table : {"t", "wide", "s"}) {
    StatementResult res = session.Execute(std::string("ADVISE ") + table);
    ASSERT_EQ(res.status, StatementStatus::kOk) << table << ": " << res.error;
    EXPECT_FALSE(res.recommended_spec.empty()) << table;
    EXPECT_FALSE(res.advice.empty()) << table;
    EXPECT_FALSE(res.applied) << table;
    EXPECT_TRUE(IndexSpec::Parse(res.recommended_spec).has_value())
        << res.recommended_spec;
  }
  StatementResult apply = session.Execute("ADVISE t APPLY");
  EXPECT_EQ(apply.status, StatementStatus::kUnsupported);
  EXPECT_NE(apply.error.find("allow_spec_swap"), std::string::npos);
}

TEST(Server, AdviseApplyHotSwapsUnderLiveReadersBitIdentically) {
  Server::Options options;
  options.collect_stats = true;
  options.allow_spec_swap = true;
  options.journal = true;
  Server server(options);
  auto keys = workload::DistinctSortedKeys(20'000, 17, 4);
  server.CreateTable("t", keys);  // sorted input: position of keys[i] is i
  server.Start();

  // The probe set every reader replays, with its ground-truth positions —
  // the swap rebuilds the same key array, so answers must never change.
  std::vector<uint32_t> probe_keys;
  std::vector<int64_t> expected;
  for (size_t i = 0; i < 16; ++i) {
    size_t pos = i * 1'000 + 117;
    probe_keys.push_back(keys[pos]);
    expected.push_back(static_cast<int64_t>(pos));
  }
  probe_keys.push_back(keys.back() + 1);  // absent
  expected.push_back(-1);
  const std::string find = KeysStatement("FIND", "t", probe_keys);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  auto reader = [&] {
    Session session = server.OpenSession();
    while (!stop.load(std::memory_order_relaxed)) {
      StatementResult res = session.Execute(find);
      EXPECT_EQ(res.status, StatementStatus::kOk);
      EXPECT_EQ(res.positions, expected);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader), r2(reader);

  Session session = server.OpenSession();
  // Feed the collector, then swap.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(session.Execute(find).ok());
  }
  StatementResult applied = session.Execute("ADVISE t APPLY");
  ASSERT_EQ(applied.status, StatementStatus::kOk) << applied.error;
  ASSERT_TRUE(applied.applied);
  ASSERT_FALSE(applied.recommended_spec.empty());

  // No data writes are queued, so the first published group IS the swap.
  while (server.writer_stats().groups_published == 0) {
    std::this_thread::yield();
  }
  // Let the readers cross the swap a few more times.
  uint64_t seen = reads.load(std::memory_order_relaxed);
  while (reads.load(std::memory_order_relaxed) < seen + 20) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  r1.join();
  r2.join();

  StatementResult after = session.Execute(find);
  ASSERT_EQ(after.status, StatementStatus::kOk);
  EXPECT_EQ(after.positions, expected);
  server.Stop();

  // Exactly one publish, and it is the respec marker; the table now serves
  // under the recommended spec.
  ASSERT_EQ(server.applied_groups().size(), 1u);
  const AppliedGroup& group = server.applied_groups().front();
  EXPECT_TRUE(group.respec);
  EXPECT_EQ(group.respec_spec.ToString(), applied.recommended_spec);
  EXPECT_TRUE(group.batches.empty());
  EXPECT_EQ(server.TableSpec("t").ToString(), applied.recommended_spec);
  EXPECT_EQ(server.TableMaintenanceStats("t").spec_swaps, 1u);
  EXPECT_EQ(server.writer_stats().groups_published, 1u);

  // The collector kept observing across the swap: the profile holds the
  // pre-swap statements plus everything the readers issued.
  WorkloadProfile profile = server.TableWorkloadProfile("t");
  EXPECT_GE(profile.point_probes,
            probe_keys.size() * (reads.load() + 32));
}

}  // namespace
}  // namespace cssidx::serve
