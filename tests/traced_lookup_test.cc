// Instrumented lookups feeding the cache simulator must (a) return the same
// answers as the plain lookups and (b) produce miss counts that match the
// §5 analytic model's ordering: CSS-trees < B+-tree < binary search/T-tree.

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/binary_search.h"
#include "baselines/binary_tree.h"
#include "baselines/bplus_tree.h"
#include "baselines/t_tree.h"
#include "cachesim/cache_sim.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "gtest/gtest.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx {
namespace {

using cachesim::CacheHierarchy;
using cachesim::SimTracer;

template <typename IndexT>
double ColdMissesPerLookup(const IndexT& index,
                           const std::vector<Key>& lookups) {
  CacheHierarchy h(cachesim::UltraSparcHierarchy());
  SimTracer tracer{&h};
  for (Key k : lookups) {
    h.FlushContents();  // cold cache per lookup, like the §5 analysis
    index.LowerBoundTraced(k, tracer);
  }
  return static_cast<double>(h.Level(1).misses()) /
         static_cast<double>(lookups.size());
}

TEST(TracedLookup, TracedAgreesWithPlain) {
  auto keys = workload::DistinctSortedKeys(50'000, 3, 4);
  auto lookups = workload::MatchingLookups(keys, 500, 9);
  CacheHierarchy h(cachesim::ModernHierarchy());
  SimTracer tracer{&h};

  BinarySearchIndex bs(keys);
  FullCssTree<16> full(keys);
  LevelCssTree<16> level(keys);
  BPlusTree<16> bplus(keys);
  TTreeIndex<16> ttree(keys);
  BinaryTreeIndex bst(keys);
  for (Key k : lookups) {
    size_t expected = bs.LowerBound(k);
    EXPECT_EQ(bs.LowerBoundTraced(k, tracer), expected);
    EXPECT_EQ(full.LowerBoundTraced(k, tracer), expected);
    EXPECT_EQ(level.LowerBoundTraced(k, tracer), expected);
    EXPECT_EQ(bplus.LowerBoundTraced(k, tracer), expected);
    EXPECT_EQ(ttree.LowerBoundTraced(k, tracer), expected);
    EXPECT_EQ(bst.LowerBoundTraced(k, tracer), expected);
  }
}

TEST(TracedLookup, MissOrderingMatchesFigure6) {
  auto keys = workload::DistinctSortedKeys(200'000, 5, 4);
  auto lookups = workload::MatchingLookups(keys, 64, 11);

  BinarySearchIndex bs(keys);
  BinaryTreeIndex bst(keys);
  TTreeIndex<8> ttree(keys);  // 8 entries = 32B keys + rids: 1999 sizing
  BPlusTree<8> bplus(keys);
  FullCssTree<8> full(keys);
  LevelCssTree<8> level(keys);

  double m_bs = ColdMissesPerLookup(bs, lookups);
  double m_bst = ColdMissesPerLookup(bst, lookups);
  double m_tt = ColdMissesPerLookup(ttree, lookups);
  double m_bp = ColdMissesPerLookup(bplus, lookups);
  double m_fc = ColdMissesPerLookup(full, lookups);
  double m_lc = ColdMissesPerLookup(level, lookups);

  // Figure 6 story at the L2 level (64B lines, 8-int nodes fit one line):
  EXPECT_LT(m_fc, m_bp);
  EXPECT_LT(m_lc, m_bp);
  EXPECT_LT(m_bp, m_tt);
  EXPECT_LT(m_bp, m_bs);
  // Binary search and pointer BST and T-tree are all ~log2(n) misses.
  double log2n = std::log2(200'000.0);
  EXPECT_NEAR(m_bs, log2n, log2n * 0.35);
  EXPECT_NEAR(m_bst, log2n, log2n * 0.35);
  EXPECT_NEAR(m_tt, log2n * 0.8, log2n * 0.4);
  // CSS-trees: about log_{f}(n) misses (+ leaf).
  double expected_fc = std::log(200'000.0) / std::log(9.0);
  EXPECT_NEAR(m_fc, expected_fc, expected_fc * 0.5);
}

TEST(TracedLookup, WarmCacheKeepsTopLevelsResident) {
  // §5.1: "If a bunch of searches are performed in sequence, the top level
  // nodes will stay in the cache" — run without flushing and expect far
  // fewer misses than cold.
  auto keys = workload::DistinctSortedKeys(200'000, 5, 4);
  auto lookups = workload::MatchingLookups(keys, 2000, 13);
  FullCssTree<16> full(keys);

  CacheHierarchy cold(cachesim::ModernHierarchy());
  SimTracer cold_tracer{&cold};
  for (Key k : lookups) {
    cold.FlushContents();
    full.LowerBoundTraced(k, cold_tracer);
  }
  CacheHierarchy warm(cachesim::ModernHierarchy());
  SimTracer warm_tracer{&warm};
  for (Key k : lookups) full.LowerBoundTraced(k, warm_tracer);

  EXPECT_LT(warm.Level(1).misses(), cold.Level(1).misses() / 2);
}

TEST(TracedLookup, NullTracerIsFree) {
  // Compile-time check that the null tracer path exists and agrees.
  auto keys = workload::DistinctSortedKeys(1000, 3, 4);
  FullCssTree<8> full(keys);
  cachesim::NullTracer null;
  for (Key k : {keys[0], keys[500], keys.back()}) {
    EXPECT_EQ(full.LowerBoundTraced(k, null), full.LowerBound(k));
  }
}

}  // namespace
}  // namespace cssidx
