#include "workload/batch_update.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx::workload {
namespace {

TEST(BatchUpdate, InsertOnly) {
  std::vector<uint32_t> keys{10, 20, 30};
  UpdateBatch batch;
  batch.inserts = {25, 5, 35};
  auto result = ApplyBatch(keys, batch);
  EXPECT_EQ(result, (std::vector<uint32_t>{5, 10, 20, 25, 30, 35}));
}

TEST(BatchUpdate, DeleteOnly) {
  std::vector<uint32_t> keys{10, 20, 30, 40};
  UpdateBatch batch;
  batch.deletes = {20, 40};
  auto result = ApplyBatch(keys, batch);
  EXPECT_EQ(result, (std::vector<uint32_t>{10, 30}));
}

TEST(BatchUpdate, DeleteRemovesAllOccurrences) {
  std::vector<uint32_t> keys{10, 20, 20, 20, 30};
  UpdateBatch batch;
  batch.deletes = {20};
  auto result = ApplyBatch(keys, batch);
  EXPECT_EQ(result, (std::vector<uint32_t>{10, 30}));
}

TEST(BatchUpdate, InsertAfterDeleteKeepsKey) {
  std::vector<uint32_t> keys{10, 20, 30};
  UpdateBatch batch;
  batch.deletes = {20};
  batch.inserts = {20};
  auto result = ApplyBatch(keys, batch);
  EXPECT_EQ(result, (std::vector<uint32_t>{10, 20, 30}));
}

TEST(BatchUpdate, DuplicateInsertsKept) {
  std::vector<uint32_t> keys{10};
  UpdateBatch batch;
  batch.inserts = {10, 10};
  auto result = ApplyBatch(keys, batch);
  EXPECT_EQ(result, (std::vector<uint32_t>{10, 10, 10}));
}

TEST(BatchUpdate, DeleteAbsentKeyIsNoop) {
  std::vector<uint32_t> keys{10, 30};
  UpdateBatch batch;
  batch.deletes = {20};
  EXPECT_EQ(ApplyBatch(keys, batch), keys);
}

TEST(BatchUpdate, EmptyEverything) {
  EXPECT_TRUE(ApplyBatch({}, {}).empty());
  std::vector<uint32_t> keys{1, 2};
  EXPECT_EQ(ApplyBatch(keys, {}), keys);
}

TEST(BatchUpdate, ResultAlwaysSorted) {
  auto keys = DistinctSortedKeys(5000, 3, 4);
  UpdateBatch batch = RandomBatch(keys, 0.2, 99);
  auto result = ApplyBatch(keys, batch);
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
}

TEST(BatchUpdate, RandomBatchTouchesRequestedFraction) {
  auto keys = DistinctSortedKeys(10000, 3, 4);
  UpdateBatch batch = RandomBatch(keys, 0.1, 7);
  EXPECT_EQ(batch.deletes.size() + batch.inserts.size(), 1000u);
}

TEST(BatchUpdate, SizeAccounting) {
  auto keys = DistinctSortedKeys(2000, 3, 4);
  UpdateBatch batch;
  batch.inserts = {keys.back() + 1, keys.back() + 2};
  batch.deletes = {keys[0], keys[1], keys[2]};
  auto result = ApplyBatch(keys, batch);
  EXPECT_EQ(result.size(), keys.size() - 3 + 2);
}

TEST(BatchUpdate, RandomBatchInRangeStaysInRangeAndSizesLikeRandomBatch) {
  auto keys = DistinctSortedKeys(10000, 3, 4);
  uint32_t lo = keys[1000];
  uint32_t hi = keys[2000];
  UpdateBatch batch = RandomBatchInRange(keys, 0.05, lo, hi, 7);
  // Sized against the WHOLE array, like RandomBatch, so localized and
  // scattered batches of one fraction are comparable.
  EXPECT_EQ(batch.deletes.size() + batch.inserts.size(), 500u);
  for (uint32_t k : batch.inserts) {
    EXPECT_GE(k, lo);
    EXPECT_LT(k, hi);
  }
  for (uint32_t k : batch.deletes) {
    EXPECT_GE(k, lo);
    EXPECT_LT(k, hi);
    EXPECT_TRUE(std::binary_search(keys.begin(), keys.end(), k));
  }
}

TEST(BatchUpdate, RandomBatchInRangeWithNoExistingKeysIsInsertOnly) {
  auto keys = DistinctSortedKeys(1000, 5, 4);
  uint32_t beyond = keys.back() + 10;
  UpdateBatch batch = RandomBatchInRange(keys, 0.1, beyond, beyond + 50, 11);
  EXPECT_TRUE(batch.deletes.empty());  // nothing in range to delete
  EXPECT_EQ(batch.inserts.size(), 50u);
}

}  // namespace
}  // namespace cssidx::workload
