// Differential suite for the batched range probes (EqualRangeBatch /
// CountEqualBatch): every spec on the IndexSpec menu must agree with the
// scalar EqualRange/CountEqual probes (batches of one through the same
// virtual hop) and with the STL equal_range oracle — whatever group
// probing, prefetching, or chain-scan tricks a kernel plays underneath.
// Range semantics are where differential bugs hide, so the inputs lean on
// heavy duplicates, all-equal arrays, absent keys, empty batches, and
// probe spans straddling the parallel-probe shard threshold.

#include <algorithm>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/range.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx {
namespace {

/// The contract's expected span: {lower_bound, upper_bound} for ordered
/// methods; hash anchors absent keys' empty spans at size() instead of the
/// insertion point (it has no notion of one).
PositionRange OracleRange(const std::vector<Key>& keys, Key k, bool ordered) {
  auto lo = std::lower_bound(keys.begin(), keys.end(), k);
  auto hi = std::upper_bound(keys.begin(), keys.end(), k);
  auto begin = static_cast<size_t>(lo - keys.begin());
  auto end = static_cast<size_t>(hi - keys.begin());
  if (!ordered && begin == end) return {keys.size(), keys.size()};
  return {begin, end};
}

std::vector<Key> ProbesFor(const std::vector<Key>& keys, size_t count,
                           uint64_t seed) {
  // Matching, absent, and boundary keys: the three regimes of a run probe.
  auto probes = workload::MatchingLookups(keys, count - count / 4, seed);
  auto missing = workload::MissingLookups(keys, count / 4, seed + 1);
  probes.insert(probes.end(), missing.begin(), missing.end());
  if (!keys.empty()) {
    probes.push_back(keys.front());
    probes.push_back(keys.back());
    probes.push_back(keys.back() + 1);
  }
  probes.push_back(0);
  return probes;
}

void CheckRangeProbes(const AnyIndex& index, const std::vector<Key>& keys,
                      const std::vector<Key>& probes,
                      const std::string& label) {
  std::vector<PositionRange> ranges(probes.size());
  std::vector<size_t> counts(probes.size());
  index.EqualRangeBatch(probes, ranges);
  index.CountEqualBatch(probes, counts);
  for (size_t i = 0; i < probes.size(); ++i) {
    PositionRange want =
        OracleRange(keys, probes[i], index.SupportsOrderedAccess());
    ASSERT_EQ(ranges[i], want)
        << label << " " << index.Name() << " i=" << i << " k=" << probes[i];
    ASSERT_EQ(counts[i], want.size())
        << label << " " << index.Name() << " i=" << i << " k=" << probes[i];
    // Scalar probes are batches of one through the same virtual hop; they
    // must reproduce the batch kernel's results exactly.
    ASSERT_EQ(index.EqualRange(probes[i]), want)
        << label << " " << index.Name() << " k=" << probes[i];
    ASSERT_EQ(index.CountEqual(probes[i]), want.size())
        << label << " " << index.Name() << " k=" << probes[i];
  }
}

TEST(RangeProbe, HeavyDuplicatesAcrossEverySpecOnTheMenu) {
  // Few distinct values over many rows: most probes return wide runs, and
  // the k+1 trick's end bound frequently lands on another run's begin.
  auto keys = workload::KeysWithDuplicates(6000, 40, /*seed=*/3);
  auto probes = ProbesFor(keys, 600, /*seed=*/5);
  for (const IndexSpec& spec : test_menu::MenuSpecs(16, 8)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    CheckRangeProbes(index, keys, probes, "heavy-dup");
  }
}

TEST(RangeProbe, AllEqualArray) {
  // One giant duplicate run: begin = 0, end = n for the one live key;
  // probes below and above it exercise both empty-span anchors.
  std::vector<Key> keys(3000, 777);
  std::vector<Key> probes{776, 777, 778, 0, 0xffffffffu};
  for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 6)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    CheckRangeProbes(index, keys, probes, "all-equal");
  }
}

TEST(RangeProbe, AbsentKeysOnly) {
  auto keys = workload::DistinctSortedKeys(5000, /*seed=*/9, /*mean_gap=*/8);
  auto probes = workload::MissingLookups(keys, 500, /*seed=*/11);
  for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 8)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    CheckRangeProbes(index, keys, probes, "absent");
  }
}

TEST(RangeProbe, ExtremeKeysIncludingMax) {
  // UINT32_MAX is the one key whose successor probe would wrap; its run
  // must still end at n.
  std::vector<Key> keys{0, 0, 5, 5, 5, 0xfffffffeu, 0xffffffffu, 0xffffffffu};
  std::vector<Key> probes{0, 1, 5, 0xfffffffeu, 0xffffffffu, 7};
  for (const IndexSpec& spec : test_menu::DefaultSpecs(4, 3)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    CheckRangeProbes(index, keys, probes, "extreme");
  }
}

TEST(RangeProbe, EmptyBatchAndEmptyIndex) {
  auto keys = workload::KeysWithDuplicates(200, 20, /*seed=*/13);
  std::vector<Key> none;
  std::vector<PositionRange> no_ranges;
  std::vector<size_t> no_counts;
  for (const IndexSpec& spec : test_menu::DefaultSpecs(8, 4)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    // Empty batch: must be a no-op, not a crash.
    index.EqualRangeBatch(none, no_ranges);
    index.CountEqualBatch(none, no_counts);

    // Empty index: every probe is an empty span anchored at 0 (== size()).
    AnyIndex empty = BuildIndex(spec, std::vector<Key>{});
    ASSERT_TRUE(empty) << spec.ToString();
    std::vector<Key> probes{0, 7, 0xffffffffu};
    CheckRangeProbes(empty, {}, probes, "empty-index");
  }
}

TEST(RangeProbe, ThreadCountsStraddleTheShardThreshold) {
  // Probe spans below, at, and above kParallelProbeMinShard with the
  // default shard grain: the inline path, the exact boundary, and real
  // multi-shard dispatches must all reproduce the scalar results in place.
  ThreadPool pool(3);  // real workers even on a 1-core CI machine
  auto keys = workload::KeysWithDuplicates(30000, 500, /*seed=*/17);
  const std::vector<size_t> probe_counts{
      100, kParallelProbeMinShard - 1, kParallelProbeMinShard,
      kParallelProbeMinShard + 1, 3 * kParallelProbeMinShard};
  for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 10)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    for (size_t count : probe_counts) {
      auto probes = ProbesFor(keys, count, /*seed=*/count);
      std::vector<PositionRange> expected_ranges(probes.size());
      std::vector<size_t> expected_counts(probes.size());
      for (size_t i = 0; i < probes.size(); ++i) {
        expected_ranges[i] = index.EqualRange(probes[i]);
        expected_counts[i] = index.CountEqual(probes[i]);
      }
      for (int threads : {1, 8, 0}) {
        ProbeOptions opts{.threads = threads, .pool = &pool};
        std::vector<PositionRange> ranges(probes.size(),
                                          PositionRange{~size_t{0}, 0});
        std::vector<size_t> counts(probes.size(), ~size_t{0});
        index.EqualRangeBatch(probes, ranges, opts);
        index.CountEqualBatch(probes, counts, opts);
        ASSERT_EQ(ranges, expected_ranges)
            << spec.ToString() << " probes=" << count
            << " threads=" << threads;
        ASSERT_EQ(counts, expected_counts)
            << spec.ToString() << " probes=" << count
            << " threads=" << threads;
      }
    }
  }
}

TEST(RangeProbe, SpecSuffixDrivesRangeParallelismThroughTheFacade) {
  auto keys = workload::KeysWithDuplicates(20000, 300, /*seed=*/19);
  auto probes = ProbesFor(keys, 10000, /*seed=*/23);
  AnyIndex scalar_index = BuildIndex(*IndexSpec::Parse("css:16"), keys);
  AnyIndex parallel_index = BuildIndex(*IndexSpec::Parse("css:16@t3"), keys);
  std::vector<PositionRange> expected(probes.size());
  std::vector<PositionRange> got(probes.size());
  scalar_index.EqualRangeBatch(probes, expected);
  parallel_index.EqualRangeBatch(probes, got);  // spec-driven sharding
  EXPECT_EQ(got, expected);
}

TEST(RangeProbe, RepeatedParallelRunsAreDeterministic) {
  // The TSan lane leans on this: repeated identical dispatches give any
  // racy shard claim a window to corrupt a neighbor's span.
  ThreadPool pool(3);
  auto keys = workload::KeysWithDuplicates(40000, 800, /*seed=*/29);
  AnyIndex index = BuildIndex(*IndexSpec::Parse("css:16"), keys);
  ASSERT_TRUE(index);
  auto probes = ProbesFor(keys, 30000, /*seed=*/31);
  ProbeOptions opts{.threads = 4, .min_shard = 1024, .pool = &pool};

  std::vector<PositionRange> first(probes.size());
  index.EqualRangeBatch(probes, first, opts);
  for (int run = 0; run < 10; ++run) {
    std::vector<PositionRange> again(probes.size());
    index.EqualRangeBatch(probes, again, opts);
    ASSERT_EQ(again, first) << "run " << run;
  }
}

}  // namespace
}  // namespace cssidx
