// CSS-trees over 8-byte keys: the §5 model's K parameter in practice.
// Correctness against oracles, including keys beyond 2^32, plus the
// structural consequences (half the keys per line, bigger directory).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace cssidx {
namespace {

std::vector<uint64_t> WideKeys(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint64_t> keys(n);
  uint64_t cur = 0x100000000ull;  // start above the 32-bit range
  for (size_t i = 0; i < n; ++i) {
    cur += 1 + rng.Below(1000);
    keys[i] = cur;
  }
  return keys;
}

template <typename TreeT>
void OracleCheck(const std::vector<uint64_t>& keys) {
  TreeT tree(keys);
  std::vector<uint64_t> probes;
  for (uint64_t k : keys) {
    probes.push_back(k);
    probes.push_back(k - 1);
    probes.push_back(k + 1);
  }
  probes.push_back(0);
  for (uint64_t k : probes) {
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
    ASSERT_EQ(tree.LowerBound(k), expected) << "k=" << k;
  }
}

TEST(CssTree64, FullTreeOracleSweep) {
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 100u, 1000u, 5000u}) {
    OracleCheck<FullCssTree64<8>>(WideKeys(n, 3 + n));
  }
}

TEST(CssTree64, LevelTreeOracleSweep) {
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 100u, 1000u, 5000u}) {
    OracleCheck<LevelCssTree64<8>>(WideKeys(n, 7 + n));
  }
}

TEST(CssTree64, KeysAboveUint32RangeWork) {
  std::vector<uint64_t> keys{1ull << 40, (1ull << 40) + 5, 1ull << 50,
                             0xffffffffffffff00ull};
  FullCssTree64<4> tree(keys);
  EXPECT_EQ(tree.Find(1ull << 50), 2);
  EXPECT_EQ(tree.Find((1ull << 50) + 1), kNotFound);
  EXPECT_EQ(tree.LowerBound(0xffffffffffffffffull), 4u);
}

TEST(CssTree64, DirectoryDoublesVersusNarrowKeys) {
  // Same node *byte* budget (64B): 16 narrow keys vs 8 wide keys. The wide
  // tree's branching halves, so its directory (in bytes) is larger for the
  // same n — the §5 space model's K dependence.
  size_t n = 100'000;
  std::vector<uint32_t> narrow(n);
  std::vector<uint64_t> wide(n);
  for (size_t i = 0; i < n; ++i) {
    narrow[i] = static_cast<uint32_t>(3 * i);
    wide[i] = 3 * i;
  }
  FullCssTree<16> t32(narrow);
  FullCssTree64<8> t64(wide);
  EXPECT_GT(t64.SpaceBytes(), 1.8 * static_cast<double>(t32.SpaceBytes()));
  // nK^2/sc with K=8, sc=64: n bytes. Within 25%.
  EXPECT_NEAR(static_cast<double>(t64.SpaceBytes()), static_cast<double>(n),
              0.25 * static_cast<double>(n));
}

TEST(CssTree64, DuplicatesLeftmost) {
  std::vector<uint64_t> keys;
  for (int run = 0; run < 30; ++run) {
    for (int i = 0; i < 6; ++i) {
      keys.push_back((1ull << 33) + static_cast<uint64_t>(run) * 10);
    }
  }
  FullCssTree64<8> tree(keys);
  for (int run = 0; run < 30; ++run) {
    uint64_t k = (1ull << 33) + static_cast<uint64_t>(run) * 10;
    EXPECT_EQ(tree.Find(k), run * 6);
    EXPECT_EQ(tree.CountEqual(k), 6u);
  }
}

}  // namespace
}  // namespace cssidx
