// Cross-method property suite: every ordered index in the suite, over every
// key distribution, node size on the menu, and a sweep of array sizes, must
// agree exactly with std::lower_bound / std::equal_range. This is the
// paper's implicit contract — all eight methods compute the same function,
// they only differ in time and space.

#include <algorithm>
#include <string>
#include <vector>

#include "core/builder.h"
#include "gtest/gtest.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx {
namespace {

enum class Distribution { kUniform, kLinear, kSkewed, kDuplicates, kClustered };

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kLinear:
      return "linear";
    case Distribution::kSkewed:
      return "skewed";
    case Distribution::kDuplicates:
      return "duplicates";
    case Distribution::kClustered:
      return "clustered";
  }
  return "?";
}

std::vector<Key> MakeKeys(Distribution d, size_t n, uint64_t seed) {
  switch (d) {
    case Distribution::kUniform:
      return workload::DistinctSortedKeys(n, seed, 4);
    case Distribution::kLinear:
      return workload::LinearKeys(n, 5, 3);
    case Distribution::kSkewed:
      return workload::SkewedKeys(n, seed);
    case Distribution::kDuplicates:
      return workload::KeysWithDuplicates(n, std::max<size_t>(1, n / 8),
                                          seed);
    case Distribution::kClustered:
      return workload::ClusteredKeys(n, std::max<size_t>(1, n / 100), seed);
  }
  return {};
}

struct Case {
  Method method;
  int node_entries;
  Distribution dist;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = MethodName(info.param.method);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_m" + std::to_string(info.param.node_entries) + "_" +
         DistributionName(info.param.dist);
}

class AllIndexesProperty : public ::testing::TestWithParam<Case> {};

TEST_P(AllIndexesProperty, AgreesWithStlOracles) {
  const Case& c = GetParam();
  BuildOptions opts;
  opts.node_entries = c.node_entries;
  opts.hash_dir_bits = 8;
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{5}, size_t{16},
                   size_t{17}, size_t{100}, size_t{257}, size_t{1000},
                   size_t{4096}, size_t{10000}}) {
    if (c.dist == Distribution::kClustered && n < 100) continue;
    auto keys = MakeKeys(c.dist, n, /*seed=*/n * 31 + 7);
    auto index = BuildIndex(c.method, keys, opts);
    ASSERT_NE(index, nullptr);
    ASSERT_EQ(index->size(), keys.size());

    std::vector<Key> probes;
    if (!keys.empty()) {
      probes = workload::MatchingLookups(keys, 200, n + 1);
      auto missing = workload::MissingLookups(keys, 100, n + 2);
      probes.insert(probes.end(), missing.begin(), missing.end());
      probes.push_back(keys.front());
      probes.push_back(keys.back());
      probes.push_back(keys.back() + 1);
    }
    probes.push_back(0);

    for (Key k : probes) {
      auto lo = std::lower_bound(keys.begin(), keys.end(), k);
      auto hi = std::upper_bound(keys.begin(), keys.end(), k);
      bool present = lo != keys.end() && *lo == k;
      int64_t expected_find =
          present ? static_cast<int64_t>(lo - keys.begin()) : kNotFound;
      ASSERT_EQ(index->Find(k), expected_find)
          << index->Name() << " n=" << n << " k=" << k;
      ASSERT_EQ(index->CountEqual(k), static_cast<size_t>(hi - lo))
          << index->Name() << " n=" << n << " k=" << k;
      if (index->SupportsOrderedAccess()) {
        ASSERT_EQ(index->LowerBound(k),
                  static_cast<size_t>(lo - keys.begin()))
            << index->Name() << " n=" << n << " k=" << k;
      }
    }
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  std::vector<Distribution> dists{Distribution::kUniform,
                                  Distribution::kLinear, Distribution::kSkewed,
                                  Distribution::kDuplicates,
                                  Distribution::kClustered};
  for (Distribution d : dists) {
    // Methods without a node-size knob: one case each.
    for (Method m : {Method::kBinarySearch, Method::kTreeBinarySearch,
                     Method::kInterpolation, Method::kHash}) {
      cases.push_back({m, 16, d});
    }
    // Node-sized methods: sweep the menu (level CSS: powers of two only).
    for (int entries : {4, 8, 16, 24, 32, 64, 128}) {
      cases.push_back({Method::kFullCss, entries, d});
      cases.push_back({Method::kTTree, entries, d});
      cases.push_back({Method::kBPlusTree, entries, d});
      if ((entries & (entries - 1)) == 0) {
        cases.push_back({Method::kLevelCss, entries, d});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllIndexesProperty,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace cssidx
