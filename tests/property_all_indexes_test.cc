// Cross-method property suite: every index in the suite, over every key
// distribution, node size on the menu, and a sweep of array sizes, must
// agree exactly with std::lower_bound / std::equal_range — scalar AND
// batched. This is the paper's implicit contract — all eight methods
// compute the same function, they only differ in time and space — extended
// to the batch probe API: FindBatch/LowerBoundBatch are required to be
// exactly a scalar loop, whatever group-probing and prefetching tricks an
// implementation plays underneath.

#include <algorithm>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/range.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx {
namespace {

enum class Distribution { kUniform, kLinear, kSkewed, kDuplicates, kClustered };

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kLinear:
      return "linear";
    case Distribution::kSkewed:
      return "skewed";
    case Distribution::kDuplicates:
      return "duplicates";
    case Distribution::kClustered:
      return "clustered";
  }
  return "?";
}

std::vector<Key> MakeKeys(Distribution d, size_t n, uint64_t seed) {
  switch (d) {
    case Distribution::kUniform:
      return workload::DistinctSortedKeys(n, seed, 4);
    case Distribution::kLinear:
      return workload::LinearKeys(n, 5, 3);
    case Distribution::kSkewed:
      return workload::SkewedKeys(n, seed);
    case Distribution::kDuplicates:
      return workload::KeysWithDuplicates(n, std::max<size_t>(1, n / 8),
                                          seed);
    case Distribution::kClustered:
      return workload::ClusteredKeys(n, std::max<size_t>(1, n / 100), seed);
  }
  return {};
}

struct Case {
  IndexSpec spec;
  Distribution dist;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.spec.ToString();
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_" + DistributionName(info.param.dist);
}

class AllIndexesProperty : public ::testing::TestWithParam<Case> {};

TEST_P(AllIndexesProperty, AgreesWithStlOracles) {
  const Case& c = GetParam();
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{5}, size_t{16},
                   size_t{17}, size_t{100}, size_t{257}, size_t{1000},
                   size_t{4096}, size_t{10000}}) {
    if (c.dist == Distribution::kClustered && n < 100) continue;
    auto keys = MakeKeys(c.dist, n, /*seed=*/n * 31 + 7);
    AnyIndex index = BuildIndex(c.spec, keys);
    ASSERT_TRUE(index);
    ASSERT_EQ(index.size(), keys.size());

    std::vector<Key> probes;
    if (!keys.empty()) {
      probes = workload::MatchingLookups(keys, 200, n + 1);
      auto missing = workload::MissingLookups(keys, 100, n + 2);
      probes.insert(probes.end(), missing.begin(), missing.end());
      probes.push_back(keys.front());
      probes.push_back(keys.back());
      probes.push_back(keys.back() + 1);
    }
    probes.push_back(0);

    for (Key k : probes) {
      auto lo = std::lower_bound(keys.begin(), keys.end(), k);
      auto hi = std::upper_bound(keys.begin(), keys.end(), k);
      bool present = lo != keys.end() && *lo == k;
      int64_t expected_find =
          present ? static_cast<int64_t>(lo - keys.begin()) : kNotFound;
      ASSERT_EQ(index.Find(k), expected_find)
          << index.Name() << " n=" << n << " k=" << k;
      ASSERT_EQ(index.CountEqual(k), static_cast<size_t>(hi - lo))
          << index.Name() << " n=" << n << " k=" << k;
      if (index.SupportsOrderedAccess()) {
        ASSERT_EQ(index.LowerBound(k),
                  static_cast<size_t>(lo - keys.begin()))
            << index.Name() << " n=" << n << " k=" << k;
      }
    }

    // Batch ≡ scalar, over the whole probe set at once (covers the group
    // kernels' full-group path, the remainder path, and batches of one).
    std::vector<int64_t> batch_find(probes.size());
    std::vector<size_t> batch_lower(probes.size());
    std::vector<PositionRange> batch_range(probes.size());
    std::vector<size_t> batch_count(probes.size());
    index.FindBatch(probes, batch_find);
    index.LowerBoundBatch(probes, batch_lower);
    index.EqualRangeBatch(probes, batch_range);
    index.CountEqualBatch(probes, batch_count);
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(batch_find[i], index.Find(probes[i]))
          << index.Name() << " n=" << n << " i=" << i;
      ASSERT_EQ(batch_lower[i], index.LowerBound(probes[i]))
          << index.Name() << " n=" << n << " i=" << i;
      ASSERT_EQ(batch_range[i], index.EqualRange(probes[i]))
          << index.Name() << " n=" << n << " i=" << i;
      ASSERT_EQ(batch_count[i], index.CountEqual(probes[i]))
          << index.Name() << " n=" << n << " i=" << i;
      // The span is the STL equal_range, modulo hash's size() anchor for
      // absent keys.
      auto lo = std::lower_bound(keys.begin(), keys.end(), probes[i]);
      auto hi = std::upper_bound(keys.begin(), keys.end(), probes[i]);
      PositionRange want{static_cast<size_t>(lo - keys.begin()),
                         static_cast<size_t>(hi - keys.begin())};
      if (!index.SupportsOrderedAccess() && want.empty()) {
        want = {keys.size(), keys.size()};
      }
      ASSERT_EQ(batch_range[i], want)
          << index.Name() << " n=" << n << " i=" << i;
    }

    // Random [lo, hi) bound pairs — inverted and empty included — staged
    // through the batched LowerBound kernel, as the engine stages
    // SelectRange bounds.
    if (index.SupportsOrderedAccess() && !keys.empty()) {
      std::vector<Key> bounds;
      for (size_t b = 0; b + 1 < probes.size(); b += 2) {
        bounds.push_back(probes[b]);
        bounds.push_back(probes[b + 1]);
      }
      std::vector<size_t> pos(bounds.size());
      index.LowerBoundBatch(bounds, pos);
      for (size_t b = 0; b + 1 < bounds.size(); b += 2) {
        Key lo_key = bounds[b];
        Key hi_key = bounds[b + 1];
        size_t want_begin = static_cast<size_t>(
            std::lower_bound(keys.begin(), keys.end(), lo_key) -
            keys.begin());
        size_t want_end =
            hi_key <= lo_key
                ? want_begin
                : static_cast<size_t>(std::lower_bound(keys.begin(),
                                                       keys.end(), hi_key) -
                                      keys.begin());
        size_t got_end = hi_key <= lo_key ? pos[b] : pos[b + 1];
        ASSERT_EQ((PositionRange{pos[b], got_end}),
                  (PositionRange{want_begin, want_end}))
            << index.Name() << " n=" << n << " lo=" << lo_key
            << " hi=" << hi_key;
      }
    }
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  std::vector<Distribution> dists{Distribution::kUniform,
                                  Distribution::kLinear, Distribution::kSkewed,
                                  Distribution::kDuplicates,
                                  Distribution::kClustered};
  for (Distribution d : dists) {
    // The shared menu: node-size sweep for the sized methods plus the
    // partitioned composites, so part:K specs face every distribution.
    for (const IndexSpec& spec : test_menu::MenuSpecs(16, 8)) {
      cases.push_back({spec, d});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllIndexesProperty,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace cssidx
