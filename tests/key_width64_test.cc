#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/builder.h"
#include "core/index.h"
#include "core/maintained_index.h"
#include "core/simd_node_search.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"
#include "workload/batch_update.h"

// The 64-bit differential suite: every wide-key spec on the menu
// (including part:K composites and @tN probe sharding), probed with a key
// distribution built to trip 32-bit leftovers — values straddling 2^32,
// values with the sign bit set (the AVX2 uint64 kernel compares through a
// 2^63 XOR bias), and the exact top of the key space — checked
// bit-identically against the STL oracle on every node-search path the
// machine has, scalar included.

namespace cssidx {
namespace {

constexpr uint64_t kMax64 = std::numeric_limits<uint64_t>::max();

/// Sorted keys (duplicates kept) mixing four adversarial bands: small
/// dup-heavy values, a band straddling 2^32, full-range values, and
/// values with bit 63 set. The exact sentinels 0, 2^32-1, 2^32, and
/// 2^64-1 are always present.
std::vector<uint64_t> WideKeys(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    switch (rng.Below(4)) {
      case 0:
        k = rng.Below(500);
        break;
      case 1:
        k = (uint64_t{1} << 32) - 250 + rng.Below(500);
        break;
      case 2:
        k = rng.Next64() >> 1;  // bit 63 clear
        break;
      default:
        k = (uint64_t{1} << 63) | rng.Next64();
        break;
    }
  }
  keys.push_back(0);
  keys.push_back((uint64_t{1} << 32) - 1);
  keys.push_back(uint64_t{1} << 32);
  keys.push_back(kMax64);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Probe mix: present keys, their off-by-one neighbors (absent more often
/// than not), and the sentinels again.
std::vector<uint64_t> WideProbes(const std::vector<uint64_t>& keys,
                                 size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint64_t> probes(n);
  for (auto& p : probes) {
    const uint64_t k = keys[rng.Below(static_cast<uint32_t>(keys.size()))];
    switch (rng.Below(4)) {
      case 0:
        p = k;
        break;
      case 1:
        p = k == kMax64 ? k : k + 1;
        break;
      case 2:
        p = k == 0 ? k : k - 1;
        break;
      default:
        p = rng.Next64();
        break;
    }
  }
  probes.push_back(kMax64);
  probes.push_back(0);
  probes.push_back(uint64_t{1} << 32);
  return probes;
}

size_t OracleLowerBound(const std::vector<uint64_t>& keys, uint64_t k) {
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
}

size_t OracleCount(const std::vector<uint64_t>& keys, uint64_t k) {
  return static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), k) -
      std::lower_bound(keys.begin(), keys.end(), k));
}

/// Node-search paths this machine can actually run, scalar first — so
/// one test run covers SIMD-vs-forced-scalar agreement in process.
std::vector<NodeSearchPath> AvailablePaths() {
  std::vector<NodeSearchPath> paths;
  for (NodeSearchPath p : {NodeSearchPath::kScalar, NodeSearchPath::kSse2,
                           NodeSearchPath::kAvx2}) {
    if (SetNodeSearchPath(p) == p) paths.push_back(p);
  }
  SetNodeSearchPath(DetectedNodeSearchPath());
  return paths;
}

TEST(KeyWidth64, EveryWideSpecMatchesTheStlOracleOnEveryPath) {
  const std::vector<uint64_t> keys = WideKeys(4'000, 0x64a);
  const std::vector<uint64_t> probes = WideProbes(keys, 2'000, 0x64b);
  for (NodeSearchPath path : AvailablePaths()) {
    SetNodeSearchPath(path);
    for (const IndexSpec& spec : test_menu::DefaultSpecs64(16, 10)) {
      SCOPED_TRACE(std::string(NodeSearchPathName(path)) + " " +
                   spec.ToString());
      AnyIndex64 index = BuildIndex64(spec, keys);
      ASSERT_TRUE(static_cast<bool>(index));

      std::vector<int64_t> found(probes.size());
      std::vector<size_t> lbs(probes.size());
      std::vector<size_t> counts(probes.size());
      std::vector<PositionRange> runs(probes.size());
      index.FindBatch(probes, found);
      index.LowerBoundBatch(probes, lbs);
      index.CountEqualBatch(probes, counts);
      index.EqualRangeBatch(probes, runs);
      for (size_t i = 0; i < probes.size(); ++i) {
        const size_t lb = OracleLowerBound(keys, probes[i]);
        const size_t count = OracleCount(keys, probes[i]);
        ASSERT_EQ(lbs[i], lb) << "probe " << probes[i];
        ASSERT_EQ(counts[i], count) << "probe " << probes[i];
        ASSERT_EQ(found[i], count > 0 ? static_cast<int64_t>(lb) : -1)
            << "probe " << probes[i];
        ASSERT_EQ(runs[i].begin, count > 0 ? lb : runs[i].end)
            << "probe " << probes[i];
        ASSERT_EQ(runs[i].end - runs[i].begin, count)
            << "probe " << probes[i];
      }

      // The "@tN" sharded probe path must agree with the inline path.
      std::vector<size_t> sharded(probes.size());
      index.LowerBoundBatch(probes, sharded, ProbeOptions{.threads = 2});
      ASSERT_EQ(sharded, lbs);
    }
  }
  SetNodeSearchPath(DetectedNodeSearchPath());
}

TEST(KeyWidth64, WidthMismatchedBuildsAreFalsy) {
  // Key width is a spec dimension: an entry point only accepts specs of
  // its own width, so "css:16" through BuildIndex64 (and "css64:16"
  // through BuildIndex) is off the menu, not a silent reinterpretation.
  const std::vector<uint64_t> wide{1, 2, 3};
  const std::vector<uint32_t> narrow{1, 2, 3};
  const IndexSpec spec32 = *IndexSpec::Parse("css:16");
  const IndexSpec spec64 = *IndexSpec::Parse("css64:16");
  EXPECT_FALSE(static_cast<bool>(BuildIndex64(spec32, wide)));
  EXPECT_FALSE(static_cast<bool>(BuildIndex(spec64, narrow)));
  EXPECT_TRUE(static_cast<bool>(BuildIndex64(spec64, wide)));
  EXPECT_TRUE(static_cast<bool>(BuildIndex(spec32, narrow)));
  EXPECT_FALSE(MaintainedIndex64(spec32, {1, 2, 3}).ok());
  EXPECT_TRUE(MaintainedIndex64(spec64, {1, 2, 3}).ok());
  // No 64-bit hash build exists to mismatch against.
  EXPECT_FALSE(IndexSpec::Parse("hash64:10").has_value());
}

TEST(KeyWidth64, MaintainedCyclesMatchTheOracleAtEveryVersion) {
  // The serving-layer lifecycle at width 8: batches of inserts/deletes
  // (max-key churn included) applied through BasicMaintainedIndex
  // <uint64_t>, each published version compared key-for-key against the
  // serial workload::ApplyBatch oracle, plus probes at the top of the
  // key space — where a 32-bit sentinel or fence would fold.
  for (const IndexSpec& spec : test_menu::DefaultSpecs64(16, 10)) {
    SCOPED_TRACE(spec.ToString());
    std::vector<uint64_t> oracle = WideKeys(600, 0x64c);
    MaintainedIndex64 maintained(spec, oracle);
    ASSERT_TRUE(maintained.ok());
    Pcg32 rng(0x64d);
    for (int cycle = 0; cycle < 5; ++cycle) {
      workload::UpdateBatch64 batch;
      batch.inserts.resize(20);
      for (auto& k : batch.inserts) {
        k = rng.Below(2) ? rng.Next64() : kMax64 - rng.Below(3);
      }
      batch.deletes.resize(15);
      for (auto& k : batch.deletes) {
        k = oracle.empty()
                ? rng.Next64()
                : oracle[rng.Below(static_cast<uint32_t>(oracle.size()))];
      }
      maintained.ApplyBatch(batch);
      oracle = workload::ApplyBatch(oracle, batch);
      auto snap = maintained.Snapshot();
      ASSERT_EQ(snap->keys(), oracle) << "cycle " << cycle;
      for (uint64_t probe : {kMax64, kMax64 - 1, uint64_t{1} << 32}) {
        ASSERT_EQ(maintained.CountEqual(probe), OracleCount(oracle, probe))
            << "cycle " << cycle << " probe " << probe;
        ASSERT_EQ(maintained.LowerBound(probe),
                  OracleLowerBound(oracle, probe))
            << "cycle " << cycle << " probe " << probe;
      }
    }
  }
}

TEST(KeyWidth64, EmptyTrailingShardsNeverCaptureMaxKeyProbes) {
  // The fence regression, probed at the max key of BOTH widths: with
  // more shards than distinct keys, trailing shards are empty, and the
  // old all-ones fence sentinel (1<<32 as uint64) made an empty shard
  // compare above every 32-bit key — at width 8 the same trick has no
  // representable sentinel at all. The truncated-fence representation
  // stores no fence for trailing empty shards, so the max key must
  // route to the last NON-empty shard at either width.
  const std::vector<uint32_t> narrow{1, 2, 3, std::numeric_limits<uint32_t>::max()};
  const std::vector<uint64_t> wide{1, 2, 3, kMax64};
  for (int shards : {2, 8, 16}) {
    SCOPED_TRACE(shards);
    const IndexSpec spec32 =
        IndexSpec::Parse("css:16")->WithPartitions(shards);
    const IndexSpec spec64 =
        IndexSpec::Parse("css64:16")->WithPartitions(shards);
    AnyIndex index32 = BuildIndex(spec32, narrow);
    AnyIndex64 index64 = BuildIndex64(spec64, wide);
    ASSERT_TRUE(static_cast<bool>(index32));
    ASSERT_TRUE(static_cast<bool>(index64));
    EXPECT_EQ(index32.Find(narrow.back()), 3);
    EXPECT_EQ(index32.CountEqual(narrow.back()), 1u);
    EXPECT_EQ(index32.LowerBound(narrow.back() - 1), 3u);
    EXPECT_EQ(index64.Find(kMax64), 3);
    EXPECT_EQ(index64.CountEqual(kMax64), 1u);
    EXPECT_EQ(index64.LowerBound(kMax64 - 1), 3u);
  }
}

}  // namespace
}  // namespace cssidx
