// The layout arithmetic of Lemma 4.1, checked against the paper's worked
// example (Figure 3) and structural invariants over a wide sweep.

#include "core/css_layout.h"

#include "gtest/gtest.h"

namespace cssidx {
namespace {

TEST(CssLayout, PaperFigure3Example) {
  // m = 4 (stride), fanout 5, 65 leaves * 4 keys = 260 elements.
  auto l = CssLayout::Compute(260, 4, 5);
  EXPECT_EQ(l.num_leaves, 65u);
  EXPECT_EQ(l.levels, 3);            // k = ceil(log5 65) = 3
  EXPECT_EQ(l.mark, 31u);            // first deepest-level leaf = node 31
  EXPECT_EQ(l.internal_nodes, 16u);  // nodes 0..15 internal
  EXPECT_EQ(l.shallow_leaves, 15u);  // nodes 16..30
  EXPECT_EQ(l.deep_leaves, 50u);     // nodes 31..80
  EXPECT_EQ(l.deep_end, 200u);       // 50 deep leaves * 4 keys
}

TEST(CssLayout, Figure3LeafMapping) {
  auto l = CssLayout::Compute(260, 4, 5);
  // Deep leaves start at the front of the array...
  EXPECT_EQ(l.LeafArrayPos(31), 0);
  EXPECT_EQ(l.LeafArrayPos(32), 4);
  EXPECT_EQ(l.LeafArrayPos(80), 196);
  // ...and shallow leaves cover the back (region switch).
  EXPECT_EQ(l.LeafArrayPos(16), 200);
  EXPECT_EQ(l.LeafArrayPos(30), 256);
}

TEST(CssLayout, SingleLeaf) {
  auto l = CssLayout::Compute(3, 4, 5);
  EXPECT_EQ(l.num_leaves, 1u);
  EXPECT_EQ(l.levels, 0);
  EXPECT_EQ(l.internal_nodes, 0u);
  EXPECT_EQ(l.deep_leaves, 1u);
  EXPECT_EQ(l.shallow_leaves, 0u);
  EXPECT_EQ(l.LeafArrayPos(0), 0);
}

TEST(CssLayout, EmptyArray) {
  auto l = CssLayout::Compute(0, 16, 17);
  EXPECT_EQ(l.num_leaves, 0u);
  EXPECT_EQ(l.internal_nodes, 0u);
  EXPECT_EQ(l.DirectorySlots(), 0u);
}

TEST(CssLayout, ExactPowerHasNoShallowLeaves) {
  // B = fanout^k exactly: every leaf is at the deepest level.
  auto l = CssLayout::Compute(5 * 5 * 5 * 4, 4, 5);  // 125 leaves of 4
  EXPECT_EQ(l.num_leaves, 125u);
  EXPECT_EQ(l.shallow_leaves, 0u);
  EXPECT_EQ(l.deep_leaves, 125u);
  EXPECT_EQ(l.internal_nodes, l.mark);
}

struct SweepCase {
  int stride;
  int fanout;
};

class CssLayoutSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CssLayoutSweep, StructuralInvariants) {
  auto [stride, fanout] = GetParam();
  for (size_t n = 1; n <= 3000; ++n) {
    auto l = CssLayout::Compute(n, stride, fanout);
    ASSERT_EQ(l.shallow_leaves + l.deep_leaves, l.num_leaves);
    ASSERT_EQ(l.internal_nodes + l.shallow_leaves, l.mark);
    ASSERT_GE(l.deep_leaves, 1u);
    // Deep leaves cover [0, deep_end); shallow leaves cover
    // [n - S*stride, n). When n is not a multiple of the stride the two
    // regions overlap by exactly the padding (B*stride - n), which is
    // benign: ranges stay sorted and routing entries use the same mapping.
    ASSERT_LE(l.deep_end, n);
    if (l.shallow_leaves > 0) {
      uint64_t pad = l.num_leaves * stride - n;
      ASSERT_LT(pad, static_cast<uint64_t>(stride));
      ASSERT_EQ(l.LeafArrayPos(l.internal_nodes),
                static_cast<int64_t>(l.deep_end - pad));
      ASSERT_LT(l.LeafArrayPos(l.mark - 1), static_cast<int64_t>(n));
    }
    // The deepest leaf level starts at array position 0.
    ASSERT_EQ(l.LeafArrayPos(l.mark), 0);
    // Every internal node's child range stays within the node universe.
    if (l.internal_nodes > 0) {
      uint64_t last_child =
          (l.internal_nodes - 1) * fanout + static_cast<uint64_t>(fanout);
      ASSERT_GE(last_child, l.mark);  // last internal reaches the leaf level
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CssLayoutSweep,
                         ::testing::Values(SweepCase{2, 3}, SweepCase{2, 2},
                                           SweepCase{4, 5}, SweepCase{4, 4},
                                           SweepCase{8, 9}, SweepCase{8, 8},
                                           SweepCase{16, 17},
                                           SweepCase{16, 16},
                                           SweepCase{24, 25},
                                           SweepCase{32, 33}));

}  // namespace
}  // namespace cssidx
