// Correctness of full and level CSS-trees (§4) against STL oracles.
//
// The layout math (marks, shallow/deep regions, dangling-entry clamps) is
// easy to get subtly wrong for array sizes that are not powers of the
// branching factor, so these tests sweep *every* n in a contiguous range
// for several node sizes, plus targeted boundary shapes.

#include "core/css_tree.h"

#include <algorithm>
#include <vector>

#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

template <typename TreeT>
void CheckAgainstOracle(const std::vector<Key>& keys) {
  TreeT tree(keys);
  ASSERT_EQ(tree.size(), keys.size());
  // Probe every present key, every present key +/- 1, below-min and
  // above-max.
  std::vector<Key> probes;
  for (Key k : keys) {
    probes.push_back(k);
    if (k > 0) probes.push_back(k - 1);
    probes.push_back(k + 1);
  }
  probes.push_back(0);
  if (!keys.empty()) probes.push_back(keys.back() + 100);
  for (Key k : probes) {
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
    ASSERT_EQ(tree.LowerBound(k), expected)
        << "n=" << keys.size() << " key=" << k;
    bool present = expected < keys.size() && keys[expected] == k;
    ASSERT_EQ(tree.Find(k),
              present ? static_cast<int64_t>(expected) : kNotFound)
        << "n=" << keys.size() << " key=" << k;
  }
}

template <typename TreeT>
void SweepSizes(int max_n) {
  for (int n = 0; n <= max_n; ++n) {
    auto keys = workload::DistinctSortedKeys(static_cast<size_t>(n),
                                             /*seed=*/42 + n, /*mean_gap=*/3);
    CheckAgainstOracle<TreeT>(keys);
  }
}

TEST(FullCssTree, ExhaustiveSmallSizesM2) { SweepSizes<FullCssTree<2>>(300); }
TEST(FullCssTree, ExhaustiveSmallSizesM3) { SweepSizes<FullCssTree<3>>(300); }
TEST(FullCssTree, ExhaustiveSmallSizesM4) { SweepSizes<FullCssTree<4>>(400); }
TEST(FullCssTree, ExhaustiveSmallSizesM5) { SweepSizes<FullCssTree<5>>(400); }
TEST(FullCssTree, ExhaustiveSmallSizesM8) { SweepSizes<FullCssTree<8>>(800); }
TEST(FullCssTree, ExhaustiveSmallSizesM16) {
  SweepSizes<FullCssTree<16>>(900);
}

TEST(LevelCssTree, ExhaustiveSmallSizesM2) { SweepSizes<LevelCssTree<2>>(300); }
TEST(LevelCssTree, ExhaustiveSmallSizesM4) { SweepSizes<LevelCssTree<4>>(400); }
TEST(LevelCssTree, ExhaustiveSmallSizesM8) { SweepSizes<LevelCssTree<8>>(800); }
TEST(LevelCssTree, ExhaustiveSmallSizesM16) {
  SweepSizes<LevelCssTree<16>>(900);
}

// Sizes around exact powers of the branching factor are where the
// shallow/deep split degenerates (S = 0 or D minimal).
template <typename TreeT, int Fanout, int Stride>
void PowerBoundarySweep() {
  for (int k = 1; k <= 4; ++k) {
    int64_t leaves = 1;
    for (int i = 0; i < k; ++i) leaves *= Fanout;
    for (int64_t delta = -Stride - 1; delta <= Stride + 1; ++delta) {
      int64_t n = leaves * Stride + delta;
      if (n < 0) continue;
      auto keys = workload::DistinctSortedKeys(static_cast<size_t>(n),
                                               /*seed=*/7, /*mean_gap=*/2);
      CheckAgainstOracle<TreeT>(keys);
    }
  }
}

TEST(FullCssTree, PowerOfFanoutBoundaries) {
  PowerBoundarySweep<FullCssTree<4>, 5, 4>();
}
TEST(LevelCssTree, PowerOfFanoutBoundaries) {
  PowerBoundarySweep<LevelCssTree<4>, 4, 4>();
}

TEST(FullCssTree, MediumRandomArray) {
  auto keys = workload::DistinctSortedKeys(200'000, 11, 5);
  CheckAgainstOracle<FullCssTree<16>>(
      std::vector<Key>(keys.begin(), keys.begin() + 100'000));
}

TEST(LevelCssTree, MediumRandomArray) {
  auto keys = workload::DistinctSortedKeys(100'000, 12, 5);
  CheckAgainstOracle<LevelCssTree<16>>(keys);
}

TEST(FullCssTree, LargeNodes) {
  auto keys = workload::DistinctSortedKeys(50'000, 13, 4);
  CheckAgainstOracle<FullCssTree<64>>(keys);
  CheckAgainstOracle<FullCssTree<128>>(keys);
}

TEST(FullCssTree, NonPowerOfTwoNodes) {
  auto keys = workload::DistinctSortedKeys(50'000, 14, 4);
  CheckAgainstOracle<FullCssTree<24>>(keys);
}

TEST(CssTree, DuplicatesReturnLeftmost) {
  for (size_t distinct : {1u, 2u, 7u, 40u}) {
    auto keys = workload::KeysWithDuplicates(500, distinct, 99);
    FullCssTree<4> full(keys);
    LevelCssTree<4> level(keys);
    for (Key k : keys) {
      auto expected = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
      EXPECT_EQ(full.LowerBound(k), expected);
      EXPECT_EQ(level.LowerBound(k), expected);
      EXPECT_EQ(full.Find(k), static_cast<int64_t>(expected));
      EXPECT_EQ(level.Find(k), static_cast<int64_t>(expected));
    }
  }
}

TEST(CssTree, CountEqualMatchesEqualRange) {
  auto keys = workload::KeysWithDuplicates(1000, 60, 5);
  FullCssTree<8> tree(keys);
  for (Key k : keys) {
    auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
    EXPECT_EQ(tree.CountEqual(k), static_cast<size_t>(hi - lo));
  }
  EXPECT_EQ(tree.CountEqual(keys.back() + 1000), 0u);
}

TEST(CssTree, EmptyArray) {
  std::vector<Key> empty;
  FullCssTree<16> full(empty);
  LevelCssTree<16> level(empty);
  EXPECT_EQ(full.LowerBound(5), 0u);
  EXPECT_EQ(level.LowerBound(5), 0u);
  EXPECT_EQ(full.Find(5), kNotFound);
  EXPECT_EQ(level.Find(5), kNotFound);
  EXPECT_EQ(full.SpaceBytes(), 0u);
}

TEST(CssTree, SingleElement) {
  std::vector<Key> one{42};
  FullCssTree<16> tree(one);
  EXPECT_EQ(tree.Find(42), 0);
  EXPECT_EQ(tree.Find(41), kNotFound);
  EXPECT_EQ(tree.LowerBound(43), 1u);
  EXPECT_EQ(tree.LowerBound(0), 0u);
}

TEST(CssTree, SpaceMatchesLayout) {
  auto keys = workload::DistinctSortedKeys(100'000, 3, 4);
  FullCssTree<16> full(keys);
  EXPECT_EQ(full.SpaceBytes(),
            full.layout().internal_nodes * 16 * sizeof(Key));
  // Directory ~ n*K/m for full trees: within 20% of the analytic value.
  double expected = 100'000.0 * 4 / 16;
  EXPECT_NEAR(static_cast<double>(full.SpaceBytes()), expected,
              expected * 0.2);

  LevelCssTree<16> level(keys);
  // Level tree stores 15 useful keys per 16-slot node: more space.
  EXPECT_GT(level.SpaceBytes(), full.SpaceBytes());
}

TEST(CssTree, MisalignedDirectoryStillCorrect) {
  // The alignment ablation deliberately shifts the directory off the
  // cache-line boundary; results must be unaffected (only speed changes).
  auto keys = workload::DistinctSortedKeys(10'000, 21, 4);
  FullCssTree<16> aligned(keys.data(), keys.size());
  FullCssTree<16> shifted(keys.data(), keys.size(), /*misalign_offset=*/20);
  for (Key k : keys) {
    ASSERT_EQ(shifted.LowerBound(k), aligned.LowerBound(k));
  }
  EXPECT_EQ(shifted.Find(keys[777]), 777);
}

TEST(CssTree, MaxKeyBoundary) {
  // Keys at the top of the 32-bit range must not overflow probing.
  std::vector<Key> keys;
  for (uint32_t i = 0; i < 100; ++i) {
    keys.push_back(0xffffff00u + i);
  }
  FullCssTree<4> tree(keys);
  EXPECT_EQ(tree.Find(0xffffff00u), 0);
  EXPECT_EQ(tree.Find(0xffffff63u), 99);
  EXPECT_EQ(tree.LowerBound(0xffffffffu), 100u);
}

}  // namespace
}  // namespace cssidx
