#include "baselines/binary_search.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

TEST(BinarySearch, OracleSweep) {
  for (size_t n = 0; n <= 400; ++n) {
    auto keys = workload::DistinctSortedKeys(n, 17 + n, 3);
    BinarySearchIndex index(keys);
    for (Key k = 0; k <= (n ? keys.back() + 2 : 2); ++k) {
      auto expected = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
      ASSERT_EQ(index.LowerBound(k), expected) << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinarySearch, FindSemantics) {
  auto keys = workload::DistinctSortedKeys(1000, 4, 4);
  BinarySearchIndex index(keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(index.Find(keys[i]), static_cast<int64_t>(i));
  }
  EXPECT_EQ(index.Find(0), kNotFound);
  EXPECT_EQ(index.Find(keys.back() + 1), kNotFound);
}

TEST(BinarySearch, Duplicates) {
  auto keys = workload::KeysWithDuplicates(2000, 80, 3);
  BinarySearchIndex index(keys);
  for (Key k : keys) {
    auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
    EXPECT_EQ(index.Find(k), lo - keys.begin());
    EXPECT_EQ(index.CountEqual(k), static_cast<size_t>(hi - lo));
  }
}

TEST(BinarySearch, ZeroSpace) {
  auto keys = workload::DistinctSortedKeys(100, 1, 4);
  EXPECT_EQ(BinarySearchIndex(keys).SpaceBytes(), 0u);
}

TEST(BinarySearch, EmptyAndTiny) {
  std::vector<Key> empty;
  BinarySearchIndex e(empty);
  EXPECT_EQ(e.LowerBound(7), 0u);
  EXPECT_EQ(e.Find(7), kNotFound);

  std::vector<Key> one{5};
  BinarySearchIndex o(one);
  EXPECT_EQ(o.Find(5), 0);
  EXPECT_EQ(o.LowerBound(6), 1u);
}

TEST(BinarySearch, SequentialTailRegion) {
  // Arrays of size 1..6 exercise the sub-5 sequential scan exclusively.
  for (size_t n = 1; n <= 6; ++n) {
    std::vector<Key> keys;
    for (size_t i = 0; i < n; ++i) keys.push_back(10 * (1 + (Key)i));
    BinarySearchIndex index(keys);
    for (Key k = 0; k <= keys.back() + 5; ++k) {
      auto expected = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
      ASSERT_EQ(index.LowerBound(k), expected);
    }
  }
}

}  // namespace
}  // namespace cssidx
