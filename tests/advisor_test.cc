#include "advisor/advisor.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/maintained_index.h"
#include "core/probe_stats.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/timer.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

// The advisor suite: the collector's view of the probe funnel, the model's
// structural sanity, and the load-bearing property — on three generated
// workload mixes (uniform point, Zipf point+range, update-heavy), the
// advisor's pick is never >25% slower than the measured best spec from the
// shared test menu. Timing assertions are skipped under sanitizers, whose
// instrumentation distorts methods non-uniformly; the plumbing still runs.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CSSIDX_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CSSIDX_SANITIZED 1
#endif
#endif
#ifndef CSSIDX_SANITIZED
#define CSSIDX_SANITIZED 0
#endif

namespace cssidx {
namespace {

volatile uint64_t g_test_sink = 0;

// ------------------------------------------------------- stats collection

TEST(ProbeStats, CollectorSeesEveryProbeKindThroughTheFunnel) {
  auto keys = workload::DistinctSortedKeys(10'000, 7, 4);
  AnyIndex index = BuildIndex(IndexSpec(), keys);
  ASSERT_TRUE(static_cast<bool>(index));
  auto collector = std::make_shared<ProbeStatsCollector>();
  index.AttachStats(collector);

  // 50% hits in one 256-probe batch, then ranges and lower bounds.
  auto mixed = workload::MixedLookups(keys, 256, 0.5, 11);
  std::vector<int64_t> out(mixed.size());
  index.FindBatch(mixed, out);
  std::vector<PositionRange> ranges(64);
  index.EqualRangeBatch(std::span<const Key>(mixed.data(), 64), ranges);
  std::vector<size_t> bounds(32);
  index.LowerBoundBatch(std::span<const Key>(mixed.data(), 32),
                        std::span<size_t>(bounds));

  WorkloadProfile p = collector->Profile();
  EXPECT_EQ(p.point_probes, 256u);
  EXPECT_EQ(p.range_probes, 64u);
  EXPECT_EQ(p.lower_bound_probes, 32u);
  EXPECT_EQ(p.probe_batches, 3u);
  EXPECT_EQ(p.TotalProbes(), 256u + 64u + 32u);
  // Half the Find probes and ~half the EqualRange probes missed.
  EXPECT_GT(p.misses, 100u);
  EXPECT_GT(p.HitFraction(), 0.3);
  EXPECT_LT(p.HitFraction(), 0.7);
  // One batch of 256 lands in log2 bucket 8.
  EXPECT_EQ(p.batch_hist[8], 1u);
  EXPECT_NEAR(p.RangeFraction(), 64.0 / 352.0, 1e-9);

  collector->Reset();
  EXPECT_EQ(collector->Profile().TotalProbes(), 0u);
  EXPECT_DOUBLE_EQ(collector->Profile().HitFraction(), 1.0);
}

TEST(ProbeStats, ScalarProbesLandInBucketZero) {
  auto keys = workload::DistinctSortedKeys(1'000, 3, 4);
  AnyIndex index = BuildIndex(IndexSpec(), keys);
  auto collector = std::make_shared<ProbeStatsCollector>();
  index.AttachStats(collector);
  for (int i = 0; i < 10; ++i) {
    g_test_sink = g_test_sink + static_cast<uint64_t>(index.Find(keys[i]));
  }
  WorkloadProfile p = collector->Profile();
  EXPECT_EQ(p.point_probes, 10u);
  EXPECT_EQ(p.batch_hist[0], 10u);
  EXPECT_DOUBLE_EQ(p.MeanBatch(), 1.0);
}

TEST(ProbeStats, MaintainedIndexAccumulatesAcrossVersionsAndSwaps) {
  auto keys = workload::DistinctSortedKeys(20'000, 5, 4);
  MaintainedIndex mi(IndexSpec(), keys);
  ASSERT_TRUE(mi.ok());
  auto collector = mi.EnableStats();
  ASSERT_NE(collector, nullptr);
  EXPECT_EQ(mi.EnableStats(), collector);  // idempotent

  std::vector<int64_t> out(128);
  auto probes = workload::MatchingLookups(keys, 128, 9);
  mi.FindBatch(probes, out);

  // A maintenance batch: delete a narrow window, insert replacements.
  std::vector<Key> window(keys.begin() + 1000, keys.begin() + 1200);
  mi.ApplySortedBatch(/*sorted_inserts=*/window, /*sorted_deletes=*/window);
  WorkloadProfile p = collector->Profile();
  EXPECT_EQ(p.update_batches, 1u);
  EXPECT_EQ(p.keys_inserted, 200u);
  EXPECT_EQ(p.keys_deleted, 200u);
  EXPECT_GT(p.MeanUpdateSpanFraction(), 0.0);
  EXPECT_LT(p.MeanUpdateSpanFraction(), 0.25);  // the window is narrow

  // Hot-swap the spec; the same collector keeps observing the new version.
  uint64_t seq = mi.sequence();
  ASSERT_TRUE(mi.RebuildWithSpec(*IndexSpec::Parse("btree:32")));
  EXPECT_EQ(mi.sequence(), seq + 1);
  EXPECT_EQ(mi.stats().spec_swaps, 1u);
  EXPECT_EQ(mi.Snapshot()->index().Name(), std::string("B+-tree/m=32"));
  mi.FindBatch(probes, out);
  EXPECT_EQ(collector->Profile().point_probes, 256u);

  // Off-menu and unbuildable specs are refused without publishing.
  seq = mi.sequence();
  EXPECT_FALSE(mi.RebuildWithSpec(IndexSpec().WithNodeEntries(5)));
  EXPECT_EQ(mi.sequence(), seq);
  EXPECT_EQ(mi.stats().spec_swaps, 1u);
}

// ----------------------------------------------------------- model sanity

TEST(Advisor, MenuRespectsWidthAndOrderingConstraints) {
  advisor::AdvisorOptions opts;
  for (const IndexSpec& spec : advisor::CandidateMenu(opts)) {
    EXPECT_TRUE(spec.OnMenu()) << spec.ToString();
    EXPECT_EQ(spec.key_width(), 4) << spec.ToString();
  }

  opts.need_ordered_access = true;
  // need_ordered_access filters at Advise time, not menu time — the menu
  // itself only drops hash when the width rules it out.
  opts.key_width = 8;
  for (const IndexSpec& spec : advisor::CandidateMenu(opts)) {
    EXPECT_EQ(spec.key_width(), 8) << spec.ToString();
    EXPECT_NE(spec.method(), Method::kHash) << spec.ToString();
  }
}

TEST(Advisor, OrderedWorkloadsNeverGetHash) {
  WorkloadProfile profile;
  profile.point_probes = 1'000'000;
  profile.lower_bound_probes = 1;  // one ordered probe is enough
  profile.probe_batches = 4'000;
  profile.batch_hist[8] = 4'000;
  advisor::AdvisorOptions opts;
  auto rec = advisor::Advise(profile, 1'000'000, opts);
  ASSERT_TRUE(rec.ok) << rec.error;
  for (const auto& scored : rec.ranked) {
    EXPECT_TRUE(scored.spec.ordered()) << scored.spec.ToString();
  }
}

TEST(Advisor, ProbeOnlyWorkloadsKeepCompositesOffTheMenu) {
  WorkloadProfile profile;
  profile.point_probes = 1'000'000;
  profile.probe_batches = 4'000;
  profile.batch_hist[8] = 4'000;
  advisor::AdvisorOptions opts;
  auto rec = advisor::Advise(profile, 1'000'000, opts);
  ASSERT_TRUE(rec.ok) << rec.error;
  for (const auto& scored : rec.ranked) {
    EXPECT_FALSE(scored.spec.partitioned()) << scored.spec.ToString();
  }
}

TEST(Advisor, UpdateHeavyLocalizedWorkloadPrefersShardedMaintenance) {
  WorkloadProfile profile;
  profile.point_probes = 100'000;
  profile.probe_batches = 400;
  profile.batch_hist[8] = 400;
  profile.update_batches = 50;
  profile.keys_inserted = 50'000;
  profile.keys_deleted = 50'000;
  profile.update_span_millionths = 50 * 20'000;  // 2% span per batch
  advisor::AdvisorOptions opts;
  auto rec = advisor::Advise(profile, 2'000'000, opts);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_TRUE(rec.spec.partitioned()) << rec.spec.ToString();

  // The same traffic with no updates prefers the bare structure.
  profile.update_batches = 0;
  profile.keys_inserted = 0;
  profile.keys_deleted = 0;
  profile.update_span_millionths = 0;
  rec = advisor::Advise(profile, 2'000'000, opts);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_FALSE(rec.spec.partitioned()) << rec.spec.ToString();
}

TEST(Advisor, SpaceBudgetPartitionsTheRanking) {
  WorkloadProfile profile;
  profile.point_probes = 1'000'000;
  profile.probe_batches = 4'000;
  profile.batch_hist[8] = 4'000;
  advisor::AdvisorOptions opts;
  opts.space_budget_bytes = 1;  // only zero-space methods fit
  auto rec = advisor::Advise(profile, 1'000'000, opts);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_FALSE(rec.over_budget.empty());
  for (const auto& scored : rec.ranked) {
    EXPECT_LE(scored.space_bytes, 1.0) << scored.spec.ToString();
  }
  // Every spec is scored exactly once, on one side or the other.
  EXPECT_GT(rec.ranked.size(), 0u);
  EXPECT_FALSE(rec.rationale.empty());
}

TEST(Advisor, RejectsBogusKeyWidth) {
  WorkloadProfile profile;
  advisor::AdvisorOptions opts;
  opts.key_width = 6;
  auto rec = advisor::Advise(profile, 1000, opts);
  EXPECT_FALSE(rec.ok);
  EXPECT_FALSE(rec.error.empty());
}

// -------------------------------------------------- the 25% property test

// Best-of-`repeats` seconds for the mix replayed against `index`:
// point probes through FindBlocked, range probes through EqualRangeBlocked,
// one untimed warmup pass first.
double MeasureProbeSeconds(const AnyIndex& index,
                           const std::vector<Key>& points,
                           const std::vector<Key>& ranges, int repeats) {
  constexpr size_t kBatch = 256;
  std::vector<int64_t> out(points.size());
  std::vector<PositionRange> rout(ranges.size());
  double best = 1e300;
  for (int r = 0; r <= repeats; ++r) {  // r == 0 is the warmup
    Timer timer;
    FindBlocked(index, points, kBatch, out);
    if (!ranges.empty()) {
      EqualRangeBlocked<Key>(index, ranges, kBatch,
                             std::span<PositionRange>(rout));
    }
    double sec = timer.Seconds();
    uint64_t sum = 0;
    for (int64_t v : out) sum += static_cast<uint64_t>(v);
    for (const PositionRange& pr : rout) sum += pr.begin;
    g_test_sink = g_test_sink + sum;
    if (r > 0 && sec < best) best = sec;
  }
  return best;
}

// Best-of-`repeats` seconds for one serve cycle of the update-heavy mix:
// apply each maintenance batch, probe between batches. The MaintainedIndex
// is rebuilt per repeat so every repeat replays identical state; the build
// itself is untimed (a served table is built once, maintained forever).
double MeasureUpdateCycleSeconds(const IndexSpec& spec,
                                 const std::vector<Key>& keys,
                                 const std::vector<workload::UpdateBatch>& ups,
                                 const std::vector<Key>& probes, int repeats) {
  double best = 1e300;
  std::vector<int64_t> out(probes.size());
  for (int r = 0; r <= repeats; ++r) {
    MaintainedIndex mi(spec, keys);
    if (!mi.ok()) return -1.0;
    Timer timer;
    for (const workload::UpdateBatch& up : ups) {
      mi.ApplySortedBatch(up.inserts, up.deletes);
      mi.FindBatch(probes, out);
    }
    double sec = timer.Seconds();
    uint64_t sum = 0;
    for (int64_t v : out) sum += static_cast<uint64_t>(v);
    g_test_sink = g_test_sink + sum;
    if (r > 0 && sec < best) best = sec;
  }
  return best;
}

TEST(AdvisorProperty, PickNeverFarBehindMeasuredBestAcrossMixes) {
  if (CSSIDX_SANITIZED) {
    GTEST_SKIP() << "timing property is meaningless under sanitizers";
  }
  const size_t n = 100'000;
  auto keys = workload::DistinctSortedKeys(n, 3, 4);
  const std::vector<IndexSpec> menu = test_menu::DefaultSpecs(16, 12);

  struct Mix {
    const char* name;
    std::vector<Key> points;
    std::vector<Key> ranges;
  };
  std::vector<Mix> mixes;
  mixes.push_back({"uniform-point", workload::MatchingLookups(keys, 32'768, 21),
                   {}});
  mixes.push_back({"zipf-point+range",
                   workload::SkewedLookups(keys, 24'576, 0.86, 22),
                   workload::SkewedLookups(keys, 8'192, 0.86, 23)});

  for (const Mix& mix : mixes) {
    // Observe the mix through an incumbent index wearing the collector —
    // the same loop the serving layer runs.
    AnyIndex incumbent = BuildIndex(IndexSpec(), keys);
    auto collector = std::make_shared<ProbeStatsCollector>();
    incumbent.AttachStats(collector);
    std::vector<int64_t> out(mix.points.size());
    FindBlocked(incumbent, mix.points, 256, out);
    if (!mix.ranges.empty()) {
      std::vector<PositionRange> rout(mix.ranges.size());
      EqualRangeBlocked<Key>(incumbent, mix.ranges, 256,
                             std::span<PositionRange>(rout));
    }

    advisor::AdvisorOptions opts;
    opts.microbench = true;
    opts.microbench_top = 3;
    auto rec = advisor::AdviseOnKeys<Key>(collector->Profile(), keys, opts);
    ASSERT_TRUE(rec.ok) << mix.name << ": " << rec.error;

    // Measure the shared menu and the pick with the same harness.
    double best = 1e300;
    std::string best_spec;
    for (const IndexSpec& spec : menu) {
      AnyIndex index = BuildIndex(spec, keys);
      if (!index) continue;
      double sec = MeasureProbeSeconds(index, mix.points, mix.ranges, 3);
      if (sec < best) {
        best = sec;
        best_spec = spec.ToString();
      }
    }
    AnyIndex picked = BuildIndex(rec.spec, keys);
    ASSERT_TRUE(static_cast<bool>(picked)) << rec.spec.ToString();
    double pick = MeasureProbeSeconds(picked, mix.points, mix.ranges, 3);

    if (pick > best * 1.25) {
      // Noise guard: one re-measure of both contenders at higher repeats
      // before declaring the model wrong.
      AnyIndex best_index = BuildIndex(*IndexSpec::Parse(best_spec), keys);
      best = MeasureProbeSeconds(best_index, mix.points, mix.ranges, 9);
      pick = MeasureProbeSeconds(picked, mix.points, mix.ranges, 9);
    }
    EXPECT_LE(pick, best * 1.25)
        << mix.name << ": advisor picked " << rec.spec.ToString() << " ("
        << pick << "s) vs measured best " << best_spec << " (" << best
        << "s)\n"
        << rec.rationale;
  }
}

TEST(AdvisorProperty, UpdateHeavyPickNeverFarBehindMeasuredBest) {
  if (CSSIDX_SANITIZED) {
    GTEST_SKIP() << "timing property is meaningless under sanitizers";
  }
  const size_t n = 100'000;
  auto keys = workload::DistinctSortedKeys(n, 3, 4);
  const std::vector<IndexSpec> menu = test_menu::DefaultSpecs(16, 12);

  // Update-heavy and localized: each batch deletes a narrow key window and
  // the next batch re-inserts it, probes interleave.
  std::vector<workload::UpdateBatch> ups;
  for (int b = 0; b < 8; ++b) {
    size_t lo = 40'000 + static_cast<size_t>(b) * 500;
    std::vector<Key> window(keys.begin() + lo, keys.begin() + lo + 500);
    workload::UpdateBatch up;
    if (b % 2 == 0) {
      up.deletes = window;
    } else {
      std::vector<Key> prev(keys.begin() + lo - 500, keys.begin() + lo);
      up.inserts = prev;
    }
    ups.push_back(std::move(up));
  }
  auto probes = workload::MatchingLookups(keys, 4'096, 31);

  // Observe through a maintained incumbent: probes and updates both land
  // in the collector.
  MaintainedIndex incumbent(IndexSpec(), keys);
  auto collector = incumbent.EnableStats();
  std::vector<int64_t> out(probes.size());
  for (const workload::UpdateBatch& up : ups) {
    incumbent.ApplySortedBatch(up.inserts, up.deletes);
    incumbent.FindBatch(probes, out);
  }

  advisor::AdvisorOptions opts;
  auto rec = advisor::Advise(collector->Profile(), n, opts);
  ASSERT_TRUE(rec.ok) << rec.error;

  double best = 1e300;
  std::string best_spec;
  for (const IndexSpec& spec : menu) {
    double sec = MeasureUpdateCycleSeconds(spec, keys, ups, probes, 2);
    if (sec >= 0 && sec < best) {
      best = sec;
      best_spec = spec.ToString();
    }
  }
  double pick = MeasureUpdateCycleSeconds(rec.spec, keys, ups, probes, 2);
  ASSERT_GE(pick, 0.0) << rec.spec.ToString();

  if (pick > best * 1.25) {
    best = MeasureUpdateCycleSeconds(*IndexSpec::Parse(best_spec), keys, ups,
                                     probes, 6);
    pick = MeasureUpdateCycleSeconds(rec.spec, keys, ups, probes, 6);
  }
  EXPECT_LE(pick, best * 1.25)
      << "advisor picked " << rec.spec.ToString() << " (" << pick
      << "s) vs measured best " << best_spec << " (" << best << "s)\n"
      << rec.rationale;
}

}  // namespace
}  // namespace cssidx
