#include "store/buffer_manager.h"
#include "store/paged_column.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/external_build.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace cssidx::store {
namespace {

std::vector<uint32_t> RandomValues(size_t n, uint32_t domain, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint32_t> out(n);
  for (auto& v : out) v = rng.Below(domain);
  return out;
}

TEST(PagedColumn, RoundTripsAcrossPageSizesAndBudgets) {
  const std::vector<uint32_t> reference = RandomValues(10'000, 1 << 20, 1);
  for (size_t page_bytes : {4u, 64u, 4096u}) {
    for (size_t buffer_pages : {0u, 1u, 2u, 7u}) {
      BufferManager bm(StoreOptions{page_bytes, buffer_pages, ""});
      PagedColumn col(&bm);
      // Append in uneven chunks so writes straddle page boundaries.
      size_t at = 0;
      for (size_t chunk : {1u, 13u, 1000u}) {
        while (at < reference.size()) {
          size_t len = std::min(chunk, reference.size() - at);
          col.Append(std::span<const uint32_t>(&reference[at], len));
          at += len;
          if (at >= reference.size() / 3 && chunk != 1000u) break;
        }
      }
      ASSERT_EQ(col.size(), reference.size());
      std::vector<uint32_t> read(reference.size());
      col.Read(0, read);
      EXPECT_EQ(read, reference)
          << "page_bytes=" << page_bytes << " buffer_pages=" << buffer_pages;
      // Point reads at page seams.
      const size_t vpp = col.values_per_page();
      for (size_t i : {size_t{0}, vpp - 1, vpp, 3 * vpp + 1,
                       reference.size() - 1}) {
        if (i < reference.size()) {
          EXPECT_EQ(col.Get(i), reference[i]);
        }
      }
    }
  }
}

TEST(BufferManager, PinUnpinAccounting) {
  BufferManager bm(StoreOptions{64, 4, ""});
  const uint32_t c = bm.RegisterColumn();
  {
    PageRef ref = bm.Pin({c, 0}, /*create=*/true);
    EXPECT_EQ(bm.stats().pinned, 1u);
    EXPECT_EQ(bm.stats().pins, 1u);
    EXPECT_EQ(bm.stats().faults, 1u);
    PageRef ref2 = bm.Pin({c, 0});
    EXPECT_EQ(bm.stats().pinned, 1u);  // one frame, pinned twice
    EXPECT_EQ(bm.stats().hits, 1u);
    ref2.Release();
    EXPECT_EQ(bm.stats().pinned, 1u);  // first pin still holds it
  }
  EXPECT_EQ(bm.stats().pinned, 0u);
  EXPECT_EQ(bm.stats().frames, 1u);  // unpinned but still resident
}

TEST(BufferManager, EvictsLeastRecentlyUsedFirst) {
  BufferManager bm(StoreOptions{64, 2, ""});
  const uint32_t c = bm.RegisterColumn();
  bm.Pin({c, 0}, true);
  bm.Pin({c, 1}, true);
  EXPECT_EQ(bm.stats().frames, 2u);
  // Recency now 1 > 0. Touch 0 so recency becomes 0 > 1.
  bm.Pin({c, 0});
  EXPECT_EQ(bm.stats().hits, 1u);
  // A third page must evict the LRU frame: page 1, not page 0.
  bm.Pin({c, 2}, true);
  EXPECT_EQ(bm.stats().evictions, 1u);
  const size_t faults_before = bm.stats().faults;
  bm.Pin({c, 0});
  EXPECT_EQ(bm.stats().faults, faults_before);  // page 0 survived: a hit
  // Pinning page 1 back in faults (it was the victim).
  bm.Pin({c, 1});
  EXPECT_EQ(bm.stats().faults, faults_before + 1);
  EXPECT_LE(bm.stats().frames, 2u);
  EXPECT_EQ(bm.stats().peak_frames, 2u);
}

TEST(BufferManager, ThrowsWhenEveryFrameIsPinned) {
  BufferManager bm(StoreOptions{64, 2, ""});
  const uint32_t c = bm.RegisterColumn();
  PageRef a = bm.Pin({c, 0}, true);
  PageRef b = bm.Pin({c, 1}, true);
  EXPECT_THROW(bm.Pin({c, 2}, true), std::runtime_error);
  b.Release();
  PageRef d = bm.Pin({c, 2}, true);  // now a frame is free
  EXPECT_TRUE(d);
}

TEST(BufferManager, DirtyPagesSurviveEvictionThroughSpill) {
  BufferManager bm(StoreOptions{64, 1, ""});  // 16 values; every touch evicts
  const uint32_t c = bm.RegisterColumn();
  const size_t vpp = bm.values_per_page();
  const size_t kPages = 9;
  for (uint32_t p = 0; p < kPages; ++p) {
    PageRef ref = bm.Pin({c, p}, true);
    for (size_t i = 0; i < vpp; ++i) {
      ref.data()[i] = p * 1000 + static_cast<uint32_t>(i);
    }
    ref.MarkDirty();
  }
  EXPECT_GE(bm.stats().spill_writes, kPages - 1);
  for (uint32_t p = 0; p < kPages; ++p) {
    PageRef ref = bm.Pin({c, p});
    for (size_t i = 0; i < vpp; ++i) {
      ASSERT_EQ(ref.data()[i], p * 1000 + i) << "page " << p;
    }
  }
  EXPECT_GE(bm.stats().spill_reads, kPages - 1);
}

TEST(ColumnCursor, StreamsWholeColumnInOrderAtMinimalBudget) {
  BufferManager bm(StoreOptions{64, 1, ""});
  PagedColumn col(&bm);
  const std::vector<uint32_t> reference = RandomValues(1000, 1 << 16, 2);
  col.Append(reference);
  ColumnCursor cursor(col);
  std::vector<uint32_t> streamed;
  size_t blocks = 0;
  for (std::span<const uint32_t> block = cursor.NextBlock(); !block.empty();
       block = cursor.NextBlock()) {
    EXPECT_EQ(cursor.position() - block.size(), streamed.size());
    streamed.insert(streamed.end(), block.begin(), block.end());
    ++blocks;
  }
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(streamed, reference);
  EXPECT_EQ(blocks, col.num_pages());
  EXPECT_EQ(bm.stats().pinned, 0u);  // cursors never hold pins between calls
}

TEST(PagedColumn, TruncateThenRegrowReadsFreshValues) {
  BufferManager bm(StoreOptions{64, 2, ""});
  PagedColumn col(&bm);
  std::vector<uint32_t> reference = RandomValues(500, 1 << 16, 3);
  col.Append(reference);
  col.Truncate(100);
  reference.resize(100);
  EXPECT_EQ(col.size(), 100u);
  const std::vector<uint32_t> regrow = RandomValues(300, 1 << 16, 4);
  col.Append(regrow);
  reference.insert(reference.end(), regrow.begin(), regrow.end());
  std::vector<uint32_t> read(col.size());
  col.Read(0, read);
  EXPECT_EQ(read, reference);
}

TEST(ExternalSort, MatchesStableSortOracle) {
  // Heavy duplicates so tie-breaking order is actually exercised.
  const std::vector<uint32_t> reference = RandomValues(20'000, 100, 5);
  std::vector<uint32_t> oracle_rids(reference.size());
  std::iota(oracle_rids.begin(), oracle_rids.end(), 0u);
  std::stable_sort(oracle_rids.begin(), oracle_rids.end(),
                   [&](uint32_t a, uint32_t b) {
                     return reference[a] < reference[b];
                   });
  std::vector<uint32_t> oracle_keys(reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    oracle_keys[i] = reference[oracle_rids[i]];
  }

  BufferManager bm(StoreOptions{256, 4, ""});
  PagedColumn col(&bm);
  col.Append(reference);

  // Multi-run spilled path.
  ExternalBuildResult ext = ExternalSortKeys(col, 1024, bm.spill_path());
  EXPECT_TRUE(ext.spilled);
  EXPECT_GT(ext.runs, 1u);
  EXPECT_EQ(ext.sorted_keys, oracle_keys);
  EXPECT_EQ(ext.rids, oracle_rids);

  // Single-run in-RAM fast path: same answer, no disk.
  ExternalBuildResult ram =
      ExternalSortKeys(col, reference.size(), bm.spill_path());
  EXPECT_FALSE(ram.spilled);
  EXPECT_EQ(ram.runs, 1u);
  EXPECT_EQ(ram.sorted_keys, oracle_keys);
  EXPECT_EQ(ram.rids, oracle_rids);
}

TEST(ExternalSort, EmptyAndTinyColumns) {
  BufferManager bm(StoreOptions{64, 2, ""});
  PagedColumn empty(&bm);
  ExternalBuildResult none = ExternalSortKeys(empty, 16, bm.spill_path());
  EXPECT_EQ(none.runs, 0u);
  EXPECT_FALSE(none.spilled);
  EXPECT_TRUE(none.sorted_keys.empty());

  PagedColumn one(&bm);
  one.Append(std::vector<uint32_t>{42});
  ExternalBuildResult single = ExternalSortKeys(one, 16, bm.spill_path());
  EXPECT_EQ(single.sorted_keys, std::vector<uint32_t>{42});
  EXPECT_EQ(single.rids, std::vector<uint32_t>{0});
}

}  // namespace
}  // namespace cssidx::store
