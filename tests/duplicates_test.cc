// §3.6 duplicate handling, stressed beyond the generic property suite:
// extreme multiplicities, duplicates exactly on node boundaries, and
// all-equal arrays for every method.

#include <algorithm>
#include <vector>

#include "core/builder.h"
#include "gtest/gtest.h"

namespace cssidx {
namespace {

void CheckAll(const std::vector<Key>& keys, int node_entries = 8) {
  for (const IndexSpec& spec : AllSpecs(node_entries, 6)) {
    if (!spec.OnMenu()) continue;  // level CSS on a non-power-of-two size
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    std::vector<Key> probes(keys.begin(), keys.end());
    if (!keys.empty()) {
      probes.push_back(keys.front() - 1);
      probes.push_back(keys.back() + 1);
    }
    std::vector<int64_t> batch(probes.size());
    index.FindBatch(probes, batch);
    for (size_t i = 0; i < probes.size(); ++i) {
      Key k = probes[i];
      auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
      bool present = lo != hi;
      int64_t want =
          present ? static_cast<int64_t>(lo - keys.begin()) : kNotFound;
      ASSERT_EQ(index.Find(k), want) << index.Name() << " k=" << k;
      ASSERT_EQ(batch[i], want) << index.Name() << " k=" << k;
      ASSERT_EQ(index.CountEqual(k), static_cast<size_t>(hi - lo))
          << index.Name() << " k=" << k;
    }
  }
}

TEST(Duplicates, AllEqualArray) {
  CheckAll(std::vector<Key>(500, 42));
}

TEST(Duplicates, TwoValuesSplit) {
  std::vector<Key> keys(300, 10);
  keys.resize(600, 20);
  CheckAll(keys);
}

TEST(Duplicates, RunExactlyOnNodeBoundary) {
  // 8-entry nodes; a run of 8 duplicates aligned to a node, runs straddling
  // node boundaries, and a run covering multiple whole nodes.
  std::vector<Key> keys;
  for (int i = 0; i < 8; ++i) keys.push_back(100);   // node 0 exactly
  for (int i = 0; i < 4; ++i) keys.push_back(200);
  for (int i = 0; i < 12; ++i) keys.push_back(300);  // straddles
  for (int i = 0; i < 24; ++i) keys.push_back(400);  // 3 full nodes
  keys.push_back(500);
  CheckAll(keys);
}

TEST(Duplicates, SingletonAmongRuns) {
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(7);
  keys.push_back(8);  // the needle
  for (int i = 0; i < 100; ++i) keys.push_back(9);
  CheckAll(keys);
  CheckAll(keys, 16);
}

TEST(Duplicates, LeftmostIsStable) {
  // Find must always return the first array position of the run, which is
  // what makes rightward scans (§3.6) complete.
  std::vector<Key> keys;
  for (int run = 0; run < 50; ++run) {
    for (int i = 0; i < 7; ++i) keys.push_back(1000 + run * 10);
  }
  for (const IndexSpec& spec : AllSpecs(16, 6)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    for (int run = 0; run < 50; ++run) {
      Key k = 1000 + run * 10;
      ASSERT_EQ(index.Find(k), run * 7) << index.Name();
    }
  }
}

}  // namespace
}  // namespace cssidx
