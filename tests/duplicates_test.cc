// §3.6 duplicate handling, stressed beyond the generic property suite:
// extreme multiplicities, duplicates exactly on node boundaries, and
// all-equal arrays for every method.

#include <algorithm>
#include <vector>

#include "core/builder.h"
#include "gtest/gtest.h"

namespace cssidx {
namespace {

void CheckAll(const std::vector<Key>& keys, int node_entries = 8) {
  BuildOptions opts;
  opts.node_entries = node_entries;
  opts.hash_dir_bits = 6;
  for (Method m : AllMethods()) {
    if (m == Method::kLevelCss && (node_entries & (node_entries - 1)) != 0) {
      continue;
    }
    auto index = BuildIndex(m, keys, opts);
    ASSERT_NE(index, nullptr) << MethodName(m);
    std::vector<Key> probes(keys.begin(), keys.end());
    if (!keys.empty()) {
      probes.push_back(keys.front() - 1);
      probes.push_back(keys.back() + 1);
    }
    for (Key k : probes) {
      auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
      bool present = lo != hi;
      ASSERT_EQ(index->Find(k),
                present ? static_cast<int64_t>(lo - keys.begin()) : kNotFound)
          << index->Name() << " k=" << k;
      ASSERT_EQ(index->CountEqual(k), static_cast<size_t>(hi - lo))
          << index->Name() << " k=" << k;
    }
  }
}

TEST(Duplicates, AllEqualArray) {
  CheckAll(std::vector<Key>(500, 42));
}

TEST(Duplicates, TwoValuesSplit) {
  std::vector<Key> keys(300, 10);
  keys.resize(600, 20);
  CheckAll(keys);
}

TEST(Duplicates, RunExactlyOnNodeBoundary) {
  // 8-entry nodes; a run of 8 duplicates aligned to a node, runs straddling
  // node boundaries, and a run covering multiple whole nodes.
  std::vector<Key> keys;
  for (int i = 0; i < 8; ++i) keys.push_back(100);   // node 0 exactly
  for (int i = 0; i < 4; ++i) keys.push_back(200);
  for (int i = 0; i < 12; ++i) keys.push_back(300);  // straddles
  for (int i = 0; i < 24; ++i) keys.push_back(400);  // 3 full nodes
  keys.push_back(500);
  CheckAll(keys);
}

TEST(Duplicates, SingletonAmongRuns) {
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(7);
  keys.push_back(8);  // the needle
  for (int i = 0; i < 100; ++i) keys.push_back(9);
  CheckAll(keys);
  CheckAll(keys, 16);
}

TEST(Duplicates, LeftmostIsStable) {
  // Find must always return the first array position of the run, which is
  // what makes rightward scans (§3.6) complete.
  std::vector<Key> keys;
  for (int run = 0; run < 50; ++run) {
    for (int i = 0; i < 7; ++i) keys.push_back(1000 + run * 10);
  }
  BuildOptions opts;
  opts.node_entries = 16;
  for (Method m : AllMethods()) {
    auto index = BuildIndex(m, keys, opts);
    for (int run = 0; run < 50; ++run) {
      Key k = 1000 + run * 10;
      ASSERT_EQ(index->Find(k), run * 7) << index->Name();
    }
  }
}

}  // namespace
}  // namespace cssidx
