#include "workload/lookup_gen.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx::workload {
namespace {

TEST(LookupGen, MatchingLookupsAllPresent) {
  auto keys = DistinctSortedKeys(1000, 1, 4);
  auto lookups = MatchingLookups(keys, 5000, 2);
  ASSERT_EQ(lookups.size(), 5000u);
  for (uint32_t k : lookups) {
    ASSERT_TRUE(std::binary_search(keys.begin(), keys.end(), k));
  }
}

TEST(LookupGen, MatchingLookupsCoverTheArray) {
  auto keys = DistinctSortedKeys(100, 1, 4);
  auto lookups = MatchingLookups(keys, 10000, 3);
  // Every key should appear at least once in 10k draws over 100 keys.
  for (uint32_t k : keys) {
    EXPECT_NE(std::find(lookups.begin(), lookups.end(), k), lookups.end());
  }
}

TEST(LookupGen, MissingLookupsAllAbsent) {
  auto keys = DistinctSortedKeys(1000, 1, 4);
  auto lookups = MissingLookups(keys, 2000, 5);
  ASSERT_EQ(lookups.size(), 2000u);
  for (uint32_t k : lookups) {
    ASSERT_FALSE(std::binary_search(keys.begin(), keys.end(), k));
  }
}

TEST(LookupGen, SkewedLookupsArePresentAndSkewed) {
  auto keys = DistinctSortedKeys(10000, 1, 4);
  auto lookups = SkewedLookups(keys, 20000, 1.0, 7);
  size_t rank0_hits = 0;
  for (uint32_t k : lookups) {
    ASSERT_TRUE(std::binary_search(keys.begin(), keys.end(), k));
    if (k == keys[0]) ++rank0_hits;
  }
  // Zipf theta=1 over 10k ranks gives rank 0 about 1/H_n ~ 10% of draws;
  // uniform would give 0.01%.
  EXPECT_GT(rank0_hits, 20000u / 50);
}

TEST(LookupGen, MixedLookupsHitFraction) {
  auto keys = DistinctSortedKeys(5000, 1, 4);
  auto lookups = MixedLookups(keys, 4000, 0.75, 9);
  ASSERT_EQ(lookups.size(), 4000u);
  size_t hits = 0;
  for (uint32_t k : lookups) {
    if (std::binary_search(keys.begin(), keys.end(), k)) ++hits;
  }
  EXPECT_EQ(hits, 3000u);
}

TEST(LookupGen, Deterministic) {
  auto keys = DistinctSortedKeys(100, 1, 4);
  EXPECT_EQ(MatchingLookups(keys, 100, 4), MatchingLookups(keys, 100, 4));
  EXPECT_NE(MatchingLookups(keys, 100, 4), MatchingLookups(keys, 100, 5));
}

}  // namespace
}  // namespace cssidx::workload
