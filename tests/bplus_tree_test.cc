#include "baselines/bplus_tree.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

template <int Slots>
void OracleCheck(const std::vector<Key>& keys) {
  BPlusTree<Slots> index(keys);
  std::vector<Key> probes;
  for (Key k : keys) {
    probes.push_back(k);
    if (k > 0) probes.push_back(k - 1);
    probes.push_back(k + 1);
  }
  probes.push_back(0);
  if (!keys.empty()) probes.push_back(keys.back() + 5);
  for (Key k : probes) {
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
    ASSERT_EQ(index.LowerBound(k), expected)
        << "slots=" << Slots << " n=" << keys.size() << " k=" << k;
  }
}

template <int Slots>
void SweepSizes(size_t max_n) {
  for (size_t n = 0; n <= max_n; ++n) {
    OracleCheck<Slots>(workload::DistinctSortedKeys(n, 31 + n, 3));
  }
}

TEST(BPlusTree, OracleSweepSlots4) { SweepSizes<4>(300); }
TEST(BPlusTree, OracleSweepSlots5) { SweepSizes<5>(300); }
TEST(BPlusTree, OracleSweepSlots8) { SweepSizes<8>(500); }
TEST(BPlusTree, OracleSweepSlots16) { SweepSizes<16>(600); }
TEST(BPlusTree, OracleMediumSlots32) {
  OracleCheck<32>(workload::DistinctSortedKeys(60'000, 8, 4));
}
TEST(BPlusTree, OracleMediumSlots24) {
  OracleCheck<24>(workload::DistinctSortedKeys(30'000, 9, 4));
}

TEST(BPlusTree, FanoutMatchesPaperFormula) {
  // Branching factor m/2 for even node sizes ("one more pointer than keys,
  // leave one slot empty"), (m+1)/2 for odd.
  EXPECT_EQ(BPlusTree<16>::kFanout, 8);
  EXPECT_EQ(BPlusTree<8>::kFanout, 4);
  EXPECT_EQ(BPlusTree<9>::kFanout, 5);
  EXPECT_EQ(BPlusTree<16>::kRoutingKeys, 7);
}

TEST(BPlusTree, HeightShrinksWithNodeSize) {
  auto keys = workload::DistinctSortedKeys(100'000, 3, 4);
  BPlusTree<8> small(keys);
  BPlusTree<64> large(keys);
  EXPECT_GT(small.height(), large.height());
}

TEST(BPlusTree, SpaceRoughlyMatchesFigure7) {
  // nK(P+K)/(sc - P - K): for 16-slot (64B) nodes, ~0.571 bytes per key.
  auto keys = workload::DistinctSortedKeys(500'000, 4, 4);
  BPlusTree<16> index(keys);
  double expected = 500'000.0 * 4 * 8 / (64 - 8);
  EXPECT_NEAR(static_cast<double>(index.SpaceBytes()), expected,
              expected * 0.25);
}

TEST(BPlusTree, MoreSpaceThanCssForSameNodeSize) {
  // The headline: half the keys per node means roughly twice the space.
  auto keys = workload::DistinctSortedKeys(200'000, 5, 4);
  BPlusTree<16> bplus(keys);
  EXPECT_GT(bplus.SpaceBytes(), 200'000u * 4 / 16);  // > full CSS directory
}

TEST(BPlusTree, Duplicates) {
  auto keys = workload::KeysWithDuplicates(2000, 50, 23);
  BPlusTree<8> index(keys);
  for (Key k : keys) {
    auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
    EXPECT_EQ(index.Find(k), lo - keys.begin());
    EXPECT_EQ(index.CountEqual(k), static_cast<size_t>(hi - lo));
  }
}

TEST(BPlusTree, EmptySingleAndChunkBoundaries) {
  std::vector<Key> empty;
  BPlusTree<8> e(empty);
  EXPECT_EQ(e.LowerBound(3), 0u);
  EXPECT_EQ(e.Find(3), kNotFound);
  EXPECT_EQ(e.SpaceBytes(), 0u);

  // Exactly one chunk: no internal nodes at all.
  auto keys = workload::DistinctSortedKeys(8, 1, 4);
  BPlusTree<8> one(keys);
  EXPECT_EQ(one.height(), 0);
  EXPECT_EQ(one.SpaceBytes(), 0u);
  OracleCheck<8>(keys);

  // One key over a chunk: a root appears.
  auto keys9 = workload::DistinctSortedKeys(9, 1, 4);
  BPlusTree<8> two(keys9);
  EXPECT_EQ(two.height(), 1);
  OracleCheck<8>(keys9);
}

}  // namespace
}  // namespace cssidx
