#include "util/rng.h"

#include <map>
#include <vector>

#include "gtest/gtest.h"

namespace cssidx {
namespace {

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BelowStaysInBounds) {
  Pcg32 rng(7);
  for (uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 31}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(Pcg32, BelowOneIsAlwaysZero) {
  Pcg32 rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Pcg32, InRangeInclusive) {
  Pcg32 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    uint32_t v = rng.InRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, RoughlyUniform) {
  Pcg32 rng(11);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  // Expected 10000 per bucket; allow 5% deviation (generous for PCG).
  for (int c : counts) EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets / 20);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace cssidx
