// CSS-tree over wide records (§4.1's "elements of size different from the
// size of a key"): correctness for several record widths and key
// positions, against an extract-then-lower_bound oracle.

#include "core/record_css_tree.h"

#include <algorithm>
#include <vector>

#include "core/range.h"

#include "gtest/gtest.h"
#include "util/rng.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

struct Row8 {
  Key key;
  uint32_t payload;
};
struct Row8Key {
  Key operator()(const Row8& r) const { return r.key; }
};

struct Row32 {
  uint64_t header;
  Key key;
  uint32_t a, b, c;
  uint64_t footer;
};
struct Row32Key {
  Key operator()(const Row32& r) const { return r.key; }
};

template <typename Row, typename GetKey, int M>
void OracleCheck(const std::vector<Key>& keys,
                 const std::vector<Row>& rows) {
  RecordCssTree<Row, GetKey, M> tree(rows);
  std::vector<Key> probes;
  for (Key k : keys) {
    probes.push_back(k);
    if (k > 0) probes.push_back(k - 1);
    probes.push_back(k + 1);
  }
  probes.push_back(0);
  for (Key k : probes) {
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
    ASSERT_EQ(tree.LowerBound(k), expected) << "k=" << k;
    bool present = expected < keys.size() && keys[expected] == k;
    ASSERT_EQ(tree.Find(k),
              present ? static_cast<int64_t>(expected) : kNotFound);
  }
}

template <typename Row, typename GetKey>
std::vector<Row> MakeRows(const std::vector<Key>& keys) {
  std::vector<Row> rows(keys.size());
  Pcg32 rng(7);
  for (size_t i = 0; i < keys.size(); ++i) {
    rows[i] = Row{};
    // Assign via the key field only; other fields are noise.
    if constexpr (std::is_same_v<Row, Row8>) {
      rows[i].key = keys[i];
      rows[i].payload = rng.Next();
    } else {
      rows[i].header = rng.Next64();
      rows[i].key = keys[i];
      rows[i].a = rng.Next();
      rows[i].footer = rng.Next64();
    }
  }
  return rows;
}

TEST(RecordCssTree, EightByteRecordsSweep) {
  for (size_t n : {0u, 1u, 5u, 16u, 17u, 100u, 1000u, 5000u}) {
    auto keys = workload::DistinctSortedKeys(n, 3 + n, 3);
    auto rows = MakeRows<Row8, Row8Key>(keys);
    OracleCheck<Row8, Row8Key, 16>(keys, rows);
    OracleCheck<Row8, Row8Key, 4>(keys, rows);
  }
}

TEST(RecordCssTree, ThirtyTwoByteRecords) {
  auto keys = workload::DistinctSortedKeys(20'000, 5, 4);
  auto rows = MakeRows<Row32, Row32Key>(keys);
  OracleCheck<Row32, Row32Key, 16>(keys, rows);
}

TEST(RecordCssTree, DuplicateKeysLeftmost) {
  auto keys = workload::KeysWithDuplicates(1000, 50, 9);
  auto rows = MakeRows<Row8, Row8Key>(keys);
  RecordCssTree<Row8, Row8Key, 8> tree(rows);
  for (Key k : keys) {
    auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
    EXPECT_EQ(tree.Find(k), lo - keys.begin());
    EXPECT_EQ(tree.CountEqual(k), static_cast<size_t>(hi - lo));
  }
}

TEST(RecordCssTree, BatchKernelsMatchScalarOverRecords) {
  // The group-probing kernels descend the same key directory as the plain
  // CSS-tree but finish with record-walking leaf searches; batched
  // results must equal the scalar calls probe for probe, duplicates and
  // absent keys included, at batch sizes covering the full-group path,
  // the sub-group remainder, and the 256-probe chunk boundary.
  auto keys = workload::KeysWithDuplicates(8000, 300, 9);
  auto rows = MakeRows<Row32, Row32Key>(keys);
  RecordCssTree<Row32, Row32Key, 16> tree(rows);
  Pcg32 rng(77);
  for (size_t batch : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{255}, size_t{256}, size_t{257}, size_t{2000}}) {
    std::vector<Key> probes(batch);
    for (Key& k : probes) k = rng.Below(keys.back() + 3);
    std::vector<size_t> lower(batch);
    std::vector<int64_t> found(batch);
    std::vector<PositionRange> ranges(batch);
    std::vector<size_t> counts(batch);
    tree.LowerBoundBatch(probes, lower);
    tree.FindBatch(probes, found);
    tree.EqualRangeBatch(probes, ranges);
    tree.CountEqualBatch(probes, counts);
    for (size_t i = 0; i < batch; ++i) {
      ASSERT_EQ(lower[i], tree.LowerBound(probes[i]))
          << "batch=" << batch << " i=" << i;
      ASSERT_EQ(found[i], tree.Find(probes[i]))
          << "batch=" << batch << " i=" << i;
      auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), probes[i]);
      ASSERT_EQ(ranges[i],
                (PositionRange{static_cast<size_t>(lo - keys.begin()),
                               static_cast<size_t>(hi - keys.begin())}))
          << "batch=" << batch << " i=" << i;
      ASSERT_EQ(counts[i], static_cast<size_t>(hi - lo))
          << "batch=" << batch << " i=" << i;
    }
  }
}

TEST(RecordCssTree, DirectorySizeIndependentOfRecordWidth) {
  // §4.1: offsets into the leaf array are independent of the record size —
  // so the directory over n records is the same size whether a record is
  // 8 or 32 bytes.
  auto keys = workload::DistinctSortedKeys(10'000, 5, 4);
  auto narrow = MakeRows<Row8, Row8Key>(keys);
  auto wide = MakeRows<Row32, Row32Key>(keys);
  RecordCssTree<Row8, Row8Key, 16> t8(narrow);
  RecordCssTree<Row32, Row32Key, 16> t32(wide);
  EXPECT_EQ(t8.SpaceBytes(), t32.SpaceBytes());
}

}  // namespace
}  // namespace cssidx
