#include "engine/query.h"
#include "engine/table.h"

#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"

// Paged-vs-in-RAM differential suite: a Table built with TableOptions must
// answer every query bit-identically to the flat in-RAM Table, at ANY
// buffer budget — unbounded, a quarter of the data, and a minimal pool
// where nearly every probe faults. Sort indexes built over columns larger
// than the budget route through the external merge sort, and their
// sorted key/RID lists must equal the stable_sort the flat build performs.

namespace cssidx::engine {
namespace {

constexpr size_t kRows = 4096;
constexpr uint32_t kCustomers = 160;
constexpr size_t kPageBytes = 256;  // 64 values/page -> 64 pages per column

struct TableData {
  std::vector<uint32_t> customer, amount, day;
};

TableData MakeData(uint64_t seed) {
  Pcg32 rng(seed);
  TableData d;
  d.customer.resize(kRows);
  d.amount.resize(kRows);
  d.day.resize(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    d.customer[i] = rng.Below(kCustomers);
    d.amount[i] = 1 + rng.Below(1000);
    d.day[i] = rng.Below(365);
  }
  return d;
}

Table MakeTable(const TableData& d, const TableOptions* options) {
  Table t = options != nullptr ? Table(*options) : Table();
  t.AddColumn("customer", d.customer);
  t.AddColumn("amount", d.amount);
  t.AddColumn("day", d.day);
  return t;
}

/// Budgets the differential runs at: unbounded, a quarter of one column's
/// pages, and a minimal pool where every page touch contends.
std::vector<size_t> Budgets() {
  const size_t pages = kRows / (kPageBytes / sizeof(uint32_t));
  return {0, pages / 4, 2};
}

void ExpectSameAnswers(const Table& flat, const Table& paged,
                       const std::string& label) {
  Pcg32 rng(99);
  for (int q = 0; q < 20; ++q) {
    const uint32_t v = rng.Below(kCustomers + 5);
    EXPECT_EQ(SelectEqual(flat, "customer", v),
              SelectEqual(paged, "customer", v))
        << label << " Equal(" << v << ")";
    EXPECT_EQ(CountEqual(flat, "customer", v),
              CountEqual(paged, "customer", v))
        << label;
    const uint32_t lo = rng.Below(kCustomers);
    const uint32_t hi = lo + rng.Below(20);
    EXPECT_EQ(SelectRange(flat, "customer", lo, hi),
              SelectRange(paged, "customer", lo, hi))
        << label << " Range[" << lo << "," << hi << ")";
    EXPECT_EQ(CountRange(flat, "customer", lo, hi),
              CountRange(paged, "customer", lo, hi))
        << label;
  }
  std::vector<std::pair<uint32_t, uint32_t>> bounds;
  for (int b = 0; b < 16; ++b) {
    uint32_t lo = rng.Below(kCustomers);
    bounds.emplace_back(lo, lo + rng.Below(10));
  }
  EXPECT_EQ(SelectRangeBatch(flat, "customer", bounds),
            SelectRangeBatch(paged, "customer", bounds))
      << label;
  const auto flat_groups = GroupBy(flat, "customer", "amount", kCustomers);
  const auto paged_groups = GroupBy(paged, "customer", "amount", kCustomers);
  ASSERT_EQ(flat_groups.size(), paged_groups.size()) << label;
  for (size_t g = 0; g < flat_groups.size(); ++g) {
    EXPECT_EQ(flat_groups[g].count, paged_groups[g].count) << label;
    EXPECT_EQ(flat_groups[g].sum, paged_groups[g].sum) << label;
    EXPECT_EQ(flat_groups[g].min, paged_groups[g].min) << label;
    EXPECT_EQ(flat_groups[g].max, paged_groups[g].max) << label;
  }
  const std::vector<Rid> sample = SelectEqual(flat, "customer", 7);
  const Aggregates fa = Aggregate(flat, "amount", sample);
  const Aggregates pa = Aggregate(paged, "amount", sample);
  EXPECT_EQ(fa.count, pa.count) << label;
  EXPECT_EQ(fa.sum, pa.sum) << label;
}

TEST(PagedTable, DifferentialAcrossSpecMenuAndBudgets) {
  const TableData data = MakeData(11);
  Table flat = MakeTable(data, nullptr);
  for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 10)) {
    flat.BuildSortIndex("customer", spec);
    for (size_t budget : Budgets()) {
      TableOptions opts;
      opts.page_bytes = kPageBytes;
      opts.buffer_pages = budget;
      Table paged = MakeTable(data, &opts);
      ASSERT_TRUE(paged.paged());
      const SortIndex& built = paged.BuildSortIndex("customer", spec);
      const std::string label =
          spec.ToString() + " @budget=" + std::to_string(budget);
      // The sorted lists themselves must match the stable_sort build.
      EXPECT_EQ(built.sorted_keys(), flat.GetSortIndex("customer").sorted_keys())
          << label;
      EXPECT_EQ(built.rids(), flat.GetSortIndex("customer").rids()) << label;
      ExpectSameAnswers(flat, paged, label);
    }
  }
}

TEST(PagedTable, ScanFallbackDifferentialWithoutIndex) {
  const TableData data = MakeData(12);
  const Table flat = MakeTable(data, nullptr);
  for (size_t budget : Budgets()) {
    TableOptions opts;
    opts.page_bytes = kPageBytes;
    opts.buffer_pages = budget;
    const Table paged = MakeTable(data, &opts);
    ExpectSameAnswers(flat, paged, "scan @budget=" + std::to_string(budget));
  }
}

TEST(PagedTable, ExternalBuildKicksInAboveBudgetAndMatches) {
  const TableData data = MakeData(13);
  Table flat = MakeTable(data, nullptr);
  flat.BuildSortIndex("customer");

  TableOptions opts;
  opts.page_bytes = kPageBytes;
  opts.buffer_pages = 4;  // 256 values << 4096 rows: must go external
  Table paged = MakeTable(data, &opts);
  const SortIndex& index = paged.BuildSortIndex("customer");
  EXPECT_TRUE(index.external_build());
  EXPECT_GT(index.external_runs(), 1u);
  EXPECT_EQ(index.sorted_keys(), flat.GetSortIndex("customer").sorted_keys());
  EXPECT_EQ(index.rids(), flat.GetSortIndex("customer").rids());
  for (uint32_t v : {0u, 7u, kCustomers - 1, kCustomers + 10}) {
    EXPECT_EQ(index.Find(v), flat.GetSortIndex("customer").Find(v));
  }
  ExpectSameAnswers(flat, paged, "external");

  // An unbounded pool materializes and takes the in-RAM path.
  TableOptions unbounded;
  unbounded.page_bytes = kPageBytes;
  Table big = MakeTable(data, &unbounded);
  EXPECT_FALSE(big.BuildSortIndex("customer").external_build());
}

TEST(PagedTable, IndexedJoinMatchesAcrossStorageModes) {
  const TableData data = MakeData(14);
  Table flat = MakeTable(data, nullptr);
  TableOptions opts;
  opts.page_bytes = kPageBytes;
  opts.buffer_pages = 2;
  Table paged = MakeTable(data, &opts);

  // Inner dimension table, flat, with an index.
  Table dim;
  std::vector<uint32_t> ids(kCustomers / 2), score(kCustomers / 2);
  Pcg32 rng(15);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<uint32_t>(2 * i);  // every other customer
    score[i] = rng.Below(100);
  }
  dim.AddColumn("id", std::move(ids));
  dim.AddColumn("score", std::move(score));
  dim.BuildSortIndex("id");

  const auto flat_join = IndexedJoin(flat, "customer", dim, "id");
  const auto paged_join = IndexedJoin(paged, "customer", dim, "id");
  ASSERT_EQ(flat_join.size(), paged_join.size());
  for (size_t i = 0; i < flat_join.size(); ++i) {
    EXPECT_EQ(flat_join[i].outer, paged_join[i].outer);
    EXPECT_EQ(flat_join[i].inner, paged_join[i].inner);
  }

  // Paged table as the INNER side: its index serves probes identically.
  flat.BuildSortIndex("customer");
  paged.BuildSortIndex("customer");
  const auto flat_inner = IndexedJoin(dim, "id", flat, "customer");
  const auto paged_inner = IndexedJoin(dim, "id", paged, "customer");
  ASSERT_EQ(flat_inner.size(), paged_inner.size());
  for (size_t i = 0; i < flat_inner.size(); ++i) {
    EXPECT_EQ(flat_inner[i].outer, paged_inner[i].outer);
    EXPECT_EQ(flat_inner[i].inner, paged_inner[i].inner);
  }
}

TEST(PagedTable, MutatorsMatchFlatTableAtMinimalBudget) {
  const TableData data = MakeData(16);
  Table flat = MakeTable(data, nullptr);
  TableOptions opts;
  opts.page_bytes = kPageBytes;
  opts.buffer_pages = 2;
  Table paged = MakeTable(data, &opts);
  flat.BuildSortIndex("customer");
  paged.BuildSortIndex("customer");

  // Append a batch.
  std::map<std::string, std::vector<uint32_t>> batch{
      {"customer", {3, 9, 3, 150}},
      {"amount", {10, 20, 30, 40}},
      {"day", {1, 2, 3, 4}}};
  flat.AppendRows(batch);
  paged.AppendRows(batch);
  EXPECT_EQ(paged.NumRows(), flat.NumRows());
  EXPECT_EQ(paged.ReadColumn("customer"), flat.Column("customer"));

  // Delete a scattered set of rows (stream-compacts every paged column).
  std::vector<Rid> dead;
  Pcg32 rng(17);
  for (int i = 0; i < 500; ++i) {
    dead.push_back(rng.Below(static_cast<uint32_t>(flat.NumRows())));
  }
  flat.DeleteRows(dead);
  paged.DeleteRows(dead);
  EXPECT_EQ(paged.NumRows(), flat.NumRows());
  EXPECT_EQ(paged.ReadColumn("customer"), flat.Column("customer"));
  EXPECT_EQ(paged.ReadColumn("amount"), flat.Column("amount"));

  // Keyed update: delete-by-key plus inserts, one maintenance batch.
  std::map<std::string, std::vector<uint32_t>> inserts{
      {"customer", {5, 5}}, {"amount", {7, 8}}, {"day", {9, 10}}};
  flat.ApplyUpdate("customer", {5, 42}, inserts);
  paged.ApplyUpdate("customer", {5, 42}, inserts);
  EXPECT_EQ(paged.NumRows(), flat.NumRows());
  EXPECT_EQ(paged.ReadColumn("customer"), flat.Column("customer"));
  EXPECT_EQ(paged.GetSortIndex("customer").sorted_keys(),
            flat.GetSortIndex("customer").sorted_keys());
  EXPECT_EQ(paged.GetSortIndex("customer").rids(),
            flat.GetSortIndex("customer").rids());
  ExpectSameAnswers(flat, paged, "after mutations");
}

TEST(PagedTable, StringColumnsWorkPaged) {
  TableOptions opts;
  opts.page_bytes = 64;
  opts.buffer_pages = 2;
  Table t(opts);
  std::vector<std::string> cities;
  const std::vector<std::string> pool{"austin", "boston", "chicago", "denver"};
  for (int i = 0; i < 300; ++i) cities.push_back(pool[i % pool.size()]);
  t.AddStringColumn("city", std::move(cities));
  EXPECT_TRUE(t.HasStringColumn("city"));
  EXPECT_EQ(SelectEqual(t, "city", std::string("boston")).size(), 75u);
  EXPECT_EQ(CountRange(t, "city", std::string("b"), std::string("d")), 150u);
  t.BuildSortIndex("city");
  EXPECT_EQ(SelectEqual(t, "city", std::string("boston")).size(), 75u);
}

TEST(PagedTable, ColumnThrowsAndViewServesInPagedMode) {
  TableOptions opts;
  opts.page_bytes = 64;
  opts.buffer_pages = 2;
  Table t(opts);
  t.AddColumn("x", {1, 2, 3});
  EXPECT_THROW(t.Column("x"), std::logic_error);
  EXPECT_EQ(t.ReadColumn("x"), (std::vector<uint32_t>{1, 2, 3}));
  ColumnView view = t.View("x");
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view.At(1), 2u);
  // Pool counters are exposed (and something actually faulted).
  EXPECT_GT(t.PoolStats().pins, 0u);
  Table flat;
  flat.AddColumn("x", {1});
  EXPECT_THROW(flat.PoolStats(), std::logic_error);
}

}  // namespace
}  // namespace cssidx::engine
