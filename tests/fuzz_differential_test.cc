// Randomized differential testing: many random configurations (size,
// distribution, node size), thousands of random probes, every method
// checked against every other and against the STL oracle — scalar and
// batched probes both — plus randomized batch-update/rebuild cycles where
// a plain std::vector is the model, driven through MaintainedIndex across
// the whole spec menu (shard-incremental part:K refresh included).
// Deterministic seeds; failures print the reproducing configuration.

#include <algorithm>
#include <utility>
#include <vector>

#include "core/builder.h"
#include "core/maintained_index.h"
#include "core/range.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

std::vector<Key> RandomKeys(Pcg32& rng, size_t n) {
  switch (rng.Below(4)) {
    case 0:
      return workload::DistinctSortedKeys(n, rng.Next(), 1 + rng.Below(16));
    case 1:
      return workload::KeysWithDuplicates(n, 1 + rng.Below(64), rng.Next());
    case 2:
      return workload::LinearKeys(n, rng.Below(1000), 1 + rng.Below(8));
    default:
      return n >= 10 ? workload::ClusteredKeys(n, 1 + rng.Below(8), rng.Next())
                     : workload::DistinctSortedKeys(n, rng.Next(), 2);
  }
}

TEST(FuzzDifferential, AllMethodsAgreeWithOracle) {
  Pcg32 rng(0xfeedface);
  const std::vector<int> node_menu{4, 8, 16, 24, 32};
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = rng.Below(3000);
    auto keys = RandomKeys(rng, n);
    n = keys.size();
    int node_entries = node_menu[rng.Below(
        static_cast<uint32_t>(node_menu.size()))];
    int hash_dir_bits = static_cast<int>(rng.Below(10));

    std::vector<AnyIndex> indexes;
    for (const IndexSpec& spec :
         test_menu::DefaultSpecs(node_entries, hash_dir_bits)) {
      AnyIndex index = BuildIndex(spec, keys);
      if (index) indexes.push_back(std::move(index));
    }
    ASSERT_GE(indexes.size(), 7u);  // level CSS may drop out on m=24

    uint32_t probe_ceiling = keys.empty() ? 100 : keys.back() + 3;
    std::vector<Key> probes(400);
    for (Key& k : probes) k = rng.Below(probe_ceiling);

    // STL oracle, computed once per probe.
    std::vector<int64_t> want_find(probes.size());
    std::vector<size_t> want_lower(probes.size());
    std::vector<size_t> want_count(probes.size());
    for (size_t p = 0; p < probes.size(); ++p) {
      auto lo = std::lower_bound(keys.begin(), keys.end(), probes[p]);
      auto hi = std::upper_bound(keys.begin(), keys.end(), probes[p]);
      bool present = lo != keys.end() && *lo == probes[p];
      want_find[p] =
          present ? static_cast<int64_t>(lo - keys.begin()) : kNotFound;
      want_lower[p] = static_cast<size_t>(lo - keys.begin());
      want_count[p] = static_cast<size_t>(hi - lo);
    }

    std::vector<int64_t> batch_find(probes.size());
    std::vector<size_t> batch_lower(probes.size());
    std::vector<PositionRange> batch_range(probes.size());
    std::vector<size_t> batch_count(probes.size());
    for (const AnyIndex& index : indexes) {
      // The batch entry points are the contract; the scalar calls they are
      // compared against are batches of one through the same virtual hop.
      index.FindBatch(probes, batch_find);
      index.LowerBoundBatch(probes, batch_lower);
      index.EqualRangeBatch(probes, batch_range);
      index.CountEqualBatch(probes, batch_count);
      for (size_t p = 0; p < probes.size(); ++p) {
        Key k = probes[p];
        ASSERT_EQ(batch_find[p], want_find[p])
            << index.Name() << " trial=" << trial << " n=" << n
            << " m=" << node_entries << " k=" << k;
        ASSERT_EQ(index.Find(k), want_find[p])
            << index.Name() << " trial=" << trial << " k=" << k;
        ASSERT_EQ(index.CountEqual(k), want_count[p])
            << index.Name() << " trial=" << trial << " k=" << k;
        ASSERT_EQ(batch_count[p], want_count[p])
            << index.Name() << " trial=" << trial << " k=" << k;
        // Expected duplicate-run span: ordered methods anchor an absent
        // key's empty span at its insertion point, hash at size().
        size_t want_begin = index.SupportsOrderedAccess() || want_count[p] > 0
                                ? want_lower[p]
                                : keys.size();
        ASSERT_EQ(batch_range[p],
                  (PositionRange{want_begin, want_begin + want_count[p]}))
            << index.Name() << " trial=" << trial << " k=" << k;
        ASSERT_EQ(index.EqualRange(k), batch_range[p])
            << index.Name() << " trial=" << trial << " k=" << k;
        if (index.SupportsOrderedAccess()) {
          ASSERT_EQ(batch_lower[p], want_lower[p])
              << index.Name() << " trial=" << trial << " k=" << k;
          ASSERT_EQ(index.LowerBound(k), want_lower[p])
              << index.Name() << " trial=" << trial << " k=" << k;
        }
      }
    }
  }
}

TEST(FuzzDifferential, RandomBoundRangesAgreeWithOracle) {
  // Random [lo, hi) bound pairs — inverted, empty, and wide ones included
  // — staged through the batched LowerBound kernels the way the engine
  // stages SelectRange bounds, checked against the STL oracle.
  Pcg32 rng(0x5eed);
  for (int trial = 0; trial < 20; ++trial) {
    auto keys = RandomKeys(rng, 100 + rng.Below(3000));
    uint32_t ceiling = keys.empty() ? 100 : keys.back() + 5;

    std::vector<std::pair<Key, Key>> bounds;
    for (int b = 0; b < 100; ++b) {
      Key lo = rng.Below(ceiling);
      Key hi = rng.Below(ceiling);
      if (b % 5 == 0) hi = lo;           // empty
      if (b % 7 == 0 && lo < hi) std::swap(lo, hi);  // inverted
      bounds.push_back({lo, hi});
    }
    std::vector<Key> staged;
    for (auto [lo, hi] : bounds) {
      staged.push_back(lo);
      staged.push_back(hi);
    }

    for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 8)) {
      if (!spec.ordered()) continue;  // hash serves no positional bounds
      AnyIndex index = BuildIndex(spec, keys);
      ASSERT_TRUE(index) << spec.ToString();
      std::vector<size_t> pos(staged.size());
      index.LowerBoundBatch(staged, pos);
      for (size_t b = 0; b < bounds.size(); ++b) {
        auto [lo, hi] = bounds[b];
        size_t want_begin = static_cast<size_t>(
            std::lower_bound(keys.begin(), keys.end(), lo) - keys.begin());
        size_t want_end = static_cast<size_t>(
            std::lower_bound(keys.begin(), keys.end(), hi) - keys.begin());
        if (hi <= lo) want_end = want_begin;  // empty/inverted clamp
        PositionRange got = hi <= lo
                                ? PositionRange{pos[2 * b], pos[2 * b]}
                                : PositionRange{pos[2 * b], pos[2 * b + 1]};
        ASSERT_EQ(got, (PositionRange{want_begin, want_end}))
            << spec.ToString() << " trial=" << trial << " lo=" << lo
            << " hi=" << hi;
        // The scalar helper must agree with the staged-bounds path (it
        // anchors degenerate ranges at 0 rather than the insertion point,
        // so only live ranges compare positionally).
        if (hi > lo) {
          ASSERT_EQ(HalfOpenRange(index, lo, hi), got)
              << spec.ToString() << " trial=" << trial << " lo=" << lo
              << " hi=" << hi;
        }
      }
    }
  }
}

TEST(FuzzDifferential, BatchProbesAgreeAtEveryBatchSize) {
  // The group kernels have three internal regimes (full groups, the
  // sub-group remainder, chunk boundaries); sweep batch sizes across them.
  Pcg32 rng(0xba7c4);
  auto keys = workload::KeysWithDuplicates(5000, 700, 42);
  for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 8)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index);
    for (size_t batch : {size_t{1}, size_t{2}, size_t{7}, size_t{8},
                         size_t{9}, size_t{64}, size_t{255}, size_t{256},
                         size_t{257}, size_t{1000}}) {
      std::vector<Key> probes(batch);
      for (Key& k : probes) k = rng.Below(keys.back() + 3);
      std::vector<int64_t> found(batch);
      std::vector<size_t> lower(batch);
      index.FindBatch(probes, found);
      index.LowerBoundBatch(probes, lower);
      for (size_t i = 0; i < batch; ++i) {
        ASSERT_EQ(found[i], index.Find(probes[i]))
            << index.Name() << " batch=" << batch << " i=" << i;
        ASSERT_EQ(lower[i], index.LowerBound(probes[i]))
            << index.Name() << " batch=" << batch << " i=" << i;
      }
    }
  }
}

TEST(FuzzDifferential, BatchUpdateCyclesMatchVectorModel) {
  Pcg32 rng(0xc0ffee);
  for (int trial = 0; trial < 10; ++trial) {
    auto keys = workload::DistinctSortedKeys(500 + rng.Below(2000),
                                             rng.Next(), 3);
    std::vector<Key> model = keys;  // the oracle state
    MaintainedIndex index(IndexSpec(Method::kFullCss, 8), std::move(keys));

    for (int round = 0; round < 15; ++round) {
      workload::UpdateBatch batch;
      uint32_t dels = rng.Below(20);
      for (uint32_t i = 0; i < dels && !model.empty(); ++i) {
        batch.deletes.push_back(
            model[rng.Below(static_cast<uint32_t>(model.size()))]);
      }
      uint32_t ins = rng.Below(20);
      for (uint32_t i = 0; i < ins; ++i) {
        batch.inserts.push_back(rng.Below(1u << 16));
      }
      model = workload::ApplyBatch(model, batch);
      index.ApplyBatch(batch);

      auto snap = index.Snapshot();
      ASSERT_EQ(snap->keys(), model) << "trial=" << trial
                                     << " round=" << round;
      // Spot-probe the rebuilt index.
      for (int p = 0; p < 50; ++p) {
        Key k = rng.Below(1u << 16);
        auto lo = std::lower_bound(model.begin(), model.end(), k);
        ASSERT_EQ(snap->index().LowerBound(k),
                  static_cast<size_t>(lo - model.begin()))
            << "trial=" << trial << " round=" << round << " k=" << k;
      }
    }
  }
}

TEST(FuzzDifferential, MaintainedUpdateProbeInterleavingAcrossSpecMenu) {
  // Random update batches interleaved with random probe batches, every
  // spec on the shared menu (partitioned variants included), a sorted
  // vector as the model. This is the maintenance twin of
  // AllMethodsAgreeWithOracle: every op, after every batch, at a random
  // batch size.
  Pcg32 rng(0xdead5eed);
  for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 6)) {
    std::vector<Key> model = RandomKeys(rng, 200 + rng.Below(1500));
    MaintainedIndex index(spec, model);
    ASSERT_TRUE(index.ok()) << spec.ToString();

    for (int round = 0; round < 6; ++round) {
      workload::UpdateBatch batch;
      if (round != 2) {  // round 2 probes an unchanged version
        uint32_t dels = rng.Below(40);
        for (uint32_t i = 0; i < dels && !model.empty(); ++i) {
          batch.deletes.push_back(
              model[rng.Below(static_cast<uint32_t>(model.size()))]);
        }
        uint32_t ins = rng.Below(40);
        for (uint32_t i = 0; i < ins; ++i) {
          batch.inserts.push_back(rng.Below(1u << 14));
        }
      }
      model = workload::ApplyBatch(model, batch);
      index.ApplyBatch(batch);
      ASSERT_EQ(index.Snapshot()->keys(), model)
          << spec.ToString() << " round=" << round;

      size_t n_probes = 1 + rng.Below(300);
      uint32_t ceiling = model.empty() ? 100 : model.back() + 3;
      std::vector<Key> probes(n_probes);
      for (Key& k : probes) k = rng.Below(ceiling);
      std::vector<int64_t> found(n_probes);
      std::vector<size_t> lower(n_probes);
      std::vector<PositionRange> ranges(n_probes);
      std::vector<size_t> counts(n_probes);
      index.FindBatch(probes, found);
      index.LowerBoundBatch(probes, lower);
      index.EqualRangeBatch(probes, ranges);
      index.CountEqualBatch(probes, counts);
      for (size_t p = 0; p < n_probes; ++p) {
        auto lo = std::lower_bound(model.begin(), model.end(), probes[p]);
        auto hi = std::upper_bound(model.begin(), model.end(), probes[p]);
        auto want_lower = static_cast<size_t>(lo - model.begin());
        auto want_count = static_cast<size_t>(hi - lo);
        int64_t want_find = want_count > 0
                                ? static_cast<int64_t>(want_lower)
                                : kNotFound;
        ASSERT_EQ(found[p], want_find)
            << spec.ToString() << " round=" << round << " k=" << probes[p];
        ASSERT_EQ(counts[p], want_count)
            << spec.ToString() << " round=" << round << " k=" << probes[p];
        size_t want_begin = index.SupportsOrderedAccess() || want_count > 0
                                ? want_lower
                                : model.size();
        ASSERT_EQ(ranges[p],
                  (PositionRange{want_begin, want_begin + want_count}))
            << spec.ToString() << " round=" << round << " k=" << probes[p];
        if (index.SupportsOrderedAccess()) {
          ASSERT_EQ(lower[p], want_lower)
              << spec.ToString() << " round=" << round << " k=" << probes[p];
        }
      }
    }
  }
}

TEST(FuzzDifferential, ExtremeValueKeys) {
  // Keys hugging 0 and UINT32_MAX, every method, scalar and batched.
  std::vector<Key> keys{0,          1,          2,          100,
                        0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffffu};
  for (const IndexSpec& spec : test_menu::DefaultSpecs(4, 3)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    std::vector<int64_t> found(keys.size());
    index.FindBatch(keys, found);
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(index.Find(keys[i]), static_cast<int64_t>(i))
          << index.Name();
      ASSERT_EQ(found[i], static_cast<int64_t>(i)) << index.Name();
    }
    ASSERT_EQ(index.Find(3), kNotFound) << index.Name();
    if (index.SupportsOrderedAccess()) {
      ASSERT_EQ(index.LowerBound(0xffffffffu), 7u) << index.Name();
      ASSERT_EQ(index.LowerBound(0), 0u) << index.Name();
    }
  }
}

}  // namespace
}  // namespace cssidx
