#include "util/cli.h"

#include <vector>

#include "gtest/gtest.h"

namespace cssidx {
namespace {

CliArgs Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CliArgs(static_cast<int>(args.size()),
                 const_cast<char**>(args.data()));
}

TEST(Cli, EqualsForm) {
  CliArgs args = Parse({"--n=500", "--name=foo", "--rate=2.5"});
  EXPECT_EQ(args.GetInt("n", 0), 500);
  EXPECT_EQ(args.GetString("name", ""), "foo");
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0), 2.5);
}

TEST(Cli, SpaceForm) {
  CliArgs args = Parse({"--n", "123", "--label", "abc"});
  EXPECT_EQ(args.GetInt("n", 0), 123);
  EXPECT_EQ(args.GetString("label", ""), "abc");
}

TEST(Cli, BareFlagIsTrue) {
  CliArgs args = Parse({"--quick"});
  EXPECT_TRUE(args.Has("quick"));
  EXPECT_TRUE(args.GetBool("quick"));
}

TEST(Cli, Defaults) {
  CliArgs args = Parse({});
  EXPECT_FALSE(args.Has("n"));
  EXPECT_EQ(args.GetInt("n", 42), 42);
  EXPECT_EQ(args.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(args.GetBool("flag", false));
  EXPECT_TRUE(args.GetBool("flag", true));
}

TEST(Cli, ExplicitFalse) {
  CliArgs args = Parse({"--verbose=false", "--debug=0"});
  EXPECT_FALSE(args.GetBool("verbose", true));
  EXPECT_FALSE(args.GetBool("debug", true));
}

TEST(Cli, NegativeNumbersViaEquals) {
  CliArgs args = Parse({"--delta=-5"});
  EXPECT_EQ(args.GetInt("delta", 0), -5);
}

}  // namespace
}  // namespace cssidx
