#include "util/cli.h"

#include <vector>

#include "gtest/gtest.h"

namespace cssidx {
namespace {

CliArgs Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CliArgs(static_cast<int>(args.size()),
                 const_cast<char**>(args.data()));
}

TEST(Cli, EqualsForm) {
  CliArgs args = Parse({"--n=500", "--name=foo", "--rate=2.5"});
  EXPECT_EQ(args.GetInt("n", 0), 500);
  EXPECT_EQ(args.GetString("name", ""), "foo");
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0), 2.5);
}

TEST(Cli, SpaceForm) {
  CliArgs args = Parse({"--n", "123", "--label", "abc"});
  EXPECT_EQ(args.GetInt("n", 0), 123);
  EXPECT_EQ(args.GetString("label", ""), "abc");
}

TEST(Cli, BareFlagIsTrue) {
  CliArgs args = Parse({"--quick"});
  EXPECT_TRUE(args.Has("quick"));
  EXPECT_TRUE(args.GetBool("quick"));
}

TEST(Cli, Defaults) {
  CliArgs args = Parse({});
  EXPECT_FALSE(args.Has("n"));
  EXPECT_EQ(args.GetInt("n", 42), 42);
  EXPECT_EQ(args.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(args.GetBool("flag", false));
  EXPECT_TRUE(args.GetBool("flag", true));
}

TEST(Cli, ExplicitFalse) {
  CliArgs args = Parse({"--verbose=false", "--debug=0"});
  EXPECT_FALSE(args.GetBool("verbose", true));
  EXPECT_FALSE(args.GetBool("debug", true));
}

TEST(Cli, NegativeNumbersViaEquals) {
  CliArgs args = Parse({"--delta=-5"});
  EXPECT_EQ(args.GetInt("delta", 0), -5);
}

// Malformed or out-of-range values must stop the run naming the flag, not
// silently truncate ("--n=10e6" used to parse as 10) or default to 0.

TEST(CliDeathTest, IntRejectsScientificNotation) {
  CliArgs args = Parse({"--n=10e6"});
  EXPECT_EXIT(args.GetInt("n", 0), testing::ExitedWithCode(2),
              "invalid value for --n: '10e6'");
}

TEST(CliDeathTest, IntRejectsNonNumeric) {
  CliArgs args = Parse({"--budget=abc"});
  EXPECT_EXIT(args.GetInt("budget", 0), testing::ExitedWithCode(2),
              "invalid value for --budget: 'abc'");
}

TEST(CliDeathTest, IntRejectsTrailingGarbage) {
  CliArgs args = Parse({"--n=123x"});
  EXPECT_EXIT(args.GetInt("n", 0), testing::ExitedWithCode(2),
              "invalid value for --n");
}

TEST(CliDeathTest, IntRejectsOutOfRange) {
  CliArgs args = Parse({"--n=99999999999999999999999"});
  EXPECT_EXIT(args.GetInt("n", 0), testing::ExitedWithCode(2),
              "invalid value for --n");
}

TEST(CliDeathTest, IntRejectsEmptyValue) {
  CliArgs args = Parse({"--n="});
  EXPECT_EXIT(args.GetInt("n", 0), testing::ExitedWithCode(2),
              "invalid value for --n");
}

TEST(CliDeathTest, DoubleRejectsNonNumeric) {
  CliArgs args = Parse({"--rate=fast"});
  EXPECT_EXIT(args.GetDouble("rate", 0), testing::ExitedWithCode(2),
              "invalid value for --rate: 'fast'");
}

TEST(CliDeathTest, DoubleRejectsOverflowToInfinity) {
  CliArgs args = Parse({"--rate=1e999"});
  EXPECT_EXIT(args.GetDouble("rate", 0), testing::ExitedWithCode(2),
              "invalid value for --rate");
}

TEST(CliDeathTest, DoubleRejectsTrailingGarbage) {
  CliArgs args = Parse({"--rate=2.5mb"});
  EXPECT_EXIT(args.GetDouble("rate", 0), testing::ExitedWithCode(2),
              "invalid value for --rate");
}

TEST(Cli, DoubleAcceptsScientificNotation) {
  CliArgs args = Parse({"--rate=10e6"});
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0), 1e7);
}

}  // namespace
}  // namespace cssidx
