#include "util/stats.h"

#include <cmath>

#include "gtest/gtest.h"

namespace cssidx {
namespace {

TEST(Stats, EmptyInput) {
  RunStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.mean, 0);
}

TEST(Stats, SingleSample) {
  RunStats s = Summarize({3.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, OddCountMedian) {
  RunStats s = Summarize({5, 1, 3});
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
}

TEST(Stats, EvenCountMedian) {
  RunStats s = Summarize({4, 1, 3, 2});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, KnownStddev) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  RunStats s = Summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(Stats, MinIsThePaperMetric) {
  // §6.1: "We repeated each test five times and report the minimal time."
  RunStats s = Summarize({0.22, 0.21, 0.25, 0.20, 0.23});
  EXPECT_DOUBLE_EQ(s.min, 0.20);
  EXPECT_EQ(s.count, 5u);
}

}  // namespace
}  // namespace cssidx
