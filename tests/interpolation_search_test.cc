#include "baselines/interpolation_search.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

void OracleCheck(const std::vector<Key>& keys) {
  InterpolationSearchIndex index(keys);
  std::vector<Key> probes;
  for (Key k : keys) {
    probes.push_back(k);
    if (k > 0) probes.push_back(k - 1);
    probes.push_back(k + 1);
  }
  probes.push_back(0);
  if (!keys.empty()) probes.push_back(keys.back() + 1000);
  for (Key k : probes) {
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
    ASSERT_EQ(index.LowerBound(k), expected) << "k=" << k;
  }
}

TEST(InterpolationSearch, UniformData) {
  OracleCheck(workload::DistinctSortedKeys(5000, 3, 4));
}

TEST(InterpolationSearch, LinearData) {
  OracleCheck(workload::LinearKeys(5000, 100, 7));
}

TEST(InterpolationSearch, SkewedData) {
  OracleCheck(workload::SkewedKeys(5000, 5));
}

TEST(InterpolationSearch, ClusteredData) {
  OracleCheck(workload::ClusteredKeys(3000, 5, 9));
}

TEST(InterpolationSearch, DuplicateHeavyData) {
  OracleCheck(workload::KeysWithDuplicates(2000, 30, 11));
}

TEST(InterpolationSearch, SmallSizesSweep) {
  for (size_t n = 0; n <= 64; ++n) {
    OracleCheck(workload::DistinctSortedKeys(n, 100 + n, 5));
  }
}

TEST(InterpolationSearch, AllEqualArray) {
  std::vector<Key> keys(100, 7);
  InterpolationSearchIndex index(keys);
  EXPECT_EQ(index.LowerBound(7), 0u);
  EXPECT_EQ(index.LowerBound(6), 0u);
  EXPECT_EQ(index.LowerBound(8), 100u);
  EXPECT_EQ(index.CountEqual(7), 100u);
}

TEST(InterpolationSearch, AdversarialProgressBound) {
  // One far outlier makes every interpolation probe land at index 1; the
  // bisect fallback must keep this fast and correct.
  std::vector<Key> keys;
  for (Key i = 0; i < 20000; ++i) keys.push_back(i);
  keys.push_back(0xf0000000u);
  InterpolationSearchIndex index(keys);
  EXPECT_EQ(index.Find(19999), 19999);
  EXPECT_EQ(index.Find(0xf0000000u), 20000);
  EXPECT_EQ(index.LowerBound(30000), 20000u);
}

TEST(InterpolationSearch, ZeroSpace) {
  auto keys = workload::DistinctSortedKeys(10, 1, 4);
  EXPECT_EQ(InterpolationSearchIndex(keys).SpaceBytes(), 0u);
}

}  // namespace
}  // namespace cssidx
