// Parallel batch probes: FindBatch/LowerBoundBatch with any thread count
// must equal the scalar probe loop bit-for-bit — sharding splits the probe
// span into contiguous chunks whose results land in place, so there is no
// merge step to get wrong — across every spec, batch sizes straddling the
// shard threshold, and repeated runs (the determinism test is what the
// TSan CI lane leans on to surface racy shard claims).

#include <algorithm>
#include <string>
#include <vector>

#include "core/builder.h"
#include "engine/query.h"
#include "engine/table.h"
#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx {
namespace {

std::vector<Key> TestKeys(size_t n, uint64_t seed) {
  // Duplicates included so leftmost-match semantics are exercised.
  return workload::KeysWithDuplicates(n, std::max<size_t>(1, n / 4), seed);
}

std::vector<Key> TestProbes(const std::vector<Key>& keys, size_t count,
                            uint64_t seed) {
  auto probes = workload::MatchingLookups(keys, count - count / 4, seed);
  auto missing = workload::MissingLookups(keys, count / 4, seed + 1);
  probes.insert(probes.end(), missing.begin(), missing.end());
  return probes;
}

TEST(ParallelProbe, MatchesScalarLoopAcrossSpecsAndThreadCounts) {
  ThreadPool pool(3);  // real workers even on a 1-core CI machine
  auto keys = TestKeys(20000, /*seed=*/11);
  // Probe-span sizes straddling the kParallelProbeMinShard threshold: the
  // inline path, the exact boundary, one past it, and several shards.
  const std::vector<size_t> probe_counts{1,    100,
                                         kParallelProbeMinShard - 1,
                                         kParallelProbeMinShard,
                                         kParallelProbeMinShard + 1,
                                         3 * kParallelProbeMinShard,
                                         50000};
  for (const std::string& text : test_menu::SpecStrings()) {
    IndexSpec spec = *IndexSpec::Parse(text);
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << text;
    for (size_t count : probe_counts) {
      auto probes = TestProbes(keys, count, /*seed=*/count);
      std::vector<int64_t> expected_find(probes.size());
      std::vector<size_t> expected_lower(probes.size());
      for (size_t i = 0; i < probes.size(); ++i) {
        expected_find[i] = index.Find(probes[i]);
        expected_lower[i] = index.LowerBound(probes[i]);
      }
      for (int threads : {1, 2, 3, 8, 0}) {
        ProbeOptions opts{.threads = threads, .min_shard = 1024,
                          .pool = &pool};
        std::vector<int64_t> got_find(probes.size(), -2);
        std::vector<size_t> got_lower(probes.size(), ~size_t{0});
        index.FindBatch(probes, got_find, opts);
        index.LowerBoundBatch(probes, got_lower, opts);
        ASSERT_EQ(got_find, expected_find)
            << text << " probes=" << count << " threads=" << threads;
        ASSERT_EQ(got_lower, expected_lower)
            << text << " probes=" << count << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelProbe, SpecSuffixDrivesParallelismThroughTheFacade) {
  auto spec = IndexSpec::Parse("css:16@t4");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->probe_threads(), 4);
  auto keys = TestKeys(30000, /*seed=*/5);
  AnyIndex parallel_index = BuildIndex(*spec, keys);
  AnyIndex scalar_index = BuildIndex(*IndexSpec::Parse("css:16"), keys);
  ASSERT_TRUE(parallel_index);
  // Same tree underneath: the suffix is an execution policy only.
  EXPECT_EQ(parallel_index.SpaceBytes(), scalar_index.SpaceBytes());

  auto probes = TestProbes(keys, 20000, /*seed=*/6);
  std::vector<int64_t> expected(probes.size());
  std::vector<int64_t> got(probes.size());
  scalar_index.FindBatch(probes, expected);
  parallel_index.FindBatch(probes, got);  // spec-driven sharding
  EXPECT_EQ(got, expected);
}

TEST(ParallelProbe, RepeatedRunsAreDeterministic) {
  // Shard claim order races on purpose (atomic counter); results must not.
  // Repeated identical dispatches give TSan a window to catch any write
  // outside a shard's own sub-span.
  ThreadPool pool(3);
  auto keys = TestKeys(40000, /*seed=*/23);
  AnyIndex index = BuildIndex(*IndexSpec::Parse("css:16"), keys);
  ASSERT_TRUE(index);
  auto probes = TestProbes(keys, 30000, /*seed=*/29);
  ProbeOptions opts{.threads = 4, .min_shard = 1024, .pool = &pool};

  std::vector<int64_t> first(probes.size());
  index.FindBatch(probes, first, opts);
  for (int run = 0; run < 10; ++run) {
    std::vector<int64_t> again(probes.size(), -2);
    index.FindBatch(probes, again, opts);
    ASSERT_EQ(again, first) << "run " << run;
  }
}

TEST(ParallelProbe, FindBlockedWithOptionsCoversEveryBlock) {
  ThreadPool pool(2);
  auto keys = TestKeys(10000, /*seed=*/41);
  AnyIndex index = BuildIndex(*IndexSpec::Parse("btree:32"), keys);
  auto probes = TestProbes(keys, 9000, /*seed=*/43);
  std::vector<int64_t> expected(probes.size());
  index.FindBatch(probes, expected);
  // Block size below and above the shard grain.
  for (size_t block : {512, 2048, 9000}) {
    std::vector<int64_t> got(probes.size(), -2);
    FindBlocked(index, probes, block,
                std::span<int64_t>(got),
                ProbeOptions{.threads = 2, .min_shard = 1024, .pool = &pool});
    ASSERT_EQ(got, expected) << "block=" << block;
  }
}

TEST(ParallelProbe, EngineJoinIsIdenticalUnderParallelSpecs) {
  // IndexedJoin auto-shards its probe span (threads = 0); a join against a
  // "@t3" inner index must produce exactly the sequential pair list.
  using engine::Table;
  Pcg32 rng(7);
  std::vector<uint32_t> inner_col(20000), outer_col(30000);
  for (auto& v : inner_col) v = rng.Below(5000);
  for (auto& v : outer_col) v = rng.Below(6000);

  Table inner_seq, inner_par, outer;
  inner_seq.AddColumn("k", inner_col);
  inner_par.AddColumn("k", inner_col);
  outer.AddColumn("k", outer_col);
  inner_seq.BuildSortIndex("k", *IndexSpec::Parse("css:16"));
  inner_par.BuildSortIndex("k", *IndexSpec::Parse("css:16@t3"));

  auto expected = engine::IndexedJoin(outer, "k", inner_seq, "k");
  auto got = engine::IndexedJoin(outer, "k", inner_par, "k");
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].outer, expected[i].outer) << i;
    ASSERT_EQ(got[i].inner, expected[i].inner) << i;
  }
}

}  // namespace
}  // namespace cssidx
