#include "core/builder.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

TEST(Builder, BuildsEverySpec) {
  auto keys = workload::DistinctSortedKeys(5000, 3, 4);
  for (const IndexSpec& spec : AllSpecs(16, 8)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    EXPECT_EQ(index.size(), keys.size());
    EXPECT_EQ(index.spec(), spec);
    // Every method finds present keys at the right position.
    for (size_t i = 0; i < keys.size(); i += 97) {
      ASSERT_EQ(index.Find(keys[i]), static_cast<int64_t>(i))
          << spec.ToString();
    }
    EXPECT_EQ(index.Find(keys.back() + 1), kNotFound) << spec.ToString();
  }
}

TEST(Builder, OrderedMethodsSupportLowerBound) {
  auto keys = workload::DistinctSortedKeys(2000, 5, 4);
  for (const IndexSpec& spec : AllSpecs(16, 6)) {
    AnyIndex index = BuildIndex(spec, keys);
    ASSERT_TRUE(index) << spec.ToString();
    EXPECT_EQ(index.SupportsOrderedAccess(), spec.ordered())
        << spec.ToString();
    if (!spec.ordered()) continue;
    Key probe = keys[1000] + 1;
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
    EXPECT_EQ(index.LowerBound(probe), expected) << spec.ToString();
  }
}

TEST(Builder, NodeSizeMenu) {
  auto keys = workload::DistinctSortedKeys(100, 1, 4);
  for (int m : NodeSizeMenu()) {
    EXPECT_TRUE(BuildIndex(*IndexSpec::Parse("css:" + std::to_string(m)),
                           keys))
        << m;
    EXPECT_TRUE(BuildIndex(*IndexSpec::Parse("ttree:" + std::to_string(m)),
                           keys))
        << m;
    EXPECT_TRUE(BuildIndex(*IndexSpec::Parse("btree:" + std::to_string(m)),
                           keys))
        << m;
  }
  // Level CSS-trees reject non-powers of two: the spec never parses, and a
  // hand-constructed spec is off the menu for the builder too.
  EXPECT_FALSE(IndexSpec::Parse("lcss:24").has_value());
  IndexSpec level24 = IndexSpec::Parse("lcss:32")->WithNodeEntries(24);
  EXPECT_FALSE(BuildIndex(level24, keys));
  EXPECT_TRUE(BuildIndex(*IndexSpec::Parse("lcss:32"), keys));
  // Off-menu sizes are rejected outright.
  EXPECT_FALSE(IndexSpec::Parse("css:12").has_value());
  EXPECT_FALSE(BuildIndex(IndexSpec().WithNodeEntries(12), keys));
}

TEST(Builder, NamesCarryNodeSize) {
  auto keys = workload::DistinctSortedKeys(100, 1, 4);
  AnyIndex index = BuildIndex(*IndexSpec::Parse("css:32"), keys);
  EXPECT_NE(index.Name().find("m=32"), std::string::npos);
}

TEST(Builder, SpaceOrderingMatchesFigure2) {
  // At the same node size: full CSS < level CSS < B+-tree < T-tree < hash.
  auto keys = workload::DistinctSortedKeys(100'000, 7, 4);
  // dir bits ~ n/keys-per-bucket, the paper's sizing.
  auto full = BuildIndex(*IndexSpec::Parse("css:16"), keys);
  auto level = BuildIndex(*IndexSpec::Parse("lcss:16"), keys);
  auto bplus = BuildIndex(*IndexSpec::Parse("btree:16"), keys);
  auto ttree = BuildIndex(*IndexSpec::Parse("ttree:16"), keys);
  auto hash = BuildIndex(*IndexSpec::Parse("hash:17"), keys);
  EXPECT_LT(full.SpaceBytes(), level.SpaceBytes());
  EXPECT_LT(level.SpaceBytes(), bplus.SpaceBytes());
  EXPECT_LT(bplus.SpaceBytes(), ttree.SpaceBytes());
  EXPECT_LT(ttree.SpaceBytes(), hash.SpaceBytes());
}

TEST(Builder, AnyIndexHasValueSemantics) {
  auto keys = workload::DistinctSortedKeys(1000, 9, 4);
  AnyIndex a = BuildIndex(IndexSpec(), keys);
  AnyIndex b = a;  // copy shares the immutable structure
  AnyIndex c;
  EXPECT_FALSE(c);
  c = std::move(a);
  EXPECT_TRUE(b);
  EXPECT_TRUE(c);
  EXPECT_EQ(b.Find(keys[500]), 500);
  EXPECT_EQ(c.Find(keys[500]), 500);
  EXPECT_EQ(b.Name(), c.Name());
}

}  // namespace
}  // namespace cssidx
