#include "core/builder.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

TEST(Builder, BuildsEveryMethod) {
  auto keys = workload::DistinctSortedKeys(5000, 3, 4);
  BuildOptions opts;
  opts.node_entries = 16;
  opts.hash_dir_bits = 8;
  for (Method m : AllMethods()) {
    auto index = BuildIndex(m, keys, opts);
    ASSERT_NE(index, nullptr) << MethodName(m);
    EXPECT_EQ(index->size(), keys.size());
    // Every method finds present keys at the right position.
    for (size_t i = 0; i < keys.size(); i += 97) {
      ASSERT_EQ(index->Find(keys[i]), static_cast<int64_t>(i))
          << MethodName(m);
    }
    EXPECT_EQ(index->Find(keys.back() + 1), kNotFound) << MethodName(m);
  }
}

TEST(Builder, OrderedMethodsSupportLowerBound) {
  auto keys = workload::DistinctSortedKeys(2000, 5, 4);
  BuildOptions opts;
  opts.hash_dir_bits = 6;
  for (Method m : AllMethods()) {
    auto index = BuildIndex(m, keys, opts);
    ASSERT_NE(index, nullptr);
    if (m == Method::kHash) {
      EXPECT_FALSE(index->SupportsOrderedAccess());
      continue;
    }
    EXPECT_TRUE(index->SupportsOrderedAccess()) << MethodName(m);
    Key probe = keys[1000] + 1;
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
    EXPECT_EQ(index->LowerBound(probe), expected) << MethodName(m);
  }
}

TEST(Builder, NodeSizeMenu) {
  auto keys = workload::DistinctSortedKeys(100, 1, 4);
  BuildOptions opts;
  for (int m : {4, 8, 16, 24, 32, 64, 128}) {
    opts.node_entries = m;
    EXPECT_NE(BuildIndex(Method::kFullCss, keys, opts), nullptr) << m;
    EXPECT_NE(BuildIndex(Method::kTTree, keys, opts), nullptr) << m;
    EXPECT_NE(BuildIndex(Method::kBPlusTree, keys, opts), nullptr) << m;
  }
  // Level CSS-trees reject non-powers of two.
  opts.node_entries = 24;
  EXPECT_EQ(BuildIndex(Method::kLevelCss, keys, opts), nullptr);
  opts.node_entries = 32;
  EXPECT_NE(BuildIndex(Method::kLevelCss, keys, opts), nullptr);
  // Off-menu sizes are rejected outright.
  opts.node_entries = 12;
  EXPECT_EQ(BuildIndex(Method::kFullCss, keys, opts), nullptr);
}

TEST(Builder, NamesCarryNodeSize) {
  auto keys = workload::DistinctSortedKeys(100, 1, 4);
  BuildOptions opts;
  opts.node_entries = 32;
  auto index = BuildIndex(Method::kFullCss, keys, opts);
  EXPECT_NE(index->Name().find("m=32"), std::string::npos);
}

TEST(Builder, SpaceOrderingMatchesFigure2) {
  // At the same node size: full CSS < level CSS < B+-tree < T-tree < hash.
  auto keys = workload::DistinctSortedKeys(100'000, 7, 4);
  BuildOptions opts;
  opts.node_entries = 16;
  opts.hash_dir_bits = 17;  // ~ n/keys-per-bucket, the paper's sizing
  auto full = BuildIndex(Method::kFullCss, keys, opts);
  auto level = BuildIndex(Method::kLevelCss, keys, opts);
  auto bplus = BuildIndex(Method::kBPlusTree, keys, opts);
  auto ttree = BuildIndex(Method::kTTree, keys, opts);
  auto hash = BuildIndex(Method::kHash, keys, opts);
  EXPECT_LT(full->SpaceBytes(), level->SpaceBytes());
  EXPECT_LT(level->SpaceBytes(), bplus->SpaceBytes());
  EXPECT_LT(bplus->SpaceBytes(), ttree->SpaceBytes());
  EXPECT_LT(ttree->SpaceBytes(), hash->SpaceBytes());
}

}  // namespace
}  // namespace cssidx
