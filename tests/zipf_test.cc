#include "util/zipf.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace cssidx {
namespace {

TEST(Zipf, RanksInRange) {
  ZipfGenerator zipf(100, 0.99, 1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t r = zipf.Next();
    EXPECT_LT(r, 100u);
  }
}

TEST(Zipf, Deterministic) {
  ZipfGenerator a(1000, 0.8, 7), b(1000, 0.8, 7);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  ZipfGenerator zipf(10000, 0.99, 3);
  constexpr int kDraws = 50000;
  int top10 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 10) ++top10;
  }
  // With theta=0.99 over 10k ranks, the top 10 ranks draw a large share
  // (roughly 30%); uniform would give 0.1%.
  EXPECT_GT(top10, kDraws / 10);
}

TEST(Zipf, HigherThetaIsMoreSkewed) {
  auto Top1Share = [](double theta) {
    ZipfGenerator zipf(1000, theta, 5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
      if (zipf.Next() == 0) ++hits;
    }
    return hits;
  };
  EXPECT_GT(Top1Share(1.2), Top1Share(0.5));
}

TEST(Zipf, MatchesTheoreticalFrequencies) {
  // For theta = 1, P(rank k) = (1/k) / H_n. Check rank 1 vs rank 2 ratio.
  ZipfGenerator zipf(100, 1.0, 11);
  std::vector<int> counts(100, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next()];
  double ratio = static_cast<double>(counts[0]) / counts[1];
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(Zipf, ThetaBelowOneAndAboveOneWork) {
  for (double theta : {0.2, 0.8, 1.0, 1.5}) {
    ZipfGenerator zipf(50, theta, 2);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(), 50u);
  }
}

}  // namespace
}  // namespace cssidx
