// The rebuild-and-swap concurrency wrapper: readers must always see a
// consistent (keys, directory) pair, snapshots must survive writer churn,
// and concurrent readers + a batching writer must never observe a torn
// index.

#include "core/versioned_index.h"

#include <atomic>
#include <thread>
#include <vector>

#include "core/full_css_tree.h"
#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

using Index = VersionedIndex<FullCssTree<16>>;

TEST(VersionedIndex, BasicLookupThroughCurrentVersion) {
  auto keys = workload::DistinctSortedKeys(10'000, 3, 4);
  Index index(keys);
  EXPECT_EQ(index.size(), keys.size());
  EXPECT_EQ(index.Find(keys[123]), 123);
  EXPECT_EQ(index.Find(keys.back() + 1), kNotFound);
}

TEST(VersionedIndex, ApplyBatchPublishesNewVersion) {
  auto keys = workload::DistinctSortedKeys(1'000, 3, 4);
  Index index(keys);
  workload::UpdateBatch batch;
  Key fresh = keys.back() + 10;
  batch.inserts = {fresh};
  batch.deletes = {keys[0]};
  index.ApplyBatch(batch);
  EXPECT_NE(index.Find(fresh), kNotFound);
  EXPECT_EQ(index.Find(keys[0]), kNotFound);
  EXPECT_EQ(index.size(), keys.size());  // one in, one out
}

TEST(VersionedIndex, SnapshotSurvivesWriterChurn) {
  auto keys = workload::DistinctSortedKeys(1'000, 3, 4);
  Index index(keys);
  auto snapshot = index.Snapshot();
  Key original_first = keys[0];

  // Writer deletes the first key several times over.
  for (int round = 0; round < 5; ++round) {
    workload::UpdateBatch batch;
    batch.deletes = {original_first};
    batch.inserts = {keys.back() + 100 + static_cast<Key>(round)};
    index.ApplyBatch(batch);
  }
  // The old snapshot still sees the pre-update world.
  EXPECT_EQ(snapshot->index().Find(original_first), 0);
  // The live index does not.
  EXPECT_EQ(index.Find(original_first), kNotFound);
}

TEST(VersionedIndex, ConcurrentReadersWithWriter) {
  auto keys = workload::DistinctSortedKeys(50'000, 5, 4);
  Index index(keys);
  // Keys in the front half are never touched by the writer, so every
  // reader must find them in every version.
  std::vector<Key> stable(keys.begin(), keys.begin() + 25'000);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t i = static_cast<uint64_t>(t) * 7919;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = index.Snapshot();
        Key k = stable[i % stable.size()];
        if (snap->index().Find(k) == kNotFound) {
          reader_failures.fetch_add(1);
        }
        ++i;
      }
    });
  }

  // Writer: 30 rounds of batches touching only the back half.
  for (int round = 0; round < 30; ++round) {
    workload::UpdateBatch batch;
    batch.deletes = {keys[30'000 + round]};
    batch.inserts = {keys.back() + 1000 + static_cast<Key>(round)};
    index.ApplyBatch(batch);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0u);
  // All 30 inserts present, all 30 deletes gone.
  for (int round = 0; round < 30; ++round) {
    EXPECT_NE(index.Find(keys.back() + 1000 + static_cast<Key>(round)),
              kNotFound);
    EXPECT_EQ(index.Find(keys[30'000 + round]), kNotFound);
  }
}

TEST(VersionedIndex, RebuildReplacesDataset) {
  Index index(workload::DistinctSortedKeys(100, 1, 4));
  auto fresh = workload::DistinctSortedKeys(200, 2, 4);
  index.Rebuild(fresh);
  EXPECT_EQ(index.size(), 200u);
  EXPECT_EQ(index.Find(fresh[50]), 50);
}

}  // namespace
}  // namespace cssidx
