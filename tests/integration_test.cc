// End-to-end flows across modules: the OLAP batch-update-and-rebuild cycle,
// range queries through LowerBound, domain-dictionary encoding, and an
// indexed nested-loop join — the §2.2 use cases the examples demonstrate.

#include <algorithm>
#include <vector>

#include "core/builder.h"
#include "core/full_css_tree.h"
#include "gtest/gtest.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace cssidx {
namespace {

TEST(Integration, BatchUpdateRebuildCycle) {
  auto keys = workload::DistinctSortedKeys(20'000, 3, 4);
  FullCssTree<16> index(keys);

  // Apply three rounds of batch updates, rebuilding each time (§4.1.1:
  // "when batch updates arrive, we can afford to rebuild the CSS-tree").
  for (uint64_t round = 0; round < 3; ++round) {
    auto batch = workload::RandomBatch(keys, 0.1, 100 + round);
    keys = workload::ApplyBatch(keys, batch);
    index = FullCssTree<16>(keys);
    ASSERT_EQ(index.size(), keys.size());
    // Every inserted key is findable; every deleted-and-not-reinserted key
    // is gone.
    for (Key k : batch.inserts) {
      ASSERT_NE(index.Find(k), kNotFound) << "round " << round;
    }
    for (Key k : batch.deletes) {
      bool reinserted = std::find(batch.inserts.begin(), batch.inserts.end(),
                                  k) != batch.inserts.end();
      if (!reinserted) {
        ASSERT_EQ(index.Find(k), kNotFound) << "round " << round;
      }
    }
  }
}

TEST(Integration, RangeQueryViaLowerBound) {
  auto keys = workload::DistinctSortedKeys(50'000, 7, 4);
  FullCssTree<16> index(keys);
  // Range [lo_key, hi_key): positions [LowerBound(lo), LowerBound(hi)).
  for (int trial = 0; trial < 50; ++trial) {
    Key lo_key = keys[(trial * 997) % keys.size()];
    Key hi_key = lo_key + 500;
    size_t lo = index.LowerBound(lo_key);
    size_t hi = index.LowerBound(hi_key);
    auto expected_lo = std::lower_bound(keys.begin(), keys.end(), lo_key);
    auto expected_hi = std::lower_bound(keys.begin(), keys.end(), hi_key);
    ASSERT_EQ(lo, static_cast<size_t>(expected_lo - keys.begin()));
    ASSERT_EQ(hi, static_cast<size_t>(expected_hi - keys.begin()));
    for (size_t i = lo; i < hi; ++i) {
      ASSERT_GE(keys[i], lo_key);
      ASSERT_LT(keys[i], hi_key);
    }
  }
}

TEST(Integration, DomainDictionaryEncoding) {
  // §2.1: map column values to domain IDs by searching the sorted domain.
  auto domain = workload::DistinctSortedKeys(10'000, 9, 16);
  FullCssTree<16> dict(domain);
  auto column = workload::MatchingLookups(domain, 5'000, 10);
  for (Key value : column) {
    int64_t id = dict.Find(value);
    ASSERT_NE(id, kNotFound);
    ASSERT_EQ(domain[static_cast<size_t>(id)], value);
  }
  // Domain IDs preserve order (the paper keeps domain values sorted so
  // inequality predicates work on IDs directly).
  ASSERT_LT(dict.Find(domain[10]), dict.Find(domain[4000]));
}

TEST(Integration, IndexedNestedLoopJoin) {
  // §2.2: indexed nested-loop join probing a CSS-tree on the inner table.
  auto inner_keys = workload::DistinctSortedKeys(8'000, 11, 4);
  FullCssTree<16> inner_index(inner_keys);
  // Outer table: 70% of rows join, 30% dangle.
  auto outer = workload::MixedLookups(inner_keys, 20'000, 0.7, 12);

  size_t matches = 0;
  for (Key k : outer) {
    if (inner_index.Find(k) != kNotFound) ++matches;
  }
  size_t expected = 0;
  for (Key k : outer) {
    if (std::binary_search(inner_keys.begin(), inner_keys.end(), k)) {
      ++expected;
    }
  }
  EXPECT_EQ(matches, expected);
  EXPECT_EQ(matches, 14'000u);  // MixedLookups' exact hit count
}

TEST(Integration, AllMethodsAgreeOnARealWorkload) {
  auto keys = workload::DistinctSortedKeys(30'000, 13, 4);
  auto lookups = workload::MixedLookups(keys, 5'000, 0.5, 14);

  std::vector<AnyIndex> indexes;
  for (const IndexSpec& spec : AllSpecs(16, 12)) {
    indexes.push_back(BuildIndex(spec, keys));
    ASSERT_TRUE(indexes.back()) << spec.ToString();
  }
  // Probe the whole workload through the batch API; every method must
  // produce the identical result vector.
  std::vector<int64_t> expected(lookups.size());
  indexes[0].FindBatch(lookups, expected);
  std::vector<int64_t> found(lookups.size());
  for (const AnyIndex& index : indexes) {
    index.FindBatch(lookups, found);
    ASSERT_EQ(found, expected) << index.Name();
  }
}

}  // namespace
}  // namespace cssidx
