#include "core/range.h"

#include <algorithm>
#include <vector>

#include "baselines/binary_search.h"
#include "core/full_css_tree.h"
#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

TEST(Range, EqualRangeMatchesStl) {
  auto keys = workload::KeysWithDuplicates(3000, 100, 3);
  FullCssTree<16> tree(keys);
  for (Key k : keys) {
    auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
    PositionRange r = EqualRange(tree, keys.data(), keys.size(), k);
    ASSERT_EQ(r.begin, static_cast<size_t>(lo - keys.begin()));
    ASSERT_EQ(r.end, static_cast<size_t>(hi - keys.begin()));
  }
  PositionRange miss =
      EqualRange(tree, keys.data(), keys.size(), keys.back() + 7);
  EXPECT_TRUE(miss.empty());
}

TEST(Range, HalfOpenRangeMatchesStl) {
  auto keys = workload::DistinctSortedKeys(5000, 5, 4);
  FullCssTree<16> tree(keys);
  for (int trial = 0; trial < 100; ++trial) {
    Key lo_key = keys[static_cast<size_t>(trial) * 37 % keys.size()];
    Key hi_key = lo_key + static_cast<Key>(trial * 13);
    PositionRange r = HalfOpenRange(tree, lo_key, hi_key);
    auto lo = std::lower_bound(keys.begin(), keys.end(), lo_key);
    auto hi = std::lower_bound(keys.begin(), keys.end(), hi_key);
    if (hi_key <= lo_key) {
      ASSERT_TRUE(r.empty());
    } else {
      ASSERT_EQ(r.begin, static_cast<size_t>(lo - keys.begin()));
      ASSERT_EQ(r.end, static_cast<size_t>(hi - keys.begin()));
    }
  }
}

TEST(Range, EmptyAndInvertedRanges) {
  auto keys = workload::DistinctSortedKeys(100, 1, 4);
  BinarySearchIndex index(keys);
  EXPECT_TRUE(HalfOpenRange(index, 50, 50).empty());
  EXPECT_TRUE(HalfOpenRange(index, 50, 10).empty());
  EXPECT_TRUE(
      ClosedRange(index, keys.data(), keys.size(), 50, 10).empty());
}

TEST(Range, ClosedRangeIncludesUpperEndpoint) {
  std::vector<Key> keys{10, 20, 30, 40};
  BinarySearchIndex index(keys);
  PositionRange r = ClosedRange(index, keys.data(), keys.size(), 20, 30);
  EXPECT_EQ(r.begin, 1u);
  EXPECT_EQ(r.end, 3u);  // includes the key 30
}

TEST(Range, ClosedRangeAtMaxKey) {
  std::vector<Key> keys{10, 0xfffffff0u, 0xffffffffu};
  BinarySearchIndex index(keys);
  PositionRange r =
      ClosedRange(index, keys.data(), keys.size(), 11, 0xffffffffu);
  EXPECT_EQ(r.begin, 1u);
  EXPECT_EQ(r.end, 3u);  // UINT32_MAX endpoint must not overflow
}

TEST(Range, ScanRangeVisitsInOrder) {
  auto keys = workload::DistinctSortedKeys(1000, 9, 4);
  FullCssTree<8> tree(keys);
  Key lo_key = keys[100];
  Key hi_key = keys[200];
  std::vector<Key> seen;
  size_t visited = ScanRange(tree, keys.data(), keys.size(), lo_key, hi_key,
                             [&](size_t, Key k) { seen.push_back(k); });
  EXPECT_EQ(visited, 100u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), lo_key);
  EXPECT_EQ(seen.back(), keys[199]);
}

TEST(Range, ScanRangeEarlyStop) {
  auto keys = workload::DistinctSortedKeys(1000, 9, 4);
  FullCssTree<8> tree(keys);
  size_t count = 0;
  ScanRange(tree, keys.data(), keys.size(), keys[0], keys.back() + 1,
            [&](size_t, Key) -> bool { return ++count < 10; });
  EXPECT_EQ(count, 10u);
}

}  // namespace
}  // namespace cssidx
