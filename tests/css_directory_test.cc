// White-box structural checks of the CSS directory: every entry must equal
// the true maximum of the keys reachable through its branch (or a clamped
// duplicate of the deep region's last key for dangling branches), and the
// union of reachable leaves must cover the whole array. This pins the
// build algorithm independently of search behaviour.

#include <algorithm>
#include <set>
#include <vector>

#include "core/css_layout.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

// Recomputes the max key of node `node`'s subtree by brute-force leaf
// enumeration. Returns false if the subtree holds no real keys (dangling).
template <typename TreeT>
bool BruteForceSubtreeMax(const TreeT& tree, const std::vector<Key>& keys,
                          uint64_t node, Key* out,
                          std::set<size_t>* covered) {
  const CssLayout& l = tree.layout();
  if (node >= l.internal_nodes) {
    // Leaf: reconstruct its clamped array range.
    int64_t pos = l.LeafArrayPos(node);
    auto limit = static_cast<int64_t>(keys.size());
    int64_t lo = std::min(pos, limit);
    int64_t hi = std::min<int64_t>(pos + TreeT::kStride, limit);
    if (node >= l.mark) {
      hi = std::min<int64_t>(hi, static_cast<int64_t>(l.deep_end));
      lo = std::min<int64_t>(lo, hi);
    }
    if (lo >= hi) return false;
    for (int64_t p = lo; p < hi; ++p) covered->insert(static_cast<size_t>(p));
    *out = keys[static_cast<size_t>(hi - 1)];
    return true;
  }
  bool any = false;
  Key best = 0;
  for (int j = 0; j < TreeT::kFanout; ++j) {
    uint64_t child = node * TreeT::kFanout + 1 + static_cast<uint64_t>(j);
    Key child_max;
    if (BruteForceSubtreeMax(tree, keys, child, &child_max, covered)) {
      best = any ? std::max(best, child_max) : child_max;
      any = true;
    }
  }
  if (any) *out = best;
  return any;
}

template <typename TreeT>
void CheckDirectory(const std::vector<Key>& keys) {
  TreeT tree(keys);
  const CssLayout& l = tree.layout();
  if (l.internal_nodes == 0) return;
  const Key* dir = tree.directory();
  std::set<size_t> covered;
  Key root_max;
  ASSERT_TRUE(BruteForceSubtreeMax(tree, keys, 0, &root_max, &covered));
  // Coverage: every array position reachable from the root.
  ASSERT_EQ(covered.size(), keys.size());

  Key deep_last = keys[l.deep_end - 1];
  for (uint64_t d = 0; d < l.internal_nodes; ++d) {
    for (int slot = 0; slot < TreeT::kStride; ++slot) {
      int branch = (TreeT::kHasSpareSlot && slot == TreeT::kStride - 1)
                       ? TreeT::kFanout - 1
                       : slot;
      uint64_t child = d * TreeT::kFanout + 1 + static_cast<uint64_t>(branch);
      Key entry = dir[d * TreeT::kStride + static_cast<uint64_t>(slot)];
      std::set<size_t> scratch;
      Key expected;
      if (BruteForceSubtreeMax(tree, keys, child, &expected, &scratch)) {
        ASSERT_EQ(entry, expected)
            << "node " << d << " slot " << slot << " n=" << keys.size();
      } else {
        // Dangling branch: clamped to the deep region's last key.
        ASSERT_EQ(entry, deep_last)
            << "dangling node " << d << " slot " << slot;
      }
    }
  }
}

TEST(CssDirectory, FullTreeEntriesAreSubtreeMaxima) {
  for (size_t n : {1u, 3u, 4u, 5u, 16u, 17u, 20u, 21u, 64u, 85u, 100u,
                   200u, 341u, 500u}) {
    CheckDirectory<FullCssTree<4>>(
        workload::DistinctSortedKeys(n, 7 + n, 3));
  }
}

TEST(CssDirectory, LevelTreeEntriesAreSubtreeMaxima) {
  for (size_t n : {1u, 3u, 4u, 5u, 16u, 17u, 63u, 64u, 65u, 100u, 255u,
                   256u, 257u, 500u}) {
    CheckDirectory<LevelCssTree<4>>(
        workload::DistinctSortedKeys(n, 11 + n, 3));
  }
}

TEST(CssDirectory, WithDuplicateKeys) {
  for (size_t n : {20u, 100u, 300u}) {
    CheckDirectory<FullCssTree<4>>(workload::KeysWithDuplicates(n, 7, n));
    CheckDirectory<LevelCssTree<8>>(workload::KeysWithDuplicates(n, 5, n));
  }
}

TEST(CssDirectory, LevelSpareSlotHoldsLastBranchMax) {
  // Direct check of the §4.2 build trick on a concrete tree.
  auto keys = workload::DistinctSortedKeys(4 * 4 * 4, 3, 2);  // 3 levels, m=4
  LevelCssTree<4> tree(keys);
  const CssLayout& l = tree.layout();
  const Key* dir = tree.directory();
  for (uint64_t d = 0; d < l.internal_nodes; ++d) {
    Key spare = dir[d * 4 + 3];
    std::set<size_t> scratch;
    Key expected;
    ASSERT_TRUE(BruteForceSubtreeMax(tree, keys, d * 4 + 4, &expected,
                                     &scratch));
    ASSERT_EQ(spare, expected) << "node " << d;
  }
}

}  // namespace
}  // namespace cssidx
