// ThreadPool unit coverage: every dispatch must run each index of [0, n)
// exactly once across contiguous shards, whatever the relation between
// item count, shard grain, requested parallelism, and worker count — and
// must neither deadlock on nested/concurrent dispatches nor race on the
// coverage bookkeeping (the TSan lane runs this suite).

#include "util/thread_pool.h"

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cssidx {
namespace {

// Runs ParallelFor and asserts [0, n) was covered exactly once.
void ExpectExactCoverage(ThreadPool& pool, size_t n, size_t min_per_shard,
                         int parallelism) {
  std::vector<std::atomic<uint32_t>> hits(n);
  pool.ParallelFor(n, min_per_shard, parallelism,
                   [&](size_t begin, size_t end) {
                     ASSERT_LE(begin, end);
                     ASSERT_LE(end, n);
                     for (size_t i = begin; i < end; ++i) {
                       hits[i].fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " n=" << n
                                  << " grain=" << min_per_shard
                                  << " parallelism=" << parallelism;
  }
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  for (size_t n : {1, 2, 1000, 4095, 4096, 4097, 100000}) {
    for (int parallelism : {1, 2, 4, 8}) {
      ExpectExactCoverage(pool, n, /*min_per_shard=*/512, parallelism);
    }
  }
}

TEST(ThreadPool, ShardMathNeverStartsPastTheRange) {
  // Regression: ceil-rounded chunks can tile [0, n) in fewer shards than
  // requested (n=10, parallelism 8 -> chunk 2 -> 5 shards); the leftover
  // shard ids must not reach the body as begin > n ranges.
  ThreadPool pool(3);
  for (size_t n : {3, 7, 10, 11, 13, 100, 1001}) {
    for (int parallelism : {2, 3, 7, 8, 16}) {
      ExpectExactCoverage(pool, n, /*min_per_shard=*/1, parallelism);
    }
  }
}

TEST(ThreadPool, ZeroItemsNeverCallsBody) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 128, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeRunsInlineOnCaller) {
  ThreadPool pool(2);
  // n <= min_per_shard collapses to one shard, which must run on the
  // calling thread with no pool round-trip.
  std::thread::id body_thread;
  int calls = 0;
  pool.ParallelFor(100, 4096, 8, [&](size_t begin, size_t end) {
    ++calls;
    body_thread = std::this_thread::get_id();
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST(ThreadPool, WorkerlessPoolRunsEverythingInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  ExpectExactCoverage(pool, 50000, 512, 8);
}

TEST(ThreadPool, MoreShardsThanWorkersAllComplete) {
  // One worker plus the caller must drain 16 shards.
  ThreadPool pool(1);
  ExpectExactCoverage(pool, 1 << 16, /*min_per_shard=*/1, /*parallelism=*/16);
}

TEST(ThreadPool, AutoParallelismUsesWorkersPlusCaller) {
  ThreadPool pool(3);
  ExpectExactCoverage(pool, 100000, 1, /*parallelism=*/0);
}

TEST(ThreadPool, GrainIsALowerBoundOnShardSize) {
  // n in (grain, 2*grain) cannot field two full-grain shards and must run
  // as one inline call, not two sub-grain dispatches.
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(5000, 4096, 8, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5000u);
  });
  EXPECT_EQ(calls, 1);
  // At 2*grain the split is allowed and every shard meets the grain.
  std::mutex mu;
  std::vector<size_t> sizes;
  pool.ParallelFor(8192, 4096, 8, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(end - begin);
  });
  for (size_t s : sizes) EXPECT_GE(s, 4096u);
}

TEST(ThreadPool, ShardExceptionRethrownAfterAllShardsRetire) {
  ThreadPool pool(3);
  // One shard throws; the dispatch must still cover every other shard
  // (no early unwind while workers touch the range) and surface the
  // exception on the calling thread.
  std::vector<std::atomic<uint32_t>> hits(50000);
  EXPECT_THROW(
      pool.ParallelFor(hits.size(), 512, 8,
                       [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           hits[i].fetch_add(1, std::memory_order_relaxed);
                         }
                         if (begin == 0) throw std::runtime_error("shard 0");
                       }),
      std::runtime_error);
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << i;
  }
  // The pool is still usable afterwards (t_inside_pool not stuck).
  ExpectExactCoverage(pool, 20000, 512, 4);
}

TEST(ThreadPool, NestedDispatchRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_covered{0};
  pool.ParallelFor(8192, 1024, 4, [&](size_t begin, size_t end) {
    // A shard body that itself parallelizes must not deadlock on the
    // dispatch lock; it degrades to an inline loop.
    pool.ParallelFor(end - begin, 256, 4, [&](size_t b, size_t e) {
      inner_covered.fetch_add(e - b, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_covered.load(), 8192u);
}

TEST(ThreadPool, ConcurrentDispatchersSerializeSafely) {
  ThreadPool pool(3);
  constexpr size_t kN = 40000;
  std::vector<std::thread> dispatchers;
  std::vector<std::atomic<uint32_t>> hits(2 * kN);
  for (int d = 0; d < 2; ++d) {
    dispatchers.emplace_back([&, d] {
      for (int round = 0; round < 10; ++round) {
        pool.ParallelFor(kN, 512, 4, [&, d](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            hits[d * kN + i].fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
    });
  }
  for (std::thread& t : dispatchers) t.join();
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 10u) << i;
  }
}

TEST(ThreadPool, ShardsAreContiguousAndOrderedWithinExecutor) {
  ThreadPool pool(3);
  // Collect shard boundaries; they must tile [0, n) without overlap.
  std::mutex mu;
  std::set<std::pair<size_t, size_t>> shards;
  constexpr size_t kN = 64 * 1024;
  pool.ParallelFor(kN, 1024, 8, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    shards.insert({begin, end});
  });
  size_t expect_begin = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GT(end, begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, kN);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
  EXPECT_GE(ThreadPool::Shared().workers(),
            ThreadPool::HardwareThreads() - 1);
}

}  // namespace
}  // namespace cssidx
