#include "util/aligned_buffer.h"

#include <cstdint>
#include <utility>

#include "gtest/gtest.h"

namespace cssidx {
namespace {

TEST(AlignedBuffer, EmptyIsEmpty) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, RespectsAlignment) {
  for (size_t alignment : {8u, 16u, 64u, 128u, 4096u}) {
    AlignedBuffer buf(1000, alignment);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % alignment, 0u)
        << "alignment=" << alignment;
    EXPECT_EQ(buf.size(), 1000u);
  }
}

TEST(AlignedBuffer, MisalignOffsetShiftsPayload) {
  AlignedBuffer buf(256, 64, /*misalign_offset=*/20);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 20u);
}

TEST(AlignedBuffer, PayloadIsWritable) {
  AlignedBuffer buf(64 * sizeof(uint32_t), 64);
  auto* p = buf.as<uint32_t>();
  for (uint32_t i = 0; i < 64; ++i) p[i] = i * 3;
  for (uint32_t i = 0; i < 64; ++i) EXPECT_EQ(p[i], i * 3);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(128, 64);
  auto* data = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());

  AlignedBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_TRUE(b.empty());
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer a(128, 64);
  AlignedBuffer b(256, 64);
  a = std::move(b);  // old 128-byte allocation must be freed (ASAN-checked)
  EXPECT_EQ(a.size(), 256u);
}

}  // namespace
}  // namespace cssidx
