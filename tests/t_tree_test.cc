#include "baselines/t_tree.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

template <int Entries>
void OracleCheck(const std::vector<Key>& keys) {
  TTreeIndex<Entries> index(keys);
  std::vector<Key> probes;
  for (Key k : keys) {
    probes.push_back(k);
    if (k > 0) probes.push_back(k - 1);
    probes.push_back(k + 1);
  }
  probes.push_back(0);
  if (!keys.empty()) probes.push_back(keys.back() + 5);
  for (Key k : probes) {
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
    ASSERT_EQ(index.LowerBound(k), expected)
        << "entries=" << Entries << " n=" << keys.size() << " k=" << k;
  }
}

template <int Entries>
void SweepSizes(size_t max_n) {
  for (size_t n = 0; n <= max_n; ++n) {
    OracleCheck<Entries>(workload::DistinctSortedKeys(n, 71 + n, 3));
  }
}

TEST(TTree, OracleSweepEntries2) { SweepSizes<2>(200); }
TEST(TTree, OracleSweepEntries4) { SweepSizes<4>(300); }
TEST(TTree, OracleSweepEntries8) { SweepSizes<8>(500); }
TEST(TTree, OracleSweepEntries16) { SweepSizes<16>(600); }
TEST(TTree, OracleMediumEntries32) {
  OracleCheck<32>(workload::DistinctSortedKeys(40'000, 6, 4));
}

TEST(TTree, BasicSearchAgreesWithImproved) {
  // The pre-LC86b two-comparison search must compute the same function as
  // the improved one-comparison search on every input shape.
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 100u, 1000u, 5000u}) {
    auto keys = workload::DistinctSortedKeys(n, 17 + n, 3);
    TTreeIndex<8> tree(keys);
    std::vector<Key> probes = keys;
    probes.push_back(0);
    if (!keys.empty()) probes.push_back(keys.back() + 3);
    for (Key k : probes) {
      ASSERT_EQ(tree.LowerBoundBasic(k), tree.LowerBound(k))
          << "n=" << n << " k=" << k;
      if (k > 0) {
        ASSERT_EQ(tree.LowerBoundBasic(k - 1), tree.LowerBound(k - 1));
      }
    }
  }
  // And under duplicates.
  auto dups = workload::KeysWithDuplicates(800, 40, 5);
  TTreeIndex<4> tree(dups);
  for (Key k : dups) {
    ASSERT_EQ(tree.LowerBoundBasic(k), tree.LowerBound(k));
  }
}

TEST(TTree, DuplicatesLeftmostAcrossNodeBoundaries) {
  // Duplicates that straddle node chunks are the nasty case: the bounding
  // node is not necessarily the one holding the leftmost occurrence.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto keys = workload::KeysWithDuplicates(600, 25, seed);
    TTreeIndex<4> index(keys);
    for (Key k : keys) {
      auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
      ASSERT_EQ(index.Find(k), lo - keys.begin()) << "seed=" << seed;
      ASSERT_EQ(index.CountEqual(k), static_cast<size_t>(hi - lo));
    }
  }
}

TEST(TTree, NodeLayoutKeepsChildrenNextToMinKey) {
  // The LC86b improvement: left/right/count and keys[0] must share the
  // first 16 bytes so one line covers the common compare-and-descend.
  using Node = TTreeIndex<16>::Node;
  EXPECT_EQ(offsetof(Node, left), 0u);
  EXPECT_LE(offsetof(Node, keys), 12u);
}

TEST(TTree, SpaceGrowsWithRidsStored) {
  auto keys = workload::DistinctSortedKeys(10'000, 2, 4);
  TTreeIndex<16> index(keys);
  // keys + rids + header per 16 entries: at least 8 bytes per element.
  EXPECT_GE(index.SpaceBytes(), keys.size() * 8);
  EXPECT_EQ(index.NumNodes(), (keys.size() + 15) / 16);
}

TEST(TTree, BatchKernelMatchesScalarDescent) {
  // The group-probing LowerBoundBatch (child-line prefetch, lockstep
  // descent) took T-tree off the scalar fallback path; it must reproduce
  // the scalar improved search probe for probe — duplicates, absent keys,
  // and the partial final node included — at batch sizes covering full
  // groups, the sub-group remainder, and batches of one.
  auto keys = workload::KeysWithDuplicates(5003, 400, 21);
  TTreeIndex<16> index(keys);
  Pcg32 rng(23);
  for (size_t batch : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{64}, size_t{1000}}) {
    std::vector<Key> probes(batch);
    for (Key& k : probes) k = rng.Below(keys.back() + 3);
    std::vector<size_t> lower(batch, ~size_t{0});
    std::vector<int64_t> found(batch, -2);
    index.LowerBoundBatch(probes, lower);
    index.FindBatch(probes, found);
    for (size_t i = 0; i < batch; ++i) {
      ASSERT_EQ(lower[i], index.LowerBound(probes[i]))
          << "batch=" << batch << " i=" << i << " k=" << probes[i];
      ASSERT_EQ(found[i], index.Find(probes[i]))
          << "batch=" << batch << " i=" << i << " k=" << probes[i];
    }
  }
  // And against the STL oracle, so batch and scalar can't agree on a bug.
  std::vector<Key> probes(2000);
  for (Key& k : probes) k = rng.Below(keys.back() + 3);
  std::vector<size_t> lower(probes.size());
  index.LowerBoundBatch(probes, lower);
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(lower[i],
              static_cast<size_t>(std::lower_bound(keys.begin(), keys.end(),
                                                   probes[i]) -
                                  keys.begin()))
        << probes[i];
  }
}

TEST(TTree, EmptyAndPartialFinalNode) {
  std::vector<Key> empty;
  TTreeIndex<8> e(empty);
  EXPECT_EQ(e.LowerBound(3), 0u);
  EXPECT_EQ(e.Find(3), kNotFound);

  // n = 9 with 8-entry nodes: second node has a single key.
  std::vector<Key> keys{1, 3, 5, 7, 9, 11, 13, 15, 17};
  TTreeIndex<8> t(keys);
  for (Key k = 0; k <= 19; ++k) {
    auto expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
    ASSERT_EQ(t.LowerBound(k), expected) << k;
  }
}

}  // namespace
}  // namespace cssidx
