#ifndef CSSIDX_TESTS_SPEC_MENU_H_
#define CSSIDX_TESTS_SPEC_MENU_H_

#include <string>
#include <vector>

#include "core/index_spec.h"

// The spec menus shared by the differential suites (fuzz_differential,
// property_all_indexes, range_probe, parallel_probe, partitioned_index).
// One definition so a new structural axis — like the "part:K/" composite
// — lands in every suite by editing this file, instead of four private
// copies drifting apart.

namespace cssidx::test_menu {

/// One spec per method at the given knobs (the AllSpecs menu), plus a
/// part:K wrap of each method and two adversarial shard counts: part:1
/// (degenerate single shard, the pass-through path) and part:16 (more
/// shards than many test arrays have distinct keys, forcing empty
/// shards). Every suite that iterates this covers the partitioned
/// composite for free.
inline std::vector<IndexSpec> DefaultSpecs(int node_entries,
                                           int hash_dir_bits) {
  std::vector<IndexSpec> specs = AllSpecs(node_entries, hash_dir_bits);
  const size_t bare = specs.size();
  for (size_t i = 0; i < bare; ++i) {
    specs.push_back(specs[i].WithPartitions(4));
  }
  specs.push_back(IndexSpec().WithPartitions(1));
  specs.push_back(IndexSpec().WithPartitions(16));
  return specs;
}

/// The full menu: every method, node-size sweep for the sized ones
/// (level CSS keeps powers of two only), then the partitioned variants
/// of DefaultSpecs. The node sweep stays unpartitioned — the composite's
/// routing does not depend on the inner node size, so sweeping both axes
/// jointly would buy runtime, not coverage.
inline std::vector<IndexSpec> MenuSpecs(int node_entries, int hash_dir_bits) {
  std::vector<IndexSpec> specs;
  for (const IndexSpec& spec : AllSpecs(node_entries, hash_dir_bits)) {
    if (!spec.sized()) {
      specs.push_back(spec);
      continue;
    }
    for (int entries : NodeSizeMenu()) {
      IndexSpec sized = spec.WithNodeEntries(entries);
      if (sized.OnMenu()) specs.push_back(sized);
    }
  }
  for (const IndexSpec& spec : DefaultSpecs(node_entries, hash_dir_bits)) {
    if (spec.partitioned()) specs.push_back(spec);
  }
  return specs;
}

/// DefaultSpecs at 8-byte key width: the same methods, part:K wraps, and
/// adversarial shard counts, with every spec widened through
/// WithKeyWidth(8). Specs with no 64-bit build (hash, and part:K over
/// hash) drop off — OnMenu is the single source of truth for what the
/// width dimension supports — so a differential suite iterating this
/// covers the whole wide-key menu and nothing imaginary.
inline std::vector<IndexSpec> DefaultSpecs64(int node_entries,
                                             int hash_dir_bits) {
  std::vector<IndexSpec> specs;
  for (const IndexSpec& spec : DefaultSpecs(node_entries, hash_dir_bits)) {
    IndexSpec wide = spec.WithKeyWidth(8);
    if (wide.OnMenu()) specs.push_back(wide);
  }
  return specs;
}

/// The compact per-method string list used by the parallel-probe suite —
/// one spec per method family plus partitioned variants, exercising the
/// grammar path the way CLIs and config files do.
inline const std::vector<std::string>& SpecStrings() {
  static const std::vector<std::string> specs{
      "bin",           "tbin",          "interp",
      "ttree:16",      "btree:32",      "css:16",
      "lcss:64",       "hash:12",       "part:4/css:16",
      "part:3/btree:32", "part:8/hash:12"};
  return specs;
}

/// SpecStrings for 8-byte keys ("64" method suffix — hash has no 64-bit
/// build, so the hash rows have no counterpart here).
inline const std::vector<std::string>& SpecStrings64() {
  static const std::vector<std::string> specs{
      "bin64",         "tbin64",        "interp64",
      "ttree64:16",    "btree64:32",    "css64:16",
      "lcss64:64",     "part:4/css64:16", "part:3/btree64:32"};
  return specs;
}

}  // namespace cssidx::test_menu

#endif  // CSSIDX_TESTS_SPEC_MENU_H_
